//! One-stop mounting on top of a [`StackBuilder`] stack.
//!
//! Every layer of the storage stack composes through
//! [`StackBuilder::layer`], but actually *using* the built device still
//! took three calls with an awkward mkfs-needs-`&mut` dance in the
//! middle (`build`, `mkfs`, `mount`) — and the ixt3 variants each had
//! their own free-function spelling. [`MountStackExt`] finishes the
//! chain instead: build the stack, format it, and mount a file system
//! over it in one call.
//!
//! ```
//! use ironfs::prelude::*;
//!
//! let mut v = Vfs::new(
//!     StackBuilder::memdisk(4096)
//!         .mount_ixt3_full(FsEnv::new(), Ext3Params::small())
//!         .expect("mount"),
//! );
//! v.write_file("/hello", b"hi").unwrap();
//! ```

use iron_blockdev::{BlockDevice, RawAccess, StackBuilder};
use iron_ext3::{Ext3Fs, Ext3Options, Ext3Params, IronConfig};
use iron_ixt3::Ixt3Fs;
use iron_vfs::{FsEnv, VfsResult};

/// Build + format + mount, as the last link of a [`StackBuilder`] chain.
pub trait MountStackExt<D: BlockDevice + RawAccess>: Sized {
    /// Format the built stack as ext3 and mount it with `opts`. The mkfs
    /// parameters are adjusted for the mount's IRON configuration (the
    /// distant metadata mirror is reserved iff `Mr` is on).
    fn mount_ext3(self, env: FsEnv, params: Ext3Params, opts: Ext3Options) -> VfsResult<Ext3Fs<D>>;

    /// Format and mount ixt3 with an arbitrary IRON configuration.
    fn mount_ixt3(self, env: FsEnv, params: Ext3Params, iron: IronConfig) -> VfsResult<Ixt3Fs<D>>;

    /// Format and mount the full ixt3 configuration (`Mc Mr Dc Dp Tc`,
    /// bugs fixed) — the configuration whose failure policy Figure 3
    /// reports.
    fn mount_ixt3_full(self, env: FsEnv, params: Ext3Params) -> VfsResult<Ixt3Fs<D>>;

    /// Full ixt3 on the pipelined commit profile: group commit (several
    /// closed transactions merged under one descriptor chain, commit
    /// block, and barrier pair) plus lagged checkpointing.
    fn mount_ixt3_pipelined(self, env: FsEnv, params: Ext3Params) -> VfsResult<Ixt3Fs<D>>;
}

impl<D: BlockDevice + RawAccess> MountStackExt<D> for StackBuilder<D> {
    fn mount_ext3(
        self,
        env: FsEnv,
        mut params: Ext3Params,
        opts: Ext3Options,
    ) -> VfsResult<Ext3Fs<D>> {
        params.mirror_metadata = opts.iron.meta_replication;
        let mut dev = self.build();
        Ext3Fs::mkfs(&mut dev, params)?;
        Ext3Fs::mount(dev, env, opts)
    }

    fn mount_ixt3(self, env: FsEnv, params: Ext3Params, iron: IronConfig) -> VfsResult<Ixt3Fs<D>> {
        self.mount_ext3(env, params, Ext3Options::with_iron(iron))
    }

    fn mount_ixt3_full(self, env: FsEnv, params: Ext3Params) -> VfsResult<Ixt3Fs<D>> {
        self.mount_ixt3(env, params, IronConfig::full())
    }

    fn mount_ixt3_pipelined(self, env: FsEnv, params: Ext3Params) -> VfsResult<Ixt3Fs<D>> {
        self.mount_ext3(env, params, Ext3Options::pipelined(IronConfig::full()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iron_blockdev::CachePolicy;
    use iron_vfs::Vfs;

    #[test]
    fn chained_mount_builds_formats_and_mounts() {
        let fs = StackBuilder::memdisk(4096)
            .with_cache(CachePolicy::write_back(64))
            .mount_ext3(FsEnv::new(), Ext3Params::small(), Ext3Options::default())
            .expect("mount");
        let mut v = Vfs::new(fs);
        v.write_file("/f", b"one call").unwrap();
        assert_eq!(v.read_file("/f").unwrap(), b"one call");
    }

    #[test]
    fn ixt3_variants_reserve_the_mirror_iff_replicating() {
        let fs = StackBuilder::memdisk(4096)
            .mount_ixt3_full(FsEnv::new(), Ext3Params::small())
            .expect("full ixt3 mounts");
        assert!(fs.layout().replica_log_len > 0);

        let fs = StackBuilder::memdisk(4096)
            .mount_ixt3(FsEnv::new(), Ext3Params::small(), IronConfig::off())
            .expect("bare ixt3 mounts");
        assert_eq!(fs.layout().replica_log_len, 0);
    }

    #[test]
    fn pipelined_mount_defers_checkpoints() {
        let mut fs = StackBuilder::memdisk(4096)
            .mount_ixt3_pipelined(FsEnv::new(), Ext3Params::small())
            .expect("pipelined ixt3 mounts");
        {
            let mut v = Vfs::new(&mut fs as &mut dyn iron_vfs::SpecificFs);
            v.write_file("/f", &[7u8; 9000]).unwrap();
            v.sync().unwrap();
        }
        assert!(
            fs.pending_checkpoint_blocks() > 0,
            "lagged checkpointing must leave the commit awaiting write-back"
        );
    }
}

//! # ironfs — a reproduction of *IRON File Systems* (SOSP 2005)
//!
//! > "Commodity file systems trust disks to either work or fail
//! > completely, yet modern disks exhibit more complex failure modes."
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! * [`core`] — the fail-partial failure model and IRON taxonomy;
//! * [`blockdev`] — the simulated disk (typed I/O, mechanical timing);
//! * [`faultinject`] — the type-aware fault-injection pseudo-device;
//! * [`vfs`] — the generic file-system layer (POSIX surface, mount state);
//! * [`ext3`], [`reiser`], [`jfs`], [`ntfs`] — behavioral models of the
//!   four commodity file systems, measured failure policies and bugs
//!   included;
//! * [`fsck`] — the file-system-agnostic parallel check-and-repair
//!   engine (pFSCK-style sharded + pipelined passes, `RRepair`/`RRemap`
//!   planner), which `ext3` implements the traits of;
//! * [`ixt3`] — the prototype IRON file system (checksums, replication,
//!   parity, transactional checksums, scrubbing);
//! * [`fingerprint`] — the failure-policy fingerprinting framework
//!   (workloads, campaigns, inference, Figure 2/3 rendering);
//! * [`serve`] — the concurrent multi-client serving layer (request
//!   protocol, sharded path-lock manager, commit-order serial-replay
//!   oracle);
//! * [`cluster`] — replicated multi-disk volumes above the block layer
//!   (write fan-out, primary/round-robin/quorum read policies,
//!   peer-driven repair of divergent replicas);
//! * [`workloads`] — the Table 6 macro-benchmarks and space-overhead
//!   analysis.
//!
//! ## Quickstart
//!
//! ```
//! use ironfs::prelude::*;
//!
//! // Format and mount a full ixt3 (checksums + replication + parity + Tc).
//! let fs = StackBuilder::memdisk(4096)
//!     .mount_ixt3_full(FsEnv::new(), Ext3Params::small())
//!     .expect("mount");
//! let mut v = Vfs::new(fs);
//! v.write_file("/hello.txt", b"don't trust the disk").unwrap();
//! assert_eq!(v.read_file("/hello.txt").unwrap(), b"don't trust the disk");
//! ```
//!
//! See `examples/` for fault injection, crash recovery, and scrubbing
//! walk-throughs, and the `iron-bench` crate for the binaries that
//! regenerate every table and figure of the paper.

#![forbid(unsafe_code)]

pub mod stack;

pub use iron_blockdev as blockdev;
pub use iron_cluster as cluster;
pub use iron_core as core;
pub use iron_crash as crash;
pub use iron_ext3 as ext3;
pub use iron_faultinject as faultinject;
pub use iron_fingerprint as fingerprint;
pub use iron_fsck as fsck;
pub use iron_ixt3 as ixt3;
pub use iron_jfs as jfs;
pub use iron_ntfs as ntfs;
pub use iron_reiser as reiser;
pub use iron_serve as serve;
pub use iron_vfs as vfs;
pub use iron_workloads as workloads;

/// The cross-crate surface in one import: everything needed to build a
/// storage stack, mount a file system over it, and aim faults at it.
///
/// ```
/// use ironfs::prelude::*;
///
/// let fs = StackBuilder::memdisk(4096)
///     .with_cache(CachePolicy::write_back(256))
///     .mount_ext3(FsEnv::new(), Ext3Params::small(), Ext3Options::default())
///     .unwrap();
/// let mut v = Vfs::new(fs);
/// v.write_file("/hello", b"hi").unwrap();
/// ```
pub mod prelude {
    pub use crate::stack::MountStackExt;

    pub use iron_core::{
        Block, BlockAddr, BlockTag, DetectionLevel, Errno, FaultKind, IoKind, KernelLog,
        RecoveryLevel, SimClock, Transience, BLOCK_SIZE,
    };

    pub use iron_blockdev::{
        BlockDevice, BufferCache, CachePolicy, CacheStats, DiskError, DiskGeometry, DiskResult,
        IoScheduler, IoTrace, MemDisk, RawAccess, StackBuilder, TraceLayer,
    };

    pub use iron_faultinject::{
        FaultController, FaultId, FaultPlan, FaultSpec, FaultStackExt, FaultTarget, FaultyDisk,
    };

    pub use iron_vfs::{
        DirEntry, Fd, FileType, FsEnv, InodeAttr, MountState, OpenFlags, SpecificFs, StatFs, Vfs,
        VfsError, VfsResult,
    };

    pub use iron_ext3::{BlockType as Ext3BlockType, Ext3Fs, Ext3Options, Ext3Params, IronConfig};
    pub use iron_jfs::{JfsBlockType, JfsFs, JfsOptions, JfsParams};
    pub use iron_ntfs::{NtfsBlockType, NtfsFs, NtfsOptions, NtfsParams};
    pub use iron_reiser::{ReiserBlockType, ReiserFs, ReiserOptions, ReiserParams};

    pub use iron_fsck::{FsckEngine, FsckOptions, FsckReport, FsckStats};

    pub use iron_cluster::{ClusterStackExt, ReadPolicy, RepairReport, ReplicatedDisk};

    pub use iron_fingerprint::{
        fingerprint_fs, CampaignDevice, CampaignOptions, Ext3Adapter, FaultMode, FsUnderTest,
        JfsAdapter, NtfsAdapter, PolicyMatrix, ReiserAdapter, Workload,
    };

    pub use iron_serve::{
        generate, prepare, replay_serial, serve, LockManager, Reply, Request, ServeOptions,
        ServeReport, Session, WorkloadSpec,
    };
}

//! # ironfs — a reproduction of *IRON File Systems* (SOSP 2005)
//!
//! > "Commodity file systems trust disks to either work or fail
//! > completely, yet modern disks exhibit more complex failure modes."
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! * [`core`] — the fail-partial failure model and IRON taxonomy;
//! * [`blockdev`] — the simulated disk (typed I/O, mechanical timing);
//! * [`faultinject`] — the type-aware fault-injection pseudo-device;
//! * [`vfs`] — the generic file-system layer (POSIX surface, mount state);
//! * [`ext3`], [`reiser`], [`jfs`], [`ntfs`] — behavioral models of the
//!   four commodity file systems, measured failure policies and bugs
//!   included;
//! * [`fsck`] — the file-system-agnostic parallel check-and-repair
//!   engine (pFSCK-style sharded + pipelined passes, `RRepair`/`RRemap`
//!   planner), which `ext3` implements the traits of;
//! * [`ixt3`] — the prototype IRON file system (checksums, replication,
//!   parity, transactional checksums, scrubbing);
//! * [`fingerprint`] — the failure-policy fingerprinting framework
//!   (workloads, campaigns, inference, Figure 2/3 rendering);
//! * [`workloads`] — the Table 6 macro-benchmarks and space-overhead
//!   analysis.
//!
//! ## Quickstart
//!
//! ```
//! use ironfs::blockdev::MemDisk;
//! use ironfs::ext3::Ext3Params;
//! use ironfs::vfs::{FsEnv, SpecificFs, Vfs};
//!
//! // Format and mount a full ixt3 (checksums + replication + parity + Tc).
//! let disk = MemDisk::for_tests(4096);
//! let fs = ironfs::ixt3::format_and_mount_full(disk, FsEnv::new(), Ext3Params::small())
//!     .expect("mount");
//! let mut v = Vfs::new(fs);
//! v.write_file("/hello.txt", b"don't trust the disk").unwrap();
//! assert_eq!(v.read_file("/hello.txt").unwrap(), b"don't trust the disk");
//! ```
//!
//! See `examples/` for fault injection, crash recovery, and scrubbing
//! walk-throughs, and the `iron-bench` crate for the binaries that
//! regenerate every table and figure of the paper.

#![forbid(unsafe_code)]

pub use iron_blockdev as blockdev;
pub use iron_core as core;
pub use iron_ext3 as ext3;
pub use iron_faultinject as faultinject;
pub use iron_fingerprint as fingerprint;
pub use iron_fsck as fsck;
pub use iron_ixt3 as ixt3;
pub use iron_jfs as jfs;
pub use iron_ntfs as ntfs;
pub use iron_reiser as reiser;
pub use iron_vfs as vfs;
pub use iron_workloads as workloads;

#!/usr/bin/env sh
# Local mirror of .github/workflows/ci.yml — run before pushing.
# The workspace is hermetic (no registry dependencies); everything runs
# --offline, and a build that tries to reach a registry is a failure.
set -eu

echo '== build (release, offline) =='
cargo build --workspace --release --offline

echo '== test (offline) =='
cargo test --workspace -q --offline

echo '== fmt =='
cargo fmt --all --check

echo '== clippy =='
cargo clippy --workspace --all-targets --offline -- -D warnings

echo '== bench smoke =='
# Absolute path: cargo runs bench binaries with the package dir as cwd.
BENCH_DIR="${IRON_BENCH_DIR:-$(pwd)/target/bench-smoke}"
mkdir -p "$BENCH_DIR"
for b in checksums device_model journal_commit fs_ops table6_kernels fsck_scaling campaign_scaling cache_hit crash_smoke; do
    IRON_BENCH_DIR="$BENCH_DIR" cargo bench -q --offline -p iron-bench --bench "$b" -- --smoke
done
for f in "$BENCH_DIR"/BENCH_*.json; do
    python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$f"
done

echo 'CI OK'

#!/usr/bin/env sh
# Local mirror of .github/workflows/ci.yml — run before pushing.
# The workspace is hermetic (no registry dependencies); everything runs
# --offline, and a build that tries to reach a registry is a failure.
#
# IRON_STRESS=1 ./ci.sh additionally runs the stress lane: every
# #[ignore]d concurrency-differential test (serve, fsck, campaign,
# crash) at elevated thread counts (IRON_TEST_THREADS, default 16).
set -eu

echo '== build (release, offline) =='
cargo build --workspace --release --offline

echo '== test (offline) =='
cargo test --workspace -q --offline

echo '== fmt =='
cargo fmt --all --check

echo '== clippy =='
cargo clippy --workspace --all-targets --offline -- -D warnings

echo '== bench smoke =='
# Absolute path: cargo runs bench binaries with the package dir as cwd.
BENCH_DIR="${IRON_BENCH_DIR:-$(pwd)/target/bench-smoke}"
mkdir -p "$BENCH_DIR"
# Discovery-driven: every file in crates/bench/benches/ is a bench
# target (each has a [[bench]] entry in crates/bench/Cargo.toml), so a
# new bench is picked up — and gated — without touching this script.
bench_count=0
for f in crates/bench/benches/*.rs; do
    b="$(basename "$f" .rs)"
    bench_count=$((bench_count + 1))
    IRON_BENCH_DIR="$BENCH_DIR" cargo bench -q --offline -p iron-bench --bench "$b" -- --smoke
done
if [ "$bench_count" -eq 0 ]; then
    echo 'ERROR: no bench targets found in crates/bench/benches/' >&2
    exit 1
fi
for f in "$BENCH_DIR"/BENCH_*.json; do
    python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$f"
done

echo '== bench regression gate =='
cargo run -q --offline -p iron-bench --bin bench_check -- \
    --baseline results/baselines --current "$BENCH_DIR"

if [ "${IRON_STRESS:-0}" = "1" ]; then
    echo '== stress lane (--ignored differential suites) =='
    IRON_TEST_THREADS="${IRON_TEST_THREADS:-16}" \
        cargo test --workspace --release -q --offline -- --ignored
fi

echo 'CI OK'

//! Disk scrubbing: eager detection (§3.2 of the paper).
//!
//! "Disk scrubbing is a classic eager technique used by RAID systems to
//! scan a disk and thereby discover latent sector errors. Disk scrubbing is
//! particularly valuable if a means for recovery is available … If combined
//! with other detection techniques (such as checksums), scrubbing can
//! discover block corruption as well."
//!
//! Our scrubber does both: it walks every checksummed block, detecting
//! latent sector errors via error codes and corruption via the checksum
//! table, and repairs what it can — metadata from the distant replica
//! (`Mr`), file data from parity (`Dp`). The `scrubbing_ablation` bench
//! quantifies the detection-latency benefit using the Monte-Carlo model in
//! `iron-faultinject`.

use iron_blockdev::{BlockDevice, IoScheduler, RawAccess, ScanReadahead};
use iron_core::{BlockAddr, BLOCK_SIZE};
use iron_ext3::layout::BlockType;
use iron_ext3::Ext3Fs;
use iron_vfs::SpecificFs;

/// Results of one scrub pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Blocks examined.
    pub scanned: u64,
    /// Latent sector errors discovered (explicit read errors).
    pub latent_errors: u64,
    /// Silent corruptions discovered (checksum mismatches).
    pub corruptions: u64,
    /// Blocks repaired in place (from replica or parity).
    pub repaired: u64,
    /// Blocks found bad with no redundancy to repair from.
    pub unrecoverable: u64,
}

/// Run one scrub pass over the file system.
///
/// Walks every block with a recorded checksum (scrubbing an unchecksummed
/// configuration detects only explicit read errors, exactly as the paper
/// notes for return-code-based scrubbing). Bad metadata blocks are
/// repaired from the replica when `Mr` is active; bad data blocks are
/// reconstructed through the parity path when `Dp` is active.
pub fn scrub<D: BlockDevice + RawAccess>(fs: &mut Ext3Fs<D>) -> ScrubReport {
    let mut report = ScrubReport::default();
    // Scrub verifies the on-medium checksum table against the in-memory
    // one and primaries against the mirror — make both current first.
    fs.flush_cksum_table();
    fs.flush_replicas();
    let layout = *fs.layout();
    let iron = fs.options().iron;

    // Whether an on-medium block is good. Checksum-table blocks carry no
    // self-checksums (entry 0 — that would be recursive), so they are
    // verified byte-for-byte against the authoritative in-memory table
    // (when any checksumming is active at all — an unchecksummed mount
    // never maintains the table); everything else goes through the
    // checksum table.
    fn content_ok<D: BlockDevice + RawAccess>(
        fs: &mut Ext3Fs<D>,
        addr: u64,
        ty: BlockType,
        b: &iron_core::Block,
    ) -> bool {
        if ty == BlockType::CksumTable {
            let iron = fs.options().iron;
            if !(iron.meta_checksum || iron.data_checksum) {
                return true;
            }
            let i = addr - fs.layout().cksum_start;
            *b == fs.cksum_table_block(i)
        } else {
            fs.checksum_entry(addr) == 0 || fs.verify_block(addr, b)
        }
    }

    // Map data blocks to (ino, index) so parity repair has file context.
    let mut owner: std::collections::HashMap<u64, (u64, u64)> = std::collections::HashMap::new();
    if iron.data_parity {
        for ino in 1..=layout.total_inodes() {
            if fs.getattr(ino).is_err() {
                continue;
            }
            if let Ok(blocks) = fs.blocks_of(ino) {
                for (idx, addr) in blocks.into_iter().enumerate() {
                    owner.insert(addr, (ino, idx as u64));
                }
            }
        }
    }

    // The scrub walks the whole device in ascending order; hint each
    // elevator sweep ahead of its reads so the pass streams at media rate.
    // Repair writes invalidate the hint window, which is correct: after a
    // repair the head has moved and the next sweep re-positions anyway.
    let sched = IoScheduler::new();
    let mut ra = ScanReadahead::new(&sched, BlockAddr(0), layout.fs_blocks);
    for addr in 0..layout.fs_blocks {
        let ty = layout.classify_static(addr);
        // Only the journal log area is skipped: it is transient, and its
        // blocks are verified transactionally by Tc at recovery time.
        // The checksum table itself *is* scrubbed — a corrupt table block
        // would otherwise turn every covered block into a false
        // corruption verdict on its next read.
        if matches!(ty, BlockType::JournalData | BlockType::JournalSuper) {
            continue;
        }
        report.scanned += 1;

        ra.hint(fs.device_mut(), BlockAddr(addr));
        let outcome = fs.device_mut().read_tagged(BlockAddr(addr), ty.tag());
        let (is_bad, is_latent) = match outcome {
            Err(_) => (true, true),
            Ok(b) => (!content_ok(fs, addr, ty, &b), false),
        };
        if !is_bad {
            continue;
        }
        if is_latent {
            report.latent_errors += 1;
        } else {
            report.corruptions += 1;
        }
        fs.env_ref().klog.warn(
            "ixt3-scrub",
            format!(
                "scrub found {} block {addr} ({})",
                if is_latent { "unreadable" } else { "corrupt" },
                ty.tag()
            ),
        );

        // Attempt repair: find a verified good copy of the block. The
        // checksum table is mirrored like any other metadata (its flush
        // goes through the replica path), so it heals from the replica
        // even though `is_metadata()` excludes it.
        let good = if (ty.is_metadata() || ty == BlockType::CksumTable) && iron.meta_replication {
            let replica = layout.replica_of(addr);
            match fs
                .device_mut()
                .read_tagged(replica, BlockType::Replica.tag())
            {
                Ok(copy) if content_ok(fs, addr, ty, &copy) => Some(copy),
                _ => None,
            }
        } else if ty == BlockType::Data && iron.data_parity {
            // Reading through the file system reconstructs from parity;
            // write the result back in place.
            owner.get(&addr).copied().and_then(|(ino, idx)| {
                fs.read(ino, idx * BLOCK_SIZE as u64, BLOCK_SIZE)
                    .ok()
                    .map(|bytes| iron_core::Block::from_bytes(&bytes))
            })
        } else {
            None
        };

        // Write the good copy back, then *re-read and verify*. A sticky
        // latent error also fails the write-back or the re-read; counting
        // a blind write-back as `repaired` would mis-report an
        // unrecoverable block as healed.
        let repaired = match good {
            Some(block) => {
                fs.device_mut()
                    .write_tagged(BlockAddr(addr), &block, ty.tag())
                    .is_ok()
                    && match fs.device_mut().read_tagged(BlockAddr(addr), ty.tag()) {
                        Ok(after) => after == block,
                        Err(_) => false,
                    }
            }
            None => false,
        };

        if repaired {
            report.repaired += 1;
            fs.env_ref()
                .klog
                .info("ixt3-scrub", format!("block {addr} repaired in place"));
        } else {
            report.unrecoverable += 1;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{format_and_mount_full, mount};
    use iron_blockdev::MemDisk;
    use iron_core::Block;
    use iron_ext3::{Ext3Params, IronConfig};
    use iron_vfs::{FsEnv, Vfs};

    #[test]
    fn clean_disk_scrubs_clean() {
        let dev = MemDisk::for_tests(4096);
        let mut fs = format_and_mount_full(dev, FsEnv::new(), Ext3Params::small()).unwrap();
        let mut v = Vfs::new(&mut fs as &mut dyn SpecificFs);
        v.write_file("/f", &vec![7u8; 20_000]).unwrap();
        v.sync().unwrap();
        drop(v);
        let report = scrub(&mut fs);
        assert_eq!(report.latent_errors, 0);
        assert_eq!(report.corruptions, 0);
        assert_eq!(report.unrecoverable, 0);
        assert!(report.scanned > 1000);
    }

    #[test]
    fn scrub_detects_and_repairs_corrupt_metadata() {
        let dev = MemDisk::for_tests(4096);
        let mut fs = format_and_mount_full(dev, FsEnv::new(), Ext3Params::small()).unwrap();
        {
            let mut v = Vfs::new(&mut fs as &mut dyn SpecificFs);
            v.write_file("/f", b"protected").unwrap();
            v.sync().unwrap();
        }
        // Corrupt the inode-table block holding /f's inode, on the medium.
        let (blk, _) = fs.layout().inode_location(3);
        let original = fs.device().peek(blk);
        fs.device_mut().poke(blk, &Block::filled(0xBD));
        let report = scrub(&mut fs);
        assert_eq!(report.corruptions, 1);
        assert_eq!(report.repaired, 1);
        assert_eq!(report.unrecoverable, 0);
        assert_eq!(fs.device().peek(blk), original, "primary healed in place");
    }

    #[test]
    fn scrub_repairs_corrupt_data_from_parity() {
        let dev = MemDisk::for_tests(4096);
        let mut fs = format_and_mount_full(dev, FsEnv::new(), Ext3Params::small()).unwrap();
        let data: Vec<u8> = (0..16_000u32).map(|i| (i % 199) as u8).collect();
        {
            let mut v = Vfs::new(&mut fs as &mut dyn SpecificFs);
            v.write_file("/f", &data).unwrap();
            v.sync().unwrap();
        }
        let victim = fs.blocks_of(3).unwrap()[1];
        let original = fs.device().peek(BlockAddr(victim));
        fs.device_mut()
            .poke(BlockAddr(victim), &Block::filled(0x66));
        let report = scrub(&mut fs);
        assert!(report.corruptions >= 1);
        assert!(report.repaired >= 1);
        assert_eq!(
            fs.device().peek(BlockAddr(victim)),
            original,
            "data block healed from parity"
        );
    }

    /// Regression test for the repair-verification fix: a *sticky* latent
    /// read error cannot be healed by writing the replica back — the
    /// medium still errors on every read. The old code counted the blind
    /// write-back as `repaired`; the scrubber must re-read and count the
    /// block `unrecoverable` instead.
    #[test]
    fn sticky_latent_error_is_unrecoverable_not_repaired() {
        use iron_blockdev::StackBuilder;
        use iron_core::FaultKind;
        use iron_faultinject::{FaultPlan, FaultSpec, FaultStackExt, FaultTarget};

        let mut dev = MemDisk::for_tests(4096);
        crate::mkfs(&mut dev, Ext3Params::small(), IronConfig::full()).unwrap();
        let plan = FaultPlan::new();
        let ctl = plan.controller();
        let stack = StackBuilder::new(dev).with_faults(plan).build();
        let mut fs = crate::mount_full(stack, FsEnv::new()).unwrap();
        {
            let mut v = Vfs::new(&mut fs as &mut dyn SpecificFs);
            v.write_file("/f", b"protected").unwrap();
            v.sync().unwrap();
        }
        // Sticky read error on the inode-table block holding /f's inode.
        let (blk, _) = fs.layout().inode_location(3);
        ctl.inject(FaultSpec::sticky(
            FaultKind::ReadError,
            FaultTarget::Addr(blk),
        ));
        let report = scrub(&mut fs);
        assert_eq!(report.latent_errors, 1);
        assert_eq!(
            report.repaired, 0,
            "a blind write-back over a sticky error must not count as repair"
        );
        assert_eq!(report.unrecoverable, 1);
    }

    /// Regression test for the skip-predicate fix: the checksum table
    /// itself must be scrubbed (a corrupt table block turns every covered
    /// block into a false corruption verdict) and heals from its replica.
    #[test]
    fn scrub_detects_and_repairs_corrupt_cksum_table_block() {
        let dev = MemDisk::for_tests(4096);
        let mut fs = format_and_mount_full(dev, FsEnv::new(), Ext3Params::small()).unwrap();
        {
            let mut v = Vfs::new(&mut fs as &mut dyn SpecificFs);
            v.write_file("/f", b"protected").unwrap();
            v.sync().unwrap();
        }
        // Make the table and its mirror current, then corrupt the first
        // table block on the medium.
        fs.flush_cksum_table();
        fs.flush_replicas();
        let addr = BlockAddr(fs.layout().cksum_start);
        let expected = fs.cksum_table_block(0);
        fs.device_mut().poke(addr, &Block::filled(0xEE));
        let report = scrub(&mut fs);
        assert!(report.corruptions >= 1, "table corruption must be seen");
        assert!(report.repaired >= 1, "table block heals from the replica");
        assert_eq!(report.unrecoverable, 0);
        assert_eq!(fs.device().peek(addr), expected, "table healed in place");
    }

    #[test]
    fn scrub_without_checksums_misses_corruption() {
        // Return-code-only scrubbing (no Mc/Dc) discovers block failure but
        // not corruption — §3.2's point.
        let mut dev = MemDisk::for_tests(4096);
        crate::mkfs(&mut dev, Ext3Params::small(), IronConfig::off()).unwrap();
        let mut fs = mount(dev, FsEnv::new(), IronConfig::off()).unwrap();
        {
            let mut v = Vfs::new(&mut fs as &mut dyn SpecificFs);
            v.write_file("/f", b"unprotected").unwrap();
            v.sync().unwrap();
        }
        let victim = fs.blocks_of(3).unwrap()[0];
        fs.device_mut()
            .poke(BlockAddr(victim), &Block::filled(0x01));
        let report = scrub(&mut fs);
        assert_eq!(report.corruptions, 0, "silent corruption stays silent");
        assert_eq!(report.unrecoverable, 0);
    }
}

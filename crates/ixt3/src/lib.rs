//! # iron-ixt3
//!
//! **ixt3** — the paper's prototype IRON file system (§6): "Within ixt3, we
//! investigate the costs of using checksums to detect data corruption,
//! replication to provide redundancy for metadata structures, and parity
//! protection for user data."
//!
//! The mechanisms themselves live in the shared engine in `iron-ext3`
//! (ixt3 *is* a modified ext3 — the paper built it by embellishing ext3,
//! and so do we). This crate provides:
//!
//! * [`Ixt3Fs`] — the prototype's public face: mount/format helpers with
//!   the paper's configurations ([`mount_full`] is the
//!   Figure 3 configuration);
//! * [`scrub`] — a disk scrubber implementing *eager* detection (§3.2):
//!   walk the device, verify checksums, and repair bad blocks from
//!   replicas/parity before a reader ever trips over them;
//! * the ixt3-specific test suite (robustness under §6.2's fault matrix).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod scrub;

use iron_blockdev::{BlockDevice, RawAccess};
use iron_ext3::{Ext3Fs, Ext3Options, Ext3Params, IronConfig};
use iron_vfs::{FsEnv, VfsResult};

pub use iron_ext3::{Ext3Options as Ixt3Options, IronConfig as Ixt3Config};

/// The ixt3 file system: an [`Ext3Fs`] with IRON mechanisms enabled.
///
/// ixt3 is not a distinct on-disk format — it is ext3 plus checksum
/// tables, a metadata mirror, and per-file parity, all laid out by the same
/// `mkfs`. Any [`IronConfig`] combination can be mounted; the paper's
/// Table 6 sweeps all 32.
pub type Ixt3Fs<D> = Ext3Fs<D>;

/// Format a device for ixt3. `mirror` must be true if the mount will use
/// metadata replication (`Mr`) — it reserves the distant mirror region.
pub fn mkfs<D: BlockDevice + RawAccess>(
    dev: &mut D,
    mut params: Ext3Params,
    iron: IronConfig,
) -> VfsResult<()> {
    params.mirror_metadata = iron.meta_replication;
    Ext3Fs::mkfs(dev, params)
}

/// Mount ixt3 with an arbitrary IRON configuration.
pub fn mount<D: BlockDevice + RawAccess>(
    dev: D,
    env: FsEnv,
    iron: IronConfig,
) -> VfsResult<Ixt3Fs<D>> {
    Ext3Fs::mount(dev, env, Ext3Options::with_iron(iron))
}

/// Mount the full ixt3 configuration (`Mc Mr Dc Dp Tc`, bugs fixed) — the
/// configuration whose failure policy Figure 3 reports.
pub fn mount_full<D: BlockDevice + RawAccess>(dev: D, env: FsEnv) -> VfsResult<Ixt3Fs<D>> {
    mount(dev, env, IronConfig::full())
}

/// Format-and-mount convenience for the full configuration.
pub fn format_and_mount_full<D: BlockDevice + RawAccess>(
    mut dev: D,
    env: FsEnv,
    params: Ext3Params,
) -> VfsResult<Ixt3Fs<D>> {
    mkfs(&mut dev, params, IronConfig::full())?;
    mount_full(dev, env)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iron_blockdev::MemDisk;
    use iron_vfs::Vfs;

    #[test]
    fn full_mount_round_trip() {
        let dev = MemDisk::for_tests(4096);
        let fs = format_and_mount_full(dev, FsEnv::new(), Ext3Params::small()).unwrap();
        let mut v = Vfs::new(fs);
        v.write_file("/x", b"ixt3").unwrap();
        assert_eq!(v.read_file("/x").unwrap(), b"ixt3");
        assert!(v.fs().options().iron.meta_replication);
        assert!(v.fs().layout().params.mirror_metadata);
    }

    #[test]
    fn mkfs_reserves_mirror_only_when_needed() {
        let mut dev = MemDisk::for_tests(4096);
        mkfs(&mut dev, Ext3Params::small(), IronConfig::off()).unwrap();
        let fs = mount(dev, FsEnv::new(), IronConfig::off()).unwrap();
        assert!(!fs.layout().params.mirror_metadata);
        assert_eq!(fs.layout().fs_blocks, 4096);
    }
}

//! Serving-layer differential on ixt3 (full IRON configuration):
//! checksums, metadata replication, and parity maintenance must all
//! commute with the serving layer — the unmounted image of a concurrent
//! run is bit-identical to its serial replay at every thread count.

use iron_blockdev::MemDisk;
use iron_ext3::Ext3Params;
use iron_ixt3::{format_and_mount_full, Ixt3Fs};
use iron_serve::{assert_serial_equivalence, generate, memdisk_image, prepare, WorkloadSpec};
use iron_vfs::{FsEnv, Vfs};

fn mount_prepared(spec: &WorkloadSpec) -> Vfs<Ixt3Fs<MemDisk>> {
    let md = MemDisk::for_tests(4096);
    let fs = format_and_mount_full(md, FsEnv::new(), Ext3Params::small()).unwrap();
    let mut v = Vfs::new(fs);
    prepare(&mut v, spec);
    v
}

#[test]
fn ixt3_full_config_serve_matches_serial_replay_bit_identically() {
    let spec = WorkloadSpec::default();
    let sessions = generate(&spec);
    assert_serial_equivalence(
        || mount_prepared(&spec),
        |v| Some(memdisk_image(&v.into_fs().into_device())),
        &sessions,
        &[1, 2, 4, 8],
    );
}

//! Spatial locality of failures (§2.3.2 / §3.3): "replicas must account
//! for the spatial locality of failure (e.g., a surface scratch that
//! corrupts a sequence of neighboring blocks); hence, copies should be
//! allocated across remote parts of the disk."
//!
//! These tests drag a simulated scratch across the primary metadata and
//! check that ixt3's distant mirror still recovers, while a hypothetical
//! *adjacent* replica (modeled by scratching both locations) would not.

use iron_blockdev::MemDisk;
use iron_core::model::Locality;
use iron_core::{BlockAddr, Errno, FaultKind, Transience};
use iron_ext3::{Ext3Fs, Ext3Options, Ext3Params, IronConfig};
use iron_faultinject::{FaultSpec, FaultTarget, FaultyDisk};
use iron_vfs::{FsEnv, Vfs};

type Fs = Ext3Fs<FaultyDisk<MemDisk>>;

fn mount_full() -> (Vfs<Fs>, iron_faultinject::FaultController, FsEnv) {
    let params = Ext3Params {
        mirror_metadata: true,
        ..Ext3Params::small()
    };
    let mut md = MemDisk::for_tests(4096);
    Ext3Fs::<MemDisk>::mkfs(&mut md, params).unwrap();
    let faulty = FaultyDisk::new(md);
    let ctl = faulty.controller();
    let env = FsEnv::new();
    let fs = Ext3Fs::mount(
        faulty,
        env.clone(),
        Ext3Options::with_iron(IronConfig::full()),
    )
    .unwrap();
    (Vfs::new(fs), ctl, env)
}

fn scratch(ctl: &iron_faultinject::FaultController, start: u64, len: u64) {
    ctl.inject(FaultSpec {
        kind: FaultKind::ReadError,
        transience: Transience::Sticky,
        target: FaultTarget::Addr(BlockAddr(start)),
        locality: Locality::Contiguous { len },
    });
}

#[test]
fn scratch_across_metadata_region_recovered_from_distant_mirror() {
    let (mut v, ctl, env) = mount_full();
    v.mkdir("/d", 0o755).unwrap();
    v.write_file("/d/f", b"survives the scratch").unwrap();
    v.sync().unwrap();
    v.umount().unwrap();
    let dev = v.into_fs().into_device();
    let env2 = FsEnv::new();
    let fs = Ext3Fs::mount(
        dev,
        env2.clone(),
        Ext3Options::with_iron(IronConfig::full()),
    )
    .unwrap();
    let mut v = Vfs::new(fs);

    // A scratch across group 0's entire metadata head — both bitmaps and
    // the whole inode table. Every primary copy of the metadata needed to
    // reach /d/f is unreadable. (Data blocks are protected by per-file
    // parity, which lives *near* the data — a scratch across data + parity
    // genuinely loses data, as the control test below demonstrates for
    // adjacent copies.)
    let layout = *v.fs().layout();
    let g0 = layout.group_base(0);
    let metadata_head = 2 + layout.itable_blocks;
    scratch(&ctl, g0, metadata_head);

    assert_eq!(
        v.read_file("/d/f").unwrap(),
        b"survives the scratch",
        "distant replicas sit outside the scratch"
    );
    assert!(env2.klog.contains("recovered from replica"));
    drop(env);
}

#[test]
fn scratch_covering_both_copies_defeats_replication() {
    // Control experiment: if the scratch also reaches the mirror location
    // (as it would for an *adjacent* replica placement, the anti-pattern
    // §3.3 warns about), recovery fails.
    let (mut v, ctl, _env) = mount_full();
    v.write_file("/f", b"x").unwrap();
    v.sync().unwrap();
    v.umount().unwrap();
    let dev = v.into_fs().into_device();
    let env2 = FsEnv::new();
    let fs = Ext3Fs::mount(
        dev,
        env2.clone(),
        Ext3Options::with_iron(IronConfig::full()),
    )
    .unwrap();
    let mut v = Vfs::new(fs);

    let layout = *v.fs().layout();
    let itable = layout.inode_table(0);
    scratch(&ctl, itable, 4);
    scratch(&ctl, layout.replica_of(itable).0, 4); // "adjacent" placement
    let err = v.stat("/f").unwrap_err();
    assert_eq!(err.errno(), Some(Errno::EIO));
    assert!(env2.klog.contains("replica read failed"));
}

#[test]
fn transient_scratch_heals_on_retry_everywhere() {
    // A transient whole-neighborhood glitch (e.g. a transport brown-out,
    // §2.3.1) clears; the data path's retry plus redundancy hide it.
    let (mut v, ctl, _env) = mount_full();
    v.write_file("/f", &vec![0x31; 20_000]).unwrap();
    v.sync().unwrap();
    v.umount().unwrap();
    let dev = v.into_fs().into_device();
    let env2 = FsEnv::new();
    let fs = Ext3Fs::mount(
        dev,
        env2.clone(),
        Ext3Options::with_iron(IronConfig::full()),
    )
    .unwrap();
    let mut v = Vfs::new(fs);
    let g0 = v.fs().layout().group_base(0);
    ctl.inject(FaultSpec {
        kind: FaultKind::ReadError,
        transience: Transience::Transient(3),
        target: FaultTarget::Addr(BlockAddr(g0)),
        locality: Locality::Contiguous { len: 64 },
    });
    assert_eq!(v.read_file("/f").unwrap(), vec![0x31; 20_000]);
}

// ----------------------------------------------------------------------
// The full Figure 1 stack: ixt3 (all IRON features) over the write-back
// buffer cache AND the fault layer — recovery still works when reads are
// served through a cache.
// ----------------------------------------------------------------------

#[test]
fn cached_stack_recovers_from_replica() {
    use iron_blockdev::{CachePolicy, StackBuilder};
    use iron_core::BlockTag;
    use iron_faultinject::FaultStackExt;

    let plan = iron_faultinject::FaultPlan::new();
    let ctl = plan.controller();
    let mut dev = StackBuilder::memdisk(4096)
        .with_faults(plan)
        .with_cache(CachePolicy::write_back(32))
        .build();
    iron_ixt3::mkfs(
        dev.inner_mut().inner_mut(),
        Ext3Params {
            mirror_metadata: true,
            ..Ext3Params::small()
        },
        IronConfig::full(),
    )
    .unwrap();
    let env = FsEnv::new();
    let fs = iron_ixt3::mount_full(dev, env.clone()).unwrap();
    let mut v = Vfs::new(fs);
    v.write_file("/precious", &vec![7u8; 20_000]).unwrap();
    v.sync().unwrap();

    // Eviction pressure (capacity 32) means the inode block is long gone
    // from the cache; the injected read error fires against the medium and
    // ixt3 falls back to its distant replica.
    ctl.inject(FaultSpec::sticky(
        FaultKind::ReadError,
        FaultTarget::Tag(BlockTag("inode")),
    ));
    assert_eq!(v.read_file("/precious").unwrap(), vec![7u8; 20_000]);
}

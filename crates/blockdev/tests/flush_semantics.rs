//! Flush-vs-barrier audit regression tests.
//!
//! The crash model needs the two primitives kept distinct through every
//! layer: a *barrier* only orders writes, a *flush* durably seals them.
//! The audit outcome (see ROADMAP.md): `BlockDevice::flush` no longer has
//! a default body forwarding to `barrier` — a layer that implements
//! `barrier` but forgets `flush` would silently downgrade durability for
//! the whole stack above it, so every implementation is now forced to
//! state its flush semantics explicitly, and `MemDisk` counts the two
//! separately so stacks can assert end-to-end forwarding.

use iron_blockdev::{
    BlockDevice, CachePolicy, CrashRecorder, MemDisk, RawAccess, StackBuilder, WriteLog,
};
use iron_core::{Block, BlockAddr};

/// A flush issued at the top of the full write-back stack must arrive at
/// the medium *as a flush* — not as a barrier — and a barrier must not
/// masquerade as a flush.
#[test]
fn flush_reaches_the_medium_as_a_flush_through_the_full_stack() {
    let mut dev = StackBuilder::memdisk(64)
        .with_crash_recorder(WriteLog::new())
        .with_cache(CachePolicy::write_back(8))
        .build();

    dev.write(BlockAddr(1), &Block::filled(1)).unwrap();
    dev.barrier().unwrap();
    dev.write(BlockAddr(2), &Block::filled(2)).unwrap();

    // Barriers are absorbed into epoch seals: nothing below moves yet.
    let bottom = dev.inner().inner().stats();
    assert_eq!(bottom.flushes, 0, "no flush issued yet");
    assert_eq!(bottom.writes, 0, "writes still absorbed");

    dev.flush().unwrap();
    let bottom = dev.inner().inner().stats();
    assert_eq!(bottom.flushes, 1, "the flush arrived at the bottom");
    assert_eq!(
        bottom.barriers, 1,
        "one destage barrier between the two epochs — not the flush"
    );
    assert_eq!(bottom.writes, 2, "both epochs destaged");
    assert_eq!(dev.inner().inner().peek(BlockAddr(2)), Block::filled(2));
}

/// A bare barrier never counts as a flush anywhere in the stack.
#[test]
fn barrier_is_not_promoted_to_flush() {
    let mut disk = MemDisk::for_tests(16);
    disk.write(BlockAddr(0), &Block::filled(1)).unwrap();
    disk.barrier().unwrap();
    let s = disk.stats();
    assert_eq!(s.barriers, 1);
    assert_eq!(s.flushes, 0);
    disk.flush().unwrap();
    let s = disk.stats();
    assert_eq!(s.barriers, 1, "flush does not inflate the barrier count");
    assert_eq!(s.flushes, 1);
}

/// The crash recorder keeps the distinction: barriers seal epochs (an
/// ordering fact), only flushes append durability marks.
#[test]
fn recorder_separates_epoch_seals_from_flush_marks() {
    let mut dev = CrashRecorder::new(MemDisk::for_tests(16));
    let log = dev.log();
    dev.write(BlockAddr(1), &Block::filled(1)).unwrap();
    dev.barrier().unwrap();
    dev.write(BlockAddr(2), &Block::filled(2)).unwrap();
    dev.barrier().unwrap();
    let s = log.snapshot();
    assert_eq!(s.epoch_count(), 2);
    assert!(
        s.flush_marks.is_empty(),
        "barriers alone promise no durability"
    );

    dev.write(BlockAddr(3), &Block::filled(3)).unwrap();
    dev.flush().unwrap();
    let s = log.snapshot();
    assert_eq!(s.flush_marks, vec![3], "flush seals epochs 0..3 durable");
    assert_eq!(dev.inner().stats().flushes, 1, "flush forwarded below");
}

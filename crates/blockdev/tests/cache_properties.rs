//! Differential property tests of the write-back buffer cache: under any
//! sequence of reads, writes, barriers, and flushes, a cached device must
//! be indistinguishable from the bare disk — same read results, same
//! final medium once flushed — at every capacity down to a single block.
//!
//! Runs on the in-tree `iron-testkit` harness: every case is generated
//! from a reported seed, so any failure reruns deterministically with
//! `IRON_TESTKIT_SEED=<seed> cargo test -q <test_name>`.

use iron_blockdev::{
    BlockDevice, BufferCache, CachePolicy, DiskError, DiskResult, MemDisk, RawAccess, StackBuilder,
    TraceLayer,
};
use iron_core::{Block, BlockAddr, BlockTag, IoKind};
use iron_testkit::gen::{self, Gen};
use iron_testkit::prop::{check, Config};

const DISK_BLOCKS: u64 = 64;

#[derive(Clone, Debug)]
enum Op {
    /// Write block `addr` filled with `fill`.
    Write(u64, u8),
    /// Read block `addr` (out-of-range addresses probe error paths).
    Read(u64),
    Barrier,
    Flush,
}

fn op_gen() -> impl Gen<Value = Op> {
    gen::weighted(vec![
        (
            5,
            (gen::u64_in(0..DISK_BLOCKS), gen::u8_any())
                .map(|(a, f)| Op::Write(a, f))
                .boxed(),
        ),
        (4, gen::u64_in(0..DISK_BLOCKS + 2).map(Op::Read).boxed()),
        (1, gen::just(Op::Barrier).boxed()),
        (1, gen::just(Op::Flush).boxed()),
    ])
}

fn apply<D: BlockDevice>(dev: &mut D, op: &Op) -> DiskResult<Option<Block>> {
    match op {
        Op::Write(a, f) => dev.write(BlockAddr(*a), &Block::filled(*f)).map(|()| None),
        Op::Read(a) => dev.read(BlockAddr(*a)).map(Some),
        Op::Barrier => dev.barrier().map(|()| None),
        Op::Flush => dev.flush().map(|()| None),
    }
}

/// Cached and uncached devices agree on every operation's result, and on
/// the raw medium after a final flush — for write-back caches of any
/// capacity (including 1, where every access evicts) and for the
/// write-through mode.
#[test]
fn cached_device_is_equivalent_to_bare_disk() {
    let cases = (gen::vec_of(op_gen(), 1..120), gen::usize_in(1..24)).map(|(ops, cap)| (ops, cap));
    check(
        "cached_device_is_equivalent_to_bare_disk",
        Config::cases(150),
        &cases,
        |(ops, cap)| {
            for policy in [
                CachePolicy::WriteBack {
                    capacity: *cap,
                    shards: 4,
                },
                CachePolicy::WriteThrough,
            ] {
                let mut bare = MemDisk::for_tests(DISK_BLOCKS);
                let mut cached = BufferCache::new(MemDisk::for_tests(DISK_BLOCKS), policy);
                for op in ops {
                    let a = apply(&mut bare, op);
                    let b = apply(&mut cached, op);
                    assert_eq!(a, b, "op {op:?} diverged under {policy:?}");
                }
                cached.flush().expect("flush");
                let medium = cached.into_inner();
                for a in 0..DISK_BLOCKS {
                    assert_eq!(
                        bare.peek(BlockAddr(a)),
                        medium.peek(BlockAddr(a)),
                        "medium diverged at block {a} under {policy:?}"
                    );
                }
            }
        },
    );
}

/// Destaged write-back traffic respects barrier order: writes issued
/// before a barrier reach the medium before any write issued after it,
/// and within an epoch the elevator emits ascending addresses.
#[test]
fn destage_respects_barrier_epochs() {
    let cases = (gen::vec_of(op_gen(), 1..80), gen::usize_in(1..16)).map(|(ops, cap)| (ops, cap));
    check(
        "destage_respects_barrier_epochs",
        Config::cases(150),
        &cases,
        |(ops, cap)| {
            let mut cached = StackBuilder::memdisk(DISK_BLOCKS)
                .layer(TraceLayer::new)
                .with_cache(CachePolicy::WriteBack {
                    capacity: *cap,
                    shards: 4,
                })
                .build();
            let trace = cached.inner().trace();

            // Model the epoch each block's *last* write belongs to: the
            // epoch counter advances on a barrier iff something was
            // written since it last advanced.
            let mut epoch = 0u64;
            let mut epoch_dirty = false;
            let mut expected_epoch: std::collections::HashMap<u64, u64> =
                std::collections::HashMap::new();
            let mut mark = trace.len();

            let check_destage_order =
                |mark: usize,
                 trace: &iron_blockdev::IoTrace,
                 expected: &std::collections::HashMap<u64, u64>| {
                    let writes: Vec<u64> = trace
                        .since(mark)
                        .iter()
                        .filter(|e| e.kind == IoKind::Write)
                        .map(|e| e.addr.0)
                        .collect();
                    let epochs: Vec<u64> = writes.iter().map(|a| expected[a]).collect();
                    let mut sorted = epochs.clone();
                    sorted.sort_unstable();
                    assert_eq!(epochs, sorted, "epoch order violated: writes {writes:?}");
                    for pair in writes.windows(2) {
                        if expected[&pair[0]] == expected[&pair[1]] {
                            assert!(
                                pair[0] < pair[1],
                                "within-epoch elevator order violated: {writes:?}"
                            );
                        }
                    }
                };

            for op in ops {
                match op {
                    Op::Write(a, f) => {
                        cached.write(BlockAddr(*a), &Block::filled(*f)).unwrap();
                        expected_epoch.insert(*a, epoch);
                        epoch_dirty = true;
                        // Cache pressure may destage early; fold those
                        // writes into the running check.
                        check_destage_order(mark, &trace, &expected_epoch);
                        mark = trace.len();
                    }
                    Op::Read(a) => {
                        let _ = cached.read(BlockAddr(*a));
                        check_destage_order(mark, &trace, &expected_epoch);
                        mark = trace.len();
                    }
                    Op::Barrier => {
                        cached.barrier().unwrap();
                        if epoch_dirty {
                            epoch += 1;
                            epoch_dirty = false;
                        }
                    }
                    Op::Flush => {
                        cached.flush().unwrap();
                        check_destage_order(mark, &trace, &expected_epoch);
                        mark = trace.len();
                    }
                }
            }
            cached.flush().unwrap();
            check_destage_order(mark, &trace, &expected_epoch);
        },
    );
}

// ----------------------------------------------------------------------
// Failed write-back: the lost-write window.
// ----------------------------------------------------------------------

/// A disk whose writes to one address fail until `heal` is poked.
struct BadSpot {
    inner: MemDisk,
    bad: BlockAddr,
    healed: bool,
}

impl BlockDevice for BadSpot {
    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }
    fn read_tagged(&mut self, addr: BlockAddr, tag: BlockTag) -> DiskResult<Block> {
        self.inner.read_tagged(addr, tag)
    }
    fn write_tagged(&mut self, addr: BlockAddr, block: &Block, tag: BlockTag) -> DiskResult<()> {
        if addr == self.bad && !self.healed {
            return Err(DiskError::Io {
                addr,
                kind: IoKind::Write,
            });
        }
        self.inner.write_tagged(addr, block, tag)
    }
    fn barrier(&mut self) -> DiskResult<()> {
        self.inner.barrier()
    }
    fn flush(&mut self) -> DiskResult<()> {
        self.inner.flush()
    }
}

#[test]
fn failed_writeback_surfaces_on_flush_and_retries() {
    let mut cache = BufferCache::write_back(BadSpot {
        inner: MemDisk::for_tests(16),
        bad: BlockAddr(5),
        healed: false,
    });
    cache.write(BlockAddr(3), &Block::filled(3)).unwrap();
    cache.write(BlockAddr(5), &Block::filled(5)).unwrap();
    cache.write(BlockAddr(9), &Block::filled(9)).unwrap();

    // The absorbed write succeeded; only the flush reports the failure —
    // the paper's lost-write window (§2.2) made concrete.
    let err = cache.flush().unwrap_err();
    assert_eq!(
        err,
        DiskError::Io {
            addr: BlockAddr(5),
            kind: IoKind::Write
        }
    );
    // The failed block is still dirty; the others may or may not have
    // landed, but nothing was silently dropped.
    assert!(cache.dirty_blocks() >= 1);

    // After the spot heals, a retry drains everything.
    cache.inner_mut().healed = true;
    cache.flush().expect("healed flush");
    assert_eq!(cache.dirty_blocks(), 0);
    let medium = cache.into_inner();
    for (a, f) in [(3u64, 3u8), (5, 5), (9, 9)] {
        assert_eq!(medium.inner.peek(BlockAddr(a)), Block::filled(f));
    }
}

//! The [`BlockDevice`] trait and device-level errors.

use std::fmt;

use iron_core::{Block, BlockAddr, BlockTag, IoKind};

/// Errors a block device can return to the layer above.
///
/// These are the *explicit* error codes of the fail-partial model — the ones
/// a file system can notice via `DErrorCode`. Silent corruption, by
/// definition, does not produce a `DiskError`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DiskError {
    /// A block-level I/O failure (latent sector error / failed write).
    Io {
        /// The failed block.
        addr: BlockAddr,
        /// Whether the failure happened on a read or a write.
        kind: IoKind,
    },
    /// Address beyond the end of the device.
    OutOfRange {
        /// The offending address.
        addr: BlockAddr,
    },
    /// The whole device has failed (classic fail-stop).
    DeviceFailed,
    /// The request exceeded its I/O deadline (sim-clock time). Produced
    /// by a deadline-checking layer (e.g. `RetryLayer`), never by the
    /// medium itself: it turns time-domain faults (slow/hung disks) into
    /// an explicit, detectable error class.
    Timeout {
        /// The block whose request timed out.
        addr: BlockAddr,
        /// Whether the timed-out request was a read or a write.
        kind: IoKind,
    },
}

impl fmt::Display for DiskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiskError::Io { addr, kind } => write!(f, "I/O error: {kind} of block {addr} failed"),
            DiskError::OutOfRange { addr } => write!(f, "block {addr} out of range"),
            DiskError::DeviceFailed => write!(f, "device failed"),
            DiskError::Timeout { addr, kind } => {
                write!(f, "I/O deadline exceeded: {kind} of block {addr}")
            }
        }
    }
}

impl std::error::Error for DiskError {}

/// Result alias for device operations.
pub type DiskResult<T> = Result<T, DiskError>;

/// A block device as seen by a file system: fixed-size blocks, explicit
/// error codes, typed I/O, and an ordering barrier.
pub trait BlockDevice {
    /// Total number of blocks.
    fn num_blocks(&self) -> u64;

    /// Read one block, tagging the request with the block type the caller
    /// believes it is reading. The tag has **no semantic effect** on a
    /// healthy device; the fault-injection layer uses it for type-aware
    /// targeting, and the trace records it.
    fn read_tagged(&mut self, addr: BlockAddr, tag: BlockTag) -> DiskResult<Block>;

    /// Write one block, tagged (see [`Self::read_tagged`]).
    fn write_tagged(&mut self, addr: BlockAddr, block: &Block, tag: BlockTag) -> DiskResult<()>;

    /// Untyped read (tag [`BlockTag::UNTYPED`]).
    fn read(&mut self, addr: BlockAddr) -> DiskResult<Block> {
        self.read_tagged(addr, BlockTag::UNTYPED)
    }

    /// Untyped write (tag [`BlockTag::UNTYPED`]).
    fn write(&mut self, addr: BlockAddr, block: &Block) -> DiskResult<()> {
        self.write_tagged(addr, block, BlockTag::UNTYPED)
    }

    /// Ordering barrier: all previously issued writes are on the medium
    /// before any later write is started.
    ///
    /// On the simulated disk this charges the rotational delay a real drive
    /// pays when a dependent write misses its angular slot — the cost that
    /// the paper's transactional checksums eliminate for journal commits.
    fn barrier(&mut self) -> DiskResult<()>;

    /// Durability flush: everything previously issued is on the medium
    /// *and* will survive a crash / power loss. A barrier only orders; a
    /// flush seals. The method is deliberately **required** (no default
    /// forwarding to [`Self::barrier`]): an intermediate layer that
    /// silently downgraded flush to barrier would forfeit durability for
    /// the whole stack above it — the exact conflation the crash-state
    /// enumerator exists to catch — so every implementation must state
    /// its flush semantics explicitly.
    fn flush(&mut self) -> DiskResult<()>;

    /// Readahead hint: the caller is about to read `[start, start + len)`
    /// in ascending order (a sequential scan — journal replay, an fsck
    /// region pass, a scrub sweep). Purely advisory: it moves **no data**,
    /// triggers no faults, and appears in no trace, so layered semantics
    /// are bit-identical with or without it. A device with a timing model
    /// may use it the way drive firmware uses its readahead buffer — keep
    /// streaming across track boundaries instead of paying a positioning
    /// charge per track (see `MemDisk`). Intermediate layers forward the
    /// hint down the stack; the default drops it (hints are droppable by
    /// definition).
    fn readahead(&mut self, start: BlockAddr, len: u64) {
        let _ = (start, len);
    }
}

/// Untimed, untraced access to the raw medium.
///
/// This is the harness's side channel: the gray-box block classifier walks
/// the image through `peek`, the corruption injector fabricates bad blocks
/// from real contents, and tests inspect the medium directly. It deliberately
/// bypasses the timing model and the fault plan.
pub trait RawAccess {
    /// Read the raw contents of a block (no timing, no faults, no trace).
    fn peek(&self, addr: BlockAddr) -> Block;

    /// Overwrite the raw contents of a block (no timing, no faults, no
    /// trace).
    fn poke(&mut self, addr: BlockAddr, block: &Block);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disk_error_display() {
        let e = DiskError::Io {
            addr: BlockAddr(9),
            kind: IoKind::Read,
        };
        assert_eq!(e.to_string(), "I/O error: read of block #9 failed");
        assert_eq!(
            DiskError::OutOfRange { addr: BlockAddr(5) }.to_string(),
            "block #5 out of range"
        );
        assert_eq!(DiskError::DeviceFailed.to_string(), "device failed");
        assert_eq!(
            DiskError::Timeout {
                addr: BlockAddr(2),
                kind: IoKind::Write
            }
            .to_string(),
            "I/O deadline exceeded: write of block #2"
        );
    }
}

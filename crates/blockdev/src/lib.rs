//! # iron-blockdev
//!
//! Simulated block devices.
//!
//! The paper injects faults "just beneath the file system" using a
//! pseudo-device driver (§4.2); everything below that layer — the device
//! driver, controller, transport, and the disk itself (Figure 1) — is here
//! collapsed into a single simulated disk, [`MemDisk`].
//!
//! `MemDisk` is a *perfect* disk: it never fails. Fault injection lives one
//! crate up, in `iron-faultinject`, which wraps any [`BlockDevice`].
//!
//! Two aspects matter for reproducing the paper:
//!
//! * **Typed I/O** ([`BlockDevice::read_tagged`]): file systems tag each
//!   request with the block type being accessed, enabling type-aware fault
//!   injection.
//! * **Timing** ([`geometry::DiskGeometry`]): each request charges seek,
//!   rotational, and transfer time to a shared [`iron_core::SimClock`]. The
//!   performance study (Table 6) is measured in this simulated time; in
//!   particular the *ordering barrier* ([`BlockDevice::barrier`]) models the
//!   lost rotation that ext3 pays between journal data and the commit block
//!   — the cost that transactional checksums (§6.1) eliminate.
//!
//! Between the file system and the disk sits the generic buffer cache of
//! Figure 1 ([`cache::BufferCache`]): sharded-LRU, write-back, barrier-
//! epoch-ordered destaging through an elevator [`sched::IoScheduler`].
//! Stacks are assembled with the fluent [`stack::StackBuilder`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod crashrec;
pub mod device;
pub mod geometry;
pub mod memdisk;
pub mod retry;
pub mod sched;
pub mod stack;
pub mod trace;

pub use cache::{BufferCache, CachePolicy, CacheStats};
pub use crashrec::{CrashRecorder, WriteLog, WriteLogSnapshot, WriteRecord};
pub use device::{BlockDevice, DiskError, DiskResult, RawAccess};
pub use geometry::DiskGeometry;
pub use memdisk::MemDisk;
pub use retry::{RetryConfig, RetryLayer, RetryStats, RetryStatsSnapshot};
pub use sched::{IoScheduler, ScanReadahead, Sweep};
pub use stack::StackBuilder;
pub use trace::{IoEvent, IoOutcome, IoTrace, TraceLayer};

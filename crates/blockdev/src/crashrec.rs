//! [`CrashRecorder`]: records the write stream with barrier/flush epoch
//! boundaries, for block-layer crash-state enumeration.
//!
//! The paper's fail-partial model says what is on the medium after a crash
//! is *some* barrier-respecting subset of the writes the file system
//! issued: the drive's volatile write cache may hold any suffix of the
//! stream, reordered freely between ordering points. This layer captures
//! everything needed to reconstruct those states:
//!
//! * every write, in issue order, with its payload and block-type tag;
//! * **barrier epochs**: [`BlockDevice::barrier`] seals the current epoch
//!   (ordering only — nothing about durability);
//! * **flush marks**: [`BlockDevice::flush`] seals the epoch *and* records
//!   that every earlier epoch is durably on the medium — a crash can no
//!   longer lose them.
//!
//! A crash image is then "all epochs before some cut, plus any subset of
//! the cut epoch's writes" — `iron-crash` enumerates these and checks the
//! recovery path against each. The recorder itself is transparent: all
//! requests forward to the inner device unchanged, and `peek`/`poke` (the
//! harness side channel) are deliberately not recorded.

use std::sync::{Arc, Mutex};

use iron_core::{Block, BlockAddr, BlockTag};

use crate::device::{BlockDevice, DiskResult, RawAccess};

/// One recorded write.
#[derive(Clone, Debug)]
pub struct WriteRecord {
    /// Issue-order sequence number (0-based, dense).
    pub seq: u64,
    /// Barrier epoch the write belongs to.
    pub epoch: u64,
    /// Target block.
    pub addr: BlockAddr,
    /// Payload as issued.
    pub data: Block,
    /// The block-type tag the file system attached.
    pub tag: BlockTag,
}

#[derive(Default)]
struct LogInner {
    records: Vec<WriteRecord>,
    /// Current (open) epoch index.
    epoch: u64,
    /// True once the current epoch holds a write — an empty epoch is never
    /// sealed, matching the buffer cache's epoch accounting.
    epoch_open: bool,
    /// For each completed flush, the first epoch index *not* covered by
    /// it: every epoch `< mark` was durable on the medium at that point.
    flush_marks: Vec<u64>,
}

/// An immutable copy of a [`WriteLog`] taken at one instant — what the
/// enumerator works from.
#[derive(Clone, Default)]
pub struct WriteLogSnapshot {
    /// Every recorded write, in issue order.
    pub records: Vec<WriteRecord>,
    /// Flush marks: each entry `m` promises epochs `0..m` were durable.
    pub flush_marks: Vec<u64>,
}

impl WriteLogSnapshot {
    /// Number of epochs that contain at least one write.
    pub fn epoch_count(&self) -> u64 {
        self.records.last().map_or(0, |r| r.epoch + 1)
    }

    /// The records of one epoch, in issue order.
    pub fn epoch_records(&self, epoch: u64) -> &[WriteRecord] {
        let lo = self.records.partition_point(|r| r.epoch < epoch);
        let hi = self.records.partition_point(|r| r.epoch <= epoch);
        &self.records[lo..hi]
    }
}

/// A shareable write log; cloning shares the underlying log (like
/// [`crate::IoTrace`]).
#[derive(Clone, Default)]
pub struct WriteLog {
    inner: Arc<Mutex<LogInner>>,
}

impl WriteLog {
    /// A new, empty log.
    pub fn new() -> Self {
        Self::default()
    }

    fn record_write(&self, addr: BlockAddr, data: &Block, tag: BlockTag) {
        let mut g = self.inner.lock().unwrap();
        let seq = g.records.len() as u64;
        let epoch = g.epoch;
        g.records.push(WriteRecord {
            seq,
            epoch,
            addr,
            data: data.clone(),
            tag,
        });
        g.epoch_open = true;
    }

    fn seal_epoch(g: &mut LogInner) {
        if g.epoch_open {
            g.epoch += 1;
            g.epoch_open = false;
        }
    }

    fn record_barrier(&self) {
        Self::seal_epoch(&mut self.inner.lock().unwrap());
    }

    fn record_flush(&self) {
        let mut g = self.inner.lock().unwrap();
        Self::seal_epoch(&mut g);
        let mark = g.epoch;
        g.flush_marks.push(mark);
    }

    /// Number of writes recorded so far.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().records.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of flushes recorded so far (cheap — no record copying).
    pub fn flush_count(&self) -> usize {
        self.inner.lock().unwrap().flush_marks.len()
    }

    /// Copy out the full log state.
    pub fn snapshot(&self) -> WriteLogSnapshot {
        let g = self.inner.lock().unwrap();
        WriteLogSnapshot {
            records: g.records.clone(),
            flush_marks: g.flush_marks.clone(),
        }
    }

    /// Discard everything (epoch counter included).
    pub fn clear(&self) {
        *self.inner.lock().unwrap() = LogInner::default();
    }
}

/// A transparent layer that records the write stream crossing it into a
/// [`WriteLog`]. Place it directly above the medium whose crash states
/// are to be enumerated.
pub struct CrashRecorder<D> {
    inner: D,
    log: WriteLog,
}

impl<D: BlockDevice> CrashRecorder<D> {
    /// Wrap `inner` with a fresh log.
    pub fn new(inner: D) -> Self {
        Self::with_log(inner, WriteLog::new())
    }

    /// Wrap `inner`, recording into an existing (shared) log.
    pub fn with_log(inner: D, log: WriteLog) -> Self {
        CrashRecorder { inner, log }
    }

    /// The shared log handle.
    pub fn log(&self) -> WriteLog {
        self.log.clone()
    }

    /// Access the wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Mutable access to the wrapped device.
    pub fn inner_mut(&mut self) -> &mut D {
        &mut self.inner
    }

    /// Unwrap the inner device.
    pub fn into_inner(self) -> D {
        self.inner
    }
}

impl<D: BlockDevice> BlockDevice for CrashRecorder<D> {
    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn read_tagged(&mut self, addr: BlockAddr, tag: BlockTag) -> DiskResult<Block> {
        self.inner.read_tagged(addr, tag)
    }

    fn write_tagged(&mut self, addr: BlockAddr, block: &Block, tag: BlockTag) -> DiskResult<()> {
        // Record only writes that reached the device below: a failed write
        // never lands on the medium, so it is not a crash-state candidate.
        self.inner.write_tagged(addr, block, tag)?;
        self.log.record_write(addr, block, tag);
        Ok(())
    }

    fn barrier(&mut self) -> DiskResult<()> {
        self.inner.barrier()?;
        self.log.record_barrier();
        Ok(())
    }

    fn flush(&mut self) -> DiskResult<()> {
        self.inner.flush()?;
        self.log.record_flush();
        Ok(())
    }

    fn readahead(&mut self, start: BlockAddr, len: u64) {
        // Hints move no data, so there is nothing to record.
        self.inner.readahead(start, len);
    }
}

impl<D: RawAccess> RawAccess for CrashRecorder<D> {
    fn peek(&self, addr: BlockAddr) -> Block {
        self.inner.peek(addr)
    }

    fn poke(&mut self, addr: BlockAddr, block: &Block) {
        self.inner.poke(addr, block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memdisk::MemDisk;

    fn w(d: &mut CrashRecorder<MemDisk>, addr: u64, fill: u8) {
        d.write(BlockAddr(addr), &Block::filled(fill)).unwrap();
    }

    #[test]
    fn records_writes_with_epochs_and_flush_marks() {
        let mut d = CrashRecorder::new(MemDisk::for_tests(16));
        let log = d.log();
        w(&mut d, 1, 1);
        w(&mut d, 2, 2);
        d.barrier().unwrap();
        w(&mut d, 3, 3);
        d.flush().unwrap();
        w(&mut d, 4, 4);

        let s = log.snapshot();
        assert_eq!(s.records.len(), 4);
        assert_eq!(
            s.records.iter().map(|r| r.epoch).collect::<Vec<_>>(),
            vec![0, 0, 1, 2]
        );
        assert_eq!(s.epoch_count(), 3);
        assert_eq!(s.flush_marks, vec![2], "epochs 0 and 1 sealed durable");
        assert_eq!(s.epoch_records(0).len(), 2);
        assert_eq!(s.epoch_records(2)[0].addr, BlockAddr(4));
    }

    #[test]
    fn empty_epochs_are_never_sealed() {
        let mut d = CrashRecorder::new(MemDisk::for_tests(16));
        let log = d.log();
        d.barrier().unwrap();
        d.barrier().unwrap();
        d.flush().unwrap();
        w(&mut d, 1, 1);
        d.barrier().unwrap();
        d.barrier().unwrap();
        w(&mut d, 2, 2);
        let s = log.snapshot();
        assert_eq!(
            s.records.iter().map(|r| r.epoch).collect::<Vec<_>>(),
            vec![0, 1]
        );
        assert_eq!(s.flush_marks, vec![0], "flush before any write marks 0");
    }

    #[test]
    fn recorder_is_transparent_and_ignores_raw_access() {
        let mut d = CrashRecorder::new(MemDisk::for_tests(16));
        let log = d.log();
        d.poke(BlockAddr(5), &Block::filled(9));
        assert_eq!(d.peek(BlockAddr(5)), Block::filled(9));
        assert_eq!(d.read(BlockAddr(5)).unwrap(), Block::filled(9));
        assert!(log.is_empty(), "peek/poke/read are not crash candidates");
        w(&mut d, 5, 7);
        assert_eq!(d.inner().peek(BlockAddr(5)), Block::filled(7));
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn failed_writes_are_not_recorded() {
        let mut d = CrashRecorder::new(MemDisk::for_tests(4));
        let log = d.log();
        assert!(d.write(BlockAddr(99), &Block::zeroed()).is_err());
        assert!(log.is_empty());
    }
}

//! [`RetryLayer`]: device-level enactment of the failure-policy engine.
//!
//! Real storage stacks retry beneath the file system — the SCSI mid-layer
//! re-issues failed commands with its own budget before the FS ever sees
//! an error (§3 of the paper notes most FS retry behavior actually lives
//! here). `RetryLayer` is that mid-layer: it wraps any [`BlockDevice`],
//! consults a shared [`PolicyHandle`], and walks the matched escalation
//! chain on every failed request — bounded re-issues with deterministic
//! sim-clock backoff, then propagation. File-system-only rungs
//! (`Redundancy`, `Remap`, `DegradeReadOnly`) are skipped at this level;
//! the layer cannot remount anything read-only, it can only hand the
//! error up to someone who can.
//!
//! The layer also implements **I/O deadlines**: when configured, any
//! request whose simulated service time exceeds the deadline is failed
//! with [`DiskError::Timeout`] even though the medium "completed" it.
//! This is what turns the time-domain faults (`FaultKind::Slow`/`Hang`)
//! into a detectable error class.
//!
//! On the fault-free path the layer reads the clock twice and touches two
//! atomics — it charges **zero** simulated time, so a policy-equipped
//! stack is sim-time-identical to a bare one (the `retry_overhead` bench
//! pins this).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use iron_core::recover::{ErrorClass, PolicyHandle, RecoveryAction};
use iron_core::{Block, BlockAddr, BlockTag, IoKind, KernelLog, SimClock};

use crate::device::{BlockDevice, DiskError, DiskResult, RawAccess};

/// Classify a [`DiskError`] for policy lookup.
pub fn classify(err: &DiskError) -> ErrorClass {
    match err {
        DiskError::Io { .. } | DiskError::OutOfRange { .. } => ErrorClass::Io,
        DiskError::DeviceFailed => ErrorClass::DeviceFailed,
        DiskError::Timeout { .. } => ErrorClass::Timeout,
    }
}

/// Configuration for a [`RetryLayer`].
#[derive(Clone, Debug)]
pub struct RetryConfig {
    /// The shared (runtime-swappable) policy table and counters.
    pub policy: PolicyHandle,
    /// The clock backoff delays are charged against — the same clock the
    /// timed disk below advances.
    pub clock: SimClock,
    /// Per-request I/O deadline in sim ns; `None` disables timeouts.
    pub deadline_ns: Option<u64>,
    /// Kernel log that enacted actions are echoed to.
    pub klog: KernelLog,
}

impl RetryConfig {
    /// A config with the given policy and clock, no deadline, and a fresh
    /// log.
    pub fn new(policy: PolicyHandle, clock: SimClock) -> Self {
        RetryConfig {
            policy,
            clock,
            deadline_ns: None,
            klog: KernelLog::new(),
        }
    }

    /// Set the per-request I/O deadline.
    pub fn deadline_ns(mut self, ns: u64) -> Self {
        self.deadline_ns = Some(ns);
        self
    }

    /// Use an existing kernel log.
    pub fn with_klog(mut self, klog: KernelLog) -> Self {
        self.klog = klog;
        self
    }
}

#[derive(Debug, Default)]
struct StatCells {
    ops: AtomicU64,
    faulted_ops: AtomicU64,
    attempts: AtomicU64,
    masked: AtomicU64,
    timeouts: AtomicU64,
    propagated: AtomicU64,
}

/// Point-in-time counters for one [`RetryLayer`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RetryStatsSnapshot {
    /// Tagged read/write requests seen.
    pub ops: u64,
    /// Requests whose first attempt failed.
    pub faulted_ops: u64,
    /// Total device attempts issued (first attempts + re-issues).
    pub attempts: u64,
    /// Requests that ultimately succeeded after ≥ 1 re-issue.
    pub masked: u64,
    /// Attempts failed by the deadline check.
    pub timeouts: u64,
    /// Requests whose error was returned to the caller.
    pub propagated: u64,
}

/// Shared handle onto a [`RetryLayer`]'s counters.
#[derive(Clone, Debug, Default)]
pub struct RetryStats {
    cells: Arc<StatCells>,
}

impl RetryStats {
    /// Copy out the counters.
    pub fn snapshot(&self) -> RetryStatsSnapshot {
        let c = &self.cells;
        RetryStatsSnapshot {
            ops: c.ops.load(Ordering::Relaxed),
            faulted_ops: c.faulted_ops.load(Ordering::Relaxed),
            attempts: c.attempts.load(Ordering::Relaxed),
            masked: c.masked.load(Ordering::Relaxed),
            timeouts: c.timeouts.load(Ordering::Relaxed),
            propagated: c.propagated.load(Ordering::Relaxed),
        }
    }
}

/// A policy-enacting retry/deadline layer beneath the file system.
pub struct RetryLayer<D> {
    inner: D,
    policy: PolicyHandle,
    clock: SimClock,
    deadline_ns: Option<u64>,
    klog: KernelLog,
    stats: RetryStats,
}

impl<D: BlockDevice> RetryLayer<D> {
    /// Wrap `inner` under the given configuration.
    pub fn new(inner: D, config: RetryConfig) -> Self {
        RetryLayer {
            inner,
            policy: config.policy,
            clock: config.clock,
            deadline_ns: config.deadline_ns,
            klog: config.klog,
            stats: RetryStats::default(),
        }
    }

    /// Shared counter handle (clone it before moving the layer into a
    /// stack).
    pub fn stats(&self) -> RetryStats {
        self.stats.clone()
    }

    /// The policy handle this layer consults (clone to reconfigure at
    /// runtime).
    pub fn policy(&self) -> PolicyHandle {
        self.policy.clone()
    }

    /// Access the wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Mutable access to the wrapped device.
    pub fn inner_mut(&mut self) -> &mut D {
        &mut self.inner
    }

    /// Issue one attempt and apply the deadline check: a request that
    /// exceeds its deadline fails with [`DiskError::Timeout`] even if the
    /// medium eventually completed it — the initiator has already given
    /// up by then.
    fn attempt<T>(
        &mut self,
        addr: BlockAddr,
        io: IoKind,
        op: &mut impl FnMut(&mut D) -> DiskResult<T>,
    ) -> DiskResult<T> {
        self.stats.cells.attempts.fetch_add(1, Ordering::Relaxed);
        let start = self.clock.now_ns();
        let out = op(&mut self.inner);
        if out.is_ok() {
            if let Some(deadline) = self.deadline_ns {
                if self.clock.elapsed_since(start) > deadline {
                    self.stats.cells.timeouts.fetch_add(1, Ordering::Relaxed);
                    self.policy.counters().count_timeout();
                    return Err(DiskError::Timeout { addr, kind: io });
                }
            }
        }
        out
    }

    /// The policy walk: first attempt, then the matched escalation chain.
    fn run<T>(
        &mut self,
        addr: BlockAddr,
        tag: BlockTag,
        io: IoKind,
        mut op: impl FnMut(&mut D) -> DiskResult<T>,
    ) -> DiskResult<T> {
        self.stats.cells.ops.fetch_add(1, Ordering::Relaxed);
        let mut last_err = match self.attempt(addr, io, &mut op) {
            Ok(v) => return Ok(v),
            Err(e) => e,
        };
        self.stats.cells.faulted_ops.fetch_add(1, Ordering::Relaxed);

        let chain = self.policy.chain_for(tag, io, classify(&last_err));
        for action in chain {
            match action {
                RecoveryAction::Retry { budget, backoff } => {
                    for reissue in 1..=budget {
                        let delay = backoff.delay_ns(reissue);
                        self.clock.advance_ns(delay);
                        self.policy.counters().add_backoff_ns(delay);
                        self.policy.record(
                            &self.klog,
                            "retrylayer",
                            action,
                            &format!("{io} {addr} [{tag}] re-issue {reissue}/{budget}"),
                        );
                        match self.attempt(addr, io, &mut op) {
                            Ok(v) => {
                                self.stats.cells.masked.fetch_add(1, Ordering::Relaxed);
                                self.policy.counters().count_masked();
                                self.klog.info(
                                    "retrylayer",
                                    format!("{io} {addr} [{tag}] succeeded on re-issue {reissue}"),
                                );
                                return Ok(v);
                            }
                            Err(e) => last_err = e,
                        }
                    }
                    self.policy.counters().count_exhausted();
                }
                // A device layer has no redundancy, no remap table, and no
                // mount to degrade: these rungs belong to the file system
                // above. Fall through to the next rung.
                RecoveryAction::Redundancy
                | RecoveryAction::Remap
                | RecoveryAction::DegradeReadOnly => {}
                RecoveryAction::Propagate | RecoveryAction::Stop => {
                    self.stats.cells.propagated.fetch_add(1, Ordering::Relaxed);
                    self.policy.record(
                        &self.klog,
                        "retrylayer",
                        action,
                        &format!("{io} {addr} [{tag}]"),
                    );
                    return Err(last_err);
                }
            }
        }
        // Chain exhausted without a terminal rung: propagate.
        self.stats.cells.propagated.fetch_add(1, Ordering::Relaxed);
        self.policy.counters().count_propagate();
        Err(last_err)
    }
}

impl<D: BlockDevice> BlockDevice for RetryLayer<D> {
    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn read_tagged(&mut self, addr: BlockAddr, tag: BlockTag) -> DiskResult<Block> {
        self.run(addr, tag, IoKind::Read, |d| d.read_tagged(addr, tag))
    }

    fn write_tagged(&mut self, addr: BlockAddr, block: &Block, tag: BlockTag) -> DiskResult<()> {
        self.run(addr, tag, IoKind::Write, |d| {
            d.write_tagged(addr, block, tag)
        })
    }

    fn barrier(&mut self) -> DiskResult<()> {
        self.inner.barrier()
    }

    fn flush(&mut self) -> DiskResult<()> {
        self.inner.flush()
    }

    fn readahead(&mut self, start: BlockAddr, len: u64) {
        self.inner.readahead(start, len);
    }
}

impl<D: RawAccess> RawAccess for RetryLayer<D> {
    fn peek(&self, addr: BlockAddr) -> Block {
        self.inner.peek(addr)
    }

    fn poke(&mut self, addr: BlockAddr, block: &Block) {
        self.inner.poke(addr, block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memdisk::MemDisk;
    use iron_core::recover::{Backoff, FailurePolicyTable};

    /// A flaky test double: fails the first `fail_first` tagged requests
    /// to a chosen address, succeeds afterwards.
    struct Flaky {
        inner: MemDisk,
        victim: BlockAddr,
        remaining: u32,
        attempts_on_victim: u64,
    }

    impl BlockDevice for Flaky {
        fn num_blocks(&self) -> u64 {
            self.inner.num_blocks()
        }
        fn read_tagged(&mut self, addr: BlockAddr, tag: BlockTag) -> DiskResult<Block> {
            if addr == self.victim {
                self.attempts_on_victim += 1;
                if self.remaining > 0 {
                    self.remaining -= 1;
                    return Err(DiskError::Io {
                        addr,
                        kind: IoKind::Read,
                    });
                }
            }
            self.inner.read_tagged(addr, tag)
        }
        fn write_tagged(
            &mut self,
            addr: BlockAddr,
            block: &Block,
            tag: BlockTag,
        ) -> DiskResult<()> {
            self.inner.write_tagged(addr, block, tag)
        }
        fn barrier(&mut self) -> DiskResult<()> {
            self.inner.barrier()
        }
        fn flush(&mut self) -> DiskResult<()> {
            self.inner.flush()
        }
    }

    fn retry_policy(budget: u32, backoff: Backoff) -> PolicyHandle {
        PolicyHandle::new(FailurePolicyTable::with_default(vec![
            RecoveryAction::Retry { budget, backoff },
            RecoveryAction::Propagate,
        ]))
    }

    fn flaky_layer(fail_first: u32, policy: PolicyHandle) -> (RetryLayer<Flaky>, SimClock) {
        let inner = MemDisk::for_tests(16);
        let clock = inner.clock();
        let flaky = Flaky {
            inner,
            victim: BlockAddr(3),
            remaining: fail_first,
            attempts_on_victim: 0,
        };
        let layer = RetryLayer::new(flaky, RetryConfig::new(policy, clock.clone()));
        (layer, clock)
    }

    #[test]
    fn fault_free_path_charges_no_time_and_issues_once() {
        let (mut layer, clock) = flaky_layer(0, retry_policy(3, Backoff::none()));
        let before = clock.now_ns();
        layer.read(BlockAddr(5)).unwrap();
        layer.write(BlockAddr(6), &Block::filled(1)).unwrap();
        assert_eq!(clock.elapsed_since(before), 0);
        let s = layer.stats().snapshot();
        assert_eq!(s.ops, 2);
        assert_eq!(s.attempts, 2);
        assert_eq!(s.faulted_ops, 0);
    }

    #[test]
    fn transient_fault_is_masked_within_budget() {
        let (mut layer, _clock) = flaky_layer(2, retry_policy(3, Backoff::none()));
        let got = layer.read(BlockAddr(3)).unwrap();
        assert_eq!(got, Block::zeroed());
        assert_eq!(
            layer.inner().attempts_on_victim,
            3,
            "2 failures + 1 success"
        );
        let s = layer.stats().snapshot();
        assert_eq!(s.masked, 1);
        assert_eq!(s.propagated, 0);
        assert_eq!(layer.policy().counters().snapshot().retries, 2);
    }

    #[test]
    fn budget_strictly_bounds_attempts_on_sticky_fault() {
        let (mut layer, _clock) = flaky_layer(u32::MAX, retry_policy(3, Backoff::none()));
        assert!(layer.read(BlockAddr(3)).is_err());
        assert_eq!(
            layer.inner().attempts_on_victim,
            4,
            "1 initial + budget of 3, never more"
        );
        let s = layer.stats().snapshot();
        assert_eq!(s.propagated, 1);
        assert_eq!(s.masked, 0);
        let c = layer.policy().counters().snapshot();
        assert_eq!(c.exhausted, 1);
        assert_eq!(c.propagates, 1);
    }

    #[test]
    fn backoff_is_charged_to_the_sim_clock() {
        let (mut layer, clock) = flaky_layer(
            u32::MAX,
            retry_policy(3, Backoff::exponential(1_000, 2, 1_000_000)),
        );
        let before = clock.now_ns();
        assert!(layer.read(BlockAddr(3)).is_err());
        // 1000 + 2000 + 4000 ns of backoff; attempts themselves are instant.
        assert_eq!(clock.elapsed_since(before), 7_000);
        assert_eq!(layer.policy().counters().snapshot().backoff_ns, 7_000);
    }

    #[test]
    fn deadline_turns_slowness_into_timeout() {
        struct SlowDisk {
            inner: MemDisk,
            clock: SimClock,
            stall_ns: u64,
        }
        impl BlockDevice for SlowDisk {
            fn num_blocks(&self) -> u64 {
                self.inner.num_blocks()
            }
            fn read_tagged(&mut self, addr: BlockAddr, tag: BlockTag) -> DiskResult<Block> {
                self.clock.advance_ns(self.stall_ns);
                self.inner.read_tagged(addr, tag)
            }
            fn write_tagged(
                &mut self,
                addr: BlockAddr,
                block: &Block,
                tag: BlockTag,
            ) -> DiskResult<()> {
                self.inner.write_tagged(addr, block, tag)
            }
            fn barrier(&mut self) -> DiskResult<()> {
                self.inner.barrier()
            }
            fn flush(&mut self) -> DiskResult<()> {
                self.inner.flush()
            }
        }
        let inner = MemDisk::for_tests(8);
        let clock = inner.clock();
        let slow = SlowDisk {
            inner,
            clock: clock.clone(),
            stall_ns: 10_000_000,
        };
        // No retry: timeouts propagate immediately.
        let policy = PolicyHandle::new(FailurePolicyTable::propagate_all());
        let mut layer = RetryLayer::new(
            slow,
            RetryConfig::new(policy, clock.clone()).deadline_ns(1_000_000),
        );
        let err = layer.read(BlockAddr(0)).unwrap_err();
        assert_eq!(
            err,
            DiskError::Timeout {
                addr: BlockAddr(0),
                kind: IoKind::Read
            }
        );
        assert_eq!(classify(&err), ErrorClass::Timeout);
        assert_eq!(layer.stats().snapshot().timeouts, 1);
        // Writes are fast and unaffected.
        layer.write(BlockAddr(1), &Block::filled(2)).unwrap();
    }

    #[test]
    fn runtime_policy_swap_changes_behavior_mid_run() {
        let policy = retry_policy(0, Backoff::none());
        let (mut layer, _clock) = flaky_layer(1, policy.clone());
        // Budget 0: the single transient failure propagates.
        assert!(layer.read(BlockAddr(3)).is_err());
        // Re-arm the flakiness, then widen the budget at runtime.
        layer.inner_mut().remaining = 1;
        policy.set(FailurePolicyTable::with_default(vec![
            RecoveryAction::Retry {
                budget: 2,
                backoff: Backoff::none(),
            },
            RecoveryAction::Propagate,
        ]));
        assert!(layer.read(BlockAddr(3)).is_ok(), "new policy masks it");
    }

    #[test]
    fn fs_level_rungs_are_skipped_at_device_level() {
        let policy = PolicyHandle::new(FailurePolicyTable::with_default(vec![
            RecoveryAction::Redundancy,
            RecoveryAction::Remap,
            RecoveryAction::DegradeReadOnly,
            RecoveryAction::Propagate,
        ]));
        let (mut layer, _clock) = flaky_layer(u32::MAX, policy);
        assert!(layer.read(BlockAddr(3)).is_err());
        assert_eq!(layer.inner().attempts_on_victim, 1, "no retry rung matched");
        let c = layer.policy().counters().snapshot();
        assert_eq!(c.propagates, 1);
        assert_eq!(c.redundancy, 0, "redundancy rung not enacted here");
    }
}

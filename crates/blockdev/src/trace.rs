//! Low-level I/O traces.
//!
//! §4.3: failure-policy inference compares "the low-level I/O traces
//! recorded by the fault-injection layer" between fault-free and faulty
//! runs. Traces are how the inference engine sees retries (the same address
//! re-requested), redundancy (a replica address read after a primary
//! failure), and remapping (a write redirected elsewhere).

use std::fmt;
use std::sync::{Arc, Mutex};

use iron_core::{Block, BlockAddr, BlockTag, IoKind};

use crate::device::{BlockDevice, DiskResult, RawAccess};

/// How a traced request completed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IoOutcome {
    /// Completed normally.
    Ok,
    /// Failed with an explicit error code.
    Error,
    /// Completed "normally" but returned corrupted data (only the injector
    /// knows this; the file system sees `Ok`).
    SilentlyCorrupted,
}

/// One traced block request.
#[derive(Clone, Debug)]
pub struct IoEvent {
    /// Monotonic sequence number within the trace.
    pub seq: u64,
    /// Read or write.
    pub kind: IoKind,
    /// Block address.
    pub addr: BlockAddr,
    /// The block-type tag the file system attached.
    pub tag: BlockTag,
    /// Completion status.
    pub outcome: IoOutcome,
    /// Simulated time at completion, in nanoseconds.
    pub at_ns: u64,
}

impl fmt::Display for IoEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>6} {:>5} {:<10} {:<12} {:?} @{}ns",
            self.seq,
            self.kind,
            self.addr.to_string(),
            self.tag,
            self.outcome,
            self.at_ns
        )
    }
}

/// A shareable, append-only I/O trace. Cloning shares the underlying trace.
#[derive(Clone, Debug, Default)]
pub struct IoTrace {
    events: Arc<Mutex<Vec<IoEvent>>>,
}

impl IoTrace {
    /// A new, empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an event, assigning it the next sequence number.
    pub fn record(
        &self,
        kind: IoKind,
        addr: BlockAddr,
        tag: BlockTag,
        outcome: IoOutcome,
        at_ns: u64,
    ) {
        let mut events = self.events.lock().unwrap();
        let seq = events.len() as u64;
        events.push(IoEvent {
            seq,
            kind,
            addr,
            tag,
            outcome,
            at_ns,
        });
    }

    /// Number of events so far (usable as a mark for [`Self::since`]).
    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// True if nothing was traced.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all events.
    pub fn events(&self) -> Vec<IoEvent> {
        self.events.lock().unwrap().clone()
    }

    /// Snapshot of events appended after `mark` (a previous `len()`).
    pub fn since(&self, mark: usize) -> Vec<IoEvent> {
        let guard = self.events.lock().unwrap();
        guard
            .get(mark..)
            .map(<[IoEvent]>::to_vec)
            .unwrap_or_default()
    }

    /// Discard everything.
    pub fn clear(&self) {
        self.events.lock().unwrap().clear();
    }

    /// Count of requests to `addr` with the given kind.
    pub fn count_requests(&self, addr: BlockAddr, kind: IoKind) -> usize {
        self.events
            .lock()
            .unwrap()
            .iter()
            .filter(|e| e.addr == addr && e.kind == kind)
            .count()
    }

    /// Addresses read after the first failed request, in order — the raw
    /// material for detecting `RRetry`/`RRedundancy` in inference.
    pub fn reads_after_first_error(&self) -> Vec<BlockAddr> {
        let guard = self.events.lock().unwrap();
        let Some(fail_pos) = guard.iter().position(|e| e.outcome == IoOutcome::Error) else {
            return Vec::new();
        };
        guard[fail_pos + 1..]
            .iter()
            .filter(|e| e.kind == IoKind::Read)
            .map(|e| e.addr)
            .collect()
    }
}

/// A transparent tracing shim: forwards every request to the inner device
/// and records it (with its outcome) in an [`IoTrace`].
///
/// [`MemDisk`](crate::MemDisk) and the fault-injection layer keep their
/// own traces; this layer exists so a trace can be taken at *any* point of
/// a built stack — most usefully **below the buffer cache**, where it
/// records exactly the destaged traffic the medium observes (the
/// barrier-ordering differential tests are built on this).
pub struct TraceLayer<D> {
    inner: D,
    trace: IoTrace,
}

impl<D: BlockDevice> TraceLayer<D> {
    /// Wrap `inner` with a fresh trace.
    pub fn new(inner: D) -> Self {
        Self::with_trace(inner, IoTrace::new())
    }

    /// Wrap `inner`, recording into an existing (shared) trace.
    pub fn with_trace(inner: D, trace: IoTrace) -> Self {
        TraceLayer { inner, trace }
    }

    /// The shared trace handle.
    pub fn trace(&self) -> IoTrace {
        self.trace.clone()
    }

    /// Access the wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Mutable access to the wrapped device.
    pub fn inner_mut(&mut self) -> &mut D {
        &mut self.inner
    }

    /// Unwrap the inner device.
    pub fn into_inner(self) -> D {
        self.inner
    }
}

impl<D: BlockDevice> BlockDevice for TraceLayer<D> {
    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn read_tagged(&mut self, addr: BlockAddr, tag: BlockTag) -> DiskResult<Block> {
        let r = self.inner.read_tagged(addr, tag);
        let outcome = if r.is_ok() {
            IoOutcome::Ok
        } else {
            IoOutcome::Error
        };
        self.trace.record(IoKind::Read, addr, tag, outcome, 0);
        r
    }

    fn write_tagged(&mut self, addr: BlockAddr, block: &Block, tag: BlockTag) -> DiskResult<()> {
        let r = self.inner.write_tagged(addr, block, tag);
        let outcome = if r.is_ok() {
            IoOutcome::Ok
        } else {
            IoOutcome::Error
        };
        self.trace.record(IoKind::Write, addr, tag, outcome, 0);
        r
    }

    fn barrier(&mut self) -> DiskResult<()> {
        self.inner.barrier()
    }

    fn flush(&mut self) -> DiskResult<()> {
        self.inner.flush()
    }

    fn readahead(&mut self, start: BlockAddr, len: u64) {
        // A hint moves no data and is not a traced event.
        self.inner.readahead(start, len);
    }
}

impl<D: RawAccess> RawAccess for TraceLayer<D> {
    fn peek(&self, addr: BlockAddr) -> Block {
        self.inner.peek(addr)
    }

    fn poke(&mut self, addr: BlockAddr, block: &Block) {
        self.inner.poke(addr, block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(trace: &IoTrace, kind: IoKind, addr: u64, outcome: IoOutcome) {
        trace.record(kind, BlockAddr(addr), BlockTag("t"), outcome, 0);
    }

    #[test]
    fn sequence_numbers_are_monotonic() {
        let t = IoTrace::new();
        ev(&t, IoKind::Read, 1, IoOutcome::Ok);
        ev(&t, IoKind::Write, 2, IoOutcome::Error);
        let events = t.events();
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[1].seq, 1);
    }

    #[test]
    fn count_requests_filters_by_addr_and_kind() {
        let t = IoTrace::new();
        ev(&t, IoKind::Read, 5, IoOutcome::Error);
        ev(&t, IoKind::Read, 5, IoOutcome::Ok);
        ev(&t, IoKind::Write, 5, IoOutcome::Ok);
        ev(&t, IoKind::Read, 6, IoOutcome::Ok);
        assert_eq!(t.count_requests(BlockAddr(5), IoKind::Read), 2);
        assert_eq!(t.count_requests(BlockAddr(5), IoKind::Write), 1);
        assert_eq!(t.count_requests(BlockAddr(7), IoKind::Read), 0);
    }

    #[test]
    fn reads_after_first_error() {
        let t = IoTrace::new();
        ev(&t, IoKind::Read, 1, IoOutcome::Ok);
        ev(&t, IoKind::Read, 2, IoOutcome::Error);
        ev(&t, IoKind::Read, 2, IoOutcome::Error); // retry
        ev(&t, IoKind::Read, 9, IoOutcome::Ok); // replica
        ev(&t, IoKind::Write, 3, IoOutcome::Ok);
        assert_eq!(
            t.reads_after_first_error(),
            vec![BlockAddr(2), BlockAddr(9)]
        );
    }

    #[test]
    fn no_error_means_no_post_error_reads() {
        let t = IoTrace::new();
        ev(&t, IoKind::Read, 1, IoOutcome::Ok);
        assert!(t.reads_after_first_error().is_empty());
    }

    #[test]
    fn since_and_clear() {
        let t = IoTrace::new();
        ev(&t, IoKind::Read, 1, IoOutcome::Ok);
        let mark = t.len();
        ev(&t, IoKind::Read, 2, IoOutcome::Ok);
        assert_eq!(t.since(mark).len(), 1);
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn trace_layer_records_forwarded_requests() {
        let mut d = TraceLayer::new(crate::MemDisk::for_tests(8));
        let trace = d.trace();
        d.write_tagged(BlockAddr(1), &Block::filled(1), BlockTag("data"))
            .unwrap();
        d.read_tagged(BlockAddr(1), BlockTag("data")).unwrap();
        assert!(d.read(BlockAddr(99)).is_err());
        let events = trace.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, IoKind::Write);
        assert_eq!(events[0].outcome, IoOutcome::Ok);
        assert_eq!(events[1].kind, IoKind::Read);
        assert_eq!(events[2].outcome, IoOutcome::Error);
        // The medium was really written.
        assert_eq!(d.peek(BlockAddr(1)), Block::filled(1));
    }
}

//! [`BufferCache`]: a sharded-LRU write-back buffer cache over any
//! [`BlockDevice`].
//!
//! The paper's Figure 1 stack has a generic buffer/page cache between the
//! file system and the disk; this is that layer. It implements
//! [`BlockDevice`] over any inner device, so it slots transparently under
//! every file-system model:
//!
//! * **Read hits** are served from memory: no inner request, no simulated
//!   mechanical time charged — re-read-heavy workloads run at memory speed.
//! * **Writes are absorbed** (write-back): the block is marked dirty and
//!   destaged later — on eviction, on [`BlockDevice::flush`], or when the
//!   cache is dropped through [`BufferCache::into_inner`] (which *discards*
//!   dirty data, the paper's lost-write window made flesh).
//! * **Barriers are absorbed** too: [`BlockDevice::barrier`] only seals the
//!   current *epoch*. Destaging writes epochs strictly in issue order with
//!   an inner barrier between them, so the ordering contract — everything
//!   written before a barrier reaches the medium before anything written
//!   after it — holds exactly for the traffic the device below observes.
//!   Within an epoch no order is owed, and the [`crate::IoScheduler`]
//!   elevator sorts the epoch's blocks into ascending adjacent sweeps that
//!   the simulated disk services at streaming rate.
//! * **Typed I/O is preserved**: each dirty block remembers the
//!   [`BlockTag`] of the write that dirtied it and is destaged under that
//!   tag, so type-aware fault injection below the cache keeps working.
//! * **Errors are strict**: a failed write-back surfaces as the error of
//!   the *triggering* call (the read or write that forced an eviction, or
//!   the flush) — exactly the delayed-error window the paper's §2.2 warns
//!   about. Nothing is retried and nothing is dropped silently: the failed
//!   block stays dirty and the next destage attempt retries it.
//!
//! [`CachePolicy::WriteThrough`] disables all of the above: every request
//! passes straight through and the cache holds nothing. Fingerprinting
//! campaigns run in this mode so their media and traces stay byte-exact
//! while still exercising the redesigned stack API.

use std::collections::{HashMap, VecDeque};

use iron_core::{Block, BlockAddr, BlockTag};

use crate::device::{BlockDevice, DiskError, DiskResult, RawAccess};
use crate::sched::IoScheduler;

/// Caching policy for a [`BufferCache`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CachePolicy {
    /// Write-back caching: reads hit, writes and barriers are absorbed.
    WriteBack {
        /// Total capacity in blocks (divided evenly across shards).
        capacity: usize,
        /// Number of LRU shards. Clamped to `capacity`.
        shards: usize,
    },
    /// Transparent mode: every request passes straight through. The stack
    /// stays byte- and trace-exact with respect to an uncached stack —
    /// what fingerprinting campaigns need.
    WriteThrough,
}

impl CachePolicy {
    /// Write-back with `capacity` blocks and the default shard count.
    pub fn write_back(capacity: usize) -> Self {
        CachePolicy::WriteBack {
            capacity,
            shards: 8,
        }
    }

    /// Transparent pass-through.
    pub const fn write_through() -> Self {
        CachePolicy::WriteThrough
    }
}

impl Default for CachePolicy {
    /// Write-back, 1024 blocks (4 MiB), 8 shards.
    fn default() -> Self {
        CachePolicy::write_back(1024)
    }
}

/// Cumulative cache counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Reads served from the cache.
    pub hits: u64,
    /// Reads that went to the inner device.
    pub misses: u64,
    /// Writes absorbed into the cache (write-back mode).
    pub writes_absorbed: u64,
    /// Dirty blocks written back to the inner device.
    pub writebacks: u64,
    /// Destage sweeps issued (each charged one positioning cost below).
    pub sweeps: u64,
    /// Resident blocks evicted.
    pub evictions: u64,
    /// Barriers absorbed into epoch seals (write-back mode).
    pub barriers_absorbed: u64,
    /// Full destages (flushes and dirty evictions).
    pub destages: u64,
}

struct Entry {
    data: Block,
    /// Tag of the write that dirtied the block (or of the read that
    /// fetched it); dirty blocks are destaged under this tag.
    tag: BlockTag,
    dirty: bool,
    /// Issue number of the dirtying write; pairs with the dirty log to
    /// lazily invalidate superseded log records.
    dirty_seq: u64,
    /// Barrier epoch the dirtying write belongs to.
    epoch: u64,
    /// Recency tick; pairs with the shard's recency queue.
    tick: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<u64, Entry>,
    /// Lazy LRU: (addr, tick) in touch order; stale pairs (tick no longer
    /// matching the entry) are skipped at eviction time.
    recency: VecDeque<(u64, u64)>,
}

/// One record of the dirty log: `(dirty_seq, epoch, addr)`.
type DirtyRecord = (u64, u64, u64);

/// Shard index for `addr`. The address is bit-mixed (Fibonacci hashing)
/// before reduction so strided access patterns — which are the common
/// case for file-system metadata laid out at fixed intervals — spread
/// across shards instead of collapsing into one and thrashing it.
fn shard_index(addr: u64, nshards: usize) -> usize {
    ((addr.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) % nshards as u64) as usize
}

/// A sharded-LRU write-back buffer cache implementing [`BlockDevice`]
/// over any inner device. See the module docs for semantics.
pub struct BufferCache<D> {
    inner: D,
    policy: CachePolicy,
    shards: Vec<Shard>,
    /// Per-shard capacity (policy capacity divided across shards).
    shard_capacity: usize,
    resident: usize,
    tick: u64,
    /// Current barrier epoch; destaging never reorders across epochs.
    epoch: u64,
    /// True once the current epoch holds a dirty block (so an empty epoch
    /// is never sealed).
    epoch_dirty: bool,
    next_dirty_seq: u64,
    /// Dirty blocks in issue order. Superseded records (a block
    /// re-dirtied later) are skipped via the `dirty_seq` match.
    dirty_log: VecDeque<DirtyRecord>,
    sched: IoScheduler,
    stats: CacheStats,
}

impl<D: BlockDevice> BufferCache<D> {
    /// Wrap `inner` with the given policy.
    pub fn new(inner: D, policy: CachePolicy) -> Self {
        let (shard_count, shard_capacity) = match policy {
            CachePolicy::WriteBack { capacity, shards } => {
                let capacity = capacity.max(1);
                let shards = shards.clamp(1, capacity);
                (shards, capacity.div_ceil(shards))
            }
            CachePolicy::WriteThrough => (1, 0),
        };
        BufferCache {
            inner,
            policy,
            shards: (0..shard_count).map(|_| Shard::default()).collect(),
            shard_capacity,
            resident: 0,
            tick: 0,
            epoch: 0,
            epoch_dirty: false,
            next_dirty_seq: 0,
            dirty_log: VecDeque::new(),
            sched: IoScheduler::new(),
            stats: CacheStats::default(),
        }
    }

    /// Wrap `inner` with the default write-back policy.
    pub fn write_back(inner: D) -> Self {
        Self::new(inner, CachePolicy::default())
    }

    /// Wrap `inner` in transparent pass-through mode.
    pub fn write_through(inner: D) -> Self {
        Self::new(inner, CachePolicy::WriteThrough)
    }

    /// The policy this cache was built with.
    pub fn policy(&self) -> CachePolicy {
        self.policy
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of blocks currently resident.
    pub fn resident(&self) -> usize {
        self.resident
    }

    /// Number of resident blocks that are dirty.
    pub fn dirty_blocks(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.map.values().filter(|e| e.dirty).count())
            .sum()
    }

    /// Access the wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Mutable access to the wrapped device.
    pub fn inner_mut(&mut self) -> &mut D {
        &mut self.inner
    }

    /// Unwrap the inner device, **discarding dirty blocks** — the
    /// volatile cache vanishing is exactly the paper's lost-write window.
    /// Call [`BlockDevice::flush`] (or [`Self::destage`]) first to keep
    /// them.
    pub fn into_inner(self) -> D {
        self.inner
    }

    fn shard_of(&self, addr: BlockAddr) -> usize {
        shard_index(addr.0, self.shards.len())
    }

    /// Write every dirty block to the inner device: epochs strictly in
    /// issue order with an inner barrier between them, each epoch's blocks
    /// elevator-scheduled into ascending adjacent sweeps. On a failed
    /// write-back the error is returned, already-destaged blocks stay
    /// clean, and the failed block (plus everything after it) stays dirty
    /// for the next attempt.
    pub fn destage(&mut self) -> DiskResult<()> {
        // Snapshot the live records (drop superseded ones) and clear the
        // log; un-destaged records are pushed back on error.
        let live: Vec<DirtyRecord> = self
            .dirty_log
            .drain(..)
            .filter(|&(seq, _, addr)| {
                self.shards[shard_index(addr, self.shards.len())]
                    .map
                    .get(&addr)
                    .is_some_and(|e| e.dirty && e.dirty_seq == seq)
            })
            .collect();
        if live.is_empty() {
            return Ok(());
        }
        self.stats.destages += 1;

        let mut idx = 0;
        let mut first_epoch_written = false;
        while idx < live.len() {
            let epoch = live[idx].1;
            let mut end = idx;
            while end < live.len() && live[end].1 == epoch {
                end += 1;
            }
            if first_epoch_written {
                if let Err(e) = self.inner.barrier() {
                    self.dirty_log.extend(&live[idx..]);
                    return Err(e);
                }
            }
            let sweeps = self.sched.plan(
                live[idx..end]
                    .iter()
                    .map(|&(_, _, a)| (BlockAddr(a), ()))
                    .collect(),
            );
            self.stats.sweeps += sweeps.len() as u64;
            for sweep in &sweeps {
                for &(addr, ()) in &sweep.items {
                    let shard = self.shard_of(addr);
                    let entry = self.shards[shard]
                        .map
                        .get(&addr.0)
                        .expect("live dirty record has an entry");
                    let (data, tag) = (entry.data.clone(), entry.tag);
                    if let Err(e) = self.inner.write_tagged(addr, &data, tag) {
                        // Requeue every record not yet destaged — exactly
                        // the ones whose entries are still dirty (the
                        // failed block included). `live` is in issue
                        // order, so the rebuilt log is too.
                        let rest = live[idx..].iter().filter(|&&(s, _, a)| {
                            self.shards[shard_index(a, self.shards.len())]
                                .map
                                .get(&a)
                                .is_some_and(|e| e.dirty && e.dirty_seq == s)
                        });
                        self.dirty_log.extend(rest);
                        return Err(e);
                    }
                    self.stats.writebacks += 1;
                    self.shards[shard]
                        .map
                        .get_mut(&addr.0)
                        .expect("entry present")
                        .dirty = false;
                }
            }
            first_epoch_written = true;
            idx = end;
        }
        Ok(())
    }

    /// Record a touch of `addr` in `shard` at a fresh tick.
    fn touch(&mut self, shard: usize, addr: BlockAddr) -> u64 {
        self.tick += 1;
        self.shards[shard].recency.push_back((addr.0, self.tick));
        self.tick
    }

    /// Make room in `addr`'s shard for one more entry, destaging first if
    /// the chosen victim is dirty. `protect` (if set) is never evicted.
    fn make_room(&mut self, addr: BlockAddr, protect: Option<BlockAddr>) -> DiskResult<()> {
        let shard = self.shard_of(addr);
        while self.shards[shard].map.len() >= self.shard_capacity {
            // Lazy LRU: skip recency records superseded by later touches.
            let victim = loop {
                let Some((a, t)) = self.shards[shard].recency.pop_front() else {
                    // Every resident entry is protected; allow temporary
                    // overflow rather than evicting the caller's block.
                    return Ok(());
                };
                if protect.map(|p| p.0) == Some(a) {
                    // Re-queue the protected block at its original tick.
                    self.shards[shard].recency.push_back((a, t));
                    continue;
                }
                if self.shards[shard].map.get(&a).is_some_and(|e| e.tick == t) {
                    break a;
                }
            };
            if self.shards[shard].map[&victim].dirty {
                // Ordered write-back of *everything* keeps the epoch
                // ordering invariant without tracking partial epochs; the
                // cost amortizes to one destage per ~capacity writes.
                self.destage()?;
            }
            if self.shards[shard].map.remove(&victim).is_some() {
                self.resident -= 1;
                self.stats.evictions += 1;
            }
        }
        Ok(())
    }

    fn check_range(&self, addr: BlockAddr) -> DiskResult<()> {
        if addr.0 < self.inner.num_blocks() {
            Ok(())
        } else {
            Err(DiskError::OutOfRange { addr })
        }
    }
}

impl<D: BlockDevice> BlockDevice for BufferCache<D> {
    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn read_tagged(&mut self, addr: BlockAddr, tag: BlockTag) -> DiskResult<Block> {
        if self.policy == CachePolicy::WriteThrough {
            return self.inner.read_tagged(addr, tag);
        }
        self.check_range(addr)?;
        let shard = self.shard_of(addr);
        if self.shards[shard].map.contains_key(&addr.0) {
            self.stats.hits += 1;
            let tick = self.touch(shard, addr);
            let e = self.shards[shard].map.get_mut(&addr.0).expect("hit");
            e.tick = tick;
            return Ok(e.data.clone());
        }
        self.stats.misses += 1;
        // Make room first so a destage failure surfaces before the medium
        // is touched.
        self.make_room(addr, None)?;
        let data = self.inner.read_tagged(addr, tag)?;
        let tick = self.touch(shard, addr);
        self.shards[shard].map.insert(
            addr.0,
            Entry {
                data: data.clone(),
                tag,
                dirty: false,
                dirty_seq: 0,
                epoch: 0,
                tick,
            },
        );
        self.resident += 1;
        Ok(data)
    }

    fn write_tagged(&mut self, addr: BlockAddr, block: &Block, tag: BlockTag) -> DiskResult<()> {
        if self.policy == CachePolicy::WriteThrough {
            return self.inner.write_tagged(addr, block, tag);
        }
        self.check_range(addr)?;
        let shard = self.shard_of(addr);
        if !self.shards[shard].map.contains_key(&addr.0) {
            self.make_room(addr, None)?;
        }
        let seq = self.next_dirty_seq;
        self.next_dirty_seq += 1;
        let tick = self.touch(shard, addr);
        let epoch = self.epoch;
        match self.shards[shard].map.get_mut(&addr.0) {
            Some(e) => {
                // Re-dirtying moves the block to the current epoch: the
                // medium only ever sees the final data, so it must not be
                // written back at the older epoch's position.
                e.data = block.clone();
                e.tag = tag;
                e.dirty = true;
                e.dirty_seq = seq;
                e.epoch = epoch;
                e.tick = tick;
            }
            None => {
                self.shards[shard].map.insert(
                    addr.0,
                    Entry {
                        data: block.clone(),
                        tag,
                        dirty: true,
                        dirty_seq: seq,
                        epoch,
                        tick,
                    },
                );
                self.resident += 1;
            }
        }
        self.dirty_log.push_back((seq, epoch, addr.0));
        self.epoch_dirty = true;
        self.stats.writes_absorbed += 1;
        Ok(())
    }

    fn barrier(&mut self) -> DiskResult<()> {
        if self.policy == CachePolicy::WriteThrough {
            return self.inner.barrier();
        }
        // Seal the epoch; no inner traffic. The ordering the caller asked
        // for is enforced when the epochs are destaged.
        if self.epoch_dirty {
            self.epoch += 1;
            self.epoch_dirty = false;
        }
        self.stats.barriers_absorbed += 1;
        Ok(())
    }

    fn flush(&mut self) -> DiskResult<()> {
        if self.policy == CachePolicy::WriteThrough {
            return self.inner.flush();
        }
        self.destage()?;
        self.inner.flush()
    }

    fn readahead(&mut self, start: BlockAddr, len: u64) {
        // Cache hits within the window cost nothing anyway; the misses
        // stream from the device, so the hint is worth forwarding in
        // either policy.
        self.inner.readahead(start, len);
    }
}

impl<D: BlockDevice + RawAccess> RawAccess for BufferCache<D> {
    /// The harness view is the *logical* contents: a resident dirty block
    /// shadows the (stale) medium.
    fn peek(&self, addr: BlockAddr) -> Block {
        let shard = shard_index(addr.0, self.shards.len());
        match self.shards[shard].map.get(&addr.0) {
            Some(e) if e.dirty => e.data.clone(),
            _ => self.inner.peek(addr),
        }
    }

    /// Pokes hit the medium *and* any resident copy (which becomes clean:
    /// cache and medium now agree).
    fn poke(&mut self, addr: BlockAddr, block: &Block) {
        self.inner.poke(addr, block);
        let shard = shard_index(addr.0, self.shards.len());
        if let Some(e) = self.shards[shard].map.get_mut(&addr.0) {
            e.data = block.clone();
            e.dirty = false; // dirty-log records go stale via seq mismatch
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memdisk::MemDisk;
    use iron_core::IoKind;

    fn cached(capacity: usize) -> BufferCache<MemDisk> {
        BufferCache::new(
            MemDisk::for_tests(64),
            CachePolicy::WriteBack {
                capacity,
                shards: 2,
            },
        )
    }

    #[test]
    fn read_hit_skips_the_inner_device() {
        let mut c = cached(8);
        c.inner_mut().poke(BlockAddr(3), &Block::filled(7));
        assert_eq!(c.read(BlockAddr(3)).unwrap(), Block::filled(7));
        let inner_reads = c.inner().stats().reads;
        assert_eq!(c.read(BlockAddr(3)).unwrap(), Block::filled(7));
        assert_eq!(c.inner().stats().reads, inner_reads, "hit: no inner read");
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn writes_are_absorbed_until_flush() {
        let mut c = cached(8);
        c.write(BlockAddr(5), &Block::filled(9)).unwrap();
        assert!(c.inner().peek(BlockAddr(5)).is_zeroed(), "medium stale");
        assert_eq!(c.read(BlockAddr(5)).unwrap(), Block::filled(9));
        c.flush().unwrap();
        assert_eq!(c.inner().peek(BlockAddr(5)), Block::filled(9));
        assert_eq!(c.dirty_blocks(), 0);
    }

    #[test]
    fn destage_preserves_epoch_order_and_sorts_within_epochs() {
        let mut c = cached(16);
        // Epoch 0: 30, 10 (any order within); barrier; epoch 1: 20.
        c.write(BlockAddr(30), &Block::filled(1)).unwrap();
        c.write(BlockAddr(10), &Block::filled(2)).unwrap();
        c.barrier().unwrap();
        c.write(BlockAddr(20), &Block::filled(3)).unwrap();
        let trace = c.inner().trace();
        let mark = trace.len();
        c.flush().unwrap();
        let writes: Vec<u64> = trace
            .since(mark)
            .into_iter()
            .filter(|e| e.kind == IoKind::Write)
            .map(|e| e.addr.0)
            .collect();
        assert_eq!(writes, vec![10, 30, 20], "epoch order, sorted within");
    }

    #[test]
    fn redirtied_block_moves_to_the_later_epoch() {
        let mut c = cached(16);
        c.write(BlockAddr(10), &Block::filled(1)).unwrap();
        c.barrier().unwrap();
        c.write(BlockAddr(5), &Block::filled(2)).unwrap();
        c.write(BlockAddr(10), &Block::filled(3)).unwrap(); // re-dirty
        let trace = c.inner().trace();
        let mark = trace.len();
        c.flush().unwrap();
        let writes: Vec<u64> = trace
            .since(mark)
            .into_iter()
            .filter(|e| e.kind == IoKind::Write)
            .map(|e| e.addr.0)
            .collect();
        assert_eq!(writes, vec![5, 10], "block 10 destaged once, in epoch 1");
        assert_eq!(c.inner().peek(BlockAddr(10)), Block::filled(3));
    }

    #[test]
    fn destage_tags_match_the_dirtying_write() {
        let mut c = cached(8);
        c.write_tagged(BlockAddr(2), &Block::filled(1), BlockTag("j-data"))
            .unwrap();
        let trace = c.inner().trace();
        let mark = trace.len();
        c.flush().unwrap();
        let events = trace.since(mark);
        assert_eq!(events[0].tag, BlockTag("j-data"), "tag preserved");
    }

    #[test]
    fn capacity_one_still_reads_everything_correctly() {
        let mut c = cached(1);
        for i in 0..8u64 {
            c.write(BlockAddr(i), &Block::filled(i as u8 + 1)).unwrap();
        }
        for i in 0..8u64 {
            assert_eq!(c.read(BlockAddr(i)).unwrap(), Block::filled(i as u8 + 1));
        }
        c.flush().unwrap();
        for i in 0..8u64 {
            assert_eq!(c.inner().peek(BlockAddr(i)), Block::filled(i as u8 + 1));
        }
        assert!(c.stats().evictions > 0);
    }

    #[test]
    fn lru_eviction_keeps_the_recent_block() {
        let mut c = BufferCache::new(
            MemDisk::for_tests(64),
            CachePolicy::WriteBack {
                capacity: 2,
                shards: 1,
            },
        );
        c.read(BlockAddr(1)).unwrap();
        c.read(BlockAddr(2)).unwrap();
        c.read(BlockAddr(1)).unwrap(); // 1 is now more recent than 2
        c.read(BlockAddr(3)).unwrap(); // evicts 2
        let hits = c.stats().hits;
        c.read(BlockAddr(1)).unwrap();
        assert_eq!(c.stats().hits, hits + 1, "block 1 still resident");
        let misses = c.stats().misses;
        c.read(BlockAddr(2)).unwrap();
        assert_eq!(c.stats().misses, misses + 1, "block 2 was evicted");
    }

    #[test]
    fn out_of_range_is_rejected_without_caching() {
        let mut c = cached(8);
        assert_eq!(
            c.write(BlockAddr(64), &Block::zeroed()),
            Err(DiskError::OutOfRange {
                addr: BlockAddr(64)
            })
        );
        assert_eq!(
            c.read(BlockAddr(99)),
            Err(DiskError::OutOfRange {
                addr: BlockAddr(99)
            })
        );
        assert_eq!(c.resident(), 0);
    }

    #[test]
    fn write_through_passes_everything_through() {
        let mut c = BufferCache::write_through(MemDisk::for_tests(16));
        c.write(BlockAddr(3), &Block::filled(5)).unwrap();
        assert_eq!(
            c.inner().peek(BlockAddr(3)),
            Block::filled(5),
            "write reached the medium immediately"
        );
        c.read(BlockAddr(3)).unwrap();
        c.read(BlockAddr(3)).unwrap();
        assert_eq!(c.inner().stats().reads, 2, "no read absorption");
        assert_eq!(c.resident(), 0);
        c.barrier().unwrap();
        assert_eq!(c.inner().stats().barriers, 1, "barrier forwarded");
    }

    #[test]
    fn peek_sees_dirty_data_and_poke_updates_residents() {
        let mut c = cached(8);
        c.write(BlockAddr(4), &Block::filled(1)).unwrap();
        assert_eq!(c.peek(BlockAddr(4)), Block::filled(1), "logical view");
        c.poke(BlockAddr(4), &Block::filled(2));
        assert_eq!(c.read(BlockAddr(4)).unwrap(), Block::filled(2));
        assert_eq!(c.inner().peek(BlockAddr(4)), Block::filled(2));
        assert_eq!(c.dirty_blocks(), 0, "poked block is clean");
        // A flush now writes nothing (the stale dirty record is skipped).
        let writes = c.inner().stats().writes;
        c.flush().unwrap();
        assert_eq!(c.inner().stats().writes, writes);
    }

    #[test]
    fn into_inner_discards_dirty_blocks() {
        let mut c = cached(8);
        c.write(BlockAddr(6), &Block::filled(3)).unwrap();
        let inner = c.into_inner();
        assert!(
            inner.peek(BlockAddr(6)).is_zeroed(),
            "unflushed write lost with the cache — the lost-write window"
        );
    }

    #[test]
    fn adjacent_dirty_blocks_destage_as_one_sweep() {
        let mut c = cached(16);
        for i in 10..14u64 {
            c.write(BlockAddr(i), &Block::filled(i as u8)).unwrap();
        }
        c.write(BlockAddr(40), &Block::filled(9)).unwrap();
        c.flush().unwrap();
        assert_eq!(c.stats().sweeps, 2, "run [10..14] plus singleton [40]");
    }
}

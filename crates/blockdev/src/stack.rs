//! [`StackBuilder`]: fluent construction of the storage stack.
//!
//! The paper's Figure 1 stack — disk, fault-injection driver, buffer
//! cache, file system — used to be hand-assembled at every test and bench
//! site. The builder makes the layering explicit and order-checked at the
//! type level:
//!
//! ```
//! use iron_blockdev::{CachePolicy, StackBuilder};
//!
//! let dev = StackBuilder::memdisk(4096)
//!     .with_cache(CachePolicy::write_back(256))
//!     .build();
//! // `dev` is a BufferCache<MemDisk>; mount any SpecificFs over it.
//! # let _ = dev;
//! ```
//!
//! Layers from other crates slot in through [`StackBuilder::layer`]; the
//! fault-injection crate ships a `FaultStackExt` extension trait that adds
//! `.with_faults(plan)` on top of it.

use iron_core::SimClock;

use crate::cache::{BufferCache, CachePolicy};
use crate::crashrec::{CrashRecorder, WriteLog};
use crate::device::BlockDevice;
use crate::geometry::DiskGeometry;
use crate::memdisk::MemDisk;
use crate::retry::{RetryConfig, RetryLayer};
use crate::trace::{IoTrace, TraceLayer};

/// Builds a device stack bottom-up: start from a disk, wrap layers in
/// order, [`Self::build`] to take the finished device.
pub struct StackBuilder<D> {
    dev: D,
}

impl StackBuilder<MemDisk> {
    /// Start from a perfect in-memory disk with near-instant timing — the
    /// functional-test workhorse.
    pub fn memdisk(num_blocks: u64) -> Self {
        StackBuilder {
            dev: MemDisk::for_tests(num_blocks),
        }
    }

    /// Start from a disk with a real mechanical timing model and a fresh
    /// simulated clock (retrieve it via [`MemDisk::clock`] before
    /// stacking more layers).
    pub fn memdisk_timed(num_blocks: u64, geometry: DiskGeometry) -> Self {
        StackBuilder {
            dev: MemDisk::new(num_blocks, geometry, SimClock::new()),
        }
    }
}

impl<D: BlockDevice> StackBuilder<D> {
    /// Start from an existing device (e.g. a golden-image snapshot).
    pub fn new(dev: D) -> Self {
        StackBuilder { dev }
    }

    /// Wrap the stack in an arbitrary layer. This is the extension point
    /// other crates use to insert their devices without `iron-blockdev`
    /// depending on them.
    pub fn layer<E: BlockDevice>(self, wrap: impl FnOnce(D) -> E) -> StackBuilder<E> {
        StackBuilder {
            dev: wrap(self.dev),
        }
    }

    /// Record every request crossing this point into `trace`. Place it
    /// below the cache to observe destaged (medium-visible) traffic, above
    /// it to observe what the file system issued.
    pub fn with_trace(self, trace: IoTrace) -> StackBuilder<TraceLayer<D>> {
        self.layer(|dev| TraceLayer::with_trace(dev, trace))
    }

    /// Record the write stream crossing this point (with barrier/flush
    /// epoch boundaries) into `log` — the input to crash-state
    /// enumeration. Place it directly above the medium whose crash
    /// states are to be reconstructed.
    pub fn with_crash_recorder(self, log: WriteLog) -> StackBuilder<CrashRecorder<D>> {
        self.layer(|dev| CrashRecorder::with_log(dev, log))
    }

    /// Enact device-level failure policy at this point in the stack: a
    /// [`RetryLayer`] that walks the configured escalation chain (bounded
    /// retry with sim-clock backoff, then propagation) and applies the
    /// configured I/O deadline. Place it above the fault-injection layer
    /// and below the cache — where the SCSI mid-layer sits.
    pub fn with_retry(self, config: RetryConfig) -> StackBuilder<RetryLayer<D>> {
        self.layer(|dev| RetryLayer::new(dev, config))
    }

    /// Top the stack with the buffer cache under the given policy.
    pub fn with_cache(self, policy: CachePolicy) -> StackBuilder<BufferCache<D>> {
        self.layer(|dev| BufferCache::new(dev, policy))
    }

    /// Top the stack with the cache in transparent [`CachePolicy::WriteThrough`]
    /// mode — the byte- and trace-exact configuration fingerprinting
    /// campaigns require.
    pub fn write_through(self) -> StackBuilder<BufferCache<D>> {
        self.with_cache(CachePolicy::WriteThrough)
    }

    /// Take the finished device.
    pub fn build(self) -> D {
        self.dev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::RawAccess;
    use iron_core::{Block, BlockAddr};

    #[test]
    fn builder_layers_compose_in_order() {
        let medium_trace = IoTrace::new();
        let mut dev = StackBuilder::memdisk(64)
            .with_trace(medium_trace.clone())
            .with_cache(CachePolicy::write_back(8))
            .build();
        dev.write(BlockAddr(1), &Block::filled(7)).unwrap();
        assert!(
            medium_trace.is_empty(),
            "write absorbed above the medium trace point"
        );
        dev.flush().unwrap();
        assert_eq!(medium_trace.len(), 1, "destage crossed the trace point");
        assert_eq!(dev.inner().inner().peek(BlockAddr(1)), Block::filled(7));
    }

    #[test]
    fn write_through_stack_is_transparent() {
        let trace = IoTrace::new();
        let mut dev = StackBuilder::memdisk(16)
            .with_trace(trace.clone())
            .write_through()
            .build();
        dev.write(BlockAddr(2), &Block::filled(1)).unwrap();
        dev.read(BlockAddr(2)).unwrap();
        dev.read(BlockAddr(2)).unwrap();
        assert_eq!(trace.len(), 3, "every request reached the medium side");
    }

    #[test]
    fn custom_layer_hook() {
        struct Nop<D>(D);
        impl<D: BlockDevice> BlockDevice for Nop<D> {
            fn num_blocks(&self) -> u64 {
                self.0.num_blocks()
            }
            fn read_tagged(
                &mut self,
                addr: BlockAddr,
                tag: iron_core::BlockTag,
            ) -> crate::DiskResult<Block> {
                self.0.read_tagged(addr, tag)
            }
            fn write_tagged(
                &mut self,
                addr: BlockAddr,
                block: &Block,
                tag: iron_core::BlockTag,
            ) -> crate::DiskResult<()> {
                self.0.write_tagged(addr, block, tag)
            }
            fn barrier(&mut self) -> crate::DiskResult<()> {
                self.0.barrier()
            }
            fn flush(&mut self) -> crate::DiskResult<()> {
                self.0.flush()
            }
        }
        let mut dev = StackBuilder::memdisk(8).layer(Nop).build();
        dev.write(BlockAddr(0), &Block::filled(9)).unwrap();
        assert_eq!(dev.read(BlockAddr(0)).unwrap(), Block::filled(9));
    }
}

//! [`IoScheduler`]: a simple elevator-style request scheduler.
//!
//! The write-back cache ([`crate::BufferCache`]) destages dirty blocks one
//! barrier epoch at a time. Within an epoch no ordering is owed to the
//! layer below (the [`crate::BlockDevice::barrier`] contract only orders
//! *across* barriers), so the scheduler is free to reorder the epoch's
//! blocks the way a disk elevator would: sort ascending and batch adjacent
//! addresses into *sweeps*.
//!
//! A sweep is a maximal run of consecutive block addresses issued
//! back-to-back. On the simulated disk ([`crate::MemDisk`]) consecutive
//! accesses stream from the track buffer at media rate, so a sweep is
//! charged the mechanical positioning cost (command overhead, seek,
//! rotation) **once**, and each block after the first pays only its
//! transfer time — the scheduler turns `n` scattered writes into
//! `sweeps ≪ n` positioning charges.

use iron_core::BlockAddr;

/// One batch of adjacent, ascending block addresses, issued back-to-back.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Sweep<T> {
    /// The scheduled requests: consecutive addresses, ascending.
    pub items: Vec<(BlockAddr, T)>,
}

impl<T> Sweep<T> {
    /// First address of the sweep.
    pub fn start(&self) -> BlockAddr {
        self.items[0].0
    }

    /// Number of blocks in the sweep.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if the sweep holds no requests (never produced by the
    /// scheduler; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Plans a set of same-epoch requests into ascending adjacent sweeps.
#[derive(Clone, Copy, Debug)]
pub struct IoScheduler {
    /// Cap on blocks per sweep; longer runs are split. Bounds the time any
    /// single batch keeps the device busy (a real scheduler's fairness
    /// knob).
    pub max_sweep: usize,
}

impl IoScheduler {
    /// A scheduler with the default sweep cap.
    pub fn new() -> Self {
        IoScheduler { max_sweep: 128 }
    }

    /// Plan a sequential scan of `[start, start + len)` into readahead
    /// sweeps: contiguous ascending runs capped at `max_sweep` blocks.
    /// Sequential log scans (journal replay, fsck region passes, scrub)
    /// issue one [`crate::BlockDevice::readahead`] hint per sweep as the
    /// scan enters it — the cap models the bounded readahead buffer a
    /// real drive segments its cache into.
    pub fn plan_scan(&self, start: BlockAddr, len: u64) -> Vec<Sweep<()>> {
        let max = self.max_sweep.max(1) as u64;
        let mut sweeps = Vec::new();
        let mut pos = start.0;
        let end = start.0 + len;
        while pos < end {
            let n = max.min(end - pos);
            sweeps.push(Sweep {
                items: (pos..pos + n).map(|a| (BlockAddr(a), ())).collect(),
            });
            pos += n;
        }
        sweeps
    }

    /// Order `requests` (addresses unique within a call) into sweeps:
    /// sorted ascending, split wherever addresses are non-adjacent or the
    /// sweep cap is reached.
    pub fn plan<T>(&self, mut requests: Vec<(BlockAddr, T)>) -> Vec<Sweep<T>> {
        requests.sort_by_key(|(addr, _)| addr.0);
        let max = self.max_sweep.max(1);
        let mut sweeps: Vec<Sweep<T>> = Vec::new();
        for (addr, item) in requests {
            match sweeps.last_mut() {
                Some(s)
                    if s.len() < max && s.items.last().map(|(a, _)| a.0 + 1) == Some(addr.0) =>
                {
                    s.items.push((addr, item));
                }
                _ => sweeps.push(Sweep {
                    items: vec![(addr, item)],
                }),
            }
        }
        sweeps
    }
}

impl Default for IoScheduler {
    fn default() -> Self {
        Self::new()
    }
}

/// Cursor that feeds [`crate::BlockDevice::readahead`] hints to a device
/// ahead of a sequential scan.
///
/// Built from [`IoScheduler::plan_scan`] over the region about to be read,
/// it is advanced with [`ScanReadahead::hint`] just before each read: the
/// first read landing in a sweep hints that whole sweep, so the device's
/// track buffer can stream the rest of it without re-positioning. Reads
/// outside the planned region (replica fallbacks, home-location writes)
/// simply don't advance the cursor — the next in-region read re-hints.
pub struct ScanReadahead {
    sweeps: Vec<Sweep<()>>,
    next: usize,
}

impl ScanReadahead {
    /// Plan a hint schedule for an ascending scan of `len` blocks at
    /// `start`, using `sched`'s sweep cap.
    pub fn new(sched: &IoScheduler, start: BlockAddr, len: u64) -> Self {
        ScanReadahead {
            sweeps: sched.plan_scan(start, len),
            next: 0,
        }
    }

    /// Note that the scan is about to read `addr`; if that enters a sweep
    /// not yet hinted, hint it (and any fully-skipped earlier sweeps are
    /// abandoned — the scan jumped past them).
    pub fn hint<D: crate::BlockDevice + ?Sized>(&mut self, dev: &mut D, addr: BlockAddr) {
        while let Some(s) = self.sweeps.get(self.next) {
            let end = s.start().0 + s.len() as u64;
            if addr.0 >= end {
                self.next += 1;
                continue;
            }
            if addr.0 >= s.start().0 {
                dev.readahead(s.start(), s.len() as u64);
                self.next += 1;
            }
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(reqs: Vec<u64>) -> Vec<(BlockAddr, ())> {
        reqs.into_iter().map(|a| (BlockAddr(a), ())).collect()
    }

    fn plan(reqs: Vec<u64>) -> Vec<Vec<u64>> {
        IoScheduler::new()
            .plan(addrs(reqs))
            .into_iter()
            .map(|s| s.items.into_iter().map(|(a, ())| a.0).collect())
            .collect()
    }

    #[test]
    fn empty_input_plans_nothing() {
        assert!(plan(vec![]).is_empty());
    }

    #[test]
    fn adjacent_addresses_form_one_sweep() {
        assert_eq!(plan(vec![5, 6, 7]), vec![vec![5, 6, 7]]);
    }

    #[test]
    fn unsorted_input_is_sorted_into_sweeps() {
        assert_eq!(plan(vec![7, 5, 6]), vec![vec![5, 6, 7]]);
    }

    #[test]
    fn gaps_split_sweeps() {
        assert_eq!(
            plan(vec![10, 11, 20, 21, 22, 40]),
            vec![vec![10, 11], vec![20, 21, 22], vec![40]]
        );
    }

    #[test]
    fn sweep_cap_splits_long_runs() {
        let sched = IoScheduler { max_sweep: 2 };
        let out = sched.plan(addrs(vec![1, 2, 3, 4, 5]));
        let lens: Vec<usize> = out.iter().map(Sweep::len).collect();
        assert_eq!(lens, vec![2, 2, 1]);
        assert_eq!(out[0].start(), BlockAddr(1));
        assert_eq!(out[1].start(), BlockAddr(3));
    }

    #[test]
    fn plan_scan_covers_the_range_in_capped_sweeps() {
        let sched = IoScheduler { max_sweep: 4 };
        let out = sched.plan_scan(BlockAddr(10), 10);
        let lens: Vec<usize> = out.iter().map(Sweep::len).collect();
        assert_eq!(lens, vec![4, 4, 2]);
        assert_eq!(out[0].start(), BlockAddr(10));
        assert_eq!(out[1].start(), BlockAddr(14));
        assert_eq!(out[2].start(), BlockAddr(18));
        let all: Vec<u64> = out
            .iter()
            .flat_map(|s| s.items.iter().map(|(a, ())| a.0))
            .collect();
        assert_eq!(all, (10..20).collect::<Vec<u64>>());
        assert!(sched.plan_scan(BlockAddr(0), 0).is_empty());
    }

    #[test]
    fn payloads_travel_with_their_address() {
        let out = IoScheduler::new().plan(vec![
            (BlockAddr(9), "nine"),
            (BlockAddr(3), "three"),
            (BlockAddr(4), "four"),
        ]);
        assert_eq!(out.len(), 2);
        assert_eq!(
            out[0].items,
            vec![(BlockAddr(3), "three"), (BlockAddr(4), "four")]
        );
        assert_eq!(out[1].items, vec![(BlockAddr(9), "nine")]);
    }
}

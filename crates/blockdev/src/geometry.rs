//! Disk geometry and service-time model.
//!
//! The paper's testbed disk is a Western Digital WD1200BB (7200 RPM ATA).
//! We model a drive of that class: seek time grows with the square root of
//! the track distance, rotational position advances continuously with
//! simulated time, and sequential transfers stream at media rate. Absolute
//! numbers need not match the paper's hardware (EXPERIMENTS.md discusses
//! this); what matters is that the *relative* costs — seeks for distant
//! replicas, lost rotations at ordering barriers — behave like a disk.

/// Geometry and timing parameters of a simulated disk.
#[derive(Clone, Copy, Debug)]
pub struct DiskGeometry {
    /// Blocks per track. Together with the rotation period this fixes the
    /// angular position of every block.
    pub blocks_per_track: u64,
    /// Full revolution time in nanoseconds (7200 RPM ⇒ ~8.33 ms).
    pub rev_ns: u64,
    /// Minimum (single-track) seek time in nanoseconds.
    pub min_seek_ns: u64,
    /// Maximum (full-stroke) seek time in nanoseconds.
    pub max_seek_ns: u64,
    /// Per-request controller/command overhead in nanoseconds.
    pub overhead_ns: u64,
}

impl DiskGeometry {
    /// A 7200 RPM ATA drive of the WD1200BB's era.
    pub fn ata_7200rpm() -> Self {
        DiskGeometry {
            blocks_per_track: 128,
            rev_ns: 8_333_333,
            min_seek_ns: 800_000,    // 0.8 ms track-to-track
            max_seek_ns: 15_000_000, // 15 ms full stroke
            overhead_ns: 50_000,     // 50 µs command overhead
        }
    }

    /// A fast, nearly timing-free geometry for functional tests, where
    /// simulated time is irrelevant and should not dominate.
    pub fn instant() -> Self {
        DiskGeometry {
            blocks_per_track: 128,
            rev_ns: 8,
            min_seek_ns: 1,
            max_seek_ns: 2,
            overhead_ns: 0,
        }
    }

    /// Track number of a block address.
    pub fn track_of(&self, addr: u64) -> u64 {
        addr / self.blocks_per_track
    }

    /// Time to transfer one block under the head: one track passes per
    /// revolution, so a block takes `rev_ns / blocks_per_track`.
    pub fn transfer_ns(&self) -> u64 {
        self.rev_ns / self.blocks_per_track
    }

    /// Seek time between two tracks: zero for the same track, otherwise
    /// `min + (max - min) * sqrt(distance / total_tracks)` — the standard
    /// square-root seek curve.
    pub fn seek_ns(&self, from_track: u64, to_track: u64, total_tracks: u64) -> u64 {
        if from_track == to_track {
            return 0;
        }
        let dist = from_track.abs_diff(to_track) as f64;
        let total = total_tracks.max(1) as f64;
        let frac = (dist / total).sqrt();
        self.min_seek_ns + ((self.max_seek_ns - self.min_seek_ns) as f64 * frac) as u64
    }

    /// Angular slot (0..blocks_per_track) of a block on its track.
    pub fn slot_of(&self, addr: u64) -> u64 {
        addr % self.blocks_per_track
    }

    /// Rotational delay from simulated time `now_ns` until the start of the
    /// given angular slot passes under the head.
    pub fn rotational_wait_ns(&self, now_ns: u64, slot: u64) -> u64 {
        let slot_ns = self.transfer_ns();
        let target = slot * slot_ns;
        let phase = now_ns % self.rev_ns;
        if target >= phase {
            target - phase
        } else {
            self.rev_ns - phase + target
        }
    }
}

impl Default for DiskGeometry {
    fn default() -> Self {
        Self::ata_7200rpm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_divides_revolution() {
        let g = DiskGeometry::ata_7200rpm();
        assert_eq!(
            g.transfer_ns() * g.blocks_per_track,
            g.rev_ns - g.rev_ns % g.blocks_per_track
        );
        assert!(g.transfer_ns() > 0);
    }

    #[test]
    fn seek_zero_on_same_track() {
        let g = DiskGeometry::ata_7200rpm();
        assert_eq!(g.seek_ns(10, 10, 100), 0);
    }

    #[test]
    fn seek_grows_with_distance() {
        let g = DiskGeometry::ata_7200rpm();
        let near = g.seek_ns(0, 1, 1000);
        let mid = g.seek_ns(0, 250, 1000);
        let far = g.seek_ns(0, 1000, 1000);
        assert!(near >= g.min_seek_ns);
        assert!(near < mid && mid < far);
        assert!(far <= g.max_seek_ns + g.min_seek_ns);
    }

    #[test]
    fn rotational_wait_is_bounded_by_revolution() {
        let g = DiskGeometry::ata_7200rpm();
        for now in [0u64, 123_456, 8_333_332, 16_666_700] {
            for slot in [0u64, 1, 63, 127] {
                let w = g.rotational_wait_ns(now, slot);
                assert!(w < g.rev_ns, "wait {w} >= rev {}", g.rev_ns);
            }
        }
    }

    #[test]
    fn sequential_slots_have_no_wait_after_transfer() {
        // After transferring slot k (ending exactly at the start of slot
        // k+1), the wait for slot k+1 is zero.
        let g = DiskGeometry::ata_7200rpm();
        let end_of_slot_0 = g.transfer_ns();
        assert_eq!(g.rotational_wait_ns(end_of_slot_0, 1), 0);
    }

    #[test]
    fn track_and_slot_decompose_address() {
        let g = DiskGeometry::ata_7200rpm();
        let addr = 5 * g.blocks_per_track + 17;
        assert_eq!(g.track_of(addr), 5);
        assert_eq!(g.slot_of(addr), 17);
    }
}

//! [`MemDisk`]: a perfect in-memory disk with a mechanical timing model.

use iron_core::{Block, BlockAddr, BlockTag, IoKind, SimClock};

use crate::device::{BlockDevice, DiskError, DiskResult, RawAccess};
use crate::geometry::DiskGeometry;
use crate::trace::{IoOutcome, IoTrace};

/// Cumulative device statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Blocks read.
    pub reads: u64,
    /// Blocks written.
    pub writes: u64,
    /// Ordering barriers issued.
    pub barriers: u64,
    /// Durability flushes issued.
    pub flushes: u64,
    /// Total simulated nanoseconds spent servicing requests.
    pub busy_ns: u64,
    /// Seeks performed (track changes).
    pub seeks: u64,
}

/// An in-memory disk that never fails.
///
/// Every request advances the shared [`SimClock`] according to the
/// [`DiskGeometry`] service-time model and appends to the shared
/// [`IoTrace`].
pub struct MemDisk {
    blocks: Vec<Block>,
    geometry: DiskGeometry,
    clock: SimClock,
    trace: IoTrace,
    stats: DiskStats,
    current_track: u64,
    /// Last block accessed, for sequential-streaming detection.
    last_addr: Option<u64>,
    /// Set by [`BlockDevice::barrier`]: the next media access must wait for
    /// a full platter revolution (the dependent write missed its slot).
    pending_barrier: bool,
    /// Active readahead window `[start, end)` from
    /// [`BlockDevice::readahead`]: the firmware has the scan buffered, so
    /// ascending reads inside it stream across track boundaries. Any
    /// write, barrier, flush, or out-of-window access discards it (the
    /// drive repurposes the buffer the moment the access pattern breaks).
    ra_window: Option<(u64, u64)>,
}

impl MemDisk {
    /// Create a disk of `num_blocks` zeroed blocks.
    pub fn new(num_blocks: u64, geometry: DiskGeometry, clock: SimClock) -> Self {
        MemDisk {
            blocks: (0..num_blocks).map(|_| Block::zeroed()).collect(),
            geometry,
            clock,
            trace: IoTrace::new(),
            stats: DiskStats::default(),
            current_track: 0,
            last_addr: None,
            pending_barrier: false,
            ra_window: None,
        }
    }

    /// Convenience constructor for functional tests: near-instant timing.
    pub fn for_tests(num_blocks: u64) -> Self {
        MemDisk::new(num_blocks, DiskGeometry::instant(), SimClock::new())
    }

    /// A deep copy of the medium with fresh clock, trace, and statistics —
    /// the fingerprinting campaign stamps one golden image per file system
    /// and snapshots it for every (workload × block type × fault) cell.
    pub fn snapshot(&self) -> MemDisk {
        MemDisk {
            blocks: self.blocks.clone(),
            geometry: self.geometry,
            clock: SimClock::new(),
            trace: IoTrace::new(),
            stats: DiskStats::default(),
            current_track: 0,
            last_addr: None,
            pending_barrier: false,
            ra_window: None,
        }
    }

    /// The shared trace handle.
    pub fn trace(&self) -> IoTrace {
        self.trace.clone()
    }

    /// The shared clock handle.
    pub fn clock(&self) -> SimClock {
        self.clock.clone()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> DiskStats {
        self.stats
    }

    /// The geometry in use.
    pub fn geometry(&self) -> DiskGeometry {
        self.geometry
    }

    fn check_range(&self, addr: BlockAddr) -> DiskResult<()> {
        if addr.0 < self.blocks.len() as u64 {
            Ok(())
        } else {
            Err(DiskError::OutOfRange { addr })
        }
    }

    /// Charge service time for accessing `addr`: command overhead, seek,
    /// rotational wait (plus a full lost revolution if a barrier is
    /// pending), and media transfer.
    ///
    /// Sequential accesses (the block immediately after the previous one,
    /// with no intervening barrier) *stream*: real drives service these from
    /// the track buffer / write coalescer at media rate, so they cost only
    /// the transfer time. Non-sequential *reads* pay overhead + seek +
    /// rotation; non-sequential *writes* pay overhead + seek + transfer —
    /// the drive's write-back cache acknowledges them without waiting for
    /// the platter (rotational destaging happens in the background). An
    /// ordering barrier defeats the write cache: the next access waits a
    /// full revolution (its slot has passed by the time prior writes are
    /// on the medium).
    fn charge(&mut self, addr: BlockAddr, is_write: bool) {
        let g = self.geometry;
        let start = self.clock.now_ns();
        // A write or an access outside the readahead window repurposes the
        // firmware's readahead buffer; the streaming benefit is gone.
        if let Some((ra_start, ra_end)) = self.ra_window {
            if is_write || addr.0 < ra_start || addr.0 >= ra_end {
                self.ra_window = None;
            }
        }
        let streaming_read = !is_write
            && !self.pending_barrier
            && self.last_addr == Some(addr.0.wrapping_sub(1))
            && self
                .ra_window
                .is_some_and(|(s, e)| addr.0 >= s && addr.0 < e);
        let sequential = !self.pending_barrier
            && self.last_addr == Some(addr.0.wrapping_sub(1))
            && g.track_of(addr.0) == self.current_track;

        let mut t = start;
        if streaming_read {
            // Firmware readahead: the next track is already (being)
            // buffered, so a track crossing costs no positioning — the
            // scan proceeds at media rate.
            t += g.transfer_ns();
            self.current_track = g.track_of(addr.0);
        } else if sequential {
            t += g.transfer_ns();
        } else {
            t += g.overhead_ns;
            let target_track = g.track_of(addr.0);
            if target_track != self.current_track {
                let total_tracks = (self.blocks.len() as u64).div_ceil(g.blocks_per_track);
                t += g.seek_ns(self.current_track, target_track, total_tracks);
                self.current_track = target_track;
                self.stats.seeks += 1;
            }
            if self.pending_barrier {
                // The dependent request was held back until prior writes hit
                // the medium; by then the target slot has passed under the
                // head.
                t += g.rev_ns;
                self.pending_barrier = false;
                t += g.rotational_wait_ns(t, g.slot_of(addr.0));
            } else if !is_write {
                t += g.rotational_wait_ns(t, g.slot_of(addr.0));
            }
            t += g.transfer_ns();
        }
        self.last_addr = Some(addr.0);

        self.clock.advance_to_ns(t);
        self.stats.busy_ns += t - start;
    }
}

impl BlockDevice for MemDisk {
    fn num_blocks(&self) -> u64 {
        self.blocks.len() as u64
    }

    fn read_tagged(&mut self, addr: BlockAddr, tag: BlockTag) -> DiskResult<Block> {
        self.check_range(addr)?;
        self.charge(addr, false);
        self.stats.reads += 1;
        let block = self.blocks[addr.0 as usize].clone();
        self.trace
            .record(IoKind::Read, addr, tag, IoOutcome::Ok, self.clock.now_ns());
        Ok(block)
    }

    fn write_tagged(&mut self, addr: BlockAddr, block: &Block, tag: BlockTag) -> DiskResult<()> {
        self.check_range(addr)?;
        self.charge(addr, true);
        self.stats.writes += 1;
        self.blocks[addr.0 as usize] = block.clone();
        self.trace
            .record(IoKind::Write, addr, tag, IoOutcome::Ok, self.clock.now_ns());
        Ok(())
    }

    fn barrier(&mut self) -> DiskResult<()> {
        self.stats.barriers += 1;
        self.pending_barrier = true;
        self.ra_window = None;
        Ok(())
    }

    /// The medium itself is nonvolatile (`blocks` is updated at write
    /// time), so a flush adds no data movement — but it is counted
    /// separately from barriers so layered stacks can assert that a
    /// durability flush issued at the top really arrives at the bottom
    /// *as a flush*, and it pays the same lost-slot penalty a drain of
    /// the drive's write cache costs.
    fn flush(&mut self) -> DiskResult<()> {
        self.stats.flushes += 1;
        self.pending_barrier = true;
        self.ra_window = None;
        Ok(())
    }

    /// Arm the readahead window. Free of charge: the firmware prefetches
    /// in the background, overlapped with host-side processing of the
    /// blocks already delivered; only the scan's own reads are billed.
    fn readahead(&mut self, start: BlockAddr, len: u64) {
        let end = (start.0 + len).min(self.blocks.len() as u64);
        if start.0 < end {
            self.ra_window = Some((start.0, end));
        }
    }
}

impl RawAccess for MemDisk {
    fn peek(&self, addr: BlockAddr) -> Block {
        self.blocks[addr.0 as usize].clone()
    }

    fn poke(&mut self, addr: BlockAddr, block: &Block) {
        self.blocks[addr.0 as usize] = block.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let mut d = MemDisk::for_tests(16);
        let data = Block::filled(0xAB);
        d.write(BlockAddr(3), &data).unwrap();
        assert_eq!(d.read(BlockAddr(3)).unwrap(), data);
        assert!(d.read(BlockAddr(4)).unwrap().is_zeroed());
    }

    #[test]
    fn out_of_range_rejected() {
        let mut d = MemDisk::for_tests(4);
        assert_eq!(
            d.read(BlockAddr(4)),
            Err(DiskError::OutOfRange { addr: BlockAddr(4) })
        );
        assert_eq!(
            d.write(BlockAddr(9), &Block::zeroed()),
            Err(DiskError::OutOfRange { addr: BlockAddr(9) })
        );
    }

    #[test]
    fn io_advances_clock_and_stats() {
        let clock = SimClock::new();
        let mut d = MemDisk::new(1024, DiskGeometry::ata_7200rpm(), clock.clone());
        d.read(BlockAddr(0)).unwrap();
        let after_first = clock.now_ns();
        assert!(after_first > 0);
        d.write(BlockAddr(512), &Block::zeroed()).unwrap();
        assert!(clock.now_ns() > after_first);
        let s = d.stats();
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.seeks, 1, "block 512 is on a different track");
        assert!(s.busy_ns > 0);
    }

    #[test]
    fn sequential_io_is_much_faster_than_random() {
        let geom = DiskGeometry::ata_7200rpm();
        let clock_seq = SimClock::new();
        let mut seq = MemDisk::new(4096, geom, clock_seq.clone());
        for i in 0..64 {
            seq.read(BlockAddr(i)).unwrap();
        }
        let seq_ns = clock_seq.now_ns();

        let clock_rand = SimClock::new();
        let mut rand = MemDisk::new(4096, geom, clock_rand.clone());
        for i in 0..64u64 {
            // Jump across the disk each time.
            rand.read(BlockAddr((i * 997) % 4096)).unwrap();
        }
        let rand_ns = clock_rand.now_ns();
        assert!(
            rand_ns > seq_ns * 3,
            "random ({rand_ns}ns) should be far slower than sequential ({seq_ns}ns)"
        );
    }

    #[test]
    fn readahead_streams_a_scan_across_track_boundaries() {
        // 4 tracks' worth of blocks (128 blocks/track on ata_7200rpm).
        let geom = DiskGeometry::ata_7200rpm();
        let scan = |hint: bool| {
            let clock = SimClock::new();
            let mut d = MemDisk::new(1024, geom, clock.clone());
            if hint {
                d.readahead(BlockAddr(0), 512);
            }
            for i in 0..512 {
                d.read(BlockAddr(i)).unwrap();
            }
            (clock.now_ns(), d.stats().seeks)
        };
        let (cold_ns, cold_seeks) = scan(false);
        let (ra_ns, ra_seeks) = scan(true);
        assert!(
            ra_ns < cold_ns,
            "hinted scan ({ra_ns}ns) must beat unhinted ({cold_ns}ns)"
        );
        assert!(cold_seeks >= 3, "an unhinted scan seeks at every track");
        assert_eq!(ra_seeks, 0, "a hinted scan never repositions");
        // The hinted scan pays pure media rate after the first block.
        assert!(ra_ns < geom.transfer_ns() * 512 + geom.rev_ns * 2);
    }

    #[test]
    fn readahead_is_invalidated_by_writes_and_barriers() {
        let geom = DiskGeometry::ata_7200rpm();
        let clock = SimClock::new();
        let mut d = MemDisk::new(1024, geom, clock.clone());
        d.readahead(BlockAddr(0), 512);
        for i in 0..128 {
            d.read(BlockAddr(i)).unwrap();
        }
        // A write repurposes the buffer: the scan's next track crossing
        // pays the full positioning charge again.
        d.write(BlockAddr(600), &Block::zeroed()).unwrap();
        let seeks_before = d.stats().seeks;
        d.read(BlockAddr(128)).unwrap();
        d.read(BlockAddr(129)).unwrap();
        assert!(d.stats().seeks > seeks_before, "window must be discarded");

        // Same for a barrier.
        d.readahead(BlockAddr(256), 256);
        d.read(BlockAddr(255)).unwrap(); // position just before the window
        d.barrier().unwrap();
        let t0 = clock.now_ns();
        d.read(BlockAddr(256)).unwrap();
        assert!(
            clock.now_ns() - t0 > geom.transfer_ns(),
            "a post-barrier read must not stream"
        );
    }

    #[test]
    fn readahead_changes_no_content_or_counted_io() {
        let mut d = MemDisk::for_tests(64);
        d.write(BlockAddr(5), &Block::filled(0x5A)).unwrap();
        let stats_before = d.stats();
        let trace_len = d.trace().len();
        d.readahead(BlockAddr(0), 64);
        assert_eq!(d.stats().reads, stats_before.reads, "a hint reads nothing");
        assert_eq!(d.trace().len(), trace_len, "a hint is not a traced event");
        assert_eq!(d.read(BlockAddr(5)).unwrap(), Block::filled(0x5A));
    }

    #[test]
    fn barrier_costs_a_revolution_on_next_access() {
        let geom = DiskGeometry::ata_7200rpm();
        let clock = SimClock::new();
        let mut d = MemDisk::new(1024, geom, clock.clone());

        // Without barrier: sequential writes stream.
        d.write(BlockAddr(10), &Block::zeroed()).unwrap();
        let t0 = clock.now_ns();
        d.write(BlockAddr(11), &Block::zeroed()).unwrap();
        let no_barrier_cost = clock.now_ns() - t0;

        // With barrier: the next sequential write pays a full revolution.
        d.write(BlockAddr(12), &Block::zeroed()).unwrap();
        let t1 = clock.now_ns();
        d.barrier().unwrap();
        d.write(BlockAddr(13), &Block::zeroed()).unwrap();
        let barrier_cost = clock.now_ns() - t1;

        assert!(
            barrier_cost >= no_barrier_cost + geom.rev_ns,
            "barrier cost {barrier_cost} should exceed streaming cost {no_barrier_cost} by ~one revolution ({})",
            geom.rev_ns
        );
    }

    #[test]
    fn trace_records_tags_and_outcomes() {
        let mut d = MemDisk::for_tests(8);
        let trace = d.trace();
        d.read_tagged(BlockAddr(1), BlockTag("inode")).unwrap();
        d.write_tagged(BlockAddr(2), &Block::zeroed(), BlockTag("j-commit"))
            .unwrap();
        let events = trace.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].tag, BlockTag("inode"));
        assert_eq!(events[0].kind, IoKind::Read);
        assert_eq!(events[1].tag, BlockTag("j-commit"));
        assert_eq!(events[1].outcome, IoOutcome::Ok);
    }

    #[test]
    fn peek_poke_bypass_trace_and_clock() {
        let mut d = MemDisk::for_tests(8);
        let trace = d.trace();
        let clock = d.clock();
        let before = clock.now_ns();
        d.poke(BlockAddr(5), &Block::filled(7));
        assert_eq!(d.peek(BlockAddr(5)), Block::filled(7));
        assert_eq!(clock.now_ns(), before);
        assert!(trace.is_empty());
        // And the real read sees poked contents.
        assert_eq!(d.read(BlockAddr(5)).unwrap(), Block::filled(7));
    }
}

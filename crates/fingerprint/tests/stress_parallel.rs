//! Stress lane (`cargo test -- --ignored`, CI's scheduled/opt-in job):
//! the fingerprint campaign's parallel==sequential property at elevated
//! thread counts. The default tier proves it at small widths; this lane
//! re-proves it at `IRON_TEST_THREADS` over the full Figure-2 matrix.

use iron_fingerprint::{fingerprint_fs, CampaignOptions, Ext3Adapter, ReiserAdapter};

fn stress_threads() -> usize {
    std::env::var("IRON_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16)
}

#[test]
#[ignore = "stress lane; run with --ignored (IRON_TEST_THREADS)"]
fn ext3_full_matrix_is_identical_at_elevated_threads() {
    let sequential = fingerprint_fs(
        &Ext3Adapter::stock(),
        &CampaignOptions::default().with_threads(1),
    );
    let parallel = fingerprint_fs(
        &Ext3Adapter::stock(),
        &CampaignOptions::default().with_threads(stress_threads()),
    );
    assert_eq!(sequential.cells, parallel.cells, "matrix diverged");
    assert_eq!(sequential.relevant, parallel.relevant);
    assert!(sequential.relevant > 0, "the campaign must fire faults");
}

#[test]
#[ignore = "stress lane; run with --ignored (IRON_TEST_THREADS)"]
fn reiser_full_matrix_is_identical_at_elevated_threads() {
    let sequential = fingerprint_fs(&ReiserAdapter, &CampaignOptions::default().with_threads(1));
    let parallel = fingerprint_fs(
        &ReiserAdapter,
        &CampaignOptions::default().with_threads(stress_threads()),
    );
    assert_eq!(sequential.cells, parallel.cells, "matrix diverged");
    assert_eq!(sequential.relevant, parallel.relevant);
}

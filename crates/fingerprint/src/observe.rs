//! Failure-policy inference (§4.3, automated).
//!
//! "To determine how a fault affected the file system, we compare the
//! results of running with and without the fault. We perform this
//! comparison across all observable outputs from the system: the error
//! codes and data returned by the file system API, the contents of the
//! system log, and the low-level I/O traces recorded by the
//! fault-injection layer."
//!
//! Each observable feeds a specific classification rule:
//!
//! | evidence | inferred level |
//! |---|---|
//! | any reaction to an explicit error code | `DErrorCode` |
//! | log/sanity rejection of corrupt contents (`EUCLEAN`, magic/sanity messages, refused mount) | `DSanity` |
//! | checksum-mismatch messages | `DRedundancy` |
//! | error returned through the API | `RPropagate` |
//! | crash / read-only remount / refused mount | `RStop` |
//! | repeated I/O to the faulted address in the trace | `RRetry` |
//! | replica/parity/alternate reads in trace or log | `RRedundancy` |
//! | fabricated (all-zero) data returned without error | `RGuess` |
//! | fault fired, nothing else observed | `DZero`/`RZero` |

use iron_blockdev::trace::{IoEvent, IoOutcome};
use iron_core::klog::{LogEntry, LogLevel};
use iron_core::policy::{DetectionSet, PolicyCell, RecoverySet};
use iron_core::{BlockAddr, DetectionLevel, Errno, IoKind, RecoveryLevel};
use iron_vfs::{MountState, VfsError};

use crate::campaign::FaultMode;
use crate::workloads::WorkloadOutput;

/// Everything observed from one faulty run, paired with its fault-free
/// reference.
#[derive(Debug)]
pub struct Observation {
    /// The injected fault's mode.
    pub mode: FaultMode,
    /// Did the fault actually fire? (If not, the cell is inapplicable.)
    pub fired: bool,
    /// The address the fault anchored on.
    pub anchor: Option<BlockAddr>,
    /// Output of the fault-free reference run.
    pub reference: WorkloadOutput,
    /// Output of the faulty run (mount failures appear as a `mount:` step).
    pub faulty: WorkloadOutput,
    /// Error from the mount itself, if mounting failed.
    pub mount_error: Option<VfsError>,
    /// Mount state after the run.
    pub final_state: MountState,
    /// Kernel-log lines from the faulty run.
    pub klog: Vec<LogEntry>,
    /// I/O-trace events from the faulty run.
    pub trace: Vec<IoEvent>,
}

const SANITY_MARKERS: [&str; 10] = [
    "sanity",
    "magic",
    "corrupt",
    "invalid",
    "unusable",
    "unmountable",
    "can not find",
    "Can't find",
    "needs cleaning",
    "vs-", // ReiserFS sanity-check message prefixes
];

const REDUNDANCY_LOG_MARKERS: [&str; 5] = [
    "recovered from replica",
    "reconstructed from parity",
    "trying alternate",
    "checksum mismatch",
    "transactional checksum mismatch",
];

impl Observation {
    fn outputs_deviate(&self) -> bool {
        self.reference != self.faulty
    }

    fn api_error_appeared(&self) -> bool {
        // Panics are RStop, not error propagation; mount failures count as
        // propagation only when they surface an errno.
        (self.faulty.any_errno() && !self.reference.any_errno())
            || matches!(self.mount_error, Some(VfsError::Errno(_)))
    }

    fn euclean_appeared(&self) -> bool {
        self.faulty.steps.iter().any(|s| s.contains("EUCLEAN"))
            || matches!(self.mount_error, Some(VfsError::Errno(Errno::EUCLEAN)))
    }

    fn log_has(&self, markers: &[&str]) -> bool {
        self.klog
            .iter()
            .any(|e| markers.iter().any(|m| e.message.contains(m)))
    }

    fn any_noise_logged(&self) -> bool {
        self.klog.iter().any(|e| e.level >= LogLevel::Warn)
    }

    fn stopped(&self) -> bool {
        matches!(self.final_state, MountState::Crashed | MountState::ReadOnly)
            || self.mount_error.is_some()
    }

    /// Did the trace show repeated attempts at the faulted address?
    fn retried(&self) -> bool {
        let Some(anchor) = self.anchor else {
            return false;
        };
        let kind = match self.mode {
            FaultMode::WriteError => IoKind::Write,
            _ => IoKind::Read,
        };
        // An FS-level retry re-issues the request *within one operation*;
        // the workload touching the same block again in a later step is
        // not a retry. Step marks (trace lengths at step ends) scope the
        // count; without marks, fall back to the whole trace.
        let matches: Vec<usize> = self
            .trace
            .iter()
            .enumerate()
            .filter(|(_, e)| e.addr == anchor && e.kind == kind)
            .map(|(i, _)| i)
            .collect();
        if self.faulty.step_trace_marks.is_empty() {
            return matches.len() >= 2;
        }
        let mut prev = 0usize;
        for &end in &self.faulty.step_trace_marks {
            let in_step = matches.iter().filter(|&&i| i >= prev && i < end).count();
            if in_step >= 2 {
                return true;
            }
            prev = end;
        }
        matches.iter().filter(|&&i| i >= prev).count() >= 2
    }

    /// Did the trace show redundancy being consulted after the fault?
    fn used_redundancy(&self) -> bool {
        if self.log_has(&REDUNDANCY_LOG_MARKERS[..3]) {
            return true;
        }
        // Explicit redundancy block types read successfully after the
        // first faulted event.
        let first_bad = self
            .trace
            .iter()
            .position(|e| e.outcome != IoOutcome::Ok)
            .unwrap_or(0);
        self.trace[first_bad..].iter().any(|e| {
            e.kind == IoKind::Read
                && e.outcome == IoOutcome::Ok
                && (e.tag.0 == "m-replica" || e.tag.0 == "d-parity")
        })
    }

    /// Did a read step fabricate blank content (an all-zero result that
    /// the reference run did not produce)?
    fn blank_data_returned(&self) -> bool {
        self.faulty.steps.iter().any(|s| {
            s.contains(":ok:") && s.ends_with(":zero") && !self.reference.steps.contains(s)
        })
    }
}

/// Classify an observation into a Figure 2/3 cell.
///
/// Returns `None` when the fault never fired — the gray "not applicable"
/// cells of the paper's figures.
pub fn infer(obs: &Observation) -> Option<PolicyCell> {
    if !obs.fired {
        return None;
    }
    let mut detection = DetectionSet::EMPTY;
    let mut recovery = RecoverySet::EMPTY;

    let reacted = obs.outputs_deviate()
        || obs.api_error_appeared()
        || obs.any_noise_logged()
        || obs.stopped();

    match obs.mode {
        FaultMode::ReadError | FaultMode::WriteError | FaultMode::TransientRead => {
            // The device announced the fault with an error code; any
            // reaction at all means the code was checked.
            if reacted {
                detection.insert(DetectionLevel::DErrorCode);
            } else {
                detection.insert(DetectionLevel::DZero);
            }
        }
        FaultMode::Corruption | FaultMode::ZeroCorruption => {
            // Silent corruption: detection needs positive evidence.
            if obs.log_has(&["checksum mismatch"]) {
                detection.insert(DetectionLevel::DRedundancy);
            }
            if obs.euclean_appeared() || obs.log_has(&SANITY_MARKERS) {
                detection.insert(DetectionLevel::DSanity);
            }
            if obs.blank_data_returned() && detection.is_empty() {
                // The content was rejected internally (a sanity check) and
                // a blank substitute fabricated.
                detection.insert(DetectionLevel::DSanity);
            }
            if detection.is_empty() {
                detection.insert(DetectionLevel::DZero);
            }
        }
    }

    // Recovery classification.
    if obs.stopped() {
        recovery.insert(RecoveryLevel::RStop);
    }
    if obs.api_error_appeared() {
        recovery.insert(RecoveryLevel::RPropagate);
    }
    if obs.retried() {
        recovery.insert(RecoveryLevel::RRetry);
    }
    if obs.used_redundancy() {
        recovery.insert(RecoveryLevel::RRedundancy);
    }
    if obs.blank_data_returned() && !obs.api_error_appeared() {
        recovery.insert(RecoveryLevel::RGuess);
    }
    if recovery.is_empty() {
        recovery.insert(RecoveryLevel::RZero);
    }

    Some(PolicyCell {
        detection,
        recovery,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use iron_core::BlockTag;

    fn base_obs(mode: FaultMode) -> Observation {
        Observation {
            mode,
            fired: true,
            anchor: Some(BlockAddr(100)),
            reference: WorkloadOutput {
                steps: vec!["stat:ok:42".into()],
                step_trace_marks: Vec::new(),
            },
            faulty: WorkloadOutput {
                steps: vec!["stat:ok:42".into()],
                step_trace_marks: Vec::new(),
            },
            mount_error: None,
            final_state: MountState::ReadWrite,
            klog: Vec::new(),
            trace: Vec::new(),
        }
    }

    fn log(msg: &str, level: LogLevel) -> LogEntry {
        LogEntry {
            level,
            subsystem: "test",
            message: msg.into(),
        }
    }

    fn ev(addr: u64, kind: IoKind, tag: &'static str, outcome: IoOutcome) -> IoEvent {
        IoEvent {
            seq: 0,
            kind,
            addr: BlockAddr(addr),
            tag: BlockTag(tag),
            outcome,
            at_ns: 0,
        }
    }

    #[test]
    fn unfired_fault_is_gray() {
        let mut obs = base_obs(FaultMode::ReadError);
        obs.fired = false;
        assert_eq!(infer(&obs), None);
    }

    #[test]
    fn silently_ignored_write_error_is_zero_zero() {
        let obs = base_obs(FaultMode::WriteError);
        let cell = infer(&obs).unwrap();
        assert!(cell.detection.contains(DetectionLevel::DZero));
        assert!(cell.recovery.contains(RecoveryLevel::RZero));
        assert_eq!(cell.detection.len(), 1);
    }

    #[test]
    fn propagated_read_error_with_stop() {
        let mut obs = base_obs(FaultMode::ReadError);
        obs.faulty.steps = vec!["stat:err:EIO".into()];
        obs.final_state = MountState::ReadOnly;
        obs.klog
            .push(log("I/O error reading block", LogLevel::Error));
        let cell = infer(&obs).unwrap();
        assert!(cell.detection.contains(DetectionLevel::DErrorCode));
        assert!(cell.recovery.contains(RecoveryLevel::RPropagate));
        assert!(cell.recovery.contains(RecoveryLevel::RStop));
    }

    #[test]
    fn retry_seen_in_trace() {
        let mut obs = base_obs(FaultMode::ReadError);
        obs.faulty.steps = vec!["stat:err:EIO".into()];
        obs.trace = vec![
            ev(100, IoKind::Read, "data", IoOutcome::Error),
            ev(100, IoKind::Read, "data", IoOutcome::Error),
        ];
        let cell = infer(&obs).unwrap();
        assert!(cell.recovery.contains(RecoveryLevel::RRetry));
    }

    #[test]
    fn replica_read_is_redundancy() {
        let mut obs = base_obs(FaultMode::ReadError);
        obs.klog
            .push(log("I/O error reading metadata block", LogLevel::Error));
        obs.trace = vec![
            ev(100, IoKind::Read, "inode", IoOutcome::Error),
            ev(2148, IoKind::Read, "m-replica", IoOutcome::Ok),
        ];
        let cell = infer(&obs).unwrap();
        assert!(cell.recovery.contains(RecoveryLevel::RRedundancy));
        assert!(!cell.recovery.contains(RecoveryLevel::RPropagate));
    }

    #[test]
    fn corruption_with_checksum_log_is_dredundancy() {
        let mut obs = base_obs(FaultMode::Corruption);
        obs.klog
            .push(log("checksum mismatch on data block 99", LogLevel::Error));
        obs.faulty.steps = vec!["stat:err:EIO".into()];
        let cell = infer(&obs).unwrap();
        assert!(cell.detection.contains(DetectionLevel::DRedundancy));
    }

    #[test]
    fn corruption_silently_used_is_dzero() {
        let mut obs = base_obs(FaultMode::Corruption);
        // Output deviates (garbage parsed) but nothing was detected.
        obs.faulty.steps = vec!["stat:err:ENOENT".into()];
        let cell = infer(&obs).unwrap();
        assert!(cell.detection.contains(DetectionLevel::DZero));
        assert!(
            cell.recovery.contains(RecoveryLevel::RPropagate),
            "the spurious ENOENT still reaches the user"
        );
    }

    #[test]
    fn corruption_with_sanity_message_is_dsanity() {
        let mut obs = base_obs(FaultMode::Corruption);
        obs.faulty.steps = vec!["stat:err:EUCLEAN".into()];
        obs.klog
            .push(log("inode 5 failed sanity check", LogLevel::Error));
        let cell = infer(&obs).unwrap();
        assert!(cell.detection.contains(DetectionLevel::DSanity));
        assert!(!cell.detection.contains(DetectionLevel::DRedundancy));
    }

    #[test]
    fn blank_page_is_guess_with_sanity() {
        let mut obs = base_obs(FaultMode::Corruption);
        obs.reference.steps = vec!["read:ok:8192b:abcd12".into()];
        obs.faulty.steps = vec!["read:ok:8192b:000000:zero".into()];
        let cell = infer(&obs).unwrap();
        assert!(cell.recovery.contains(RecoveryLevel::RGuess));
        assert!(cell.detection.contains(DetectionLevel::DSanity));
    }

    #[test]
    fn panic_counts_as_stop() {
        let mut obs = base_obs(FaultMode::WriteError);
        obs.faulty.steps = vec!["sync:PANIC".into()];
        obs.final_state = MountState::Crashed;
        let cell = infer(&obs).unwrap();
        assert!(cell.detection.contains(DetectionLevel::DErrorCode));
        assert!(cell.recovery.contains(RecoveryLevel::RStop));
    }
}

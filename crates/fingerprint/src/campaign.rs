//! The fault-injection campaign: drive every (workload × block type ×
//! fault mode) cell and build the policy matrix.
//!
//! §4.4: "Our workload suite contains roughly 30 programs, each file
//! system has on the order of 10 to 20 different block types, and each
//! block can be failed on a read or a write or have its data corrupted.
//! For each file system, this amounts to roughly 400 relevant tests."
//! The campaign runs the full cross product; cells whose fault never
//! fires are the gray "not applicable" cells of Figure 2.

use std::collections::HashMap;

use iron_blockdev::{MemDisk, StackBuilder};
use iron_core::model::CorruptionStyle;
use iron_core::policy::PolicyCell;
use iron_core::{BlockTag, FaultKind};
use iron_faultinject::{FaultPlan, FaultSpec, FaultStackExt, FaultTarget};
use iron_vfs::{FsEnv, Vfs, VfsError};

use crate::adapters::FsUnderTest;
use crate::observe::{infer, Observation};
use crate::workloads::{run, Workload, WorkloadOutput};

/// The three fault modes of §4.2: block failure on read, block failure on
/// write, and block corruption (on read).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FaultMode {
    /// Latent sector error on read.
    ReadError,
    /// Failed write.
    WriteError,
    /// Silent corruption (random noise), returned on read.
    Corruption,
    /// Transient read error (clears after one failure) — supplementary
    /// mode, not a Figure 2 panel; used by the §6.2 scenario sweep.
    TransientRead,
    /// Silent corruption manifesting as a zeroed block (lost write) —
    /// supplementary mode for the §6.2 scenario sweep.
    ZeroCorruption,
}

impl FaultMode {
    /// All modes, in Figure 2's panel order.
    pub const ALL: [FaultMode; 3] = [
        FaultMode::ReadError,
        FaultMode::WriteError,
        FaultMode::Corruption,
    ];

    /// The fault kind to inject.
    pub fn kind(&self) -> FaultKind {
        match self {
            FaultMode::ReadError | FaultMode::TransientRead => FaultKind::ReadError,
            FaultMode::WriteError => FaultKind::WriteError,
            FaultMode::Corruption => FaultKind::Corruption(CorruptionStyle::RandomNoise),
            FaultMode::ZeroCorruption => FaultKind::Corruption(CorruptionStyle::Zeroed),
        }
    }

    /// The full fault specification aimed at `tag`: sticky and anchored on
    /// the first matching access (fail *a* block of the type, not all of
    /// them), except the transient mode which clears after one failure.
    pub fn spec(&self, tag: BlockTag) -> FaultSpec {
        let target = FaultTarget::TagNth { tag, nth: 0 };
        match self {
            FaultMode::TransientRead => FaultSpec::transient(self.kind(), target, 1),
            _ => FaultSpec::sticky(self.kind(), target),
        }
    }

    /// Panel title, as in Figure 2.
    pub fn title(&self) -> &'static str {
        match self {
            FaultMode::ReadError => "Read Failure",
            FaultMode::WriteError => "Write Failure",
            FaultMode::Corruption => "Corruption",
            FaultMode::TransientRead => "Transient Read Failure",
            FaultMode::ZeroCorruption => "Corruption (zeroed)",
        }
    }
}

/// Options restricting a campaign (tests use subsets; the figure binaries
/// run everything).
#[derive(Clone, Debug)]
pub struct CampaignOptions {
    /// Fault modes to run.
    pub modes: Vec<FaultMode>,
    /// Workload columns to run.
    pub workloads: Vec<Workload>,
    /// Row filter: only these tags (empty = all rows).
    pub rows: Vec<BlockTag>,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            modes: FaultMode::ALL.to_vec(),
            workloads: Workload::COLUMNS.to_vec(),
            rows: Vec::new(),
        }
    }
}

/// A Figure 2/3-style policy matrix for one file system.
pub struct PolicyMatrix {
    /// File-system name.
    pub fs_name: &'static str,
    /// Row tags (block types).
    pub rows: Vec<BlockTag>,
    /// Column workloads.
    pub cols: Vec<Workload>,
    /// Fault modes (panels).
    pub modes: Vec<FaultMode>,
    /// `cells[(mode, row, col)]`: `None` = fault never fired (gray).
    pub cells: HashMap<(usize, usize, usize), Option<PolicyCell>>,
    /// Total cells where the fault fired (the "relevant tests" count).
    pub relevant: usize,
}

impl PolicyMatrix {
    /// The cell for (mode index, row index, col index).
    pub fn cell(&self, mode: usize, row: usize, col: usize) -> Option<PolicyCell> {
        self.cells.get(&(mode, row, col)).copied().flatten()
    }
}

/// One cell's faulty-run artifacts.
struct CellRun {
    output: WorkloadOutput,
    mount_error: Option<VfsError>,
    env: FsEnv,
    obs_fired: bool,
    anchor: Option<iron_core::BlockAddr>,
    klog: Vec<iron_core::klog::LogEntry>,
    trace: Vec<iron_blockdev::IoEvent>,
}

fn run_one(
    adapter: &dyn FsUnderTest,
    golden: &MemDisk,
    w: Workload,
    fault: Option<(FaultMode, BlockTag)>,
) -> CellRun {
    let plan = FaultPlan::new();
    let ctl = plan.controller();
    let fault_id = fault.map(|(mode, tag)| ctl.inject(mode.spec(tag)));
    // Special workloads need the fault live during mount; plain workloads
    // arm it afterwards so mount-time accesses (superblock, journal
    // superblock, checksum table) don't eat the fault meant for the
    // workload. We achieve that by disarming now and re-arming post-mount.
    let special = w.is_special();
    if let Some(id) = fault_id {
        if !special {
            ctl.disarm(id);
        }
    }

    // The Figure 1 stack: snapshot, fault layer, write-through cache.
    let dev = StackBuilder::new(golden.snapshot())
        .with_faults(plan)
        .write_through()
        .build();
    let trace = dev.inner().trace();
    let env = FsEnv::new();
    let mut cell = CellRun {
        output: WorkloadOutput::default(),
        mount_error: None,
        env: env.clone(),
        obs_fired: false,
        anchor: None,
        klog: Vec::new(),
        trace: Vec::new(),
    };

    match adapter.mount(dev, env) {
        Ok(fs) => {
            let mut v = Vfs::new(fs);
            cell.output.steps.push("mount:ok".into());
            if let Some(id) = fault_id {
                if !special {
                    // Re-arm for the workload proper (a fresh fault spec —
                    // disarm/arm toggling keeps the same counters).
                    let (mode, tag) = fault.expect("fault present");
                    ctl.clear();
                    let _ = ctl.inject(mode.spec(tag));
                    let _ = id;
                }
            }
            let out = run(w, &mut v, Some(&trace));
            cell.output.steps.extend(out.steps);
            cell.output.step_trace_marks = out.step_trace_marks;
        }
        Err(e) => {
            cell.output.steps.push(match &e {
                VfsError::Errno(errno) => format!("mount:err:{errno:?}"),
                VfsError::KernelPanic(_) => "mount:PANIC".into(),
            });
            cell.mount_error = Some(e);
        }
    }

    // Collect artifacts. Note: after ctl.clear()+inject the live fault is
    // id 0 in the (new) plan.
    let live_id = iron_faultinject::FaultId(0);
    if fault.is_some() {
        cell.obs_fired = ctl.fired(live_id);
        cell.anchor = ctl.anchor(live_id);
    }
    cell.klog = cell.env.klog.entries();
    cell.trace = trace.events();
    cell
}

/// Fingerprint one file system: run the campaign and build its matrix.
pub fn fingerprint_fs(adapter: &dyn FsUnderTest, opts: &CampaignOptions) -> PolicyMatrix {
    let all_rows = adapter.rows();
    let rows: Vec<BlockTag> = if opts.rows.is_empty() {
        all_rows
    } else {
        all_rows
            .into_iter()
            .filter(|t| opts.rows.contains(t))
            .collect()
    };
    let cols = opts.workloads.clone();
    let modes = opts.modes.clone();

    // Golden images: one clean, one with a dirty journal.
    let golden_clean = adapter.golden(false);
    let golden_dirty = adapter.golden(true);

    // Reference runs (fault-free), one per workload.
    let mut references: HashMap<Workload, WorkloadOutput> = HashMap::new();
    for &w in &cols {
        let golden = if w == Workload::Recovery {
            &golden_dirty
        } else {
            &golden_clean
        };
        let r = run_one(adapter, golden, w, None);
        references.insert(w, r.output);
    }

    let mut matrix = PolicyMatrix {
        fs_name: adapter.name(),
        rows: rows.clone(),
        cols: cols.clone(),
        modes: modes.clone(),
        cells: HashMap::new(),
        relevant: 0,
    };

    for (mi, &mode) in modes.iter().enumerate() {
        for (ri, &tag) in rows.iter().enumerate() {
            for (ci, &w) in cols.iter().enumerate() {
                let golden = if w == Workload::Recovery {
                    &golden_dirty
                } else {
                    &golden_clean
                };
                let r = run_one(adapter, golden, w, Some((mode, tag)));
                let obs = Observation {
                    mode,
                    fired: r.obs_fired,
                    anchor: r.anchor,
                    reference: references[&w].clone(),
                    faulty: r.output,
                    mount_error: r.mount_error,
                    final_state: r.env.state(),
                    klog: r.klog,
                    trace: r.trace,
                };
                let cell = infer(&obs);
                if cell.is_some() {
                    matrix.relevant += 1;
                }
                matrix.cells.insert((mi, ri, ci), cell);
            }
        }
    }
    matrix
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapters::Ext3Adapter;
    use iron_core::{DetectionLevel, RecoveryLevel};

    /// A focused mini-campaign: ext3, inode+data rows, a few columns.
    #[test]
    fn mini_campaign_reproduces_known_ext3_cells() {
        let opts = CampaignOptions {
            modes: vec![FaultMode::ReadError, FaultMode::WriteError],
            workloads: vec![Workload::Read, Workload::Write, Workload::AccessFamily],
            rows: vec![BlockTag("inode"), BlockTag("data")],
        };
        let m = fingerprint_fs(&Ext3Adapter::stock(), &opts);
        assert_eq!(m.rows.len(), 2);

        // data × read × ReadError: DErrorCode, RPropagate + RRetry.
        let data_row = m.rows.iter().position(|t| t.0 == "data").unwrap();
        let read_col = m.cols.iter().position(|w| *w == Workload::Read).unwrap();
        let cell = m.cell(0, data_row, read_col).expect("fault fires");
        assert!(cell.detection.contains(DetectionLevel::DErrorCode));
        assert!(cell.recovery.contains(RecoveryLevel::RPropagate));
        assert!(cell.recovery.contains(RecoveryLevel::RRetry));

        // inode × read-workload × ReadError: DErrorCode, RPropagate+RStop.
        let inode_row = m.rows.iter().position(|t| t.0 == "inode").unwrap();
        let cell = m.cell(0, inode_row, read_col).expect("fault fires");
        assert!(cell.detection.contains(DetectionLevel::DErrorCode));
        assert!(cell.recovery.contains(RecoveryLevel::RStop));

        // data × write-workload × WriteError: the paper's headline ext3
        // bug — DZero/RZero.
        let write_col = m.cols.iter().position(|w| *w == Workload::Write).unwrap();
        let cell = m.cell(1, data_row, write_col).expect("fault fires");
        assert!(cell.detection.contains(DetectionLevel::DZero));
        assert!(cell.recovery.contains(RecoveryLevel::RZero));
    }

    #[test]
    fn gray_cells_for_inapplicable_combinations() {
        // A journal-commit write fault cannot fire during a pure read
        // workload (nothing commits).
        let opts = CampaignOptions {
            modes: vec![FaultMode::WriteError],
            workloads: vec![Workload::Read],
            rows: vec![BlockTag("j-commit")],
        };
        let m = fingerprint_fs(&Ext3Adapter::stock(), &opts);
        assert_eq!(m.cell(0, 0, 0), None, "cell must be gray");
        assert_eq!(m.relevant, 0);
    }

    #[test]
    fn log_writes_column_reaches_journal_types() {
        let opts = CampaignOptions {
            modes: vec![FaultMode::WriteError],
            workloads: vec![Workload::LogWrites],
            rows: vec![BlockTag("j-desc"), BlockTag("j-commit"), BlockTag("j-data")],
        };
        let m = fingerprint_fs(&Ext3Adapter::stock(), &opts);
        for ri in 0..3 {
            let cell = m.cell(0, ri, 0);
            assert!(cell.is_some(), "row {} should fire", m.rows[ri]);
            // Stock ext3 ignores journal write errors (logged but
            // committed anyway) — detection happens (a warning is logged)
            // but no stop occurs.
            let cell = cell.unwrap();
            assert!(
                !cell.recovery.contains(RecoveryLevel::RStop),
                "stock ext3 must not stop on journal write failure (PAPER-BUG)"
            );
        }
    }

    #[test]
    fn recovery_column_exercises_journal_reads() {
        let opts = CampaignOptions {
            modes: vec![FaultMode::ReadError],
            workloads: vec![Workload::Recovery],
            rows: vec![BlockTag("j-data")],
        };
        let m = fingerprint_fs(&Ext3Adapter::stock(), &opts);
        let cell = m.cell(0, 0, 0).expect("replay reads journal data");
        assert!(cell.detection.contains(DetectionLevel::DErrorCode));
        assert!(cell.recovery.contains(RecoveryLevel::RStop));
    }
}

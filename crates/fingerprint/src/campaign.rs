//! The fault-injection campaign: drive every (workload × block type ×
//! fault mode) cell and build the policy matrix.
//!
//! §4.4: "Our workload suite contains roughly 30 programs, each file
//! system has on the order of 10 to 20 different block types, and each
//! block can be failed on a read or a write or have its data corrupted.
//! For each file system, this amounts to roughly 400 relevant tests."
//! The campaign runs the full cross product; cells whose fault never
//! fires are the gray "not applicable" cells of Figure 2.
//!
//! Every cell is an independent snapshot–mount–run: each gets its own
//! golden-image snapshot, fault plan, and [`FsEnv`]. That makes the cross
//! product embarrassingly parallel, so the campaign shards its cell list
//! over the workspace's shared executor ([`iron_core::exec::WorkerPool`]
//! — the same scoped-`std::thread` scheduler behind `iron-fsck`). Workers
//! fold finished cells into per-shard vectors keyed by `(mode, row, col)`;
//! the merge inserts them into the matrix by key, so the result is
//! *bit-identical* to the sequential run at any thread count (the
//! `campaign_scaling` bench and the property suite assert this).

use std::collections::HashMap;

use iron_blockdev::{MemDisk, StackBuilder};
use iron_core::exec::{Job, WorkerPool};
use iron_core::model::CorruptionStyle;
use iron_core::policy::PolicyCell;
use iron_core::{BlockTag, FaultKind};
use iron_faultinject::{FaultPlan, FaultSpec, FaultStackExt, FaultTarget};
use iron_vfs::{FsEnv, Vfs, VfsError};

use crate::adapters::FsUnderTest;
use crate::observe::{infer, Observation};
use crate::workloads::{run, Workload, WorkloadOutput};

/// The three fault modes of §4.2: block failure on read, block failure on
/// write, and block corruption (on read).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FaultMode {
    /// Latent sector error on read.
    ReadError,
    /// Failed write.
    WriteError,
    /// Silent corruption (random noise), returned on read.
    Corruption,
    /// Transient read error (clears after one failure) — supplementary
    /// mode, not a Figure 2 panel; used by the §6.2 scenario sweep.
    TransientRead,
    /// Silent corruption manifesting as a zeroed block (lost write) —
    /// supplementary mode for the §6.2 scenario sweep.
    ZeroCorruption,
}

impl FaultMode {
    /// All modes, in Figure 2's panel order.
    pub const ALL: [FaultMode; 3] = [
        FaultMode::ReadError,
        FaultMode::WriteError,
        FaultMode::Corruption,
    ];

    /// The fault kind to inject.
    pub fn kind(&self) -> FaultKind {
        match self {
            FaultMode::ReadError | FaultMode::TransientRead => FaultKind::ReadError,
            FaultMode::WriteError => FaultKind::WriteError,
            FaultMode::Corruption => FaultKind::Corruption(CorruptionStyle::RandomNoise),
            FaultMode::ZeroCorruption => FaultKind::Corruption(CorruptionStyle::Zeroed),
        }
    }

    /// The full fault specification aimed at `tag`: sticky and anchored on
    /// the first matching access (fail *a* block of the type, not all of
    /// them), except the transient mode which clears after one failure.
    pub fn spec(&self, tag: BlockTag) -> FaultSpec {
        let target = FaultTarget::TagNth { tag, nth: 0 };
        match self {
            FaultMode::TransientRead => FaultSpec::transient(self.kind(), target, 1),
            _ => FaultSpec::sticky(self.kind(), target),
        }
    }

    /// Panel title, as in Figure 2.
    pub fn title(&self) -> &'static str {
        match self {
            FaultMode::ReadError => "Read Failure",
            FaultMode::WriteError => "Write Failure",
            FaultMode::Corruption => "Corruption",
            FaultMode::TransientRead => "Transient Read Failure",
            FaultMode::ZeroCorruption => "Corruption (zeroed)",
        }
    }
}

/// Options restricting a campaign (tests use subsets; the figure binaries
/// run everything).
#[derive(Clone, Debug)]
pub struct CampaignOptions {
    /// Fault modes to run.
    pub modes: Vec<FaultMode>,
    /// Workload columns to run.
    pub workloads: Vec<Workload>,
    /// Row filter: only these tags (empty = all rows).
    pub rows: Vec<BlockTag>,
    /// Worker threads the cell cross product is sharded over; `0` means
    /// one per hardware thread. The matrix is bit-identical at any width,
    /// so this is purely a wall-clock knob.
    pub threads: usize,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            modes: FaultMode::ALL.to_vec(),
            workloads: Workload::COLUMNS.to_vec(),
            rows: Vec::new(),
            threads: 0,
        }
    }
}

impl CampaignOptions {
    /// The same options at an explicit worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The executor this campaign will shard cells over.
    fn pool(&self) -> WorkerPool {
        if self.threads == 0 {
            WorkerPool::auto()
        } else {
            WorkerPool::new(self.threads)
        }
    }
}

/// A Figure 2/3-style policy matrix for one file system.
pub struct PolicyMatrix {
    /// File-system name.
    pub fs_name: &'static str,
    /// Row tags (block types).
    pub rows: Vec<BlockTag>,
    /// Column workloads.
    pub cols: Vec<Workload>,
    /// Fault modes (panels).
    pub modes: Vec<FaultMode>,
    /// `cells[(mode, row, col)]`: `None` = fault never fired (gray).
    pub cells: HashMap<(usize, usize, usize), Option<PolicyCell>>,
    /// Total cells where the fault fired (the "relevant tests" count).
    pub relevant: usize,
}

impl PolicyMatrix {
    /// The cell for (mode index, row index, col index).
    pub fn cell(&self, mode: usize, row: usize, col: usize) -> Option<PolicyCell> {
        self.cells.get(&(mode, row, col)).copied().flatten()
    }
}

/// One cell's faulty-run artifacts.
struct CellRun {
    output: WorkloadOutput,
    mount_error: Option<VfsError>,
    env: FsEnv,
    obs_fired: bool,
    anchor: Option<iron_core::BlockAddr>,
    klog: Vec<iron_core::klog::LogEntry>,
    trace: Vec<iron_blockdev::IoEvent>,
}

fn run_one(
    adapter: &dyn FsUnderTest,
    golden: &MemDisk,
    w: Workload,
    fault: Option<(FaultMode, BlockTag)>,
) -> CellRun {
    let plan = FaultPlan::new();
    let ctl = plan.controller();
    let fault_id = fault.map(|(mode, tag)| ctl.inject(mode.spec(tag)));
    // Special workloads need the fault live during mount; plain workloads
    // arm it afterwards so mount-time accesses (superblock, journal
    // superblock, checksum table) don't eat the fault meant for the
    // workload. One stable FaultId is disarmed across mount and re-armed
    // for the workload proper — disarmed faults see no accesses, so
    // `TagNth` counting starts at the re-arm, and `fired`/`anchor` are
    // read from the same entry no matter which path the run took.
    let special = w.is_special();
    if let Some(id) = fault_id {
        if !special {
            ctl.disarm(id);
        }
    }

    // The Figure 1 stack: snapshot, fault layer, write-through cache.
    let dev = StackBuilder::new(golden.snapshot())
        .with_faults(plan)
        .write_through()
        .build();
    let trace = dev.inner().trace();
    let env = FsEnv::new();
    let mut cell = CellRun {
        output: WorkloadOutput::default(),
        mount_error: None,
        env: env.clone(),
        obs_fired: false,
        anchor: None,
        klog: Vec::new(),
        trace: Vec::new(),
    };

    match adapter.mount(dev, env) {
        Ok(fs) => {
            let mut v = Vfs::new(fs);
            cell.output.steps.push("mount:ok".into());
            if let Some(id) = fault_id {
                if !special {
                    ctl.arm(id);
                }
            }
            let out = run(w, &mut v, Some(&trace));
            cell.output.steps.extend(out.steps);
            cell.output.step_trace_marks = out.step_trace_marks;
        }
        Err(e) => {
            cell.output.steps.push(match &e {
                VfsError::Errno(errno) => format!("mount:err:{errno:?}"),
                VfsError::KernelPanic(_) => "mount:PANIC".into(),
            });
            cell.mount_error = Some(e);
        }
    }

    if let Some(id) = fault_id {
        cell.obs_fired = ctl.fired(id);
        cell.anchor = ctl.anchor(id);
    }
    cell.klog = cell.env.klog.entries();
    cell.trace = trace.events();
    cell
}

/// One entry of the campaign's flattened cell cross product.
type CellKey = (usize, usize, usize);

/// Fingerprint one file system: run the campaign and build its matrix.
///
/// The (mode × row × workload) cell list is sharded over
/// [`CampaignOptions::threads`] workers; each cell is a self-contained
/// snapshot–mount–run, and finished cells merge into the matrix by their
/// `(mode, row, col)` key, so the result does not depend on scheduling —
/// any thread count yields the bit-identical [`PolicyMatrix`].
pub fn fingerprint_fs(adapter: &dyn FsUnderTest, opts: &CampaignOptions) -> PolicyMatrix {
    let all_rows = adapter.rows();
    let rows: Vec<BlockTag> = if opts.rows.is_empty() {
        all_rows
    } else {
        all_rows
            .into_iter()
            .filter(|t| opts.rows.contains(t))
            .collect()
    };
    let cols = opts.workloads.clone();
    let modes = opts.modes.clone();
    let pool = opts.pool();

    // Golden images: one clean, one with a dirty journal. Workers snapshot
    // them read-only, so one pair serves every cell.
    let golden_clean = adapter.golden(false);
    let golden_dirty = adapter.golden(true);
    let golden_for = |w: Workload| {
        if w == Workload::Recovery {
            &golden_dirty
        } else {
            &golden_clean
        }
    };

    // Reference runs (fault-free), one per workload — independent of each
    // other, so they run as pipelined jobs on the same pool.
    let ref_jobs: Vec<Job<'_, (Workload, WorkloadOutput)>> = cols
        .iter()
        .map(|&w| {
            let golden_clean = &golden_clean;
            let golden_dirty = &golden_dirty;
            Box::new(move || {
                let golden = if w == Workload::Recovery {
                    golden_dirty
                } else {
                    golden_clean
                };
                (w, run_one(adapter, golden, w, None).output)
            }) as Job<'_, _>
        })
        .collect();
    let references: HashMap<Workload, WorkloadOutput> =
        pool.run_jobs(ref_jobs).into_iter().collect();

    // The flattened cross product, in deterministic (mode, row, col) order.
    let mut cells_todo: Vec<(CellKey, FaultMode, BlockTag, Workload)> = Vec::new();
    for (mi, &mode) in modes.iter().enumerate() {
        for (ri, &tag) in rows.iter().enumerate() {
            for (ci, &w) in cols.iter().enumerate() {
                cells_todo.push(((mi, ri, ci), mode, tag, w));
            }
        }
    }

    // Shard the cells: each worker folds finished cells into a private
    // vector; the barrier merge appends them. Keys are unique, so the
    // final keyed insertion is order-independent.
    let done: Vec<(CellKey, Option<PolicyCell>)> = pool.shard(
        &cells_todo,
        |acc: &mut Vec<(CellKey, Option<PolicyCell>)>, &(key, mode, tag, w)| {
            let r = run_one(adapter, golden_for(w), w, Some((mode, tag)));
            let obs = Observation {
                mode,
                fired: r.obs_fired,
                anchor: r.anchor,
                reference: references[&w].clone(),
                faulty: r.output,
                mount_error: r.mount_error,
                final_state: r.env.state(),
                klog: r.klog,
                trace: r.trace,
            };
            acc.push((key, infer(&obs)));
        },
        |out, shard| out.extend(shard),
    );

    let mut matrix = PolicyMatrix {
        fs_name: adapter.name(),
        rows,
        cols,
        modes,
        cells: HashMap::new(),
        relevant: 0,
    };
    for (key, cell) in done {
        if cell.is_some() {
            matrix.relevant += 1;
        }
        matrix.cells.insert(key, cell);
    }
    matrix
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapters::Ext3Adapter;
    use iron_core::{DetectionLevel, RecoveryLevel};

    /// A focused mini-campaign: ext3, inode+data rows, a few columns.
    #[test]
    fn mini_campaign_reproduces_known_ext3_cells() {
        let opts = CampaignOptions {
            modes: vec![FaultMode::ReadError, FaultMode::WriteError],
            workloads: vec![Workload::Read, Workload::Write, Workload::AccessFamily],
            rows: vec![BlockTag("inode"), BlockTag("data")],
            ..CampaignOptions::default()
        };
        let m = fingerprint_fs(&Ext3Adapter::stock(), &opts);
        assert_eq!(m.rows.len(), 2);

        // data × read × ReadError: DErrorCode, RPropagate + RRetry.
        let data_row = m.rows.iter().position(|t| t.0 == "data").unwrap();
        let read_col = m.cols.iter().position(|w| *w == Workload::Read).unwrap();
        let cell = m.cell(0, data_row, read_col).expect("fault fires");
        assert!(cell.detection.contains(DetectionLevel::DErrorCode));
        assert!(cell.recovery.contains(RecoveryLevel::RPropagate));
        assert!(cell.recovery.contains(RecoveryLevel::RRetry));

        // inode × read-workload × ReadError: DErrorCode, RPropagate+RStop.
        let inode_row = m.rows.iter().position(|t| t.0 == "inode").unwrap();
        let cell = m.cell(0, inode_row, read_col).expect("fault fires");
        assert!(cell.detection.contains(DetectionLevel::DErrorCode));
        assert!(cell.recovery.contains(RecoveryLevel::RStop));

        // data × write-workload × WriteError: the paper's headline ext3
        // bug — DZero/RZero.
        let write_col = m.cols.iter().position(|w| *w == Workload::Write).unwrap();
        let cell = m.cell(1, data_row, write_col).expect("fault fires");
        assert!(cell.detection.contains(DetectionLevel::DZero));
        assert!(cell.recovery.contains(RecoveryLevel::RZero));
    }

    #[test]
    fn gray_cells_for_inapplicable_combinations() {
        // A journal-commit write fault cannot fire during a pure read
        // workload (nothing commits).
        let opts = CampaignOptions {
            modes: vec![FaultMode::WriteError],
            workloads: vec![Workload::Read],
            rows: vec![BlockTag("j-commit")],
            ..CampaignOptions::default()
        };
        let m = fingerprint_fs(&Ext3Adapter::stock(), &opts);
        assert_eq!(m.cell(0, 0, 0), None, "cell must be gray");
        assert_eq!(m.relevant, 0);
    }

    #[test]
    fn log_writes_column_reaches_journal_types() {
        let opts = CampaignOptions {
            modes: vec![FaultMode::WriteError],
            workloads: vec![Workload::LogWrites],
            rows: vec![BlockTag("j-desc"), BlockTag("j-commit"), BlockTag("j-data")],
            ..CampaignOptions::default()
        };
        let m = fingerprint_fs(&Ext3Adapter::stock(), &opts);
        for ri in 0..3 {
            let cell = m.cell(0, ri, 0);
            assert!(cell.is_some(), "row {} should fire", m.rows[ri]);
            // Stock ext3 ignores journal write errors (logged but
            // committed anyway) — detection happens (a warning is logged)
            // but no stop occurs.
            let cell = cell.unwrap();
            assert!(
                !cell.recovery.contains(RecoveryLevel::RStop),
                "stock ext3 must not stop on journal write failure (PAPER-BUG)"
            );
        }
    }

    /// Regression test for the fault re-arm fix: a fault that fires
    /// *during a failed mount* must still report `fired`/`anchor`. The old
    /// code cleared the plan and re-injected under a hardcoded
    /// `FaultId(0)`, which read the wrong entry on the mount-error path;
    /// `run_one` now keeps one stable id across disarm/arm.
    #[test]
    fn fault_during_failed_mount_records_fired_and_anchor() {
        let adapter = Ext3Adapter::stock();
        let golden = adapter.golden(false);
        let r = run_one(
            &adapter,
            &golden,
            Workload::Mount,
            Some((FaultMode::ReadError, BlockTag("super"))),
        );
        assert!(
            r.mount_error.is_some(),
            "a superblock read error must fail the mount"
        );
        assert!(r.obs_fired, "the fault fired even though mount failed");
        assert!(r.anchor.is_some(), "anchor recorded from the stable id");

        // And the matrix records the cell as relevant, not gray.
        let opts = CampaignOptions {
            modes: vec![FaultMode::ReadError],
            workloads: vec![Workload::Mount],
            rows: vec![BlockTag("super")],
            ..CampaignOptions::default()
        };
        let m = fingerprint_fs(&adapter, &opts);
        assert!(m.cell(0, 0, 0).is_some(), "failed-mount cell must fire");
        assert_eq!(m.relevant, 1);
    }

    /// The supplementary §6.2 modes (transient read, zeroed corruption)
    /// must be as deterministic as the Figure 2 panels: two runs of the
    /// same campaign produce identical matrices.
    #[test]
    fn supplementary_modes_are_deterministic() {
        let opts = CampaignOptions {
            modes: vec![FaultMode::TransientRead, FaultMode::ZeroCorruption],
            workloads: vec![Workload::Read, Workload::Write],
            rows: vec![BlockTag("inode"), BlockTag("data")],
            ..CampaignOptions::default()
        };
        let a = fingerprint_fs(&Ext3Adapter::stock(), &opts);
        let b = fingerprint_fs(&Ext3Adapter::stock(), &opts);
        assert_eq!(a.cells, b.cells, "repeat runs must be bit-identical");
        assert_eq!(a.relevant, b.relevant);
        assert!(a.relevant > 0, "the supplementary modes must fire");
    }

    #[test]
    fn recovery_column_exercises_journal_reads() {
        let opts = CampaignOptions {
            modes: vec![FaultMode::ReadError],
            workloads: vec![Workload::Recovery],
            rows: vec![BlockTag("j-data")],
            ..CampaignOptions::default()
        };
        let m = fingerprint_fs(&Ext3Adapter::stock(), &opts);
        let cell = m.cell(0, 0, 0).expect("replay reads journal data");
        assert!(cell.detection.contains(DetectionLevel::DErrorCode));
        assert!(cell.recovery.contains(RecoveryLevel::RStop));
    }
}

//! Per-file-system adapters for the fingerprinting campaign.
//!
//! The paper notes the one cost of type-aware injection: "the fault
//! injector must be tailored to each file system tested and requires a
//! solid understanding of its on-disk structures" (§4.2). These adapters
//! are those tailorings: each knows how to format and populate a golden
//! image, which block-type rows the file system has, and how to mount it
//! over a fault-armed device.

use iron_blockdev::{BufferCache, CrashRecorder, MemDisk, RawAccess, RetryLayer};
use iron_core::BlockTag;
use iron_faultinject::FaultyDisk;
use iron_vfs::{FsEnv, SpecificFs, Vfs, VfsError, VfsResult};

use iron_ext3::{Ext3Fs, Ext3Options, Ext3Params, IronConfig};
use iron_jfs::{JfsBlockType, JfsFs, JfsOptions, JfsParams};
use iron_ntfs::{NtfsBlockType, NtfsFs, NtfsOptions, NtfsParams};
use iron_reiser::{ReiserBlockType, ReiserFs, ReiserOptions, ReiserParams};

use crate::workloads::build_fixture;

/// The device stack every campaign instance mounts over: a golden-image
/// snapshot, the fault-injection layer, and the buffer cache in
/// [`iron_blockdev::CachePolicy::WriteThrough`] mode — transparent, so
/// type-aware fault targeting and the recorded traces stay byte-exact
/// while the mounted stack matches Figure 1 layer for layer.
pub type CampaignDevice = BufferCache<FaultyDisk<MemDisk>>;

/// The policy-equipped campaign stack used by the fault-transience axis:
/// the fault layer is clock-attached (so `Slow`/`Hang` faults charge
/// simulated service time) and a [`RetryLayer`] sits between it and the
/// cache, enacting device-level retry/deadline policy exactly where the
/// SCSI mid-layer would.
pub type RetryDevice = BufferCache<RetryLayer<FaultyDisk<MemDisk>>>;

/// The device stack crash-state enumeration records through: the file
/// system writes directly onto the medium with every write, barrier, and
/// flush captured by the recorder — in-epoch reordering then models the
/// drive's volatile write cache.
pub type CrashDevice = CrashRecorder<MemDisk>;

/// A file system packaged for fingerprinting.
///
/// Adapters are shared by reference across the campaign's worker threads
/// (every cell builds its own device stack and mounted instance from the
/// adapter), so implementations must be [`Sync`]; the stock adapters are
/// all stateless or hold immutable configuration.
pub trait FsUnderTest: Sync {
    /// Display name ("ext3", "ReiserFS", "JFS", "NTFS", "ixt3").
    fn name(&self) -> &'static str;

    /// The block-type rows of this file system's policy matrix.
    fn rows(&self) -> Vec<BlockTag>;

    /// Build a golden image: format, populate the fixture, unmount
    /// cleanly. With `dirty_journal`, additionally leave a committed but
    /// un-checkpointed transaction in the log (for the *FS recovery*
    /// column).
    fn golden(&self, dirty_journal: bool) -> MemDisk;

    /// Mount over a (possibly fault-armed) device.
    fn mount(&self, dev: CampaignDevice, env: FsEnv) -> VfsResult<Box<dyn SpecificFs>>;

    /// Mount over a crash-recording device (the `iron-crash` stack).
    fn mount_crash(&self, dev: CrashDevice, env: FsEnv) -> VfsResult<Box<dyn SpecificFs>>;

    /// Mount over the policy-equipped retry stack (the fault-transience
    /// axis of the campaign).
    fn mount_retry(&self, dev: RetryDevice, env: FsEnv) -> VfsResult<Box<dyn SpecificFs>>;

    /// Offline structural check of an unmounted medium, for file systems
    /// that have an fsck: `None` when no checker exists, otherwise the
    /// (possibly empty) rendered issue list.
    fn fsck_issues(&self, dev: &MemDisk) -> Option<Vec<String>> {
        let _ = dev;
        None
    }
}

/// One mounted-or-failed campaign instance.
pub struct Instance {
    /// The mounted file system (absent if mount failed).
    pub vfs: Option<Vfs<Box<dyn SpecificFs>>>,
    /// The mount error, if mounting failed.
    pub mount_error: Option<VfsError>,
    /// The shared environment (kernel log + mount state).
    pub env: FsEnv,
}

// ======================================================================
// ext3 / ixt3
// ======================================================================

/// Adapter for ext3 — and, with [`IronConfig::full`], for ixt3 (Figure 3).
pub struct Ext3Adapter {
    /// The IRON configuration to mount with.
    pub iron: IronConfig,
    /// Re-introduce the seed journaling bugs fixed in PR 1 (see
    /// [`Ext3Options::legacy_journal_bugs`]). Test-only: lets the
    /// crash-state enumerator regression-prove it would have caught them.
    pub legacy_journal_bugs: bool,
    /// Mount with the pipelined commit profile: group commit plus lagged
    /// checkpointing, with a commit threshold low enough that the modest
    /// crash workloads close several transactions between syncs — so the
    /// batched descriptor/commit path is what the enumerator actually
    /// exercises.
    pub pipelined: bool,
    /// Deliberately break group-commit ordering: journal data blocks are
    /// written *after* the batch's commit block, inside the same barrier
    /// epoch (see [`Ext3Options::legacy_group_commit_bug`]). Test-only,
    /// like `legacy_journal_bugs`: proves the enumerator catches a batch
    /// whose commit block can land before all descriptors' data.
    pub legacy_group_commit_bug: bool,
}

impl Ext3Adapter {
    /// Stock ext3.
    pub fn stock() -> Self {
        Ext3Adapter {
            iron: IronConfig::off(),
            legacy_journal_bugs: false,
            pipelined: false,
            legacy_group_commit_bug: false,
        }
    }

    /// Full ixt3.
    pub fn ixt3() -> Self {
        Ext3Adapter {
            iron: IronConfig::full(),
            ..Ext3Adapter::stock()
        }
    }

    /// Same configuration with the PR-1 seed journaling bugs re-enabled.
    pub fn with_legacy_journal_bugs(mut self) -> Self {
        self.legacy_journal_bugs = true;
        self
    }

    /// Same configuration mounted with the pipelined commit profile.
    pub fn pipelined(mut self) -> Self {
        self.pipelined = true;
        self
    }

    /// Same configuration with group-commit ordering deliberately broken
    /// (implies the pipelined profile — an unbatched mount never takes
    /// the bugged path).
    pub fn with_legacy_group_commit_bug(mut self) -> Self {
        self.pipelined = true;
        self.legacy_group_commit_bug = true;
        self
    }

    fn params(&self) -> Ext3Params {
        Ext3Params {
            mirror_metadata: self.iron.meta_replication,
            ..Ext3Params::small()
        }
    }

    fn options(&self) -> Ext3Options {
        let mut opts = Ext3Options {
            legacy_journal_bugs: self.legacy_journal_bugs,
            ..Ext3Options::with_iron(self.iron)
        };
        if self.pipelined {
            opts.commit_threshold = 6;
            opts.group_commit = 4;
            opts.checkpoint_lag = 48;
        }
        opts.legacy_group_commit_bug = self.legacy_group_commit_bug;
        opts
    }
}

impl FsUnderTest for Ext3Adapter {
    fn name(&self) -> &'static str {
        let iron_on = self.iron.any_iron() || self.iron.fix_bugs;
        if self.legacy_group_commit_bug {
            return if iron_on {
                "ixt3-groupbug"
            } else {
                "ext3-groupbug"
            };
        }
        if self.pipelined {
            return if iron_on {
                "ixt3-pipelined"
            } else {
                "ext3-pipelined"
            };
        }
        match (iron_on, self.legacy_journal_bugs) {
            (true, false) => "ixt3",
            (true, true) => "ixt3-legacy",
            (false, false) => "ext3",
            (false, true) => "ext3-legacy",
        }
    }

    fn rows(&self) -> Vec<BlockTag> {
        iron_ext3::BlockType::FIGURE2_ROWS
            .iter()
            .map(|t| t.tag())
            .collect()
    }

    fn golden(&self, dirty_journal: bool) -> MemDisk {
        let mut dev = MemDisk::for_tests(4096);
        Ext3Fs::<MemDisk>::mkfs(&mut dev, self.params()).expect("mkfs on healthy disk");
        let fs = Ext3Fs::mount(dev, FsEnv::new(), self.options()).expect("mount healthy");
        let mut v = Vfs::new(fs);
        build_fixture(&mut v).expect("fixture on healthy disk");
        if dirty_journal {
            // Remount in crash mode and leave committed-but-unflushed work.
            v.umount().expect("umount");
            let dev = v.into_fs().into_device();
            let opts = Ext3Options {
                crash_mode: true,
                ..self.options()
            };
            let fs = Ext3Fs::mount(dev, FsEnv::new(), opts).expect("crash-mode mount");
            let mut v = Vfs::new(fs);
            v.mkdir("/recovered_dir", 0o755).expect("op");
            v.write_file("/recovered_file", b"via journal").expect("op");
            v.sync().expect("commit to journal");
            v.into_fs().into_device() // simulated crash: no unmount
        } else {
            v.umount().expect("umount");
            v.into_fs().into_device()
        }
    }

    fn mount(&self, dev: CampaignDevice, env: FsEnv) -> VfsResult<Box<dyn SpecificFs>> {
        Ok(Box::new(Ext3Fs::mount(dev, env, self.options())?))
    }

    fn mount_crash(&self, dev: CrashDevice, env: FsEnv) -> VfsResult<Box<dyn SpecificFs>> {
        Ok(Box::new(Ext3Fs::mount(dev, env, self.options())?))
    }

    fn mount_retry(&self, dev: RetryDevice, env: FsEnv) -> VfsResult<Box<dyn SpecificFs>> {
        Ok(Box::new(Ext3Fs::mount(dev, env, self.options())?))
    }

    fn fsck_issues(&self, dev: &MemDisk) -> Option<Vec<String>> {
        let sb = iron_ext3::Superblock::decode(&dev.peek(iron_core::BlockAddr(0)))?;
        let layout = iron_ext3::DiskLayout::compute(sb.params());
        let report = iron_ext3::fsck::check(dev, &layout);
        Some(report.issues.iter().map(|i| format!("{i:?}")).collect())
    }
}

// ======================================================================
// ReiserFS
// ======================================================================

/// Adapter for ReiserFS.
pub struct ReiserAdapter;

impl FsUnderTest for ReiserAdapter {
    fn name(&self) -> &'static str {
        "ReiserFS"
    }

    fn rows(&self) -> Vec<BlockTag> {
        ReiserBlockType::FIGURE2_ROWS
            .iter()
            .map(|t| t.tag())
            .collect()
    }

    fn golden(&self, dirty_journal: bool) -> MemDisk {
        let mut dev = MemDisk::for_tests(4096);
        ReiserFs::<MemDisk>::mkfs(&mut dev, ReiserParams::small()).expect("mkfs");
        let fs =
            ReiserFs::mount(dev, FsEnv::new(), ReiserOptions::default()).expect("mount healthy");
        let mut v = Vfs::new(fs);
        build_fixture(&mut v).expect("fixture");
        // Grow the tree past a single leaf so leaf/internal/root rows are
        // distinct targets.
        for i in 0..150 {
            v.write_file(
                &format!("/pad/f{i:03}"),
                &crate::workloads::pattern(200, i as u8),
            )
            .or_else(|_| -> Result<(), VfsError> {
                v.mkdir("/pad", 0o755)?;
                v.write_file(
                    &format!("/pad/f{i:03}"),
                    &crate::workloads::pattern(200, i as u8),
                )
            })
            .expect("pad files");
        }
        if dirty_journal {
            v.umount().expect("umount");
            let dev = v.into_fs().into_device();
            let opts = ReiserOptions {
                crash_mode: true,
                ..Default::default()
            };
            let fs = ReiserFs::mount(dev, FsEnv::new(), opts).expect("crash-mode mount");
            let mut v = Vfs::new(fs);
            v.mkdir("/recovered_dir", 0o755).expect("op");
            v.sync().expect("commit");
            v.into_fs().into_device()
        } else {
            v.umount().expect("umount");
            v.into_fs().into_device()
        }
    }

    fn mount(&self, dev: CampaignDevice, env: FsEnv) -> VfsResult<Box<dyn SpecificFs>> {
        Ok(Box::new(ReiserFs::mount(
            dev,
            env,
            ReiserOptions::default(),
        )?))
    }

    fn mount_crash(&self, dev: CrashDevice, env: FsEnv) -> VfsResult<Box<dyn SpecificFs>> {
        Ok(Box::new(ReiserFs::mount(
            dev,
            env,
            ReiserOptions::default(),
        )?))
    }

    fn mount_retry(&self, dev: RetryDevice, env: FsEnv) -> VfsResult<Box<dyn SpecificFs>> {
        Ok(Box::new(ReiserFs::mount(
            dev,
            env,
            ReiserOptions::default(),
        )?))
    }
}

// ======================================================================
// JFS
// ======================================================================

/// Adapter for JFS.
pub struct JfsAdapter;

impl FsUnderTest for JfsAdapter {
    fn name(&self) -> &'static str {
        "JFS"
    }

    fn rows(&self) -> Vec<BlockTag> {
        JfsBlockType::FIGURE2_ROWS.iter().map(|t| t.tag()).collect()
    }

    fn golden(&self, dirty_journal: bool) -> MemDisk {
        let mut dev = MemDisk::for_tests(4096);
        JfsFs::<MemDisk>::mkfs(&mut dev, JfsParams::small()).expect("mkfs");
        let fs = JfsFs::mount(dev, FsEnv::new(), JfsOptions::default()).expect("mount healthy");
        let mut v = Vfs::new(fs);
        build_fixture(&mut v).expect("fixture");
        if dirty_journal {
            v.umount().expect("umount");
            let dev = v.into_fs().into_device();
            let opts = JfsOptions {
                crash_mode: true,
                ..Default::default()
            };
            let fs = JfsFs::mount(dev, FsEnv::new(), opts).expect("crash-mode mount");
            let mut v = Vfs::new(fs);
            v.mkdir("/recovered_dir", 0o755).expect("op");
            v.sync().expect("commit");
            v.into_fs().into_device()
        } else {
            v.umount().expect("umount");
            v.into_fs().into_device()
        }
    }

    fn mount(&self, dev: CampaignDevice, env: FsEnv) -> VfsResult<Box<dyn SpecificFs>> {
        Ok(Box::new(JfsFs::mount(dev, env, JfsOptions::default())?))
    }

    fn mount_crash(&self, dev: CrashDevice, env: FsEnv) -> VfsResult<Box<dyn SpecificFs>> {
        Ok(Box::new(JfsFs::mount(dev, env, JfsOptions::default())?))
    }

    fn mount_retry(&self, dev: RetryDevice, env: FsEnv) -> VfsResult<Box<dyn SpecificFs>> {
        Ok(Box::new(JfsFs::mount(dev, env, JfsOptions::default())?))
    }
}

// ======================================================================
// NTFS
// ======================================================================

/// Adapter for NTFS. The paper's NTFS analysis is explicitly partial
/// ("we do not yet have a complete analysis as in Figure 2"); likewise,
/// the NTFS model has no journal recovery, so the *FS recovery* column is
/// inapplicable and renders gray.
pub struct NtfsAdapter;

impl FsUnderTest for NtfsAdapter {
    fn name(&self) -> &'static str {
        "NTFS"
    }

    fn rows(&self) -> Vec<BlockTag> {
        NtfsBlockType::TABLE4_ROWS.iter().map(|t| t.tag()).collect()
    }

    fn golden(&self, _dirty_journal: bool) -> MemDisk {
        let mut dev = MemDisk::for_tests(4096);
        NtfsFs::<MemDisk>::mkfs(&mut dev, NtfsParams::small()).expect("mkfs");
        let fs = NtfsFs::mount(dev, FsEnv::new(), NtfsOptions::default()).expect("mount healthy");
        let mut v = Vfs::new(fs);
        build_fixture(&mut v).expect("fixture");
        v.umount().expect("umount");
        v.into_fs().into_device()
    }

    fn mount(&self, dev: CampaignDevice, env: FsEnv) -> VfsResult<Box<dyn SpecificFs>> {
        Ok(Box::new(NtfsFs::mount(dev, env, NtfsOptions::default())?))
    }

    fn mount_crash(&self, dev: CrashDevice, env: FsEnv) -> VfsResult<Box<dyn SpecificFs>> {
        Ok(Box::new(NtfsFs::mount(dev, env, NtfsOptions::default())?))
    }

    fn mount_retry(&self, dev: RetryDevice, env: FsEnv) -> VfsResult<Box<dyn SpecificFs>> {
        Ok(Box::new(NtfsFs::mount(dev, env, NtfsOptions::default())?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iron_blockdev::StackBuilder;

    fn check_adapter(a: &dyn FsUnderTest) {
        // The golden image mounts cleanly and the fixture is present.
        let golden = a.golden(false);
        let dev = StackBuilder::new(golden.snapshot())
            .layer(FaultyDisk::new)
            .write_through()
            .build();
        let env = FsEnv::new();
        let fs = a.mount(dev, env).expect("golden mounts");
        let mut v = Vfs::new(fs);
        assert!(v.stat("/dir1/file_small").is_ok(), "{} fixture", a.name());
        assert!(v.stat("/file_big").unwrap().size > 100_000);
        assert!(!a.rows().is_empty());
    }

    #[test]
    fn all_adapters_produce_valid_goldens() {
        check_adapter(&Ext3Adapter::stock());
        check_adapter(&Ext3Adapter::ixt3());
        check_adapter(&ReiserAdapter);
        check_adapter(&JfsAdapter);
        check_adapter(&NtfsAdapter);
    }

    #[test]
    fn dirty_journal_goldens_recover_on_mount() {
        for a in [
            &Ext3Adapter::stock() as &dyn FsUnderTest,
            &ReiserAdapter,
            &JfsAdapter,
        ] {
            let golden = a.golden(true);
            let dev = StackBuilder::new(golden.snapshot())
                .layer(FaultyDisk::new)
                .write_through()
                .build();
            let env = FsEnv::new();
            let fs = a.mount(dev, env.clone()).expect("recovery mount");
            let mut v = Vfs::new(fs);
            assert!(
                v.stat("/recovered_dir").is_ok(),
                "{}: journaled dir survives crash",
                a.name()
            );
        }
    }
}

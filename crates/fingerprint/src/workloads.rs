//! The Table 3 workload suite.
//!
//! "The first set of programs, called singlets, each focus upon a single
//! call in the file system API (e.g., mkdir). The second set, generics,
//! stresses functionality common across the API (e.g., path traversal)."
//!
//! The suite is arranged as the columns *a–t* of Figure 2. Each workload
//! runs against a standard fixture tree (built by [`build_fixture`]) that
//! deliberately touches every block type: small and tail-sized files,
//! files large enough to need indirect/extent structures (§4.1: "our
//! workloads ensure that sufficiently large files are created to access
//! these structures"), populated directories, hard links, and symlinks.

use iron_core::checksum::sha1;
use iron_vfs::{OpenFlags, SpecificFs, Vfs, VfsError};

/// The Figure 2 workload columns.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Workload {
    /// a: path traversal (generic).
    PathTraversal,
    /// b: access, chdir, chroot, stat, statfs, lstat, open.
    AccessFamily,
    /// c: chmod, chown, utimes.
    AttrFamily,
    /// d: read.
    Read,
    /// e: readlink.
    Readlink,
    /// f: getdirentries.
    Getdirentries,
    /// g: creat.
    Creat,
    /// h: link.
    Link,
    /// i: mkdir.
    Mkdir,
    /// j: rename.
    Rename,
    /// k: symlink.
    Symlink,
    /// l: write.
    Write,
    /// m: truncate.
    Truncate,
    /// n: rmdir.
    Rmdir,
    /// o: unlink.
    Unlink,
    /// p: mount.
    Mount,
    /// q: fsync, sync.
    SyncFamily,
    /// r: umount.
    Umount,
    /// s: FS recovery (journal replay).
    Recovery,
    /// t: log write operations.
    LogWrites,
}

impl Workload {
    /// All columns in Figure 2's order a–t.
    pub const COLUMNS: [Workload; 20] = [
        Workload::PathTraversal,
        Workload::AccessFamily,
        Workload::AttrFamily,
        Workload::Read,
        Workload::Readlink,
        Workload::Getdirentries,
        Workload::Creat,
        Workload::Link,
        Workload::Mkdir,
        Workload::Rename,
        Workload::Symlink,
        Workload::Write,
        Workload::Truncate,
        Workload::Rmdir,
        Workload::Unlink,
        Workload::Mount,
        Workload::SyncFamily,
        Workload::Umount,
        Workload::Recovery,
        Workload::LogWrites,
    ];

    /// The Figure 2 column letter.
    pub fn letter(&self) -> char {
        (b'a'
            + Workload::COLUMNS
                .iter()
                .position(|w| w == self)
                .expect("in COLUMNS") as u8) as char
    }

    /// Human-readable description (the figure caption's naming).
    pub fn describe(&self) -> &'static str {
        match self {
            Workload::PathTraversal => "path traversal",
            Workload::AccessFamily => "access,chdir,chroot,stat,statfs,lstat,open",
            Workload::AttrFamily => "chmod,chown,utimes",
            Workload::Read => "read",
            Workload::Readlink => "readlink",
            Workload::Getdirentries => "getdirentries",
            Workload::Creat => "creat",
            Workload::Link => "link",
            Workload::Mkdir => "mkdir",
            Workload::Rename => "rename",
            Workload::Symlink => "symlink",
            Workload::Write => "write",
            Workload::Truncate => "truncate",
            Workload::Rmdir => "rmdir",
            Workload::Unlink => "unlink",
            Workload::Mount => "mount",
            Workload::SyncFamily => "fsync,sync",
            Workload::Umount => "umount",
            Workload::Recovery => "FS recovery",
            Workload::LogWrites => "log write operations",
        }
    }

    /// Workloads that need special campaign setup (mount-time faults or a
    /// dirty journal) rather than a plain post-mount run.
    pub fn is_special(&self) -> bool {
        matches!(self, Workload::Mount | Workload::Recovery)
    }
}

/// The observable output of one workload run: per-step outcome strings
/// (data digests for reads, errno names for failures). Two runs behaved
/// identically iff their outputs are equal — this is the comparison §4.3
/// performs across "all observable outputs from the system".
#[derive(Clone, Debug, Default)]
pub struct WorkloadOutput {
    /// One entry per step.
    pub steps: Vec<String>,
    /// I/O-trace length at the end of each step (when a trace was
    /// supplied). Inference uses these to tell an in-operation retry from
    /// the workload merely re-touching a block in a later step. Not part
    /// of output equality.
    pub step_trace_marks: Vec<usize>,
}

impl PartialEq for WorkloadOutput {
    fn eq(&self, other: &Self) -> bool {
        self.steps == other.steps
    }
}

impl Eq for WorkloadOutput {}

impl WorkloadOutput {
    fn note(&mut self, step: &str, r: Result<String, VfsError>) {
        match r {
            Ok(s) => self.steps.push(format!("{step}:ok:{s}")),
            Err(VfsError::Errno(e)) => self.steps.push(format!("{step}:err:{e:?}")),
            Err(VfsError::KernelPanic(_)) => self.steps.push(format!("{step}:PANIC")),
        }
    }

    /// True if any step failed (errno or panic).
    pub fn any_error(&self) -> bool {
        self.steps
            .iter()
            .any(|s| s.contains(":err:") || s.contains(":PANIC"))
    }

    /// True if any step failed with an errno (panics excluded — a panic is
    /// `RStop`, not an error propagated to the caller).
    pub fn any_errno(&self) -> bool {
        self.steps.iter().any(|s| s.contains(":err:"))
    }

    /// True if any step ended in a simulated kernel panic.
    pub fn any_panic(&self) -> bool {
        self.steps.iter().any(|s| s.contains(":PANIC"))
    }
}

fn digest(data: &[u8]) -> String {
    // The ":zero" marker makes fabricated blank pages observable — the
    // paper's RGuess classification rests on the *data* returned by the
    // API, and all-zero content where real content was expected is the
    // fingerprint of a manufactured response.
    let zero = if !data.is_empty() && data.iter().all(|&b| b == 0) {
        ":zero"
    } else {
        ""
    };
    format!("{}b:{}{zero}", data.len(), &sha1(data).to_hex()[..12])
}

/// Size of the "big" fixture file — large enough to force indirect /
/// extent / multi-chunk structures in every model.
pub const BIG_FILE_SIZE: usize = 120 * 1024;

/// Deterministic contents for fixture files.
pub fn pattern(len: usize, seed: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
        .collect()
}

/// Populate the standard fixture tree on a freshly formatted file system.
pub fn build_fixture<F: SpecificFs>(v: &mut Vfs<F>) -> Result<(), VfsError> {
    v.mkdir("/dir1", 0o755)?;
    v.mkdir("/dir1/sub", 0o755)?;
    for i in 0..6 {
        v.write_file(&format!("/dir1/entry{i}"), &pattern(64, i as u8))?;
    }
    v.write_file("/dir1/file_small", &pattern(4096, 1))?;
    v.write_file("/dir1/sub/deep", &pattern(100, 2))?;
    v.write_file("/file_big", &pattern(BIG_FILE_SIZE, 3))?;
    v.write_file("/file_tail", &pattern(100, 4))?;
    v.write_file("/file_todelete", &pattern(5000, 5))?;
    v.write_file("/file_totrunc", &pattern(BIG_FILE_SIZE, 6))?;
    v.write_file("/file_torename", &pattern(2000, 7))?;
    v.mkdir("/dir_todelete", 0o755)?;
    v.link("/dir1/file_small", "/hard")?;
    v.symlink("/dir1/file_small", "/sym")?;
    v.sync()?;
    Ok(())
}

/// Run one (non-special) workload, producing its observable output.
///
/// Panics from the simulated kernel are captured as output steps, and all
/// steps after a panic short-circuit (the machine is down). When `trace`
/// is supplied, the trace length is recorded at each step boundary so
/// inference can scope retry detection to a single operation.
pub fn run<F: SpecificFs>(
    w: Workload,
    v: &mut Vfs<F>,
    trace: Option<&iron_blockdev::IoTrace>,
) -> WorkloadOutput {
    let mut out = TracedOutput {
        out: WorkloadOutput::default(),
        trace,
    };
    match w {
        Workload::PathTraversal => {
            out.note("walk", v.stat("/dir1/sub/deep").map(|a| a.size.to_string()));
            out.note(
                "walk-dots",
                v.stat("/dir1/./sub/../sub/deep")
                    .map(|a| a.size.to_string()),
            );
        }
        Workload::AccessFamily => {
            out.note(
                "access",
                v.access("/dir1/file_small").map(|_| String::new()),
            );
            out.note("chdir", v.chdir("/dir1").map(|_| String::new()));
            out.note("stat", v.stat("file_small").map(|a| a.size.to_string()));
            out.note(
                "statfs",
                v.statfs()
                    .map(|s| format!("bf={} if={}", s.blocks_free > 0, s.inodes_free > 0)),
            );
            out.note("lstat", v.lstat("/sym").map(|a| format!("{:?}", a.ftype)));
            out.note(
                "open",
                v.open("/dir1/file_small", OpenFlags::rdonly())
                    .and_then(|fd| v.close(fd))
                    .map(|_| String::new()),
            );
            out.note("chroot", v.chroot("/dir1").map(|_| String::new()));
        }
        Workload::AttrFamily => {
            out.note(
                "chmod",
                v.chmod("/dir1/file_small", 0o600).map(|_| String::new()),
            );
            out.note(
                "chown",
                v.chown("/dir1/file_small", 7, 8).map(|_| String::new()),
            );
            out.note(
                "utimes",
                v.utimes("/dir1/file_small", 1234).map(|_| String::new()),
            );
        }
        Workload::Read => {
            out.note("read-big", v.read_file("/file_big").map(|d| digest(&d)));
            if !out.any_panic() {
                // The extent/indirect-mapped region alone: a file system
                // that fabricates a blank page for a failed extent lookup
                // (JFS's §5.3 bug) is exposed by this step's ":zero" digest.
                out.note(
                    "read-big-extent-region",
                    v.open("/file_big", OpenFlags::rdonly()).and_then(|fd| {
                        let r = v.pread(fd, (BIG_FILE_SIZE - 40_000) as u64, 40_000);
                        v.close(fd)?;
                        r.map(|d| digest(&d))
                    }),
                );
            }
            if !out.any_panic() {
                out.note("read-tail", v.read_file("/file_tail").map(|d| digest(&d)));
            }
        }
        Workload::Readlink => {
            out.note("readlink", v.readlink("/sym"));
        }
        Workload::Getdirentries => {
            out.note(
                "readdir",
                v.readdir("/dir1").map(|es| {
                    let mut names: Vec<String> = es.into_iter().map(|e| e.name).collect();
                    names.sort();
                    names.join(",")
                }),
            );
        }
        Workload::Creat => {
            out.note(
                "creat",
                v.creat("/newfile").and_then(|fd| {
                    v.write(fd, &pattern(2000, 9))?;
                    v.close(fd)?;
                    Ok(String::new())
                }),
            );
        }
        Workload::Link => {
            out.note(
                "link",
                v.link("/dir1/file_small", "/newhard")
                    .map(|_| String::new()),
            );
        }
        Workload::Mkdir => {
            out.note("mkdir", v.mkdir("/newdir", 0o755).map(|_| String::new()));
        }
        Workload::Rename => {
            out.note(
                "rename",
                v.rename("/file_torename", "/renamed")
                    .map(|_| String::new()),
            );
        }
        Workload::Symlink => {
            out.note(
                "symlink",
                v.symlink("/file_big", "/newsym").map(|_| String::new()),
            );
        }
        Workload::Write => {
            out.note(
                "write-small",
                v.open("/dir1/file_small", OpenFlags::rdwr())
                    .and_then(|fd| {
                        v.pwrite(fd, 100, &pattern(1000, 10))?;
                        v.close(fd)?;
                        Ok(String::new())
                    }),
            );
            if !out.any_panic() {
                out.note(
                    "write-big",
                    v.open("/file_big", OpenFlags::rdwr()).and_then(|fd| {
                        // Overwrite deep into the indirect region.
                        v.pwrite(fd, (BIG_FILE_SIZE - 9000) as u64, &pattern(8000, 11))?;
                        v.close(fd)?;
                        Ok(String::new())
                    }),
                );
            }
        }
        Workload::Truncate => {
            out.note(
                "trunc-mid",
                v.truncate("/file_totrunc", 10_000).map(|_| String::new()),
            );
            if !out.any_panic() {
                out.note(
                    "trunc-zero",
                    v.truncate("/file_totrunc", 0).map(|_| String::new()),
                );
            }
        }
        Workload::Rmdir => {
            out.note("rmdir", v.rmdir("/dir_todelete").map(|_| String::new()));
        }
        Workload::Unlink => {
            out.note("unlink", v.unlink("/file_todelete").map(|_| String::new()));
        }
        Workload::Mount => {
            // Handled by the campaign (the mount already happened, under
            // fault); a successful mount is probed with one stat.
            out.note("post-mount-stat", v.stat("/dir1").map(|_| String::new()));
        }
        Workload::SyncFamily => {
            out.note(
                "dirty+fsync",
                v.open("/dir1/file_small", OpenFlags::rdwr())
                    .and_then(|fd| {
                        v.pwrite(fd, 0, b"fsync me")?;
                        v.fsync(fd)?;
                        v.close(fd)?;
                        Ok(String::new())
                    }),
            );
            if !out.any_panic() {
                out.note("sync", v.sync().map(|_| String::new()));
            }
        }
        Workload::Umount => {
            out.note("umount", v.umount().map(|_| String::new()));
        }
        Workload::Recovery => {
            // The replay happened at mount; probe that recovered state is
            // usable.
            out.note("post-recovery-stat", v.stat("/dir1").map(|_| String::new()));
            if !out.any_panic() {
                out.note(
                    "post-recovery-read",
                    v.read_file("/file_tail").map(|d| digest(&d)),
                );
            }
        }
        Workload::LogWrites => {
            out.note(
                "metadata-op",
                v.mkdir("/logged_dir", 0o755).map(|_| String::new()),
            );
            if !out.any_panic() {
                out.note("force-commit", v.sync().map(|_| String::new()));
            }
        }
    }
    out.out
}

/// Wrapper recording a trace mark after every step.
struct TracedOutput<'a> {
    out: WorkloadOutput,
    trace: Option<&'a iron_blockdev::IoTrace>,
}

impl TracedOutput<'_> {
    fn note(&mut self, step: &str, r: Result<String, VfsError>) {
        self.out.note(step, r);
        if let Some(t) = self.trace {
            self.out.step_trace_marks.push(t.len());
        }
    }

    fn any_panic(&self) -> bool {
        self.out.any_panic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iron_vfs::ramfs::RamFs;

    #[test]
    fn columns_are_a_through_t() {
        assert_eq!(Workload::COLUMNS.len(), 20);
        assert_eq!(Workload::PathTraversal.letter(), 'a');
        assert_eq!(Workload::Read.letter(), 'd');
        assert_eq!(Workload::Mount.letter(), 'p');
        assert_eq!(Workload::LogWrites.letter(), 't');
    }

    #[test]
    fn fixture_and_all_workloads_run_clean_on_reference_fs() {
        for w in Workload::COLUMNS {
            let mut v = Vfs::new(RamFs::new());
            build_fixture(&mut v).unwrap();
            let out = run(w, &mut v, None);
            assert!(
                !out.any_error(),
                "workload {w:?} errored on healthy RamFs: {:?}",
                out.steps
            );
        }
    }

    #[test]
    fn outputs_are_deterministic() {
        let mk = || {
            let mut v = Vfs::new(RamFs::new());
            build_fixture(&mut v).unwrap();
            run(Workload::Read, &mut v, None)
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn output_error_detection() {
        let mut out = WorkloadOutput::default();
        out.note("x", Ok("fine".into()));
        assert!(!out.any_error());
        out.note("y", Err(iron_core::Errno::EIO.into()));
        assert!(out.any_error());
        assert!(!out.any_panic());
        out.note("z", Err(VfsError::KernelPanic("boom".into())));
        assert!(out.any_panic());
    }
}

//! Text rendering of policy matrices (Figure 2 / Figure 3) in the paper's
//! visual language: one panel per fault mode, detection and recovery
//! sub-tables, workload columns a–t, block-type rows, superimposed glyphs.

use crate::campaign::PolicyMatrix;

/// Width of one rendered cell.
const CELL: usize = 3;

/// Render the full figure for a matrix: for each fault mode, a Detection
/// and a Recovery panel.
pub fn render_matrix(m: &PolicyMatrix) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Failure policy of {} — columns: {}\n",
        m.fs_name,
        m.cols
            .iter()
            .map(|w| format!("{}:{}", w.letter(), w.describe()))
            .collect::<Vec<_>>()
            .join("  ")
    ));
    out.push_str(
        "Key  detection: '-'=DErrorCode '|'=DSanity '\\'=DRedundancy blank=DZero '·'=not applicable\n",
    );
    out.push_str(
        "Key  recovery : '-'=RPropagate '|'=RStop '/'=RRetry '\\'=RRedundancy 'g'=RGuess blank=RZero\n\n",
    );
    let row_w = m.rows.iter().map(|t| t.0.len()).max().unwrap_or(8).max(8);

    for (mi, mode) in m.modes.iter().enumerate() {
        for (panel, is_detection) in [("Detection", true), ("Recovery", false)] {
            out.push_str(&format!("== {} / {} ==\n", mode.title(), panel));
            // Header row of column letters.
            out.push_str(&" ".repeat(row_w + 1));
            for w in &m.cols {
                out.push_str(&format!("{:<CELL$}", w.letter()));
            }
            out.push('\n');
            for (ri, tag) in m.rows.iter().enumerate() {
                out.push_str(&format!("{:<row_w$} ", tag.0));
                for ci in 0..m.cols.len() {
                    let text = match m.cells.get(&(mi, ri, ci)) {
                        Some(Some(cell)) => {
                            let g = if is_detection {
                                cell.detection_glyphs()
                            } else {
                                cell.recovery_glyphs()
                            };
                            if g == "." {
                                " ".to_string() // Zero level: blank, as in the paper
                            } else {
                                g
                            }
                        }
                        _ => "·".to_string(), // gray: not applicable
                    };
                    out.push_str(&format!("{text:<CELL$}"));
                }
                out.push('\n');
            }
            out.push('\n');
        }
    }
    out.push_str(&format!(
        "{} relevant (fault-fired) scenarios out of {} cells\n",
        m.relevant,
        m.modes.len() * m.rows.len() * m.cols.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapters::{Ext3Adapter, FsUnderTest};
    use crate::campaign::{fingerprint_fs, CampaignOptions, FaultMode};
    use crate::workloads::Workload;
    use iron_core::BlockTag;

    #[test]
    fn render_contains_rows_columns_and_keys() {
        let opts = CampaignOptions {
            modes: vec![FaultMode::ReadError],
            workloads: vec![Workload::Read, Workload::Getdirentries],
            rows: vec![BlockTag("data"), BlockTag("dir")],
            ..CampaignOptions::default()
        };
        let adapter = Ext3Adapter::stock();
        let m = fingerprint_fs(&adapter, &opts);
        let text = render_matrix(&m);
        assert!(text.contains("ext3"));
        assert!(text.contains("Read Failure"));
        assert!(text.contains("Detection"));
        assert!(text.contains("Recovery"));
        assert!(text.contains("data"));
        assert!(text.contains("dir"));
        assert!(text.contains("relevant"));
        let _ = adapter.rows();
    }
}

//! Table 5: the IRON-techniques summary.
//!
//! "The table depicts a summary of the IRON techniques used by the file
//! systems under test. More check marks indicate a higher relative
//! frequency of usage of the given technique." We aggregate each file
//! system's matrix: for every level, the fraction of relevant cells that
//! exhibit it, bucketed into 0–4 check marks.

use iron_core::{DetectionLevel, RecoveryLevel};

use crate::campaign::PolicyMatrix;

/// Per-level usage for one file system.
#[derive(Clone, Debug)]
pub struct TechniqueSummary {
    /// File-system name.
    pub fs_name: &'static str,
    /// Relevant (fault-fired) cell count.
    pub relevant: usize,
    /// Count of cells exhibiting each detection level.
    pub detection_counts: Vec<(DetectionLevel, usize)>,
    /// Count of cells exhibiting each recovery level.
    pub recovery_counts: Vec<(RecoveryLevel, usize)>,
}

/// Aggregate a matrix into its Table 5 column.
pub fn summarize(m: &PolicyMatrix) -> TechniqueSummary {
    let mut det = vec![0usize; DetectionLevel::ALL.len()];
    let mut rec = vec![0usize; RecoveryLevel::ALL.len()];
    for cell in m.cells.values().flatten() {
        for (i, l) in DetectionLevel::ALL.iter().enumerate() {
            if cell.detection.contains(*l) {
                det[i] += 1;
            }
        }
        for (i, l) in RecoveryLevel::ALL.iter().enumerate() {
            if cell.recovery.contains(*l) {
                rec[i] += 1;
            }
        }
    }
    TechniqueSummary {
        fs_name: m.fs_name,
        relevant: m.relevant,
        detection_counts: DetectionLevel::ALL.iter().copied().zip(det).collect(),
        recovery_counts: RecoveryLevel::ALL.iter().copied().zip(rec).collect(),
    }
}

/// Bucket a usage fraction into the paper's check-mark notation.
pub fn checkmarks(count: usize, relevant: usize) -> &'static str {
    if count == 0 || relevant == 0 {
        return "";
    }
    let frac = count as f64 / relevant as f64;
    if frac < 0.05 {
        "√"
    } else if frac < 0.20 {
        "√√"
    } else if frac < 0.45 {
        "√√√"
    } else {
        "√√√√"
    }
}

/// Render Table 5 from several file systems' summaries.
pub fn render_table5(summaries: &[TechniqueSummary]) -> String {
    let mut out = String::from(
        "Table 5: IRON Techniques Summary (more check marks = higher relative frequency)\n",
    );
    out.push_str(&format!("{:<14}", "Level"));
    for s in summaries {
        out.push_str(&format!("{:<10}", s.fs_name));
    }
    out.push('\n');
    for (i, level) in DetectionLevel::ALL.iter().enumerate() {
        out.push_str(&format!("{:<14}", level.to_string()));
        for s in summaries {
            let (_, count) = s.detection_counts[i];
            out.push_str(&format!("{:<10}", checkmarks(count, s.relevant)));
        }
        out.push('\n');
    }
    for (i, level) in RecoveryLevel::ALL.iter().enumerate() {
        out.push_str(&format!("{:<14}", level.to_string()));
        for s in summaries {
            let (_, count) = s.recovery_counts[i];
            out.push_str(&format!("{:<10}", checkmarks(count, s.relevant)));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkmark_buckets() {
        assert_eq!(checkmarks(0, 100), "");
        assert_eq!(checkmarks(1, 100), "√");
        assert_eq!(checkmarks(10, 100), "√√");
        assert_eq!(checkmarks(30, 100), "√√√");
        assert_eq!(checkmarks(60, 100), "√√√√");
        assert_eq!(checkmarks(5, 0), "");
    }
}

//! The fault-**transience** axis of the campaign: sticky vs transient vs
//! slow faults, driven through the policy-equipped device stack.
//!
//! The Figure 2 campaign asks *which block types* a file system protects;
//! this axis asks *how persistent a fault must be* before the protection
//! gives out. Each cell injects a read-path fault of a chosen transience
//! (sticky, transient-*n*, or a latency fault that only a deadline check
//! can see) beneath a [`iron_blockdev::RetryLayer`] enacting the failure
//! policy, then compares the run against a fault-free reference:
//!
//! * a **transient** fault of budget-reachable depth must be fully masked
//!   at the device level — the file system never sees it;
//! * a **sticky** fault exhausts the budget and propagates;
//! * a **slow** fault ("fail-stutter") trips the I/O deadline and
//!   surfaces as [`iron_blockdev::DiskError::Timeout`], a distinct error
//!   class the policy table can route differently.
//!
//! Cells are sharded over [`iron_core::exec::WorkerPool`] with a keyed
//! merge, so — like the main campaign — the matrix is **bit-identical**
//! at any thread count.

use std::collections::HashMap;
use std::fmt;

use iron_blockdev::{MemDisk, RetryConfig, RetryStatsSnapshot, StackBuilder};
use iron_core::exec::{Job, WorkerPool};
use iron_core::recover::{
    Backoff, FailurePolicyTable, PolicyCounterSnapshot, PolicyHandle, RecoveryAction,
};
use iron_core::{BlockTag, FaultKind};
use iron_faultinject::{FaultPlan, FaultSpec, FaultStackExt, FaultTarget};
use iron_vfs::{FsEnv, MountState, Vfs, VfsError};

use crate::adapters::FsUnderTest;
use crate::workloads::{run, Workload, WorkloadOutput};

/// Service-time multiplier for the slow axis: with the nominal latency
/// charge of [`iron_faultinject::SLOW_NOMINAL_NS`] (100 µs), a ×64 fault
/// charges 6.3 ms — far past the default 1 ms deadline, so every access
/// surfaces as a timeout rather than completing quietly late.
pub const SLOW_MULTIPLIER: u32 = 64;

/// How persistent the injected fault is.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FaultTransience {
    /// The fault fires on every access, forever.
    Sticky,
    /// The fault clears after `n` failures (disk recovered, path rerouted).
    Transient(u32),
    /// The access *succeeds*, but takes [`SLOW_MULTIPLIER`]× the nominal
    /// service time — only an I/O deadline turns this into an error.
    Slow,
}

impl FaultTransience {
    /// The default axis: sticky, budget-reachable transient, and slow.
    pub const ALL: [FaultTransience; 3] = [
        FaultTransience::Sticky,
        FaultTransience::Transient(2),
        FaultTransience::Slow,
    ];

    /// The read-path fault specification aimed at `tag`, anchored on the
    /// first matching access (as in the Figure 2 campaign).
    pub fn spec(&self, tag: BlockTag) -> FaultSpec {
        let target = FaultTarget::TagNth { tag, nth: 0 };
        match *self {
            FaultTransience::Sticky => FaultSpec::sticky(FaultKind::ReadError, target),
            FaultTransience::Transient(n) => FaultSpec::transient(FaultKind::ReadError, target, n),
            FaultTransience::Slow => FaultSpec::sticky(
                FaultKind::Slow {
                    multiplier: SLOW_MULTIPLIER,
                },
                target,
            ),
        }
    }
}

impl fmt::Display for FaultTransience {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultTransience::Sticky => write!(f, "sticky"),
            FaultTransience::Transient(n) => write!(f, "transient-{n}"),
            FaultTransience::Slow => write!(f, "slow"),
        }
    }
}

/// Options for a transience campaign.
#[derive(Clone, Debug)]
pub struct TransienceOptions {
    /// Workload columns to run.
    pub workloads: Vec<Workload>,
    /// Row filter: only these tags (empty = all rows).
    pub rows: Vec<BlockTag>,
    /// Transience panels to run.
    pub transiences: Vec<FaultTransience>,
    /// Retry budget of the device-level policy (total attempts per
    /// request ≤ 1 + budget).
    pub retry_budget: u32,
    /// Per-request I/O deadline in sim ns.
    pub deadline_ns: u64,
    /// Worker threads; `0` means one per hardware thread. The matrix is
    /// bit-identical at any width.
    pub threads: usize,
}

impl Default for TransienceOptions {
    fn default() -> Self {
        TransienceOptions {
            workloads: Workload::COLUMNS.to_vec(),
            rows: Vec::new(),
            transiences: FaultTransience::ALL.to_vec(),
            retry_budget: 3,
            deadline_ns: 1_000_000,
            threads: 0,
        }
    }
}

impl TransienceOptions {
    /// The same options at an explicit worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    fn pool(&self) -> WorkerPool {
        if self.threads == 0 {
            WorkerPool::auto()
        } else {
            WorkerPool::new(self.threads)
        }
    }

    /// The device-level policy every cell's [`iron_blockdev::RetryLayer`]
    /// enacts: bounded retry with deterministic exponential backoff, then
    /// propagation to the file system.
    pub fn device_policy(&self) -> PolicyHandle {
        PolicyHandle::new(FailurePolicyTable::with_default(vec![
            RecoveryAction::Retry {
                budget: self.retry_budget,
                backoff: Backoff::exponential(1_000, 2, 1_000_000),
            },
            RecoveryAction::Propagate,
        ]))
    }
}

/// One transience cell: how the stack disposed of the fault.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TransienceCell {
    /// Whether the run's observable output matched the fault-free
    /// reference — i.e. the fault was fully masked below the API.
    pub matches_reference: bool,
    /// The device-level retry layer's counters for this run.
    pub retry: RetryStatsSnapshot,
    /// The policy engine's per-action counters for this run.
    pub policy: PolicyCounterSnapshot,
    /// The mount state the run ended in.
    pub final_state: MountState,
}

/// A (transience × block type × workload) matrix for one file system.
pub struct TransienceMatrix {
    /// File-system name.
    pub fs_name: &'static str,
    /// Row tags (block types).
    pub rows: Vec<BlockTag>,
    /// Column workloads.
    pub cols: Vec<Workload>,
    /// Transience panels.
    pub transiences: Vec<FaultTransience>,
    /// `cells[(transience, row, col)]`: `None` = fault never fired (gray).
    pub cells: HashMap<(usize, usize, usize), Option<TransienceCell>>,
    /// Cells where the fault fired.
    pub relevant: usize,
}

impl TransienceMatrix {
    /// The cell for (transience index, row index, col index).
    pub fn cell(&self, tr: usize, row: usize, col: usize) -> Option<TransienceCell> {
        self.cells.get(&(tr, row, col)).copied().flatten()
    }
}

/// One cell's run artifacts.
struct CellRun {
    fired: bool,
    output: WorkloadOutput,
    mount_error: Option<VfsError>,
    retry: RetryStatsSnapshot,
    policy: PolicyCounterSnapshot,
    final_state: MountState,
}

fn run_one(
    adapter: &dyn FsUnderTest,
    golden: &MemDisk,
    w: Workload,
    fault: Option<(FaultTransience, BlockTag)>,
    opts: &TransienceOptions,
) -> CellRun {
    let plan = FaultPlan::new();
    let ctl = plan.controller();
    let fault_id = fault.map(|(tr, tag)| ctl.inject(tr.spec(tag)));
    // Same arming discipline as the main campaign: plain workloads keep
    // the fault disarmed across mount (one stable id), special workloads
    // need it live from the first access.
    let special = w.is_special();
    if let Some(id) = fault_id {
        if !special {
            ctl.disarm(id);
        }
    }

    // The policy-equipped Figure 1 stack: snapshot, clock-attached fault
    // layer, retry/deadline layer, write-through cache. All three share
    // the snapshot's clock, so latency faults are visible to the deadline
    // check and backoff charges land on the same timeline.
    let snap = golden.snapshot();
    let clock = snap.clock();
    let policy = opts.device_policy();
    let env = FsEnv::new();
    let dev = StackBuilder::new(snap)
        .with_timed_faults(plan, clock.clone())
        .with_retry(
            RetryConfig::new(policy.clone(), clock)
                .deadline_ns(opts.deadline_ns)
                .with_klog(env.klog.clone()),
        )
        .write_through()
        .build();
    let stats = dev.inner().stats();
    let trace = dev.inner().inner().trace();

    let mut output = WorkloadOutput::default();
    let mut mount_error = None;
    match adapter.mount_retry(dev, env.clone()) {
        Ok(fs) => {
            let mut v = Vfs::new(fs);
            output.steps.push("mount:ok".into());
            if let Some(id) = fault_id {
                if !special {
                    ctl.arm(id);
                }
            }
            let out = run(w, &mut v, Some(&trace));
            output.steps.extend(out.steps);
            output.step_trace_marks = out.step_trace_marks;
        }
        Err(e) => {
            output.steps.push(match &e {
                VfsError::Errno(errno) => format!("mount:err:{errno:?}"),
                VfsError::KernelPanic(_) => "mount:PANIC".into(),
            });
            mount_error = Some(e);
        }
    }

    CellRun {
        fired: fault_id.map(|id| ctl.fired(id)).unwrap_or(false),
        output,
        mount_error,
        retry: stats.snapshot(),
        policy: policy.counters().snapshot(),
        final_state: env.state(),
    }
}

type CellKey = (usize, usize, usize);

/// Run the transience campaign for one file system.
///
/// The (transience × row × workload) cell list is sharded over
/// [`TransienceOptions::threads`] workers; finished cells merge into the
/// matrix by key, so any thread count yields the bit-identical
/// [`TransienceMatrix`].
pub fn transience_matrix(adapter: &dyn FsUnderTest, opts: &TransienceOptions) -> TransienceMatrix {
    let all_rows = adapter.rows();
    let rows: Vec<BlockTag> = if opts.rows.is_empty() {
        all_rows
    } else {
        all_rows
            .into_iter()
            .filter(|t| opts.rows.contains(t))
            .collect()
    };
    let cols = opts.workloads.clone();
    let transiences = opts.transiences.clone();
    let pool = opts.pool();

    let golden_clean = adapter.golden(false);
    let golden_dirty = adapter.golden(true);
    let golden_for = |w: Workload| {
        if w == Workload::Recovery {
            &golden_dirty
        } else {
            &golden_clean
        }
    };

    // Fault-free reference runs through the *same* policy-equipped stack,
    // one per workload.
    let ref_jobs: Vec<Job<'_, (Workload, WorkloadOutput)>> = cols
        .iter()
        .map(|&w| {
            let golden_clean = &golden_clean;
            let golden_dirty = &golden_dirty;
            Box::new(move || {
                let golden = if w == Workload::Recovery {
                    golden_dirty
                } else {
                    golden_clean
                };
                (w, run_one(adapter, golden, w, None, opts).output)
            }) as Job<'_, _>
        })
        .collect();
    let references: HashMap<Workload, WorkloadOutput> =
        pool.run_jobs(ref_jobs).into_iter().collect();

    let mut cells_todo: Vec<(CellKey, FaultTransience, BlockTag, Workload)> = Vec::new();
    for (ti, &tr) in transiences.iter().enumerate() {
        for (ri, &tag) in rows.iter().enumerate() {
            for (ci, &w) in cols.iter().enumerate() {
                cells_todo.push(((ti, ri, ci), tr, tag, w));
            }
        }
    }

    let done: Vec<(CellKey, Option<TransienceCell>)> = pool.shard(
        &cells_todo,
        |acc: &mut Vec<(CellKey, Option<TransienceCell>)>, &(key, tr, tag, w)| {
            let r = run_one(adapter, golden_for(w), w, Some((tr, tag)), opts);
            let cell = if r.fired {
                Some(TransienceCell {
                    matches_reference: r.mount_error.is_none() && r.output == references[&w],
                    retry: r.retry,
                    policy: r.policy,
                    final_state: r.final_state,
                })
            } else {
                None
            };
            acc.push((key, cell));
        },
        |out, shard| out.extend(shard),
    );

    let mut matrix = TransienceMatrix {
        fs_name: adapter.name(),
        rows,
        cols,
        transiences,
        cells: HashMap::new(),
        relevant: 0,
    };
    for (key, cell) in done {
        if cell.is_some() {
            matrix.relevant += 1;
        }
        matrix.cells.insert(key, cell);
    }
    matrix
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapters::Ext3Adapter;

    fn small(transiences: Vec<FaultTransience>, budget: u32) -> TransienceOptions {
        TransienceOptions {
            workloads: vec![Workload::Read],
            rows: vec![BlockTag("data")],
            transiences,
            retry_budget: budget,
            ..TransienceOptions::default()
        }
    }

    #[test]
    fn transient_fault_within_budget_is_masked_at_device_level() {
        let opts = small(vec![FaultTransience::Transient(2)], 3);
        let m = transience_matrix(&Ext3Adapter::stock(), &opts);
        let cell = m.cell(0, 0, 0).expect("fault fires");
        assert!(cell.matches_reference, "fault fully masked below the API");
        assert!(cell.retry.masked >= 1, "device-level re-issue succeeded");
        assert_eq!(cell.retry.propagated, 0, "nothing escaped to the FS");
        assert_eq!(cell.final_state, MountState::ReadWrite);
    }

    #[test]
    fn sticky_fault_exhausts_the_budget_and_propagates() {
        let opts = small(vec![FaultTransience::Sticky], 2);
        let m = transience_matrix(&Ext3Adapter::stock(), &opts);
        let cell = m.cell(0, 0, 0).expect("fault fires");
        assert!(!cell.matches_reference, "a sticky data fault is visible");
        assert_eq!(cell.retry.masked, 0);
        assert!(cell.retry.propagated >= 1);
        assert!(cell.policy.exhausted >= 1, "the budget ran out");
        assert!(
            cell.retry.attempts >= cell.retry.ops + 2,
            "the budget's re-issues were actually spent"
        );
    }

    #[test]
    fn slow_fault_surfaces_as_deadline_timeouts() {
        let opts = small(vec![FaultTransience::Slow], 2);
        let m = transience_matrix(&Ext3Adapter::stock(), &opts);
        let cell = m.cell(0, 0, 0).expect("fault fires");
        assert!(cell.retry.timeouts >= 1, "slowness became a timeout");
        assert!(
            !cell.matches_reference,
            "a persistently slow block is visible through the deadline"
        );
    }

    #[test]
    fn matrix_is_bit_identical_at_any_thread_count() {
        let opts = TransienceOptions {
            workloads: vec![Workload::Read, Workload::Write],
            rows: vec![BlockTag("data"), BlockTag("inode")],
            ..TransienceOptions::default()
        };
        let m1 = transience_matrix(&Ext3Adapter::stock(), &opts.clone().with_threads(1));
        let m2 = transience_matrix(&Ext3Adapter::stock(), &opts.clone().with_threads(2));
        let m4 = transience_matrix(&Ext3Adapter::stock(), &opts.clone().with_threads(4));
        assert_eq!(m1.cells, m2.cells, "1 vs 2 threads");
        assert_eq!(m1.cells, m4.cells, "1 vs 4 threads");
        assert_eq!(m1.relevant, m2.relevant);
        assert!(m1.relevant > 0);
    }

    /// The full cross product over every row and column, stock and ixt3 —
    /// the `IRON_STRESS=1` CI lane runs this with `--ignored`.
    #[test]
    #[ignore = "full transience cross product; run via the IRON_STRESS=1 lane"]
    fn full_transience_campaign_is_deterministic_stress() {
        for adapter in [Ext3Adapter::stock(), Ext3Adapter::ixt3()] {
            let opts = TransienceOptions::default();
            let a = transience_matrix(&adapter, &opts.clone().with_threads(1));
            let b = transience_matrix(&adapter, &opts.clone().with_threads(4));
            assert_eq!(a.cells, b.cells, "{}: 1 vs 4 threads", a.fs_name);
            assert_eq!(a.relevant, b.relevant);
            assert!(
                a.relevant > 20,
                "{}: axis must be widely relevant",
                a.fs_name
            );
        }
    }
}

//! The cross-replica fault campaign: the Figure 2 policy matrix gains a
//! **replica-fault topology** axis.
//!
//! The paper's campaign asks *"how does the file system react when its
//! one disk fails?"*. Stacking the same type-aware fault injector under
//! each replica of an [`iron_cluster::ReplicatedDisk`] asks the
//! storage-system question instead: *which single-disk reactions
//! disappear once a quorum of peers can arbitrate, and which fault
//! topologies still defeat the cluster?* Each campaign cell becomes
//! (topology × fault mode × block type × workload): the fault is injected
//! on a chosen subset of replicas — primary only, a quorum minority, a
//! quorum majority, transient — and the run records both the file
//! system's policy reaction (same [`infer`] vocabulary as Figure 2) and
//! the cluster-tier outcome: did quorum arbitration detect the
//! divergence, was the fault masked from the file system entirely, and
//! did peer repair converge the replicas afterwards?

use std::collections::HashMap;

use iron_blockdev::{BufferCache, MemDisk, StackBuilder};
use iron_cluster::{mirror_with, ReadPolicy, ReplicatedDisk};
use iron_core::exec::WorkerPool;
use iron_core::policy::PolicyCell;
use iron_core::BlockTag;
use iron_ext3::{Ext3Fs, Ext3Options};
use iron_faultinject::{FaultPlan, FaultSpec, FaultTarget, FaultyDisk};
use iron_vfs::{FsEnv, SpecificFs, Vfs, VfsError, VfsResult};

use crate::adapters::Ext3Adapter;
use crate::campaign::FaultMode;
use crate::observe::{infer, Observation};
use crate::workloads::{run, Workload, WorkloadOutput};

/// The device stack every cluster-campaign cell mounts over: a
/// write-through cache above a quorum-read replicated volume whose
/// replicas each carry their *own* fault layer over their own golden
/// snapshot — the per-replica analogue of the single-disk
/// [`crate::adapters::CampaignDevice`].
pub type ClusterCampaignDevice = BufferCache<ReplicatedDisk<FaultyDisk<MemDisk>>>;

/// A file system packaged for the cluster campaign.
///
/// Unlike [`crate::adapters::FsUnderTest`] this trait keeps the concrete
/// file-system type: after the workload the cell *unmounts and takes the
/// device back* to run peer repair and the convergence oracle, which a
/// `Box<dyn SpecificFs>` cannot return.
pub trait ClusterFsUnderTest: Sync {
    /// The mounted file-system type.
    type Fs: SpecificFs;

    /// Display name.
    fn name(&self) -> &'static str;

    /// Block-type rows.
    fn rows(&self) -> Vec<BlockTag>;

    /// Golden single-disk image (replicated by the campaign).
    fn golden(&self, dirty_journal: bool) -> MemDisk;

    /// Mount over the replicated stack.
    fn mount(&self, dev: ClusterCampaignDevice, env: FsEnv) -> VfsResult<Self::Fs>;

    /// Recover the device from a mounted instance.
    fn device(&self, fs: Self::Fs) -> ClusterCampaignDevice;
}

/// ext3/ixt3 packaged for the cluster campaign (delegates formatting,
/// rows, and options to the single-disk [`Ext3Adapter`]).
pub struct Ext3ClusterAdapter {
    /// The single-disk adapter providing golden images, rows, and mount
    /// options.
    pub inner: Ext3Adapter,
}

impl Ext3ClusterAdapter {
    /// Stock ext3 on a replicated volume.
    pub fn stock() -> Self {
        Ext3ClusterAdapter {
            inner: Ext3Adapter::stock(),
        }
    }

    /// Full ixt3 on a replicated volume.
    pub fn ixt3() -> Self {
        Ext3ClusterAdapter {
            inner: Ext3Adapter::ixt3(),
        }
    }

    fn options(&self) -> Ext3Options {
        Ext3Options {
            legacy_journal_bugs: self.inner.legacy_journal_bugs,
            ..Ext3Options::with_iron(self.inner.iron)
        }
    }
}

impl ClusterFsUnderTest for Ext3ClusterAdapter {
    type Fs = Ext3Fs<ClusterCampaignDevice>;

    fn name(&self) -> &'static str {
        use crate::adapters::FsUnderTest;
        self.inner.name()
    }

    fn rows(&self) -> Vec<BlockTag> {
        use crate::adapters::FsUnderTest;
        self.inner.rows()
    }

    fn golden(&self, dirty_journal: bool) -> MemDisk {
        use crate::adapters::FsUnderTest;
        self.inner.golden(dirty_journal)
    }

    fn mount(&self, dev: ClusterCampaignDevice, env: FsEnv) -> VfsResult<Self::Fs> {
        Ext3Fs::mount(dev, env, self.options())
    }

    fn device(&self, fs: Self::Fs) -> ClusterCampaignDevice {
        fs.into_device()
    }
}

/// One point on the campaign's replica-fault axis: how many replicas the
/// volume has and which of them carry the injected fault.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ReplicaTopology {
    /// Display name.
    pub name: &'static str,
    /// Replica count.
    pub replicas: usize,
    /// Replica indices carrying the fault.
    pub faulted: &'static [usize],
    /// Override the mode's transience: the fault clears after one firing
    /// (models a transient per-replica hiccup rather than a bad medium).
    pub transient: bool,
}

impl ReplicaTopology {
    /// The standard axis: the single-disk baseline, a fault on the
    /// primary of three, on a quorum minority, on a quorum majority, and
    /// a transient primary fault.
    pub const ALL: [ReplicaTopology; 5] = [
        ReplicaTopology {
            name: "single",
            replicas: 1,
            faulted: &[0],
            transient: false,
        },
        ReplicaTopology {
            name: "primary-of-3",
            replicas: 3,
            faulted: &[0],
            transient: false,
        },
        ReplicaTopology {
            name: "minority-of-3",
            replicas: 3,
            faulted: &[2],
            transient: false,
        },
        ReplicaTopology {
            name: "majority-of-3",
            replicas: 3,
            faulted: &[0, 1],
            transient: false,
        },
        ReplicaTopology {
            name: "transient-primary",
            replicas: 3,
            faulted: &[0],
            transient: true,
        },
    ];

    /// True if the healthy replicas still form a content majority — the
    /// topologies where quorum arbitration is *expected* to win.
    pub fn minority_faulted(&self) -> bool {
        2 * (self.replicas - self.faulted.len()) > self.replicas
    }
}

/// One cluster-campaign cell: the file system's policy reaction plus the
/// cluster-tier verdict.
#[derive(Clone, PartialEq, Debug)]
pub struct ClusterCell {
    /// The fault fired on at least one faulted replica.
    pub fired: bool,
    /// The single-disk policy inference for this run (what the *file
    /// system* was observed doing) — `None` when its observable output
    /// was indistinguishable from the fault-free reference.
    pub fs_cell: Option<PolicyCell>,
    /// The workload's observable output matched the fault-free reference:
    /// the cluster masked the fault completely.
    pub masked: bool,
    /// Mount failed under this fault.
    pub mount_failed: bool,
    /// Divergences the quorum read path detected during the run.
    pub divergences: u64,
    /// Replica copies healed by post-run peer repair.
    pub healed: u64,
    /// Replica copies peer repair could not heal (no majority).
    pub unrecoverable: u64,
    /// All replica media bit-identical after repair. `None` when the
    /// mount failed (the device is consumed, no repair pass runs).
    pub converged: Option<bool>,
}

/// Options for a cluster campaign.
#[derive(Clone, Debug)]
pub struct ClusterCampaignOptions {
    /// Replica-fault topologies (the new axis).
    pub topologies: Vec<ReplicaTopology>,
    /// Fault modes.
    pub modes: Vec<FaultMode>,
    /// Workload columns.
    pub workloads: Vec<Workload>,
    /// Row filter (empty = all rows).
    pub rows: Vec<BlockTag>,
    /// Worker threads (0 = one per hardware thread). Bit-identical at any
    /// width.
    pub threads: usize,
}

impl Default for ClusterCampaignOptions {
    fn default() -> Self {
        ClusterCampaignOptions {
            topologies: ReplicaTopology::ALL.to_vec(),
            modes: FaultMode::ALL.to_vec(),
            workloads: Workload::COLUMNS.to_vec(),
            rows: Vec::new(),
            threads: 0,
        }
    }
}

/// The 4-axis matrix: `cells[(topology, mode, row, col)]`.
pub struct ClusterMatrix {
    /// File-system name.
    pub fs_name: &'static str,
    /// Topology axis.
    pub topologies: Vec<ReplicaTopology>,
    /// Row tags.
    pub rows: Vec<BlockTag>,
    /// Column workloads.
    pub cols: Vec<Workload>,
    /// Fault modes.
    pub modes: Vec<FaultMode>,
    /// `None` = the fault never fired (gray).
    pub cells: HashMap<(usize, usize, usize, usize), Option<ClusterCell>>,
    /// Cells where the fault fired.
    pub relevant: usize,
}

impl ClusterMatrix {
    /// The cell at (topology, mode, row, col) indices.
    pub fn cell(&self, topo: usize, mode: usize, row: usize, col: usize) -> Option<&ClusterCell> {
        self.cells
            .get(&(topo, mode, row, col))
            .and_then(|c| c.as_ref())
    }

    /// Per-topology roll-up lines for reports: relevant / masked /
    /// converged / unrecoverable counts.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for (ti, t) in self.topologies.iter().enumerate() {
            let mut relevant = 0usize;
            let mut masked = 0usize;
            let mut converged = 0usize;
            let mut unrecoverable = 0usize;
            for (&(cti, ..), cell) in &self.cells {
                if cti != ti {
                    continue;
                }
                if let Some(c) = cell {
                    relevant += 1;
                    masked += usize::from(c.masked);
                    converged += usize::from(c.converged == Some(true));
                    unrecoverable += usize::from(c.unrecoverable > 0);
                }
            }
            out.push_str(&format!(
                "{:>18} (n={}): relevant={relevant} masked={masked} \
                 converged={converged} unrecoverable={unrecoverable}\n",
                t.name, t.replicas,
            ));
        }
        out
    }
}

/// One cell's raw artifacts, before inference.
struct ClusterRun {
    output: WorkloadOutput,
    mount_error: Option<VfsError>,
    env: FsEnv,
    fired: bool,
    anchor: Option<iron_core::BlockAddr>,
    klog: Vec<iron_core::klog::LogEntry>,
    trace: Vec<iron_blockdev::IoEvent>,
    divergences: u64,
    healed: u64,
    unrecoverable: u64,
    converged: Option<bool>,
}

fn run_one_cluster<A: ClusterFsUnderTest>(
    adapter: &A,
    golden: &MemDisk,
    topo: &ReplicaTopology,
    w: Workload,
    fault: Option<(FaultMode, BlockTag)>,
) -> ClusterRun {
    // One plan per replica: FaultIds are plan-scoped, so each faulted
    // replica gets its own injection with independent TagNth counting.
    let plans: Vec<FaultPlan> = (0..topo.replicas).map(|_| FaultPlan::new()).collect();
    let special = w.is_special();
    let mut ids = Vec::new();
    if let Some((mode, tag)) = fault {
        for &ri in topo.faulted {
            let spec = if topo.transient {
                FaultSpec::transient(mode.kind(), FaultTarget::TagNth { tag, nth: 0 }, 1)
            } else {
                mode.spec(tag)
            };
            let ctl = plans[ri].controller();
            let id = ctl.inject(spec);
            // Same discipline as the single-disk campaign: plain
            // workloads arm the fault only after mount.
            if !special {
                ctl.disarm(id);
            }
            ids.push((ri, id));
        }
    }

    let vol = mirror_with(golden, topo.replicas, ReadPolicy::Quorum, |md, i| {
        FaultyDisk::with_plan(md, plans[i].clone())
    });
    let cluster_stats = vol.stats();
    // Observe I/O from the first faulted replica's vantage point (it is
    // the one whose fault anchors the cell).
    let observed = topo.faulted.first().copied().unwrap_or(0);
    let trace = vol.replica(observed).trace();
    let dev: ClusterCampaignDevice = StackBuilder::new(vol).write_through().build();

    let env = FsEnv::new();
    let mut cell = ClusterRun {
        output: WorkloadOutput::default(),
        mount_error: None,
        env: env.clone(),
        fired: false,
        anchor: None,
        klog: Vec::new(),
        trace: Vec::new(),
        divergences: 0,
        healed: 0,
        unrecoverable: 0,
        converged: None,
    };

    match adapter.mount(dev, env) {
        Ok(fs) => {
            let mut v = Vfs::new(fs);
            cell.output.steps.push("mount:ok".into());
            for &(ri, id) in &ids {
                if !special {
                    plans[ri].controller().arm(id);
                }
            }
            let out = run(w, &mut v, Some(&trace));
            cell.output.steps.extend(out.steps);
            cell.output.step_trace_marks = out.step_trace_marks;
            // Read fired/anchor now — clear() below wipes the entries.
            for &(ri, id) in &ids {
                let ctl = plans[ri].controller();
                cell.fired |= ctl.fired(id);
                if cell.anchor.is_none() {
                    cell.anchor = ctl.anchor(id);
                }
            }

            // Post-run cluster phase: take the device back, drop the
            // fault layers' state, and let the peers repair. Unmount
            // errors under an armed write fault are themselves part of
            // the FS observation, not the cluster verdict — ignore them.
            let _ = v.umount();
            let cache = adapter.device(v.into_fs());
            let mut vol = cache.into_inner();
            for p in &plans {
                p.controller().clear();
            }
            let fg = vol.repair_pending();
            let bg = vol.scrub_repair();
            cell.healed = fg.healed + bg.healed;
            cell.unrecoverable = fg.unrecoverable + bg.unrecoverable;
            cell.converged = Some(vol.replicas_identical());
        }
        Err(e) => {
            cell.output.steps.push(match &e {
                VfsError::Errno(errno) => format!("mount:err:{errno:?}"),
                VfsError::KernelPanic(_) => "mount:PANIC".into(),
            });
            cell.mount_error = Some(e);
            for &(ri, id) in &ids {
                let ctl = plans[ri].controller();
                cell.fired |= ctl.fired(id);
                if cell.anchor.is_none() {
                    cell.anchor = ctl.anchor(id);
                }
            }
        }
    }

    cell.divergences = cluster_stats.snapshot().divergences;
    cell.klog = cell.env.klog.entries();
    cell.trace = trace.events();
    cell
}

/// Run the cluster campaign: the full (topology × mode × row × workload)
/// cross product, sharded over [`WorkerPool`] with keyed merge — the
/// matrix is bit-identical at any thread count.
pub fn fingerprint_cluster<A: ClusterFsUnderTest>(
    adapter: &A,
    opts: &ClusterCampaignOptions,
) -> ClusterMatrix {
    let all_rows = adapter.rows();
    let rows: Vec<BlockTag> = if opts.rows.is_empty() {
        all_rows
    } else {
        all_rows
            .into_iter()
            .filter(|t| opts.rows.contains(t))
            .collect()
    };
    let cols = opts.workloads.clone();
    let modes = opts.modes.clone();
    let topologies = opts.topologies.clone();
    let pool = if opts.threads == 0 {
        WorkerPool::auto()
    } else {
        WorkerPool::new(opts.threads)
    };

    let golden_clean = adapter.golden(false);
    let golden_dirty = adapter.golden(true);
    let golden_for = |w: Workload| {
        if w == Workload::Recovery {
            &golden_dirty
        } else {
            &golden_clean
        }
    };

    // Fault-free references at n=1: the differential tier proves a
    // healthy ReplicatedDisk(n) is bit-identical to a bare disk, so one
    // reference per workload serves every topology.
    let reference_topo = ReplicaTopology {
        name: "reference",
        replicas: 1,
        faulted: &[],
        transient: false,
    };
    let ref_jobs: Vec<iron_core::exec::Job<'_, (Workload, WorkloadOutput)>> = cols
        .iter()
        .map(|&w| {
            let golden_clean = &golden_clean;
            let golden_dirty = &golden_dirty;
            let reference_topo = &reference_topo;
            Box::new(move || {
                let golden = if w == Workload::Recovery {
                    golden_dirty
                } else {
                    golden_clean
                };
                (
                    w,
                    run_one_cluster(adapter, golden, reference_topo, w, None).output,
                )
            }) as iron_core::exec::Job<'_, _>
        })
        .collect();
    let references: HashMap<Workload, WorkloadOutput> =
        pool.run_jobs(ref_jobs).into_iter().collect();

    type Key = (usize, usize, usize, usize);
    let mut todo: Vec<(Key, ReplicaTopology, FaultMode, BlockTag, Workload)> = Vec::new();
    for (ti, &topo) in topologies.iter().enumerate() {
        for (mi, &mode) in modes.iter().enumerate() {
            for (ri, &tag) in rows.iter().enumerate() {
                for (ci, &w) in cols.iter().enumerate() {
                    todo.push(((ti, mi, ri, ci), topo, mode, tag, w));
                }
            }
        }
    }

    let done: Vec<(Key, Option<ClusterCell>)> = pool.shard(
        &todo,
        |acc: &mut Vec<(Key, Option<ClusterCell>)>, &(key, topo, mode, tag, w)| {
            let r = run_one_cluster(adapter, golden_for(w), &topo, w, Some((mode, tag)));
            let cell = if r.fired {
                let reference = references[&w].clone();
                let masked = r.mount_error.is_none() && r.output == reference;
                let obs = Observation {
                    mode,
                    fired: r.fired,
                    anchor: r.anchor,
                    reference,
                    faulty: r.output,
                    mount_error: r.mount_error,
                    final_state: r.env.state(),
                    klog: r.klog,
                    trace: r.trace,
                };
                Some(ClusterCell {
                    fired: true,
                    fs_cell: infer(&obs),
                    masked,
                    mount_failed: obs.mount_error.is_some(),
                    divergences: r.divergences,
                    healed: r.healed,
                    unrecoverable: r.unrecoverable,
                    converged: r.converged,
                })
            } else {
                None
            };
            acc.push((key, cell));
        },
        |out, shard| out.extend(shard),
    );

    let mut matrix = ClusterMatrix {
        fs_name: adapter.name(),
        topologies,
        rows,
        cols,
        modes,
        cells: HashMap::new(),
        relevant: 0,
    };
    for (key, cell) in done {
        if cell.is_some() {
            matrix.relevant += 1;
        }
        matrix.cells.insert(key, cell);
    }
    matrix
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini(
        topo: ReplicaTopology,
        mode: FaultMode,
        row: &'static str,
        w: Workload,
    ) -> ClusterMatrix {
        fingerprint_cluster(
            &Ext3ClusterAdapter::stock(),
            &ClusterCampaignOptions {
                topologies: vec![topo],
                modes: vec![mode],
                workloads: vec![w],
                rows: vec![BlockTag(row)],
                ..ClusterCampaignOptions::default()
            },
        )
    }

    #[test]
    fn quorum_masks_single_replica_corruption() {
        // The headline cluster result: sticky corruption on one replica
        // of three is invisible to stock ext3 — the topology axis turns a
        // silent-data-corruption cell into a masked cell.
        let m = mini(
            ReplicaTopology::ALL[1], // primary-of-3
            FaultMode::Corruption,
            "data",
            Workload::Read,
        );
        let cell = m.cell(0, 0, 0, 0).expect("fault fires");
        assert!(cell.fired);
        assert!(
            cell.masked,
            "quorum must mask the corrupt replica: {cell:?}"
        );
        assert!(!cell.mount_failed);
        assert!(cell.divergences >= 1, "arbitration must detect: {cell:?}");
        assert_eq!(cell.converged, Some(true), "peers must reconverge");
        assert_eq!(cell.unrecoverable, 0);
    }

    #[test]
    fn same_corruption_is_not_masked_on_a_single_replica() {
        // The identical fault on the 1-replica topology: the quorum of
        // one passes the corruption straight through, and stock ext3
        // serves corrupt data (the paper's Figure 2 cell).
        let m = mini(
            ReplicaTopology::ALL[0], // single
            FaultMode::Corruption,
            "data",
            Workload::Read,
        );
        let cell = m.cell(0, 0, 0, 0).expect("fault fires");
        assert!(cell.fired);
        assert!(!cell.masked, "no peer can mask on n=1: {cell:?}");
        assert_eq!(cell.divergences, 0, "a quorum of one cannot even detect");
    }

    #[test]
    fn majority_fault_defeats_quorum_arbitration() {
        // Zeroed corruption on two of three replicas: the corrupt copies
        // agree with each other, outvote the good one, and the cluster
        // tier cannot mask — the FS-visible outcome is the single-disk
        // one again.
        let m = mini(
            ReplicaTopology::ALL[3], // majority-of-3
            FaultMode::ZeroCorruption,
            "data",
            Workload::Read,
        );
        let cell = m.cell(0, 0, 0, 0).expect("fault fires");
        assert!(cell.fired);
        assert!(
            !cell.masked,
            "two agreeing corrupt replicas outvote the good one: {cell:?}"
        );
    }

    #[test]
    fn transient_replica_fault_masks_and_converges() {
        let m = mini(
            ReplicaTopology::ALL[4], // transient-primary
            FaultMode::Corruption,
            "data",
            Workload::Read,
        );
        let cell = m.cell(0, 0, 0, 0).expect("fault fires");
        assert!(cell.masked, "one transient hiccup must be masked: {cell:?}");
        assert_eq!(cell.converged, Some(true));
        assert_eq!(cell.unrecoverable, 0);
    }

    #[test]
    fn matrices_are_deterministic_across_thread_counts() {
        let opts = ClusterCampaignOptions {
            topologies: vec![ReplicaTopology::ALL[1], ReplicaTopology::ALL[3]],
            modes: vec![FaultMode::ReadError, FaultMode::Corruption],
            workloads: vec![Workload::Read],
            rows: vec![BlockTag("data"), BlockTag("inode")],
            threads: 1,
        };
        let a = fingerprint_cluster(&Ext3ClusterAdapter::stock(), &opts);
        let b = fingerprint_cluster(
            &Ext3ClusterAdapter::stock(),
            &ClusterCampaignOptions { threads: 4, ..opts },
        );
        assert_eq!(a.cells, b.cells, "matrix must not depend on scheduling");
        assert_eq!(a.relevant, b.relevant);
        assert!(a.relevant > 0);
        assert!(!a.summary().is_empty());
    }

    #[test]
    fn read_error_on_minority_is_masked_by_failover_to_peers() {
        // A sticky read error on one replica: quorum still has two good
        // copies; stock ext3 — which would RPropagate on a single disk —
        // sees nothing at all.
        let m = mini(
            ReplicaTopology::ALL[2], // minority-of-3
            FaultMode::ReadError,
            "data",
            Workload::Read,
        );
        let cell = m.cell(0, 0, 0, 0).expect("fault fires");
        assert!(
            cell.masked,
            "read errors lose to a healthy majority: {cell:?}"
        );
        assert_eq!(cell.converged, Some(true));
    }
}

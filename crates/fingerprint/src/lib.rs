//! # iron-fingerprint
//!
//! The paper's **failure-policy fingerprinting framework** (§4): determine
//! which IRON detection and recovery techniques a file system uses, and
//! what it assumes about how the storage system can fail, by injecting
//! type-aware faults beneath it and observing how it reacts.
//!
//! The three steps of §4, mechanized:
//!
//! 1. **Applied workload** ([`workloads`]): the Table 3 suite — singlets
//!    covering the POSIX API plus generics (path traversal, recovery, log
//!    writes), arranged as the columns *a–t* of Figure 2.
//! 2. **Type-aware fault injection** ([`campaign`]): for every (workload ×
//!    block type × fault mode) cell, a fresh golden image is stamped, a
//!    fault is aimed at the block *type* (via the tags the file systems
//!    attach to their I/O), and the workload runs.
//! 3. **Failure-policy inference** ([`observe`]): the run's outputs — API
//!    results, the kernel log, the low-level I/O trace, and the post-run
//!    mount state — are compared against a fault-free reference run and
//!    classified into IRON levels. (The paper calls this "the most
//!    human-intensive part of the process"; here it is automated.)
//!
//! [`adapters`] packages each file-system model for the campaign;
//! [`render`] draws Figure 2/3-style matrices; [`summary`] aggregates
//! Table 5; [`greybox`] re-derives ext3 block types by walking the image —
//! independently of the tags — and the test suite asserts the two agree.
//! [`cluster`] lifts the campaign above a replicated multi-disk volume
//! (`iron-cluster`), adding a replica-fault topology axis: which
//! single-disk policy cells vanish under quorum arbitration, and which
//! fault topologies still defeat the cluster. [`transience`] adds a
//! fault-transience axis (sticky / transient-*n* / slow) driven through
//! the policy-equipped retry/deadline device stack.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapters;
pub mod campaign;
pub mod cluster;
pub mod greybox;
pub mod observe;
pub mod render;
pub mod summary;
pub mod transience;
pub mod workloads;

pub use adapters::{
    CampaignDevice, CrashDevice, Ext3Adapter, FsUnderTest, Instance, JfsAdapter, NtfsAdapter,
    ReiserAdapter, RetryDevice,
};
pub use campaign::{fingerprint_fs, CampaignOptions, FaultMode, PolicyMatrix};
pub use cluster::{
    fingerprint_cluster, ClusterCampaignDevice, ClusterCampaignOptions, ClusterCell,
    ClusterFsUnderTest, ClusterMatrix, Ext3ClusterAdapter, ReplicaTopology,
};
pub use transience::{
    transience_matrix, FaultTransience, TransienceCell, TransienceMatrix, TransienceOptions,
};
pub use workloads::{Workload, WorkloadOutput};

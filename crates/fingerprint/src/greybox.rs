//! Gray-box block classification.
//!
//! The paper's injector derives block types from "gray-box knowledge of
//! file system data structures" (§1, §4.2) — it never asks the file system.
//! Our file systems *do* tag their I/O (a convenience), so to keep the
//! reproduction honest this module re-derives ext3 block types purely by
//! walking the on-disk image, and the test suite asserts the two sources
//! agree on every traced access.

use std::collections::HashMap;

use iron_blockdev::RawAccess;
use iron_core::{BlockAddr, BLOCK_SIZE};
use iron_ext3::inode::{DiskInode, NDIRECT, PTRS_PER_BLOCK};
use iron_ext3::journal::{classify_log_block, JournalRecord};
use iron_ext3::layout::{BlockType, DiskLayout};
use iron_vfs::FileType;

/// Classify every block of an ext3 image by structure walking: static
/// regions from the layout, journal log blocks by content, and dynamic
/// blocks (directory vs. data vs. indirect vs. parity) by traversing the
/// inode table.
pub fn classify_ext3<D: RawAccess>(dev: &D, layout: &DiskLayout) -> HashMap<u64, BlockType> {
    let mut map = HashMap::new();

    // Static layout.
    for b in 0..layout.params.total_blocks {
        map.insert(b, layout.classify_static(b));
    }

    // Journal log area: refine by block content.
    for b in layout.journal_start..layout.journal_start + layout.journal_len {
        let ty = match classify_log_block(&dev.peek(BlockAddr(b))) {
            Some(JournalRecord::Descriptor(_)) => BlockType::JournalDesc,
            Some(JournalRecord::Commit(_)) => BlockType::JournalCommit,
            Some(JournalRecord::Revoke(_)) => BlockType::JournalRevoke,
            None => BlockType::JournalData,
        };
        map.insert(b, ty);
    }

    // Dynamic blocks: walk the inode table.
    for ino in 1..=layout.total_inodes() {
        let (blk, off) = layout.inode_location(ino);
        let di = DiskInode::decode_from(&dev.peek(blk), off);
        if di.is_free() || di.file_type().is_none() {
            continue;
        }
        let is_dir = di.file_type() == Some(FileType::Directory);
        let body_ty = if is_dir {
            BlockType::Dir
        } else {
            BlockType::Data
        };

        let nblocks = di.size.div_ceil(BLOCK_SIZE as u64);
        let note = |map: &mut HashMap<u64, BlockType>, addr: u64, ty: BlockType| {
            if addr != 0 && addr < layout.params.total_blocks {
                map.insert(addr, ty);
            }
        };
        // Direct pointers.
        for (i, p) in di.direct.iter().enumerate() {
            if (i as u64) < nblocks {
                note(&mut map, *p as u64, body_ty);
            }
        }
        // Single indirect.
        if di.indirect != 0 {
            note(&mut map, di.indirect as u64, BlockType::Indirect);
            let ib = dev.peek(BlockAddr(di.indirect as u64));
            for i in 0..PTRS_PER_BLOCK {
                if (NDIRECT + i) as u64 >= nblocks {
                    break;
                }
                note(&mut map, ib.get_u32(i * 4) as u64, body_ty);
            }
        }
        // Double indirect.
        if di.double_indirect != 0 {
            note(&mut map, di.double_indirect as u64, BlockType::Indirect);
            let l1 = dev.peek(BlockAddr(di.double_indirect as u64));
            for i in 0..PTRS_PER_BLOCK {
                let l2p = l1.get_u32(i * 4) as u64;
                if l2p == 0 {
                    continue;
                }
                note(&mut map, l2p, BlockType::Indirect);
                let l2 = dev.peek(BlockAddr(l2p));
                for j in 0..PTRS_PER_BLOCK {
                    let idx = (NDIRECT + PTRS_PER_BLOCK + i * PTRS_PER_BLOCK + j) as u64;
                    if idx >= nblocks {
                        break;
                    }
                    note(&mut map, l2.get_u32(j * 4) as u64, body_ty);
                }
            }
        }
        // Parity (ixt3 images).
        if di.parity != 0 {
            note(&mut map, di.parity as u64, BlockType::Parity);
        }
    }

    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use iron_blockdev::MemDisk;
    use iron_core::BlockTag;
    use iron_ext3::{Ext3Fs, Ext3Options, Ext3Params};
    use iron_vfs::{FsEnv, Vfs};

    /// The core honesty check: the types the file system *claims* in its
    /// I/O tags must match what the gray-box walk derives from raw bytes.
    #[test]
    fn greybox_classification_agrees_with_io_tags() {
        let dev = MemDisk::for_tests(4096);
        let trace = dev.trace();
        let fs = Ext3Fs::format_and_mount(
            dev,
            FsEnv::new(),
            Ext3Params::small(),
            Ext3Options::default(),
        )
        .unwrap();
        let mut v = Vfs::new(fs);
        crate::workloads::build_fixture(&mut v).unwrap();
        // A workload mix touching every structure.
        let _ = v.read_file("/file_big").unwrap();
        v.unlink("/file_todelete").unwrap();
        v.rename("/file_torename", "/renamed").unwrap();
        v.sync().unwrap();
        v.umount().unwrap();

        let fs = v.into_fs();
        let layout = *fs.layout();
        let dev = fs.into_device();
        let map = classify_ext3(&dev, &layout);

        let mut checked = 0;
        let mut skipped = 0;
        for e in trace.events() {
            if e.tag == BlockTag::UNTYPED {
                continue;
            }
            let Some(derived) = map.get(&e.addr.0) else {
                continue;
            };
            // Journal-log contents evolve (the same slot holds different
            // record kinds over time) and freed blocks get recycled across
            // types; the final image can only be compared against the
            // *final* role of each block. Skip addresses whose role
            // changed during the run.
            let roles: std::collections::HashSet<&str> = trace
                .events()
                .iter()
                .filter(|x| x.addr == e.addr && x.tag != BlockTag::UNTYPED)
                .map(|x| x.tag.0)
                .collect();
            if roles.len() > 1 {
                skipped += 1;
                continue;
            }
            assert_eq!(
                derived.tag().0,
                e.tag.0,
                "block {} tagged '{}' but gray-box derives '{}'",
                e.addr,
                e.tag,
                derived.tag()
            );
            checked += 1;
        }
        assert!(
            checked > 100,
            "agreement must cover a substantial trace ({checked} checked, {skipped} skipped)"
        );
    }

    #[test]
    fn greybox_finds_every_static_structure() {
        let mut dev = MemDisk::for_tests(4096);
        Ext3Fs::<MemDisk>::mkfs(&mut dev, Ext3Params::small()).unwrap();
        let layout = iron_ext3::DiskLayout::compute(Ext3Params::small());
        let map = classify_ext3(&dev, &layout);
        assert_eq!(map[&0], BlockType::Super);
        assert_eq!(map[&1], BlockType::GroupDesc);
        assert_eq!(map[&2], BlockType::JournalSuper);
        assert_eq!(map[&layout.group_base(0)], BlockType::DataBitmap);
        assert_eq!(map[&(layout.group_base(0) + 1)], BlockType::InodeBitmap);
        assert_eq!(map[&layout.inode_table(0)], BlockType::Inode);
        // The root directory's data block.
        assert_eq!(map[&layout.data_start(0)], BlockType::Dir);
    }
}

//! Property tests of the failure-policy engine's two hard guarantees:
//! a `Retry` rung's budget **strictly bounds** the number of device
//! attempts per request under *any* fault plan, and the backoff
//! schedule is deterministic and monotone.
//!
//! Runs on the in-tree `iron-testkit` harness: every case is generated
//! from a reported seed, so any failure reruns deterministically with
//! `IRON_TESTKIT_SEED=<seed> cargo test -q <test_name>`.

use iron_blockdev::{BlockDevice, MemDisk, RetryConfig, StackBuilder};
use iron_core::recover::{Backoff, FailurePolicyTable, PolicyHandle, RecoveryAction};
use iron_core::{Block, BlockAddr, FaultKind};
use iron_faultinject::{FaultPlan, FaultSpec, FaultStackExt, FaultTarget};
use iron_testkit::gen::{self, Gen};
use iron_testkit::prop::{check, Config};

const DISK_BLOCKS: u64 = 32;

/// One fault in a generated plan: kind, victim address, and depth
/// (`None` = sticky, `Some(n)` = clears after `n` failures).
#[derive(Clone, Debug)]
struct GenFault {
    write: bool,
    addr: u64,
    depth: Option<u32>,
}

fn fault_gen() -> impl Gen<Value = GenFault> {
    (
        gen::bool_any(),
        gen::u64_in(0..DISK_BLOCKS),
        gen::weighted(vec![
            (1, gen::just(None).boxed()),
            (3, gen::u64_in(0..8).map(|n| Some(n as u32 + 1)).boxed()),
        ]),
    )
        .map(|(write, addr, depth)| GenFault { write, addr, depth })
}

#[derive(Clone, Debug)]
enum Op {
    Read(u64),
    Write(u64, u8),
}

fn op_gen() -> impl Gen<Value = Op> {
    gen::weighted(vec![
        (1, gen::u64_in(0..DISK_BLOCKS).map(Op::Read).boxed()),
        (
            1,
            (gen::u64_in(0..DISK_BLOCKS), gen::u8_any())
                .map(|(a, f)| Op::Write(a, f))
                .boxed(),
        ),
    ])
}

fn retry_policy(budget: u32, backoff: Backoff) -> PolicyHandle {
    PolicyHandle::new(FailurePolicyTable::with_default(vec![
        RecoveryAction::Retry { budget, backoff },
        RecoveryAction::Propagate,
    ]))
}

/// Under any generated fault plan and operation sequence, every request
/// issues at most `1 + budget` device attempts — no matter how the
/// faults land, clear, or overlap.
#[test]
fn retry_budget_strictly_bounds_attempts_under_any_fault_plan() {
    let cases = (
        gen::vec_of(fault_gen(), 0..6),
        gen::vec_of(op_gen(), 1..40),
        gen::u64_in(0..5),
    )
        .map(|(faults, ops, budget)| (faults, ops, budget as u32));
    check(
        "retry_budget_strictly_bounds_attempts_under_any_fault_plan",
        Config::cases(120),
        &cases,
        |(faults, ops, budget)| {
            let plan = FaultPlan::new();
            let ctl = plan.controller();
            for f in faults {
                let kind = if f.write {
                    FaultKind::WriteError
                } else {
                    FaultKind::ReadError
                };
                let target = FaultTarget::Addr(BlockAddr(f.addr));
                ctl.inject(match f.depth {
                    None => FaultSpec::sticky(kind, target),
                    Some(n) => FaultSpec::transient(kind, target, n),
                });
            }
            let snap = MemDisk::for_tests(DISK_BLOCKS);
            let clock = snap.clock();
            let policy = retry_policy(*budget, Backoff::none());
            let mut dev = StackBuilder::new(snap)
                .with_timed_faults(plan, clock.clone())
                .with_retry(RetryConfig::new(policy, clock))
                .build();
            let stats = dev.stats();

            for op in ops {
                let before = stats.snapshot().attempts;
                let _ = match op {
                    Op::Read(a) => dev.read(BlockAddr(*a)).map(|_| ()),
                    Op::Write(a, f) => dev.write(BlockAddr(*a), &Block::filled(*f)),
                };
                let spent = stats.snapshot().attempts - before;
                assert!(
                    spent <= 1 + u64::from(*budget),
                    "request issued {spent} attempts, budget allows {}",
                    1 + budget
                );
                assert!(spent >= 1, "every request issues at least one attempt");
            }
        },
    );
}

/// The backoff schedule is a pure function of (base, factor, cap): the
/// same parameters always yield the same delays (determinism), the
/// sequence never decreases (monotonicity), and no delay exceeds the cap.
#[test]
fn backoff_schedule_is_deterministic_and_monotone() {
    let cases = (
        gen::u64_in(0..100_000),
        gen::u64_in(1..6),
        gen::u64_in(1..10_000_000),
        gen::u64_in(1..40),
    )
        .map(|(base, factor, cap, attempts)| (base, factor as u32, cap, attempts as u32));
    check(
        "backoff_schedule_is_deterministic_and_monotone",
        Config::cases(200),
        &cases,
        |(base, factor, cap, attempts)| {
            let a = Backoff::exponential(*base, *factor, *cap);
            let b = Backoff::exponential(*base, *factor, *cap);
            assert_eq!(a.delay_ns(0), 0, "no delay before the first re-issue");
            let mut prev = 0u64;
            for k in 1..=*attempts {
                let d = a.delay_ns(k);
                assert_eq!(d, b.delay_ns(k), "schedule must be deterministic");
                assert!(d <= *cap, "delay {d} exceeds cap {cap}");
                // Monotone until the cap flattens the curve.
                assert!(d >= prev.min(*cap), "delay shrank: {prev} -> {d}");
                prev = d;
            }
        },
    );
}

/// Two identical runs over the same fault plan charge bit-identical
/// backoff to the simulated clock — the engine has no hidden
/// nondeterminism for the crash enumerator or campaign to trip over.
#[test]
fn backoff_clock_charges_are_bit_identical_across_runs() {
    let cases = (
        gen::vec_of(fault_gen(), 1..5),
        gen::vec_of(op_gen(), 1..30),
        gen::u64_in(1..5),
        gen::u64_in(1..50_000),
    )
        .map(|(faults, ops, budget, base)| (faults, ops, budget as u32, base));
    check(
        "backoff_clock_charges_are_bit_identical_across_runs",
        Config::cases(60),
        &cases,
        |(faults, ops, budget, base)| {
            let run = || {
                let plan = FaultPlan::new();
                let ctl = plan.controller();
                for f in faults {
                    let kind = if f.write {
                        FaultKind::WriteError
                    } else {
                        FaultKind::ReadError
                    };
                    let target = FaultTarget::Addr(BlockAddr(f.addr));
                    ctl.inject(match f.depth {
                        None => FaultSpec::sticky(kind, target),
                        Some(n) => FaultSpec::transient(kind, target, n),
                    });
                }
                let snap = MemDisk::for_tests(DISK_BLOCKS);
                let clock = snap.clock();
                let policy = retry_policy(*budget, Backoff::exponential(*base, 2, 1_000_000));
                let mut dev = StackBuilder::new(snap)
                    .with_timed_faults(plan, clock.clone())
                    .with_retry(RetryConfig::new(policy.clone(), clock.clone()))
                    .build();
                for op in ops {
                    let _ = match op {
                        Op::Read(a) => dev.read(BlockAddr(*a)).map(|_| ()),
                        Op::Write(a, f) => dev.write(BlockAddr(*a), &Block::filled(*f)),
                    };
                }
                (clock.now_ns(), policy.counters().snapshot())
            };
            assert_eq!(run(), run(), "identical runs must charge identically");
        },
    );
}

//! Monte-Carlo reliability companion for the §3.2 detection-frequency
//! discussion.
//!
//! Latent sector errors are *latent* precisely because nobody reads the
//! block: the error sits undetected until the next access. Disk scrubbing
//! (eager detection) bounds that window at the scrub period. This module
//! simulates error arrival and detection under both strategies and reports
//! (a) the mean detection latency and (b) how often a *second* error strikes
//! the same redundancy group before the first was repaired — the double-
//! fault event that defeats single-copy redundancy (the paper's motivation
//! for scrubbing in RAID systems, and for the placement rules of ixt3's
//! replicas).

/// Parameters of a reliability simulation.
#[derive(Clone, Copy, Debug)]
pub struct ReliabilityParams {
    /// Number of blocks on the simulated disk.
    pub num_blocks: u64,
    /// Expected latent-error arrivals per block per hour.
    pub error_rate_per_block_hour: f64,
    /// Fraction of the disk the workload touches per hour (lazy detection).
    pub access_fraction_per_hour: f64,
    /// Scrub period in hours; `None` disables scrubbing.
    pub scrub_period_hours: Option<f64>,
    /// Blocks per redundancy group (e.g. a block and its replica ⇒ 2).
    pub redundancy_group: u64,
    /// Simulated duration in hours.
    pub duration_hours: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ReliabilityParams {
    fn default() -> Self {
        ReliabilityParams {
            num_blocks: 1 << 20,
            error_rate_per_block_hour: 1e-7,
            access_fraction_per_hour: 0.01,
            scrub_period_hours: None,
            redundancy_group: 2,
            duration_hours: 10_000.0,
            seed: 42,
        }
    }
}

/// Results of a reliability simulation.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ReliabilityReport {
    /// Latent errors that arrived.
    pub errors_arrived: u64,
    /// Errors detected (by access or scrub) within the simulation.
    pub errors_detected: u64,
    /// Mean hours from arrival to detection, over detected errors.
    pub mean_detection_latency_hours: f64,
    /// Double faults: a second error arrived in a group that already had an
    /// undetected (hence unrepaired) error.
    pub double_faults: u64,
}

/// SplitMix64 — tiny deterministic RNG, sufficient for Monte-Carlo here.
#[derive(Clone, Debug)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Poisson sample via inversion (small means only).
    fn poisson(&mut self, mean: f64) -> u64 {
        if mean <= 0.0 {
            return 0;
        }
        let limit = (-mean).exp();
        let mut product = self.next_f64();
        let mut count = 0u64;
        while product > limit {
            count += 1;
            product *= self.next_f64();
        }
        count
    }
}

/// Run the simulation in one-hour steps.
pub fn simulate(params: &ReliabilityParams) -> ReliabilityReport {
    let mut rng = SplitMix64(params.seed);
    let mut report = ReliabilityReport::default();
    // Undetected errors: (block, arrival_hour).
    let mut undetected: Vec<(u64, f64)> = Vec::new();
    let mut latency_sum = 0.0;

    let steps = params.duration_hours.ceil() as u64;
    let arrivals_per_hour = params.error_rate_per_block_hour * params.num_blocks as f64;

    for hour in 0..steps {
        let t = hour as f64;

        // Arrivals this hour.
        let n = rng.poisson(arrivals_per_hour);
        for _ in 0..n {
            let block = rng.next_u64() % params.num_blocks;
            let group = block / params.redundancy_group.max(1);
            let clash = undetected
                .iter()
                .any(|(b, _)| *b / params.redundancy_group.max(1) == group && *b != block);
            if clash {
                report.double_faults += 1;
            }
            undetected.push((block, t));
            report.errors_arrived += 1;
        }

        // Lazy detection: each undetected error is noticed this hour with
        // probability = fraction of disk accessed.
        let p_access = params.access_fraction_per_hour.clamp(0.0, 1.0);
        // Eager detection: a scrub pass completes at multiples of the period.
        let scrub_now = params
            .scrub_period_hours
            .is_some_and(|p| p > 0.0 && hour > 0 && (t / p).fract() < 1.0 / p);

        undetected.retain(|(_, arrived)| {
            let detected = scrub_now || rng.next_f64() < p_access;
            if detected {
                report.errors_detected += 1;
                latency_sum += t - arrived + 0.5;
                false
            } else {
                true
            }
        });
    }

    if report.errors_detected > 0 {
        report.mean_detection_latency_hours = latency_sum / report.errors_detected as f64;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ReliabilityParams {
        ReliabilityParams {
            num_blocks: 1 << 16,
            error_rate_per_block_hour: 5e-6,
            access_fraction_per_hour: 0.002,
            scrub_period_hours: None,
            redundancy_group: 2,
            duration_hours: 5_000.0,
            seed: 7,
        }
    }

    #[test]
    fn errors_arrive_at_expected_order_of_magnitude() {
        let r = simulate(&base());
        let expected = 5e-6 * (1u64 << 16) as f64 * 5_000.0;
        assert!(r.errors_arrived > (expected * 0.5) as u64);
        assert!(r.errors_arrived < (expected * 1.5) as u64);
    }

    #[test]
    fn scrubbing_shortens_detection_latency() {
        let lazy = simulate(&base());
        let scrubbed = simulate(&ReliabilityParams {
            scrub_period_hours: Some(24.0),
            ..base()
        });
        assert!(lazy.mean_detection_latency_hours > 0.0);
        assert!(
            scrubbed.mean_detection_latency_hours < lazy.mean_detection_latency_hours / 2.0,
            "scrubbing ({:.1}h) should beat lazy ({:.1}h)",
            scrubbed.mean_detection_latency_hours,
            lazy.mean_detection_latency_hours
        );
    }

    #[test]
    fn scrubbing_reduces_double_faults() {
        // Crank the error rate so double faults are common when lazy.
        let hot = ReliabilityParams {
            error_rate_per_block_hour: 1e-4,
            access_fraction_per_hour: 0.0005,
            duration_hours: 2_000.0,
            ..base()
        };
        let lazy = simulate(&hot);
        let scrubbed = simulate(&ReliabilityParams {
            scrub_period_hours: Some(12.0),
            ..hot
        });
        assert!(
            lazy.double_faults > 0,
            "test needs double faults to compare"
        );
        assert!(
            scrubbed.double_faults < lazy.double_faults,
            "scrubbed {} !< lazy {}",
            scrubbed.double_faults,
            lazy.double_faults
        );
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(simulate(&base()), simulate(&base()));
    }

    #[test]
    fn zero_rate_produces_no_errors() {
        let r = simulate(&ReliabilityParams {
            error_rate_per_block_hour: 0.0,
            ..base()
        });
        assert_eq!(r.errors_arrived, 0);
        assert_eq!(r.double_faults, 0);
    }
}

//! [`FaultyDisk`]: the pseudo-device driver that enacts a [`FaultPlan`].

use iron_blockdev::{BlockDevice, DiskError, DiskResult, IoOutcome, IoTrace, RawAccess};
use iron_core::model::CorruptionStyle;
use iron_core::{Block, BlockAddr, BlockTag, FaultKind, IoKind, SimClock, BLOCK_SIZE};

use crate::plan::{FaultController, FaultPlan};

/// Floor on the nominal service time used when enacting a
/// [`FaultKind::Slow`] fault: an instant-geometry disk charges ~0 ns per
/// request, so the multiplier is applied to at least this much (0.1 sim
/// ms) to keep slowness observable on any stack.
pub const SLOW_NOMINAL_NS: u64 = 100_000;

/// Sim time charged by a [`FaultKind::Hang`] fault: the request
/// "completes", but only after 30 simulated seconds — far past any
/// reasonable I/O deadline. A stack without deadlines stalls (in sim
/// time); one with deadlines sees a timeout.
pub const HANG_STALL_NS: u64 = 30_000_000_000;

/// A block device that injects faults per a shared [`FaultPlan`].
///
/// Wraps any inner device; healthy requests pass through (and are charged
/// the inner device's service time). Injected read/write failures return the
/// appropriate [`DiskError`] *without* touching the medium — matching §4.2:
/// "To emulate a block failure, we simply return the appropriate error code
/// and do not issue the operation to the underlying disk." Corruption is
/// applied to data read from the medium before returning it.
pub struct FaultyDisk<D> {
    inner: D,
    plan: FaultPlan,
    trace: IoTrace,
    /// Seed for deterministic noise fabrication.
    noise_seed: u64,
    /// Clock used to enact latency faults (`Slow`/`Hang`). When absent,
    /// latency faults pass the request through without charging time.
    clock: Option<SimClock>,
}

impl<D: BlockDevice + RawAccess> FaultyDisk<D> {
    /// Wrap `inner` with a fresh (empty) fault plan.
    pub fn new(inner: D) -> Self {
        FaultyDisk {
            inner,
            plan: FaultPlan::new(),
            trace: IoTrace::new(),
            noise_seed: 0x1234_5678_9ABC_DEF0,
            clock: None,
        }
    }

    /// Wrap `inner` with an existing plan (shared with a controller).
    pub fn with_plan(inner: D, plan: FaultPlan) -> Self {
        FaultyDisk {
            inner,
            plan,
            trace: IoTrace::new(),
            noise_seed: 0x1234_5678_9ABC_DEF0,
            clock: None,
        }
    }

    /// Attach the sim clock that latency faults (`Slow`/`Hang`) charge
    /// their extra service time against. Use the same clock the inner
    /// timed device advances, so deadlines measured above this layer see
    /// the slowness.
    pub fn with_clock(mut self, clock: SimClock) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Enact a latency fault around an inner operation: run `op`, then
    /// charge the extra sim time the fault demands.
    fn slow_io<T>(
        &mut self,
        kind: FaultKind,
        op: impl FnOnce(&mut D) -> DiskResult<T>,
    ) -> DiskResult<T> {
        let start = self.clock.as_ref().map(SimClock::now_ns);
        let out = op(&mut self.inner);
        if let (Some(clock), Some(start)) = (self.clock.as_ref(), start) {
            let extra = match kind {
                FaultKind::Slow { multiplier } => {
                    let nominal = clock.elapsed_since(start).max(SLOW_NOMINAL_NS);
                    nominal.saturating_mul(u64::from(multiplier.max(1) - 1))
                }
                FaultKind::Hang => HANG_STALL_NS,
                _ => 0,
            };
            clock.advance_ns(extra);
        }
        out
    }

    /// Controller handle for injecting faults while the file system owns
    /// this device.
    pub fn controller(&self) -> FaultController {
        self.plan.controller()
    }

    /// The trace of record for fingerprinting: includes failed and silently
    /// corrupted requests.
    pub fn trace(&self) -> IoTrace {
        self.trace.clone()
    }

    /// Access the wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Mutable access to the wrapped device.
    pub fn inner_mut(&mut self) -> &mut D {
        &mut self.inner
    }

    /// Fabricate corrupted contents for `addr` per `style`, based on the
    /// block actually on the medium.
    fn corrupt(&mut self, addr: BlockAddr, style: CorruptionStyle) -> Block {
        match style {
            CorruptionStyle::RandomNoise => {
                let mut b = Block::zeroed();
                // xorshift64* keyed by (seed, addr): deterministic per block,
                // different across blocks.
                let mut x = self.noise_seed ^ (addr.0.wrapping_mul(0x9E37_79B9_7F4A_7C15)) | 1;
                for chunk in b.chunks_mut(8) {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let bytes = x.to_le_bytes();
                    let n = chunk.len();
                    chunk.copy_from_slice(&bytes[..n]);
                }
                b
            }
            CorruptionStyle::Zeroed => Block::zeroed(),
            CorruptionStyle::BitFlip { offset, len } => {
                let mut b = self.inner.peek(addr);
                let end = (offset + len).min(BLOCK_SIZE);
                for byte in &mut b[offset.min(BLOCK_SIZE)..end] {
                    *byte = !*byte;
                }
                b
            }
            CorruptionStyle::Field { offset, value } => {
                let mut b = self.inner.peek(addr);
                if offset + 4 <= BLOCK_SIZE {
                    b.put_u32(offset, value);
                }
                b
            }
            CorruptionStyle::MisdirectedFrom(src) => self.inner.peek(src),
        }
    }
}

impl<D: BlockDevice + RawAccess> BlockDevice for FaultyDisk<D> {
    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn read_tagged(&mut self, addr: BlockAddr, tag: BlockTag) -> DiskResult<Block> {
        match self.plan.check(IoKind::Read, addr, tag) {
            Some(FaultKind::WholeDisk) => {
                self.trace
                    .record(IoKind::Read, addr, tag, IoOutcome::Error, 0);
                Err(DiskError::DeviceFailed)
            }
            Some(FaultKind::ReadError) => {
                self.trace
                    .record(IoKind::Read, addr, tag, IoOutcome::Error, 0);
                Err(DiskError::Io {
                    addr,
                    kind: IoKind::Read,
                })
            }
            Some(FaultKind::Corruption(style)) => {
                // The device "succeeds": charge normal service time, then
                // hand back bad bytes.
                let _ = self.inner.read_tagged(addr, tag)?;
                let bad = self.corrupt(addr, style);
                self.trace
                    .record(IoKind::Read, addr, tag, IoOutcome::SilentlyCorrupted, 0);
                Ok(bad)
            }
            Some(kind @ (FaultKind::Slow { .. } | FaultKind::Hang)) => {
                // The data is correct and no error code is produced — the
                // fault lives purely in the time domain.
                let block = self.slow_io(kind, |d| d.read_tagged(addr, tag))?;
                self.trace.record(IoKind::Read, addr, tag, IoOutcome::Ok, 0);
                Ok(block)
            }
            Some(FaultKind::WriteError) | None => {
                let block = self.inner.read_tagged(addr, tag)?;
                self.trace.record(IoKind::Read, addr, tag, IoOutcome::Ok, 0);
                Ok(block)
            }
        }
    }

    fn write_tagged(&mut self, addr: BlockAddr, block: &Block, tag: BlockTag) -> DiskResult<()> {
        match self.plan.check(IoKind::Write, addr, tag) {
            Some(FaultKind::WholeDisk) => {
                self.trace
                    .record(IoKind::Write, addr, tag, IoOutcome::Error, 0);
                Err(DiskError::DeviceFailed)
            }
            Some(FaultKind::WriteError) => {
                self.trace
                    .record(IoKind::Write, addr, tag, IoOutcome::Error, 0);
                Err(DiskError::Io {
                    addr,
                    kind: IoKind::Write,
                })
            }
            Some(kind @ (FaultKind::Slow { .. } | FaultKind::Hang)) => {
                self.slow_io(kind, |d| d.write_tagged(addr, block, tag))?;
                self.trace
                    .record(IoKind::Write, addr, tag, IoOutcome::Ok, 0);
                Ok(())
            }
            _ => {
                self.inner.write_tagged(addr, block, tag)?;
                self.trace
                    .record(IoKind::Write, addr, tag, IoOutcome::Ok, 0);
                Ok(())
            }
        }
    }

    fn barrier(&mut self) -> DiskResult<()> {
        self.inner.barrier()
    }

    fn flush(&mut self) -> DiskResult<()> {
        self.inner.flush()
    }

    fn readahead(&mut self, start: BlockAddr, len: u64) {
        // A hint is not an access: no fault check, no trace record. Faults
        // fire on the real tagged reads that follow.
        self.inner.readahead(start, len);
    }
}

impl<D: RawAccess> RawAccess for FaultyDisk<D> {
    fn peek(&self, addr: BlockAddr) -> Block {
        self.inner.peek(addr)
    }

    fn poke(&mut self, addr: BlockAddr, block: &Block) {
        self.inner.poke(addr, block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{FaultSpec, FaultTarget};
    use iron_blockdev::MemDisk;
    use iron_core::Transience;

    fn setup() -> (FaultyDisk<MemDisk>, FaultController) {
        let mut inner = MemDisk::for_tests(64);
        for i in 0..64u64 {
            inner.poke(BlockAddr(i), &Block::filled(i as u8 + 1));
        }
        let disk = FaultyDisk::new(inner);
        let ctl = disk.controller();
        (disk, ctl)
    }

    #[test]
    fn passthrough_when_no_faults() {
        let (mut disk, _ctl) = setup();
        assert_eq!(disk.read(BlockAddr(3)).unwrap(), Block::filled(4));
        disk.write(BlockAddr(3), &Block::filled(0xFF)).unwrap();
        assert_eq!(disk.read(BlockAddr(3)).unwrap(), Block::filled(0xFF));
    }

    #[test]
    fn read_error_returns_error_code_and_leaves_medium() {
        let (mut disk, ctl) = setup();
        ctl.inject(FaultSpec::sticky(
            FaultKind::ReadError,
            FaultTarget::Addr(BlockAddr(7)),
        ));
        assert_eq!(
            disk.read(BlockAddr(7)),
            Err(DiskError::Io {
                addr: BlockAddr(7),
                kind: IoKind::Read
            })
        );
        // Medium untouched; peek still sees the original contents.
        assert_eq!(disk.peek(BlockAddr(7)), Block::filled(8));
    }

    #[test]
    fn write_error_does_not_reach_medium() {
        let (mut disk, ctl) = setup();
        ctl.inject(FaultSpec::sticky(
            FaultKind::WriteError,
            FaultTarget::Addr(BlockAddr(9)),
        ));
        let r = disk.write(BlockAddr(9), &Block::filled(0xEE));
        assert!(r.is_err());
        assert_eq!(
            disk.peek(BlockAddr(9)),
            Block::filled(10),
            "medium unchanged"
        );
        // Reads of the same block still succeed.
        assert_eq!(disk.read(BlockAddr(9)).unwrap(), Block::filled(10));
    }

    #[test]
    fn transient_read_error_clears_for_retry() {
        let (mut disk, ctl) = setup();
        ctl.inject(FaultSpec::transient(
            FaultKind::ReadError,
            FaultTarget::Addr(BlockAddr(2)),
            1,
        ));
        assert!(disk.read(BlockAddr(2)).is_err());
        assert_eq!(disk.read(BlockAddr(2)).unwrap(), Block::filled(3));
    }

    #[test]
    fn corruption_returns_success_with_bad_data() {
        let (mut disk, ctl) = setup();
        ctl.inject(FaultSpec::sticky(
            FaultKind::Corruption(CorruptionStyle::RandomNoise),
            FaultTarget::Addr(BlockAddr(5)),
        ));
        let got = disk.read(BlockAddr(5)).unwrap();
        assert_ne!(got, Block::filled(6), "data must be corrupted");
        // Deterministic: the same corruption every time (sticky).
        assert_eq!(disk.read(BlockAddr(5)).unwrap(), got);
        // Trace knows it was silently corrupted even though the FS saw Ok.
        let last = disk.trace().events().pop().unwrap();
        assert_eq!(last.outcome, IoOutcome::SilentlyCorrupted);
    }

    #[test]
    fn field_corruption_preserves_rest_of_block() {
        let (mut disk, ctl) = setup();
        ctl.inject(FaultSpec::sticky(
            FaultKind::Corruption(CorruptionStyle::Field {
                offset: 16,
                value: 0xDEAD_BEEF,
            }),
            FaultTarget::Addr(BlockAddr(4)),
        ));
        let got = disk.read(BlockAddr(4)).unwrap();
        assert_eq!(got.get_u32(16), 0xDEAD_BEEF);
        assert_eq!(got[0], 5, "bytes outside the field are intact");
        assert_eq!(got[20], 5);
    }

    #[test]
    fn bitflip_corruption_inverts_range() {
        let (mut disk, ctl) = setup();
        ctl.inject(FaultSpec::sticky(
            FaultKind::Corruption(CorruptionStyle::BitFlip { offset: 0, len: 2 }),
            FaultTarget::Addr(BlockAddr(1)),
        ));
        let got = disk.read(BlockAddr(1)).unwrap();
        assert_eq!(got[0], !2u8);
        assert_eq!(got[1], !2u8);
        assert_eq!(got[2], 2);
    }

    #[test]
    fn misdirected_corruption_returns_other_block() {
        let (mut disk, ctl) = setup();
        ctl.inject(FaultSpec::sticky(
            FaultKind::Corruption(CorruptionStyle::MisdirectedFrom(BlockAddr(20))),
            FaultTarget::Addr(BlockAddr(10)),
        ));
        assert_eq!(disk.read(BlockAddr(10)).unwrap(), Block::filled(21));
    }

    #[test]
    fn type_aware_fault_hits_only_tagged_io() {
        let (mut disk, ctl) = setup();
        ctl.inject(FaultSpec::sticky(
            FaultKind::ReadError,
            FaultTarget::Tag(BlockTag("super")),
        ));
        assert!(disk.read_tagged(BlockAddr(0), BlockTag("data")).is_ok());
        assert!(disk.read_tagged(BlockAddr(0), BlockTag("super")).is_err());
    }

    #[test]
    fn whole_disk_failure_fails_everything() {
        let (mut disk, ctl) = setup();
        ctl.inject(FaultSpec {
            kind: FaultKind::WholeDisk,
            transience: Transience::Sticky,
            target: FaultTarget::Addr(BlockAddr(0)),
            locality: iron_core::model::Locality::Single,
        });
        assert_eq!(disk.read(BlockAddr(0)), Err(DiskError::DeviceFailed));
        assert_eq!(
            disk.write(BlockAddr(30), &Block::zeroed()),
            Err(DiskError::DeviceFailed)
        );
    }

    #[test]
    fn flush_forwards_as_flush_not_barrier() {
        // Audit regression: the fault layer must not downgrade a
        // durability flush to an ordering barrier for the stack below.
        let (mut disk, _ctl) = setup();
        disk.flush().unwrap();
        let s = disk.inner().stats();
        assert_eq!(s.flushes, 1);
        assert_eq!(s.barriers, 0);
        disk.barrier().unwrap();
        let s = disk.inner().stats();
        assert_eq!(s.flushes, 1);
        assert_eq!(s.barriers, 1);
    }

    #[test]
    fn slow_fault_charges_multiplied_service_time() {
        let inner = MemDisk::for_tests(64);
        let clock = inner.clock();
        let mut disk = FaultyDisk::new(inner).with_clock(clock.clone());
        let ctl = disk.controller();
        ctl.inject(FaultSpec::sticky(
            FaultKind::Slow { multiplier: 8 },
            FaultTarget::Addr(BlockAddr(3)),
        ));
        let before = clock.now_ns();
        let got = disk.read(BlockAddr(3)).unwrap();
        assert_eq!(got, Block::zeroed(), "data is still correct");
        let slow_elapsed = clock.elapsed_since(before);
        // Instant geometry charges ~0 nominal, so the extra is the floor
        // times (multiplier - 1).
        assert_eq!(slow_elapsed, 7 * SLOW_NOMINAL_NS);
        // Other blocks are unaffected.
        let before = clock.now_ns();
        disk.read(BlockAddr(4)).unwrap();
        assert_eq!(clock.elapsed_since(before), 0);
        // Trace sees a plain Ok — no error code anywhere.
        let events = disk.trace().events();
        assert!(events.iter().all(|e| e.outcome == IoOutcome::Ok));
    }

    #[test]
    fn hang_fault_stalls_for_the_full_stall_time() {
        let inner = MemDisk::for_tests(64);
        let clock = inner.clock();
        let mut disk = FaultyDisk::new(inner).with_clock(clock.clone());
        let ctl = disk.controller();
        ctl.inject(FaultSpec::sticky(
            FaultKind::Hang,
            FaultTarget::Addr(BlockAddr(5)),
        ));
        let before = clock.now_ns();
        disk.write(BlockAddr(5), &Block::filled(1)).unwrap();
        assert_eq!(clock.elapsed_since(before), HANG_STALL_NS);
        // The write did land: a hang is not a lost write, just a stall.
        assert_eq!(disk.peek(BlockAddr(5)), Block::filled(1));
    }

    #[test]
    fn latency_faults_without_a_clock_pass_through() {
        let (mut disk, ctl) = setup();
        ctl.inject(FaultSpec::sticky(
            FaultKind::Slow { multiplier: 1000 },
            FaultTarget::Addr(BlockAddr(1)),
        ));
        ctl.inject(FaultSpec::sticky(
            FaultKind::Hang,
            FaultTarget::Addr(BlockAddr(2)),
        ));
        assert_eq!(disk.read(BlockAddr(1)).unwrap(), Block::filled(2));
        assert_eq!(disk.read(BlockAddr(2)).unwrap(), Block::filled(3));
    }

    #[test]
    fn trace_records_errors() {
        let (mut disk, ctl) = setup();
        ctl.inject(FaultSpec::sticky(
            FaultKind::ReadError,
            FaultTarget::Addr(BlockAddr(7)),
        ));
        let _ = disk.read(BlockAddr(6));
        let _ = disk.read(BlockAddr(7));
        let _ = disk.read(BlockAddr(7)); // a "retry"
        let trace = disk.trace();
        assert_eq!(trace.count_requests(BlockAddr(7), IoKind::Read), 2);
        let events = trace.events();
        assert_eq!(events[0].outcome, IoOutcome::Ok);
        assert_eq!(events[1].outcome, IoOutcome::Error);
        assert_eq!(events[2].outcome, IoOutcome::Error);
    }
}

//! Fault plans: what to fail, when, and how.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use iron_core::model::Locality;
use iron_core::{BlockAddr, BlockTag, FaultKind, IoKind, Transience};

/// Process-wide plan-identity counter (see [`FaultId`]).
static NEXT_PLAN_ID: AtomicU64 = AtomicU64::new(1);

/// What a fault is aimed at.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultTarget {
    /// A specific block address.
    Addr(BlockAddr),
    /// Any block carrying this type tag — this is *type-aware* injection.
    /// The first matching access anchors the fault's locality.
    Tag(BlockTag),
    /// The `nth` (0-based) access carrying this tag. Lets a campaign fail,
    /// say, the third journal-data write of a transaction.
    TagNth {
        /// The targeted type tag.
        tag: BlockTag,
        /// Which matching access (0-based) arms the fault.
        nth: u32,
    },
}

/// A complete fault specification.
#[derive(Clone, Copy, Debug)]
pub struct FaultSpec {
    /// How the fault manifests.
    pub kind: FaultKind,
    /// Sticky or transient.
    pub transience: Transience,
    /// What it targets.
    pub target: FaultTarget,
    /// Spatial extent (anchored at the target / first matching access).
    pub locality: Locality,
}

impl FaultSpec {
    /// A sticky, single-block fault of `kind` targeting `target` — the
    /// common case in fingerprinting campaigns.
    pub fn sticky(kind: FaultKind, target: FaultTarget) -> Self {
        FaultSpec {
            kind,
            transience: Transience::Sticky,
            target,
            locality: Locality::Single,
        }
    }

    /// A transient fault that fires `n` times and then clears.
    pub fn transient(kind: FaultKind, target: FaultTarget, n: u32) -> Self {
        FaultSpec {
            kind,
            transience: Transience::Transient(n),
            target,
            locality: Locality::Single,
        }
    }
}

/// Handle naming an injected fault.
///
/// Ids are *plan-scoped*: the handle records which [`FaultPlan`] issued it,
/// so two plans hosting identical specs (e.g. one per replica of a
/// mirrored volume) hand out ids that never compare equal and cannot be
/// used interchangeably. Before this, `FaultId` was a bare per-plan index —
/// replica 0's fault #0 aliased replica 1's fault #0, and a harness that
/// mixed controllers up would silently arm/inspect the wrong replica.
/// Controller operations now panic on a foreign plan's id instead.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FaultId {
    /// The issuing plan's unique identity.
    plan: u64,
    /// Index within that plan.
    idx: usize,
}

#[derive(Debug)]
struct FaultEntry {
    spec: FaultSpec,
    armed: bool,
    /// Times the fault has fired.
    fired: u32,
    /// Tag-matching accesses seen so far (for `TagNth`).
    tag_seen: u32,
    /// Address of the first access this fault fired on (locality anchor for
    /// tag targets, and useful to the campaign for reporting).
    anchor: Option<BlockAddr>,
}

#[derive(Debug, Default)]
struct PlanState {
    faults: Vec<FaultEntry>,
    whole_disk_failed: bool,
}

/// The shared fault plan consulted by [`crate::FaultyDisk`] on every request.
///
/// Cloning shares state: the test harness keeps one handle (via
/// [`FaultController`]) while the device under the file system keeps another.
/// Every plan carries a process-unique identity, stamped into each
/// [`FaultId`] it issues, so ids stay per-plan-addressable across the
/// replicas of a multi-device volume.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    id: u64,
    state: Arc<Mutex<PlanState>>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            id: NEXT_PLAN_ID.fetch_add(1, Ordering::Relaxed),
            state: Arc::new(Mutex::new(PlanState::default())),
        }
    }
}

impl FaultPlan {
    /// A new, empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// A controller handle for this plan.
    pub fn controller(&self) -> FaultController {
        FaultController { plan: self.clone() }
    }

    /// Decide whether a request should be failed/corrupted.
    ///
    /// Returns the kind of the *first* matching armed fault, after updating
    /// per-fault counters. `None` means the request passes through.
    pub(crate) fn check(&self, io: IoKind, addr: BlockAddr, tag: BlockTag) -> Option<FaultKind> {
        let mut st = self.state.lock().unwrap();
        if st.whole_disk_failed {
            return Some(FaultKind::WholeDisk);
        }
        let mut set_whole_disk = false;
        let mut result = None;
        for entry in &mut st.faults {
            if !entry.armed || !entry.spec.kind.applies_to(io) {
                // Even for disarmed/mismatched-direction faults we must keep
                // TagNth counting consistent? No: the paper's campaigns count
                // *matching accesses in the faulted direction*. Counting here
                // applies only to armed faults below.
                continue;
            }
            let matched = match entry.spec.target {
                FaultTarget::Addr(a) => entry.spec.locality.covers(a, addr),
                FaultTarget::Tag(t) => {
                    t == tag
                        || entry
                            .anchor
                            .is_some_and(|anch| entry.spec.locality.covers(anch, addr))
                }
                FaultTarget::TagNth { tag: t, nth } => {
                    if t == tag {
                        let idx = entry.tag_seen;
                        entry.tag_seen += 1;
                        idx == nth
                            || entry
                                .anchor
                                .is_some_and(|anch| entry.spec.locality.covers(anch, addr))
                    } else {
                        entry
                            .anchor
                            .is_some_and(|anch| entry.spec.locality.covers(anch, addr))
                    }
                }
            };
            if !matched {
                continue;
            }
            if !entry.spec.transience.fires(entry.fired) {
                continue;
            }
            entry.fired += 1;
            if entry.anchor.is_none() {
                entry.anchor = Some(addr);
            }
            if entry.spec.kind == FaultKind::WholeDisk {
                set_whole_disk = true;
            }
            result = Some(entry.spec.kind);
            break;
        }
        if set_whole_disk {
            st.whole_disk_failed = true;
        }
        result
    }
}

/// The harness-side handle for injecting and inspecting faults.
#[derive(Clone, Debug)]
pub struct FaultController {
    plan: FaultPlan,
}

impl FaultController {
    /// Reject ids issued by a different plan. A stale index into *this*
    /// plan (after [`Self::clear`]) is tolerated — the lookups below
    /// simply find nothing — but a foreign id is a harness bug: on a
    /// replicated volume it means the caller is about to arm or inspect
    /// the wrong replica's fault.
    fn check_owner(&self, id: FaultId) -> usize {
        assert_eq!(
            id.plan, self.plan.id,
            "FaultId issued by plan {} used on plan {}: fault ids are \
             plan-scoped (one plan per replica); use the controller of the \
             replica that injected the fault",
            id.plan, self.plan.id
        );
        id.idx
    }

    /// Inject a fault; it is armed immediately.
    pub fn inject(&self, spec: FaultSpec) -> FaultId {
        let mut st = self.plan.state.lock().unwrap();
        st.faults.push(FaultEntry {
            spec,
            armed: true,
            fired: 0,
            tag_seen: 0,
            anchor: None,
        });
        FaultId {
            plan: self.plan.id,
            idx: st.faults.len() - 1,
        }
    }

    /// Disarm a fault (it stays in the plan for inspection).
    pub fn disarm(&self, id: FaultId) {
        let idx = self.check_owner(id);
        if let Some(e) = self.plan.state.lock().unwrap().faults.get_mut(idx) {
            e.armed = false;
        }
    }

    /// Re-arm a previously disarmed fault. The entry keeps its identity
    /// and counters (`fired`, `anchor`), so a harness can disarm a fault
    /// across a setup phase (e.g. mount) and re-arm the *same* fault for
    /// the measured phase — disarmed faults see no accesses, so `TagNth`
    /// counting effectively restarts at re-arm time.
    pub fn arm(&self, id: FaultId) {
        let idx = self.check_owner(id);
        if let Some(e) = self.plan.state.lock().unwrap().faults.get_mut(idx) {
            e.armed = true;
        }
    }

    /// Remove every fault and clear whole-disk failure.
    pub fn clear(&self) {
        let mut st = self.plan.state.lock().unwrap();
        st.faults.clear();
        st.whole_disk_failed = false;
    }

    /// How many times the fault has fired.
    pub fn fire_count(&self, id: FaultId) -> u32 {
        let idx = self.check_owner(id);
        self.plan
            .state
            .lock()
            .unwrap()
            .faults
            .get(idx)
            .map_or(0, |e| e.fired)
    }

    /// True if the fault fired at least once.
    pub fn fired(&self, id: FaultId) -> bool {
        self.fire_count(id) > 0
    }

    /// The address the fault first fired on, if it has fired.
    pub fn anchor(&self, id: FaultId) -> Option<BlockAddr> {
        let idx = self.check_owner(id);
        self.plan
            .state
            .lock()
            .unwrap()
            .faults
            .get(idx)
            .and_then(|e| e.anchor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_fault_fires_only_on_target() {
        let plan = FaultPlan::new();
        let ctl = plan.controller();
        let id = ctl.inject(FaultSpec::sticky(
            FaultKind::ReadError,
            FaultTarget::Addr(BlockAddr(5)),
        ));
        assert_eq!(
            plan.check(IoKind::Read, BlockAddr(4), BlockTag::UNTYPED),
            None
        );
        assert_eq!(
            plan.check(IoKind::Read, BlockAddr(5), BlockTag::UNTYPED),
            Some(FaultKind::ReadError)
        );
        assert_eq!(
            plan.check(IoKind::Write, BlockAddr(5), BlockTag::UNTYPED),
            None,
            "read fault must not fire on writes"
        );
        assert_eq!(ctl.fire_count(id), 1);
        assert_eq!(ctl.anchor(id), Some(BlockAddr(5)));
    }

    #[test]
    fn tag_fault_is_type_aware() {
        let plan = FaultPlan::new();
        let ctl = plan.controller();
        let id = ctl.inject(FaultSpec::sticky(
            FaultKind::WriteError,
            FaultTarget::Tag(BlockTag("inode")),
        ));
        assert_eq!(
            plan.check(IoKind::Write, BlockAddr(1), BlockTag("data")),
            None
        );
        assert_eq!(
            plan.check(IoKind::Write, BlockAddr(2), BlockTag("inode")),
            Some(FaultKind::WriteError)
        );
        assert!(ctl.fired(id));
    }

    #[test]
    fn transient_fault_clears_after_n() {
        let plan = FaultPlan::new();
        let ctl = plan.controller();
        ctl.inject(FaultSpec::transient(
            FaultKind::ReadError,
            FaultTarget::Addr(BlockAddr(3)),
            2,
        ));
        assert!(plan
            .check(IoKind::Read, BlockAddr(3), BlockTag::UNTYPED)
            .is_some());
        assert!(plan
            .check(IoKind::Read, BlockAddr(3), BlockTag::UNTYPED)
            .is_some());
        assert!(
            plan.check(IoKind::Read, BlockAddr(3), BlockTag::UNTYPED)
                .is_none(),
            "transient×2 must clear after two fires"
        );
    }

    #[test]
    fn tag_nth_targets_a_specific_access() {
        let plan = FaultPlan::new();
        plan.controller().inject(FaultSpec::sticky(
            FaultKind::WriteError,
            FaultTarget::TagNth {
                tag: BlockTag("j-data"),
                nth: 1,
            },
        ));
        assert!(
            plan.check(IoKind::Write, BlockAddr(10), BlockTag("j-data"))
                .is_none(),
            "0th access passes"
        );
        assert!(
            plan.check(IoKind::Write, BlockAddr(11), BlockTag("j-data"))
                .is_some(),
            "1st access fails"
        );
        // Sticky + anchored: the same address keeps failing afterwards.
        assert!(plan
            .check(IoKind::Write, BlockAddr(11), BlockTag("j-data"))
            .is_some());
        // But other j-data blocks pass.
        assert!(plan
            .check(IoKind::Write, BlockAddr(12), BlockTag("j-data"))
            .is_none());
    }

    #[test]
    fn contiguous_locality_covers_scratch() {
        let plan = FaultPlan::new();
        plan.controller().inject(FaultSpec {
            kind: FaultKind::ReadError,
            transience: Transience::Sticky,
            target: FaultTarget::Addr(BlockAddr(100)),
            locality: Locality::Contiguous { len: 3 },
        });
        for a in 100..103 {
            assert!(
                plan.check(IoKind::Read, BlockAddr(a), BlockTag::UNTYPED)
                    .is_some(),
                "block {a} inside scratch"
            );
        }
        assert!(plan
            .check(IoKind::Read, BlockAddr(103), BlockTag::UNTYPED)
            .is_none());
        assert!(plan
            .check(IoKind::Read, BlockAddr(99), BlockTag::UNTYPED)
            .is_none());
    }

    #[test]
    fn whole_disk_failure_is_absorbing() {
        let plan = FaultPlan::new();
        plan.controller().inject(FaultSpec::sticky(
            FaultKind::WholeDisk,
            FaultTarget::Addr(BlockAddr(0)),
        ));
        assert_eq!(
            plan.check(IoKind::Read, BlockAddr(0), BlockTag::UNTYPED),
            Some(FaultKind::WholeDisk)
        );
        // Every subsequent request anywhere fails.
        assert_eq!(
            plan.check(IoKind::Write, BlockAddr(99), BlockTag::UNTYPED),
            Some(FaultKind::WholeDisk)
        );
    }

    #[test]
    fn disarm_and_clear() {
        let plan = FaultPlan::new();
        let ctl = plan.controller();
        let id = ctl.inject(FaultSpec::sticky(
            FaultKind::ReadError,
            FaultTarget::Addr(BlockAddr(1)),
        ));
        ctl.disarm(id);
        assert!(plan
            .check(IoKind::Read, BlockAddr(1), BlockTag::UNTYPED)
            .is_none());
        ctl.clear();
        assert_eq!(ctl.fire_count(id), 0);
    }

    #[test]
    fn rearm_keeps_identity_and_counters() {
        let plan = FaultPlan::new();
        let ctl = plan.controller();
        let id = ctl.inject(FaultSpec::sticky(
            FaultKind::ReadError,
            FaultTarget::TagNth {
                tag: BlockTag("inode"),
                nth: 0,
            },
        ));
        // Disarmed: accesses pass and are not counted toward TagNth.
        ctl.disarm(id);
        for a in 0..5 {
            assert!(plan
                .check(IoKind::Read, BlockAddr(a), BlockTag("inode"))
                .is_none());
        }
        assert!(!ctl.fired(id));
        // Re-armed: the same FaultId fires on the next matching access,
        // counting from scratch.
        ctl.arm(id);
        assert_eq!(
            plan.check(IoKind::Read, BlockAddr(7), BlockTag("inode")),
            Some(FaultKind::ReadError)
        );
        assert!(ctl.fired(id));
        assert_eq!(ctl.anchor(id), Some(BlockAddr(7)));
        // Disarm again: counters survive for post-run inspection.
        ctl.disarm(id);
        assert_eq!(ctl.fire_count(id), 1);
        assert_eq!(ctl.anchor(id), Some(BlockAddr(7)));
    }

    /// Multi-device regression: two plans hosting *identical* specs (one
    /// per replica of a mirrored volume) must hand out distinct, non-
    /// interchangeable ids. The old bare-index `FaultId` aliased them:
    /// replica 0's fault #0 compared equal to replica 1's fault #0, so a
    /// campaign inspecting "the" id could read the wrong replica's
    /// counters without noticing.
    #[test]
    fn fault_ids_are_plan_scoped_across_replicas() {
        let spec = FaultSpec::sticky(FaultKind::ReadError, FaultTarget::Tag(BlockTag("inode")));
        let plan_a = FaultPlan::new();
        let plan_b = FaultPlan::new();
        let ctl_a = plan_a.controller();
        let ctl_b = plan_b.controller();
        let id_a = ctl_a.inject(spec);
        let id_b = ctl_b.inject(spec);
        assert_ne!(id_a, id_b, "identical specs on two plans must not alias");

        // Fire replica B's fault only; replica A's counters stay zero and
        // each id reads its own plan's entry.
        assert!(plan_b
            .check(IoKind::Read, BlockAddr(9), BlockTag("inode"))
            .is_some());
        assert!(ctl_b.fired(id_b));
        assert!(!ctl_a.fired(id_a));
    }

    #[test]
    #[should_panic(expected = "plan-scoped")]
    fn foreign_fault_id_is_rejected() {
        let spec = FaultSpec::sticky(FaultKind::ReadError, FaultTarget::Addr(BlockAddr(1)));
        let plan_a = FaultPlan::new();
        let plan_b = FaultPlan::new();
        let id_a = plan_a.controller().inject(spec);
        // Arm through the wrong replica's controller: must panic, not
        // silently poke entry #0 of plan B.
        plan_b.controller().arm(id_a);
    }
}

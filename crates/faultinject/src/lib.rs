//! # iron-faultinject
//!
//! The paper's fault-injection layer (§4.2): "a software layer directly
//! beneath the file system (i.e., a pseudo-device driver). This layer
//! injects both block failures (on reads or writes) and block corruption
//! (on reads). … The software layer also models both transient and sticky
//! faults."
//!
//! [`FaultyDisk`] wraps any [`iron_blockdev::BlockDevice`] and consults a
//! shared [`FaultPlan`] on every request. Faults are *type-aware*: they can
//! target a block type tag (e.g. "the next `j-commit` write") rather than a
//! raw address, which is the key idea that makes fingerprinting efficient
//! (§4.2). Every request — including injected failures and silent
//! corruptions — is recorded in an [`iron_blockdev::IoTrace`] for the
//! inference step.
//!
//! The [`reliability`] module is a small Monte-Carlo companion: it simulates
//! latent-sector-error arrival over time and measures the detection window
//! with lazy (on-access) versus eager (scrubbing) detection — the §3.2
//! trade-off.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faulty;
pub mod plan;
pub mod reliability;
pub mod stack;

pub use faulty::{FaultyDisk, HANG_STALL_NS, SLOW_NOMINAL_NS};
pub use plan::{FaultController, FaultId, FaultPlan, FaultSpec, FaultTarget};
pub use stack::FaultStackExt;

//! [`FaultStackExt`]: slot the fault-injection layer into a
//! [`StackBuilder`] stack.
//!
//! `iron-blockdev` owns the builder but cannot name [`FaultyDisk`]; this
//! extension trait adds `.with_faults(plan)` on top of the generic
//! [`StackBuilder::layer`] hook, so campaign and test code reads as the
//! Figure 1 stack it builds:
//!
//! ```
//! use iron_blockdev::StackBuilder;
//! use iron_faultinject::{FaultPlan, FaultStackExt};
//!
//! let plan = FaultPlan::new();
//! let dev = StackBuilder::memdisk(1024)
//!     .with_faults(plan)
//!     .write_through()
//!     .build();
//! # let _ = dev;
//! ```

use iron_blockdev::{BlockDevice, RawAccess, StackBuilder};
use iron_core::SimClock;

use crate::faulty::FaultyDisk;
use crate::plan::FaultPlan;

/// Extension methods adding fault injection to a [`StackBuilder`] stack.
pub trait FaultStackExt<D: BlockDevice + RawAccess> {
    /// Wrap the stack in a [`FaultyDisk`] consulting `plan`. Place it
    /// directly above the disk, below any cache, exactly where the paper
    /// puts its pseudo-device driver (§4.2).
    fn with_faults(self, plan: FaultPlan) -> StackBuilder<FaultyDisk<D>>;

    /// Like [`Self::with_faults`], but also attaches `clock` so latency
    /// faults ([`iron_core::FaultKind::Slow`] / `Hang`) charge their
    /// extra service time. Pass the same clock the timed disk below
    /// advances, so deadline checks above this layer observe the stall.
    fn with_timed_faults(self, plan: FaultPlan, clock: SimClock) -> StackBuilder<FaultyDisk<D>>;
}

impl<D: BlockDevice + RawAccess> FaultStackExt<D> for StackBuilder<D> {
    fn with_faults(self, plan: FaultPlan) -> StackBuilder<FaultyDisk<D>> {
        self.layer(|dev| FaultyDisk::with_plan(dev, plan))
    }

    fn with_timed_faults(self, plan: FaultPlan, clock: SimClock) -> StackBuilder<FaultyDisk<D>> {
        self.layer(|dev| FaultyDisk::with_plan(dev, plan).with_clock(clock))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iron_blockdev::CachePolicy;
    use iron_core::{Block, BlockAddr, BlockTag, FaultKind, IoKind};

    use crate::plan::{FaultSpec, FaultTarget};

    #[test]
    fn faults_fire_through_a_built_stack() {
        let plan = FaultPlan::new();
        plan.controller().inject(FaultSpec::sticky(
            FaultKind::ReadError,
            FaultTarget::Tag(BlockTag("data")),
        ));
        let mut dev = StackBuilder::memdisk(64)
            .with_faults(plan)
            .with_cache(CachePolicy::write_back(8))
            .build();
        // Writes pass (only reads are faulted), so the destage succeeds…
        dev.write_tagged(BlockAddr(5), &Block::filled(1), BlockTag("data"))
            .unwrap();
        dev.flush().unwrap();
        // …and an uncached read sees the injected error through the cache.
        let err = dev.read_tagged(BlockAddr(6), BlockTag("data")).unwrap_err();
        assert_eq!(
            err,
            iron_blockdev::DiskError::Io {
                addr: BlockAddr(6),
                kind: IoKind::Read
            }
        );
    }
}

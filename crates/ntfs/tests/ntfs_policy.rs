//! Failure-policy tests for the NTFS model (§5.4).

use iron_blockdev::{MemDisk, RawAccess};
use iron_core::{Block, BlockAddr, BlockTag, Errno, FaultKind, IoKind};
use iron_faultinject::{FaultController, FaultSpec, FaultTarget, FaultyDisk};
use iron_ntfs::{NtfsFs, NtfsOptions, NtfsParams};
use iron_vfs::{FsEnv, MountState, Vfs};

type Fs = NtfsFs<FaultyDisk<MemDisk>>;

fn mount() -> (Vfs<Fs>, FaultController, FsEnv) {
    let mut md = MemDisk::for_tests(4096);
    NtfsFs::<MemDisk>::mkfs(&mut md, NtfsParams::small()).unwrap();
    let faulty = FaultyDisk::new(md);
    let ctl = faulty.controller();
    let env = FsEnv::new();
    let fs = NtfsFs::mount(faulty, env.clone(), NtfsOptions::default()).unwrap();
    (Vfs::new(fs), ctl, env)
}

fn remount(mut v: Vfs<Fs>) -> (Vfs<Fs>, FsEnv) {
    v.umount().unwrap();
    let dev = v.into_fs().into_device();
    let env = FsEnv::new();
    let fs = NtfsFs::mount(dev, env.clone(), NtfsOptions::default()).unwrap();
    (Vfs::new(fs), env)
}

#[test]
fn reads_are_retried_up_to_seven_times() {
    let (mut v, ctl, _env) = mount();
    v.write_file("/f", &vec![4u8; 8192]).unwrap();
    // Remount cold and fail data reads transiently 6 times — the 7-retry
    // loop must still succeed.
    let (mut v, env) = remount(v);
    ctl.inject(FaultSpec::transient(
        FaultKind::ReadError,
        FaultTarget::Tag(BlockTag("data")),
        6,
    ));
    assert_eq!(v.read_file("/f").unwrap(), vec![4u8; 8192], "retries win");
    assert!(env.klog.contains("retry 6/7"));
}

#[test]
fn read_gives_up_after_seven_retries_and_propagates() {
    let (mut v, ctl, _env) = mount();
    v.write_file("/f", &vec![4u8; 4096]).unwrap();
    let (mut v, env) = remount(v);
    let trace = {
        let fs = v.fs();
        fs.device_ref().trace()
    };
    ctl.inject(FaultSpec::sticky(
        FaultKind::ReadError,
        FaultTarget::Tag(BlockTag("data")),
    ));
    let mark = trace.len();
    let err = v.read_file("/f").unwrap_err();
    assert_eq!(err.errno(), Some(Errno::EIO), "RPropagate");
    assert_eq!(env.state(), MountState::ReadWrite);
    // 1 initial + 7 retries = 8 attempts on the same block.
    let attempts = trace
        .since(mark)
        .iter()
        .filter(|e| e.kind == IoKind::Read && e.tag == BlockTag("data"))
        .count();
    assert_eq!(attempts, 8, "seven retries after the first failure");
}

#[test]
fn data_write_retries_three_times_then_error_recorded_but_unused() {
    let (mut v, ctl, env) = mount();
    ctl.inject(FaultSpec::sticky(
        FaultKind::WriteError,
        FaultTarget::Tag(BlockTag("data")),
    ));
    // PAPER-BUG: after 3 retries, the error is recorded but not used —
    // the application sees success.
    v.write_file("/f", &vec![1u8; 4096]).unwrap();
    assert!(env.klog.contains("retry 3/3"));
    assert!(env.klog.contains("error recorded, unused"));
    assert_eq!(env.state(), MountState::ReadWrite);
}

#[test]
fn mft_write_failure_propagates_after_two_retries() {
    let (mut v, ctl, env) = mount();
    ctl.inject(FaultSpec::sticky(
        FaultKind::WriteError,
        FaultTarget::Tag(BlockTag("MFT record")),
    ));
    let err = v.write_file("/f", b"x").unwrap_err();
    assert_eq!(err.errno(), Some(Errno::EIO));
    assert!(env.klog.contains("retry 2/2"));
}

#[test]
fn corrupt_mft_record_makes_volume_unmountable() {
    let (mut v, _ctl, _env) = mount();
    v.write_file("/f", b"x").unwrap();
    v.umount().unwrap();
    let mut dev = v.into_fs().into_device();
    // Find the file's MFT record (magic FILE, in use, type regular) and
    // smash its magic.
    let mut target = None;
    for a in 0..4096u64 {
        let b = dev.peek(BlockAddr(a));
        if b.get_u32(0) == iron_ntfs::fs::FILE_MAGIC && b[8] == 1 && b.get_u32(4) == 1 {
            target = Some(a);
        }
    }
    let target = target.expect("an in-use MFT record");
    let mut b = dev.peek(BlockAddr(target));
    b.put_u32(0, 0xBAAD_F00D);
    dev.poke(BlockAddr(target), &b);
    let env = FsEnv::new();
    let err = match NtfsFs::mount(dev, env.clone(), NtfsOptions::default()) {
        Err(e) => e,
        Ok(_) => panic!("volume should be unmountable"),
    };
    assert_eq!(err.errno(), Some(Errno::EUCLEAN), "strong DSanity at mount");
    assert!(env.klog.contains("unmountable"));
}

#[test]
fn corrupted_block_pointer_clobbers_system_structures_paper_bug() {
    let (mut v, _ctl, _env) = mount();
    v.write_file("/victim", &vec![0u8; 4096]).unwrap();
    v.umount().unwrap();
    let mut dev = v.into_fs().into_device();
    // Corrupt the victim's MFT record so its first data pointer aims at
    // the volume bitmap. The record still passes all sanity checks
    // (PAPER-BUG: pointers are never validated).
    let mut rec_addr = None;
    for a in 0..4096u64 {
        let b = dev.peek(BlockAddr(a));
        if b.get_u32(0) == iron_ntfs::fs::FILE_MAGIC && b[8] == 1 && b.get_u32(4) == 1 {
            rec_addr = Some(a);
        }
    }
    let rec_addr = rec_addr.expect("victim record");
    let mut rec = dev.peek(BlockAddr(rec_addr));
    let bitmap_addr = 1 + 64; // logfile_start(1) + logfile_blocks(64) = volume bitmap
    let bitmap_before = dev.peek(BlockAddr(bitmap_addr));
    rec.put_u32(48, bitmap_addr as u32); // direct[0] := volume bitmap
    dev.poke(BlockAddr(rec_addr), &rec);
    let env = FsEnv::new();
    let fs = NtfsFs::mount(dev, env.clone(), NtfsOptions::default()).unwrap();
    let mut v = Vfs::new(fs);
    // Writing "the file" silently overwrites the volume bitmap.
    let fd = v.open("/victim", iron_vfs::OpenFlags::wronly()).unwrap();
    v.pwrite(fd, 0, &vec![0xFF; 4096]).unwrap();
    v.close(fd).unwrap();
    let dev = v.into_fs().into_device();
    let bitmap_after = dev.peek(BlockAddr(bitmap_addr));
    assert_ne!(bitmap_before, bitmap_after, "system structure clobbered");
    assert_eq!(bitmap_after, Block::filled(0xFF));
}

#[test]
fn errors_propagate_reliably() {
    // "It also seems to propagate errors to the user quite reliably."
    let (mut v, ctl, _env) = mount();
    v.write_file("/f", b"y").unwrap();
    // Remount without the integrity scan so MFT blocks stay cold, then
    // fail the runtime MFT read.
    v.umount().unwrap();
    let dev = v.into_fs().into_device();
    let env = FsEnv::new();
    let fs = NtfsFs::mount(dev, env.clone(), NtfsOptions { skip_verify: true }).unwrap();
    let mut v = Vfs::new(fs);
    ctl.inject(FaultSpec::sticky(
        FaultKind::ReadError,
        FaultTarget::Tag(BlockTag("MFT record")),
    ));
    assert_eq!(v.stat("/f").unwrap_err().errno(), Some(Errno::EIO));
    assert_ne!(env.state(), MountState::Crashed, "no panic, just errors");
}

// ----------------------------------------------------------------------
// The full Figure 1 stack: NTFS over the write-back buffer cache.
// ----------------------------------------------------------------------

#[test]
fn cached_stack_round_trip() {
    use iron_blockdev::{CachePolicy, StackBuilder};

    let mut dev = StackBuilder::memdisk(4096)
        .with_cache(CachePolicy::write_back(64))
        .build();
    NtfsFs::<MemDisk>::mkfs(dev.inner_mut(), NtfsParams::small()).unwrap();
    let fs = NtfsFs::mount(dev, FsEnv::new(), NtfsOptions::default()).unwrap();
    let mut v = Vfs::new(fs);
    for i in 0..12u8 {
        v.write_file(&format!("/f{i}"), &vec![i; 3000]).unwrap();
    }
    v.sync().unwrap();
    v.umount().unwrap();

    let cache = v.into_fs().into_device();
    assert_eq!(cache.dirty_blocks(), 0, "unmount drains the cache");
    let md = cache.into_inner();
    let fs = NtfsFs::mount(md, FsEnv::new(), NtfsOptions::default()).unwrap();
    let mut v = Vfs::new(fs);
    for i in 0..12u8 {
        assert_eq!(v.read_file(&format!("/f{i}")).unwrap(), vec![i; 3000]);
    }
}

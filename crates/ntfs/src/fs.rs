//! The NTFS model: MFT-based storage with the §5.4 retry-heavy policy.

use std::collections::HashMap;

use iron_blockdev::{BlockDevice, DiskResult, RawAccess};
use iron_core::{Block, BlockAddr, BlockTag, Errno, BLOCK_SIZE};
use iron_vfs::{
    DirEntry, FileType, FsEnv, InodeAttr, MountState, SpecificFs, StatFs, VfsError, VfsResult,
};

/// Read retries (§5.4: "up to seven times under read failures").
pub const READ_RETRIES: u32 = 7;
/// Write retries for data blocks.
pub const DATA_WRITE_RETRIES: u32 = 3;
/// Write retries for MFT blocks.
pub const MFT_WRITE_RETRIES: u32 = 2;

/// Boot-file magic ("NTFS    ", as on real volumes).
pub const BOOT_MAGIC: u64 = u64::from_le_bytes(*b"NTFS    ");
/// MFT record magic ("FILE").
pub const FILE_MAGIC: u32 = u32::from_le_bytes(*b"FILE");

/// Reserved MFT records (system files), as in real NTFS.
const MFT_RESERVED: u64 = 5;
/// The root directory's MFT record index.
pub const ROOT_REC: u64 = 5;
/// Direct cluster pointers per MFT record.
const NDIRECT: usize = 16;
/// Pointers in an extension run block.
const PTRS_PER_RUN: usize = 1000;
/// Max directory entries per index block (sanity bound).
const DIR_MAX: usize = 128;

/// NTFS block types (Table 4 rows).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum NtfsBlockType {
    /// An MFT record block.
    MftRecord,
    /// Directory index block.
    Dir,
    /// Volume bitmap (free clusters).
    VolumeBitmap,
    /// MFT bitmap (unused records).
    MftBitmap,
    /// The transaction log file.
    Logfile,
    /// User data.
    Data,
    /// The boot file.
    BootFile,
    /// Extension run block (cluster pointers).
    RunBlock,
}

impl NtfsBlockType {
    /// Table 4's NTFS rows.
    pub const TABLE4_ROWS: [NtfsBlockType; 7] = [
        NtfsBlockType::MftRecord,
        NtfsBlockType::Dir,
        NtfsBlockType::VolumeBitmap,
        NtfsBlockType::MftBitmap,
        NtfsBlockType::Logfile,
        NtfsBlockType::Data,
        NtfsBlockType::BootFile,
    ];

    /// The I/O tag.
    pub fn tag(self) -> BlockTag {
        BlockTag(match self {
            NtfsBlockType::MftRecord => "MFT record",
            NtfsBlockType::Dir => "dir",
            NtfsBlockType::VolumeBitmap => "volume bitmap",
            NtfsBlockType::MftBitmap => "MFT bitmap",
            NtfsBlockType::Logfile => "logfile",
            NtfsBlockType::Data => "data",
            NtfsBlockType::BootFile => "boot file",
            NtfsBlockType::RunBlock => "run block",
        })
    }
}

/// Formatting parameters.
#[derive(Clone, Copy, Debug)]
pub struct NtfsParams {
    /// Total device blocks.
    pub total_blocks: u64,
    /// MFT records (one block each in this model).
    pub mft_records: u64,
    /// Logfile blocks.
    pub logfile_blocks: u64,
}

impl NtfsParams {
    /// A small test volume.
    pub fn small() -> Self {
        NtfsParams {
            total_blocks: 4096,
            mft_records: 512,
            logfile_blocks: 64,
        }
    }
}

/// Mount options.
#[derive(Clone, Debug, Default)]
pub struct NtfsOptions {
    /// Skip the mount-time MFT integrity scan (tests only).
    pub skip_verify: bool,
}

/// Computed layout.
#[derive(Clone, Copy, Debug)]
struct Layout {
    params: NtfsParams,
    logfile_start: u64,
    volume_bitmap: u64,
    mft_bitmap: u64,
    mft_start: u64,
    alloc_start: u64,
}

impl Layout {
    fn compute(params: NtfsParams) -> Layout {
        let logfile_start = 1;
        let volume_bitmap = logfile_start + params.logfile_blocks;
        let mft_bitmap = volume_bitmap + 1;
        let mft_start = mft_bitmap + 1;
        let alloc_start = mft_start + params.mft_records;
        Layout {
            params,
            logfile_start,
            volume_bitmap,
            mft_bitmap,
            mft_start,
            alloc_start,
        }
    }

    fn mft_block(&self, rec: u64) -> u64 {
        self.mft_start + rec
    }
}

/// A decoded MFT record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct MftRecord {
    in_use: bool,
    ftype: FileType,
    mode: u32,
    uid: u32,
    gid: u32,
    nlink: u32,
    size: u64,
    mtime: u64,
    direct: [u32; NDIRECT],
    run_block: u32,
}

impl MftRecord {
    fn new(ftype: FileType, mode: u32) -> Self {
        MftRecord {
            in_use: true,
            ftype,
            mode,
            uid: 0,
            gid: 0,
            nlink: if ftype == FileType::Directory { 2 } else { 1 },
            size: 0,
            mtime: 0,
            direct: [0; NDIRECT],
            run_block: 0,
        }
    }

    fn encode(&self) -> Block {
        let mut b = Block::zeroed();
        b.put_u32(0, FILE_MAGIC);
        b.put_u32(4, u32::from(self.in_use));
        b[8] = match self.ftype {
            FileType::Regular => 1,
            FileType::Directory => 2,
            FileType::Symlink => 3,
        };
        b.put_u32(12, self.mode);
        b.put_u32(16, self.uid);
        b.put_u32(20, self.gid);
        b.put_u32(24, self.nlink);
        b.put_u64(32, self.size);
        b.put_u64(40, self.mtime);
        for (i, p) in self.direct.iter().enumerate() {
            b.put_u32(48 + i * 4, *p);
        }
        b.put_u32(48 + NDIRECT * 4, self.run_block);
        b
    }

    /// Decode with NTFS's strong metadata sanity check: the `FILE` magic
    /// and a valid type byte. Note what is *not* checked: the block
    /// pointers (`PAPER-BUG`).
    fn decode(b: &Block) -> Option<MftRecord> {
        if b.get_u32(0) != FILE_MAGIC {
            return None;
        }
        let ftype = match b[8] {
            1 => FileType::Regular,
            2 => FileType::Directory,
            3 => FileType::Symlink,
            _ => return None,
        };
        let mut direct = [0u32; NDIRECT];
        for (i, p) in direct.iter_mut().enumerate() {
            *p = b.get_u32(48 + i * 4);
        }
        Some(MftRecord {
            in_use: b.get_u32(4) != 0,
            ftype,
            mode: b.get_u32(12),
            uid: b.get_u32(16),
            gid: b.get_u32(20),
            nlink: b.get_u32(24),
            size: b.get_u64(32),
            mtime: b.get_u64(40),
            direct,
            run_block: b.get_u32(48 + NDIRECT * 4),
        })
    }
}

fn encode_dir(entries: &[(u32, u8, String)]) -> Block {
    let mut b = Block::zeroed();
    b.put_u16(0, entries.len() as u16);
    let mut off = 4;
    for (rec, ft, name) in entries {
        b.put_u32(off, *rec);
        b[off + 4] = *ft;
        b[off + 5] = name.len() as u8;
        b.put_bytes(off + 6, name.as_bytes());
        off += 6 + name.len();
    }
    b
}

fn decode_dir(b: &Block) -> Option<Vec<(u32, u8, String)>> {
    let count = b.get_u16(0) as usize;
    if count > DIR_MAX {
        return None;
    }
    let mut out = Vec::with_capacity(count);
    let mut off = 4;
    for _ in 0..count {
        if off + 6 > BLOCK_SIZE {
            return None;
        }
        let rec = b.get_u32(off);
        let ft = b[off + 4];
        let n = b[off + 5] as usize;
        if off + 6 + n > BLOCK_SIZE {
            return None;
        }
        out.push((
            rec,
            ft,
            String::from_utf8_lossy(b.get_bytes(off + 6, n)).into_owned(),
        ));
        off += 6 + n;
    }
    Some(out)
}

fn ft_code(t: FileType) -> u8 {
    match t {
        FileType::Regular => 1,
        FileType::Directory => 2,
        FileType::Symlink => 3,
    }
}

fn ft_from(c: u8) -> FileType {
    match c {
        2 => FileType::Directory,
        3 => FileType::Symlink,
        _ => FileType::Regular,
    }
}

/// The NTFS model over a block device.
pub struct NtfsFs<D: BlockDevice + RawAccess> {
    dev: D,
    env: FsEnv,
    layout: Layout,
    cache: HashMap<u64, Block>,
    free_blocks: u64,
    free_records: u64,
    log_seq: u64,
    log_head: u64,
}

impl<D: BlockDevice + RawAccess> NtfsFs<D> {
    /// Format a volume.
    pub fn mkfs(dev: &mut D, params: NtfsParams) -> VfsResult<()> {
        let layout = Layout::compute(params);
        let eio = VfsError::from;
        let root_dir_block = layout.alloc_start;

        let mut boot = Block::zeroed();
        boot.put_u64(0, BOOT_MAGIC);
        boot.put_u64(8, params.total_blocks);
        boot.put_u64(16, params.mft_records);
        boot.put_u64(24, params.logfile_blocks);
        dev.write_tagged(BlockAddr(0), &boot, NtfsBlockType::BootFile.tag())
            .map_err(eio)?;

        // Bitmaps.
        let mut vbm = Block::zeroed();
        for b in 0..=root_dir_block {
            vbm[(b / 8) as usize] |= 1 << (b % 8);
        }
        dev.write_tagged(
            BlockAddr(layout.volume_bitmap),
            &vbm,
            NtfsBlockType::VolumeBitmap.tag(),
        )
        .map_err(eio)?;
        let mut mbm = Block::zeroed();
        for r in 0..=MFT_RESERVED {
            mbm[(r / 8) as usize] |= 1 << (r % 8);
        }
        dev.write_tagged(
            BlockAddr(layout.mft_bitmap),
            &mbm,
            NtfsBlockType::MftBitmap.tag(),
        )
        .map_err(eio)?;

        // System records 0..4 (placeholders with valid magic) + root (5).
        for r in 0..MFT_RESERVED {
            let sys = MftRecord::new(FileType::Regular, 0o600);
            dev.write_tagged(
                BlockAddr(layout.mft_block(r)),
                &sys.encode(),
                NtfsBlockType::MftRecord.tag(),
            )
            .map_err(eio)?;
        }
        let mut root = MftRecord::new(FileType::Directory, 0o755);
        root.size = BLOCK_SIZE as u64;
        root.direct[0] = root_dir_block as u32;
        dev.write_tagged(
            BlockAddr(layout.mft_block(ROOT_REC)),
            &root.encode(),
            NtfsBlockType::MftRecord.tag(),
        )
        .map_err(eio)?;
        let entries = vec![
            (
                ROOT_REC as u32,
                ft_code(FileType::Directory),
                ".".to_string(),
            ),
            (
                ROOT_REC as u32,
                ft_code(FileType::Directory),
                "..".to_string(),
            ),
        ];
        dev.write_tagged(
            BlockAddr(root_dir_block),
            &encode_dir(&entries),
            NtfsBlockType::Dir.tag(),
        )
        .map_err(eio)?;
        dev.barrier().map_err(eio)?;
        Ok(())
    }

    /// Mount the volume. The boot file's magic is checked, and — per §5.4,
    /// "the file system becomes unmountable if any of its metadata blocks
    /// (except the journal) are corrupted" — every in-use MFT record is
    /// verified.
    pub fn mount(mut dev: D, env: FsEnv, opts: NtfsOptions) -> VfsResult<Self> {
        let boot =
            retry_read(&mut dev, 0, NtfsBlockType::BootFile, &env).map_err(VfsError::from)?;
        if boot.get_u64(0) != BOOT_MAGIC {
            env.klog
                .error("ntfs", "boot file invalid; volume unmountable");
            return Err(Errno::EUCLEAN.into());
        }
        let params = NtfsParams {
            total_blocks: boot.get_u64(8),
            mft_records: boot.get_u64(16),
            logfile_blocks: boot.get_u64(24),
        };
        let layout = Layout::compute(params);
        let mut fs = NtfsFs {
            dev,
            env,
            layout,
            cache: HashMap::new(),
            free_blocks: 0,
            free_records: 0,
            log_seq: 1,
            log_head: layout.logfile_start,
        };
        // Count free space from the bitmaps.
        let vbm = fs.read_block(layout.volume_bitmap, NtfsBlockType::VolumeBitmap)?;
        fs.free_blocks = (layout.alloc_start..params.total_blocks)
            .filter(|b| vbm[(b / 8) as usize] & (1 << (b % 8)) == 0)
            .count() as u64;
        let mbm = fs.read_block(layout.mft_bitmap, NtfsBlockType::MftBitmap)?;
        fs.free_records = (0..params.mft_records)
            .filter(|r| mbm[(r / 8) as usize] & (1 << (r % 8)) == 0)
            .count() as u64;

        if !opts.skip_verify {
            // Mount-time MFT integrity scan: a corrupt metadata block makes
            // the volume unmountable.
            for r in 0..params.mft_records {
                let in_use = mbm[(r / 8) as usize] & (1 << (r % 8)) != 0;
                if !in_use {
                    continue;
                }
                let b = fs.read_block(layout.mft_block(r), NtfsBlockType::MftRecord)?;
                if MftRecord::decode(&b).is_none() {
                    fs.env.klog.error(
                        "ntfs",
                        format!("MFT record {r} corrupt; volume unmountable"),
                    );
                    return Err(Errno::EUCLEAN.into());
                }
            }
        }
        Ok(fs)
    }

    /// Format + mount.
    pub fn format_and_mount(mut dev: D, env: FsEnv, params: NtfsParams) -> VfsResult<Self> {
        Self::mkfs(&mut dev, params)?;
        Self::mount(dev, env, NtfsOptions::default())
    }

    /// Consume, returning the device.
    pub fn into_device(self) -> D {
        self.dev
    }

    /// Borrow the device.
    pub fn device_ref(&self) -> &D {
        &self.dev
    }

    // ------------------------------------------------------------------
    // Retry-heavy I/O (§5.4).
    // ------------------------------------------------------------------

    fn read_block(&mut self, addr: u64, ty: NtfsBlockType) -> VfsResult<Block> {
        if let Some(b) = self.cache.get(&addr) {
            return Ok(b.clone());
        }
        match retry_read(&mut self.dev, addr, ty, &self.env) {
            Ok(b) => {
                self.cache.insert(addr, b.clone());
                Ok(b)
            }
            Err(_) => Err(Errno::EIO.into()),
        }
    }

    /// Write with NTFS's per-type retry counts. Data-write errors are
    /// recorded (logged) but otherwise unused (`PAPER-BUG`); metadata
    /// write errors propagate.
    fn write_block(&mut self, addr: u64, b: &Block, ty: NtfsBlockType) -> VfsResult<()> {
        let retries = match ty {
            NtfsBlockType::Data => DATA_WRITE_RETRIES,
            NtfsBlockType::MftRecord => MFT_WRITE_RETRIES,
            _ => MFT_WRITE_RETRIES,
        };
        self.cache.insert(addr, b.clone());
        let mut attempt = 0;
        loop {
            match self.dev.write_tagged(BlockAddr(addr), b, ty.tag()) {
                Ok(()) => return Ok(()),
                Err(_) if attempt < retries => {
                    attempt += 1;
                    self.env.klog.warn(
                        "ntfs",
                        format!("write of block {addr} failed; retry {attempt}/{retries}"),
                    );
                }
                Err(_) => {
                    if ty == NtfsBlockType::Data {
                        // PAPER-BUG: the error code is recorded but not
                        // used — the application never hears about it.
                        self.env.klog.warn(
                            "ntfs",
                            format!("data write to block {addr} failed; error recorded, unused"),
                        );
                        return Ok(());
                    }
                    self.env
                        .klog
                        .error("ntfs", format!("write of block {addr} failed"));
                    return Err(Errno::EIO.into());
                }
            }
        }
    }

    fn log_op(&mut self, what: &str) -> VfsResult<()> {
        // The transaction log file: one record block per operation.
        if self.log_head >= self.layout.logfile_start + self.layout.params.logfile_blocks {
            self.log_head = self.layout.logfile_start;
        }
        let mut b = Block::zeroed();
        b.put_u64(0, self.log_seq);
        b.put_bytes(16, &what.as_bytes()[..what.len().min(64)]);
        self.log_seq += 1;
        let addr = self.log_head;
        self.log_head += 1;
        self.write_block(addr, &b, NtfsBlockType::Logfile)
    }

    // ------------------------------------------------------------------
    // Records, allocation, directories.
    // ------------------------------------------------------------------

    fn get_record(&mut self, rec: u64) -> VfsResult<MftRecord> {
        if rec >= self.layout.params.mft_records {
            return Err(Errno::ENOENT.into());
        }
        let b = self.read_block(self.layout.mft_block(rec), NtfsBlockType::MftRecord)?;
        match MftRecord::decode(&b) {
            Some(r) if r.in_use => Ok(r),
            Some(_) => Err(Errno::ENOENT.into()),
            None => {
                self.env
                    .klog
                    .error("ntfs", format!("MFT record {rec} corrupt (bad FILE magic)"));
                Err(Errno::EUCLEAN.into())
            }
        }
    }

    fn put_record(&mut self, rec: u64, r: &MftRecord) -> VfsResult<()> {
        self.write_block(
            self.layout.mft_block(rec),
            &r.encode(),
            NtfsBlockType::MftRecord,
        )
    }

    fn alloc_block(&mut self) -> VfsResult<u64> {
        let mut vbm = self.read_block(self.layout.volume_bitmap, NtfsBlockType::VolumeBitmap)?;
        for b in self.layout.alloc_start..self.layout.params.total_blocks {
            if vbm[(b / 8) as usize] & (1 << (b % 8)) == 0 {
                vbm[(b / 8) as usize] |= 1 << (b % 8);
                self.write_block(self.layout.volume_bitmap, &vbm, NtfsBlockType::VolumeBitmap)?;
                self.free_blocks -= 1;
                return Ok(b);
            }
        }
        Err(Errno::ENOSPC.into())
    }

    fn free_block(&mut self, addr: u64) -> VfsResult<()> {
        let mut vbm = self.read_block(self.layout.volume_bitmap, NtfsBlockType::VolumeBitmap)?;
        vbm[(addr / 8) as usize] &= !(1 << (addr % 8));
        self.write_block(self.layout.volume_bitmap, &vbm, NtfsBlockType::VolumeBitmap)?;
        self.free_blocks += 1;
        self.cache.remove(&addr);
        Ok(())
    }

    fn alloc_record(&mut self) -> VfsResult<u64> {
        let mut mbm = self.read_block(self.layout.mft_bitmap, NtfsBlockType::MftBitmap)?;
        for r in MFT_RESERVED + 1..self.layout.params.mft_records {
            if mbm[(r / 8) as usize] & (1 << (r % 8)) == 0 {
                mbm[(r / 8) as usize] |= 1 << (r % 8);
                self.write_block(self.layout.mft_bitmap, &mbm, NtfsBlockType::MftBitmap)?;
                self.free_records -= 1;
                return Ok(r);
            }
        }
        Err(Errno::ENOSPC.into())
    }

    fn free_record(&mut self, rec: u64) -> VfsResult<()> {
        let mut mbm = self.read_block(self.layout.mft_bitmap, NtfsBlockType::MftBitmap)?;
        mbm[(rec / 8) as usize] &= !(1 << (rec % 8));
        self.write_block(self.layout.mft_bitmap, &mbm, NtfsBlockType::MftBitmap)?;
        self.free_records += 1;
        // Clear the record block but keep a valid FILE magic with
        // in_use=false (mirrors how NTFS recycles records).
        let mut empty = MftRecord::new(FileType::Regular, 0);
        empty.in_use = false;
        empty.nlink = 0;
        self.put_record(rec, &empty)
    }

    /// File block `idx` → cluster address (0 = hole). Pointers are used
    /// with **no validation** (`PAPER-BUG`).
    fn file_block(&mut self, r: &MftRecord, idx: u64) -> VfsResult<u64> {
        if idx < NDIRECT as u64 {
            return Ok(r.direct[idx as usize] as u64);
        }
        let idx = (idx - NDIRECT as u64) as usize;
        if idx >= PTRS_PER_RUN {
            return Err(Errno::EFBIG.into());
        }
        if r.run_block == 0 {
            return Ok(0);
        }
        let b = self.read_block(r.run_block as u64, NtfsBlockType::RunBlock)?;
        Ok(b.get_u32(8 + idx * 4) as u64)
    }

    fn set_file_block(&mut self, r: &mut MftRecord, idx: u64, addr: u64) -> VfsResult<()> {
        if idx < NDIRECT as u64 {
            r.direct[idx as usize] = addr as u32;
            return Ok(());
        }
        let idx = (idx - NDIRECT as u64) as usize;
        if idx >= PTRS_PER_RUN {
            return Err(Errno::EFBIG.into());
        }
        if r.run_block == 0 {
            r.run_block = self.alloc_block()? as u32;
            self.write_block(
                r.run_block as u64,
                &Block::zeroed(),
                NtfsBlockType::RunBlock,
            )?;
        }
        let raddr = r.run_block as u64;
        let mut b = self.read_block(raddr, NtfsBlockType::RunBlock)?;
        b.put_u32(8 + idx * 4, addr as u32);
        self.write_block(raddr, &b, NtfsBlockType::RunBlock)
    }

    fn dir_entries(&mut self, r: &MftRecord) -> VfsResult<Vec<(u32, u8, String)>> {
        let nblocks = r.size.div_ceil(BLOCK_SIZE as u64);
        let mut out = Vec::new();
        for idx in 0..nblocks {
            let addr = self.file_block(r, idx)?;
            if addr == 0 {
                continue;
            }
            let b = self.read_block(addr, NtfsBlockType::Dir)?;
            match decode_dir(&b) {
                Some(e) => out.extend(e),
                None => {
                    self.env
                        .klog
                        .error("ntfs", format!("directory index block {addr} corrupt"));
                    return Err(Errno::EUCLEAN.into());
                }
            }
        }
        Ok(out)
    }

    fn write_dir(
        &mut self,
        rec: u64,
        r: &mut MftRecord,
        entries: &[(u32, u8, String)],
    ) -> VfsResult<()> {
        let mut blocks: Vec<Vec<(u32, u8, String)>> = vec![Vec::new()];
        let mut used = 4usize;
        for e in entries {
            let sz = 6 + e.2.len();
            if used + sz > BLOCK_SIZE || blocks.last().expect("nonempty").len() >= DIR_MAX {
                blocks.push(Vec::new());
                used = 4;
            }
            blocks.last_mut().expect("nonempty").push(e.clone());
            used += sz;
        }
        let old = r.size.div_ceil(BLOCK_SIZE as u64);
        for (idx, chunk) in blocks.iter().enumerate() {
            let mut addr = self.file_block(r, idx as u64)?;
            if addr == 0 {
                addr = self.alloc_block()?;
                self.set_file_block(r, idx as u64, addr)?;
            }
            self.write_block(addr, &encode_dir(chunk), NtfsBlockType::Dir)?;
        }
        for idx in blocks.len() as u64..old {
            let addr = self.file_block(r, idx)?;
            if addr != 0 {
                self.free_block(addr)?;
                self.set_file_block(r, idx, 0)?;
            }
        }
        r.size = (blocks.len() * BLOCK_SIZE) as u64;
        self.put_record(rec, r)
    }

    fn dir_find(&mut self, r: &MftRecord, name: &str) -> VfsResult<Option<(u32, u8)>> {
        Ok(self
            .dir_entries(r)?
            .into_iter()
            .find(|(_, _, n)| n == name)
            .map(|(rec, ft, _)| (rec, ft)))
    }

    fn free_body(&mut self, r: &mut MftRecord) -> VfsResult<()> {
        let nblocks = r.size.div_ceil(BLOCK_SIZE as u64);
        for idx in 0..nblocks {
            let addr = self.file_block(r, idx)?;
            if addr != 0 {
                self.free_block(addr)?;
            }
        }
        if r.run_block != 0 {
            self.free_block(r.run_block as u64)?;
            r.run_block = 0;
        }
        r.direct = [0; NDIRECT];
        r.size = 0;
        Ok(())
    }
}

/// Read with up to seven retries (§5.4), logging each retry.
fn retry_read<D: BlockDevice>(
    dev: &mut D,
    addr: u64,
    ty: NtfsBlockType,
    env: &FsEnv,
) -> DiskResult<Block> {
    let mut attempt = 0;
    loop {
        match dev.read_tagged(BlockAddr(addr), ty.tag()) {
            Ok(b) => return Ok(b),
            Err(e) if attempt < READ_RETRIES => {
                attempt += 1;
                env.klog.warn(
                    "ntfs",
                    format!("read of block {addr} failed; retry {attempt}/{READ_RETRIES}"),
                );
                let _ = e;
            }
            Err(e) => {
                env.klog
                    .error("ntfs", format!("read of block {addr} failed permanently"));
                return Err(e);
            }
        }
    }
}

impl<D: BlockDevice + RawAccess> SpecificFs for NtfsFs<D> {
    fn env(&self) -> &FsEnv {
        &self.env
    }

    fn root_ino(&self) -> u64 {
        ROOT_REC
    }

    fn lookup(&mut self, dir: u64, name: &str) -> VfsResult<u64> {
        self.env.check_alive()?;
        let r = self.get_record(dir)?;
        if r.ftype != FileType::Directory {
            return Err(Errno::ENOTDIR.into());
        }
        match self.dir_find(&r, name)? {
            Some((rec, _)) => Ok(rec as u64),
            None => Err(Errno::ENOENT.into()),
        }
    }

    fn getattr(&mut self, rec: u64) -> VfsResult<InodeAttr> {
        self.env.check_alive()?;
        let r = self.get_record(rec)?;
        Ok(InodeAttr {
            ino: rec,
            ftype: r.ftype,
            size: r.size,
            nlink: r.nlink,
            mode: r.mode & 0o7777,
            uid: r.uid,
            gid: r.gid,
            mtime: r.mtime,
        })
    }

    fn chmod(&mut self, rec: u64, mode: u32) -> VfsResult<()> {
        self.env.check_writable()?;
        let mut r = self.get_record(rec)?;
        r.mode = mode & 0o7777;
        self.log_op("chmod")?;
        self.put_record(rec, &r)
    }

    fn chown(&mut self, rec: u64, uid: u32, gid: u32) -> VfsResult<()> {
        self.env.check_writable()?;
        let mut r = self.get_record(rec)?;
        r.uid = uid;
        r.gid = gid;
        self.log_op("chown")?;
        self.put_record(rec, &r)
    }

    fn utimes(&mut self, rec: u64, mtime: u64) -> VfsResult<()> {
        self.env.check_writable()?;
        let mut r = self.get_record(rec)?;
        r.mtime = mtime;
        self.log_op("utimes")?;
        self.put_record(rec, &r)
    }

    fn create(&mut self, dir: u64, name: &str, mode: u32) -> VfsResult<u64> {
        self.env.check_writable()?;
        let mut d = self.get_record(dir)?;
        if d.ftype != FileType::Directory {
            return Err(Errno::ENOTDIR.into());
        }
        if self.dir_find(&d, name)?.is_some() {
            return Err(Errno::EEXIST.into());
        }
        self.log_op("create")?;
        let rec = self.alloc_record()?;
        self.put_record(rec, &MftRecord::new(FileType::Regular, mode))?;
        let mut entries = self.dir_entries(&d)?;
        entries.push((rec as u32, ft_code(FileType::Regular), name.to_string()));
        self.write_dir(dir, &mut d, &entries)?;
        Ok(rec)
    }

    fn mkdir(&mut self, dir: u64, name: &str, mode: u32) -> VfsResult<u64> {
        self.env.check_writable()?;
        let mut d = self.get_record(dir)?;
        if self.dir_find(&d, name)?.is_some() {
            return Err(Errno::EEXIST.into());
        }
        self.log_op("mkdir")?;
        let rec = self.alloc_record()?;
        let mut child = MftRecord::new(FileType::Directory, mode);
        self.put_record(rec, &child)?;
        let child_entries = vec![
            (rec as u32, ft_code(FileType::Directory), ".".to_string()),
            (dir as u32, ft_code(FileType::Directory), "..".to_string()),
        ];
        self.write_dir(rec, &mut child, &child_entries)?;
        let mut entries = self.dir_entries(&d)?;
        entries.push((rec as u32, ft_code(FileType::Directory), name.to_string()));
        d.nlink += 1;
        self.write_dir(dir, &mut d, &entries)?;
        Ok(rec)
    }

    fn unlink(&mut self, dir: u64, name: &str) -> VfsResult<()> {
        self.env.check_writable()?;
        let mut d = self.get_record(dir)?;
        let Some((rec32, ft)) = self.dir_find(&d, name)? else {
            return Err(Errno::ENOENT.into());
        };
        if ft_from(ft) == FileType::Directory {
            return Err(Errno::EISDIR.into());
        }
        let rec = rec32 as u64;
        let mut r = self.get_record(rec)?;
        self.log_op("unlink")?;
        let mut entries = self.dir_entries(&d)?;
        entries.retain(|(_, _, n)| n != name);
        self.write_dir(dir, &mut d, &entries)?;
        r.nlink = r.nlink.saturating_sub(1);
        if r.nlink == 0 {
            self.free_body(&mut r)?;
            self.free_record(rec)?;
        } else {
            self.put_record(rec, &r)?;
        }
        Ok(())
    }

    fn rmdir(&mut self, dir: u64, name: &str) -> VfsResult<()> {
        self.env.check_writable()?;
        let mut d = self.get_record(dir)?;
        let Some((rec32, ft)) = self.dir_find(&d, name)? else {
            return Err(Errno::ENOENT.into());
        };
        if ft_from(ft) != FileType::Directory {
            return Err(Errno::ENOTDIR.into());
        }
        let rec = rec32 as u64;
        let mut r = self.get_record(rec)?;
        if self
            .dir_entries(&r)?
            .iter()
            .any(|(_, _, n)| n != "." && n != "..")
        {
            return Err(Errno::ENOTEMPTY.into());
        }
        self.log_op("rmdir")?;
        let mut entries = self.dir_entries(&d)?;
        entries.retain(|(_, _, n)| n != name);
        d.nlink = d.nlink.saturating_sub(1);
        self.write_dir(dir, &mut d, &entries)?;
        self.free_body(&mut r)?;
        self.free_record(rec)
    }

    fn link(&mut self, rec: u64, dir: u64, name: &str) -> VfsResult<()> {
        self.env.check_writable()?;
        let mut d = self.get_record(dir)?;
        if self.dir_find(&d, name)?.is_some() {
            return Err(Errno::EEXIST.into());
        }
        let mut r = self.get_record(rec)?;
        if r.ftype == FileType::Directory {
            return Err(Errno::EISDIR.into());
        }
        self.log_op("link")?;
        r.nlink += 1;
        self.put_record(rec, &r)?;
        let mut entries = self.dir_entries(&d)?;
        entries.push((rec as u32, ft_code(r.ftype), name.to_string()));
        self.write_dir(dir, &mut d, &entries)
    }

    fn symlink(&mut self, dir: u64, name: &str, target: &str) -> VfsResult<u64> {
        self.env.check_writable()?;
        let mut d = self.get_record(dir)?;
        if self.dir_find(&d, name)?.is_some() {
            return Err(Errno::EEXIST.into());
        }
        if target.len() > BLOCK_SIZE {
            return Err(Errno::ENAMETOOLONG.into());
        }
        self.log_op("symlink")?;
        let rec = self.alloc_record()?;
        let mut r = MftRecord::new(FileType::Symlink, 0o777);
        let baddr = self.alloc_block()?;
        r.direct[0] = baddr as u32;
        r.size = target.len() as u64;
        self.write_block(
            baddr,
            &Block::from_bytes(target.as_bytes()),
            NtfsBlockType::Data,
        )?;
        self.put_record(rec, &r)?;
        let mut entries = self.dir_entries(&d)?;
        entries.push((rec as u32, ft_code(FileType::Symlink), name.to_string()));
        self.write_dir(dir, &mut d, &entries)?;
        Ok(rec)
    }

    fn readlink(&mut self, rec: u64) -> VfsResult<String> {
        self.env.check_alive()?;
        let r = self.get_record(rec)?;
        if r.ftype != FileType::Symlink {
            return Err(Errno::EINVAL.into());
        }
        if r.direct[0] == 0 {
            return Ok(String::new());
        }
        let b = self.read_block(r.direct[0] as u64, NtfsBlockType::Data)?;
        Ok(String::from_utf8_lossy(b.get_bytes(0, r.size as usize)).into_owned())
    }

    fn rename(
        &mut self,
        src_dir: u64,
        src_name: &str,
        dst_dir: u64,
        dst_name: &str,
    ) -> VfsResult<()> {
        self.env.check_writable()?;
        let sd = self.get_record(src_dir)?;
        let Some((rec32, ft)) = self.dir_find(&sd, src_name)? else {
            return Err(Errno::ENOENT.into());
        };
        let dd = self.get_record(dst_dir)?;
        if let Some((existing, eft)) = self.dir_find(&dd, dst_name)? {
            if existing == rec32 {
                return Ok(());
            }
            if ft_from(eft) == FileType::Directory {
                return Err(Errno::EISDIR.into());
            }
            self.unlink(dst_dir, dst_name)?;
        }
        self.log_op("rename")?;
        let mut sd = self.get_record(src_dir)?;
        let mut entries = self.dir_entries(&sd)?;
        entries.retain(|(_, _, n)| n != src_name);
        let is_dir = ft_from(ft) == FileType::Directory;
        if is_dir && src_dir != dst_dir {
            sd.nlink = sd.nlink.saturating_sub(1);
        }
        self.write_dir(src_dir, &mut sd, &entries)?;
        let mut dd = self.get_record(dst_dir)?;
        let mut dentries = self.dir_entries(&dd)?;
        dentries.push((rec32, ft, dst_name.to_string()));
        if is_dir && src_dir != dst_dir {
            dd.nlink += 1;
        }
        self.write_dir(dst_dir, &mut dd, &dentries)?;
        if is_dir && src_dir != dst_dir {
            let mut m = self.get_record(rec32 as u64)?;
            let mut mentries = self.dir_entries(&m)?;
            for e in &mut mentries {
                if e.2 == ".." {
                    e.0 = dst_dir as u32;
                }
            }
            self.write_dir(rec32 as u64, &mut m, &mentries)?;
        }
        Ok(())
    }

    fn read(&mut self, rec: u64, off: u64, len: usize) -> VfsResult<Vec<u8>> {
        self.env.check_alive()?;
        let r = self.get_record(rec)?;
        if r.ftype == FileType::Directory {
            return Err(Errno::EISDIR.into());
        }
        if off >= r.size {
            return Ok(Vec::new());
        }
        let end = (off + len as u64).min(r.size);
        let bs = BLOCK_SIZE as u64;
        let mut out = Vec::with_capacity((end - off) as usize);
        let mut pos = off;
        while pos < end {
            let idx = pos / bs;
            let within = (pos % bs) as usize;
            let take = ((end - pos) as usize).min(BLOCK_SIZE - within);
            let addr = self.file_block(&r, idx)?;
            if addr == 0 {
                out.extend(std::iter::repeat_n(0u8, take));
            } else {
                let b = self.read_block(addr, NtfsBlockType::Data)?;
                out.extend_from_slice(b.get_bytes(within, take));
            }
            pos += take as u64;
        }
        Ok(out)
    }

    fn write(&mut self, rec: u64, off: u64, data: &[u8]) -> VfsResult<usize> {
        self.env.check_writable()?;
        let mut r = self.get_record(rec)?;
        if r.ftype == FileType::Directory {
            return Err(Errno::EISDIR.into());
        }
        self.log_op("write")?;
        let bs = BLOCK_SIZE as u64;
        let end = off + data.len() as u64;
        let mut pos = off;
        let mut src = 0usize;
        while pos < end {
            let idx = pos / bs;
            let within = (pos % bs) as usize;
            let take = ((end - pos) as usize).min(BLOCK_SIZE - within);
            let mut addr = self.file_block(&r, idx)?;
            let mut block = if addr == 0 || (within == 0 && take == BLOCK_SIZE) {
                Block::zeroed()
            } else {
                self.read_block(addr, NtfsBlockType::Data)?
            };
            if addr == 0 {
                addr = self.alloc_block()?;
                self.set_file_block(&mut r, idx, addr)?;
            }
            block.put_bytes(within, &data[src..src + take]);
            // PAPER-BUG vector: `addr` is used unvalidated — if the MFT
            // record's pointer was corrupted, this write lands on whatever
            // structure the pointer names.
            self.write_block(addr, &block, NtfsBlockType::Data)?;
            pos += take as u64;
            src += take;
        }
        if end > r.size {
            r.size = end;
        }
        self.put_record(rec, &r)?;
        Ok(data.len())
    }

    fn truncate(&mut self, rec: u64, size: u64) -> VfsResult<()> {
        self.env.check_writable()?;
        let mut r = self.get_record(rec)?;
        if r.ftype == FileType::Directory {
            return Err(Errno::EISDIR.into());
        }
        self.log_op("truncate")?;
        if size < r.size {
            let bs = BLOCK_SIZE as u64;
            let keep = size.div_ceil(bs);
            let old = r.size.div_ceil(bs);
            for idx in keep..old {
                let addr = self.file_block(&r, idx)?;
                if addr != 0 {
                    self.free_block(addr)?;
                    self.set_file_block(&mut r, idx, 0)?;
                }
            }
            if !size.is_multiple_of(bs) {
                let idx = size / bs;
                let addr = self.file_block(&r, idx)?;
                if addr != 0 {
                    let mut b = self.read_block(addr, NtfsBlockType::Data)?;
                    for byte in &mut b[(size % bs) as usize..] {
                        *byte = 0;
                    }
                    self.write_block(addr, &b, NtfsBlockType::Data)?;
                }
            }
        }
        r.size = size;
        self.put_record(rec, &r)
    }

    fn readdir(&mut self, dir: u64) -> VfsResult<Vec<DirEntry>> {
        self.env.check_alive()?;
        let r = self.get_record(dir)?;
        if r.ftype != FileType::Directory {
            return Err(Errno::ENOTDIR.into());
        }
        Ok(self
            .dir_entries(&r)?
            .into_iter()
            .map(|(rec, ft, name)| DirEntry {
                name,
                ino: rec as u64,
                ftype: ft_from(ft),
            })
            .collect())
    }

    fn fsync(&mut self, _rec: u64) -> VfsResult<()> {
        self.env.check_alive()?;
        self.dev.flush().map_err(VfsError::from)
    }

    fn sync(&mut self) -> VfsResult<()> {
        self.env.check_alive()?;
        self.dev.flush().map_err(VfsError::from)
    }

    fn statfs(&mut self) -> VfsResult<StatFs> {
        self.env.check_alive()?;
        Ok(StatFs {
            block_size: BLOCK_SIZE as u32,
            blocks: self.layout.params.total_blocks - self.layout.alloc_start,
            blocks_free: self.free_blocks,
            inodes: self.layout.params.mft_records,
            inodes_free: self.free_records,
        })
    }

    fn unmount(&mut self) -> VfsResult<()> {
        self.env.check_alive()?;
        let _ = self.dev.flush();
        self.env.set_state(MountState::Unmounted);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iron_blockdev::MemDisk;
    use iron_vfs::Vfs;

    fn mount() -> Vfs<NtfsFs<MemDisk>> {
        let dev = MemDisk::for_tests(4096);
        Vfs::new(NtfsFs::format_and_mount(dev, FsEnv::new(), NtfsParams::small()).unwrap())
    }

    #[test]
    fn basic_operations() {
        let mut v = mount();
        v.mkdir("/d", 0o755).unwrap();
        v.write_file("/d/f", b"ntfs!").unwrap();
        assert_eq!(v.read_file("/d/f").unwrap(), b"ntfs!");
        v.rename("/d/f", "/top").unwrap();
        v.symlink("/top", "/ln").unwrap();
        assert_eq!(v.read_file("/ln").unwrap(), b"ntfs!");
        v.unlink("/top").unwrap();
        v.unlink("/ln").unwrap();
        v.rmdir("/d").unwrap();
    }

    #[test]
    fn large_file_via_run_block() {
        let mut v = mount();
        let data: Vec<u8> = (0..300_000u32).map(|i| (i % 249) as u8).collect();
        v.write_file("/big", &data).unwrap();
        assert_eq!(v.read_file("/big").unwrap(), data);
    }

    #[test]
    fn persistence_across_remount() {
        let mut v = mount();
        v.write_file("/keep", &vec![0x7A; 30_000]).unwrap();
        v.umount().unwrap();
        let dev = v.into_fs().into_device();
        let fs = NtfsFs::mount(dev, FsEnv::new(), NtfsOptions::default()).unwrap();
        let mut v = Vfs::new(fs);
        assert_eq!(v.read_file("/keep").unwrap(), vec![0x7A; 30_000]);
    }

    #[test]
    fn mft_records_carry_file_magic() {
        let v = mount();
        let fs = v.into_fs();
        let dev = fs.into_device();
        let layout = Layout::compute(NtfsParams::small());
        let b = dev.peek(BlockAddr(layout.mft_block(ROOT_REC)));
        assert_eq!(b.get_u32(0), FILE_MAGIC);
    }
}

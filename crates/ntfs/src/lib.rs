//! # iron-ntfs
//!
//! A simplified behavioral model of Windows NTFS (§5.4 of the paper).
//! NTFS is closed source; the paper's own analysis is explicitly partial
//! ("our knowledge of NTFS data structures is incomplete"), so this model
//! covers exactly the structures Table 4 lists — MFT records, directories,
//! the volume bitmap, the MFT bitmap, the logfile, data, and the boot file
//! — and exactly the policy §5.4 reports:
//!
//! * **"Persistence is a virtue"**: read failures are retried up to
//!   **seven** times; write failures are retried too — three times for
//!   data blocks, two times for MFT blocks (`RRetry`, aggressively).
//! * Error codes are checked on reads and writes (`DErrorCode`), and
//!   errors propagate to the user quite reliably (`RPropagate`) — but,
//!   "similar to ext3 and JFS, when a data write fails, NTFS records the
//!   error code but does not use it" (`DZero` in effect — `PAPER-BUG`).
//! * Strong sanity checking on metadata (`DSanity`): every MFT record
//!   carries the `FILE` magic; the volume "becomes unmountable if any of
//!   its metadata blocks (except the journal) are corrupted" — mount scans
//!   the in-use MFT and refuses a corrupt volume.
//! * `PAPER-BUG`: block *pointers* are not sanity-checked — "a corrupted
//!   block pointer can point to important system structures and hence
//!   corrupt them when the block pointed to is updated."
//!
//! The logfile is written (so log-write workloads exercise it) but
//! redo/undo recovery is not modeled — the paper never fingerprints NTFS
//! recovery (closed source, incomplete analysis); DESIGN.md records the
//! substitution.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fs;

pub use fs::{NtfsBlockType, NtfsFs, NtfsOptions, NtfsParams};

//! The [`SpecificFs`] trait: the interface every specific file system
//! implements beneath the generic layer.

use crate::env::FsEnv;
use crate::types::{DirEntry, Ino, InodeAttr, StatFs, VfsResult};

/// Inode-level operations provided by a specific file system (ext3,
/// ReiserFS, JFS, NTFS, ixt3, or the in-memory reference [`crate::ramfs::RamFs`]).
///
/// The generic layer ([`crate::Vfs`]) implements path traversal, file
/// descriptors, and the syscall surface on top of these. All methods take
/// `&mut self`: the models are single-threaded, as the paper's analysis is
/// about failure policy, not concurrency.
///
/// Implementations are expected to call [`FsEnv::check_alive`] /
/// [`FsEnv::check_writable`] so that `RStop` outcomes (crash, read-only
/// remount) have their documented effect on subsequent operations.
pub trait SpecificFs {
    /// The environment this file system was mounted with.
    fn env(&self) -> &FsEnv;

    /// Inode number of the root directory.
    fn root_ino(&self) -> Ino;

    /// Look up `name` in directory `dir`.
    fn lookup(&mut self, dir: Ino, name: &str) -> VfsResult<Ino>;

    /// Attributes of an inode.
    fn getattr(&mut self, ino: Ino) -> VfsResult<InodeAttr>;

    /// Set permission bits.
    fn chmod(&mut self, ino: Ino, mode: u32) -> VfsResult<()>;

    /// Set ownership.
    fn chown(&mut self, ino: Ino, uid: u32, gid: u32) -> VfsResult<()>;

    /// Set modification time.
    fn utimes(&mut self, ino: Ino, mtime: u64) -> VfsResult<()>;

    /// Create a regular file `name` in `dir`.
    fn create(&mut self, dir: Ino, name: &str, mode: u32) -> VfsResult<Ino>;

    /// Create a directory `name` in `dir`.
    fn mkdir(&mut self, dir: Ino, name: &str, mode: u32) -> VfsResult<Ino>;

    /// Remove the file link `name` from `dir`.
    fn unlink(&mut self, dir: Ino, name: &str) -> VfsResult<()>;

    /// Remove the empty directory `name` from `dir`.
    fn rmdir(&mut self, dir: Ino, name: &str) -> VfsResult<()>;

    /// Add a hard link to `ino` as `dir/name`.
    fn link(&mut self, ino: Ino, dir: Ino, name: &str) -> VfsResult<()>;

    /// Create a symlink `dir/name` pointing at `target`.
    fn symlink(&mut self, dir: Ino, name: &str, target: &str) -> VfsResult<Ino>;

    /// Read the target of a symlink.
    fn readlink(&mut self, ino: Ino) -> VfsResult<String>;

    /// Rename `src_dir/src_name` to `dst_dir/dst_name` (replacing any
    /// existing file at the destination).
    fn rename(
        &mut self,
        src_dir: Ino,
        src_name: &str,
        dst_dir: Ino,
        dst_name: &str,
    ) -> VfsResult<()>;

    /// Read up to `len` bytes at `off` from a regular file. Short reads at
    /// end-of-file return fewer bytes; reads past EOF return empty.
    fn read(&mut self, ino: Ino, off: u64, len: usize) -> VfsResult<Vec<u8>>;

    /// Write `data` at `off`, extending the file as needed. Returns bytes
    /// written.
    fn write(&mut self, ino: Ino, off: u64, data: &[u8]) -> VfsResult<usize>;

    /// Truncate (or extend with zeros) to `size`.
    fn truncate(&mut self, ino: Ino, size: u64) -> VfsResult<()>;

    /// List a directory.
    fn readdir(&mut self, dir: Ino) -> VfsResult<Vec<DirEntry>>;

    /// Flush one file's data and metadata to stable storage.
    fn fsync(&mut self, ino: Ino) -> VfsResult<()>;

    /// Flush everything to stable storage.
    fn sync(&mut self) -> VfsResult<()>;

    /// File-system statistics.
    fn statfs(&mut self) -> VfsResult<StatFs>;

    /// Cleanly unmount: flush, mark clean, transition to
    /// [`crate::MountState::Unmounted`].
    fn unmount(&mut self) -> VfsResult<()>;
}

macro_rules! forward_specific_fs {
    ($ty:ty) => {
        impl SpecificFs for $ty {
            fn env(&self) -> &FsEnv {
                (**self).env()
            }
            fn root_ino(&self) -> Ino {
                (**self).root_ino()
            }
            fn lookup(&mut self, dir: Ino, name: &str) -> VfsResult<Ino> {
                (**self).lookup(dir, name)
            }
            fn getattr(&mut self, ino: Ino) -> VfsResult<InodeAttr> {
                (**self).getattr(ino)
            }
            fn chmod(&mut self, ino: Ino, mode: u32) -> VfsResult<()> {
                (**self).chmod(ino, mode)
            }
            fn chown(&mut self, ino: Ino, uid: u32, gid: u32) -> VfsResult<()> {
                (**self).chown(ino, uid, gid)
            }
            fn utimes(&mut self, ino: Ino, mtime: u64) -> VfsResult<()> {
                (**self).utimes(ino, mtime)
            }
            fn create(&mut self, dir: Ino, name: &str, mode: u32) -> VfsResult<Ino> {
                (**self).create(dir, name, mode)
            }
            fn mkdir(&mut self, dir: Ino, name: &str, mode: u32) -> VfsResult<Ino> {
                (**self).mkdir(dir, name, mode)
            }
            fn unlink(&mut self, dir: Ino, name: &str) -> VfsResult<()> {
                (**self).unlink(dir, name)
            }
            fn rmdir(&mut self, dir: Ino, name: &str) -> VfsResult<()> {
                (**self).rmdir(dir, name)
            }
            fn link(&mut self, ino: Ino, dir: Ino, name: &str) -> VfsResult<()> {
                (**self).link(ino, dir, name)
            }
            fn symlink(&mut self, dir: Ino, name: &str, target: &str) -> VfsResult<Ino> {
                (**self).symlink(dir, name, target)
            }
            fn readlink(&mut self, ino: Ino) -> VfsResult<String> {
                (**self).readlink(ino)
            }
            fn rename(
                &mut self,
                src_dir: Ino,
                src_name: &str,
                dst_dir: Ino,
                dst_name: &str,
            ) -> VfsResult<()> {
                (**self).rename(src_dir, src_name, dst_dir, dst_name)
            }
            fn read(&mut self, ino: Ino, off: u64, len: usize) -> VfsResult<Vec<u8>> {
                (**self).read(ino, off, len)
            }
            fn write(&mut self, ino: Ino, off: u64, data: &[u8]) -> VfsResult<usize> {
                (**self).write(ino, off, data)
            }
            fn truncate(&mut self, ino: Ino, size: u64) -> VfsResult<()> {
                (**self).truncate(ino, size)
            }
            fn readdir(&mut self, dir: Ino) -> VfsResult<Vec<DirEntry>> {
                (**self).readdir(dir)
            }
            fn fsync(&mut self, ino: Ino) -> VfsResult<()> {
                (**self).fsync(ino)
            }
            fn sync(&mut self) -> VfsResult<()> {
                (**self).sync()
            }
            fn statfs(&mut self) -> VfsResult<StatFs> {
                (**self).statfs()
            }
            fn unmount(&mut self) -> VfsResult<()> {
                (**self).unmount()
            }
        }
    };
}

forward_specific_fs!(Box<dyn SpecificFs>);
forward_specific_fs!(&mut dyn SpecificFs);

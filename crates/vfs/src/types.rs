//! Common VFS-level types: errors, attributes, directory entries, flags.

use std::fmt;

use iron_blockdev::DiskError;
use iron_core::Errno;

/// An inode number.
pub type Ino = u64;

/// Errors surfaced through the syscall API.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum VfsError {
    /// An ordinary errno, as an application would see it.
    Errno(Errno),
    /// The simulated kernel panicked (e.g. ReiserFS `panic()` on write
    /// failure). The "machine" is down; every subsequent call returns this
    /// too.
    KernelPanic(String),
}

impl VfsError {
    /// The errno, if this is an errno-style error.
    pub fn errno(&self) -> Option<Errno> {
        match self {
            VfsError::Errno(e) => Some(*e),
            VfsError::KernelPanic(_) => None,
        }
    }

    /// True if this is a kernel panic.
    pub fn is_panic(&self) -> bool {
        matches!(self, VfsError::KernelPanic(_))
    }
}

impl fmt::Display for VfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VfsError::Errno(e) => write!(f, "{e}"),
            VfsError::KernelPanic(msg) => write!(f, "kernel panic: {msg}"),
        }
    }
}

impl std::error::Error for VfsError {}

impl From<Errno> for VfsError {
    fn from(e: Errno) -> Self {
        VfsError::Errno(e)
    }
}

/// The canonical device-error mapping for every file-system model: any
/// [`DiskError`] crossing the block/VFS boundary becomes `EIO`, exactly as
/// the Linux block layer collapses low-level failures before the fs sees
/// them. The fault-injection campaigns depend on this being uniform — a
/// per-fs mapping would change fingerprints without changing policy.
impl From<DiskError> for VfsError {
    fn from(_: DiskError) -> Self {
        VfsError::Errno(Errno::EIO)
    }
}

/// Result alias for VFS operations.
pub type VfsResult<T> = Result<T, VfsError>;

/// The type of a file.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FileType {
    /// Regular file.
    Regular,
    /// Directory.
    Directory,
    /// Symbolic link.
    Symlink,
}

/// Inode attributes, as returned by `stat`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct InodeAttr {
    /// Inode number.
    pub ino: Ino,
    /// File type.
    pub ftype: FileType,
    /// Size in bytes.
    pub size: u64,
    /// Hard link count.
    pub nlink: u32,
    /// Permission bits.
    pub mode: u32,
    /// Owner uid.
    pub uid: u32,
    /// Owner gid.
    pub gid: u32,
    /// Modification time (simulated seconds).
    pub mtime: u64,
}

impl InodeAttr {
    /// A fresh attribute record for a new file-system object.
    pub fn new(ino: Ino, ftype: FileType, mode: u32) -> Self {
        InodeAttr {
            ino,
            ftype,
            size: 0,
            nlink: if ftype == FileType::Directory { 2 } else { 1 },
            mode,
            uid: 0,
            gid: 0,
            mtime: 0,
        }
    }
}

/// One directory entry.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DirEntry {
    /// Entry name (no slashes).
    pub name: String,
    /// Inode it refers to.
    pub ino: Ino,
    /// Type of the referent.
    pub ftype: FileType,
}

/// `statfs` output.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct StatFs {
    /// Block size in bytes.
    pub block_size: u32,
    /// Total data blocks.
    pub blocks: u64,
    /// Free data blocks.
    pub blocks_free: u64,
    /// Total inodes.
    pub inodes: u64,
    /// Free inodes.
    pub inodes_free: u64,
}

/// A file descriptor handle.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Fd(pub usize);

/// Open flags (a small POSIX subset).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct OpenFlags {
    /// Open for reading.
    pub read: bool,
    /// Open for writing.
    pub write: bool,
    /// Create if absent.
    pub create: bool,
    /// Truncate to zero length on open.
    pub truncate: bool,
    /// All writes append.
    pub append: bool,
}

impl OpenFlags {
    /// `O_RDONLY`.
    pub fn rdonly() -> Self {
        OpenFlags {
            read: true,
            ..Default::default()
        }
    }

    /// `O_WRONLY`.
    pub fn wronly() -> Self {
        OpenFlags {
            write: true,
            ..Default::default()
        }
    }

    /// `O_RDWR`.
    pub fn rdwr() -> Self {
        OpenFlags {
            read: true,
            write: true,
            ..Default::default()
        }
    }

    /// `O_WRONLY | O_CREAT | O_TRUNC` — what `creat(2)` means.
    pub fn creat() -> Self {
        OpenFlags {
            write: true,
            create: true,
            truncate: true,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vfs_error_conversions() {
        let e: VfsError = Errno::ENOENT.into();
        assert_eq!(e.errno(), Some(Errno::ENOENT));
        assert!(!e.is_panic());
        let p = VfsError::KernelPanic("reiserfs".into());
        assert!(p.is_panic());
        assert_eq!(p.errno(), None);
        assert!(p.to_string().contains("kernel panic"));
    }

    #[test]
    fn every_disk_error_variant_maps_to_eio() {
        use iron_core::IoKind;
        let variants = [
            DiskError::Io {
                addr: iron_core::BlockAddr(3),
                kind: IoKind::Read,
            },
            DiskError::OutOfRange {
                addr: iron_core::BlockAddr(9),
            },
            DiskError::DeviceFailed,
            DiskError::Timeout {
                addr: iron_core::BlockAddr(4),
                kind: IoKind::Write,
            },
        ];
        for v in variants {
            assert_eq!(VfsError::from(v).errno(), Some(Errno::EIO));
        }
    }

    #[test]
    fn new_attr_link_counts() {
        assert_eq!(InodeAttr::new(1, FileType::Directory, 0o755).nlink, 2);
        assert_eq!(InodeAttr::new(2, FileType::Regular, 0o644).nlink, 1);
    }

    #[test]
    fn creat_flags() {
        let f = OpenFlags::creat();
        assert!(f.write && f.create && f.truncate && !f.read);
    }
}

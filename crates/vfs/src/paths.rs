//! Lexical path canonicalization and prefix enumeration.
//!
//! The serving layer keys its lock manager on *paths*, so two textual
//! spellings of the same location ("/a//b/", "/a/b") must map to one lock.
//! Normalization here is purely lexical: `.` components are dropped and
//! `..` pops the previous component, but symlinks are **not** chased (the
//! lock layer that uses these keys excludes symlinks from its protocol for
//! exactly that reason — a lexical key cannot cover a symlink's target).

/// Normalize a path lexically to a canonical absolute form.
///
/// Rules: the result always starts with `/`; repeated and trailing slashes
/// collapse; `.` components vanish; `..` removes the previous component
/// (and is a no-op at the root, as in POSIX resolution). A relative input
/// is interpreted from the root, matching how the serving protocol treats
/// every path as absolute.
///
/// ```
/// use iron_vfs::paths::normalize;
/// assert_eq!(normalize("/a//b/"), "/a/b");
/// assert_eq!(normalize("a/./b/../c"), "/a/c");
/// assert_eq!(normalize("/../x"), "/x");
/// assert_eq!(normalize(""), "/");
/// ```
pub fn normalize(path: &str) -> String {
    let mut comps: Vec<&str> = Vec::new();
    for comp in path.split('/') {
        match comp {
            "" | "." => {}
            ".." => {
                comps.pop();
            }
            c => comps.push(c),
        }
    }
    if comps.is_empty() {
        "/".to_string()
    } else {
        let mut out = String::new();
        for c in &comps {
            out.push('/');
            out.push_str(c);
        }
        out
    }
}

/// Every proper ancestor of `path` (after [`normalize`]), root first.
///
/// For `/a/b/c` this is `["/", "/a", "/a/b"]`; for the root itself it is
/// empty. These are exactly the directories a symlink-free resolution of
/// `path` reads, which is what makes them the right shared-lock set for an
/// operation on `path`.
///
/// ```
/// use iron_vfs::paths::prefixes;
/// assert_eq!(prefixes("/a/b/c"), vec!["/", "/a", "/a/b"]);
/// assert!(prefixes("/").is_empty());
/// ```
pub fn prefixes(path: &str) -> Vec<String> {
    let norm = normalize(path);
    if norm == "/" {
        return Vec::new();
    }
    let mut out = vec!["/".to_string()];
    let mut acc = String::new();
    let comps: Vec<&str> = norm.split('/').filter(|c| !c.is_empty()).collect();
    for c in &comps[..comps.len() - 1] {
        acc.push('/');
        acc.push_str(c);
        out.push(acc.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_collapses_slashes_and_dots() {
        assert_eq!(normalize("/"), "/");
        assert_eq!(normalize("//"), "/");
        assert_eq!(normalize("/a/b"), "/a/b");
        assert_eq!(normalize("/a//b///c/"), "/a/b/c");
        assert_eq!(normalize("/a/./b"), "/a/b");
        assert_eq!(normalize("relative/path"), "/relative/path");
    }

    #[test]
    fn normalize_resolves_dotdot_lexically() {
        assert_eq!(normalize("/a/b/../c"), "/a/c");
        assert_eq!(normalize("/a/../../b"), "/b");
        assert_eq!(normalize("/.."), "/");
    }

    #[test]
    fn prefixes_are_proper_ancestors() {
        assert!(prefixes("/").is_empty());
        assert_eq!(prefixes("/a"), vec!["/"]);
        assert_eq!(prefixes("/a/b"), vec!["/", "/a"]);
        assert_eq!(prefixes("/a//b/c/"), vec!["/", "/a", "/a/b"]);
    }

    #[test]
    fn equal_spellings_share_a_key() {
        assert_eq!(normalize("/d/f"), normalize("d//f/"));
        assert_eq!(normalize("/d/./f"), normalize("/d/x/../f"));
    }
}

//! The simulated kernel environment: mount state machine + kernel log.
//!
//! The paper's recovery taxonomy includes `RStop` at several granularities
//! (§3.3): crash the machine, remount read-only, or abort the journal. The
//! [`MountState`] machine makes those observable outcomes explicit, and
//! [`FsEnv`] bundles it with the kernel log the fingerprinting framework
//! inspects.

use std::sync::{Arc, Mutex};

use iron_core::{Errno, KernelLog};

use crate::types::{VfsError, VfsResult};

/// The state of a mounted file system (and its simulated machine).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MountState {
    /// Healthy, read-write.
    ReadWrite,
    /// Remounted read-only after a fault (`RStop` at intermediate
    /// granularity): reads proceed, writes fail with `EROFS`.
    ReadOnly,
    /// The simulated kernel panicked (`RStop` at the coarsest granularity):
    /// nothing proceeds.
    Crashed,
    /// Cleanly unmounted.
    Unmounted,
}

/// Shared kernel environment handed to a file system at mount time.
///
/// Cloning shares state (log and mount state), so the harness keeps a handle
/// while the file system owns another.
#[derive(Clone, Debug)]
pub struct FsEnv {
    /// The kernel log.
    pub klog: KernelLog,
    state: Arc<Mutex<MountState>>,
}

impl FsEnv {
    /// A fresh environment in the `ReadWrite` state with an empty log.
    pub fn new() -> Self {
        FsEnv {
            klog: KernelLog::new(),
            state: Arc::new(Mutex::new(MountState::ReadWrite)),
        }
    }

    /// Current mount state.
    pub fn state(&self) -> MountState {
        *self.state.lock().unwrap()
    }

    /// Force a specific state (used by mount/unmount paths and tests).
    pub fn set_state(&self, s: MountState) {
        *self.state.lock().unwrap() = s;
    }

    /// Simulate a kernel panic: log it, mark the machine crashed, and return
    /// the error the caller should propagate.
    ///
    /// Use as `return Err(env.panic("reiserfs", "..."))`.
    pub fn panic(&self, subsystem: &'static str, msg: impl Into<String>) -> VfsError {
        let msg = msg.into();
        self.klog.panic(subsystem, msg.clone());
        *self.state.lock().unwrap() = MountState::Crashed;
        VfsError::KernelPanic(msg)
    }

    /// Remount read-only (e.g. after ext3 aborts its journal). Idempotent;
    /// does not downgrade a crash.
    pub fn remount_readonly(&self, subsystem: &'static str, msg: impl Into<String>) {
        let mut st = self.state.lock().unwrap();
        if *st == MountState::ReadWrite {
            self.klog.error(subsystem, msg);
            *st = MountState::ReadOnly;
        }
    }

    /// Fail fast if the machine crashed or the file system is unmounted.
    /// Call at the top of every operation.
    pub fn check_alive(&self) -> VfsResult<()> {
        match self.state() {
            MountState::Crashed => Err(VfsError::KernelPanic("system crashed".into())),
            MountState::Unmounted => Err(Errno::ENODEV.into()),
            _ => Ok(()),
        }
    }

    /// Fail with `EROFS` if the file system cannot accept writes (also
    /// applies [`Self::check_alive`]).
    pub fn check_writable(&self) -> VfsResult<()> {
        self.check_alive()?;
        match self.state() {
            MountState::ReadOnly => Err(Errno::EROFS.into()),
            _ => Ok(()),
        }
    }
}

impl Default for FsEnv {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_read_write() {
        let env = FsEnv::new();
        assert_eq!(env.state(), MountState::ReadWrite);
        assert!(env.check_alive().is_ok());
        assert!(env.check_writable().is_ok());
    }

    #[test]
    fn panic_crashes_machine() {
        let env = FsEnv::new();
        let err = env.panic("reiserfs", "journal write failed");
        assert!(err.is_panic());
        assert_eq!(env.state(), MountState::Crashed);
        assert!(env.check_alive().is_err());
        assert!(env.klog.contains("journal write failed"));
    }

    #[test]
    fn remount_readonly_blocks_writes_only() {
        let env = FsEnv::new();
        env.remount_readonly("ext3", "ext3_abort: aborting journal");
        assert_eq!(env.state(), MountState::ReadOnly);
        assert!(env.check_alive().is_ok());
        assert_eq!(
            env.check_writable().unwrap_err().errno(),
            Some(Errno::EROFS)
        );
    }

    #[test]
    fn remount_readonly_does_not_undo_crash() {
        let env = FsEnv::new();
        let _ = env.panic("x", "boom");
        env.remount_readonly("x", "should be ignored");
        assert_eq!(env.state(), MountState::Crashed);
        assert!(!env.klog.contains("should be ignored"));
    }

    #[test]
    fn unmounted_returns_enodev() {
        let env = FsEnv::new();
        env.set_state(MountState::Unmounted);
        assert_eq!(env.check_alive().unwrap_err().errno(), Some(Errno::ENODEV));
    }

    #[test]
    fn clones_share_state() {
        let a = FsEnv::new();
        let b = a.clone();
        a.remount_readonly("fs", "ro");
        assert_eq!(b.state(), MountState::ReadOnly);
    }
}

//! [`Vfs`]: the generic syscall layer over a [`SpecificFs`].
//!
//! Provides every singlet workload in Table 3 of the paper: `access`,
//! `chdir`, `chroot`, `stat`, `statfs`, `lstat`, `open`, `utimes`, `read`,
//! `readlink`, `getdirentries`, `creat`, `link`, `mkdir`, `rename`, `chown`,
//! `symlink`, `write`, `truncate`, `rmdir`, `unlink`, `chmod`, `fsync`,
//! `sync`, `umount` (mount is the construction of the specific file system
//! itself), plus generic *path traversal*.

use iron_core::Errno;

use crate::fs::SpecificFs;
use crate::types::{
    DirEntry, Fd, FileType, Ino, InodeAttr, OpenFlags, StatFs, VfsError, VfsResult,
};

/// Maximum symlink-follow depth before `ELOOP`.
const MAX_SYMLINKS: usize = 8;
/// Maximum length of one path component.
const MAX_NAME: usize = 255;

#[derive(Clone, Debug)]
struct OpenFile {
    ino: Ino,
    flags: OpenFlags,
    offset: u64,
}

/// The generic file-system layer: path traversal, fd table, process state
/// (cwd/root), over any [`SpecificFs`].
pub struct Vfs<F: SpecificFs> {
    fs: F,
    fds: Vec<Option<OpenFile>>,
    cwd: Ino,
    root: Ino,
}

impl<F: SpecificFs> Vfs<F> {
    /// Wrap a mounted specific file system.
    pub fn new(fs: F) -> Self {
        let root = fs.root_ino();
        Vfs {
            fs,
            fds: Vec::new(),
            cwd: root,
            root,
        }
    }

    /// Borrow the specific file system.
    pub fn fs(&self) -> &F {
        &self.fs
    }

    /// Mutably borrow the specific file system.
    pub fn fs_mut(&mut self) -> &mut F {
        &mut self.fs
    }

    /// Consume the wrapper, returning the specific file system.
    pub fn into_fs(self) -> F {
        self.fs
    }

    // ------------------------------------------------------------------
    // Path traversal (the paper's "path traversal" generic workload).
    // ------------------------------------------------------------------

    fn resolve_from(
        &mut self,
        start: Ino,
        path: &str,
        follow_last: bool,
        depth: usize,
    ) -> VfsResult<Ino> {
        if depth > MAX_SYMLINKS {
            return Err(Errno::ELOOP.into());
        }
        let mut cur = if path.starts_with('/') {
            self.root
        } else {
            start
        };
        let comps: Vec<&str> = path.split('/').filter(|c| !c.is_empty()).collect();
        let n = comps.len();
        for (i, comp) in comps.into_iter().enumerate() {
            if comp.len() > MAX_NAME {
                return Err(Errno::ENAMETOOLONG.into());
            }
            let attr = self.fs.getattr(cur)?;
            if attr.ftype != FileType::Directory {
                return Err(Errno::ENOTDIR.into());
            }
            let next = self.fs.lookup(cur, comp)?;
            let nattr = self.fs.getattr(next)?;
            let last = i == n - 1;
            if nattr.ftype == FileType::Symlink && (!last || follow_last) {
                let target = self.fs.readlink(next)?;
                cur = self.resolve_from(cur, &target, true, depth + 1)?;
            } else {
                cur = next;
            }
        }
        Ok(cur)
    }

    /// Resolve a path to an inode, following symlinks (including a trailing
    /// one).
    pub fn resolve(&mut self, path: &str) -> VfsResult<Ino> {
        self.resolve_from(self.cwd, path, true, 0)
    }

    /// Resolve a path without following a trailing symlink (`lstat`-style).
    pub fn resolve_nofollow(&mut self, path: &str) -> VfsResult<Ino> {
        self.resolve_from(self.cwd, path, false, 0)
    }

    /// Split a path into (resolved parent directory inode, final name).
    pub fn resolve_parent(&mut self, path: &str) -> VfsResult<(Ino, String)> {
        let trimmed = path.trim_end_matches('/');
        if trimmed.is_empty() {
            return Err(Errno::EINVAL.into());
        }
        let (dir_part, name) = match trimmed.rfind('/') {
            Some(pos) => (&trimmed[..pos], &trimmed[pos + 1..]),
            None => ("", trimmed),
        };
        if name.is_empty() || name == "." || name == ".." {
            return Err(Errno::EINVAL.into());
        }
        if name.len() > MAX_NAME {
            return Err(Errno::ENAMETOOLONG.into());
        }
        let dir = if dir_part.is_empty() {
            if trimmed.starts_with('/') {
                self.root
            } else {
                self.cwd
            }
        } else {
            self.resolve_from(self.cwd, dir_part, true, 0)?
        };
        let attr = self.fs.getattr(dir)?;
        if attr.ftype != FileType::Directory {
            return Err(Errno::ENOTDIR.into());
        }
        Ok((dir, name.to_string()))
    }

    // ------------------------------------------------------------------
    // Process state.
    // ------------------------------------------------------------------

    /// `chdir(2)`.
    pub fn chdir(&mut self, path: &str) -> VfsResult<()> {
        let ino = self.resolve(path)?;
        if self.fs.getattr(ino)?.ftype != FileType::Directory {
            return Err(Errno::ENOTDIR.into());
        }
        self.cwd = ino;
        Ok(())
    }

    /// `chroot(2)`.
    pub fn chroot(&mut self, path: &str) -> VfsResult<()> {
        let ino = self.resolve(path)?;
        if self.fs.getattr(ino)?.ftype != FileType::Directory {
            return Err(Errno::ENOTDIR.into());
        }
        self.root = ino;
        self.cwd = ino;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Metadata syscalls.
    // ------------------------------------------------------------------

    /// `stat(2)` (follows symlinks).
    pub fn stat(&mut self, path: &str) -> VfsResult<InodeAttr> {
        let ino = self.resolve(path)?;
        self.fs.getattr(ino)
    }

    /// `lstat(2)` (does not follow a trailing symlink).
    pub fn lstat(&mut self, path: &str) -> VfsResult<InodeAttr> {
        let ino = self.resolve_nofollow(path)?;
        self.fs.getattr(ino)
    }

    /// `access(2)` — existence check in our permission-free model.
    pub fn access(&mut self, path: &str) -> VfsResult<()> {
        self.resolve(path).map(|_| ())
    }

    /// `statfs(2)`.
    pub fn statfs(&mut self) -> VfsResult<StatFs> {
        self.fs.statfs()
    }

    /// `chmod(2)`.
    pub fn chmod(&mut self, path: &str, mode: u32) -> VfsResult<()> {
        let ino = self.resolve(path)?;
        self.fs.chmod(ino, mode)
    }

    /// `chown(2)`.
    pub fn chown(&mut self, path: &str, uid: u32, gid: u32) -> VfsResult<()> {
        let ino = self.resolve(path)?;
        self.fs.chown(ino, uid, gid)
    }

    /// `utimes(2)`.
    pub fn utimes(&mut self, path: &str, mtime: u64) -> VfsResult<()> {
        let ino = self.resolve(path)?;
        self.fs.utimes(ino, mtime)
    }

    // ------------------------------------------------------------------
    // Namespace syscalls.
    // ------------------------------------------------------------------

    /// `mkdir(2)`.
    pub fn mkdir(&mut self, path: &str, mode: u32) -> VfsResult<()> {
        let (dir, name) = self.resolve_parent(path)?;
        self.fs.mkdir(dir, &name, mode).map(|_| ())
    }

    /// `rmdir(2)`.
    pub fn rmdir(&mut self, path: &str) -> VfsResult<()> {
        let (dir, name) = self.resolve_parent(path)?;
        self.fs.rmdir(dir, &name)
    }

    /// `unlink(2)`.
    pub fn unlink(&mut self, path: &str) -> VfsResult<()> {
        let (dir, name) = self.resolve_parent(path)?;
        self.fs.unlink(dir, &name)
    }

    /// `link(2)` — hard link `new` to existing `old`.
    pub fn link(&mut self, old: &str, new: &str) -> VfsResult<()> {
        let ino = self.resolve(old)?;
        if self.fs.getattr(ino)?.ftype == FileType::Directory {
            return Err(Errno::EISDIR.into());
        }
        let (dir, name) = self.resolve_parent(new)?;
        self.fs.link(ino, dir, &name)
    }

    /// `symlink(2)`.
    pub fn symlink(&mut self, target: &str, linkpath: &str) -> VfsResult<()> {
        let (dir, name) = self.resolve_parent(linkpath)?;
        self.fs.symlink(dir, &name, target).map(|_| ())
    }

    /// `readlink(2)`.
    pub fn readlink(&mut self, path: &str) -> VfsResult<String> {
        let ino = self.resolve_nofollow(path)?;
        if self.fs.getattr(ino)?.ftype != FileType::Symlink {
            return Err(Errno::EINVAL.into());
        }
        self.fs.readlink(ino)
    }

    /// `rename(2)`.
    ///
    /// The generic layer performs the classic ancestry check: a directory
    /// cannot be moved into itself or its own subtree (`EINVAL`), which
    /// would orphan it.
    pub fn rename(&mut self, from: &str, to: &str) -> VfsResult<()> {
        let (sdir, sname) = self.resolve_parent(from)?;
        let (ddir, dname) = self.resolve_parent(to)?;
        let src = self.fs.lookup(sdir, &sname)?;
        if self.fs.getattr(src)?.ftype == FileType::Directory {
            let mut cur = ddir;
            loop {
                if cur == src {
                    return Err(Errno::EINVAL.into());
                }
                if cur == self.root || cur == self.fs.root_ino() {
                    break;
                }
                let parent = self.fs.lookup(cur, "..")?;
                if parent == cur {
                    break;
                }
                cur = parent;
            }
        }
        self.fs.rename(sdir, &sname, ddir, &dname)
    }

    /// `getdirentries` / `readdir(3)`.
    pub fn readdir(&mut self, path: &str) -> VfsResult<Vec<DirEntry>> {
        let ino = self.resolve(path)?;
        if self.fs.getattr(ino)?.ftype != FileType::Directory {
            return Err(Errno::ENOTDIR.into());
        }
        self.fs.readdir(ino)
    }

    // ------------------------------------------------------------------
    // File I/O syscalls.
    // ------------------------------------------------------------------

    /// `open(2)`.
    pub fn open(&mut self, path: &str, flags: OpenFlags) -> VfsResult<Fd> {
        let ino = match self.resolve(path) {
            Ok(ino) => {
                let attr = self.fs.getattr(ino)?;
                if attr.ftype == FileType::Directory && flags.write {
                    return Err(Errno::EISDIR.into());
                }
                if flags.truncate && flags.write {
                    self.fs.truncate(ino, 0)?;
                }
                ino
            }
            Err(VfsError::Errno(Errno::ENOENT)) if flags.create => {
                let (dir, name) = self.resolve_parent(path)?;
                self.fs.create(dir, &name, 0o644)?
            }
            Err(e) => return Err(e),
        };
        let file = OpenFile {
            ino,
            flags,
            offset: 0,
        };
        let slot = self.fds.iter().position(Option::is_none);
        let fd = match slot {
            Some(i) => {
                self.fds[i] = Some(file);
                i
            }
            None => {
                self.fds.push(Some(file));
                self.fds.len() - 1
            }
        };
        Ok(Fd(fd))
    }

    /// `creat(2)` — `open(path, O_WRONLY|O_CREAT|O_TRUNC)`.
    pub fn creat(&mut self, path: &str) -> VfsResult<Fd> {
        self.open(path, OpenFlags::creat())
    }

    /// `close(2)`.
    pub fn close(&mut self, fd: Fd) -> VfsResult<()> {
        let slot = self.fds.get_mut(fd.0).ok_or(Errno::EBADF)?;
        if slot.take().is_none() {
            return Err(Errno::EBADF.into());
        }
        Ok(())
    }

    fn file(&self, fd: Fd) -> VfsResult<&OpenFile> {
        self.fds
            .get(fd.0)
            .and_then(Option::as_ref)
            .ok_or_else(|| Errno::EBADF.into())
    }

    /// `read(2)` at the fd's current offset.
    pub fn read(&mut self, fd: Fd, len: usize) -> VfsResult<Vec<u8>> {
        let (ino, off, can_read) = {
            let f = self.file(fd)?;
            (f.ino, f.offset, f.flags.read)
        };
        if !can_read {
            return Err(Errno::EBADF.into());
        }
        let data = self.fs.read(ino, off, len)?;
        if let Some(Some(f)) = self.fds.get_mut(fd.0) {
            f.offset += data.len() as u64;
        }
        Ok(data)
    }

    /// `pread(2)` — positional read; does not move the offset.
    pub fn pread(&mut self, fd: Fd, off: u64, len: usize) -> VfsResult<Vec<u8>> {
        let (ino, can_read) = {
            let f = self.file(fd)?;
            (f.ino, f.flags.read)
        };
        if !can_read {
            return Err(Errno::EBADF.into());
        }
        self.fs.read(ino, off, len)
    }

    /// `write(2)` at the fd's current offset (or EOF if `O_APPEND`).
    pub fn write(&mut self, fd: Fd, data: &[u8]) -> VfsResult<usize> {
        let (ino, mut off, flags) = {
            let f = self.file(fd)?;
            (f.ino, f.offset, f.flags)
        };
        if !flags.write {
            return Err(Errno::EBADF.into());
        }
        if flags.append {
            off = self.fs.getattr(ino)?.size;
        }
        let n = self.fs.write(ino, off, data)?;
        if let Some(Some(f)) = self.fds.get_mut(fd.0) {
            f.offset = off + n as u64;
        }
        Ok(n)
    }

    /// `pwrite(2)` — positional write; does not move the offset.
    pub fn pwrite(&mut self, fd: Fd, off: u64, data: &[u8]) -> VfsResult<usize> {
        let (ino, can_write) = {
            let f = self.file(fd)?;
            (f.ino, f.flags.write)
        };
        if !can_write {
            return Err(Errno::EBADF.into());
        }
        self.fs.write(ino, off, data)
    }

    /// `lseek(2)` to an absolute offset.
    pub fn seek(&mut self, fd: Fd, off: u64) -> VfsResult<()> {
        let slot = self
            .fds
            .get_mut(fd.0)
            .and_then(Option::as_mut)
            .ok_or(Errno::EBADF)?;
        slot.offset = off;
        Ok(())
    }

    /// `truncate(2)` by path.
    pub fn truncate(&mut self, path: &str, size: u64) -> VfsResult<()> {
        let ino = self.resolve(path)?;
        if self.fs.getattr(ino)?.ftype == FileType::Directory {
            return Err(Errno::EISDIR.into());
        }
        self.fs.truncate(ino, size)
    }

    /// `fsync(2)`.
    pub fn fsync(&mut self, fd: Fd) -> VfsResult<()> {
        let ino = self.file(fd)?.ino;
        self.fs.fsync(ino)
    }

    /// `sync(2)`.
    pub fn sync(&mut self) -> VfsResult<()> {
        self.fs.sync()
    }

    /// `umount(2)` — closes all fds and cleanly unmounts.
    pub fn umount(&mut self) -> VfsResult<()> {
        self.fds.clear();
        self.fs.unmount()
    }

    // ------------------------------------------------------------------
    // Convenience helpers used heavily by workloads and tests.
    // ------------------------------------------------------------------

    /// Create (or truncate) a file at `path` and write `data` to it.
    pub fn write_file(&mut self, path: &str, data: &[u8]) -> VfsResult<()> {
        let fd = self.creat(path)?;
        let mut written = 0;
        while written < data.len() {
            written += self.write(fd, &data[written..])?;
        }
        self.close(fd)
    }

    /// Read the entire contents of the file at `path`.
    pub fn read_file(&mut self, path: &str) -> VfsResult<Vec<u8>> {
        let fd = self.open(path, OpenFlags::rdonly())?;
        let size = {
            let ino = self.file(fd)?.ino;
            self.fs.getattr(ino)?.size
        };
        let mut out = Vec::with_capacity(size as usize);
        loop {
            let chunk = self.read(fd, 64 * 1024)?;
            if chunk.is_empty() {
                break;
            }
            out.extend_from_slice(&chunk);
        }
        self.close(fd)?;
        Ok(out)
    }
}

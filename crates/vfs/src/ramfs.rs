//! [`RamFs`]: an in-memory reference implementation of [`SpecificFs`].
//!
//! RamFs has no disk and therefore no failure policy — it exists (a) as the
//! executable specification the on-disk models are tested against, and
//! (b) to exercise the generic [`crate::Vfs`] layer in isolation.

use std::collections::BTreeMap;

use iron_core::Errno;

use crate::env::{FsEnv, MountState};
use crate::fs::SpecificFs;
use crate::types::{DirEntry, FileType, Ino, InodeAttr, StatFs, VfsResult};

#[derive(Clone, Debug)]
enum Node {
    File { data: Vec<u8> },
    Dir { entries: BTreeMap<String, Ino> },
    Symlink { target: String },
}

#[derive(Clone, Debug)]
struct Inode {
    node: Node,
    attr: InodeAttr,
}

/// An in-memory file system.
pub struct RamFs {
    env: FsEnv,
    inodes: BTreeMap<Ino, Inode>,
    next_ino: Ino,
}

const ROOT: Ino = 1;

impl RamFs {
    /// A fresh, empty file system with its own environment.
    pub fn new() -> Self {
        Self::with_env(FsEnv::new())
    }

    /// A fresh, empty file system sharing the given environment.
    pub fn with_env(env: FsEnv) -> Self {
        let mut inodes = BTreeMap::new();
        let mut entries = BTreeMap::new();
        entries.insert(".".to_string(), ROOT);
        entries.insert("..".to_string(), ROOT);
        inodes.insert(
            ROOT,
            Inode {
                node: Node::Dir { entries },
                attr: InodeAttr::new(ROOT, FileType::Directory, 0o755),
            },
        );
        RamFs {
            env,
            inodes,
            next_ino: 2,
        }
    }

    fn inode(&self, ino: Ino) -> VfsResult<&Inode> {
        self.inodes.get(&ino).ok_or_else(|| Errno::ENOENT.into())
    }

    fn inode_mut(&mut self, ino: Ino) -> VfsResult<&mut Inode> {
        self.inodes
            .get_mut(&ino)
            .ok_or_else(|| Errno::ENOENT.into())
    }

    fn dir_entries(&self, ino: Ino) -> VfsResult<&BTreeMap<String, Ino>> {
        match &self.inode(ino)?.node {
            Node::Dir { entries } => Ok(entries),
            _ => Err(Errno::ENOTDIR.into()),
        }
    }

    fn dir_entries_mut(&mut self, ino: Ino) -> VfsResult<&mut BTreeMap<String, Ino>> {
        match &mut self.inode_mut(ino)?.node {
            Node::Dir { entries } => Ok(entries),
            _ => Err(Errno::ENOTDIR.into()),
        }
    }

    fn alloc(&mut self, node: Node, ftype: FileType, mode: u32) -> Ino {
        let ino = self.next_ino;
        self.next_ino += 1;
        self.inodes.insert(
            ino,
            Inode {
                node,
                attr: InodeAttr::new(ino, ftype, mode),
            },
        );
        ino
    }

    fn insert_entry(&mut self, dir: Ino, name: &str, ino: Ino) -> VfsResult<()> {
        let entries = self.dir_entries_mut(dir)?;
        if entries.contains_key(name) {
            return Err(Errno::EEXIST.into());
        }
        entries.insert(name.to_string(), ino);
        Ok(())
    }

    /// Drop an inode once its link count reaches zero.
    fn maybe_free(&mut self, ino: Ino) {
        if let Some(inode) = self.inodes.get(&ino) {
            if inode.attr.nlink == 0 {
                self.inodes.remove(&ino);
            }
        }
    }
}

impl Default for RamFs {
    fn default() -> Self {
        Self::new()
    }
}

impl SpecificFs for RamFs {
    fn env(&self) -> &FsEnv {
        &self.env
    }

    fn root_ino(&self) -> Ino {
        ROOT
    }

    fn lookup(&mut self, dir: Ino, name: &str) -> VfsResult<Ino> {
        self.env.check_alive()?;
        self.dir_entries(dir)?
            .get(name)
            .copied()
            .ok_or_else(|| Errno::ENOENT.into())
    }

    fn getattr(&mut self, ino: Ino) -> VfsResult<InodeAttr> {
        self.env.check_alive()?;
        Ok(self.inode(ino)?.attr)
    }

    fn chmod(&mut self, ino: Ino, mode: u32) -> VfsResult<()> {
        self.env.check_writable()?;
        self.inode_mut(ino)?.attr.mode = mode;
        Ok(())
    }

    fn chown(&mut self, ino: Ino, uid: u32, gid: u32) -> VfsResult<()> {
        self.env.check_writable()?;
        let attr = &mut self.inode_mut(ino)?.attr;
        attr.uid = uid;
        attr.gid = gid;
        Ok(())
    }

    fn utimes(&mut self, ino: Ino, mtime: u64) -> VfsResult<()> {
        self.env.check_writable()?;
        self.inode_mut(ino)?.attr.mtime = mtime;
        Ok(())
    }

    fn create(&mut self, dir: Ino, name: &str, mode: u32) -> VfsResult<Ino> {
        self.env.check_writable()?;
        if self.dir_entries(dir)?.contains_key(name) {
            return Err(Errno::EEXIST.into());
        }
        let ino = self.alloc(Node::File { data: Vec::new() }, FileType::Regular, mode);
        self.insert_entry(dir, name, ino)?;
        Ok(ino)
    }

    fn mkdir(&mut self, dir: Ino, name: &str, mode: u32) -> VfsResult<Ino> {
        self.env.check_writable()?;
        if self.dir_entries(dir)?.contains_key(name) {
            return Err(Errno::EEXIST.into());
        }
        let mut entries = BTreeMap::new();
        let ino = self.alloc(
            Node::Dir {
                entries: BTreeMap::new(),
            },
            FileType::Directory,
            mode,
        );
        entries.insert(".".to_string(), ino);
        entries.insert("..".to_string(), dir);
        match &mut self.inode_mut(ino)?.node {
            Node::Dir { entries: e } => *e = entries,
            _ => unreachable!("just allocated as dir"),
        }
        self.insert_entry(dir, name, ino)?;
        self.inode_mut(dir)?.attr.nlink += 1;
        Ok(ino)
    }

    fn unlink(&mut self, dir: Ino, name: &str) -> VfsResult<()> {
        self.env.check_writable()?;
        let ino = self.lookup(dir, name)?;
        if self.inode(ino)?.attr.ftype == FileType::Directory {
            return Err(Errno::EISDIR.into());
        }
        self.dir_entries_mut(dir)?.remove(name);
        self.inode_mut(ino)?.attr.nlink -= 1;
        self.maybe_free(ino);
        Ok(())
    }

    fn rmdir(&mut self, dir: Ino, name: &str) -> VfsResult<()> {
        self.env.check_writable()?;
        let ino = self.lookup(dir, name)?;
        {
            let inode = self.inode(ino)?;
            match &inode.node {
                Node::Dir { entries } => {
                    if entries.keys().any(|k| k != "." && k != "..") {
                        return Err(Errno::ENOTEMPTY.into());
                    }
                }
                _ => return Err(Errno::ENOTDIR.into()),
            }
        }
        self.dir_entries_mut(dir)?.remove(name);
        self.inodes.remove(&ino);
        self.inode_mut(dir)?.attr.nlink -= 1;
        Ok(())
    }

    fn link(&mut self, ino: Ino, dir: Ino, name: &str) -> VfsResult<()> {
        self.env.check_writable()?;
        if self.inode(ino)?.attr.ftype == FileType::Directory {
            return Err(Errno::EISDIR.into());
        }
        self.insert_entry(dir, name, ino)?;
        self.inode_mut(ino)?.attr.nlink += 1;
        Ok(())
    }

    fn symlink(&mut self, dir: Ino, name: &str, target: &str) -> VfsResult<Ino> {
        self.env.check_writable()?;
        if self.dir_entries(dir)?.contains_key(name) {
            return Err(Errno::EEXIST.into());
        }
        let ino = self.alloc(
            Node::Symlink {
                target: target.to_string(),
            },
            FileType::Symlink,
            0o777,
        );
        self.inode_mut(ino)?.attr.size = target.len() as u64;
        self.insert_entry(dir, name, ino)?;
        Ok(ino)
    }

    fn readlink(&mut self, ino: Ino) -> VfsResult<String> {
        self.env.check_alive()?;
        match &self.inode(ino)?.node {
            Node::Symlink { target } => Ok(target.clone()),
            _ => Err(Errno::EINVAL.into()),
        }
    }

    fn rename(
        &mut self,
        src_dir: Ino,
        src_name: &str,
        dst_dir: Ino,
        dst_name: &str,
    ) -> VfsResult<()> {
        self.env.check_writable()?;
        let ino = self.lookup(src_dir, src_name)?;
        // Replace any existing destination (files only, to keep it simple).
        if let Ok(existing) = self.lookup(dst_dir, dst_name) {
            if existing != ino {
                if self.inode(existing)?.attr.ftype == FileType::Directory {
                    return Err(Errno::EISDIR.into());
                }
                self.dir_entries_mut(dst_dir)?.remove(dst_name);
                self.inode_mut(existing)?.attr.nlink -= 1;
                self.maybe_free(existing);
            }
        }
        self.dir_entries_mut(src_dir)?.remove(src_name);
        self.dir_entries_mut(dst_dir)?
            .insert(dst_name.to_string(), ino);
        // Fix ".." if a directory moved between parents.
        if src_dir != dst_dir {
            if let Node::Dir { entries } = &mut self.inode_mut(ino)?.node {
                entries.insert("..".to_string(), dst_dir);
                self.inode_mut(src_dir)?.attr.nlink -= 1;
                self.inode_mut(dst_dir)?.attr.nlink += 1;
            }
        }
        Ok(())
    }

    fn read(&mut self, ino: Ino, off: u64, len: usize) -> VfsResult<Vec<u8>> {
        self.env.check_alive()?;
        match &self.inode(ino)?.node {
            Node::File { data } => {
                let off = off as usize;
                if off >= data.len() {
                    return Ok(Vec::new());
                }
                let end = (off + len).min(data.len());
                Ok(data[off..end].to_vec())
            }
            Node::Dir { .. } => Err(Errno::EISDIR.into()),
            Node::Symlink { .. } => Err(Errno::EINVAL.into()),
        }
    }

    fn write(&mut self, ino: Ino, off: u64, data: &[u8]) -> VfsResult<usize> {
        self.env.check_writable()?;
        let inode = self.inode_mut(ino)?;
        match &mut inode.node {
            Node::File { data: file } => {
                let off = off as usize;
                if off + data.len() > file.len() {
                    file.resize(off + data.len(), 0);
                }
                file[off..off + data.len()].copy_from_slice(data);
                inode.attr.size = file.len() as u64;
                Ok(data.len())
            }
            Node::Dir { .. } => Err(Errno::EISDIR.into()),
            Node::Symlink { .. } => Err(Errno::EINVAL.into()),
        }
    }

    fn truncate(&mut self, ino: Ino, size: u64) -> VfsResult<()> {
        self.env.check_writable()?;
        let inode = self.inode_mut(ino)?;
        match &mut inode.node {
            Node::File { data } => {
                data.resize(size as usize, 0);
                inode.attr.size = size;
                Ok(())
            }
            _ => Err(Errno::EISDIR.into()),
        }
    }

    fn readdir(&mut self, dir: Ino) -> VfsResult<Vec<DirEntry>> {
        self.env.check_alive()?;
        let entries = self.dir_entries(dir)?.clone();
        entries
            .into_iter()
            .map(|(name, ino)| {
                let ftype = self.inode(ino)?.attr.ftype;
                Ok(DirEntry { name, ino, ftype })
            })
            .collect()
    }

    fn fsync(&mut self, _ino: Ino) -> VfsResult<()> {
        self.env.check_alive()
    }

    fn sync(&mut self) -> VfsResult<()> {
        self.env.check_alive()
    }

    fn statfs(&mut self) -> VfsResult<StatFs> {
        self.env.check_alive()?;
        Ok(StatFs {
            block_size: iron_core::BLOCK_SIZE as u32,
            blocks: u64::MAX / 2,
            blocks_free: u64::MAX / 2,
            inodes: u64::MAX / 2,
            inodes_free: u64::MAX / 2 - self.inodes.len() as u64,
        })
    }

    fn unmount(&mut self) -> VfsResult<()> {
        self.env.check_alive()?;
        self.env.set_state(MountState::Unmounted);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::OpenFlags;
    use crate::vfs::Vfs;

    fn vfs() -> Vfs<RamFs> {
        Vfs::new(RamFs::new())
    }

    #[test]
    fn create_write_read_round_trip() {
        let mut v = vfs();
        v.write_file("/hello.txt", b"hello world").unwrap();
        assert_eq!(v.read_file("/hello.txt").unwrap(), b"hello world");
        let attr = v.stat("/hello.txt").unwrap();
        assert_eq!(attr.size, 11);
        assert_eq!(attr.ftype, FileType::Regular);
    }

    #[test]
    fn nested_directories_and_traversal() {
        let mut v = vfs();
        v.mkdir("/a", 0o755).unwrap();
        v.mkdir("/a/b", 0o755).unwrap();
        v.mkdir("/a/b/c", 0o755).unwrap();
        v.write_file("/a/b/c/f.txt", b"deep").unwrap();
        assert_eq!(v.read_file("/a/b/c/f.txt").unwrap(), b"deep");
        // Relative traversal via chdir, "." and "..".
        v.chdir("/a/b").unwrap();
        assert_eq!(v.read_file("c/f.txt").unwrap(), b"deep");
        assert_eq!(v.read_file("./c/../c/f.txt").unwrap(), b"deep");
        assert_eq!(v.read_file("../b/c/f.txt").unwrap(), b"deep");
    }

    #[test]
    fn enoent_and_eexist() {
        let mut v = vfs();
        assert_eq!(v.stat("/missing").unwrap_err().errno(), Some(Errno::ENOENT));
        v.mkdir("/d", 0o755).unwrap();
        assert_eq!(
            v.mkdir("/d", 0o755).unwrap_err().errno(),
            Some(Errno::EEXIST)
        );
    }

    #[test]
    fn unlink_and_rmdir_semantics() {
        let mut v = vfs();
        v.mkdir("/d", 0o755).unwrap();
        v.write_file("/d/f", b"x").unwrap();
        assert_eq!(
            v.rmdir("/d").unwrap_err().errno(),
            Some(Errno::ENOTEMPTY),
            "non-empty dir must not be removable"
        );
        assert_eq!(v.unlink("/d").unwrap_err().errno(), Some(Errno::EISDIR));
        v.unlink("/d/f").unwrap();
        v.rmdir("/d").unwrap();
        assert_eq!(v.stat("/d").unwrap_err().errno(), Some(Errno::ENOENT));
    }

    #[test]
    fn hard_links_share_data() {
        let mut v = vfs();
        v.write_file("/orig", b"content").unwrap();
        v.link("/orig", "/alias").unwrap();
        assert_eq!(v.stat("/alias").unwrap().nlink, 2);
        assert_eq!(v.read_file("/alias").unwrap(), b"content");
        v.unlink("/orig").unwrap();
        assert_eq!(v.read_file("/alias").unwrap(), b"content");
        assert_eq!(v.stat("/alias").unwrap().nlink, 1);
    }

    #[test]
    fn symlinks_follow_and_nofollow() {
        let mut v = vfs();
        v.write_file("/target", b"real").unwrap();
        v.symlink("/target", "/lnk").unwrap();
        assert_eq!(v.read_file("/lnk").unwrap(), b"real");
        assert_eq!(v.stat("/lnk").unwrap().ftype, FileType::Regular);
        assert_eq!(v.lstat("/lnk").unwrap().ftype, FileType::Symlink);
        assert_eq!(v.readlink("/lnk").unwrap(), "/target");
    }

    #[test]
    fn symlink_loops_return_eloop() {
        let mut v = vfs();
        v.symlink("/b", "/a").unwrap();
        v.symlink("/a", "/b").unwrap();
        assert_eq!(v.stat("/a").unwrap_err().errno(), Some(Errno::ELOOP));
    }

    #[test]
    fn rename_replaces_destination() {
        let mut v = vfs();
        v.write_file("/one", b"1").unwrap();
        v.write_file("/two", b"2").unwrap();
        v.rename("/one", "/two").unwrap();
        assert_eq!(v.stat("/one").unwrap_err().errno(), Some(Errno::ENOENT));
        assert_eq!(v.read_file("/two").unwrap(), b"1");
    }

    #[test]
    fn rename_directory_across_parents_updates_dotdot() {
        let mut v = vfs();
        v.mkdir("/p1", 0o755).unwrap();
        v.mkdir("/p2", 0o755).unwrap();
        v.mkdir("/p1/child", 0o755).unwrap();
        v.write_file("/p1/child/f", b"x").unwrap();
        v.rename("/p1/child", "/p2/moved").unwrap();
        assert_eq!(v.read_file("/p2/moved/f").unwrap(), b"x");
        v.chdir("/p2/moved").unwrap();
        v.chdir("..").unwrap();
        assert_eq!(v.stat("moved").unwrap().ftype, FileType::Directory);
    }

    #[test]
    fn fd_offsets_and_append() {
        let mut v = vfs();
        let fd = v.creat("/f").unwrap();
        v.write(fd, b"abc").unwrap();
        v.write(fd, b"def").unwrap();
        v.close(fd).unwrap();
        assert_eq!(v.read_file("/f").unwrap(), b"abcdef");

        let fd = v
            .open(
                "/f",
                OpenFlags {
                    write: true,
                    append: true,
                    ..Default::default()
                },
            )
            .unwrap();
        v.write(fd, b"!").unwrap();
        v.close(fd).unwrap();
        assert_eq!(v.read_file("/f").unwrap(), b"abcdef!");
    }

    #[test]
    fn pread_pwrite_do_not_move_offset() {
        let mut v = vfs();
        v.write_file("/f", b"0123456789").unwrap();
        let fd = v.open("/f", OpenFlags::rdwr()).unwrap();
        assert_eq!(v.pread(fd, 4, 3).unwrap(), b"456");
        assert_eq!(v.read(fd, 2).unwrap(), b"01");
        v.pwrite(fd, 0, b"XX").unwrap();
        assert_eq!(v.read(fd, 2).unwrap(), b"23");
        v.close(fd).unwrap();
        assert_eq!(&v.read_file("/f").unwrap()[..2], b"XX");
    }

    #[test]
    fn truncate_shrinks_and_extends() {
        let mut v = vfs();
        v.write_file("/f", b"hello world").unwrap();
        v.truncate("/f", 5).unwrap();
        assert_eq!(v.read_file("/f").unwrap(), b"hello");
        v.truncate("/f", 8).unwrap();
        assert_eq!(v.read_file("/f").unwrap(), b"hello\0\0\0");
    }

    #[test]
    fn readdir_lists_entries() {
        let mut v = vfs();
        v.mkdir("/d", 0o755).unwrap();
        v.write_file("/d/x", b"").unwrap();
        v.write_file("/d/y", b"").unwrap();
        let names: Vec<String> = v
            .readdir("/d")
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(names, vec![".", "..", "x", "y"]);
    }

    #[test]
    fn chroot_limits_namespace() {
        let mut v = vfs();
        v.mkdir("/jail", 0o755).unwrap();
        v.write_file("/jail/inside", b"in").unwrap();
        v.write_file("/outside", b"out").unwrap();
        v.chroot("/jail").unwrap();
        assert_eq!(v.read_file("/inside").unwrap(), b"in");
        assert_eq!(v.stat("/outside").unwrap_err().errno(), Some(Errno::ENOENT));
    }

    #[test]
    fn bad_fd_is_ebadf() {
        let mut v = vfs();
        assert_eq!(v.read(Fd(42), 1).unwrap_err().errno(), Some(Errno::EBADF));
        let fd = v.creat("/f").unwrap();
        v.close(fd).unwrap();
        assert_eq!(v.close(fd).unwrap_err().errno(), Some(Errno::EBADF));
    }

    use crate::types::Fd;

    #[test]
    fn umount_then_everything_is_enodev() {
        let mut v = vfs();
        v.write_file("/f", b"x").unwrap();
        v.umount().unwrap();
        assert_eq!(v.stat("/f").unwrap_err().errno(), Some(Errno::ENODEV));
    }

    #[test]
    fn readonly_env_rejects_writes() {
        let mut v = vfs();
        v.write_file("/f", b"x").unwrap();
        v.fs().env().remount_readonly("test", "forced ro");
        assert_eq!(
            v.write_file("/g", b"y").unwrap_err().errno(),
            Some(Errno::EROFS)
        );
        // Reads still work.
        assert_eq!(v.read_file("/f").unwrap(), b"x");
    }

    #[test]
    fn chmod_chown_utimes() {
        let mut v = vfs();
        v.write_file("/f", b"x").unwrap();
        v.chmod("/f", 0o600).unwrap();
        v.chown("/f", 10, 20).unwrap();
        v.utimes("/f", 999).unwrap();
        let a = v.stat("/f").unwrap();
        assert_eq!((a.mode, a.uid, a.gid, a.mtime), (0o600, 10, 20, 999));
    }

    #[test]
    fn open_create_flag_creates() {
        let mut v = vfs();
        let fd = v
            .open(
                "/new",
                OpenFlags {
                    read: true,
                    write: true,
                    create: true,
                    ..Default::default()
                },
            )
            .unwrap();
        v.write(fd, b"made").unwrap();
        v.close(fd).unwrap();
        assert_eq!(v.read_file("/new").unwrap(), b"made");
    }
}

//! # iron-vfs
//!
//! The *generic* half of the file-system split in Figure 1 of the paper:
//! "This layer is often split into two pieces: a high-level component common
//! to all file systems, and a specific component that maps generic
//! operations onto the data structures of the particular file system."
//!
//! * [`SpecificFs`] is the interface each specific file system (ext3,
//!   ReiserFS, JFS, NTFS, ixt3) implements — inode-level operations.
//! * [`Vfs`] wraps a `SpecificFs` and provides the POSIX-style syscall
//!   surface the fingerprinting workloads exercise (every singlet in
//!   Table 3): path traversal, file descriptors, cwd/chroot state.
//! * [`FsEnv`] is the simulated kernel environment: the kernel log plus the
//!   mount state machine (read-write → read-only → crashed). ReiserFS's
//!   `panic()` and ext3's journal abort are transitions of this machine,
//!   observable by the fingerprinting framework.
//!
//! The paper notes that *failure policy diffusion* between generic and
//! specific code causes illogical inconsistencies (§5.6); keeping the split
//! explicit lets our models place each behavior where the real system had
//! it (e.g. JFS's single-retry lives in "generic" helper code in the
//! `iron-jfs` crate).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod env;
pub mod fs;
pub mod paths;
pub mod ramfs;
pub mod types;
pub mod vfs;

pub use env::{FsEnv, MountState};
pub use fs::SpecificFs;
pub use types::{DirEntry, Fd, FileType, InodeAttr, OpenFlags, StatFs, VfsError, VfsResult};
pub use vfs::Vfs;

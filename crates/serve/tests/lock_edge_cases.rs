//! Lock-manager edge cases, each checked against the serial-replay
//! oracle: rename across directories, concurrent create/unlink of one
//! name, fsync racing writes, a linearizability spot-check on a single
//! contended file, and a termination test for the deadlock-exclusion
//! argument (opposed rename pairs).

use iron_serve::{
    assert_serial_equivalence, digest, payload, replay_serial, serve, Reply, Request, ServeOptions,
    Session,
};
use iron_vfs::ramfs::RamFs;
use iron_vfs::Vfs;

const WIDTHS: [usize; 4] = [1, 2, 4, 8];

/// Build sessions from per-session request lists (ids are slice indexes).
fn sessions_of(lists: Vec<Vec<Request>>) -> Vec<Session> {
    lists
        .into_iter()
        .enumerate()
        .map(|(id, requests)| Session { id, requests })
        .collect()
}

fn create(path: &str) -> Request {
    Request::Create {
        path: path.into(),
        mode: 0o644,
    }
}

fn write(path: &str, off: u64, len: usize, seed: u64) -> Request {
    Request::Write {
        path: path.into(),
        off,
        len,
        seed,
    }
}

/// Fresh fs with `/a` and `/b` directories and `/a/x` seeded.
fn two_dir_fixture() -> Vfs<RamFs> {
    let mut v = Vfs::new(RamFs::new());
    v.mkdir("/a", 0o755).unwrap();
    v.mkdir("/b", 0o755).unwrap();
    v.write_file("/a/x", b"payload-x").unwrap();
    v
}

fn assert_ram_equivalence<Mk: Fn() -> Vfs<RamFs>>(mk: Mk, sessions: &[Session]) {
    assert_serial_equivalence(mk, |_v| None, sessions, &WIDTHS);
}

#[test]
fn rename_across_directories_matches_serial_replay() {
    // Session 0 shuttles /a/x <-> /b/x; sessions 1 and 2 churn both
    // directories (create/unlink/readdir/stat) while the rename holds
    // exclusive locks on both endpoints and shared locks on both parents.
    let ping_pong: Vec<Request> = (0..10)
        .flat_map(|_| {
            vec![
                Request::Rename {
                    from: "/a/x".into(),
                    to: "/b/x".into(),
                },
                Request::Rename {
                    from: "/b/x".into(),
                    to: "/a/x".into(),
                },
            ]
        })
        .collect();
    let churn = |dir: &str, tag: usize| -> Vec<Request> {
        (0..10)
            .flat_map(|i| {
                vec![
                    create(&format!("{dir}/t{tag}_{i}")),
                    Request::Readdir { path: dir.into() },
                    Request::Stat {
                        path: format!("{dir}/x"),
                    },
                    Request::Unlink {
                        path: format!("{dir}/t{tag}_{i}"),
                    },
                ]
            })
            .collect()
    };
    let sessions = sessions_of(vec![ping_pong, churn("/a", 1), churn("/b", 2)]);
    assert_ram_equivalence(two_dir_fixture, &sessions);
}

#[test]
fn concurrent_create_unlink_of_same_name_matches_serial_replay() {
    // Four sessions fight over the single name /a/hot: exactly which
    // create wins and which unlink finds the file is decided by the lock
    // manager, and whatever it decides must replay identically.
    let fight: Vec<Request> = (0..12)
        .flat_map(|i| {
            vec![
                create("/a/hot"),
                write("/a/hot", 0, 128, 0xF00D + i),
                Request::Unlink {
                    path: "/a/hot".into(),
                },
            ]
        })
        .collect();
    let sessions = sessions_of(vec![fight.clone(), fight.clone(), fight.clone(), fight]);
    assert_ram_equivalence(two_dir_fixture, &sessions);
}

#[test]
fn fsync_racing_writes_matches_serial_replay() {
    let writer = |seed: u64| -> Vec<Request> {
        (0..16)
            .map(|i| write("/a/x", (i % 4) * 512, 700, seed.wrapping_mul(i + 1)))
            .collect()
    };
    let syncer: Vec<Request> = (0..16)
        .flat_map(|_| {
            vec![
                Request::Fsync {
                    path: "/a/x".into(),
                },
                Request::Read {
                    path: "/a/x".into(),
                    off: 0,
                    len: 2048,
                },
            ]
        })
        .collect();
    let sessions = sessions_of(vec![
        writer(0xA),
        writer(0xB),
        syncer,
        vec![Request::Sync; 8],
    ]);
    assert_ram_equivalence(two_dir_fixture, &sessions);
}

#[test]
fn linearizability_last_committed_write_wins() {
    // Every session overwrites the whole of /a/x with a session-unique
    // payload. The final content must be exactly the payload of the write
    // that committed last — no torn or merged states.
    const LEN: usize = 900;
    let sessions = sessions_of(
        (0..6u64)
            .map(|sid| {
                (0..8)
                    .map(|i| write("/a/x", 0, LEN, (sid << 8) | i))
                    .collect()
            })
            .collect(),
    );
    for &t in &WIDTHS {
        let mut v = two_dir_fixture();
        let report = serve(&mut v, &sessions, &ServeOptions::default().with_threads(t));
        let last = report
            .commit_log
            .iter()
            .rev()
            .find(|r| matches!(sessions[r.session].requests[r.index], Request::Write { .. }))
            .expect("at least one write committed");
        let Request::Write { seed, len, .. } = sessions[last.session].requests[last.index] else {
            unreachable!()
        };
        assert_eq!(
            report.responses[last.session][last.index],
            Ok(Reply::Written { n: LEN }),
            "t={t}: the winning write must have succeeded in full"
        );
        let content = v.read_file("/a/x").unwrap();
        assert_eq!(content.len(), LEN, "t={t}");
        assert_eq!(
            digest(&content),
            digest(&payload(seed, len)),
            "t={t}: final content is not the last committed write"
        );
    }
}

#[test]
fn opposed_rename_pairs_terminate_and_replay() {
    // Sessions rename in opposite directions — the classic deadlock shape
    // if each request locked its two endpoints in argument order. The
    // canonical sorted lock order excludes the cycle, so this terminates;
    // the serial oracle then checks it also stayed correct.
    let forward: Vec<Request> = (0..20)
        .flat_map(|_| {
            vec![
                Request::Rename {
                    from: "/a/x".into(),
                    to: "/b/y".into(),
                },
                Request::Rename {
                    from: "/b/y".into(),
                    to: "/a/x".into(),
                },
            ]
        })
        .collect();
    let backward: Vec<Request> = (0..20)
        .flat_map(|_| {
            vec![
                Request::Rename {
                    from: "/b/y".into(),
                    to: "/a/x".into(),
                },
                Request::Rename {
                    from: "/a/x".into(),
                    to: "/b/y".into(),
                },
            ]
        })
        .collect();
    let sessions = sessions_of(vec![forward.clone(), backward.clone(), forward, backward]);
    let mut v = two_dir_fixture();
    let report = serve(&mut v, &sessions, &ServeOptions::default().with_threads(8));

    let mut serial = two_dir_fixture();
    let replayed = replay_serial(&mut serial, &sessions, &report.commit_log);
    assert_eq!(report.responses, replayed);
}

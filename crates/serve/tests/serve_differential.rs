//! The serving layer's headline property, on `RamFs`: a concurrent run
//! at any thread count is indistinguishable from its own serial replay
//! in commit order — identical per-request responses and an identical
//! final namespace.
//!
//! The same property runs against every on-disk model (with the
//! bit-identical-image oracle added) in each FS crate's
//! `serve_differential.rs`.

use iron_serve::{
    assert_serial_equivalence, generate, prepare, serve, validate_commit_log, ServeOptions,
    WorkloadSpec,
};
use iron_vfs::ramfs::RamFs;
use iron_vfs::Vfs;

const WIDTHS: [usize; 4] = [1, 2, 4, 8];

fn ram_equivalence(spec: WorkloadSpec) {
    let sessions = generate(&spec);
    assert_serial_equivalence(
        || {
            let mut v = Vfs::new(RamFs::new());
            prepare(&mut v, &spec);
            v
        },
        |_v| None, // RamFs has no raw medium; the namespace fingerprint is the oracle
        &sessions,
        &WIDTHS,
    );
}

#[test]
fn default_workload_matches_serial_replay_at_all_widths() {
    ram_equivalence(WorkloadSpec::default());
}

#[test]
fn conflict_heavy_workload_matches_serial_replay() {
    // One shared file and one directory: nearly every request conflicts.
    ram_equivalence(WorkloadSpec {
        sessions: 8,
        requests_per_session: 48,
        dirs: 1,
        shared_files: 1,
        ..Default::default()
    });
}

#[test]
fn wide_workload_matches_serial_replay() {
    // More sessions than workers at every width: workers drain several
    // sessions each, so claim order (not just interleaving) varies.
    ram_equivalence(WorkloadSpec {
        sessions: 24,
        requests_per_session: 20,
        seed: 0xD15C_0BA1,
        ..Default::default()
    });
}

#[test]
fn commit_log_is_a_valid_total_order_at_every_width() {
    let spec = WorkloadSpec::default();
    let sessions = generate(&spec);
    for &t in &WIDTHS {
        let mut v = Vfs::new(RamFs::new());
        prepare(&mut v, &spec);
        let report = serve(&mut v, &sessions, &ServeOptions::default().with_threads(t));
        validate_commit_log(&sessions, &report.commit_log).unwrap_or_else(|e| panic!("t={t}: {e}"));
        assert_eq!(
            report.total_ops(),
            spec.sessions * spec.requests_per_session
        );
    }
}

#[test]
fn auto_thread_count_also_holds() {
    let spec = WorkloadSpec {
        sessions: 6,
        requests_per_session: 16,
        ..Default::default()
    };
    let sessions = generate(&spec);
    assert_serial_equivalence(
        || {
            let mut v = Vfs::new(RamFs::new());
            prepare(&mut v, &spec);
            v
        },
        |_v| None,
        &sessions,
        &[0], // 0 = one worker per hardware thread
    );
}

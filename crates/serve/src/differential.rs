//! The differential oracle: a concurrent serve run must equal its own
//! serial replay — identical per-request responses, identical final
//! file-system contents, and (where the mount sits on a raw medium) a
//! bit-identical disk image.
//!
//! This is the serving layer's analogue of the workspace's earlier
//! parallel==sequential proofs (pFSCK-style fsck shards, campaign cells):
//! parallelism must be purely a wall-clock knob.

use iron_blockdev::{BlockDevice, MemDisk, RawAccess};
use iron_core::BlockAddr;
use iron_vfs::{FileType, SpecificFs, Vfs, VfsResult};

use crate::engine::{replay_serial, serve, ServeOptions, Session};
use crate::proto::digest;

/// Flatten a `MemDisk`'s full medium into bytes for equality checks.
pub fn memdisk_image(md: &MemDisk) -> Vec<u8> {
    let blocks = md.num_blocks();
    let mut out = Vec::with_capacity(blocks as usize * iron_core::BLOCK_SIZE);
    for a in 0..blocks {
        out.extend_from_slice(&*md.peek(BlockAddr(a)));
    }
    out
}

/// A semantic fingerprint of the mounted namespace: every path with its
/// type, size, link count, and content digest, in sorted order. Works for
/// any [`SpecificFs`] (including ones with no raw medium, like `RamFs`),
/// so the oracle can compare final states even where no disk image
/// exists.
pub fn fs_fingerprint<F: SpecificFs>(vfs: &mut Vfs<F>) -> Vec<String> {
    fn walk<F: SpecificFs>(vfs: &mut Vfs<F>, path: &str, out: &mut Vec<String>) -> VfsResult<()> {
        let entries = vfs.readdir(path)?;
        for e in entries {
            if e.name == "." || e.name == ".." {
                continue;
            }
            let child = if path == "/" {
                format!("/{}", e.name)
            } else {
                format!("{path}/{}", e.name)
            };
            let attr = vfs.lstat(&child)?;
            match attr.ftype {
                FileType::Directory => {
                    out.push(format!("{child} dir nlink={}", attr.nlink));
                    walk(vfs, &child, out)?;
                }
                FileType::Regular => {
                    let data = vfs.read_file(&child)?;
                    out.push(format!(
                        "{child} file size={} nlink={} digest={:016x}",
                        attr.size,
                        attr.nlink,
                        digest(&data)
                    ));
                }
                FileType::Symlink => {
                    let target = vfs.readlink(&child)?;
                    out.push(format!("{child} symlink -> {target}"));
                }
            }
        }
        Ok(())
    }
    let mut out = Vec::new();
    walk(vfs, "/", &mut out).expect("fingerprint walk");
    out.sort();
    out
}

fn assert_images_equal(concurrent: &Option<Vec<u8>>, serial: &Option<Vec<u8>>, threads: usize) {
    match (concurrent, serial) {
        (Some(c), Some(s)) => {
            assert_eq!(c.len(), s.len(), "t={threads}: image sizes differ");
            if let Some(pos) = c.iter().zip(s.iter()).position(|(a, b)| a != b) {
                panic!(
                    "t={threads}: disk image diverged from serial replay at byte {pos} \
                     (block {}): concurrent={:#04x} serial={:#04x}",
                    pos / iron_core::BLOCK_SIZE,
                    c[pos],
                    s[pos]
                );
            }
        }
        (None, None) => {}
        _ => panic!("t={threads}: one run produced an image and the other did not"),
    }
}

/// Run the full differential oracle at every width in `threads`.
///
/// `mk` builds a freshly mounted, identically prepared file system;
/// `extract` consumes the unmounted wrapper and returns the raw medium
/// bytes (or `None` for media-less file systems). For each width: serve
/// concurrently, replay the commit log serially on a second identical
/// mount, and assert responses, namespace fingerprints, and images all
/// match.
pub fn assert_serial_equivalence<F, Mk, Img>(
    mk: Mk,
    extract: Img,
    sessions: &[Session],
    threads: &[usize],
) where
    F: SpecificFs + Send,
    Mk: Fn() -> Vfs<F>,
    Img: Fn(Vfs<F>) -> Option<Vec<u8>>,
{
    for &t in threads {
        let opts = ServeOptions::default().with_threads(t);

        let mut concurrent = mk();
        let report = serve(&mut concurrent, sessions, &opts);
        let fp_concurrent = fs_fingerprint(&mut concurrent);
        concurrent.umount().expect("concurrent unmount");
        let img_concurrent = extract(concurrent);

        let mut serial = mk();
        let replayed = replay_serial(&mut serial, sessions, &report.commit_log);
        let fp_serial = fs_fingerprint(&mut serial);
        serial.umount().expect("serial unmount");
        let img_serial = extract(serial);

        assert_eq!(
            report.responses, replayed,
            "t={t}: concurrent responses != serial replay in commit order"
        );
        assert_eq!(
            fp_concurrent, fp_serial,
            "t={t}: final namespace diverged from serial replay"
        );
        assert_images_equal(&img_concurrent, &img_serial, t);
    }
}

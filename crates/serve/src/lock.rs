//! The sharded path-lock manager.
//!
//! Concurrency control for the serving layer is two-phase locking over
//! **lexical path keys**: before touching the file system, a request
//! acquires every key in its lock set — shared or exclusive — and holds
//! them until its response is recorded. Deadlock is excluded by
//! construction: the lock set is computed up front ([`lock_keys`]),
//! sorted into one canonical (lexicographic) order, and acquired in that
//! order, so the waits-for graph can never contain a cycle.
//!
//! ## The lock set of a request
//!
//! * Every request takes the whole-fs key `""` **shared** (`Sync` takes it
//!   **exclusive** — it observes and flushes everything).
//! * Every proper ancestor directory of each named path is taken
//!   **shared** ([`iron_vfs::paths::prefixes`]): resolution reads those
//!   directories, and holding them shared blocks a concurrent
//!   rename/rmdir of an ancestor (which takes that exact path
//!   *exclusive*) from sweeping the ground out from under a request in
//!   flight.
//! * The target path itself is taken **shared** by read-only requests
//!   (`Open`, `Stat`, `Read`, `Readdir`) and **exclusive** by mutating
//!   ones (`Create`, `Mkdir`, `Unlink`, `Rmdir`, `Write`, `Fsync`, and
//!   both ends of `Rename`).
//!
//! Two requests conflict iff they name overlapping paths and at least one
//! mutates — exactly the pairs whose order the commit log must record.
//! Non-conflicting requests interleave freely; the engine's differential
//! oracle (concurrent run ≡ serial replay in commit order) is the proof
//! that this lock vocabulary is sufficient.
//!
//! The lock table is sharded by key hash to keep table lookups from
//! serializing unrelated requests. Readers admit concurrently; a writer
//! waits for the key to go idle. Writers can in principle starve under an
//! unbroken reader stream; sessions are finite request lists, so every
//! lock is eventually released and the engine always drains.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Condvar, Mutex};

use iron_vfs::paths::{normalize, prefixes};

use crate::proto::Request;

/// Shared (reader) or exclusive (writer) intent on one path key.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LockMode {
    /// Concurrent holders allowed.
    Shared,
    /// Sole holder.
    Exclusive,
}

#[derive(Default)]
struct LockState {
    readers: usize,
    writer: bool,
}

struct PathLock {
    state: Mutex<LockState>,
    cv: Condvar,
}

impl PathLock {
    fn new() -> Self {
        PathLock {
            state: Mutex::new(LockState::default()),
            cv: Condvar::new(),
        }
    }

    fn acquire(&self, mode: LockMode) {
        let mut st = self.state.lock().unwrap();
        match mode {
            LockMode::Shared => {
                while st.writer {
                    st = self.cv.wait(st).unwrap();
                }
                st.readers += 1;
            }
            LockMode::Exclusive => {
                while st.writer || st.readers > 0 {
                    st = self.cv.wait(st).unwrap();
                }
                st.writer = true;
            }
        }
    }

    fn try_acquire(&self, mode: LockMode) -> bool {
        let mut st = self.state.lock().unwrap();
        match mode {
            LockMode::Shared if !st.writer => {
                st.readers += 1;
                true
            }
            LockMode::Exclusive if !st.writer && st.readers == 0 => {
                st.writer = true;
                true
            }
            _ => false,
        }
    }

    fn release(&self, mode: LockMode) {
        {
            let mut st = self.state.lock().unwrap();
            match mode {
                LockMode::Shared => {
                    debug_assert!(st.readers > 0, "release of an unheld shared lock");
                    st.readers -= 1;
                }
                LockMode::Exclusive => {
                    debug_assert!(st.writer, "release of an unheld exclusive lock");
                    st.writer = false;
                }
            }
        }
        self.cv.notify_all();
    }
}

/// The locks one request holds; releasing happens on drop, in reverse
/// acquisition order.
pub struct LockSet {
    held: Vec<(Arc<PathLock>, LockMode)>,
}

impl Drop for LockSet {
    fn drop(&mut self) {
        while let Some((lock, mode)) = self.held.pop() {
            lock.release(mode);
        }
    }
}

impl LockSet {
    /// Number of keys this set holds.
    pub fn len(&self) -> usize {
        self.held.len()
    }

    /// True when the set holds no keys.
    pub fn is_empty(&self) -> bool {
        self.held.is_empty()
    }
}

/// A sharded table of [path → lock] entries.
///
/// Entries are created on first use and live for the manager's lifetime —
/// the table is bounded by the number of distinct paths a workload names,
/// and keeping entries resident means a key's lock identity is stable for
/// the whole run.
pub struct LockManager {
    shards: Vec<Mutex<HashMap<String, Arc<PathLock>>>>,
}

impl LockManager {
    /// A manager with `shards` hash shards (clamped to at least 1).
    pub fn new(shards: usize) -> Self {
        LockManager {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    fn shard_of(&self, key: &str) -> &Mutex<HashMap<String, Arc<PathLock>>> {
        // FNV-1a; Fibonacci-style spread over the shard count.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in key.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    fn entry(&self, key: &str) -> Arc<PathLock> {
        let mut shard = self.shard_of(key).lock().unwrap();
        shard
            .entry(key.to_string())
            .or_insert_with(|| Arc::new(PathLock::new()))
            .clone()
    }

    /// Acquire `keys` — which must already be in canonical (ascending)
    /// order with no duplicates, as [`lock_keys`] produces — blocking per
    /// key until granted.
    ///
    /// # Panics
    /// Panics (debug) if the keys are unsorted or duplicated: acquiring
    /// out of canonical order would reintroduce deadlock.
    pub fn acquire(&self, keys: &[(String, LockMode)]) -> LockSet {
        debug_assert!(
            keys.windows(2).all(|w| w[0].0 < w[1].0),
            "lock keys must be strictly ascending: {keys:?}"
        );
        let mut held = Vec::with_capacity(keys.len());
        for (key, mode) in keys {
            let lock = self.entry(key);
            lock.acquire(*mode);
            held.push((lock, *mode));
        }
        LockSet { held }
    }

    /// Non-blocking [`Self::acquire`]: `None` (releasing anything already
    /// taken) if any key is unavailable right now.
    pub fn try_acquire(&self, keys: &[(String, LockMode)]) -> Option<LockSet> {
        let mut set = LockSet {
            held: Vec::with_capacity(keys.len()),
        };
        for (key, mode) in keys {
            let lock = self.entry(key);
            if !lock.try_acquire(*mode) {
                return None; // dropping the partial LockSet releases it
            }
            set.held.push((lock, *mode));
        }
        Some(set)
    }

    /// Number of distinct path keys the table has ever locked.
    pub fn tracked_keys(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }
}

/// The canonical lock set of a request: normalized keys, sorted ascending,
/// deduplicated with exclusive winning over shared. See the module docs
/// for the vocabulary.
pub fn lock_keys(req: &Request) -> Vec<(String, LockMode)> {
    let mut set: BTreeMap<String, LockMode> = BTreeMap::new();
    let need = |set: &mut BTreeMap<String, LockMode>, key: String, mode: LockMode| {
        let slot = set.entry(key).or_insert(mode);
        if mode == LockMode::Exclusive {
            *slot = LockMode::Exclusive;
        }
    };
    let path_locks = |set: &mut BTreeMap<String, LockMode>, path: &str, mode: LockMode| {
        for p in prefixes(path) {
            need(set, p, LockMode::Shared);
        }
        need(set, normalize(path), mode);
    };

    // The whole-fs key: "" sorts before every "/"-prefixed path, so it is
    // always the first key acquired.
    let fs_mode = if matches!(req, Request::Sync) {
        LockMode::Exclusive
    } else {
        LockMode::Shared
    };
    need(&mut set, String::new(), fs_mode);

    match req {
        Request::Open { path }
        | Request::Stat { path }
        | Request::Read { path, .. }
        | Request::Readdir { path } => {
            path_locks(&mut set, path, LockMode::Shared);
        }
        Request::Create { path, .. }
        | Request::Mkdir { path, .. }
        | Request::Unlink { path }
        | Request::Rmdir { path }
        | Request::Write { path, .. }
        | Request::Fsync { path } => {
            path_locks(&mut set, path, LockMode::Exclusive);
        }
        Request::Rename { from, to } => {
            path_locks(&mut set, from, LockMode::Exclusive);
            path_locks(&mut set, to, LockMode::Exclusive);
        }
        Request::Sync => {}
    }
    set.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys_of(req: &Request) -> Vec<(String, LockMode)> {
        lock_keys(req)
    }

    #[test]
    fn lock_keys_are_sorted_and_deduped() {
        let req = Request::Rename {
            from: "/a/b/f".into(),
            to: "/a/c/f".into(),
        };
        let keys = keys_of(&req);
        assert!(keys.windows(2).all(|w| w[0].0 < w[1].0), "{keys:?}");
        // Shared prefix "/a" appears once; both ends exclusive.
        assert_eq!(keys.iter().filter(|(k, _)| k == "/a").count(), 1);
        assert_eq!(
            keys.iter().find(|(k, _)| k == "/a/b/f").unwrap().1,
            LockMode::Exclusive
        );
        assert_eq!(
            keys.iter().find(|(k, _)| k == "/a/c/f").unwrap().1,
            LockMode::Exclusive
        );
    }

    #[test]
    fn exclusive_wins_dedup_when_target_is_anothers_prefix() {
        // Rename of "/a" while "/a" is also a prefix of "/a/x": renaming
        // "/a" to "/b" with "/a/x" in the picture must keep "/a" exclusive.
        let req = Request::Rename {
            from: "/a".into(),
            to: "/a/x".into(), // degenerate (EINVAL at the VFS) but lock-safe
        };
        let keys = keys_of(&req);
        assert_eq!(
            keys.iter().find(|(k, _)| k == "/a").unwrap().1,
            LockMode::Exclusive
        );
    }

    #[test]
    fn whole_fs_key_modes() {
        assert_eq!(
            keys_of(&Request::Sync),
            vec![(String::new(), LockMode::Exclusive)]
        );
        let read = keys_of(&Request::Read {
            path: "/f".into(),
            off: 0,
            len: 1,
        });
        assert_eq!(read[0], (String::new(), LockMode::Shared));
        assert_eq!(read[1], ("/".into(), LockMode::Shared));
        assert_eq!(read[2], ("/f".into(), LockMode::Shared));
    }

    #[test]
    fn shared_admits_shared_but_blocks_exclusive() {
        let lm = LockManager::new(4);
        let keys = vec![("/f".to_string(), LockMode::Shared)];
        let a = lm.acquire(&keys);
        let b = lm.try_acquire(&keys).expect("second reader admitted");
        let excl = vec![("/f".to_string(), LockMode::Exclusive)];
        assert!(
            lm.try_acquire(&excl).is_none(),
            "writer must wait for readers"
        );
        drop(a);
        assert!(lm.try_acquire(&excl).is_none(), "one reader still holds");
        drop(b);
        let w = lm.try_acquire(&excl).expect("writer admitted once idle");
        assert!(
            lm.try_acquire(&keys).is_none(),
            "reader must wait for writer"
        );
        drop(w);
        assert!(lm.try_acquire(&keys).is_some());
    }

    #[test]
    fn failed_try_acquire_releases_partial_sets() {
        let lm = LockManager::new(2);
        let held = lm.acquire(&[("/b".to_string(), LockMode::Exclusive)]);
        let wanted = vec![
            ("/a".to_string(), LockMode::Exclusive),
            ("/b".to_string(), LockMode::Shared),
        ];
        assert!(lm.try_acquire(&wanted).is_none());
        // "/a" must have been released by the failed attempt.
        let a = lm.try_acquire(&[("/a".to_string(), LockMode::Exclusive)]);
        assert!(a.is_some());
        drop(held);
        drop(a);
        assert_eq!(lm.tracked_keys(), 2);
    }

    #[test]
    fn concurrent_readers_really_overlap() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let lm = LockManager::new(8);
        let peak = AtomicUsize::new(0);
        let cur = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..200 {
                        let _g = lm.acquire(&[("/shared".to_string(), LockMode::Shared)]);
                        let now = cur.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(now, Ordering::SeqCst);
                        std::hint::spin_loop();
                        cur.fetch_sub(1, Ordering::SeqCst);
                    }
                });
            }
        });
        // Not guaranteed deterministically, but with 4 threads × 200
        // acquisitions an overlap is effectively certain; the invariant
        // that matters (no writer present) is enforced by the mode logic.
        assert!(peak.load(Ordering::SeqCst) >= 1);
    }

    #[test]
    fn exclusive_is_mutual_with_everything() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let lm = LockManager::new(8);
        let inside = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..200 {
                        let _g = lm.acquire(&[("/x".to_string(), LockMode::Exclusive)]);
                        assert_eq!(
                            inside.fetch_add(1, Ordering::SeqCst),
                            0,
                            "two writers inside"
                        );
                        inside.fetch_sub(1, Ordering::SeqCst);
                    }
                });
            }
        });
    }
}

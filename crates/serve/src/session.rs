//! Deterministic multi-client workload generation.
//!
//! Sessions are generated from a seed so every differential run — and
//! every rerun of a failing case — sees the same traffic. The namespace
//! is deliberately small and shared: a handful of directories and shared
//! files that many sessions hit (conflicts exercise the lock manager),
//! plus per-session private files (non-conflicting traffic exercises
//! actual concurrency).

use crate::engine::{replay_serial, CommitRecord, Session};
use crate::proto::{Reply, Request};
use iron_vfs::{SpecificFs, Vfs};

/// Shape of a generated workload.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadSpec {
    /// Number of client sessions.
    pub sessions: usize,
    /// Requests per session.
    pub requests_per_session: usize,
    /// Master seed; every session derives its own stream from it.
    pub seed: u64,
    /// Shared directories `/d0..`.
    pub dirs: usize,
    /// Shared files `/s0..`.
    pub shared_files: usize,
    /// Maximum bytes per write.
    pub max_io: usize,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            sessions: 8,
            requests_per_session: 32,
            seed: 0x5E7E_1905_2005_0001,
            dirs: 4,
            shared_files: 4,
            max_io: 3000,
        }
    }
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl WorkloadSpec {
    fn dir(&self, r: u64) -> String {
        format!("/d{}", r as usize % self.dirs.max(1))
    }

    fn shared(&self, r: u64) -> String {
        format!("/s{}", r as usize % self.shared_files.max(1))
    }

    fn private(&self, sid: usize, r: u64) -> String {
        format!("{}/p{sid}_{}", self.dir(r), r % 3)
    }
}

/// The serial setup phase: directories and shared files every generated
/// session assumes exist (shared files carry initial content so reads
/// race writes from the first request on).
pub fn setup_requests(spec: &WorkloadSpec) -> Vec<Request> {
    let mut reqs = Vec::new();
    for d in 0..spec.dirs {
        reqs.push(Request::Mkdir {
            path: format!("/d{d}"),
            mode: 0o755,
        });
    }
    for s in 0..spec.shared_files {
        let path = format!("/s{s}");
        reqs.push(Request::Create {
            path: path.clone(),
            mode: 0o644,
        });
        reqs.push(Request::Write {
            path,
            off: 0,
            len: (spec.max_io / 2).max(1),
            seed: spec.seed ^ (s as u64).wrapping_mul(0xA5A5),
        });
    }
    reqs.push(Request::Sync);
    reqs
}

/// Apply the setup phase to a freshly mounted file system; panics if any
/// setup request fails (the fixture would be broken, not the engine).
pub fn prepare<F: SpecificFs>(vfs: &mut Vfs<F>, spec: &WorkloadSpec) {
    let setup = Session {
        id: 0,
        requests: setup_requests(spec),
    };
    let log: Vec<CommitRecord> = (0..setup.requests.len())
        .map(|index| CommitRecord { session: 0, index })
        .collect();
    let sessions = [setup];
    let responses = replay_serial(vfs, &sessions, &log);
    for (i, r) in responses[0].iter().enumerate() {
        assert!(
            matches!(
                r,
                Ok(Reply::Handle { .. } | Reply::Written { .. } | Reply::Unit)
            ),
            "setup request {i} ({:?}) failed: {r:?}",
            sessions[0].requests[i]
        );
    }
}

/// Generate `spec.sessions` deterministic sessions.
///
/// The mix is chosen to keep conflicts common without making every
/// request a conflict: shared-file writes and renames collide across
/// sessions, private-file traffic runs parallel, and occasional
/// `Sync`/`Readdir`/`Mkdir`/`Rmdir` sprinkle in whole-fs and
/// directory-level locking.
pub fn generate(spec: &WorkloadSpec) -> Vec<Session> {
    (0..spec.sessions)
        .map(|sid| {
            let mut rng =
                spec.seed ^ (sid as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x00C1_1E57;
            let requests = (0..spec.requests_per_session)
                .map(|_| {
                    let roll = splitmix(&mut rng) % 100;
                    let r = splitmix(&mut rng);
                    let io = (splitmix(&mut rng) as usize % spec.max_io.max(1)).max(1);
                    let off = splitmix(&mut rng) % (2 * spec.max_io as u64 + 1);
                    match roll {
                        0..=21 => Request::Write {
                            path: spec.shared(r),
                            off: off / 4, // overlap-heavy offsets
                            len: io,
                            seed: splitmix(&mut rng),
                        },
                        22..=35 => Request::Write {
                            path: spec.private(sid, r),
                            off,
                            len: io,
                            seed: splitmix(&mut rng),
                        },
                        36..=50 => Request::Read {
                            path: spec.shared(r),
                            off: off / 4,
                            len: io,
                        },
                        51..=57 => Request::Create {
                            path: spec.private(sid, r),
                            mode: 0o644,
                        },
                        58..=63 => Request::Unlink {
                            path: spec.private(sid, r),
                        },
                        64..=70 => Request::Stat {
                            path: spec.shared(r),
                        },
                        71..=76 => Request::Readdir { path: spec.dir(r) },
                        77..=82 => Request::Rename {
                            from: spec.shared(r),
                            to: spec.shared(r.wrapping_add(1)),
                        },
                        83..=87 => Request::Mkdir {
                            path: format!("{}/sub{sid}", spec.dir(r)),
                            mode: 0o755,
                        },
                        88..=90 => Request::Rmdir {
                            path: format!("{}/sub{sid}", spec.dir(r)),
                        },
                        91..=95 => Request::Fsync {
                            path: spec.shared(r),
                        },
                        96..=97 => Request::Open {
                            path: spec.private(sid, r),
                        },
                        _ => Request::Sync,
                    }
                })
                .collect();
            Session { id: sid, requests }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = WorkloadSpec::default();
        assert_eq!(generate(&spec), generate(&spec));
        let other = WorkloadSpec { seed: 1, ..spec };
        assert_ne!(generate(&spec), generate(&other));
    }

    #[test]
    fn sessions_have_contract_ids_and_requested_shape() {
        let spec = WorkloadSpec {
            sessions: 5,
            requests_per_session: 11,
            ..Default::default()
        };
        let ss = generate(&spec);
        assert_eq!(ss.len(), 5);
        for (i, s) in ss.iter().enumerate() {
            assert_eq!(s.id, i);
            assert_eq!(s.requests.len(), 11);
        }
    }

    #[test]
    fn workload_mixes_conflicting_and_private_traffic() {
        let spec = WorkloadSpec {
            sessions: 8,
            requests_per_session: 64,
            ..Default::default()
        };
        let ss = generate(&spec);
        let all: Vec<&Request> = ss.iter().flat_map(|s| s.requests.iter()).collect();
        let shared_writes = all
            .iter()
            .filter(|r| matches!(r, Request::Write { path, .. } if path.starts_with("/s")))
            .count();
        let private_writes = all
            .iter()
            .filter(|r| matches!(r, Request::Write { path, .. } if path.starts_with("/d")))
            .count();
        let renames = all
            .iter()
            .filter(|r| matches!(r, Request::Rename { .. }))
            .count();
        assert!(shared_writes > 0 && private_writes > 0 && renames > 0);
    }

    #[test]
    fn prepare_seeds_the_namespace() {
        use iron_vfs::ramfs::RamFs;
        let spec = WorkloadSpec::default();
        let mut v = Vfs::new(RamFs::new());
        prepare(&mut v, &spec);
        for d in 0..spec.dirs {
            assert!(v.stat(&format!("/d{d}")).is_ok());
        }
        for s in 0..spec.shared_files {
            let attr = v.stat(&format!("/s{s}")).unwrap();
            assert!(attr.size > 0, "shared file should carry initial content");
        }
    }
}

//! The request engine: drains many client sessions concurrently against
//! one mounted file system, and replays the same trace serially.
//!
//! ## Execution model
//!
//! Sessions are independent clients; each session's requests execute in
//! program order, different sessions interleave. Workers claim sessions
//! one at a time from the shared pool ([`iron_core::exec::WorkerPool::shard_fine`]).
//! For each request a worker:
//!
//! 1. expands the write payload (marshalling, outside every lock),
//! 2. acquires the request's canonical lock set ([`crate::lock::lock_keys`]),
//! 3. runs the request's file-system phases, each inside the engine's
//!    single FS critical section (the models beneath are `&mut self` —
//!    the paper's file systems are single-threaded kernels — so the FS
//!    mutex *is* the storage stack; the lock manager above it is what
//!    admits or serializes requests),
//! 4. releases the locks after the response is recorded.
//!
//! A request's **commit point** is the critical section that determines
//! its result: the mutating call for namespace/data operations, the read
//! itself for queries, or the first failing resolution. The engine
//! appends `(session, index)` to a global commit log inside that critical
//! section, producing a total order consistent with every session's
//! program order.
//!
//! ## Why concurrent ≡ serial replay
//!
//! Resolution phases are read-only and touch only paths the request holds
//! (at least) shared; any request that could invalidate them needs an
//! exclusive key and is therefore ordered entirely before or after. So
//! the interleaved execution is equivalent to executing each request
//! atomically at its commit point — which is precisely what
//! [`replay_serial`] does. The differential suites assert the equivalence
//! (identical per-request responses, bit-identical disk image) at every
//! thread count; that property is the serving layer's correctness oracle,
//! in the same way cached==bare and parallel==sequential were for the
//! cache and campaign engines.

use std::sync::Mutex;

use iron_core::exec::WorkerPool;
use iron_core::Errno;
use iron_vfs::{FileType, SpecificFs, Vfs, VfsResult};

use crate::lock::{lock_keys, LockManager};
use crate::proto::{digest, payload, Reply, Request, Response};

/// One simulated client: an id and its ordered request list.
///
/// Engine contract: `sessions[i].id == i` (responses are indexed by
/// session id).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Session {
    /// Session id — must equal the session's index in the slice handed to
    /// [`serve`].
    pub id: usize,
    /// Requests, executed in order.
    pub requests: Vec<Request>,
}

/// One entry of the commit log: which request committed at this position.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CommitRecord {
    /// Session id.
    pub session: usize,
    /// Request index within the session.
    pub index: usize,
}

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServeOptions {
    /// Worker threads; `0` means one per hardware thread.
    pub threads: usize,
    /// Hash shards in the lock table.
    pub lock_shards: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            threads: 1,
            lock_shards: 64,
        }
    }
}

impl ServeOptions {
    /// Builder-style thread-count override.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// What a serve run produced: every response, and the commit order.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ServeReport {
    /// `responses[session][index]` is the reply to that request.
    pub responses: Vec<Vec<Response>>,
    /// Global commit order; exactly one record per request, consistent
    /// with each session's program order.
    pub commit_log: Vec<CommitRecord>,
}

impl ServeReport {
    /// Total requests served.
    pub fn total_ops(&self) -> usize {
        self.commit_log.len()
    }
}

/// The engine's single FS critical section: the mounted file system plus
/// the commit log, advanced together.
struct Core<'a, F: SpecificFs> {
    vfs: &'a mut Vfs<F>,
    log: Vec<CommitRecord>,
}

impl<F: SpecificFs> Core<'_, F> {
    fn commit(&mut self, session: usize, index: usize) {
        self.log.push(CommitRecord { session, index });
    }
}

/// Resolve `path` to a non-directory inode (phase 1 of data operations).
fn resolve_file<F: SpecificFs>(vfs: &mut Vfs<F>, path: &str) -> VfsResult<u64> {
    let ino = vfs.resolve(path)?;
    if vfs.fs_mut().getattr(ino)?.ftype == FileType::Directory {
        return Err(Errno::EISDIR.into());
    }
    Ok(ino)
}

/// Execute one request against the shared core. Multi-phase requests
/// release the core between resolution and operation — the caller's path
/// locks are what keep the gap safe. Exactly one phase commits.
fn run_request<F: SpecificFs>(
    core: &Mutex<Core<'_, F>>,
    session: usize,
    index: usize,
    req: &Request,
    data: Option<&[u8]>,
) -> Response {
    // Phase-1 helper: commit-and-return on resolution failure.
    macro_rules! phase1 {
        ($c:ident, $expr:expr) => {
            match $expr {
                Ok(v) => v,
                Err(e) => {
                    $c.commit(session, index);
                    return Err(e);
                }
            }
        };
    }

    match req {
        Request::Open { path } => {
            let mut c = core.lock().unwrap();
            let r = c.vfs.resolve(path).map(|ino| Reply::Handle { ino });
            c.commit(session, index);
            r
        }
        Request::Stat { path } => {
            let mut c = core.lock().unwrap();
            let r = c.vfs.stat(path).map(Reply::Attr);
            c.commit(session, index);
            r
        }
        Request::Readdir { path } => {
            let mut c = core.lock().unwrap();
            // "." and ".." are filtered so replies are identical across
            // file systems that do and don't synthesize dot entries.
            let r = c.vfs.readdir(path).map(|es| {
                Reply::Entries(
                    es.into_iter()
                        .map(|e| e.name)
                        .filter(|n| n != "." && n != "..")
                        .collect(),
                )
            });
            c.commit(session, index);
            r
        }
        Request::Sync => {
            let mut c = core.lock().unwrap();
            let r = c.vfs.sync().map(|()| Reply::Unit);
            c.commit(session, index);
            r
        }
        Request::Create { path, mode } => {
            let (dir, name) = {
                let mut c = core.lock().unwrap();
                phase1!(c, c.vfs.resolve_parent(path))
            };
            let mut c = core.lock().unwrap();
            let r = c
                .vfs
                .fs_mut()
                .create(dir, &name, *mode)
                .map(|ino| Reply::Handle { ino });
            c.commit(session, index);
            r
        }
        Request::Mkdir { path, mode } => {
            let (dir, name) = {
                let mut c = core.lock().unwrap();
                phase1!(c, c.vfs.resolve_parent(path))
            };
            let mut c = core.lock().unwrap();
            let r = c
                .vfs
                .fs_mut()
                .mkdir(dir, &name, *mode)
                .map(|ino| Reply::Handle { ino });
            c.commit(session, index);
            r
        }
        Request::Unlink { path } => {
            let (dir, name) = {
                let mut c = core.lock().unwrap();
                phase1!(c, c.vfs.resolve_parent(path))
            };
            let mut c = core.lock().unwrap();
            let r = c.vfs.fs_mut().unlink(dir, &name).map(|()| Reply::Unit);
            c.commit(session, index);
            r
        }
        Request::Rmdir { path } => {
            let (dir, name) = {
                let mut c = core.lock().unwrap();
                phase1!(c, c.vfs.resolve_parent(path))
            };
            let mut c = core.lock().unwrap();
            let r = c.vfs.fs_mut().rmdir(dir, &name).map(|()| Reply::Unit);
            c.commit(session, index);
            r
        }
        Request::Rename { from, to } => {
            {
                let mut c = core.lock().unwrap();
                phase1!(c, c.vfs.resolve_nofollow(from));
            }
            let mut c = core.lock().unwrap();
            let r = c.vfs.rename(from, to).map(|()| Reply::Unit);
            c.commit(session, index);
            r
        }
        Request::Read { path, off, len } => {
            let ino = {
                let mut c = core.lock().unwrap();
                phase1!(c, resolve_file(c.vfs, path))
            };
            let got = {
                let mut c = core.lock().unwrap();
                let r = c.vfs.fs_mut().read(ino, *off, *len);
                c.commit(session, index);
                r
            };
            // Digest outside the critical section: unmarshalling is the
            // client-facing thread's job.
            got.map(|bytes| Reply::Data {
                len: bytes.len(),
                digest: digest(&bytes),
            })
        }
        Request::Write { path, off, .. } => {
            let bytes = data.expect("write payload expanded by caller");
            let ino = {
                let mut c = core.lock().unwrap();
                phase1!(c, resolve_file(c.vfs, path))
            };
            let mut c = core.lock().unwrap();
            let r = c
                .vfs
                .fs_mut()
                .write(ino, *off, bytes)
                .map(|n| Reply::Written { n });
            c.commit(session, index);
            r
        }
        Request::Fsync { path } => {
            let ino = {
                let mut c = core.lock().unwrap();
                phase1!(c, c.vfs.resolve(path))
            };
            let mut c = core.lock().unwrap();
            let r = c.vfs.fs_mut().fsync(ino).map(|()| Reply::Unit);
            c.commit(session, index);
            r
        }
    }
}

/// Check that `log` is a valid commit order for `sessions`: one record
/// per request, in-range, and respecting every session's program order.
pub fn validate_commit_log(sessions: &[Session], log: &[CommitRecord]) -> Result<(), String> {
    let total: usize = sessions.iter().map(|s| s.requests.len()).sum();
    if log.len() != total {
        return Err(format!(
            "commit log has {} records, expected {total}",
            log.len()
        ));
    }
    let mut next: Vec<usize> = vec![0; sessions.len()];
    for (pos, rec) in log.iter().enumerate() {
        let Some(n) = next.get_mut(rec.session) else {
            return Err(format!("record {pos}: unknown session {}", rec.session));
        };
        if rec.index != *n {
            return Err(format!(
                "record {pos}: session {} commits index {} but program order expects {}",
                rec.session, rec.index, *n
            ));
        }
        *n += 1;
    }
    Ok(())
}

fn expand_payload(req: &Request) -> Option<Vec<u8>> {
    match req {
        Request::Write { len, seed, .. } => Some(payload(*seed, *len)),
        _ => None,
    }
}

/// Drain `sessions` against `vfs` with `opts.threads` workers.
///
/// # Panics
/// Panics if `sessions[i].id != i`, or (debug) if the produced commit log
/// fails [`validate_commit_log`] — which would mean an engine bug, not a
/// workload problem.
pub fn serve<F: SpecificFs + Send>(
    vfs: &mut Vfs<F>,
    sessions: &[Session],
    opts: &ServeOptions,
) -> ServeReport {
    for (i, s) in sessions.iter().enumerate() {
        assert_eq!(s.id, i, "session ids must equal their slice index");
    }
    let pool = if opts.threads == 0 {
        WorkerPool::auto()
    } else {
        WorkerPool::new(opts.threads)
    };
    let locks = LockManager::new(opts.lock_shards);
    let core = Mutex::new(Core {
        vfs,
        log: Vec::new(),
    });

    let mut collected: Vec<(usize, Vec<Response>)> = pool.shard_fine(
        sessions,
        |acc: &mut Vec<(usize, Vec<Response>)>, session| {
            let mut responses = Vec::with_capacity(session.requests.len());
            for (index, req) in session.requests.iter().enumerate() {
                let data = expand_payload(req);
                let keys = lock_keys(req);
                let _guard = locks.acquire(&keys);
                responses.push(run_request(&core, session.id, index, req, data.as_deref()));
            }
            acc.push((session.id, responses));
        },
        |out, shard| out.extend(shard),
    );
    collected.sort_by_key(|(id, _)| *id);

    let log = core.into_inner().unwrap().log;
    debug_assert!(
        validate_commit_log(sessions, &log).is_ok(),
        "engine produced an invalid commit log"
    );
    ServeReport {
        responses: collected.into_iter().map(|(_, rs)| rs).collect(),
        commit_log: log,
    }
}

/// Replay `sessions` one request at a time in `commit_log` order — the
/// serial oracle a concurrent run is compared against.
///
/// # Panics
/// Panics if the commit log is not a valid total order for `sessions`
/// (see [`validate_commit_log`]).
pub fn replay_serial<F: SpecificFs>(
    vfs: &mut Vfs<F>,
    sessions: &[Session],
    commit_log: &[CommitRecord],
) -> Vec<Vec<Response>> {
    if let Err(e) = validate_commit_log(sessions, commit_log) {
        panic!("invalid commit log: {e}");
    }
    let core = Mutex::new(Core {
        vfs,
        log: Vec::new(),
    });
    let mut responses: Vec<Vec<Option<Response>>> = sessions
        .iter()
        .map(|s| vec![None; s.requests.len()])
        .collect();
    for rec in commit_log {
        let req = &sessions[rec.session].requests[rec.index];
        let data = expand_payload(req);
        let resp = run_request(&core, rec.session, rec.index, req, data.as_deref());
        responses[rec.session][rec.index] = Some(resp);
    }
    let log = core.into_inner().unwrap().log;
    assert_eq!(
        log, commit_log,
        "serial replay must commit in the given order"
    );
    responses
        .into_iter()
        .map(|rs| {
            rs.into_iter()
                .map(|r| r.expect("every request replayed"))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use iron_vfs::ramfs::RamFs;

    fn reqs(v: Vec<Request>) -> Vec<Session> {
        vec![Session { id: 0, requests: v }]
    }

    #[test]
    fn single_session_round_trip() {
        let mut vfs = Vfs::new(RamFs::new());
        let sessions = reqs(vec![
            Request::Mkdir {
                path: "/d".into(),
                mode: 0o755,
            },
            Request::Create {
                path: "/d/f".into(),
                mode: 0o644,
            },
            Request::Write {
                path: "/d/f".into(),
                off: 0,
                len: 100,
                seed: 9,
            },
            Request::Read {
                path: "/d/f".into(),
                off: 0,
                len: 100,
            },
            Request::Stat {
                path: "/d/f".into(),
            },
            Request::Fsync {
                path: "/d/f".into(),
            },
            Request::Readdir { path: "/d".into() },
            Request::Rename {
                from: "/d/f".into(),
                to: "/g".into(),
            },
            Request::Unlink { path: "/g".into() },
            Request::Rmdir { path: "/d".into() },
            Request::Sync,
        ]);
        let report = serve(&mut vfs, &sessions, &ServeOptions::default());
        assert_eq!(report.total_ops(), 11);
        assert!(validate_commit_log(&sessions, &report.commit_log).is_ok());
        let expect_digest = digest(&payload(9, 100));
        assert_eq!(
            report.responses[0][3],
            Ok(Reply::Data {
                len: 100,
                digest: expect_digest
            })
        );
        assert_eq!(report.responses[0][6], Ok(Reply::Entries(vec!["f".into()])));
        assert!(
            report.responses[0].iter().all(|r| r.is_ok()),
            "{:?}",
            report.responses
        );
    }

    #[test]
    fn errors_are_replies_not_panics() {
        let mut vfs = Vfs::new(RamFs::new());
        let sessions = reqs(vec![
            Request::Read {
                path: "/missing".into(),
                off: 0,
                len: 8,
            },
            Request::Write {
                path: "/".into(),
                off: 0,
                len: 8,
                seed: 1,
            },
            Request::Rmdir {
                path: "/also-missing".into(),
            },
        ]);
        let report = serve(&mut vfs, &sessions, &ServeOptions::default());
        assert_eq!(report.responses[0][0], Err(Errno::ENOENT.into()));
        assert_eq!(report.responses[0][1], Err(Errno::EISDIR.into()));
        assert_eq!(report.responses[0][2], Err(Errno::ENOENT.into()));
        assert_eq!(report.commit_log.len(), 3);
    }

    #[test]
    fn replay_reproduces_a_serial_run() {
        let mk_sessions = || {
            reqs(vec![
                Request::Create {
                    path: "/f".into(),
                    mode: 0o644,
                },
                Request::Write {
                    path: "/f".into(),
                    off: 0,
                    len: 64,
                    seed: 3,
                },
                Request::Read {
                    path: "/f".into(),
                    off: 0,
                    len: 64,
                },
            ])
        };
        let sessions = mk_sessions();
        let mut vfs = Vfs::new(RamFs::new());
        let report = serve(&mut vfs, &sessions, &ServeOptions::default());
        let mut vfs2 = Vfs::new(RamFs::new());
        let replayed = replay_serial(&mut vfs2, &sessions, &report.commit_log);
        assert_eq!(report.responses, replayed);
    }

    #[test]
    fn commit_log_validation_rejects_bad_orders() {
        let sessions = reqs(vec![Request::Sync, Request::Sync]);
        let ok = vec![
            CommitRecord {
                session: 0,
                index: 0,
            },
            CommitRecord {
                session: 0,
                index: 1,
            },
        ];
        assert!(validate_commit_log(&sessions, &ok).is_ok());
        let reversed = vec![
            CommitRecord {
                session: 0,
                index: 1,
            },
            CommitRecord {
                session: 0,
                index: 0,
            },
        ];
        assert!(validate_commit_log(&sessions, &reversed).is_err());
        assert!(
            validate_commit_log(&sessions, &ok[..1]).is_err(),
            "short log"
        );
        let alien = vec![
            CommitRecord {
                session: 1,
                index: 0,
            },
            CommitRecord {
                session: 0,
                index: 0,
            },
        ];
        assert!(validate_commit_log(&sessions, &alien).is_err());
    }
}

//! # iron-serve — the concurrent multi-client serving layer
//!
//! The paper's IRON analysis assumes a file system under live load, but
//! the models in this workspace are `&mut self` — one caller at a time.
//! This crate puts a service surface over any mounted [`iron_vfs::Vfs`]:
//!
//! * [`proto`] — an in-tree request/response protocol (open / read /
//!   write / create / unlink / mkdir / rmdir / readdir / stat / rename /
//!   fsync / sync as plain structs), NFSv3-style stateless, modeled on a
//!   master/chunkserver RPC surface with no external dependencies;
//! * [`lock`] — a sharded lock manager keyed on lexical paths
//!   (per-target and per-path-prefix, shared/exclusive), with every
//!   request's lock set acquired in one canonical sorted order so
//!   deadlock is excluded by construction;
//! * [`engine`] — the request engine: thousands of simulated client
//!   sessions drained through [`iron_core::exec::WorkerPool`], a global
//!   commit log recorded at each request's linearization point, and
//!   [`engine::replay_serial`] to re-execute any trace one request at a
//!   time in commit order;
//! * [`session`] — deterministic workload generation (shared hot files,
//!   private per-client files, namespace churn);
//! * [`differential`] — the correctness oracle: a concurrent run must be
//!   indistinguishable from its own serial replay (identical responses,
//!   identical namespace fingerprint, bit-identical disk image), at
//!   every thread count.
//!
//! The `serve_smoke` bench (`crates/bench/benches/serve_smoke.rs`)
//! reports served ops/sec at 1/2/4/8 threads into `BENCH_serve.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod differential;
pub mod engine;
pub mod lock;
pub mod proto;
pub mod session;

pub use differential::{assert_serial_equivalence, fs_fingerprint, memdisk_image};
pub use engine::{
    replay_serial, serve, validate_commit_log, CommitRecord, ServeOptions, ServeReport, Session,
};
pub use lock::{lock_keys, LockManager, LockMode, LockSet};
pub use proto::{digest, payload, Reply, Request, Response};
pub use session::{generate, prepare, setup_requests, WorkloadSpec};

//! The in-tree request/response protocol.
//!
//! Modeled on the service surface of a master/chunkserver file service
//! (upload / get / append / delete RPCs) flattened onto one VFS: every
//! request names its targets by **absolute path** and carries no session
//! state — NFSv3-style statelessness — so any request can be replayed in
//! isolation and a commit-ordered log of requests is a complete execution
//! trace. Write payloads travel as a `(seed, len)` pair and are expanded
//! by the serving worker (the marshalling cost stays on the client-facing
//! thread, outside the file-system critical section); read replies carry a
//! digest rather than the data so traces stay small while remaining
//! sensitive to every byte.
//!
//! Symlinks are deliberately absent: the lock manager keys on lexical
//! paths ([`iron_vfs::paths`]), and a symlink would let a request touch
//! paths outside its lexical lock set.

use iron_vfs::{InodeAttr, VfsError};

/// One client request. Paths are absolute; see the module docs.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Request {
    /// Resolve a path and return its inode (an NFS-style lookup handle).
    Open {
        /// Absolute path to resolve.
        path: String,
    },
    /// Create a regular file.
    Create {
        /// Absolute path of the file to create.
        path: String,
        /// Permission bits.
        mode: u32,
    },
    /// Create a directory.
    Mkdir {
        /// Absolute path of the directory to create.
        path: String,
        /// Permission bits.
        mode: u32,
    },
    /// Remove a file link.
    Unlink {
        /// Absolute path of the link to remove.
        path: String,
    },
    /// Remove an empty directory.
    Rmdir {
        /// Absolute path of the directory to remove.
        path: String,
    },
    /// Rename (replacing any existing destination).
    Rename {
        /// Source path.
        from: String,
        /// Destination path.
        to: String,
    },
    /// Positional read.
    Read {
        /// Absolute path of the file.
        path: String,
        /// Byte offset.
        off: u64,
        /// Bytes to read.
        len: usize,
    },
    /// Positional write of `len` bytes expanded from `seed` (see
    /// [`payload`]).
    Write {
        /// Absolute path of the file.
        path: String,
        /// Byte offset.
        off: u64,
        /// Payload length in bytes.
        len: usize,
        /// Payload generator seed.
        seed: u64,
    },
    /// List a directory.
    Readdir {
        /// Absolute path of the directory.
        path: String,
    },
    /// `stat` a path (following symlink-free resolution).
    Stat {
        /// Absolute path.
        path: String,
    },
    /// Flush one file to stable storage.
    Fsync {
        /// Absolute path of the file.
        path: String,
    },
    /// Flush the whole file system.
    Sync,
}

impl Request {
    /// Short operation name, for labels and logs.
    pub fn name(&self) -> &'static str {
        match self {
            Request::Open { .. } => "open",
            Request::Create { .. } => "create",
            Request::Mkdir { .. } => "mkdir",
            Request::Unlink { .. } => "unlink",
            Request::Rmdir { .. } => "rmdir",
            Request::Rename { .. } => "rename",
            Request::Read { .. } => "read",
            Request::Write { .. } => "write",
            Request::Readdir { .. } => "readdir",
            Request::Stat { .. } => "stat",
            Request::Fsync { .. } => "fsync",
            Request::Sync => "sync",
        }
    }
}

/// The success half of a reply.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Reply {
    /// A resolved handle (`Open`, `Create`, `Mkdir`).
    Handle {
        /// Inode number of the target.
        ino: u64,
    },
    /// Read data, summarized (`Read`).
    Data {
        /// Bytes actually read.
        len: usize,
        /// FNV-1a digest of the data (see [`digest`]).
        digest: u64,
    },
    /// Bytes accepted (`Write`).
    Written {
        /// Bytes written.
        n: usize,
    },
    /// Directory listing, entry names in the file system's order
    /// (`Readdir`).
    Entries(Vec<String>),
    /// Full attributes (`Stat`).
    Attr(InodeAttr),
    /// Success with no payload (`Unlink`, `Rmdir`, `Rename`, `Fsync`,
    /// `Sync`).
    Unit,
}

/// What a request returns: a [`Reply`] or the errno/panic the VFS raised.
pub type Response = Result<Reply, VfsError>;

/// Expand a `(seed, len)` write descriptor into its payload bytes.
///
/// A splitmix64 stream: cheap, deterministic, and with enough entropy that
/// torn or misplaced writes change the [`digest`] of any read that
/// observes them.
pub fn payload(seed: u64, len: usize) -> Vec<u8> {
    let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let bytes = z.to_le_bytes();
        let take = bytes.len().min(len - out.len());
        out.extend_from_slice(&bytes[..take]);
    }
    out
}

/// FNV-1a (64-bit) over a byte slice — the digest read replies carry.
pub fn digest(data: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_is_deterministic_and_length_exact() {
        for len in [0usize, 1, 7, 8, 9, 4096] {
            let a = payload(42, len);
            let b = payload(42, len);
            assert_eq!(a.len(), len);
            assert_eq!(a, b);
        }
        assert_ne!(payload(1, 64), payload(2, 64), "seeds must differ");
    }

    #[test]
    fn digest_is_byte_sensitive() {
        let mut data = payload(7, 256);
        let d0 = digest(&data);
        data[100] ^= 1;
        assert_ne!(d0, digest(&data));
    }

    #[test]
    fn request_names_cover_every_variant() {
        assert_eq!(Request::Sync.name(), "sync");
        assert_eq!(Request::Open { path: "/x".into() }.name(), "open");
    }
}

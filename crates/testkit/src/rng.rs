//! A seedable, deterministic PRNG: SplitMix64 seeding into xoshiro256**.
//!
//! Not cryptographic — it drives fault-injection plans, workload
//! generators, and the property harness, where the only requirements are
//! statistical quality, speed, and bit-for-bit replay from a `u64` seed.

/// One step of the SplitMix64 stream (Steele, Lea & Flood 2014). Used to
/// expand a single `u64` seed into xoshiro state and to derive per-case
/// seeds in the property harness.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256** (Blackman & Vigna 2018), seeded via SplitMix64.
///
/// Deterministic: the same seed yields the same stream on every platform.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Build an `Rng` from a 64-bit seed, expanded through SplitMix64 as
    /// the xoshiro authors recommend.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Next 32 uniformly random bits (the upper half of [`Self::next_u64`]).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniformly random `u64` in `[0, n)`. `n` must be nonzero.
    ///
    /// Uses Lemire's multiply-shift rejection method: unbiased, and one
    /// multiplication in the common case.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "Rng::below(0)");
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A uniformly random `usize` in `[lo, hi)`. The range must be
    /// nonempty.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "Rng::range: empty range {lo}..{hi}");
        lo + self.below((hi - lo) as u64) as usize
    }

    /// A fair coin.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// `true` with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Fill `buf` with random bytes.
    pub fn fill(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// A uniformly random element of a nonempty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::from_seed(42);
        let mut b = Rng::from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::from_seed(1);
        let mut b = Rng::from_seed(2);
        assert_ne!((a.next_u64(), a.next_u64()), (b.next_u64(), b.next_u64()));
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = Rng::from_seed(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "1000 draws must hit all of 0..10");
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = Rng::from_seed(9);
        for _ in 0..1000 {
            let v = rng.range(5, 8);
            assert!((5..8).contains(&v));
        }
    }

    #[test]
    fn fill_is_deterministic_and_nonconstant() {
        let mut a = Rng::from_seed(3);
        let mut b = Rng::from_seed(3);
        let mut x = [0u8; 33];
        let mut y = [0u8; 33];
        a.fill(&mut x);
        b.fill(&mut y);
        assert_eq!(x, y);
        assert!(
            x.iter().any(|&v| v != x[0]),
            "33 bytes should not be constant"
        );
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = Rng::from_seed(11);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            xs, sorted,
            "a 50-element shuffle leaving order intact is ~impossible"
        );
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Rng::from_seed(13);
        for _ in 0..100 {
            assert!(!rng.chance(0, 10));
            assert!(rng.chance(10, 10));
        }
    }

    #[test]
    fn known_splitmix_vector() {
        // First outputs for seed 0, per the SplitMix64 reference.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut s), 0x6E78_9E6A_A1B9_65F4);
    }
}

//! Halving shrinkers for failing property inputs.

/// Propose smaller candidates for a failing input.
///
/// The property runner keeps a candidate only if it *still fails*, so
/// shrinkers are free to propose values outside the original generator's
/// range (e.g. halving below a range's lower bound) — such candidates
/// simply won't stick if the failure depends on the range.
pub trait Shrink: Sized {
    /// Candidate replacements, roughly ordered most-aggressive first.
    /// An empty vector means the value is fully shrunk.
    fn shrink_candidates(&self) -> Vec<Self>;
}

macro_rules! shrink_uint {
    ($($t:ty),+) => {$(
        impl Shrink for $t {
            fn shrink_candidates(&self) -> Vec<Self> {
                let mut out = Vec::new();
                if *self != 0 {
                    out.push(0);
                    if *self > 1 {
                        out.push(*self / 2);
                        out.push(*self - 1);
                    }
                }
                out
            }
        }
    )+};
}

shrink_uint!(u8, u16, u32, u64, usize);

impl Shrink for bool {
    fn shrink_candidates(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// Sequences shrink by halving: drop the back half, drop the front half,
/// then peel single elements off either end. Elements themselves are not
/// shrunk — for op-sequence tests, fewer ops is what makes a
/// counterexample readable.
impl<T: Clone> Shrink for Vec<T> {
    fn shrink_candidates(&self) -> Vec<Self> {
        let n = self.len();
        let mut out = Vec::new();
        if n == 0 {
            return out;
        }
        if n > 1 {
            out.push(self[..n / 2].to_vec());
            out.push(self[n.div_ceil(2)..].to_vec());
        }
        out.push(self[..n - 1].to_vec());
        if n > 1 {
            out.push(self[1..].to_vec());
        }
        out
    }
}

macro_rules! shrink_tuple {
    ($($t:ident : $idx:tt),+) => {
        impl<$($t: Shrink + Clone),+> Shrink for ($($t,)+) {
            fn shrink_candidates(&self) -> Vec<Self> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink_candidates() {
                        let mut next = self.clone();
                        next.$idx = candidate;
                        out.push(next);
                    }
                )+
                out
            }
        }
    };
}

shrink_tuple!(A: 0, B: 1);
shrink_tuple!(A: 0, B: 1, C: 2);
shrink_tuple!(A: 0, B: 1, C: 2, D: 3);
shrink_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uint_shrinks_toward_zero() {
        assert_eq!(0u32.shrink_candidates(), Vec::<u32>::new());
        assert_eq!(1u32.shrink_candidates(), vec![0]);
        assert_eq!(10u32.shrink_candidates(), vec![0, 5, 9]);
    }

    #[test]
    fn bool_shrinks_to_false() {
        assert_eq!(true.shrink_candidates(), vec![false]);
        assert!(false.shrink_candidates().is_empty());
    }

    #[test]
    fn vec_halves_and_peels() {
        let v = vec![1, 2, 3, 4];
        let c = v.shrink_candidates();
        assert!(c.contains(&vec![1, 2]));
        assert!(c.contains(&vec![3, 4]));
        assert!(c.contains(&vec![1, 2, 3]));
        assert!(c.contains(&vec![2, 3, 4]));
        assert!(Vec::<u8>::new().shrink_candidates().is_empty());
    }

    #[test]
    fn singleton_vec_shrinks_to_empty() {
        assert_eq!(vec![9u8].shrink_candidates(), vec![Vec::<u8>::new()]);
    }

    #[test]
    fn tuple_shrinks_componentwise() {
        let c = (4u8, true).shrink_candidates();
        assert!(c.contains(&(0, true)));
        assert!(c.contains(&(2, true)));
        assert!(c.contains(&(4, false)));
    }
}

//! # iron-testkit
//!
//! Deterministic, zero-dependency test machinery for the IRON
//! reproduction. The paper's method is *deterministic differential
//! observation* — inject a typed fault, replay a workload, diff the
//! observed policy (§4) — and that only reproduces if every random
//! choice is replayable from a seed. This crate keeps the whole
//! workspace hermetic: no `rand`, no `proptest`, no `criterion`.
//!
//! Four pieces:
//!
//! * [`rng`] — a seedable SplitMix64/xoshiro256** PRNG ([`Rng`]);
//! * [`gen`] + [`prop`] — a minimal property-testing harness: value
//!   generators ([`gen::Gen`]), fixed-iteration runs that print the
//!   failing case's seed, and a simple halving shrinker ([`Shrink`]);
//! * [`bench`] — warmup + timed iterations over wall clock (and,
//!   optionally, the simulated disk clock), emitting machine-readable
//!   `BENCH_<group>.json`;
//! * [`json`] — a serde-free JSON reader so the bench-regression gate
//!   can parse those files back.
//!
//! ## Reproducing a property-test failure
//!
//! A failing property prints its case seed and a ready-to-paste command:
//!
//! ```text
//! [iron-testkit] property 'ext3_matches_reference' failed (case 7/24, seed 0x243f6a8885a308d3)
//! ...
//! rerun: IRON_TESTKIT_SEED=0x243f6a8885a308d3 cargo test -q ext3_matches_reference
//! ```
//!
//! Setting `IRON_TESTKIT_SEED` makes every property in the process run
//! exactly that one case, deterministically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod gen;
pub mod json;
pub mod prop;
pub mod rng;
mod shrink;

pub use bench::BenchGroup;
pub use gen::Gen;
pub use prop::{check, Config};
pub use rng::Rng;
pub use shrink::Shrink;

/// Re-export of [`std::hint::black_box`] so benches need no extra import.
pub use std::hint::black_box;

//! The bench harness: warmup + timed iterations, machine-readable output.
//!
//! Replaces criterion for the five `crates/bench/benches/*.rs` targets.
//! Each group writes `BENCH_<group>.json` (to `IRON_BENCH_DIR`, or the
//! current directory) so the perf trajectory of the repo can be recorded
//! run over run.
//!
//! ## `BENCH_<group>.json` format
//!
//! ```json
//! {
//!   "group": "checksums",
//!   "smoke": false,
//!   "results": [
//!     {
//!       "name": "sha1_4k_block",
//!       "iters_per_sample": 1024,
//!       "samples": 10,
//!       "mean_ns": 1234.5,
//!       "min_ns": 1200.0,
//!       "max_ns": 1300.1,
//!       "throughput_mb_per_s": 3164.6,
//!       "units_per_iter": null,
//!       "units_per_s": null,
//!       "sim_ns": null
//!     }
//!   ]
//! }
//! ```
//!
//! `mean_ns`/`min_ns`/`max_ns` are per-iteration wall-clock figures across
//! samples; `throughput_mb_per_s` appears when the bench declared a
//! per-iteration byte count; `units_per_iter`/`units_per_s` appear when it
//! declared a work-item count (e.g. crash states checked per iteration →
//! crash-states/sec); `sim_ns` is the simulated-disk-clock time of
//! one iteration for benches registered via [`BenchGroup::bench_with_sim`].
//!
//! ## Smoke mode
//!
//! `--smoke` (or `IRON_BENCH_SMOKE=1`) runs every bench exactly once with
//! no warmup — CI uses this to prove the bench binaries work without
//! paying measurement time.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// Target wall-clock time per measurement sample.
const SAMPLE_TARGET_NS: u64 = 10_000_000; // 10 ms
/// Measurement samples per bench (non-smoke).
const SAMPLES: usize = 10;
/// Cap on iterations per sample, for benches far faster than the target.
const MAX_ITERS_PER_SAMPLE: u64 = 1 << 20;

/// One bench's measured numbers.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Bench name within the group.
    pub name: String,
    /// Iterations per timed sample.
    pub iters_per_sample: u64,
    /// Per-iteration mean wall time of each sample, in nanoseconds.
    pub sample_means_ns: Vec<f64>,
    /// Bytes processed per iteration, if declared.
    pub throughput_bytes: Option<u64>,
    /// Abstract work items per iteration (e.g. crash states), if declared.
    pub units_per_iter: Option<u64>,
    /// Simulated clock time of one iteration, if the bench reports it.
    pub sim_ns: Option<u64>,
}

impl BenchResult {
    fn mean_ns(&self) -> f64 {
        self.sample_means_ns.iter().sum::<f64>() / self.sample_means_ns.len() as f64
    }

    fn min_ns(&self) -> f64 {
        self.sample_means_ns
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    fn max_ns(&self) -> f64 {
        self.sample_means_ns.iter().copied().fold(0.0, f64::max)
    }

    fn throughput_mb_per_s(&self) -> Option<f64> {
        self.throughput_bytes
            .map(|b| b as f64 / self.mean_ns() * 1e9 / (1024.0 * 1024.0))
    }

    fn units_per_s(&self) -> Option<f64> {
        self.units_per_iter.map(|u| u as f64 / self.mean_ns() * 1e9)
    }
}

/// A named group of benches — the unit that becomes one JSON file.
pub struct BenchGroup {
    group: String,
    smoke: bool,
    out_dir: PathBuf,
    throughput_bytes: Option<u64>,
    throughput_units: Option<u64>,
    results: Vec<BenchResult>,
}

impl BenchGroup {
    /// Build a group, reading `--smoke` from the command line (unknown
    /// flags — e.g. the ones cargo forwards — are ignored) and
    /// `IRON_BENCH_SMOKE` / `IRON_BENCH_DIR` from the environment.
    pub fn from_env(group: &str) -> Self {
        let smoke = std::env::args().any(|a| a == "--smoke")
            || std::env::var("IRON_BENCH_SMOKE").is_ok_and(|v| v == "1");
        let out_dir = std::env::var_os("IRON_BENCH_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."));
        BenchGroup {
            group: group.to_string(),
            smoke,
            out_dir,
            throughput_bytes: None,
            throughput_units: None,
            results: Vec::new(),
        }
    }

    /// Declare bytes-processed-per-iteration for subsequent benches (so
    /// results also report MB/s). Call with `None` to stop.
    pub fn throughput_bytes(&mut self, bytes: Option<u64>) {
        self.throughput_bytes = bytes;
    }

    /// Declare abstract work-items-per-iteration for subsequent benches
    /// (so results also report items/s — e.g. crash states checked).
    /// Call with `None` to stop.
    pub fn throughput_units(&mut self, units: Option<u64>) {
        self.throughput_units = units;
    }

    /// Measure `f`: warmup, then [`SAMPLES`] timed samples of adaptively
    /// many iterations each. In smoke mode, a single iteration.
    pub fn bench<R, F: FnMut() -> R>(&mut self, name: &str, mut f: F) {
        self.run(name, false, &mut || {
            f();
            0
        });
    }

    /// Like [`Self::bench`], but `f` also returns the simulated-clock
    /// nanoseconds consumed by one iteration (recorded from the last run;
    /// simulated time is deterministic, so any run's value is *the*
    /// value).
    pub fn bench_with_sim<R, F: FnMut() -> (R, u64)>(&mut self, name: &str, mut f: F) {
        self.run(name, true, &mut || f().1);
    }

    fn run(&mut self, name: &str, record_sim: bool, f: &mut dyn FnMut() -> u64) {
        let iters_per_sample;
        let samples;
        let mut last_sim_ns = 0u64;
        if self.smoke {
            iters_per_sample = 1;
            let start = Instant::now();
            last_sim_ns = f();
            samples = vec![start.elapsed().as_nanos() as f64];
        } else {
            // Warmup doubles as calibration: run until the target sample
            // time is reached once, counting iterations.
            let mut warm_iters = 0u64;
            let warm_start = Instant::now();
            loop {
                f();
                warm_iters += 1;
                if warm_start.elapsed().as_nanos() as u64 >= SAMPLE_TARGET_NS
                    || warm_iters >= MAX_ITERS_PER_SAMPLE
                {
                    break;
                }
            }
            iters_per_sample = warm_iters;
            samples = (0..SAMPLES)
                .map(|_| {
                    let start = Instant::now();
                    for _ in 0..iters_per_sample {
                        last_sim_ns = f();
                    }
                    start.elapsed().as_nanos() as f64 / iters_per_sample as f64
                })
                .collect();
        }
        self.results.push(BenchResult {
            name: name.to_string(),
            iters_per_sample,
            sample_means_ns: samples,
            throughput_bytes: self.throughput_bytes,
            units_per_iter: self.throughput_units,
            sim_ns: record_sim.then_some(last_sim_ns),
        });
    }

    /// Render the JSON document for this group.
    fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"group\": {},\n  \"smoke\": {},\n  \"results\": [",
            json_string(&self.group),
            self.smoke
        );
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"name\": {}, \"iters_per_sample\": {}, \"samples\": {}, \
                 \"mean_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \
                 \"throughput_mb_per_s\": {}, \"units_per_iter\": {}, \
                 \"units_per_s\": {}, \"sim_ns\": {}}}",
                json_string(&r.name),
                r.iters_per_sample,
                r.sample_means_ns.len(),
                json_f64(r.mean_ns()),
                json_f64(r.min_ns()),
                json_f64(r.max_ns()),
                r.throughput_mb_per_s().map_or("null".into(), json_f64),
                r.units_per_iter.map_or("null".into(), |u| u.to_string()),
                r.units_per_s().map_or("null".into(), json_f64),
                r.sim_ns.map_or("null".into(), |s| s.to_string()),
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Print a human-readable table and write `BENCH_<group>.json`.
    pub fn finish(self) {
        println!(
            "== bench group '{}'{} ==",
            self.group,
            if self.smoke { " (smoke)" } else { "" }
        );
        for r in &self.results {
            let mut line = format!(
                "{:<40} {:>14.1} ns/iter (min {:.1}, max {:.1}, {} iters x {} samples)",
                r.name,
                r.mean_ns(),
                r.min_ns(),
                r.max_ns(),
                r.iters_per_sample,
                r.sample_means_ns.len(),
            );
            if let Some(t) = r.throughput_mb_per_s() {
                let _ = write!(line, "  {t:.1} MiB/s");
            }
            if let (Some(u), Some(rate)) = (r.units_per_iter, r.units_per_s()) {
                let _ = write!(line, "  {u} units, {rate:.1}/s");
            }
            if let Some(s) = r.sim_ns {
                let _ = write!(line, "  sim {s} ns");
            }
            println!("{line}");
        }
        let _ = std::fs::create_dir_all(&self.out_dir);
        let path = self.out_dir.join(format!("BENCH_{}.json", self.group));
        if let Err(e) = std::fs::write(&path, self.to_json()) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("wrote {}", path.display());
        }
    }
}

/// Escape a string as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format an `f64` so it is valid JSON (no `NaN`/`inf` tokens).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.1}")
    } else {
        "null".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_group(name: &str) -> BenchGroup {
        BenchGroup {
            group: name.to_string(),
            smoke: true,
            out_dir: std::env::temp_dir(),
            throughput_bytes: None,
            throughput_units: None,
            results: Vec::new(),
        }
    }

    #[test]
    fn smoke_runs_each_bench_once() {
        let mut g = smoke_group("unit");
        let mut runs = 0;
        g.bench("counted", || runs += 1);
        assert_eq!(runs, 1);
        assert_eq!(g.results.len(), 1);
        assert_eq!(g.results[0].iters_per_sample, 1);
    }

    #[test]
    fn sim_time_is_recorded() {
        let mut g = smoke_group("unit");
        g.bench_with_sim("with_sim", || ((), 12345u64));
        assert_eq!(g.results[0].sim_ns, Some(12345));
    }

    #[test]
    fn json_is_well_formed() {
        let mut g = smoke_group("unit");
        g.throughput_bytes(Some(4096));
        g.bench("a", || ());
        g.throughput_bytes(None);
        g.throughput_units(Some(42));
        g.bench_with_sim("b", || ((), 7u64));
        let json = g.to_json();
        assert!(json.contains("\"group\": \"unit\""));
        assert!(json.contains("\"name\": \"a\""));
        assert!(json.contains("\"throughput_mb_per_s\": null"), "{json}");
        assert!(json.contains("\"units_per_iter\": 42"), "{json}");
        assert!(json.contains("\"units_per_iter\": null"), "{json}");
        assert!(json.contains("\"sim_ns\": 7"));
        // Minimal structural sanity: balanced braces/brackets.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn json_f64_rejects_non_finite() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(1.25), "1.2");
    }

    #[test]
    fn finish_writes_the_json_file() {
        let dir = std::env::temp_dir();
        let mut g = smoke_group("testkit_selftest");
        g.out_dir = dir.clone();
        g.bench("noop", || ());
        g.finish();
        let path = dir.join("BENCH_testkit_selftest.json");
        let contents = std::fs::read_to_string(&path).expect("json written");
        assert!(contents.contains("\"noop\""));
        let _ = std::fs::remove_file(path);
    }
}

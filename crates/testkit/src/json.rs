//! A minimal JSON reader for the harness's own output formats.
//!
//! `BENCH_<group>.json` files are written by [`crate::bench`] and read
//! back by the bench-regression gate (`iron-bench`'s `bench_check`
//! binary). Parsing them in-tree keeps the workspace hermetic — no
//! `serde`, no `serde_json`. This is a full RFC-8259 recursive-descent
//! parser (objects, arrays, strings with escapes, numbers, booleans,
//! null); it is simply not optimized for large documents.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (held as `f64`, which covers every value the
    /// bench harness emits).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Key order is not preserved (sorted).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object field lookup; `None` on non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The number in this value, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string in this value, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements of this value, if it is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// True if this value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// A parse failure: byte offset and what went wrong there.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub at: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        b: input.as_bytes(),
        i: 0,
    };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.i,
            msg: msg.to_string(),
        }
    }

    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'n') => self.lit("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.eat(b'{')?;
        let mut m = BTreeMap::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Obj(m));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            m.insert(key, self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Obj(m));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.eat(b'[')?;
        let mut v = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Arr(v));
        }
        loop {
            self.ws();
            v.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Arr(v));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.i += 1;
            match c {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(e) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.i += 1;
                    match e {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.i += 4;
                            // Surrogate pairs are not used by our emitters;
                            // map lone surrogates to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the byte we consumed.
                    let start = self.i - 1;
                    let mut end = self.i;
                    while end < self.b.len() && self.b[end] & 0xC0 == 0x80 {
                        end += 1;
                    }
                    let frag = std::str::from_utf8(&self.b[start..end])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    s.push_str(frag);
                    self.i = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).expect("ascii");
        text.parse::<f64>().map(Value::Num).map_err(|_| ParseError {
            at: start,
            msg: format!("bad number '{text}'"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" -12.5e2 ").unwrap(), Value::Num(-1250.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::Str("a\nb".into()));
    }

    #[test]
    fn parses_a_bench_style_document() {
        let doc = r#"{
            "group": "serve", "smoke": true,
            "results": [
                {"name": "t1", "mean_ns": 120.5, "units_per_s": 8000.0, "sim_ns": null},
                {"name": "t2", "mean_ns": 60.25, "units_per_s": 16000.0, "sim_ns": 42}
            ]
        }"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("group").and_then(Value::as_str), Some("serve"));
        let results = v.get("results").and_then(Value::as_arr).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].get("name").and_then(Value::as_str), Some("t1"));
        assert_eq!(results[1].get("sim_ns").and_then(Value::as_f64), Some(42.0));
        assert!(results[0].get("sim_ns").unwrap().is_null());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\": 1} x").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn unicode_and_escapes_round_trip() {
        let v = parse("\"caf\u{e9} \\u0041 \\t\"").unwrap();
        assert_eq!(v, Value::Str("café A \t".into()));
    }

    #[test]
    fn nested_structures() {
        let v = parse(r#"{"a": [{"b": [1, 2, [3]]}], "c": {}}"#).unwrap();
        let inner = v.get("a").and_then(Value::as_arr).unwrap()[0]
            .get("b")
            .and_then(Value::as_arr)
            .unwrap();
        assert_eq!(inner[2].as_arr().unwrap()[0], Value::Num(3.0));
        assert_eq!(v.get("c"), Some(&Value::Obj(Default::default())));
    }
}

//! The property runner: fixed-iteration, seed-reporting, shrinking.
//!
//! Each case derives its own seed from a base seed via the SplitMix64
//! stream, so a failure is reproducible in isolation: set
//! `IRON_TESTKIT_SEED` to the printed case seed and rerun the one test.

use std::cell::Cell;
use std::fmt::Debug;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

use crate::gen::Gen;
use crate::rng::{splitmix64, Rng};
use crate::shrink::Shrink;

/// Base seed used when neither [`Config::seed`] nor `IRON_TESTKIT_SEED`
/// is set. Fixed, so CI runs are bit-for-bit reproducible.
pub const DEFAULT_BASE_SEED: u64 = 0x4952_4F4E_5F46_5321; // "IRON_FS!"

/// Environment variable overriding the case seed (hex, with or without
/// `0x`, or decimal). When set, every property runs exactly that case.
pub const SEED_ENV: &str = "IRON_TESTKIT_SEED";

/// Environment variable overriding the number of cases per property.
pub const CASES_ENV: &str = "IRON_TESTKIT_CASES";

/// How a property is exercised.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Number of generated cases.
    pub cases: u32,
    /// Upper bound on accepted shrink steps after a failure.
    pub max_shrink_steps: u32,
    /// Base seed; `None` uses [`DEFAULT_BASE_SEED`] (or `IRON_TESTKIT_SEED`).
    pub seed: Option<u64>,
}

impl Config {
    /// A config running `cases` cases with default shrinking.
    pub fn cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 64,
            max_shrink_steps: 512,
            seed: None,
        }
    }
}

thread_local! {
    /// Set while the runner probes a case, so the panic hook stays quiet
    /// for panics the runner is going to catch and report itself.
    static PROBING: Cell<bool> = const { Cell::new(false) };
}

static HOOK: Once = Once::new();

fn install_quiet_hook() {
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !PROBING.with(Cell::get) {
                prev(info);
            }
        }));
    });
}

/// Run `prop` on `value`, catching a panic. Returns the panic message on
/// failure.
fn probe<T, P: Fn(&T)>(prop: &P, value: &T) -> Result<(), String> {
    PROBING.with(|p| p.set(true));
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| prop(value)));
    PROBING.with(|p| p.set(false));
    match outcome {
        Ok(()) => Ok(()),
        Err(payload) => Err(payload
            .downcast_ref::<&str>()
            .map(ToString::to_string)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "<non-string panic payload>".into())),
    }
}

fn parse_u64(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        // Bare hex is accepted too (seeds are printed as hex).
        s.parse().ok().or_else(|| u64::from_str_radix(s, 16).ok())
    }
}

fn truncated_debug<T: Debug>(value: &T) -> String {
    const LIMIT: usize = 4096;
    let mut s = format!("{value:?}");
    if s.len() > LIMIT {
        let mut cut = LIMIT;
        while !s.is_char_boundary(cut) {
            cut -= 1;
        }
        let total = s.len();
        s.truncate(cut);
        s.push_str(&format!("… ({total} bytes of Debug output)"));
    }
    s
}

/// Check a property over `cfg.cases` generated inputs.
///
/// `prop` signals failure by panicking (use `assert!`/`assert_eq!` as in
/// any test). On failure the input is shrunk by [`Shrink`] halving, and
/// the runner panics with the case seed and a ready-to-paste
/// reproduction command.
pub fn check<G, P>(name: &str, cfg: Config, gen: &G, prop: P)
where
    G: Gen,
    G::Value: Clone + Debug + Shrink,
    P: Fn(&G::Value),
{
    install_quiet_hook();

    let env_seed = std::env::var(SEED_ENV).ok().and_then(|s| parse_u64(&s));
    let cases = match std::env::var(CASES_ENV).ok().and_then(|s| parse_u64(&s)) {
        _ if env_seed.is_some() => 1,
        Some(n) => n.clamp(1, u64::from(u32::MAX)) as u32,
        None => cfg.cases,
    };
    let mut seed_stream = cfg.seed.unwrap_or(DEFAULT_BASE_SEED);

    for case in 0..cases {
        // With an explicit env seed, run exactly that case.
        let case_seed = env_seed.unwrap_or_else(|| splitmix64(&mut seed_stream));
        let value = gen.generate(&mut Rng::from_seed(case_seed));
        let Err(first_message) = probe(&prop, &value) else {
            continue;
        };

        // Greedy halving shrink: adopt any candidate that still fails.
        let mut shrunk = value.clone();
        let mut message = first_message.clone();
        let mut steps = 0u32;
        'shrinking: while steps < cfg.max_shrink_steps {
            for candidate in shrunk.shrink_candidates() {
                if let Err(m) = probe(&prop, &candidate) {
                    shrunk = candidate;
                    message = m;
                    steps += 1;
                    continue 'shrinking;
                }
            }
            break;
        }

        panic!(
            "[iron-testkit] property '{name}' failed (case {case_num}/{cases}, seed {case_seed:#018x})\n\
             | failure: {message}\n\
             | shrunk input ({steps} steps): {shrunk_dbg}\n\
             | original input: {orig_dbg}\n\
             | rerun just this case: {SEED_ENV}={case_seed:#x} cargo test -q {name}",
            case_num = case + 1,
            shrunk_dbg = truncated_debug(&shrunk),
            orig_dbg = truncated_debug(&value),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0u32;
        let counter = std::cell::RefCell::new(&mut count);
        check("always_true", Config::cases(17), &gen::u8_any(), |_| {
            **counter.borrow_mut() += 1;
        });
        assert_eq!(count, 17);
    }

    #[test]
    fn failing_property_reports_seed_and_shrinks() {
        let err = panic::catch_unwind(|| {
            check(
                "vec_shorter_than_3",
                Config::cases(64),
                &gen::vec_of(gen::u8_any(), 0..20),
                |v| assert!(v.len() < 3, "too long: {}", v.len()),
            );
        })
        .expect_err("property must fail");
        let msg = err.downcast_ref::<String>().expect("string panic").clone();
        assert!(
            msg.contains("property 'vec_shorter_than_3' failed"),
            "{msg}"
        );
        assert!(msg.contains(SEED_ENV), "{msg}");
        // The minimal failing input is any 3-element vector; halving from
        // up-to-19 elements must land exactly there.
        assert!(
            msg.contains("too long: 3"),
            "shrink should reach length 3: {msg}"
        );
    }

    #[test]
    fn failure_is_reproducible_from_reported_seed() {
        // Extract the seed from a failure report, then regenerate the
        // exact same input with it.
        let gen = gen::vec_of(gen::u16_any(), 1..50);
        let err = panic::catch_unwind(|| {
            check("sum_is_small", Config::cases(64), &gen, |v| {
                let sum: u64 = v.iter().map(|&x| u64::from(x)).sum();
                assert!(sum < 100, "sum {sum}");
            });
        })
        .expect_err("property must fail");
        let msg = err.downcast_ref::<String>().unwrap().clone();
        let seed_hex = msg
            .split("seed ")
            .nth(1)
            .and_then(|s| s.split(',').next().unwrap().split(')').next())
            .expect("seed in message");
        let seed = parse_u64(seed_hex).expect("parsable seed");
        let replayed = gen.generate(&mut Rng::from_seed(seed));
        let replayed_dbg = format!("{replayed:?}");
        assert!(
            msg.contains(&replayed_dbg),
            "replayed input must match the reported original\nseed: {seed_hex}\nreplayed: {replayed_dbg}"
        );
    }

    #[test]
    fn parse_u64_accepts_hex_and_decimal() {
        assert_eq!(parse_u64("0x10"), Some(16));
        assert_eq!(parse_u64("0X10"), Some(16));
        assert_eq!(parse_u64("16"), Some(16));
        assert_eq!(parse_u64("  0xff "), Some(255));
        assert_eq!(parse_u64("deadbeef"), Some(0xDEAD_BEEF));
        assert_eq!(parse_u64("zzz"), None);
    }

    #[test]
    fn shrink_respects_step_budget() {
        let cfg = Config {
            cases: 4,
            max_shrink_steps: 0,
            seed: Some(1),
        };
        let err = panic::catch_unwind(|| {
            check(
                "never_passes",
                cfg,
                &gen::vec_of(gen::u8_any(), 5..10),
                |_| panic!("always fails"),
            );
        })
        .expect_err("must fail");
        let msg = err.downcast_ref::<String>().unwrap().clone();
        assert!(msg.contains("(0 steps)"), "no shrinking allowed: {msg}");
    }
}

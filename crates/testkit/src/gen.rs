//! Value generators for the property harness.
//!
//! A [`Gen`] turns a deterministic [`Rng`] into a value; combinators
//! compose generators into the shapes the test suites need — op
//! sequences, block addresses, corruption styles. Everything is
//! replayable: the same seed generates the same value.

use std::ops::Range;

use crate::rng::Rng;

/// A deterministic value generator.
pub trait Gen {
    /// The type of generated values.
    type Value;

    /// Produce one value from the given RNG state.
    fn generate(&self, rng: &mut Rng) -> Self::Value;

    /// Transform generated values with a pure function.
    fn map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erase this generator (needed to mix branches in [`one_of`]).
    fn boxed(self) -> BoxedGen<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased generator.
pub type BoxedGen<T> = Box<dyn Gen<Value = T>>;

impl<T> Gen for BoxedGen<T> {
    type Value = T;
    fn generate(&self, rng: &mut Rng) -> T {
        (**self).generate(rng)
    }
}

/// See [`Gen::map`].
pub struct Map<G, F> {
    inner: G,
    f: F,
}

impl<G, F, U> Gen for Map<G, F>
where
    G: Gen,
    F: Fn(G::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut Rng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A generator from a closure over the RNG.
pub struct FromFn<F>(F);

impl<T, F: Fn(&mut Rng) -> T> Gen for FromFn<F> {
    type Value = T;
    fn generate(&self, rng: &mut Rng) -> T {
        (self.0)(rng)
    }
}

/// Build a generator from a closure.
pub fn from_fn<T, F: Fn(&mut Rng) -> T>(f: F) -> FromFn<F> {
    FromFn(f)
}

/// Any `u8`.
pub fn u8_any() -> impl Gen<Value = u8> {
    from_fn(|rng| rng.next_u32() as u8)
}

/// Any `u16`.
pub fn u16_any() -> impl Gen<Value = u16> {
    from_fn(|rng| rng.next_u32() as u16)
}

/// Any `u32`.
pub fn u32_any() -> impl Gen<Value = u32> {
    from_fn(|rng| rng.next_u32())
}

/// Any `u64`.
pub fn u64_any() -> impl Gen<Value = u64> {
    from_fn(|rng| rng.next_u64())
}

/// Any `bool`.
pub fn bool_any() -> impl Gen<Value = bool> {
    from_fn(|rng| rng.bool())
}

/// A `u8` in `[range.start, range.end)`.
pub fn u8_in(range: Range<u8>) -> impl Gen<Value = u8> {
    from_fn(move |rng| rng.range(range.start as usize, range.end as usize) as u8)
}

/// A `u16` in `[range.start, range.end)`.
pub fn u16_in(range: Range<u16>) -> impl Gen<Value = u16> {
    from_fn(move |rng| rng.range(range.start as usize, range.end as usize) as u16)
}

/// A `u64` in `[range.start, range.end)`.
pub fn u64_in(range: Range<u64>) -> impl Gen<Value = u64> {
    from_fn(move |rng| range.start + rng.below(range.end - range.start))
}

/// A `usize` in `[range.start, range.end)`.
pub fn usize_in(range: Range<usize>) -> impl Gen<Value = usize> {
    from_fn(move |rng| rng.range(range.start, range.end))
}

/// Always the same value.
pub fn just<T: Clone>(value: T) -> impl Gen<Value = T> {
    from_fn(move |_| value.clone())
}

/// A `Vec` whose length is uniform in `len` and whose elements come from
/// `elem`.
pub fn vec_of<G: Gen>(elem: G, len: Range<usize>) -> impl Gen<Value = Vec<G::Value>> {
    from_fn(move |rng| {
        let n = rng.range(len.start, len.end);
        (0..n).map(|_| elem.generate(rng)).collect()
    })
}

/// A byte vector with uniform length in `len` (fast path for payloads).
pub fn bytes(len: Range<usize>) -> impl Gen<Value = Vec<u8>> {
    from_fn(move |rng| {
        let n = rng.range(len.start, len.end);
        let mut buf = vec![0u8; n];
        rng.fill(&mut buf);
        buf
    })
}

/// Pick one of the branches uniformly, then generate from it — the
/// harness's `prop_oneof!`.
pub fn one_of<T>(branches: Vec<BoxedGen<T>>) -> impl Gen<Value = T> {
    assert!(!branches.is_empty(), "one_of needs at least one branch");
    from_fn(move |rng| {
        let i = rng.below(branches.len() as u64) as usize;
        branches[i].generate(rng)
    })
}

/// Like [`one_of`], but each branch is chosen with probability
/// proportional to its weight.
pub fn weighted<T>(branches: Vec<(u32, BoxedGen<T>)>) -> impl Gen<Value = T> {
    let total: u64 = branches.iter().map(|(w, _)| *w as u64).sum();
    assert!(total > 0, "weighted needs a positive total weight");
    from_fn(move |rng| {
        let mut ticket = rng.below(total);
        for (w, g) in &branches {
            if ticket < *w as u64 {
                return g.generate(rng);
            }
            ticket -= *w as u64;
        }
        unreachable!("ticket exceeds total weight")
    })
}

macro_rules! tuple_gen {
    ($($g:ident : $idx:tt),+) => {
        impl<$($g: Gen),+> Gen for ($($g,)+) {
            type Value = ($($g::Value,)+);
            fn generate(&self, rng: &mut Rng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_gen!(A: 0, B: 1);
tuple_gen!(A: 0, B: 1, C: 2);
tuple_gen!(A: 0, B: 1, C: 2, D: 3);
tuple_gen!(A: 0, B: 1, C: 2, D: 3, E: 4);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Rng {
        Rng::from_seed(0xDEAD_BEEF)
    }

    #[test]
    fn generators_are_deterministic() {
        let g = vec_of(u8_any(), 1..20);
        let a = g.generate(&mut rng());
        let b = g.generate(&mut rng());
        assert_eq!(a, b);
    }

    #[test]
    fn ranges_are_respected() {
        let g = (u8_in(3..7), usize_in(100..101), u64_in(9..12));
        let mut r = rng();
        for _ in 0..500 {
            let (a, b, c) = g.generate(&mut r);
            assert!((3..7).contains(&a));
            assert_eq!(b, 100);
            assert!((9..12).contains(&c));
        }
    }

    #[test]
    fn vec_lengths_are_in_range() {
        let g = vec_of(bool_any(), 2..5);
        let mut r = rng();
        for _ in 0..200 {
            let v = g.generate(&mut r);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn map_applies() {
        let g = u8_any().map(|v| v as u32 + 1000);
        let v = g.generate(&mut rng());
        assert!((1000..1256).contains(&v));
    }

    #[test]
    fn one_of_hits_every_branch() {
        let g = one_of(vec![
            just(1u8).boxed(),
            just(2u8).boxed(),
            just(3u8).boxed(),
        ]);
        let mut r = rng();
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[g.generate(&mut r) as usize - 1] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }

    #[test]
    fn weighted_respects_zero_weight() {
        let g = weighted(vec![(0, just(1u8).boxed()), (5, just(2u8).boxed())]);
        let mut r = rng();
        for _ in 0..200 {
            assert_eq!(g.generate(&mut r), 2);
        }
    }

    #[test]
    fn bytes_generates_payloads() {
        let g = bytes(0..1500);
        let mut r = rng();
        let mut max_len = 0;
        for _ in 0..100 {
            let v = g.generate(&mut r);
            assert!(v.len() < 1500);
            max_len = max_len.max(v.len());
        }
        assert!(max_len > 500, "uniform lengths should reach past 500");
    }
}

//! Serving-layer differential on JFS: record-level journaling must
//! commute with the serving layer — the unmounted image of a concurrent
//! run is bit-identical to its serial replay at every thread count.

use iron_blockdev::MemDisk;
use iron_jfs::{JfsFs, JfsOptions, JfsParams};
use iron_serve::{assert_serial_equivalence, generate, memdisk_image, prepare, WorkloadSpec};
use iron_vfs::{FsEnv, Vfs};

fn mount_prepared(spec: &WorkloadSpec) -> Vfs<JfsFs<MemDisk>> {
    let mut md = MemDisk::for_tests(4096);
    JfsFs::<MemDisk>::mkfs(&mut md, JfsParams::small()).unwrap();
    let fs = JfsFs::mount(md, FsEnv::new(), JfsOptions::default()).unwrap();
    let mut v = Vfs::new(fs);
    prepare(&mut v, spec);
    v
}

#[test]
fn jfs_serve_matches_serial_replay_bit_identically() {
    let spec = WorkloadSpec::default();
    let sessions = generate(&spec);
    assert_serial_equivalence(
        || mount_prepared(&spec),
        |v| Some(memdisk_image(&v.into_fs().into_device())),
        &sessions,
        &[1, 2, 4, 8],
    );
}

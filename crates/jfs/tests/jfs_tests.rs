//! Functional and failure-policy tests for the JFS model.

use iron_blockdev::{MemDisk, RawAccess};
use iron_core::{Block, BlockAddr, BlockTag, Errno, FaultKind};
use iron_faultinject::{FaultController, FaultSpec, FaultTarget, FaultyDisk};
use iron_jfs::{JfsFs, JfsOptions, JfsParams};
use iron_vfs::{FsEnv, MountState, Vfs};

type Fs = JfsFs<FaultyDisk<MemDisk>>;

fn mount() -> (Vfs<Fs>, FaultController, FsEnv) {
    let mut md = MemDisk::for_tests(4096);
    JfsFs::<MemDisk>::mkfs(&mut md, JfsParams::small()).unwrap();
    let faulty = FaultyDisk::new(md);
    let ctl = faulty.controller();
    let env = FsEnv::new();
    let fs = JfsFs::mount(faulty, env.clone(), JfsOptions::default()).unwrap();
    (Vfs::new(fs), ctl, env)
}

fn remount(mut v: Vfs<Fs>) -> (Vfs<Fs>, FsEnv) {
    v.umount().unwrap();
    let dev = v.into_fs().into_device();
    let env = FsEnv::new();
    let fs = JfsFs::mount(dev, env.clone(), JfsOptions::default()).unwrap();
    (Vfs::new(fs), env)
}

// ----------------------------------------------------------------------
// Functionality.
// ----------------------------------------------------------------------

#[test]
fn basic_file_and_dir_operations() {
    let (mut v, _ctl, _env) = mount();
    v.mkdir("/d", 0o755).unwrap();
    v.write_file("/d/f", b"jfs data").unwrap();
    assert_eq!(v.read_file("/d/f").unwrap(), b"jfs data");
    v.link("/d/f", "/d/g").unwrap();
    assert_eq!(v.stat("/d/g").unwrap().nlink, 2);
    v.rename("/d/g", "/moved").unwrap();
    v.symlink("/moved", "/ln").unwrap();
    assert_eq!(v.read_file("/ln").unwrap(), b"jfs data");
    v.unlink("/d/f").unwrap();
    v.unlink("/moved").unwrap();
    v.unlink("/ln").unwrap();
    v.rmdir("/d").unwrap();
    assert_eq!(v.readdir("/").unwrap().len(), 2);
}

#[test]
fn large_file_uses_internal_block() {
    let (mut v, _ctl, _env) = mount();
    // > 8 direct blocks ⇒ internal extent block.
    let data: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
    v.write_file("/big", &data).unwrap();
    assert_eq!(v.read_file("/big").unwrap(), data);
    v.truncate("/big", 10_000).unwrap();
    assert_eq!(v.read_file("/big").unwrap(), data[..10_000].to_vec());
}

#[test]
fn persistence_and_block_accounting() {
    let (mut v, _ctl, _env) = mount();
    let free0 = v.statfs().unwrap().blocks_free;
    v.write_file("/f", &vec![0x3C; 100_000]).unwrap();
    v.sync().unwrap();
    let (mut v, _env) = remount(v);
    assert_eq!(v.read_file("/f").unwrap(), vec![0x3C; 100_000]);
    v.unlink("/f").unwrap();
    v.sync().unwrap();
    assert_eq!(v.statfs().unwrap().blocks_free, free0);
}

#[test]
fn crash_recovery_replays_record_journal() {
    let mut md = MemDisk::for_tests(4096);
    JfsFs::<MemDisk>::mkfs(&mut md, JfsParams::small()).unwrap();
    let faulty = FaultyDisk::new(md);
    let opts = JfsOptions {
        crash_mode: true,
        ..Default::default()
    };
    let fs = JfsFs::mount(faulty, FsEnv::new(), opts).unwrap();
    let mut v = Vfs::new(fs);
    v.write_file("/metadata-survives", b"x").unwrap();
    v.sync().unwrap();
    let dev = v.into_fs().into_device();
    let env = FsEnv::new();
    let fs = JfsFs::mount(dev, env.clone(), JfsOptions::default()).unwrap();
    assert!(env.klog.contains("journal replay complete"));
    let mut v = Vfs::new(fs);
    // The file's metadata was journaled; its name must be back.
    assert!(v.stat("/metadata-survives").is_ok());
}

// ----------------------------------------------------------------------
// Failure policy (§5.3).
// ----------------------------------------------------------------------

#[test]
fn metadata_read_failure_retried_once_by_generic_code() {
    let (mut v, ctl, _env) = mount();
    v.write_file("/f", b"x").unwrap();
    v.sync().unwrap();
    let (mut v, env) = remount(v);
    // Transient×1: the generic retry absorbs it.
    ctl.inject(FaultSpec::transient(
        FaultKind::ReadError,
        FaultTarget::Tag(BlockTag("inode")),
        1,
    ));
    assert_eq!(v.read_file("/f").unwrap(), b"x");
    assert!(env.klog.contains("retrying once"));
}

#[test]
fn sticky_metadata_read_failure_propagates_after_retry() {
    let (mut v, ctl, _env) = mount();
    v.write_file("/f", b"x").unwrap();
    v.sync().unwrap();
    let (mut v, env) = remount(v);
    ctl.inject(FaultSpec::sticky(
        FaultKind::ReadError,
        FaultTarget::Tag(BlockTag("inode")),
    ));
    assert_eq!(v.stat("/f").unwrap_err().errno(), Some(Errno::EIO));
    assert_ne!(env.state(), MountState::Crashed);
}

#[test]
fn primary_super_read_error_uses_alternate() {
    let mut md = MemDisk::for_tests(4096);
    JfsFs::<MemDisk>::mkfs(&mut md, JfsParams::small()).unwrap();
    let faulty = FaultyDisk::new(md);
    faulty.controller().inject(FaultSpec::sticky(
        FaultKind::ReadError,
        FaultTarget::Addr(BlockAddr(0)),
    ));
    let env = FsEnv::new();
    // RRedundancy: mount succeeds from the alternate superblock.
    let fs = JfsFs::mount(faulty, env.clone(), JfsOptions::default()).unwrap();
    assert!(env.klog.contains("trying alternate"));
    let mut v = Vfs::new(fs);
    assert!(v.readdir("/").is_ok());
}

#[test]
fn corrupt_primary_super_fails_mount_despite_alternate_paper_bug() {
    let mut md = MemDisk::for_tests(4096);
    JfsFs::<MemDisk>::mkfs(&mut md, JfsParams::small()).unwrap();
    md.poke(BlockAddr(0), &Block::filled(0x44));
    let env = FsEnv::new();
    // PAPER-BUG: the alternate is NOT consulted for a corrupt primary.
    let err = match JfsFs::mount(FaultyDisk::new(md), env.clone(), JfsOptions::default()) {
        Err(e) => e,
        Ok(_) => panic!("mount should fail"),
    };
    assert_eq!(err.errno(), Some(Errno::EUCLEAN));
}

#[test]
fn aggregate_inode_read_error_ignores_secondary_paper_bug() {
    let mut md = MemDisk::for_tests(4096);
    JfsFs::<MemDisk>::mkfs(&mut md, JfsParams::small()).unwrap();
    let layout = iron_jfs::JfsLayout::compute(JfsParams::small());
    let faulty = FaultyDisk::new(md);
    faulty.controller().inject(FaultSpec::sticky(
        FaultKind::ReadError,
        FaultTarget::Addr(BlockAddr(layout.aggr_inode)),
    ));
    let env = FsEnv::new();
    let err = match JfsFs::mount(faulty, env.clone(), JfsOptions::default()) {
        Err(e) => e,
        Ok(_) => panic!("mount should fail"),
    };
    assert_eq!(err.errno(), Some(Errno::EIO));
    assert!(env.klog.contains("secondary copy NOT consulted"));
}

#[test]
fn bmap_read_failure_crashes_system() {
    let (mut v, ctl, env) = mount();
    ctl.inject(FaultSpec::sticky(
        FaultKind::ReadError,
        FaultTarget::Tag(BlockTag("bmap")),
    ));
    // Allocation needs the bmap; a failed read is an explicit crash.
    let err = v.write_file("/new", &vec![1u8; 8192]).unwrap_err();
    assert!(err.is_panic(), "got {err:?}");
    assert_eq!(env.state(), MountState::Crashed);
}

#[test]
fn journal_super_write_failure_crashes_system() {
    let (mut v, ctl, env) = mount();
    ctl.inject(FaultSpec::sticky(
        FaultKind::WriteError,
        FaultTarget::Tag(BlockTag("j-super")),
    ));
    v.write_file("/f", b"x").unwrap();
    let err = v.sync().unwrap_err();
    assert!(err.is_panic());
    assert_eq!(env.state(), MountState::Crashed);
}

#[test]
fn other_write_failures_ignored() {
    let (mut v, ctl, env) = mount();
    // Fail ALL journal-data and checkpoint-side writes.
    ctl.inject(FaultSpec::sticky(
        FaultKind::WriteError,
        FaultTarget::Tag(BlockTag("j-data")),
    ));
    ctl.inject(FaultSpec::sticky(
        FaultKind::WriteError,
        FaultTarget::Tag(BlockTag("data")),
    ));
    v.write_file("/f", b"lost").unwrap();
    v.sync().unwrap(); // no error, no crash: RZero
    assert_eq!(env.state(), MountState::ReadWrite);
}

#[test]
fn corrupt_internal_block_returns_blank_page_paper_bug() {
    let (mut v, _ctl, _env) = mount();
    let data: Vec<u8> = (0..100_000u32).map(|i| (i % 250) as u8).collect();
    v.write_file("/big", &data).unwrap();
    v.sync().unwrap();
    v.umount().unwrap();
    let mut dev = v.into_fs().into_device();
    // Find the internal block: corrupt its count field with an absurd
    // value (fails the bounds check but is otherwise "valid").
    let layout = iron_jfs::JfsLayout::compute(JfsParams::small());
    let mut internal_addr = None;
    for a in layout.alloc_start..4096 {
        let b = dev.peek(BlockAddr(a));
        let count = b.get_u32(0);
        // Internal blocks hold ~25 block pointers for a 100 KB file.
        if (9..=30).contains(&count) {
            let plausible = (0..count as usize)
                .all(|i| (layout.alloc_start..4096).contains(&(b.get_u32(8 + i * 4) as u64)));
            if plausible {
                internal_addr = Some(a);
                break;
            }
        }
    }
    let addr = internal_addr.expect("internal block found");
    let mut b = dev.peek(BlockAddr(addr));
    b.put_u32(0, 50_000); // count > maximum possible
    dev.poke(BlockAddr(addr), &b);
    let env = FsEnv::new();
    let fs = JfsFs::mount(dev, env.clone(), JfsOptions::default()).unwrap();
    let mut v = Vfs::new(fs);
    // PAPER-BUG: RGuess — the read "succeeds" and returns blank data
    // beyond the direct blocks, with no error and no log entry.
    let got = v.read_file("/big").unwrap();
    assert_eq!(got.len(), data.len());
    assert_eq!(&got[..8 * 4096], &data[..8 * 4096], "direct blocks intact");
    assert!(
        got[8 * 4096..].iter().all(|&x| x == 0),
        "blank page silently returned for the extent-mapped region"
    );
    assert_eq!(env.state(), MountState::ReadWrite);
}

#[test]
fn corrupt_dir_block_sanity_check_stops() {
    let (mut v, _ctl, _env) = mount();
    v.mkdir("/d", 0o755).unwrap();
    v.write_file("/d/f", b"x").unwrap();
    v.sync().unwrap();
    v.umount().unwrap();
    let mut dev = v.into_fs().into_device();
    // Corrupt the root dir block's entry count.
    let layout = iron_jfs::JfsLayout::compute(JfsParams::small());
    let root_dir = layout.alloc_start;
    let mut b = dev.peek(BlockAddr(root_dir));
    b.put_u16(0, 9999);
    dev.poke(BlockAddr(root_dir), &b);
    let env = FsEnv::new();
    let fs = JfsFs::mount(dev, env.clone(), JfsOptions::default()).unwrap();
    let mut v = Vfs::new(fs);
    let err = v.readdir("/").unwrap_err();
    assert_eq!(err.errno(), Some(Errno::EUCLEAN), "DSanity → RPropagate");
    assert_eq!(env.state(), MountState::ReadOnly, "RStop: read-only");
}

#[test]
fn unlink_inode_read_failure_corrupts_fs_paper_bug() {
    let (mut v, ctl, env) = mount();
    // Fill the first inode-table block (32 inodes) so the victim's inode
    // lives in the *second* table block — distinct from the root's, which
    // gets cached during path resolution.
    for i in 0..35 {
        v.write_file(&format!("/pad{i}"), b"p").unwrap();
    }
    v.write_file("/victim", &vec![8u8; 50_000]).unwrap();
    v.sync().unwrap();
    let free_before = v.statfs().unwrap().blocks_free;
    let (mut v, env2) = remount(v);
    drop(env);
    // Fail the victim's inode-table read and its generic retry (the 2nd
    // inode-block read after the root's), then let later reads succeed —
    // the JFS bug: the error is ignored and unlink proceeds with a blank
    // inode.
    ctl.inject(FaultSpec::transient(
        FaultKind::ReadError,
        FaultTarget::TagNth {
            tag: BlockTag("inode"),
            nth: 1,
        },
        2,
    ));
    v.unlink("/victim").unwrap();
    v.sync().unwrap();
    ctl.clear();
    // The entry is gone but the file's blocks were never freed: silent
    // corruption (leaked space + clobbered inode slot).
    assert_eq!(v.stat("/victim").unwrap_err().errno(), Some(Errno::ENOENT));
    let free_after = v.statfs().unwrap().blocks_free;
    assert!(
        free_after < free_before + 5,
        "blocks should leak: {free_after} vs {free_before}"
    );
    assert_eq!(env2.state(), MountState::ReadWrite);
}

// ----------------------------------------------------------------------
// The full Figure 1 stack: JFS over the write-back buffer cache.
// ----------------------------------------------------------------------

#[test]
fn cached_stack_round_trip() {
    use iron_blockdev::{CachePolicy, StackBuilder};

    let mut dev = StackBuilder::memdisk(4096)
        .with_cache(CachePolicy::write_back(64))
        .build();
    JfsFs::<MemDisk>::mkfs(dev.inner_mut(), JfsParams::small()).unwrap();
    let fs = JfsFs::mount(dev, FsEnv::new(), JfsOptions::default()).unwrap();
    let mut v = Vfs::new(fs);
    for i in 0..12u8 {
        v.write_file(&format!("/f{i}"), &vec![i; 3000]).unwrap();
    }
    v.sync().unwrap();
    v.umount().unwrap();

    let cache = v.into_fs().into_device();
    assert_eq!(cache.dirty_blocks(), 0, "unmount drains the cache");
    let md = cache.into_inner();
    let fs = JfsFs::mount(md, FsEnv::new(), JfsOptions::default()).unwrap();
    let mut v = Vfs::new(fs);
    for i in 0..12u8 {
        assert_eq!(v.read_file(&format!("/f{i}")).unwrap(), vec![i; 3000]);
    }
}

//! The JFS model: operations, record-level journaling, and the §5.3
//! failure policy — "the kitchen sink".

use std::collections::{BTreeMap, HashMap};

use iron_blockdev::{BlockDevice, RawAccess};
use iron_core::{Block, BlockAddr, Errno, BLOCK_SIZE};
use iron_vfs::{
    DirEntry, FileType, FsEnv, InodeAttr, MountState, SpecificFs, StatFs, VfsError, VfsResult,
};

use crate::journal::{pack_records, JournalSuper, LogRecord, RecordBlock};
use crate::layout::{
    AggregateInodes, BmapDesc, JfsBlockType, JfsLayout, JfsParams, JfsSuper, INODE_SIZE, ROOT_INO,
};

/// Direct block pointers per inode.
const NDIRECT: usize = 8;
/// Pointers per internal (extent) block.
const PTRS_PER_INTERNAL: usize = 1000;
/// Maximum directory entries per dir block (sanity-checked bound).
const DIR_MAX_ENTRIES: usize = 128;

/// Mount options.
#[derive(Clone, Debug)]
pub struct JfsOptions {
    /// Commit once this many records accumulate.
    pub commit_threshold: usize,
    /// Stop commits after the log write (simulated crash window).
    pub crash_mode: bool,
}

impl Default for JfsOptions {
    fn default() -> Self {
        JfsOptions {
            commit_threshold: 256,
            crash_mode: false,
        }
    }
}

/// A JFS inode (128-byte on-disk record).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct JInode {
    mode: u32,
    uid: u32,
    gid: u32,
    nlink: u32,
    size: u64,
    mtime: u64,
    direct: [u32; NDIRECT],
    internal: u32,
}

const S_IFDIR: u32 = 0x4000;
const S_IFREG: u32 = 0x8000;
const S_IFLNK: u32 = 0xA000;

impl JInode {
    fn empty() -> Self {
        JInode {
            mode: 0,
            uid: 0,
            gid: 0,
            nlink: 0,
            size: 0,
            mtime: 0,
            direct: [0; NDIRECT],
            internal: 0,
        }
    }

    fn new(ftype: FileType, perm: u32) -> Self {
        let bits = match ftype {
            FileType::Regular => S_IFREG,
            FileType::Directory => S_IFDIR,
            FileType::Symlink => S_IFLNK,
        };
        JInode {
            mode: bits | (perm & 0o7777),
            nlink: if ftype == FileType::Directory { 2 } else { 1 },
            ..JInode::empty()
        }
    }

    fn is_free(&self) -> bool {
        self.mode == 0 && self.nlink == 0
    }

    fn file_type(&self) -> Option<FileType> {
        match self.mode & 0xF000 {
            S_IFDIR => Some(FileType::Directory),
            S_IFREG => Some(FileType::Regular),
            S_IFLNK => Some(FileType::Symlink),
            _ => None,
        }
    }

    /// JFS's inode sanity check: valid type bits and plausible size (the
    /// "number of entries less than the maximum possible" family of
    /// checks, §5.3).
    fn sanity_check(&self) -> bool {
        self.file_type().is_some()
            && self.size <= ((NDIRECT + PTRS_PER_INTERNAL) * BLOCK_SIZE) as u64
    }

    fn encode_into(&self, b: &mut Block, off: usize) {
        b.put_u32(off, self.mode);
        b.put_u32(off + 4, self.uid);
        b.put_u32(off + 8, self.gid);
        b.put_u32(off + 12, self.nlink);
        b.put_u64(off + 16, self.size);
        b.put_u64(off + 24, self.mtime);
        for (i, p) in self.direct.iter().enumerate() {
            b.put_u32(off + 32 + i * 4, *p);
        }
        b.put_u32(off + 64, self.internal);
    }

    fn decode_from(b: &Block, off: usize) -> JInode {
        let mut direct = [0u32; NDIRECT];
        for (i, p) in direct.iter_mut().enumerate() {
            *p = b.get_u32(off + 32 + i * 4);
        }
        JInode {
            mode: b.get_u32(off),
            uid: b.get_u32(off + 4),
            gid: b.get_u32(off + 8),
            nlink: b.get_u32(off + 12),
            size: b.get_u64(off + 16),
            mtime: b.get_u64(off + 24),
            direct,
            internal: b.get_u32(off + 64),
        }
    }
}

/// Directory block: `{count: u16}` header then packed entries
/// `{ino: u32, ftype: u8, name_len: u8, name}`. The count is
/// sanity-checked against [`DIR_MAX_ENTRIES`] (§5.3).
fn encode_dir_block(entries: &[(u32, u8, String)]) -> Block {
    let mut b = Block::zeroed();
    b.put_u16(0, entries.len() as u16);
    let mut off = 4;
    for (ino, ftype, name) in entries {
        b.put_u32(off, *ino);
        b[off + 4] = *ftype;
        b[off + 5] = name.len() as u8;
        b.put_bytes(off + 6, name.as_bytes());
        off += 6 + name.len();
    }
    b
}

fn decode_dir_block(b: &Block) -> Option<Vec<(u32, u8, String)>> {
    let count = b.get_u16(0) as usize;
    if count > DIR_MAX_ENTRIES {
        return None; // sanity: entry count exceeds the maximum possible
    }
    let mut out = Vec::with_capacity(count);
    let mut off = 4;
    for _ in 0..count {
        if off + 6 > BLOCK_SIZE {
            return None;
        }
        let ino = b.get_u32(off);
        let ftype = b[off + 4];
        let n = b[off + 5] as usize;
        if off + 6 + n > BLOCK_SIZE {
            return None;
        }
        let name = String::from_utf8_lossy(b.get_bytes(off + 6, n)).into_owned();
        out.push((ino, ftype, name));
        off += 6 + n;
    }
    Some(out)
}

/// Internal (extent) block: `{count: u32}` then block pointers; count
/// bounds-checked (§5.3).
fn encode_internal(ptrs: &[u32]) -> Block {
    let mut b = Block::zeroed();
    b.put_u32(0, ptrs.len() as u32);
    for (i, p) in ptrs.iter().enumerate() {
        b.put_u32(8 + i * 4, *p);
    }
    b
}

fn decode_internal(b: &Block) -> Option<Vec<u32>> {
    let count = b.get_u32(0) as usize;
    if count > PTRS_PER_INTERNAL {
        return None;
    }
    Some((0..count).map(|i| b.get_u32(8 + i * 4)).collect())
}

fn ftype_code(t: FileType) -> u8 {
    match t {
        FileType::Regular => 1,
        FileType::Directory => 2,
        FileType::Symlink => 7,
    }
}

fn ftype_from(c: u8) -> FileType {
    match c {
        2 => FileType::Directory,
        7 => FileType::Symlink,
        _ => FileType::Regular,
    }
}

/// The JFS model over a block device.
pub struct JfsFs<D: BlockDevice + RawAccess> {
    dev: D,
    env: FsEnv,
    opts: JfsOptions,
    layout: JfsLayout,
    sb: JfsSuper,
    /// Dirty metadata blocks (full images, for checkpoint), in dirty order.
    dirty_order: Vec<u64>,
    dirty: HashMap<u64, (Block, JfsBlockType)>,
    /// Journal records for the running transaction.
    records: Vec<LogRecord>,
    cache: HashMap<u64, Block>,
    jseq: u64,
    log_head: u64,
    journal_dirty_on_disk: bool,
}

impl<D: BlockDevice + RawAccess> JfsFs<D> {
    // ==================================================================
    // mkfs / mount
    // ==================================================================

    /// Format a device.
    pub fn mkfs(dev: &mut D, params: JfsParams) -> VfsResult<()> {
        let layout = JfsLayout::compute(params);
        let eio = VfsError::from;
        let root_dir_block = layout.alloc_start;

        // Maps: reserve everything up to and including the root dir block.
        let mut bmaps: Vec<Block> = (0..layout.bmap_len).map(|_| Block::zeroed()).collect();
        for b in 0..=root_dir_block {
            let bits = BLOCK_SIZE as u64 * 8;
            bmaps[(b / bits) as usize][(b % bits / 8) as usize] |= 1 << (b % 8);
        }
        let mut imaps: Vec<Block> = (0..layout.imap_len).map(|_| Block::zeroed()).collect();
        imaps[0][0] |= 0b11; // inodes 1 (reserved) and 2 (root)

        // Root inode.
        let mut root = JInode::new(FileType::Directory, 0o755);
        root.size = BLOCK_SIZE as u64;
        root.direct[0] = root_dir_block as u32;
        let mut itable0 = Block::zeroed();
        let (_, off) = layout.inode_location(ROOT_INO);
        root.encode_into(&mut itable0, off);

        let root_entries = vec![
            (
                ROOT_INO as u32,
                ftype_code(FileType::Directory),
                ".".to_string(),
            ),
            (
                ROOT_INO as u32,
                ftype_code(FileType::Directory),
                "..".to_string(),
            ),
        ];

        let free_blocks = params.total_blocks - root_dir_block - 1;
        let free_inodes = layout.total_inodes() - 2;
        let sb = JfsSuper {
            total_blocks: params.total_blocks,
            journal_blocks: params.journal_blocks,
            itable_blocks: params.itable_blocks,
            free_blocks,
            free_inodes,
            dirty: false,
        };
        let aggr = AggregateInodes {
            bmap_desc: layout.bmap_desc,
            imap_control: layout.imap_control,
            itable_start: layout.itable_start,
        };

        let w = |dev: &mut D, addr: u64, b: &Block, ty: JfsBlockType| {
            dev.write_tagged(BlockAddr(addr), b, ty.tag()).map_err(eio)
        };
        w(dev, 0, &sb.encode(), JfsBlockType::Super)?;
        w(dev, layout.alt_super, &sb.encode(), JfsBlockType::Super)?;
        w(
            dev,
            layout.journal_super,
            &JournalSuper {
                sequence: 1,
                dirty: false,
            }
            .encode(),
            JfsBlockType::JournalSuper,
        )?;
        w(
            dev,
            layout.aggr_inode,
            &aggr.encode(),
            JfsBlockType::AggrInode,
        )?;
        w(
            dev,
            layout.aggr_inode_secondary,
            &aggr.encode(),
            JfsBlockType::AggrInode,
        )?;
        w(
            dev,
            layout.bmap_desc,
            &BmapDesc { free_blocks }.encode(),
            JfsBlockType::BmapDesc,
        )?;
        for (i, bm) in bmaps.iter().enumerate() {
            w(dev, layout.bmap_start + i as u64, bm, JfsBlockType::Bmap)?;
        }
        // Imap control mirrors summary info ("summary info about imaps").
        let mut imc = Block::zeroed();
        imc.put_u64(0, free_inodes);
        imc.put_u64(8, free_inodes);
        w(dev, layout.imap_control, &imc, JfsBlockType::ImapControl)?;
        for (i, im) in imaps.iter().enumerate() {
            w(dev, layout.imap_start + i as u64, im, JfsBlockType::Imap)?;
        }
        for i in 0..params.itable_blocks {
            let block = if i == 0 {
                itable0.clone()
            } else {
                Block::zeroed()
            };
            w(dev, layout.itable_start + i, &block, JfsBlockType::Inode)?;
        }
        w(
            dev,
            root_dir_block,
            &encode_dir_block(&root_entries),
            JfsBlockType::Dir,
        )?;
        dev.barrier().map_err(eio)?;
        Ok(())
    }

    /// Mount, replaying the journal if dirty.
    ///
    /// Superblock policy (§5.3): a primary read *error* falls back to the
    /// alternate copy (`RRedundancy`); a *corrupt* primary fails the mount
    /// without trying the alternate (`PAPER-BUG` inconsistency).
    pub fn mount(mut dev: D, env: FsEnv, opts: JfsOptions) -> VfsResult<Self> {
        let sb_block = match dev.read_tagged(BlockAddr(0), JfsBlockType::Super.tag()) {
            Ok(b) => b,
            Err(_) => {
                env.klog
                    .warn("jfs", "primary superblock unreadable; trying alternate");
                match dev.read_tagged(BlockAddr(1), JfsBlockType::Super.tag()) {
                    Ok(b) => b,
                    Err(_) => {
                        env.klog.error("jfs", "alternate superblock unreadable too");
                        return Err(Errno::EIO.into());
                    }
                }
            }
        };
        let sb = match JfsSuper::decode(&sb_block) {
            Some(sb) => sb,
            None => {
                // PAPER-BUG: "it does not attempt to read the alternate if
                // it deems the primary corrupted."
                env.klog
                    .error("jfs", "superblock magic/version invalid; mount failed");
                return Err(Errno::EUCLEAN.into());
            }
        };
        let layout = JfsLayout::compute(JfsParams {
            total_blocks: sb.total_blocks,
            journal_blocks: sb.journal_blocks,
            itable_blocks: sb.itable_blocks,
        });

        let mut fs = JfsFs {
            dev,
            env,
            opts,
            layout,
            sb,
            dirty_order: Vec::new(),
            dirty: HashMap::new(),
            records: Vec::new(),
            cache: HashMap::new(),
            jseq: 1,
            log_head: layout.journal_start,
            journal_dirty_on_disk: false,
        };

        // Aggregate inode table — PAPER-BUG: a read error does not fall
        // back to the secondary copy.
        let aggr_block = fs
            .generic_read(fs.layout.aggr_inode, JfsBlockType::AggrInode)
            .inspect_err(|_e| {
                fs.env.klog.error(
                    "jfs",
                    "aggregate inode table unreadable; secondary copy NOT consulted",
                );
            })?;
        if AggregateInodes::decode(&aggr_block).is_none() {
            fs.env
                .klog
                .error("jfs", "aggregate inode table corrupt; mount failed");
            return Err(Errno::EUCLEAN.into());
        }

        // Journal superblock.
        let js_block = fs.generic_read(fs.layout.journal_super, JfsBlockType::JournalSuper)?;
        let js = match JournalSuper::decode(&js_block) {
            Some(js) => js,
            None => {
                fs.env
                    .klog
                    .error("jfs", "journal superblock invalid; mount failed");
                return Err(Errno::EUCLEAN.into());
            }
        };
        fs.jseq = js.sequence;
        if js.dirty || fs.sb.dirty {
            fs.replay_journal()?;
        }
        fs.sb.dirty = true;
        let enc = fs.sb.encode();
        // Write errors ignored, per policy (except the journal superblock).
        let _ = fs
            .dev
            .write_tagged(BlockAddr(0), &enc, JfsBlockType::Super.tag());
        fs.cache.insert(0, enc);
        Ok(fs)
    }

    /// Format + mount.
    pub fn format_and_mount(
        mut dev: D,
        env: FsEnv,
        params: JfsParams,
        opts: JfsOptions,
    ) -> VfsResult<Self> {
        Self::mkfs(&mut dev, params)?;
        Self::mount(dev, env, opts)
    }

    /// Consume, returning the device.
    pub fn into_device(self) -> D {
        self.dev
    }

    /// The layout.
    pub fn layout(&self) -> &JfsLayout {
        &self.layout
    }

    // ==================================================================
    // Generic read helper (the "generic file system code" of §5.3).
    // ==================================================================

    /// Read with the generic-code policy: check the error code, retry once
    /// on failure, log through the *generic* subsystem.
    fn generic_read(&mut self, addr: u64, ty: JfsBlockType) -> VfsResult<Block> {
        if let Some((b, _)) = self.dirty.get(&addr) {
            return Ok(b.clone());
        }
        if let Some(b) = self.cache.get(&addr) {
            return Ok(b.clone());
        }
        match self.dev.read_tagged(BlockAddr(addr), ty.tag()) {
            Ok(b) => {
                self.cache.insert(addr, b.clone());
                Ok(b)
            }
            Err(_) => {
                self.env.klog.error(
                    "generic",
                    format!("I/O error reading block {addr}; retrying once"),
                );
                match self.dev.read_tagged(BlockAddr(addr), ty.tag()) {
                    Ok(b) => {
                        self.cache.insert(addr, b.clone());
                        Ok(b)
                    }
                    Err(_) => Err(Errno::EIO.into()),
                }
            }
        }
    }

    /// Read a map block (`bmap`/`imap`): a failure crashes the system
    /// (§5.3: "Explicit crashes (RStop) are used when a block allocation
    /// map or inode allocation map read fails").
    fn map_read(&mut self, addr: u64, ty: JfsBlockType) -> VfsResult<Block> {
        match self.generic_read(addr, ty) {
            Ok(b) => Ok(b),
            Err(_) => Err(self.env.panic(
                "jfs",
                format!("fatal: allocation map block {addr} unreadable"),
            )),
        }
    }

    // ==================================================================
    // Journaling (record-level).
    // ==================================================================

    /// Stage a full-block image for checkpoint and append journal records
    /// covering `ranges` of it.
    fn stage(&mut self, addr: u64, block: Block, ty: JfsBlockType, ranges: &[(usize, usize)]) {
        for (off, len) in ranges {
            // Split ranges so each record fits a log block.
            let mut o = *off;
            let end = off + len;
            while o < end {
                let take = (end - o).min(2048);
                self.records.push(LogRecord {
                    addr,
                    offset: o as u16,
                    data: block.get_bytes(o, take).to_vec(),
                });
                o += take;
            }
        }
        if !self.dirty.contains_key(&addr) {
            self.dirty_order.push(addr);
        }
        self.cache.insert(addr, block.clone());
        self.dirty.insert(addr, (block, ty));
    }

    fn maybe_commit(&mut self) -> VfsResult<()> {
        if self.records.len() >= self.opts.commit_threshold {
            self.commit()
        } else {
            Ok(())
        }
    }

    /// Commit: journal-superblock (write error ⇒ crash), record blocks
    /// (write errors ignored — `PAPER-BUG` family), checkpoint (write
    /// errors ignored), journal-superblock clean (write error ⇒ crash).
    pub fn commit(&mut self) -> VfsResult<()> {
        if self.records.is_empty() && self.dirty.is_empty() {
            return Ok(());
        }
        let seq = self.jseq;
        let blocks = pack_records(seq, &self.records);
        if self.log_head + blocks.len() as u64 > self.layout.journal_start + self.layout.journal_len
        {
            self.log_head = self.layout.journal_start;
        }
        // Journal superblock: the one write JFS refuses to lose. The
        // recorded sequence is the first unflushed transaction, so replay
        // can stop at stale log tails.
        if !self.journal_dirty_on_disk {
            let js = JournalSuper {
                sequence: seq,
                dirty: true,
            };
            if self
                .dev
                .write_tagged(
                    BlockAddr(self.layout.journal_super),
                    &js.encode(),
                    JfsBlockType::JournalSuper.tag(),
                )
                .is_err()
            {
                return Err(self
                    .env
                    .panic("jfs", "fatal: journal superblock write failed"));
            }
            self.journal_dirty_on_disk = true;
        }
        for rb in &blocks {
            // Other write errors ignored entirely (RZero).
            let _ = self.dev.write_tagged(
                BlockAddr(self.log_head),
                &rb.encode(),
                JfsBlockType::JournalData.tag(),
            );
            self.log_head += 1;
        }
        let _ = self.dev.barrier();
        self.jseq = seq + 1;
        self.records.clear();

        if self.opts.crash_mode {
            self.dirty.clear();
            self.dirty_order.clear();
            return Ok(());
        }

        // Checkpoint; write errors ignored (DZero / RZero).
        for addr in std::mem::take(&mut self.dirty_order) {
            if let Some((b, ty)) = self.dirty.remove(&addr) {
                let _ = self.dev.write_tagged(BlockAddr(addr), &b, ty.tag());
            }
        }
        self.dirty.clear();

        let js_clean = JournalSuper {
            sequence: self.jseq,
            dirty: false,
        };
        if self
            .dev
            .write_tagged(
                BlockAddr(self.layout.journal_super),
                &js_clean.encode(),
                JfsBlockType::JournalSuper.tag(),
            )
            .is_err()
        {
            return Err(self
                .env
                .panic("jfs", "fatal: journal superblock write failed"));
        }
        self.journal_dirty_on_disk = false;
        self.log_head = self.layout.journal_start;
        Ok(())
    }

    /// Replay: apply committed record transactions; a sanity-check failure
    /// in the log aborts the replay (§5.3: "during journal replay, a
    /// sanity-check failure causes the replay to abort (RStop)").
    fn replay_journal(&mut self) -> VfsResult<()> {
        self.env.klog.info("jfs", "journal replay started");
        let start = self.layout.journal_start;
        let end = start + self.layout.journal_len;
        let mut pos = start;
        let mut pending: Vec<LogRecord> = Vec::new();
        let mut committed: Vec<LogRecord> = Vec::new();
        let mut applied = 0;
        while pos < end {
            let block = match self
                .dev
                .read_tagged(BlockAddr(pos), JfsBlockType::JournalData.tag())
            {
                Ok(b) => b,
                Err(_) => {
                    self.env.klog.error(
                        "jfs",
                        format!("journal block {pos} unreadable; replay aborted"),
                    );
                    self.env.remount_readonly("jfs", "journal replay aborted");
                    return Ok(());
                }
            };
            if block.is_zeroed() {
                break; // end of log
            }
            let Some(rb) = RecordBlock::decode(&block) else {
                self.env.klog.error(
                    "jfs",
                    format!("journal block {pos} failed sanity check; replay aborted"),
                );
                self.env.remount_readonly("jfs", "journal replay aborted");
                return Ok(());
            };
            if rb.sequence < self.jseq {
                break; // stale tail from a checkpointed transaction
            }
            pending.extend(rb.records);
            if rb.commit {
                committed.append(&mut pending);
                applied += 1;
            }
            pos += 1;
        }
        // Apply the committed records in log order, honoring NOREDOPAGE: a
        // no-redo marker for a block suppresses every record for it logged
        // earlier (the block was freed there; redoing stale bytes would
        // corrupt whatever reallocated it), while records logged after the
        // marker still apply.
        let mut last_noredo: BTreeMap<u64, usize> = BTreeMap::new();
        for (p, r) in committed.iter().enumerate() {
            if r.is_noredo() {
                last_noredo.insert(r.addr, p);
            }
        }
        for (p, r) in committed.iter().enumerate() {
            if r.is_noredo() || last_noredo.get(&r.addr).is_some_and(|&q| q > p) {
                continue;
            }
            let mut home = match self.dev.read(BlockAddr(r.addr)) {
                Ok(b) => b,
                Err(_) => {
                    self.env.klog.error(
                        "jfs",
                        format!("home block {} unreadable during replay", r.addr),
                    );
                    self.env.remount_readonly("jfs", "journal replay aborted");
                    return Ok(());
                }
            };
            home.put_bytes(r.offset as usize, &r.data);
            let _ = self.dev.write(BlockAddr(r.addr), &home);
        }
        let js = JournalSuper {
            sequence: self.jseq + applied,
            dirty: false,
        };
        self.jseq = js.sequence;
        let _ = self.dev.write_tagged(
            BlockAddr(self.layout.journal_super),
            &js.encode(),
            JfsBlockType::JournalSuper.tag(),
        );
        self.env.klog.info(
            "jfs",
            format!("journal replay complete: {applied} transaction(s)"),
        );
        Ok(())
    }

    // ==================================================================
    // Allocation.
    // ==================================================================

    fn alloc_block(&mut self) -> VfsResult<u64> {
        for i in 0..self.layout.bmap_len {
            let bm_addr = self.layout.bmap_start + i;
            let mut bm = self.map_read(bm_addr, JfsBlockType::Bmap)?;
            let bits = BLOCK_SIZE as u64 * 8;
            let limit = bits.min(self.sb.total_blocks - i * bits);
            for bit in 0..limit {
                let byte = (bit / 8) as usize;
                if bm[byte] & (1 << (bit % 8)) == 0 {
                    bm[byte] |= 1 << (bit % 8);
                    self.stage(bm_addr, bm, JfsBlockType::Bmap, &[(byte, 1)]);
                    self.sb.free_blocks -= 1;
                    self.update_super_and_desc();
                    return Ok(i * bits + bit);
                }
            }
        }
        Err(Errno::ENOSPC.into())
    }

    fn free_block(&mut self, addr: u64) -> VfsResult<()> {
        let (bm_addr, bit) = self.layout.bmap_location(addr);
        let mut bm = self.map_read(bm_addr.0, JfsBlockType::Bmap)?;
        let byte = (bit / 8) as usize;
        bm[byte] &= !(1 << (bit % 8));
        self.stage(bm_addr.0, bm, JfsBlockType::Bmap, &[(byte, 1)]);
        self.sb.free_blocks += 1;
        self.update_super_and_desc();
        self.cache.remove(&addr);
        // Forget the freed page, as real JFS does: drop its staged
        // checkpoint image and its pending byte-range records, and log a
        // NOREDOPAGE marker so replay of already-committed transactions
        // cannot redo stale bytes onto the block once it is reallocated
        // (found by the iron-crash enumerator: a directory block freed and
        // reused as file data within one transaction was clobbered at
        // checkpoint even without a crash).
        self.dirty.remove(&addr);
        self.records.retain(|r| r.addr != addr);
        self.records.push(LogRecord::noredo(addr));
        Ok(())
    }

    fn alloc_inode(&mut self) -> VfsResult<u64> {
        for i in 0..self.layout.imap_len {
            let im_addr = self.layout.imap_start + i;
            let mut im = self.map_read(im_addr, JfsBlockType::Imap)?;
            let bits = BLOCK_SIZE as u64 * 8;
            let limit = bits.min(self.layout.total_inodes() - i * bits);
            for bit in 0..limit {
                let byte = (bit / 8) as usize;
                if im[byte] & (1 << (bit % 8)) == 0 {
                    im[byte] |= 1 << (bit % 8);
                    self.stage(im_addr, im, JfsBlockType::Imap, &[(byte, 1)]);
                    self.sb.free_inodes -= 1;
                    self.update_super_and_desc();
                    return Ok(i * bits + bit + 1);
                }
            }
        }
        Err(Errno::ENOSPC.into())
    }

    fn free_inode(&mut self, ino: u64) -> VfsResult<()> {
        let (im_addr, bit) = self.layout.imap_location(ino);
        let mut im = self.map_read(im_addr.0, JfsBlockType::Imap)?;
        let byte = (bit / 8) as usize;
        im[byte] &= !(1 << (bit % 8));
        self.stage(im_addr.0, im, JfsBlockType::Imap, &[(byte, 1)]);
        self.sb.free_inodes += 1;
        self.update_super_and_desc();
        self.put_inode(ino, &JInode::empty())
    }

    fn update_super_and_desc(&mut self) {
        let enc = self.sb.encode();
        self.stage(0, enc, JfsBlockType::Super, &[(0, 64)]);
        let desc = BmapDesc {
            free_blocks: self.sb.free_blocks,
        }
        .encode();
        self.stage(
            self.layout.bmap_desc,
            desc,
            JfsBlockType::BmapDesc,
            &[(0, 16)],
        );
    }

    // ==================================================================
    // Inodes and file bodies.
    // ==================================================================

    fn get_inode_raw(&mut self, ino: u64) -> VfsResult<JInode> {
        if ino == 0 || ino > self.layout.total_inodes() {
            return Err(Errno::ENOENT.into());
        }
        let (blk, off) = self.layout.inode_location(ino);
        let b = self.generic_read(blk.0, JfsBlockType::Inode)?;
        Ok(JInode::decode_from(&b, off))
    }

    fn get_inode(&mut self, ino: u64) -> VfsResult<JInode> {
        let di = self.get_inode_raw(ino)?;
        if di.is_free() {
            return Err(Errno::ENOENT.into());
        }
        if !di.sanity_check() {
            self.env.klog.error(
                "jfs",
                format!("inode {ino} failed sanity check; remounting read-only"),
            );
            self.env.remount_readonly("jfs", "corrupt inode");
            return Err(Errno::EUCLEAN.into());
        }
        Ok(di)
    }

    fn put_inode(&mut self, ino: u64, di: &JInode) -> VfsResult<()> {
        let (blk, off) = self.layout.inode_location(ino);
        let mut b = self.generic_read(blk.0, JfsBlockType::Inode)?;
        di.encode_into(&mut b, off);
        self.stage(blk.0, b, JfsBlockType::Inode, &[(off, INODE_SIZE)]);
        Ok(())
    }

    /// File block `idx` → device address (0 = hole). The internal extent
    /// block's sanity check failing returns a **blank page** (`RGuess`,
    /// PAPER-BUG) — modeled by treating the whole extent list as empty.
    fn file_block(&mut self, di: &JInode, idx: u64) -> VfsResult<u64> {
        if idx < NDIRECT as u64 {
            return Ok(di.direct[idx as usize] as u64);
        }
        let idx = idx - NDIRECT as u64;
        if idx >= PTRS_PER_INTERNAL as u64 {
            return Err(Errno::EFBIG.into());
        }
        if di.internal == 0 {
            return Ok(0);
        }
        let b = self.generic_read(di.internal as u64, JfsBlockType::Internal)?;
        match decode_internal(&b) {
            Some(ptrs) => Ok(ptrs.get(idx as usize).copied().unwrap_or(0) as u64),
            None => {
                // PAPER-BUG: "a blank page is sometimes returned to the
                // user … when a read to an internal tree block does not
                // pass its sanity check." No error, no log.
                Ok(0)
            }
        }
    }

    fn set_file_block(&mut self, di: &mut JInode, idx: u64, addr: u64) -> VfsResult<()> {
        if idx < NDIRECT as u64 {
            di.direct[idx as usize] = addr as u32;
            return Ok(());
        }
        let idx = (idx - NDIRECT as u64) as usize;
        if idx >= PTRS_PER_INTERNAL {
            return Err(Errno::EFBIG.into());
        }
        if di.internal == 0 {
            let nb = self.alloc_block()?;
            di.internal = nb as u32;
            self.stage(nb, encode_internal(&[]), JfsBlockType::Internal, &[(0, 8)]);
        }
        let iaddr = di.internal as u64;
        let b = self.generic_read(iaddr, JfsBlockType::Internal)?;
        let mut ptrs = decode_internal(&b).unwrap_or_default();
        if ptrs.len() <= idx {
            ptrs.resize(idx + 1, 0);
        }
        ptrs[idx] = addr as u32;
        self.stage(
            iaddr,
            encode_internal(&ptrs),
            JfsBlockType::Internal,
            &[(0, 8 + ptrs.len() * 4)],
        );
        Ok(())
    }

    fn read_data(&mut self, addr: u64) -> VfsResult<Block> {
        self.generic_read(addr, JfsBlockType::Data)
    }

    /// Data writes: error code recorded nowhere — ignored (DZero), like
    /// ext3 (§5.3: "like ext3, most write errors are ignored").
    fn write_data(&mut self, addr: u64, block: &Block) {
        let _ = self
            .dev
            .write_tagged(BlockAddr(addr), block, JfsBlockType::Data.tag());
        self.cache.insert(addr, block.clone());
    }

    // ==================================================================
    // Directories.
    // ==================================================================

    /// Read a directory's entries. A failed sanity check propagates and
    /// remounts read-only (§5.3's general sanity reaction).
    fn dir_entries(&mut self, di: &JInode) -> VfsResult<Vec<(u32, u8, String)>> {
        let nblocks = di.size.div_ceil(BLOCK_SIZE as u64);
        let mut out = Vec::new();
        for idx in 0..nblocks {
            let addr = self.file_block(di, idx)?;
            if addr == 0 {
                continue;
            }
            let b = self.generic_read(addr, JfsBlockType::Dir)?;
            match decode_dir_block(&b) {
                Some(entries) => out.extend(entries),
                None => {
                    self.env
                        .klog
                        .error("jfs", format!("directory block {addr} failed sanity check"));
                    self.env.remount_readonly("jfs", "corrupt directory");
                    return Err(Errno::EUCLEAN.into());
                }
            }
        }
        Ok(out)
    }

    fn write_dir(
        &mut self,
        ino: u64,
        di: &mut JInode,
        entries: &[(u32, u8, String)],
    ) -> VfsResult<()> {
        // Pack into blocks of at most DIR_MAX_ENTRIES and capacity bytes.
        let mut blocks: Vec<Vec<(u32, u8, String)>> = vec![Vec::new()];
        let mut used = 4usize;
        for e in entries {
            let sz = 6 + e.2.len();
            let last = blocks.last_mut().expect("nonempty");
            if used + sz > BLOCK_SIZE || last.len() >= DIR_MAX_ENTRIES {
                blocks.push(Vec::new());
                used = 4;
            }
            blocks.last_mut().expect("nonempty").push(e.clone());
            used += sz;
        }
        let old_nblocks = di.size.div_ceil(BLOCK_SIZE as u64);
        for (idx, chunk) in blocks.iter().enumerate() {
            let mut addr = self.file_block(di, idx as u64)?;
            if addr == 0 {
                addr = self.alloc_block()?;
                self.set_file_block(di, idx as u64, addr)?;
            }
            self.stage(
                addr,
                encode_dir_block(chunk),
                JfsBlockType::Dir,
                &[(
                    0,
                    BLOCK_SIZE.min(64 + chunk.iter().map(|e| 6 + e.2.len()).sum::<usize>()),
                )],
            );
        }
        for idx in blocks.len() as u64..old_nblocks {
            let addr = self.file_block(di, idx)?;
            if addr != 0 {
                self.free_block(addr)?;
                self.set_file_block(di, idx, 0)?;
            }
        }
        di.size = (blocks.len() * BLOCK_SIZE) as u64;
        self.put_inode(ino, di)
    }

    fn dir_find(&mut self, di: &JInode, name: &str) -> VfsResult<Option<(u32, u8)>> {
        Ok(self
            .dir_entries(di)?
            .into_iter()
            .find(|(_, _, n)| n == name)
            .map(|(ino, ft, _)| (ino, ft)))
    }

    fn free_body(&mut self, di: &mut JInode) -> VfsResult<()> {
        let nblocks = di.size.div_ceil(BLOCK_SIZE as u64);
        for idx in 0..nblocks {
            let addr = self.file_block(di, idx)?;
            if addr != 0 {
                self.free_block(addr)?;
            }
        }
        if di.internal != 0 {
            self.free_block(di.internal as u64)?;
            di.internal = 0;
        }
        di.direct = [0; NDIRECT];
        di.size = 0;
        Ok(())
    }
}

impl<D: BlockDevice + RawAccess> SpecificFs for JfsFs<D> {
    fn env(&self) -> &FsEnv {
        &self.env
    }

    fn root_ino(&self) -> u64 {
        ROOT_INO
    }

    fn lookup(&mut self, dir: u64, name: &str) -> VfsResult<u64> {
        self.env.check_alive()?;
        let di = self.get_inode(dir)?;
        if di.file_type() != Some(FileType::Directory) {
            return Err(Errno::ENOTDIR.into());
        }
        match self.dir_find(&di, name)? {
            Some((ino, _)) => Ok(ino as u64),
            None => Err(Errno::ENOENT.into()),
        }
    }

    fn getattr(&mut self, ino: u64) -> VfsResult<InodeAttr> {
        self.env.check_alive()?;
        let di = self.get_inode(ino)?;
        Ok(InodeAttr {
            ino,
            ftype: di.file_type().unwrap_or(FileType::Regular),
            size: di.size,
            nlink: di.nlink,
            mode: di.mode & 0o7777,
            uid: di.uid,
            gid: di.gid,
            mtime: di.mtime,
        })
    }

    fn chmod(&mut self, ino: u64, mode: u32) -> VfsResult<()> {
        self.env.check_writable()?;
        let mut di = self.get_inode(ino)?;
        di.mode = (di.mode & 0xF000) | (mode & 0o7777);
        self.put_inode(ino, &di)?;
        self.maybe_commit()
    }

    fn chown(&mut self, ino: u64, uid: u32, gid: u32) -> VfsResult<()> {
        self.env.check_writable()?;
        let mut di = self.get_inode(ino)?;
        di.uid = uid;
        di.gid = gid;
        self.put_inode(ino, &di)?;
        self.maybe_commit()
    }

    fn utimes(&mut self, ino: u64, mtime: u64) -> VfsResult<()> {
        self.env.check_writable()?;
        let mut di = self.get_inode(ino)?;
        di.mtime = mtime;
        self.put_inode(ino, &di)?;
        self.maybe_commit()
    }

    fn create(&mut self, dir: u64, name: &str, mode: u32) -> VfsResult<u64> {
        self.env.check_writable()?;
        let mut dd = self.get_inode(dir)?;
        if dd.file_type() != Some(FileType::Directory) {
            return Err(Errno::ENOTDIR.into());
        }
        if self.dir_find(&dd, name)?.is_some() {
            return Err(Errno::EEXIST.into());
        }
        let ino = self.alloc_inode()?;
        self.put_inode(ino, &JInode::new(FileType::Regular, mode))?;
        let mut entries = self.dir_entries(&dd)?;
        entries.push((ino as u32, ftype_code(FileType::Regular), name.to_string()));
        self.write_dir(dir, &mut dd, &entries)?;
        self.maybe_commit()?;
        Ok(ino)
    }

    fn mkdir(&mut self, dir: u64, name: &str, mode: u32) -> VfsResult<u64> {
        self.env.check_writable()?;
        let mut dd = self.get_inode(dir)?;
        if self.dir_find(&dd, name)?.is_some() {
            return Err(Errno::EEXIST.into());
        }
        let ino = self.alloc_inode()?;
        let mut child = JInode::new(FileType::Directory, mode);
        let child_entries = vec![
            (ino as u32, ftype_code(FileType::Directory), ".".to_string()),
            (
                dir as u32,
                ftype_code(FileType::Directory),
                "..".to_string(),
            ),
        ];
        self.put_inode(ino, &child)?;
        let mut child = {
            self.write_dir(ino, &mut child, &child_entries)?;
            child
        };
        let _ = &mut child;
        let mut entries = self.dir_entries(&dd)?;
        entries.push((
            ino as u32,
            ftype_code(FileType::Directory),
            name.to_string(),
        ));
        dd.nlink += 1;
        self.write_dir(dir, &mut dd, &entries)?;
        self.maybe_commit()?;
        Ok(ino)
    }

    fn unlink(&mut self, dir: u64, name: &str) -> VfsResult<()> {
        self.env.check_writable()?;
        let mut dd = self.get_inode(dir)?;
        let Some((ino32, ft)) = self.dir_find(&dd, name)? else {
            return Err(Errno::ENOENT.into());
        };
        let ino = ino32 as u64;
        if ftype_from(ft) == FileType::Directory {
            return Err(Errno::EISDIR.into());
        }
        // PAPER-BUG: "although generic code detects read errors and
        // retries, a bug in the JFS implementation leads to ignoring the
        // error and corrupting the file system" — a failed inode read here
        // is ignored and unlink proceeds with a blank inode: the entry
        // disappears, but the file's blocks are never freed and the inode
        // slot is clobbered.
        let mut di = match self.get_inode_raw(ino) {
            Ok(di) => di,
            Err(_) => JInode::empty(),
        };
        let mut entries = self.dir_entries(&dd)?;
        entries.retain(|(_, _, n)| n != name);
        self.write_dir(dir, &mut dd, &entries)?;
        di.nlink = di.nlink.saturating_sub(1);
        if di.nlink == 0 {
            if !di.is_free() {
                self.free_body(&mut di)?;
            }
            self.free_inode(ino)?;
        } else {
            self.put_inode(ino, &di)?;
        }
        self.maybe_commit()
    }

    fn rmdir(&mut self, dir: u64, name: &str) -> VfsResult<()> {
        self.env.check_writable()?;
        let mut dd = self.get_inode(dir)?;
        let Some((ino32, ft)) = self.dir_find(&dd, name)? else {
            return Err(Errno::ENOENT.into());
        };
        if ftype_from(ft) != FileType::Directory {
            return Err(Errno::ENOTDIR.into());
        }
        let ino = ino32 as u64;
        let mut di = self.get_inode(ino)?;
        let children = self.dir_entries(&di)?;
        if children.iter().any(|(_, _, n)| n != "." && n != "..") {
            return Err(Errno::ENOTEMPTY.into());
        }
        let mut entries = self.dir_entries(&dd)?;
        entries.retain(|(_, _, n)| n != name);
        dd.nlink = dd.nlink.saturating_sub(1);
        self.write_dir(dir, &mut dd, &entries)?;
        self.free_body(&mut di)?;
        self.free_inode(ino)?;
        self.maybe_commit()
    }

    fn link(&mut self, ino: u64, dir: u64, name: &str) -> VfsResult<()> {
        self.env.check_writable()?;
        let mut dd = self.get_inode(dir)?;
        if self.dir_find(&dd, name)?.is_some() {
            return Err(Errno::EEXIST.into());
        }
        let mut di = self.get_inode(ino)?;
        if di.file_type() == Some(FileType::Directory) {
            return Err(Errno::EISDIR.into());
        }
        di.nlink += 1;
        self.put_inode(ino, &di)?;
        let mut entries = self.dir_entries(&dd)?;
        entries.push((
            ino as u32,
            ftype_code(di.file_type().unwrap_or(FileType::Regular)),
            name.to_string(),
        ));
        self.write_dir(dir, &mut dd, &entries)?;
        self.maybe_commit()
    }

    fn symlink(&mut self, dir: u64, name: &str, target: &str) -> VfsResult<u64> {
        self.env.check_writable()?;
        let mut dd = self.get_inode(dir)?;
        if self.dir_find(&dd, name)?.is_some() {
            return Err(Errno::EEXIST.into());
        }
        if target.len() > BLOCK_SIZE {
            return Err(Errno::ENAMETOOLONG.into());
        }
        let ino = self.alloc_inode()?;
        let mut di = JInode::new(FileType::Symlink, 0o777);
        let baddr = self.alloc_block()?;
        di.direct[0] = baddr as u32;
        di.size = target.len() as u64;
        self.write_data(baddr, &Block::from_bytes(target.as_bytes()));
        self.put_inode(ino, &di)?;
        let mut entries = self.dir_entries(&dd)?;
        entries.push((ino as u32, ftype_code(FileType::Symlink), name.to_string()));
        self.write_dir(dir, &mut dd, &entries)?;
        self.maybe_commit()?;
        Ok(ino)
    }

    fn readlink(&mut self, ino: u64) -> VfsResult<String> {
        self.env.check_alive()?;
        let di = self.get_inode(ino)?;
        if di.file_type() != Some(FileType::Symlink) {
            return Err(Errno::EINVAL.into());
        }
        if di.direct[0] == 0 {
            return Ok(String::new());
        }
        let b = self.read_data(di.direct[0] as u64)?;
        Ok(String::from_utf8_lossy(b.get_bytes(0, di.size as usize)).into_owned())
    }

    fn rename(
        &mut self,
        src_dir: u64,
        src_name: &str,
        dst_dir: u64,
        dst_name: &str,
    ) -> VfsResult<()> {
        self.env.check_writable()?;
        let sd = self.get_inode(src_dir)?;
        let Some((ino32, ft)) = self.dir_find(&sd, src_name)? else {
            return Err(Errno::ENOENT.into());
        };
        let dd = self.get_inode(dst_dir)?;
        if let Some((existing, eft)) = self.dir_find(&dd, dst_name)? {
            if existing == ino32 {
                return Ok(());
            }
            if ftype_from(eft) == FileType::Directory {
                return Err(Errno::EISDIR.into());
            }
            self.unlink(dst_dir, dst_name)?;
        }
        let mut sd = self.get_inode(src_dir)?;
        let mut entries = self.dir_entries(&sd)?;
        entries.retain(|(_, _, n)| n != src_name);
        let moved_is_dir = ftype_from(ft) == FileType::Directory;
        if moved_is_dir && src_dir != dst_dir {
            sd.nlink = sd.nlink.saturating_sub(1);
        }
        self.write_dir(src_dir, &mut sd, &entries)?;
        let mut dd = self.get_inode(dst_dir)?;
        let mut dentries = self.dir_entries(&dd)?;
        dentries.push((ino32, ft, dst_name.to_string()));
        if moved_is_dir && src_dir != dst_dir {
            dd.nlink += 1;
        }
        self.write_dir(dst_dir, &mut dd, &dentries)?;
        if moved_is_dir && src_dir != dst_dir {
            let mut md = self.get_inode(ino32 as u64)?;
            let mut mentries = self.dir_entries(&md)?;
            for e in &mut mentries {
                if e.2 == ".." {
                    e.0 = dst_dir as u32;
                }
            }
            self.write_dir(ino32 as u64, &mut md, &mentries)?;
        }
        self.maybe_commit()
    }

    fn read(&mut self, ino: u64, off: u64, len: usize) -> VfsResult<Vec<u8>> {
        self.env.check_alive()?;
        let di = self.get_inode(ino)?;
        if di.file_type() == Some(FileType::Directory) {
            return Err(Errno::EISDIR.into());
        }
        if off >= di.size {
            return Ok(Vec::new());
        }
        let end = (off + len as u64).min(di.size);
        let bs = BLOCK_SIZE as u64;
        let mut out = Vec::with_capacity((end - off) as usize);
        let mut pos = off;
        while pos < end {
            let idx = pos / bs;
            let within = (pos % bs) as usize;
            let take = ((end - pos) as usize).min(BLOCK_SIZE - within);
            let addr = self.file_block(&di, idx)?;
            if addr == 0 {
                out.extend(std::iter::repeat_n(0u8, take));
            } else {
                let b = self.read_data(addr)?;
                out.extend_from_slice(b.get_bytes(within, take));
            }
            pos += take as u64;
        }
        Ok(out)
    }

    fn write(&mut self, ino: u64, off: u64, data: &[u8]) -> VfsResult<usize> {
        self.env.check_writable()?;
        let mut di = self.get_inode(ino)?;
        if di.file_type() == Some(FileType::Directory) {
            return Err(Errno::EISDIR.into());
        }
        let bs = BLOCK_SIZE as u64;
        let end = off + data.len() as u64;
        let mut pos = off;
        let mut src = 0usize;
        while pos < end {
            let idx = pos / bs;
            let within = (pos % bs) as usize;
            let take = ((end - pos) as usize).min(BLOCK_SIZE - within);
            let mut addr = self.file_block(&di, idx)?;
            let mut block = if addr == 0 || (within == 0 && take == BLOCK_SIZE) {
                Block::zeroed()
            } else {
                self.read_data(addr)?
            };
            if addr == 0 {
                addr = self.alloc_block()?;
                self.set_file_block(&mut di, idx, addr)?;
            }
            block.put_bytes(within, &data[src..src + take]);
            self.write_data(addr, &block);
            pos += take as u64;
            src += take;
        }
        if end > di.size {
            di.size = end;
        }
        self.put_inode(ino, &di)?;
        self.maybe_commit()?;
        Ok(data.len())
    }

    fn truncate(&mut self, ino: u64, size: u64) -> VfsResult<()> {
        self.env.check_writable()?;
        let mut di = self.get_inode(ino)?;
        if di.file_type() == Some(FileType::Directory) {
            return Err(Errno::EISDIR.into());
        }
        if size >= di.size {
            di.size = size;
            self.put_inode(ino, &di)?;
            return self.maybe_commit();
        }
        let bs = BLOCK_SIZE as u64;
        let keep = size.div_ceil(bs);
        let old = di.size.div_ceil(bs);
        for idx in keep..old {
            let addr = self.file_block(&di, idx)?;
            if addr != 0 {
                self.free_block(addr)?;
                self.set_file_block(&mut di, idx, 0)?;
            }
        }
        if !size.is_multiple_of(bs) {
            let idx = size / bs;
            let addr = self.file_block(&di, idx)?;
            if addr != 0 {
                let mut b = self.read_data(addr)?;
                for byte in &mut b[(size % bs) as usize..] {
                    *byte = 0;
                }
                self.write_data(addr, &b);
            }
        }
        di.size = size;
        self.put_inode(ino, &di)?;
        self.maybe_commit()
    }

    fn readdir(&mut self, dir: u64) -> VfsResult<Vec<DirEntry>> {
        self.env.check_alive()?;
        let di = self.get_inode(dir)?;
        if di.file_type() != Some(FileType::Directory) {
            return Err(Errno::ENOTDIR.into());
        }
        Ok(self
            .dir_entries(&di)?
            .into_iter()
            .map(|(ino, ft, name)| DirEntry {
                name,
                ino: ino as u64,
                ftype: ftype_from(ft),
            })
            .collect())
    }

    fn fsync(&mut self, _ino: u64) -> VfsResult<()> {
        self.env.check_alive()?;
        self.commit()?;
        self.dev.flush().map_err(VfsError::from)
    }

    fn sync(&mut self) -> VfsResult<()> {
        self.env.check_alive()?;
        self.commit()?;
        self.dev.flush().map_err(VfsError::from)
    }

    fn statfs(&mut self) -> VfsResult<StatFs> {
        self.env.check_alive()?;
        Ok(StatFs {
            block_size: BLOCK_SIZE as u32,
            blocks: self.sb.total_blocks - self.layout.alloc_start,
            blocks_free: self.sb.free_blocks,
            inodes: self.layout.total_inodes(),
            inodes_free: self.sb.free_inodes,
        })
    }

    fn unmount(&mut self) -> VfsResult<()> {
        self.env.check_alive()?;
        self.commit()?;
        self.sb.dirty = false;
        let enc = self.sb.encode();
        let _ = self
            .dev
            .write_tagged(BlockAddr(0), &enc, JfsBlockType::Super.tag());
        let _ = self.dev.flush();
        self.env.set_state(MountState::Unmounted);
        Ok(())
    }
}

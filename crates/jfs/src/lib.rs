//! # iron-jfs
//!
//! A behavioral model of IBM's JFS (§5.3 of the paper). JFS "uses modern
//! techniques to manage data, block allocation and journaling, with
//! scalable tree structures", and — unlike ext3 and ReiserFS — journals
//! *records* rather than whole blocks.
//!
//! ## Structures (Table 4)
//!
//! inode, directory, block allocation map (`bmap`), inode allocation map
//! (`imap`), internal tree blocks, data, superblock (+ a real alternate
//! copy), journal superblock, journal data (records), aggregate inode
//! table (+ a real secondary copy), bmap descriptor, imap control.
//!
//! ## The measured failure policy (§5.3) — "The kitchen sink"
//!
//! * Metadata read errors are handled by *generic* helper code that
//!   retries exactly once (`RRetry`), then propagates.
//! * Write errors are ignored (`DZero`) — except a journal-superblock
//!   write error, which crashes the system (`RStop`).
//! * A failed read of the **primary superblock** falls back to the
//!   alternate (`RRedundancy`); a *corrupt* primary fails the mount
//!   without ever trying the alternate (the paper's poster-child
//!   inconsistency — `PAPER-BUG`).
//! * A failed read of the **aggregate inode table** does *not* use the
//!   secondary copy (`PAPER-BUG`).
//! * A failed **sanity check on an internal tree block** returns a blank
//!   page to the user (`RGuess`, `PAPER-BUG`).
//! * `bmap`/`imap` read failures crash the system (`RStop`).
//! * Sanity checks: magic + version on the superblocks, entry-count
//!   bounds on internal/directory/inode blocks, an equality check on a
//!   bmap-descriptor field.
//! * During `unlink`, a failed inode read is retried by the generic code,
//!   but the error is then **ignored** and the operation proceeds with a
//!   blank inode, corrupting the file system (`PAPER-BUG`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fs;
pub mod journal;
pub mod layout;

pub use fs::{JfsFs, JfsOptions};
pub use layout::{JfsBlockType, JfsLayout, JfsParams};

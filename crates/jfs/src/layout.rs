//! JFS disk layout, block types, and superblock.

use iron_core::{Block, BlockAddr, BlockTag, BLOCK_SIZE};

/// JFS superblock magic ("JFS1", as on real disks).
pub const JFS_MAGIC: u32 = 0x3153_464A;
/// Superblock version (checked alongside the magic, per §5.3).
pub const JFS_VERSION: u32 = 1;
/// Inode size.
pub const INODE_SIZE: usize = 128;
/// Inodes per table block.
pub const INODES_PER_BLOCK: u64 = (BLOCK_SIZE / INODE_SIZE) as u64;
/// Root directory inode number.
pub const ROOT_INO: u64 = 2;

/// JFS block types (Table 4 / Figure 2 rows).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum JfsBlockType {
    /// Inode table block.
    Inode,
    /// Directory block.
    Dir,
    /// Block allocation map block.
    Bmap,
    /// Inode allocation map block.
    Imap,
    /// Internal (extent tree) block.
    Internal,
    /// User data block.
    Data,
    /// Superblock (primary or alternate).
    Super,
    /// Journal superblock.
    JournalSuper,
    /// Journal data (records).
    JournalData,
    /// Aggregate inode table block.
    AggrInode,
    /// Block-map descriptor.
    BmapDesc,
    /// Inode-map control block.
    ImapControl,
}

impl JfsBlockType {
    /// Figure 2's JFS row order.
    pub const FIGURE2_ROWS: [JfsBlockType; 12] = [
        JfsBlockType::Inode,
        JfsBlockType::Dir,
        JfsBlockType::Bmap,
        JfsBlockType::Imap,
        JfsBlockType::Internal,
        JfsBlockType::Data,
        JfsBlockType::Super,
        JfsBlockType::JournalSuper,
        JfsBlockType::JournalData,
        JfsBlockType::AggrInode,
        JfsBlockType::BmapDesc,
        JfsBlockType::ImapControl,
    ];

    /// The I/O tag (Figure 2 row labels).
    pub fn tag(self) -> BlockTag {
        BlockTag(match self {
            JfsBlockType::Inode => "inode",
            JfsBlockType::Dir => "dir",
            JfsBlockType::Bmap => "bmap",
            JfsBlockType::Imap => "imap",
            JfsBlockType::Internal => "internal",
            JfsBlockType::Data => "data",
            JfsBlockType::Super => "super",
            JfsBlockType::JournalSuper => "j-super",
            JfsBlockType::JournalData => "j-data",
            JfsBlockType::AggrInode => "aggr-inode",
            JfsBlockType::BmapDesc => "bmap-desc",
            JfsBlockType::ImapControl => "imap-cntl",
        })
    }
}

/// Formatting parameters.
#[derive(Clone, Copy, Debug)]
pub struct JfsParams {
    /// Total device blocks.
    pub total_blocks: u64,
    /// Journal log blocks.
    pub journal_blocks: u64,
    /// Inode-table blocks (fixed table in this model; real JFS grows inode
    /// extents dynamically).
    pub itable_blocks: u64,
}

impl JfsParams {
    /// A small test file system (16 MiB, 1024 inodes).
    pub fn small() -> Self {
        JfsParams {
            total_blocks: 4096,
            journal_blocks: 256,
            itable_blocks: 32,
        }
    }
}

/// Computed layout.
///
/// ```text
/// 0              primary superblock
/// 1              alternate superblock (real, and really used — sometimes)
/// 2              journal superblock
/// 3..3+J         journal log (record blocks)
/// a              aggregate inode table
/// a+1            secondary aggregate inode table (present, unused on error)
/// a+2            bmap descriptor
/// a+3..          bmap blocks
/// then           imap control, imap blocks
/// then           inode table
/// rest           dir/internal/data blocks
/// ```
#[derive(Clone, Copy, Debug)]
pub struct JfsLayout {
    /// Parameters.
    pub params: JfsParams,
    /// Alternate superblock address.
    pub alt_super: u64,
    /// Journal superblock address.
    pub journal_super: u64,
    /// First journal log block.
    pub journal_start: u64,
    /// Journal log length.
    pub journal_len: u64,
    /// Aggregate inode table.
    pub aggr_inode: u64,
    /// Secondary aggregate inode table.
    pub aggr_inode_secondary: u64,
    /// Bmap descriptor block.
    pub bmap_desc: u64,
    /// First bmap block.
    pub bmap_start: u64,
    /// Bmap length in blocks.
    pub bmap_len: u64,
    /// Imap control block.
    pub imap_control: u64,
    /// First imap block.
    pub imap_start: u64,
    /// Imap length in blocks.
    pub imap_len: u64,
    /// First inode-table block.
    pub itable_start: u64,
    /// First allocatable block.
    pub alloc_start: u64,
}

impl JfsLayout {
    /// Compute the layout.
    pub fn compute(params: JfsParams) -> Self {
        let alt_super = 1;
        let journal_super = 2;
        let journal_start = 3;
        let journal_len = params.journal_blocks;
        let aggr_inode = journal_start + journal_len;
        let aggr_inode_secondary = aggr_inode + 1;
        let bmap_desc = aggr_inode + 2;
        let bmap_start = bmap_desc + 1;
        let bits = BLOCK_SIZE as u64 * 8;
        let bmap_len = params.total_blocks.div_ceil(bits);
        let imap_control = bmap_start + bmap_len;
        let imap_start = imap_control + 1;
        let total_inodes = params.itable_blocks * INODES_PER_BLOCK;
        let imap_len = total_inodes.div_ceil(bits).max(1);
        let itable_start = imap_start + imap_len;
        let alloc_start = itable_start + params.itable_blocks;
        JfsLayout {
            params,
            alt_super,
            journal_super,
            journal_start,
            journal_len,
            aggr_inode,
            aggr_inode_secondary,
            bmap_desc,
            bmap_start,
            bmap_len,
            imap_control,
            imap_start,
            imap_len,
            itable_start,
            alloc_start,
        }
    }

    /// Total inodes.
    pub fn total_inodes(&self) -> u64 {
        self.params.itable_blocks * INODES_PER_BLOCK
    }

    /// (table block, byte offset) for inode `ino` (1-based).
    pub fn inode_location(&self, ino: u64) -> (BlockAddr, usize) {
        let idx = ino - 1;
        (
            BlockAddr(self.itable_start + idx / INODES_PER_BLOCK),
            (idx % INODES_PER_BLOCK) as usize * INODE_SIZE,
        )
    }

    /// (bmap block, bit) for device block `b`.
    pub fn bmap_location(&self, b: u64) -> (BlockAddr, u64) {
        let bits = BLOCK_SIZE as u64 * 8;
        (BlockAddr(self.bmap_start + b / bits), b % bits)
    }

    /// (imap block, bit) for inode `ino` (1-based).
    pub fn imap_location(&self, ino: u64) -> (BlockAddr, u64) {
        let bits = BLOCK_SIZE as u64 * 8;
        let idx = ino - 1;
        (BlockAddr(self.imap_start + idx / bits), idx % bits)
    }
}

/// The JFS superblock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JfsSuper {
    /// Total device blocks.
    pub total_blocks: u64,
    /// Journal log length.
    pub journal_blocks: u64,
    /// Inode-table blocks.
    pub itable_blocks: u64,
    /// Free blocks.
    pub free_blocks: u64,
    /// Free inodes.
    pub free_inodes: u64,
    /// Unclean flag.
    pub dirty: bool,
}

impl JfsSuper {
    /// Serialize.
    pub fn encode(&self) -> Block {
        let mut b = Block::zeroed();
        b.put_u32(0, JFS_MAGIC);
        b.put_u32(4, JFS_VERSION);
        b.put_u64(8, self.total_blocks);
        b.put_u64(16, self.journal_blocks);
        b.put_u64(24, self.itable_blocks);
        b.put_u64(32, self.free_blocks);
        b.put_u64(40, self.free_inodes);
        b.put_u32(48, u32::from(self.dirty));
        b
    }

    /// Decode with JFS's magic *and version* checks (§5.3).
    pub fn decode(b: &Block) -> Option<JfsSuper> {
        if b.get_u32(0) != JFS_MAGIC || b.get_u32(4) != JFS_VERSION {
            return None;
        }
        Some(JfsSuper {
            total_blocks: b.get_u64(8),
            journal_blocks: b.get_u64(16),
            itable_blocks: b.get_u64(24),
            free_blocks: b.get_u64(32),
            free_inodes: b.get_u64(40),
            dirty: b.get_u32(48) != 0,
        })
    }
}

/// The bmap descriptor: carries the free count twice; JFS's "equality
/// check on a field" (§5.3) verifies the copies agree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BmapDesc {
    /// Free blocks (copy 1).
    pub free_blocks: u64,
}

impl BmapDesc {
    /// Serialize (both copies).
    pub fn encode(&self) -> Block {
        let mut b = Block::zeroed();
        b.put_u64(0, self.free_blocks);
        b.put_u64(8, self.free_blocks);
        b
    }

    /// Decode; `None` when the equality check fails.
    pub fn decode(b: &Block) -> Option<BmapDesc> {
        let a = b.get_u64(0);
        if a != b.get_u64(8) {
            return None;
        }
        Some(BmapDesc { free_blocks: a })
    }
}

/// The aggregate inode table: special inodes describing the file system
/// itself (where the maps and the inode table live). Carries a magic so a
/// *missing* table is detectable — but per the paper, the secondary copy
/// is not consulted on a read error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AggregateInodes {
    /// Bmap descriptor location.
    pub bmap_desc: u64,
    /// Imap control location.
    pub imap_control: u64,
    /// Inode-table start.
    pub itable_start: u64,
}

/// Magic for the aggregate inode table.
pub const AGGR_MAGIC: u32 = 0x4147_4752;

impl AggregateInodes {
    /// Serialize.
    pub fn encode(&self) -> Block {
        let mut b = Block::zeroed();
        b.put_u32(0, AGGR_MAGIC);
        b.put_u64(8, self.bmap_desc);
        b.put_u64(16, self.imap_control);
        b.put_u64(24, self.itable_start);
        b
    }

    /// Decode with the magic check.
    pub fn decode(b: &Block) -> Option<AggregateInodes> {
        if b.get_u32(0) != AGGR_MAGIC {
            return None;
        }
        Some(AggregateInodes {
            bmap_desc: b.get_u64(8),
            imap_control: b.get_u64(16),
            itable_start: b.get_u64(24),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_regions_are_disjoint_and_ordered() {
        let l = JfsLayout::compute(JfsParams::small());
        let marks = [
            0,
            l.alt_super,
            l.journal_super,
            l.journal_start,
            l.aggr_inode,
            l.aggr_inode_secondary,
            l.bmap_desc,
            l.bmap_start,
            l.imap_control,
            l.imap_start,
            l.itable_start,
            l.alloc_start,
        ];
        assert!(marks.windows(2).all(|w| w[0] < w[1]), "{marks:?}");
        assert!(l.alloc_start < l.params.total_blocks);
        assert_eq!(l.total_inodes(), 32 * 32);
    }

    #[test]
    fn inode_and_map_locations() {
        let l = JfsLayout::compute(JfsParams::small());
        let (b1, o1) = l.inode_location(1);
        assert_eq!(b1.0, l.itable_start);
        assert_eq!(o1, 0);
        let (b33, o33) = l.inode_location(33);
        assert_eq!(b33.0, l.itable_start + 1);
        assert_eq!(o33, 0);
        let (bm, bit) = l.bmap_location(100);
        assert_eq!(bm.0, l.bmap_start);
        assert_eq!(bit, 100);
        let (im, ibit) = l.imap_location(5);
        assert_eq!(im.0, l.imap_start);
        assert_eq!(ibit, 4);
    }

    #[test]
    fn super_round_trip_and_version_check() {
        let s = JfsSuper {
            total_blocks: 4096,
            journal_blocks: 256,
            itable_blocks: 32,
            free_blocks: 3000,
            free_inodes: 1000,
            dirty: true,
        };
        assert_eq!(JfsSuper::decode(&s.encode()), Some(s));
        let mut bad = s.encode();
        bad.put_u32(4, 99); // wrong version
        assert_eq!(JfsSuper::decode(&bad), None);
    }

    #[test]
    fn bmap_desc_equality_check() {
        let d = BmapDesc { free_blocks: 1234 };
        assert_eq!(BmapDesc::decode(&d.encode()), Some(d));
        let mut bad = d.encode();
        bad.put_u64(8, 999); // copies disagree
        assert_eq!(BmapDesc::decode(&bad), None);
    }

    #[test]
    fn aggregate_inode_round_trip() {
        let a = AggregateInodes {
            bmap_desc: 10,
            imap_control: 20,
            itable_start: 30,
        };
        assert_eq!(AggregateInodes::decode(&a.encode()), Some(a));
        assert_eq!(AggregateInodes::decode(&Block::zeroed()), None);
    }
}

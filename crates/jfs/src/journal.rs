//! JFS's record-level journal.
//!
//! "Unlike ext3 and ReiserFS, JFS uses record-level journaling to reduce
//! journal traffic" (§5.3): instead of whole-block copies, the log holds
//! byte-range *records* `(home block, offset, bytes)`, many per journal
//! block. Replay reads each home block, applies the record's bytes, and
//! writes it back.

use iron_core::{Block, BLOCK_SIZE};

/// Journal superblock magic.
pub const JLOG_MAGIC: u32 = 0x4C4F_4731; // "LOG1"

/// The journal superblock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JournalSuper {
    /// Next transaction sequence.
    pub sequence: u64,
    /// Log may need replay.
    pub dirty: bool,
}

impl JournalSuper {
    /// Serialize.
    pub fn encode(&self) -> Block {
        let mut b = Block::zeroed();
        b.put_u32(0, JLOG_MAGIC);
        b.put_u64(8, self.sequence);
        b.put_u32(16, u32::from(self.dirty));
        b
    }

    /// Decode with the magic check.
    pub fn decode(b: &Block) -> Option<JournalSuper> {
        if b.get_u32(0) != JLOG_MAGIC {
            return None;
        }
        Some(JournalSuper {
            sequence: b.get_u64(8),
            dirty: b.get_u32(16) != 0,
        })
    }
}

/// Offset sentinel marking a NOREDOPAGE record (real JFS logs one when a
/// page is freed: replay must not redo any earlier record for that page,
/// or a stale image lands on a reallocated block).
pub const NOREDO_OFFSET: u16 = u16::MAX;

/// One journal record: a byte-range update to a home block, or a
/// no-redo marker for a freed one.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LogRecord {
    /// Home block address.
    pub addr: u64,
    /// Byte offset within the home block ([`NOREDO_OFFSET`] = no-redo
    /// marker).
    pub offset: u16,
    /// The new bytes (empty for a no-redo marker).
    pub data: Vec<u8>,
}

impl LogRecord {
    /// A NOREDOPAGE record for a freed home block.
    pub fn noredo(addr: u64) -> LogRecord {
        LogRecord {
            addr,
            offset: NOREDO_OFFSET,
            data: Vec::new(),
        }
    }

    /// Is this a NOREDOPAGE marker?
    pub fn is_noredo(&self) -> bool {
        self.offset == NOREDO_OFFSET && self.data.is_empty()
    }

    /// Serialized size.
    pub fn on_disk_size(&self) -> usize {
        12 + self.data.len()
    }
}

/// Record-block header magic.
const RECORD_MAGIC: u32 = 0x4C52_4543; // "CREL"

/// A journal log block: a sequence of records plus a commit flag set on
/// the final block of a transaction.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct RecordBlock {
    /// Transaction sequence.
    pub sequence: u64,
    /// Records in this block.
    pub records: Vec<LogRecord>,
    /// True on the last block of a committed transaction.
    pub commit: bool,
}

/// Usable payload bytes per record block.
pub const RECORD_BLOCK_CAPACITY: usize = BLOCK_SIZE - 24;

impl RecordBlock {
    /// Serialize.
    ///
    /// # Panics
    /// Panics if the records exceed the block capacity.
    pub fn encode(&self) -> Block {
        let used: usize = self.records.iter().map(LogRecord::on_disk_size).sum();
        assert!(used <= RECORD_BLOCK_CAPACITY, "record block overflow");
        let mut b = Block::zeroed();
        b.put_u32(0, RECORD_MAGIC);
        b.put_u64(4, self.sequence);
        b.put_u32(12, self.records.len() as u32);
        b.put_u32(16, u32::from(self.commit));
        let mut off = 24;
        for r in &self.records {
            b.put_u64(off, r.addr);
            b.put_u16(off + 8, r.offset);
            b.put_u16(off + 10, r.data.len() as u16);
            b.put_bytes(off + 12, &r.data);
            off += r.on_disk_size();
        }
        b
    }

    /// Decode with magic/bounds checks (JFS *does* sanity-check its log
    /// during replay; a failed check aborts the replay — §5.3).
    pub fn decode(b: &Block) -> Option<RecordBlock> {
        if b.get_u32(0) != RECORD_MAGIC {
            return None;
        }
        let count = b.get_u32(12) as usize;
        if count > RECORD_BLOCK_CAPACITY / 12 {
            return None;
        }
        let mut records = Vec::with_capacity(count);
        let mut off = 24;
        for _ in 0..count {
            if off + 12 > BLOCK_SIZE {
                return None;
            }
            let addr = b.get_u64(off);
            let offset = b.get_u16(off + 8);
            let len = b.get_u16(off + 10) as usize;
            let noredo = offset == NOREDO_OFFSET && len == 0;
            if off + 12 + len > BLOCK_SIZE || (!noredo && offset as usize + len > BLOCK_SIZE) {
                return None;
            }
            records.push(LogRecord {
                addr,
                offset,
                data: b.get_bytes(off + 12, len).to_vec(),
            });
            off += 12 + len;
        }
        Some(RecordBlock {
            sequence: b.get_u64(4),
            records,
            commit: b.get_u32(16) != 0,
        })
    }
}

/// Pack a transaction's records into log blocks, marking the final one as
/// the commit.
pub fn pack_records(sequence: u64, records: &[LogRecord]) -> Vec<RecordBlock> {
    let mut blocks: Vec<RecordBlock> = Vec::new();
    let mut current = RecordBlock {
        sequence,
        ..Default::default()
    };
    let mut used = 0usize;
    for r in records {
        let sz = r.on_disk_size();
        if used + sz > RECORD_BLOCK_CAPACITY {
            blocks.push(std::mem::replace(
                &mut current,
                RecordBlock {
                    sequence,
                    ..Default::default()
                },
            ));
            used = 0;
        }
        used += sz;
        current.records.push(r.clone());
    }
    current.commit = true;
    blocks.push(current);
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(addr: u64, offset: u16, len: usize) -> LogRecord {
        LogRecord {
            addr,
            offset,
            data: vec![0x7E; len],
        }
    }

    #[test]
    fn journal_super_round_trip() {
        let js = JournalSuper {
            sequence: 3,
            dirty: true,
        };
        assert_eq!(JournalSuper::decode(&js.encode()), Some(js));
        assert_eq!(JournalSuper::decode(&Block::zeroed()), None);
    }

    #[test]
    fn record_block_round_trip() {
        let rb = RecordBlock {
            sequence: 7,
            records: vec![rec(10, 0, 128), rec(11, 256, 8), rec(12, 4000, 96)],
            commit: true,
        };
        assert_eq!(RecordBlock::decode(&rb.encode()), Some(rb));
    }

    #[test]
    fn decode_rejects_noise_and_bad_bounds() {
        assert_eq!(RecordBlock::decode(&Block::filled(0x9A)), None);
        let rb = RecordBlock {
            sequence: 1,
            records: vec![rec(5, 0, 16)],
            commit: false,
        };
        let mut bad = rb.encode();
        bad.put_u16(24 + 8, 5000); // record offset beyond block
        assert_eq!(RecordBlock::decode(&bad), None);
    }

    #[test]
    fn noredo_record_round_trips() {
        let rb = RecordBlock {
            sequence: 2,
            records: vec![rec(9, 0, 32), LogRecord::noredo(9)],
            commit: true,
        };
        let dec = RecordBlock::decode(&rb.encode()).expect("decodes");
        assert_eq!(dec, rb);
        assert!(dec.records[1].is_noredo());
        assert!(!dec.records[0].is_noredo());
    }

    #[test]
    fn pack_records_splits_and_marks_commit() {
        // 60 records × 112 bytes ≈ 6.7 KiB ⇒ two blocks.
        let records: Vec<LogRecord> = (0..60).map(|i| rec(i, 0, 100)).collect();
        let blocks = pack_records(5, &records);
        assert!(blocks.len() >= 2);
        assert!(blocks[..blocks.len() - 1].iter().all(|b| !b.commit));
        assert!(blocks.last().unwrap().commit);
        let total: usize = blocks.iter().map(|b| b.records.len()).sum();
        assert_eq!(total, 60);
        assert!(blocks.iter().all(|b| b.sequence == 5));
    }

    #[test]
    fn empty_transaction_packs_one_commit_block() {
        let blocks = pack_records(1, &[]);
        assert_eq!(blocks.len(), 1);
        assert!(blocks[0].commit);
        assert!(blocks[0].records.is_empty());
    }
}

//! The crash campaign: record one workload, enumerate its crash images,
//! and check every image in parallel.

use iron_blockdev::{CrashRecorder, WriteLog};
use iron_core::exec::WorkerPool;
use iron_fingerprint::FsUnderTest;
use iron_vfs::{FsEnv, Vfs};

use crate::enumerate::{enumerate_images, EnumOptions};
use crate::oracle::{check_image, walk_tree, Violation};
use crate::workload::{run_workload, CrashWorkload};

/// Campaign configuration.
#[derive(Clone, Debug, Default)]
pub struct CrashCampaignOptions {
    /// Enumeration bounds (seed + subsets per epoch).
    pub enumeration: EnumOptions,
    /// Worker threads for image checking; `0` = one per CPU. Reports are
    /// bit-identical at any width.
    pub threads: usize,
}

/// The outcome of one `(file system, workload)` campaign.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CrashReport {
    /// File system name.
    pub fs: String,
    /// Workload name.
    pub workload: &'static str,
    /// Barrier/flush epochs the recorded stream spans.
    pub epochs: u64,
    /// Writes recorded.
    pub writes_recorded: usize,
    /// Flushes (durability points) recorded.
    pub flushes: usize,
    /// Crash images enumerated and checked.
    pub images_checked: usize,
    /// Oracle violations, sorted by image index.
    pub violations: Vec<Violation>,
}

impl CrashReport {
    /// True when every image recovered cleanly.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Record `workload` on a fresh golden image of `fs`, enumerate the
/// bounded crash-image set, and run recovery plus all four oracles
/// against every image.
///
/// Deterministic for a fixed `(fs, workload, seed)`: the image set, the
/// checks, and the report are identical at any thread count.
pub fn run_crash_campaign(
    fs: &dyn FsUnderTest,
    workload: &CrashWorkload,
    opts: &CrashCampaignOptions,
) -> CrashReport {
    let base = fs.golden(false);

    // Checkpoint zero: what the untouched golden image looks like.
    let golden_tree = {
        let mounted = fs
            .mount_crash(CrashRecorder::new(base.snapshot()), FsEnv::new())
            .expect("golden image mounts");
        let mut v = Vfs::new(mounted);
        walk_tree(&mut v).expect("golden image walks")
    };

    // Record the workload's write stream. Dropping the mount without
    // unmounting is the crash.
    let log = WriteLog::new();
    let shadow = {
        let mounted = fs
            .mount_crash(
                CrashRecorder::with_log(base.snapshot(), log.clone()),
                FsEnv::new(),
            )
            .expect("workload mount on healthy disk");
        let mut v = Vfs::new(mounted);
        run_workload(&mut v, workload, &log).expect("workload runs on healthy disk")
    };
    let snap = log.snapshot();

    let images = enumerate_images(&snap, &opts.enumeration);
    let pool = if opts.threads == 0 {
        WorkerPool::auto()
    } else {
        WorkerPool::new(opts.threads)
    };
    let mut found: Vec<(usize, Vec<Violation>)> = pool.shard(
        &images,
        |acc: &mut Vec<(usize, Vec<Violation>)>, spec| {
            let vs = check_image(fs, workload.name, &base, &snap, &shadow, &golden_tree, spec);
            if !vs.is_empty() {
                acc.push((spec.index, vs));
            }
        },
        |a, b| a.extend(b),
    );
    // Merge order is thread-arbitrary; the image index restores a total
    // order, making the report bit-identical at any width.
    found.sort_by_key(|(index, _)| *index);

    CrashReport {
        fs: fs.name().to_string(),
        workload: workload.name,
        epochs: snap.epoch_count(),
        writes_recorded: snap.records.len(),
        flushes: snap.flush_marks.len(),
        images_checked: images.len(),
        violations: found.into_iter().flat_map(|(_, vs)| vs).collect(),
    }
}

//! The crash campaign: record one workload, enumerate its crash images,
//! and check every image in parallel — plus the multi-workload *generated
//! campaign* that fans an ACE-style workload family's whole
//! `(workload × cut-epoch × subset)` product over the pool.

use iron_blockdev::{CrashRecorder, MemDisk, WriteLog};
use iron_core::exec::WorkerPool;
use iron_fingerprint::FsUnderTest;
use iron_vfs::{FsEnv, Vfs};

use crate::enumerate::{enumerate_images, EnumOptions};
use crate::oracle::{check_image, walk_tree, FsTree, Violation};
use crate::workload::{run_workload, CrashWorkload};

/// Campaign configuration.
#[derive(Clone, Debug, Default)]
pub struct CrashCampaignOptions {
    /// Enumeration bounds (seed + subsets per epoch).
    pub enumeration: EnumOptions,
    /// Worker threads for image checking; `0` = one per CPU. Reports are
    /// bit-identical at any width.
    pub threads: usize,
}

/// The outcome of one `(file system, workload)` campaign.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CrashReport {
    /// File system name.
    pub fs: String,
    /// Workload name.
    pub workload: String,
    /// Barrier/flush epochs the recorded stream spans.
    pub epochs: u64,
    /// Writes recorded.
    pub writes_recorded: usize,
    /// Flushes (durability points) recorded.
    pub flushes: usize,
    /// Crash images enumerated and checked.
    pub images_checked: usize,
    /// Oracle violations, sorted by image index.
    pub violations: Vec<Violation>,
}

impl CrashReport {
    /// True when every image recovered cleanly.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Walk the untouched golden image — checkpoint zero of every campaign.
fn golden_tree_of(fs: &dyn FsUnderTest, base: &MemDisk) -> FsTree {
    let mounted = fs
        .mount_crash(CrashRecorder::new(base.snapshot()), FsEnv::new())
        .expect("golden image mounts");
    let mut v = Vfs::new(mounted);
    walk_tree(&mut v).expect("golden image walks")
}

/// Record `workload`'s write stream over a snapshot of `base` and check
/// every enumerated crash image sequentially, returning the report.
fn campaign_on_base(
    fs: &dyn FsUnderTest,
    workload: &CrashWorkload,
    base: &MemDisk,
    golden_tree: &FsTree,
    enumeration: &EnumOptions,
) -> CrashReport {
    // Record the workload's write stream. Dropping the mount without
    // unmounting is the crash.
    let log = WriteLog::new();
    let shadow = {
        let mounted = fs
            .mount_crash(
                CrashRecorder::with_log(base.snapshot(), log.clone()),
                FsEnv::new(),
            )
            .unwrap_or_else(|e| panic!("{}: workload mount on healthy disk: {e:?}", workload.name));
        let mut v = Vfs::new(mounted);
        run_workload(&mut v, workload, &log)
            .unwrap_or_else(|e| panic!("{}: workload runs on healthy disk: {e:?}", workload.name))
    };
    let snap = log.snapshot();

    let images = enumerate_images(&snap, enumeration);
    let mut violations = Vec::new();
    for spec in &images {
        violations.extend(check_image(
            fs,
            &workload.name,
            base,
            &snap,
            &shadow,
            golden_tree,
            spec,
        ));
    }

    CrashReport {
        fs: fs.name().to_string(),
        workload: workload.name.to_string(),
        epochs: snap.epoch_count(),
        writes_recorded: snap.records.len(),
        flushes: snap.flush_marks.len(),
        images_checked: images.len(),
        violations,
    }
}

/// Record `workload` on a fresh golden image of `fs`, enumerate the
/// bounded crash-image set, and run recovery plus all four oracles
/// against every image.
///
/// Deterministic for a fixed `(fs, workload, seed)`: the image set, the
/// checks, and the report are identical at any thread count.
pub fn run_crash_campaign(
    fs: &dyn FsUnderTest,
    workload: &CrashWorkload,
    opts: &CrashCampaignOptions,
) -> CrashReport {
    let base = fs.golden(false);
    let golden_tree = golden_tree_of(fs, &base);

    let log = WriteLog::new();
    let shadow = {
        let mounted = fs
            .mount_crash(
                CrashRecorder::with_log(base.snapshot(), log.clone()),
                FsEnv::new(),
            )
            .expect("workload mount on healthy disk");
        let mut v = Vfs::new(mounted);
        run_workload(&mut v, workload, &log).expect("workload runs on healthy disk")
    };
    let snap = log.snapshot();

    let images = enumerate_images(&snap, &opts.enumeration);
    let pool = if opts.threads == 0 {
        WorkerPool::auto()
    } else {
        WorkerPool::new(opts.threads)
    };
    let mut found: Vec<(usize, Vec<Violation>)> = pool.shard(
        &images,
        |acc: &mut Vec<(usize, Vec<Violation>)>, spec| {
            let vs = check_image(
                fs,
                &workload.name,
                &base,
                &snap,
                &shadow,
                &golden_tree,
                spec,
            );
            if !vs.is_empty() {
                acc.push((spec.index, vs));
            }
        },
        |a, b| a.extend(b),
    );
    // Merge order is thread-arbitrary; the image index restores a total
    // order, making the report bit-identical at any width.
    found.sort_by_key(|(index, _)| *index);

    CrashReport {
        fs: fs.name().to_string(),
        workload: workload.name.to_string(),
        epochs: snap.epoch_count(),
        writes_recorded: snap.records.len(),
        flushes: snap.flush_marks.len(),
        images_checked: images.len(),
        violations: found.into_iter().flat_map(|(_, vs)| vs).collect(),
    }
}

/// The outcome of a whole generated-family campaign on one file system.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GeneratedCampaignReport {
    /// File system name.
    pub fs: String,
    /// Workloads recorded and enumerated.
    pub workloads_run: usize,
    /// Crash images checked across all workloads.
    pub images_checked: usize,
    /// Workloads with at least one violation.
    pub dirty_workloads: usize,
    /// Every violation, in (workload, image index) order.
    pub violations: Vec<Violation>,
}

impl GeneratedCampaignReport {
    /// True when every image of every workload recovered cleanly.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Violation counts keyed by oracle, for matrix summaries.
    pub fn by_oracle(&self) -> std::collections::BTreeMap<crate::oracle::OracleKind, usize> {
        let mut out = std::collections::BTreeMap::new();
        for v in &self.violations {
            *out.entry(v.oracle).or_insert(0) += 1;
        }
        out
    }
}

/// Run a full generated-workload family against one file system: each
/// workload is recorded on a snapshot of the same golden image, its crash
/// images are enumerated, and every image is recovered and oracle-checked.
///
/// The `(workload × cut-epoch × subset)` product is sharded over
/// [`WorkerPool`] with one workload per claim (workloads are the
/// long-running unit; their image sets are checked inline), and the merged
/// report is re-keyed by workload index — bit-identical at any thread
/// count, exactly like [`run_crash_campaign`].
pub fn run_generated_campaign(
    fs: &dyn FsUnderTest,
    workloads: &[CrashWorkload],
    opts: &CrashCampaignOptions,
) -> GeneratedCampaignReport {
    let base = fs.golden(false);
    let golden_tree = golden_tree_of(fs, &base);

    let indexed: Vec<(usize, &CrashWorkload)> = workloads.iter().enumerate().collect();
    let pool = if opts.threads == 0 {
        WorkerPool::auto()
    } else {
        WorkerPool::new(opts.threads)
    };
    type Cell = (usize, usize, Vec<Violation>);
    let mut cells: Vec<Cell> = pool.shard_fine(
        &indexed,
        |acc: &mut Vec<Cell>, (idx, w)| {
            let r = campaign_on_base(fs, w, &base, &golden_tree, &opts.enumeration);
            acc.push((*idx, r.images_checked, r.violations));
        },
        |a, b| a.extend(b),
    );
    cells.sort_by_key(|(idx, _, _)| *idx);

    let images_checked = cells.iter().map(|(_, n, _)| n).sum();
    let dirty_workloads = cells.iter().filter(|(_, _, vs)| !vs.is_empty()).count();
    GeneratedCampaignReport {
        fs: fs.name().to_string(),
        workloads_run: workloads.len(),
        images_checked,
        dirty_workloads,
        violations: cells.into_iter().flat_map(|(_, _, vs)| vs).collect(),
    }
}

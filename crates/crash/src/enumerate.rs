//! Bounded, deterministic enumeration of crash images.
//!
//! The full crash-state space is exponential (any subset of any unflushed
//! epoch). The bound taken here: **every** epoch-prefix image — including
//! the empty image and the full-log image — plus, per epoch, either *all*
//! proper non-empty in-epoch subsets (when the epoch is small enough to
//! afford it) or a fixed number of subsets sampled with the testkit PRNG.
//! The whole set is a pure function of the recorded log and the seed, so
//! any finding is reproducible from `(seed, image index)` alone.

use std::collections::BTreeSet;

use iron_blockdev::WriteLogSnapshot;
use iron_testkit::Rng;

use crate::image::CrashImageSpec;

/// Epochs at or below this write count get exhaustive subset enumeration
/// (at most 2^4 - 2 = 14 extra images each).
const EXHAUSTIVE_LIMIT: usize = 4;

/// Enumeration bounds.
#[derive(Clone, Debug)]
pub struct EnumOptions {
    /// PRNG seed for in-epoch subset sampling.
    pub seed: u64,
    /// Subsets sampled per epoch too large for exhaustive enumeration
    /// (duplicates are discarded, so this is an upper bound).
    pub subsets_per_epoch: usize,
}

impl Default for EnumOptions {
    fn default() -> Self {
        EnumOptions {
            // SOSP 2005 date pun, grouped for legibility of the pun.
            #[allow(clippy::unusual_byte_groupings)]
            seed: 0x1905_2005_C4A5_4ED,
            subsets_per_epoch: 5,
        }
    }
}

/// Enumerate the bounded crash-image set for a recorded write stream.
///
/// Deterministic: the same log and options always produce the same specs
/// in the same order, with `index` fields `0..n`.
pub fn enumerate_images(log: &WriteLogSnapshot, opts: &EnumOptions) -> Vec<CrashImageSpec> {
    let epochs = log.epoch_count();
    let mut rng = Rng::from_seed(opts.seed);
    let mut images: Vec<CrashImageSpec> = Vec::new();

    // Every epoch prefix: cut 0 (nothing landed) .. cut `epochs` (all of it).
    for cut in 0..=epochs {
        images.push(CrashImageSpec::prefix(cut));
    }

    // In-epoch subsets: the write-back cache may persist any proper,
    // non-empty subset of the cut epoch (empty and full coincide with the
    // prefix images above).
    for cut in 0..epochs {
        let recs = log.epoch_records(cut);
        let n = recs.len();
        if n < 2 {
            continue;
        }
        if n <= EXHAUSTIVE_LIMIT {
            for mask in 1..(1u64 << n) - 1 {
                let subset: Vec<u64> = recs
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, r)| r.seq)
                    .collect();
                images.push(CrashImageSpec {
                    index: 0,
                    cut_epoch: cut,
                    subset,
                });
            }
        } else {
            let mut seen: BTreeSet<Vec<u64>> = BTreeSet::new();
            for _ in 0..opts.subsets_per_epoch {
                // Proper subset of size 1..n via a partial Fisher-Yates
                // shuffle — works for epochs of any width.
                let size = rng.range(1, n);
                let mut idx: Vec<usize> = (0..n).collect();
                for i in 0..size {
                    let j = i + rng.below((n - i) as u64) as usize;
                    idx.swap(i, j);
                }
                let mut subset: Vec<u64> = idx[..size].iter().map(|&i| recs[i].seq).collect();
                subset.sort_unstable();
                if seen.insert(subset.clone()) {
                    images.push(CrashImageSpec {
                        index: 0,
                        cut_epoch: cut,
                        subset,
                    });
                }
            }
        }
    }

    for (i, img) in images.iter_mut().enumerate() {
        img.index = i;
    }
    images
}

#[cfg(test)]
mod tests {
    use super::*;
    use iron_blockdev::{BlockDevice, CrashRecorder, MemDisk};
    use iron_core::{Block, BlockAddr};

    fn sample_log(writes_per_epoch: &[usize]) -> WriteLogSnapshot {
        let mut dev = CrashRecorder::new(MemDisk::for_tests(256));
        let mut addr = 0u64;
        for &n in writes_per_epoch {
            for _ in 0..n {
                dev.write(BlockAddr(addr), &Block::filled(addr as u8))
                    .unwrap();
                addr += 1;
            }
            dev.barrier().unwrap();
        }
        dev.log().snapshot()
    }

    #[test]
    fn enumeration_is_deterministic_and_indexed() {
        let log = sample_log(&[3, 8, 1]);
        let a = enumerate_images(&log, &EnumOptions::default());
        let b = enumerate_images(&log, &EnumOptions::default());
        assert_eq!(a, b);
        for (i, img) in a.iter().enumerate() {
            assert_eq!(img.index, i);
            assert!(img.cut_epoch <= log.epoch_count());
            // Subsets stay within their epoch and are sorted.
            let seqs: Vec<u64> = log
                .epoch_records(img.cut_epoch)
                .iter()
                .map(|r| r.seq)
                .collect();
            assert!(img.subset.windows(2).all(|w| w[0] < w[1]));
            assert!(img.subset.iter().all(|s| seqs.contains(s)));
        }
    }

    #[test]
    fn small_epochs_enumerate_exhaustively() {
        let log = sample_log(&[3]);
        let images = enumerate_images(&log, &EnumOptions::default());
        // Prefixes 0 and 1, plus 2^3 - 2 proper non-empty subsets.
        assert_eq!(images.len(), 2 + 6);
        let subsets: BTreeSet<_> = images
            .iter()
            .map(|i| (i.cut_epoch, i.subset.clone()))
            .collect();
        assert_eq!(subsets.len(), images.len(), "no duplicate images");
    }

    #[test]
    fn different_seeds_may_sample_but_always_cover_prefixes() {
        let log = sample_log(&[12, 12]);
        let images = enumerate_images(
            &log,
            &EnumOptions {
                seed: 7,
                subsets_per_epoch: 4,
            },
        );
        for cut in 0..=2 {
            assert!(images
                .iter()
                .any(|i| i.cut_epoch == cut && i.subset.is_empty()));
        }
        assert!(images.len() <= 3 + 8);
    }
}

//! # iron-crash
//!
//! Bounded **crash-state enumeration** with recovery checking — the
//! complement to `iron-fingerprint`'s fault campaigns. Where the
//! fingerprinter asks *"how does the file system react when the disk
//! fails?"*, this crate asks *"which on-disk states can a power loss
//! leave behind, and does recovery repair every one of them?"*.
//!
//! The pipeline:
//!
//! 1. **Record** ([`iron_blockdev::CrashRecorder`]): a scripted workload
//!    runs over a recording device. Every write is logged with its
//!    *epoch* — barriers and flushes seal epochs, flushes additionally
//!    append durability marks. Within an epoch a write-back drive cache
//!    may persist any subset of the writes, in any order; across a
//!    barrier it may not reorder.
//! 2. **Enumerate** ([`enumerate`]): every epoch-prefix image, plus a
//!    bounded, seed-deterministic sample of in-epoch write subsets.
//! 3. **Recover and check** ([`oracle`], [`campaign`]): each image is
//!    mounted (running journal replay), walked, cleanly unmounted, and
//!    held against four oracles — fsck cleanliness, durability of synced
//!    data, atomicity of created files, and idempotence of recovery.
//!    Violations name the exact `(epoch, write subset, oracle)` witness
//!    so any finding replays from the spec alone.
//!
//! Image checking fans out over [`iron_core::exec::WorkerPool`]; results
//! are re-keyed by image index, so reports are bit-identical at any
//! thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod enumerate;
pub mod gen;
pub mod image;
pub mod oracle;
pub mod workload;

pub use campaign::{
    run_crash_campaign, run_generated_campaign, CrashCampaignOptions, CrashReport,
    GeneratedCampaignReport,
};
pub use enumerate::{enumerate_images, EnumOptions};
pub use gen::{
    find_generated, generate_workloads, op_instances, GenOptions, SyncPlacement, GEN_CONTENT,
    GEN_DIRS, GEN_EXTEND, GEN_FILES, GEN_SHRINK,
};
pub use image::{apply_all, materialize, CrashImageSpec};
pub use oracle::{check_image, walk_tree, FsTree, OracleKind, TreeNode, Violation};
pub use workload::{
    batch_workloads, run_workload, standard_workloads, CrashOp, CrashPath, CrashWorkload,
    ShadowModel, CRASH_ROOT,
};

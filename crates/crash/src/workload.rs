//! Scripted crash workloads and the shadow model the oracles check
//! against.
//!
//! Each workload is an op script run over the VFS while the
//! [`iron_blockdev::CrashRecorder`] captures the write stream. Alongside
//! the real ops, a *shadow model* tracks what a correct file system must
//! preserve: at every `Sync` a checkpoint snapshots the expected tree
//! together with the recorder's flush count — the durability promise the
//! sync just bought — and per-path version history feeds the atomicity
//! oracle.
//!
//! Paths are owned ([`CrashPath`], a `Cow<'static, str>`): the
//! hand-written suites below borrow string literals for free, while the
//! ACE-style generator ([`crate::gen`]) builds its workloads from
//! computed paths. All workload paths live under [`CRASH_ROOT`], so the
//! oracles can tell workload state apart from the pre-existing golden
//! fixture.

use std::borrow::Cow;
use std::collections::{BTreeMap, BTreeSet};

use iron_blockdev::WriteLog;
use iron_vfs::{SpecificFs, Vfs, VfsResult};

/// Directory every workload confines itself to.
pub const CRASH_ROOT: &str = "/crash";

/// An owned-or-borrowed workload path. Hand-written scripts borrow
/// `'static` literals; generated workloads own their computed strings.
pub type CrashPath = Cow<'static, str>;

/// One step of a crash workload.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum CrashOp {
    /// Create a directory.
    Mkdir(CrashPath),
    /// Create or overwrite a file with `pattern(len, seed)` content.
    Write(CrashPath, usize, u8),
    /// Truncate a file to `size` — shrink, or extend with a zero hole.
    Truncate(CrashPath, u64),
    /// Remove a file.
    Unlink(CrashPath),
    /// Remove an (empty) directory.
    Rmdir(CrashPath),
    /// Rename a file or directory.
    Rename(CrashPath, CrashPath),
    /// `sync()`: commit and flush — a durability checkpoint.
    Sync,
}

impl CrashOp {
    /// `Mkdir` from any path-ish value.
    pub fn mkdir(p: impl Into<CrashPath>) -> Self {
        CrashOp::Mkdir(p.into())
    }
    /// `Write` from any path-ish value.
    pub fn write(p: impl Into<CrashPath>, len: usize, seed: u8) -> Self {
        CrashOp::Write(p.into(), len, seed)
    }
    /// `Truncate` from any path-ish value.
    pub fn truncate(p: impl Into<CrashPath>, size: u64) -> Self {
        CrashOp::Truncate(p.into(), size)
    }
    /// `Unlink` from any path-ish value.
    pub fn unlink(p: impl Into<CrashPath>) -> Self {
        CrashOp::Unlink(p.into())
    }
    /// `Rmdir` from any path-ish value.
    pub fn rmdir(p: impl Into<CrashPath>) -> Self {
        CrashOp::Rmdir(p.into())
    }
    /// `Rename` from any pair of path-ish values.
    pub fn rename(from: impl Into<CrashPath>, to: impl Into<CrashPath>) -> Self {
        CrashOp::Rename(from.into(), to.into())
    }
}

/// A named op script.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CrashWorkload {
    /// Display name (appears in violation reports).
    pub name: Cow<'static, str>,
    /// The script.
    pub ops: Vec<CrashOp>,
}

impl CrashWorkload {
    /// Build a workload from a name and a script.
    pub fn new(name: impl Into<Cow<'static, str>>, ops: Vec<CrashOp>) -> Self {
        CrashWorkload {
            name: name.into(),
            ops,
        }
    }
}

/// Deterministic file content, reproducible from `(len, seed)`.
pub fn pattern(len: usize, seed: u8) -> Vec<u8> {
    (0..len)
        .map(|i| {
            (seed as usize)
                .wrapping_mul(131)
                .wrapping_add(i.wrapping_mul(31)) as u8
        })
        .collect()
}

/// The expected tree at one durability checkpoint.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// Index (into the op script) of the `Sync` that took this snapshot.
    pub op_index: usize,
    /// Recorder flush count right after the sync. The checkpoint's
    /// durability promise is `flush_marks[flush_count - 1]`: crash images
    /// containing every epoch below that mark must show this tree.
    pub flush_count: usize,
    /// Expected file contents.
    pub files: BTreeMap<String, Vec<u8>>,
    /// Expected directories.
    pub dirs: BTreeSet<String>,
}

/// Everything the oracles need to know about what the workload did.
#[derive(Clone, Debug, Default)]
pub struct ShadowModel {
    /// One checkpoint per `Sync`, in script order.
    pub checkpoints: Vec<Checkpoint>,
    /// Every content version each file path ever held, in order.
    pub versions: BTreeMap<String, Vec<Vec<u8>>>,
    /// Every path that was ever a directory.
    pub ever_dirs: BTreeSet<String>,
    /// Paths written exactly once whose namespace entry was never touched
    /// by any other op — the only paths the strict create-atomicity
    /// oracle applies to (in-place overwrites legitimately tear under
    /// ordered-mode journaling, and a path reused across object kinds —
    /// rmdir-then-create — may legitimately resurface as its old object).
    pub create_once: BTreeSet<String>,
    /// Op index of the last modification touching each path. Durability
    /// checks skip paths modified after the checkpoint they test.
    pub last_modified: BTreeMap<String, usize>,
    /// File contents at the end of the script (what a loss-free replay
    /// must show).
    pub final_files: BTreeMap<String, Vec<u8>>,
    /// Directories existing at the end of the script.
    pub final_dirs: BTreeSet<String>,
}

/// Run `w` over a mounted file system, mirroring every op into the shadow
/// model. `log` must be the recorder's log, so checkpoints capture the
/// flush count their `sync` reached.
pub fn run_workload(
    v: &mut Vfs<Box<dyn SpecificFs>>,
    w: &CrashWorkload,
    log: &WriteLog,
) -> VfsResult<ShadowModel> {
    let mut shadow = ShadowModel::default();
    let mut files: BTreeMap<String, Vec<u8>> = BTreeMap::new();
    let mut dirs: BTreeSet<String> = BTreeSet::new();
    let mut mutated: BTreeSet<String> = BTreeSet::new();

    for (op_index, op) in w.ops.iter().enumerate() {
        let op_index = op_index + 1; // 0 is reserved for the golden baseline
        match op {
            CrashOp::Mkdir(p) => {
                v.mkdir(p, 0o755)?;
                dirs.insert(p.to_string());
                shadow.ever_dirs.insert(p.to_string());
                // A directory appearing at this name disqualifies it from
                // the strict create-once oracle: the namespace slot is
                // being reused across object kinds.
                mutated.insert(p.to_string());
                shadow.last_modified.insert(p.to_string(), op_index);
            }
            CrashOp::Write(p, len, seed) => {
                let data = pattern(*len, *seed);
                v.write_file(p, &data)?;
                if files.insert(p.to_string(), data.clone()).is_some() {
                    mutated.insert(p.to_string());
                }
                shadow.versions.entry(p.to_string()).or_default().push(data);
                shadow.last_modified.insert(p.to_string(), op_index);
            }
            CrashOp::Truncate(p, size) => {
                v.truncate(p, *size)?;
                let data = files.get_mut(p.as_ref()).expect("truncate of live file");
                data.resize(*size as usize, 0);
                shadow
                    .versions
                    .entry(p.to_string())
                    .or_default()
                    .push(data.clone());
                mutated.insert(p.to_string());
                shadow.last_modified.insert(p.to_string(), op_index);
            }
            CrashOp::Unlink(p) => {
                v.unlink(p)?;
                files.remove(p.as_ref());
                mutated.insert(p.to_string());
                shadow.last_modified.insert(p.to_string(), op_index);
            }
            CrashOp::Rmdir(p) => {
                v.rmdir(p)?;
                dirs.remove(p.as_ref());
                // Like Mkdir: the name may be recreated as a different
                // object kind later, so it leaves the create-once set.
                mutated.insert(p.to_string());
                shadow.last_modified.insert(p.to_string(), op_index);
            }
            CrashOp::Rename(from, to) => {
                v.rename(from, to)?;
                if let Some(data) = files.remove(from.as_ref()) {
                    shadow
                        .versions
                        .entry(to.to_string())
                        .or_default()
                        .push(data.clone());
                    files.insert(to.to_string(), data);
                }
                if dirs.remove(from.as_ref()) {
                    dirs.insert(to.to_string());
                    shadow.ever_dirs.insert(to.to_string());
                    // Contained paths move with the directory.
                    let prefix = format!("{from}/");
                    let moved: Vec<String> = files
                        .keys()
                        .filter(|p| p.starts_with(&prefix))
                        .cloned()
                        .collect();
                    for old in moved {
                        let new = format!("{to}/{}", &old[prefix.len()..]);
                        let data = files.remove(&old).expect("moved file exists");
                        shadow
                            .versions
                            .entry(new.clone())
                            .or_default()
                            .push(data.clone());
                        files.insert(new.clone(), data);
                        mutated.insert(old.clone());
                        mutated.insert(new.clone());
                        shadow.last_modified.insert(old, op_index);
                        shadow.last_modified.insert(new, op_index);
                    }
                }
                mutated.insert(from.to_string());
                mutated.insert(to.to_string());
                shadow.last_modified.insert(from.to_string(), op_index);
                shadow.last_modified.insert(to.to_string(), op_index);
            }
            CrashOp::Sync => {
                v.sync()?;
                shadow.checkpoints.push(Checkpoint {
                    op_index,
                    flush_count: log.flush_count(),
                    files: files.clone(),
                    dirs: dirs.clone(),
                });
            }
        }
    }

    shadow.create_once = shadow
        .versions
        .iter()
        .filter(|(p, vs)| vs.len() == 1 && !mutated.contains(*p))
        .map(|(p, _)| p.clone())
        .collect();
    shadow.final_files = files;
    shadow.final_dirs = dirs;
    Ok(shadow)
}

fn mk(p: &'static str) -> CrashOp {
    CrashOp::mkdir(p)
}
fn wr(p: &'static str, len: usize, seed: u8) -> CrashOp {
    CrashOp::write(p, len, seed)
}
fn tr(p: &'static str, size: u64) -> CrashOp {
    CrashOp::truncate(p, size)
}
fn un(p: &'static str) -> CrashOp {
    CrashOp::unlink(p)
}
fn rd(p: &'static str) -> CrashOp {
    CrashOp::rmdir(p)
}
fn rn(from: &'static str, to: &'static str) -> CrashOp {
    CrashOp::rename(from, to)
}
const SYNC: CrashOp = CrashOp::Sync;

/// The standard workload suite. Between them the scripts exercise synced
/// creates (durability), unsynced creates (atomicity), in-place
/// overwrite after sync (legitimately tearable), rename, unlink,
/// truncate (shrink and extend, synced and torn), and directory-block
/// free-and-reuse (the journal-revoke hazard).
pub fn standard_workloads() -> Vec<CrashWorkload> {
    vec![
        CrashWorkload::new(
            "create_sync",
            vec![
                mk("/crash"),
                wr("/crash/a", 3000, 11),
                wr("/crash/b", 9000, 12),
                SYNC,
                wr("/crash/c", 5000, 13),
                mk("/crash/d"),
                wr("/crash/d/e", 12000, 14),
                SYNC,
                wr("/crash/late", 4000, 15),
            ],
        ),
        CrashWorkload::new(
            "overwrite_rename",
            vec![
                mk("/crash"),
                wr("/crash/log", 8000, 21),
                SYNC,
                wr("/crash/log", 8000, 22),
                rn("/crash/log", "/crash/log.old"),
                wr("/crash/log", 2000, 23),
                SYNC,
                wr("/crash/tmp", 1000, 24),
                un("/crash/tmp"),
            ],
        ),
        CrashWorkload::new(
            "reuse_dir",
            vec![
                mk("/crash"),
                mk("/crash/d"),
                wr("/crash/d/f", 6000, 31),
                SYNC,
                un("/crash/d/f"),
                rd("/crash/d"),
                SYNC,
                mk("/crash/e"),
                wr("/crash/e/g", 6000, 32),
                SYNC,
            ],
        ),
        // Metadata freed and reused as *file data* within one transaction:
        // the freed directory block is reallocated to /crash/big before the
        // sync commits. A journal that forgets to revoke the freed block's
        // staged copy writes stale directory bytes over the file's data at
        // checkpoint/replay time (the PR-1 `journal_forget` seed bug).
        CrashWorkload::new(
            "free_reuse",
            vec![
                mk("/crash"),
                mk("/crash/d"),
                wr("/crash/d/f", 6000, 41),
                un("/crash/d/f"),
                rd("/crash/d"),
                wr("/crash/big", 24000, 42),
                SYNC,
            ],
        ),
        // Truncate in both directions around durability points: a synced
        // file shrunk below a block boundary (freed tail blocks are the
        // journal-forget hazard again, this time on the truncate path),
        // an extension over the shrink (the hole must read back zeroed),
        // and an unsynced truncate the atomicity oracle must tolerate in
        // either pre- or post-image.
        CrashWorkload::new(
            "truncate_churn",
            vec![
                mk("/crash"),
                wr("/crash/t", 14000, 91),
                SYNC,
                tr("/crash/t", 3000),
                wr("/crash/fill", 16000, 92),
                SYNC,
                tr("/crash/t", 10000),
                tr("/crash/fill", 0),
                SYNC,
                wr("/crash/tail", 5000, 93),
                tr("/crash/tail", 2000),
            ],
        ),
    ]
}

/// The batched-commit workload family. Each script issues enough
/// operations between syncs that a mount with the pipelined commit
/// profile (low commit threshold, `group_commit > 1`) closes several
/// transactions into one batch — the sync then commits the whole batch
/// under a single descriptor chain, commit block, and barrier pair. The
/// scripts deliberately spread interesting hazards *across* the batched
/// transactions: block free-and-reuse in a later transaction of the same
/// batch (the merged revoke set), renames over batch boundaries, and an
/// uncommitted tail after the last sync.
pub fn batch_workloads() -> Vec<CrashWorkload> {
    vec![
        // Many small synced creates: the bread-and-butter group-commit
        // case. Two bursts of eight writes, each burst committed as one
        // batch, plus an unsynced tail the atomicity oracle must see as
        // all-or-nothing.
        CrashWorkload::new(
            "batch_streams",
            vec![
                mk("/crash"),
                wr("/crash/s0", 7000, 50),
                wr("/crash/s1", 7000, 51),
                wr("/crash/s2", 7000, 52),
                wr("/crash/s3", 7000, 53),
                wr("/crash/s4", 7000, 54),
                wr("/crash/s5", 7000, 55),
                wr("/crash/s6", 7000, 56),
                wr("/crash/s7", 7000, 57),
                SYNC,
                wr("/crash/s8", 5000, 58),
                wr("/crash/s9", 5000, 59),
                wr("/crash/s10", 5000, 60),
                wr("/crash/s11", 5000, 61),
                SYNC,
                wr("/crash/tail", 3000, 62),
            ],
        ),
        // Rename/unlink churn inside a batch: directory blocks logged by
        // an early transaction of the batch are re-logged by a later one,
        // so the merged batch carries multiple staged versions of the same
        // block and replay must apply the newest.
        CrashWorkload::new(
            "batch_rename_mix",
            vec![
                mk("/crash"),
                mk("/crash/d"),
                wr("/crash/d/a", 6000, 70),
                wr("/crash/d/b", 6000, 71),
                wr("/crash/log", 8000, 72),
                rn("/crash/log", "/crash/log.old"),
                wr("/crash/log", 4000, 73),
                un("/crash/d/a"),
                wr("/crash/big", 20000, 74),
                SYNC,
                wr("/crash/post", 5000, 75),
                SYNC,
            ],
        ),
        // free_reuse across batch members: a directory block freed by one
        // transaction in the batch is reallocated as file data by a later
        // transaction of the *same* batch. The merged revoke set must
        // still suppress the stale staged copy at replay time. The freed
        // tail of a truncate rides the same hazard.
        CrashWorkload::new(
            "batch_free_reuse",
            vec![
                mk("/crash"),
                mk("/crash/d"),
                wr("/crash/d/f", 6000, 81),
                wr("/crash/x", 7000, 82),
                un("/crash/d/f"),
                rd("/crash/d"),
                tr("/crash/x", 1000),
                wr("/crash/big", 24000, 83),
                SYNC,
            ],
        ),
    ]
}

//! Scripted crash workloads and the shadow model the oracles check
//! against.
//!
//! Each workload is a fixed op script run over the VFS while the
//! [`iron_blockdev::CrashRecorder`] captures the write stream. Alongside
//! the real ops, a *shadow model* tracks what a correct file system must
//! preserve: at every `Sync` a checkpoint snapshots the expected tree
//! together with the recorder's flush count — the durability promise the
//! sync just bought — and per-path version history feeds the atomicity
//! oracle.
//!
//! All workload paths live under [`CRASH_ROOT`], so the oracles can tell
//! workload state apart from the pre-existing golden fixture.

use std::collections::{BTreeMap, BTreeSet};

use iron_blockdev::WriteLog;
use iron_vfs::{SpecificFs, Vfs, VfsResult};

/// Directory every workload confines itself to.
pub const CRASH_ROOT: &str = "/crash";

/// One step of a crash workload.
#[derive(Clone, Copy, Debug)]
pub enum CrashOp {
    /// Create a directory.
    Mkdir(&'static str),
    /// Create or overwrite a file with `pattern(len, seed)` content.
    Write(&'static str, usize, u8),
    /// Remove a file.
    Unlink(&'static str),
    /// Remove an (empty) directory.
    Rmdir(&'static str),
    /// Rename a file or directory.
    Rename(&'static str, &'static str),
    /// `sync()`: commit and flush — a durability checkpoint.
    Sync,
}

/// A named op script.
#[derive(Clone, Copy, Debug)]
pub struct CrashWorkload {
    /// Display name (appears in violation reports).
    pub name: &'static str,
    /// The script.
    pub ops: &'static [CrashOp],
}

/// Deterministic file content, reproducible from `(len, seed)`.
pub fn pattern(len: usize, seed: u8) -> Vec<u8> {
    (0..len)
        .map(|i| {
            (seed as usize)
                .wrapping_mul(131)
                .wrapping_add(i.wrapping_mul(31)) as u8
        })
        .collect()
}

/// The expected tree at one durability checkpoint.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// Index (into the op script) of the `Sync` that took this snapshot.
    pub op_index: usize,
    /// Recorder flush count right after the sync. The checkpoint's
    /// durability promise is `flush_marks[flush_count - 1]`: crash images
    /// containing every epoch below that mark must show this tree.
    pub flush_count: usize,
    /// Expected file contents.
    pub files: BTreeMap<String, Vec<u8>>,
    /// Expected directories.
    pub dirs: BTreeSet<String>,
}

/// Everything the oracles need to know about what the workload did.
#[derive(Clone, Debug, Default)]
pub struct ShadowModel {
    /// One checkpoint per `Sync`, in script order.
    pub checkpoints: Vec<Checkpoint>,
    /// Every content version each file path ever held, in order.
    pub versions: BTreeMap<String, Vec<Vec<u8>>>,
    /// Every path that was ever a directory.
    pub ever_dirs: BTreeSet<String>,
    /// Paths written exactly once and never unlinked, renamed, or
    /// rewritten — the only paths the strict create-atomicity oracle
    /// applies to (in-place overwrites legitimately tear under
    /// ordered-mode journaling).
    pub create_once: BTreeSet<String>,
    /// Op index of the last modification touching each path. Durability
    /// checks skip paths modified after the checkpoint they test.
    pub last_modified: BTreeMap<String, usize>,
}

/// Run `w` over a mounted file system, mirroring every op into the shadow
/// model. `log` must be the recorder's log, so checkpoints capture the
/// flush count their `sync` reached.
pub fn run_workload(
    v: &mut Vfs<Box<dyn SpecificFs>>,
    w: &CrashWorkload,
    log: &WriteLog,
) -> VfsResult<ShadowModel> {
    let mut shadow = ShadowModel::default();
    let mut files: BTreeMap<String, Vec<u8>> = BTreeMap::new();
    let mut dirs: BTreeSet<String> = BTreeSet::new();
    let mut mutated: BTreeSet<String> = BTreeSet::new();

    for (op_index, op) in w.ops.iter().enumerate() {
        let op_index = op_index + 1; // 0 is reserved for the golden baseline
        match *op {
            CrashOp::Mkdir(p) => {
                v.mkdir(p, 0o755)?;
                dirs.insert(p.to_string());
                shadow.ever_dirs.insert(p.to_string());
                shadow.last_modified.insert(p.to_string(), op_index);
            }
            CrashOp::Write(p, len, seed) => {
                let data = pattern(len, seed);
                v.write_file(p, &data)?;
                if files.insert(p.to_string(), data.clone()).is_some() {
                    mutated.insert(p.to_string());
                }
                shadow.versions.entry(p.to_string()).or_default().push(data);
                shadow.last_modified.insert(p.to_string(), op_index);
            }
            CrashOp::Unlink(p) => {
                v.unlink(p)?;
                files.remove(p);
                mutated.insert(p.to_string());
                shadow.last_modified.insert(p.to_string(), op_index);
            }
            CrashOp::Rmdir(p) => {
                v.rmdir(p)?;
                dirs.remove(p);
                shadow.last_modified.insert(p.to_string(), op_index);
            }
            CrashOp::Rename(from, to) => {
                v.rename(from, to)?;
                if let Some(data) = files.remove(from) {
                    shadow
                        .versions
                        .entry(to.to_string())
                        .or_default()
                        .push(data.clone());
                    files.insert(to.to_string(), data);
                }
                if dirs.remove(from) {
                    dirs.insert(to.to_string());
                    shadow.ever_dirs.insert(to.to_string());
                }
                mutated.insert(from.to_string());
                mutated.insert(to.to_string());
                shadow.last_modified.insert(from.to_string(), op_index);
                shadow.last_modified.insert(to.to_string(), op_index);
            }
            CrashOp::Sync => {
                v.sync()?;
                shadow.checkpoints.push(Checkpoint {
                    op_index,
                    flush_count: log.flush_count(),
                    files: files.clone(),
                    dirs: dirs.clone(),
                });
            }
        }
    }

    shadow.create_once = shadow
        .versions
        .iter()
        .filter(|(p, vs)| vs.len() == 1 && !mutated.contains(*p))
        .map(|(p, _)| p.clone())
        .collect();
    Ok(shadow)
}

use CrashOp::*;

/// The standard workload suite. Between them the scripts exercise synced
/// creates (durability), unsynced creates (atomicity), in-place
/// overwrite after sync (legitimately tearable), rename, unlink, and
/// directory-block free-and-reuse (the journal-revoke hazard).
pub const WORKLOADS: &[CrashWorkload] = &[
    CrashWorkload {
        name: "create_sync",
        ops: &[
            Mkdir("/crash"),
            Write("/crash/a", 3000, 11),
            Write("/crash/b", 9000, 12),
            Sync,
            Write("/crash/c", 5000, 13),
            Mkdir("/crash/d"),
            Write("/crash/d/e", 12000, 14),
            Sync,
            Write("/crash/late", 4000, 15),
        ],
    },
    CrashWorkload {
        name: "overwrite_rename",
        ops: &[
            Mkdir("/crash"),
            Write("/crash/log", 8000, 21),
            Sync,
            Write("/crash/log", 8000, 22),
            Rename("/crash/log", "/crash/log.old"),
            Write("/crash/log", 2000, 23),
            Sync,
            Write("/crash/tmp", 1000, 24),
            Unlink("/crash/tmp"),
        ],
    },
    CrashWorkload {
        name: "reuse_dir",
        ops: &[
            Mkdir("/crash"),
            Mkdir("/crash/d"),
            Write("/crash/d/f", 6000, 31),
            Sync,
            Unlink("/crash/d/f"),
            Rmdir("/crash/d"),
            Sync,
            Mkdir("/crash/e"),
            Write("/crash/e/g", 6000, 32),
            Sync,
        ],
    },
    // Metadata freed and reused as *file data* within one transaction:
    // the freed directory block is reallocated to /crash/big before the
    // sync commits. A journal that forgets to revoke the freed block's
    // staged copy writes stale directory bytes over the file's data at
    // checkpoint/replay time (the PR-1 `journal_forget` seed bug).
    CrashWorkload {
        name: "free_reuse",
        ops: &[
            Mkdir("/crash"),
            Mkdir("/crash/d"),
            Write("/crash/d/f", 6000, 41),
            Unlink("/crash/d/f"),
            Rmdir("/crash/d"),
            Write("/crash/big", 24000, 42),
            Sync,
        ],
    },
];

/// The batched-commit workload family. Each script issues enough
/// operations between syncs that a mount with the pipelined commit
/// profile (low commit threshold, `group_commit > 1`) closes several
/// transactions into one batch — the sync then commits the whole batch
/// under a single descriptor chain, commit block, and barrier pair. The
/// scripts deliberately spread interesting hazards *across* the batched
/// transactions: block free-and-reuse in a later transaction of the same
/// batch (the merged revoke set), renames over batch boundaries, and an
/// uncommitted tail after the last sync.
pub const BATCH_WORKLOADS: &[CrashWorkload] = &[
    // Many small synced creates: the bread-and-butter group-commit case.
    // Two bursts of eight writes, each burst committed as one batch, plus
    // an unsynced tail the atomicity oracle must see as all-or-nothing.
    CrashWorkload {
        name: "batch_streams",
        ops: &[
            Mkdir("/crash"),
            Write("/crash/s0", 7000, 50),
            Write("/crash/s1", 7000, 51),
            Write("/crash/s2", 7000, 52),
            Write("/crash/s3", 7000, 53),
            Write("/crash/s4", 7000, 54),
            Write("/crash/s5", 7000, 55),
            Write("/crash/s6", 7000, 56),
            Write("/crash/s7", 7000, 57),
            Sync,
            Write("/crash/s8", 5000, 58),
            Write("/crash/s9", 5000, 59),
            Write("/crash/s10", 5000, 60),
            Write("/crash/s11", 5000, 61),
            Sync,
            Write("/crash/tail", 3000, 62),
        ],
    },
    // Rename/unlink churn inside a batch: directory blocks logged by an
    // early transaction of the batch are re-logged by a later one, so the
    // merged batch carries multiple staged versions of the same block and
    // replay must apply the newest.
    CrashWorkload {
        name: "batch_rename_mix",
        ops: &[
            Mkdir("/crash"),
            Mkdir("/crash/d"),
            Write("/crash/d/a", 6000, 70),
            Write("/crash/d/b", 6000, 71),
            Write("/crash/log", 8000, 72),
            Rename("/crash/log", "/crash/log.old"),
            Write("/crash/log", 4000, 73),
            Unlink("/crash/d/a"),
            Write("/crash/big", 20000, 74),
            Sync,
            Write("/crash/post", 5000, 75),
            Sync,
        ],
    },
    // free_reuse across batch members: a directory block freed by one
    // transaction in the batch is reallocated as file data by a later
    // transaction of the *same* batch. The merged revoke set must still
    // suppress the stale staged copy at replay time.
    CrashWorkload {
        name: "batch_free_reuse",
        ops: &[
            Mkdir("/crash"),
            Mkdir("/crash/d"),
            Write("/crash/d/f", 6000, 81),
            Write("/crash/x", 7000, 82),
            Unlink("/crash/d/f"),
            Rmdir("/crash/d"),
            Write("/crash/big", 24000, 83),
            Sync,
        ],
    },
];

//! ACE-style bounded workload generation (CrashMonkey/ACE, OSDI '18):
//! systematically enumerate **every** length-2 and length-3 operation
//! sequence over a tiny fixed namespace, with sync placement varied per
//! sequence — instead of hand-writing workloads and hoping the
//! interesting interleavings are among them.
//!
//! The bounds, after ACE:
//!
//! * **namespace**: 2 directories × 2 files × 2 content seeds
//!   ([`GEN_DIRS`], [`GEN_FILES`], [`GEN_CONTENT`]) — small enough that
//!   seq-3 stays tractable, rich enough for every pairwise interaction
//!   (create/unlink fights, rename into a directory, rmdir-then-reuse,
//!   truncate over a synced write, ...);
//! * **vocabulary**: `{Mkdir, Write, Truncate, Unlink, Rmdir, Rename,
//!   Sync}` — `Sync` is not enumerated as an op but injected as a
//!   *placement* ([`SyncPlacement`]): none, trailing, or after every
//!   prefix;
//! * **pruning**: sequences illegal against the shadow model (unlink
//!   before create, rmdir of a non-empty or absent directory, rename
//!   without a source, ...) are skipped during enumeration, and
//!   name-isomorphic sequences (identical up to a consistent swap of the
//!   two dirs, the two files, or the two content seeds) are collapsed to
//!   their lexicographically-least representative.
//!
//! The surviving seq-2 + seq-3 family lands in the low thousands of
//! workloads. Generation is a pure function of [`GenOptions`] — no RNG,
//! no clocks — so the family is bit-identical across runs, machines, and
//! thread counts, and any `(workload name, image index)` pair is a
//! complete replayable witness.

use std::collections::BTreeSet;

use crate::workload::{CrashOp, CrashWorkload, CRASH_ROOT};

/// The two directories of the generated namespace.
pub const GEN_DIRS: [&str; 2] = ["/crash/d0", "/crash/d1"];
/// The two files of the generated namespace (both at the crash root;
/// renames can move them into the directories).
pub const GEN_FILES: [&str; 2] = ["/crash/f0", "/crash/f1"];
/// The two content seeds: `(len, seed)` for [`crate::workload::pattern`].
/// Lengths straddle a block boundary so the two contents differ in shape,
/// not just bytes.
pub const GEN_CONTENT: [(usize, u8); 2] = [(2600, 0xA1), (6200, 0xB2)];
/// Truncate-shrink target: below one block, so shrinking the larger
/// content frees a whole tail block (the journal-forget hazard).
pub const GEN_SHRINK: u64 = 1024;
/// Truncate-extend target: past both content lengths, so the extension
/// is a hole that must read back zeroed.
pub const GEN_EXTEND: u64 = 9000;

/// Where syncs are injected into a core sequence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncPlacement {
    /// No sync at all: every op rides in unflushed epochs.
    None,
    /// One sync after the whole sequence.
    Trailing,
    /// A sync after every op — each prefix becomes a durability
    /// checkpoint.
    AfterEach,
}

impl SyncPlacement {
    /// All placements, in emission order.
    pub const ALL: [SyncPlacement; 3] = [
        SyncPlacement::None,
        SyncPlacement::Trailing,
        SyncPlacement::AfterEach,
    ];

    fn suffix(&self) -> &'static str {
        match self {
            SyncPlacement::None => "none",
            SyncPlacement::Trailing => "trail",
            SyncPlacement::AfterEach => "each",
        }
    }
}

/// Generation bounds.
#[derive(Clone, Debug)]
pub struct GenOptions {
    /// Shortest core sequence emitted.
    pub min_len: usize,
    /// Longest core sequence emitted.
    pub max_len: usize,
    /// Sync placements emitted per core sequence.
    pub placements: Vec<SyncPlacement>,
}

impl GenOptions {
    /// All length-2 sequences, all three sync placements — the default
    /// test tier's family.
    pub fn seq2() -> Self {
        GenOptions {
            min_len: 2,
            max_len: 2,
            placements: SyncPlacement::ALL.to_vec(),
        }
    }

    /// All length-2 *and* length-3 sequences — the full ACE bound, run in
    /// the stress lane.
    pub fn seq3() -> Self {
        GenOptions {
            min_len: 2,
            max_len: 3,
            placements: SyncPlacement::ALL.to_vec(),
        }
    }
}

/// The fixed table of op instances the generator sequences over. `Sync`
/// is deliberately absent — sync placement is a separate axis. The table
/// is closed under the three namespace swaps (dirs, files, seeds), which
/// is what makes isomorphism pruning a permutation of indices.
pub fn op_instances() -> Vec<CrashOp> {
    let [d0, d1] = GEN_DIRS;
    let [f0, f1] = GEN_FILES;
    let [(l0, s0), (l1, s1)] = GEN_CONTENT;
    vec![
        CrashOp::mkdir(d0),
        CrashOp::mkdir(d1),
        CrashOp::write(f0, l0, s0),
        CrashOp::write(f0, l1, s1),
        CrashOp::write(f1, l0, s0),
        CrashOp::write(f1, l1, s1),
        CrashOp::truncate(f0, GEN_SHRINK),
        CrashOp::truncate(f0, GEN_EXTEND),
        CrashOp::truncate(f1, GEN_SHRINK),
        CrashOp::truncate(f1, GEN_EXTEND),
        CrashOp::unlink(f0),
        CrashOp::unlink(f1),
        CrashOp::rmdir(d0),
        CrashOp::rmdir(d1),
        CrashOp::rename(f0, f1),
        CrashOp::rename(f1, f0),
        CrashOp::rename(f0, "/crash/d0/f0"),
        CrashOp::rename(f0, "/crash/d1/f0"),
        CrashOp::rename(f1, "/crash/d0/f1"),
        CrashOp::rename(f1, "/crash/d1/f1"),
        CrashOp::rename(d0, d1),
        CrashOp::rename(d1, d0),
    ]
}

/// Pure namespace simulator used for legality pruning. Mirrors exactly
/// the VFS semantics the replay property test pins against `RamFs`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct SimState {
    dirs: BTreeSet<String>,
    files: BTreeSet<String>,
}

fn parent_of(path: &str) -> &str {
    match path.rfind('/') {
        Some(0) | None => "/",
        Some(i) => &path[..i],
    }
}

impl SimState {
    /// Apply `op`; `false` means the op would fail against a real FS
    /// (the sequence is illegal and gets pruned).
    fn apply(&mut self, op: &CrashOp) -> bool {
        match op {
            CrashOp::Mkdir(d) => {
                let d = d.as_ref();
                if self.dirs.contains(d) || self.files.contains(d) {
                    return false; // EEXIST
                }
                self.dirs.insert(d.to_string())
            }
            CrashOp::Write(f, _, _) => {
                // create-or-overwrite; the name never collides with a dir
                // in this vocabulary.
                self.files.insert(f.to_string());
                true
            }
            CrashOp::Truncate(f, _) => self.files.contains(f.as_ref()),
            CrashOp::Unlink(f) => self.files.remove(f.as_ref()),
            CrashOp::Rmdir(d) => {
                let prefix = format!("{d}/");
                if !self.dirs.contains(d.as_ref())
                    || self.files.iter().any(|f| f.starts_with(&prefix))
                {
                    return false; // ENOENT / ENOTEMPTY
                }
                self.dirs.remove(d.as_ref())
            }
            CrashOp::Rename(from, to) => {
                let (from, to) = (from.as_ref(), to.as_ref());
                let parent = parent_of(to);
                if parent != CRASH_ROOT && !self.dirs.contains(parent) {
                    return false; // ENOENT on the target's parent
                }
                if self.files.contains(from) {
                    if self.dirs.contains(to) {
                        return false; // EISDIR
                    }
                    self.files.remove(from);
                    self.files.insert(to.to_string()); // replaces any file
                    true
                } else if self.dirs.contains(from) {
                    if self.dirs.contains(to) || self.files.contains(to) {
                        return false; // replacing a dir target: EISDIR/ENOTDIR
                    }
                    self.dirs.remove(from);
                    self.dirs.insert(to.to_string());
                    let prefix = format!("{from}/");
                    let moved: Vec<String> = self
                        .files
                        .iter()
                        .filter(|f| f.starts_with(&prefix))
                        .cloned()
                        .collect();
                    for old in moved {
                        self.files.remove(&old);
                        self.files.insert(format!("{to}/{}", &old[prefix.len()..]));
                    }
                    true
                } else {
                    false // ENOENT
                }
            }
            CrashOp::Sync => true,
        }
    }
}

/// One namespace isomorphism: a consistent swap of the two dirs, the two
/// files, and/or the two content seeds, expressed as a permutation of the
/// instance table.
fn swap_paths(s: &str, swap_d: bool, swap_f: bool) -> String {
    let mut out = s.to_string();
    if swap_d {
        out = out
            .replace("d0", "\u{1}")
            .replace("d1", "d0")
            .replace('\u{1}', "d1");
    }
    if swap_f {
        out = out
            .replace("f0", "\u{1}")
            .replace("f1", "f0")
            .replace('\u{1}', "f1");
    }
    out
}

fn map_op(op: &CrashOp, swap_d: bool, swap_f: bool, swap_s: bool) -> CrashOp {
    match op {
        CrashOp::Mkdir(p) => CrashOp::mkdir(swap_paths(p, swap_d, swap_f)),
        CrashOp::Write(p, len, seed) => {
            let (mut len, mut seed) = (*len, *seed);
            if swap_s {
                let [(l0, s0), (l1, s1)] = GEN_CONTENT;
                (len, seed) = if (len, seed) == (l0, s0) {
                    (l1, s1)
                } else {
                    (l0, s0)
                };
            }
            CrashOp::write(swap_paths(p, swap_d, swap_f), len, seed)
        }
        CrashOp::Truncate(p, size) => CrashOp::truncate(swap_paths(p, swap_d, swap_f), *size),
        CrashOp::Unlink(p) => CrashOp::unlink(swap_paths(p, swap_d, swap_f)),
        CrashOp::Rmdir(p) => CrashOp::rmdir(swap_paths(p, swap_d, swap_f)),
        CrashOp::Rename(a, b) => {
            CrashOp::rename(swap_paths(a, swap_d, swap_f), swap_paths(b, swap_d, swap_f))
        }
        CrashOp::Sync => CrashOp::Sync,
    }
}

/// The 8 instance-index permutations of the isomorphism group
/// (dir-swap × file-swap × seed-swap). Index 0 is the identity.
fn isomorphism_tables(instances: &[CrashOp]) -> Vec<Vec<usize>> {
    let mut tables = Vec::with_capacity(8);
    for bits in 0u8..8 {
        let (swap_d, swap_f, swap_s) = (bits & 1 != 0, bits & 2 != 0, bits & 4 != 0);
        let table: Vec<usize> = instances
            .iter()
            .map(|op| {
                let mapped = map_op(op, swap_d, swap_f, swap_s);
                instances
                    .iter()
                    .position(|o| *o == mapped)
                    .expect("instance table is closed under the isomorphism group")
            })
            .collect();
        tables.push(table);
    }
    tables
}

/// A sequence is canonical iff it is lexicographically minimal within its
/// isomorphism orbit. Legality is invariant under the group (the rules
/// never distinguish d0 from d1, f0 from f1, or the two seeds), so every
/// orbit of a legal sequence is fully legal and exactly one member
/// survives.
fn is_canonical(seq: &[usize], tables: &[Vec<usize>]) -> bool {
    let mut image = Vec::with_capacity(seq.len());
    for table in &tables[1..] {
        image.clear();
        image.extend(seq.iter().map(|&i| table[i]));
        if image.as_slice() < seq {
            return false;
        }
    }
    true
}

/// Enumerate every legal, canonical core sequence of instance indices
/// with length in `[min_len, max_len]`, in lexicographic order.
fn core_sequences(instances: &[CrashOp], min_len: usize, max_len: usize) -> Vec<Vec<usize>> {
    let tables = isomorphism_tables(instances);
    let mut out = Vec::new();
    // DFS stack: (sequence so far, state after it).
    let mut stack: Vec<(Vec<usize>, SimState)> = vec![(Vec::new(), SimState::default())];
    while let Some((seq, state)) = stack.pop() {
        // Children in reverse so the LIFO pops them in ascending order —
        // purely cosmetic (output sorted), determinism holds either way.
        for idx in (0..instances.len()).rev() {
            let mut next_state = state.clone();
            if !next_state.apply(&instances[idx]) {
                continue;
            }
            let mut next_seq = seq.clone();
            next_seq.push(idx);
            if next_seq.len() >= min_len && is_canonical(&next_seq, &tables) {
                out.push(next_seq.clone());
            }
            if next_seq.len() < max_len {
                stack.push((next_seq, next_state));
            }
        }
    }
    out.sort();
    out
}

/// Generate the bounded workload family for `opts`.
///
/// Every workload starts with `Mkdir(CRASH_ROOT)` (the namespace the
/// oracles scope to), then the core sequence with syncs injected per
/// placement. Names encode the complete recipe —
/// `g<len>#<i0>.<i1>[.<i2>]-<placement>` — so a violation's workload name
/// plus image index replays from the generator alone.
pub fn generate_workloads(opts: &GenOptions) -> Vec<CrashWorkload> {
    let instances = op_instances();
    let cores = core_sequences(&instances, opts.min_len, opts.max_len);
    let mut out = Vec::with_capacity(cores.len() * opts.placements.len());
    for core in &cores {
        for placement in &opts.placements {
            let mut ops = Vec::with_capacity(2 + core.len() * 2);
            ops.push(CrashOp::mkdir(CRASH_ROOT));
            for &idx in core {
                ops.push(instances[idx].clone());
                if *placement == SyncPlacement::AfterEach {
                    ops.push(CrashOp::Sync);
                }
            }
            if *placement == SyncPlacement::Trailing {
                ops.push(CrashOp::Sync);
            }
            let sig: Vec<String> = core.iter().map(|i| format!("{i:02}")).collect();
            let name = format!("g{}#{}-{}", core.len(), sig.join("."), placement.suffix());
            out.push(CrashWorkload::new(name, ops));
        }
    }
    out
}

/// Find one generated workload by its name (the replay path for a
/// violation witness).
pub fn find_generated(opts: &GenOptions, name: &str) -> Option<CrashWorkload> {
    generate_workloads(opts)
        .into_iter()
        .find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_table_is_closed_under_the_isomorphism_group() {
        // isomorphism_tables panics if not; also verify each is a
        // permutation and an involution composition (applying twice with
        // the same bits is the identity).
        let instances = op_instances();
        let tables = isomorphism_tables(&instances);
        assert_eq!(tables.len(), 8);
        for table in &tables {
            let mut seen: Vec<usize> = table.clone();
            seen.sort_unstable();
            assert_eq!(seen, (0..instances.len()).collect::<Vec<_>>());
        }
        assert_eq!(tables[0], (0..instances.len()).collect::<Vec<_>>());
        for table in &tables {
            for i in 0..instances.len() {
                assert_eq!(table[table[i]], i, "swap twice = identity");
            }
        }
    }

    #[test]
    fn legality_pruning_rejects_the_obvious() {
        let instances = op_instances();
        let mut s = SimState::default();
        assert!(
            !s.apply(&CrashOp::unlink("/crash/f0")),
            "unlink before create"
        );
        assert!(!s.apply(&CrashOp::rmdir("/crash/d0")), "rmdir before mkdir");
        assert!(
            !s.apply(&CrashOp::truncate("/crash/f0", 0)),
            "truncate missing"
        );
        assert!(
            !s.apply(&CrashOp::rename("/crash/f0", "/crash/f1")),
            "rename missing source"
        );
        assert!(s.apply(&instances[2]), "write f0");
        assert!(
            !s.apply(&CrashOp::rename("/crash/f0", "/crash/d0/f0")),
            "rename into missing dir"
        );
        assert!(s.apply(&CrashOp::mkdir("/crash/d0")));
        assert!(s.apply(&CrashOp::rename("/crash/f0", "/crash/d0/f0")));
        assert!(!s.apply(&CrashOp::rmdir("/crash/d0")), "rmdir non-empty");
        assert!(s.apply(&CrashOp::rename("/crash/d0", "/crash/d1")));
        assert!(
            s.files.contains("/crash/d1/f0"),
            "dir rename moves contained files"
        );
    }

    #[test]
    fn canonicalization_keeps_exactly_one_orbit_member() {
        let instances = op_instances();
        let tables = isomorphism_tables(&instances);
        // Write(f0,c0); Unlink(f0) is canonical; the f1/c1-swapped twins
        // are not.
        assert!(is_canonical(&[2, 10], &tables));
        assert!(!is_canonical(&[4, 11], &tables), "file-swapped twin");
        assert!(!is_canonical(&[3, 10], &tables), "seed-swapped twin");
        assert!(!is_canonical(&[1, 13], &tables), "dir-swapped twin");
        assert!(is_canonical(&[0, 12], &tables));
    }
}

//! Crash-image reconstruction from a recorded write stream.
//!
//! A crash image is identified by a cut epoch `k` and a subset `S` of
//! epoch `k`'s writes: everything in epochs `< k` landed (barriers forbid
//! reordering across epochs), plus exactly the writes in `S` (a write-back
//! drive cache may persist any subset of an unflushed epoch). Writes are
//! replayed in issue order, so the per-address final value is the last
//! applied write — the same convergence a real cache destage has.

use iron_blockdev::{MemDisk, RawAccess, WriteLogSnapshot};

/// One crash state, by construction recipe. Together with the recorded
/// log and the golden base image this is a complete, replayable witness.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct CrashImageSpec {
    /// Stable index within the enumerated image set.
    pub index: usize,
    /// Epochs strictly before this one are fully applied.
    pub cut_epoch: u64,
    /// Sequence numbers of `cut_epoch` writes additionally applied,
    /// sorted ascending. Empty = the pure epoch-prefix image.
    pub subset: Vec<u64>,
}

impl CrashImageSpec {
    /// A pure epoch-prefix image.
    pub fn prefix(cut_epoch: u64) -> Self {
        CrashImageSpec {
            index: 0,
            cut_epoch,
            subset: Vec::new(),
        }
    }
}

/// Rebuild the on-medium state this crash image describes.
pub fn materialize(base: &MemDisk, log: &WriteLogSnapshot, spec: &CrashImageSpec) -> MemDisk {
    let mut disk = base.snapshot();
    for r in &log.records {
        let applies = r.epoch < spec.cut_epoch
            || (r.epoch == spec.cut_epoch && spec.subset.binary_search(&r.seq).is_ok());
        if applies {
            disk.poke(r.addr, &r.data);
        }
    }
    disk
}

/// Apply every recorded write to `disk` in issue order. Used to
/// reconstruct the post-recovery medium from a pre-mount image plus the
/// write stream the recovery mount produced.
pub fn apply_all(mut disk: MemDisk, log: &WriteLogSnapshot) -> MemDisk {
    for r in &log.records {
        disk.poke(r.addr, &r.data);
    }
    disk
}

#[cfg(test)]
mod tests {
    use super::*;
    use iron_blockdev::{BlockDevice, CrashRecorder};
    use iron_core::{Block, BlockAddr};

    #[test]
    fn materialize_applies_prefix_and_subset_in_issue_order() {
        let base = MemDisk::for_tests(8);
        let mut dev = CrashRecorder::new(base.snapshot());
        // epoch 0: two writes to the same address — order matters.
        dev.write(BlockAddr(1), &Block::filled(1)).unwrap();
        dev.write(BlockAddr(1), &Block::filled(2)).unwrap();
        dev.barrier().unwrap();
        // epoch 1
        dev.write(BlockAddr(2), &Block::filled(3)).unwrap();
        let log = dev.log().snapshot();

        // Cut at epoch 0 with only the first write applied.
        let img = materialize(
            &base,
            &log,
            &CrashImageSpec {
                index: 0,
                cut_epoch: 0,
                subset: vec![0],
            },
        );
        assert_eq!(img.peek(BlockAddr(1)), Block::filled(1));
        assert_eq!(img.peek(BlockAddr(2)), Block::zeroed());

        // Full prefix of epoch 1: epoch 0 converged to the *last* write.
        let img = materialize(&base, &log, &CrashImageSpec::prefix(1));
        assert_eq!(img.peek(BlockAddr(1)), Block::filled(2));
        assert_eq!(img.peek(BlockAddr(2)), Block::zeroed());

        let img = materialize(&base, &log, &CrashImageSpec::prefix(2));
        assert_eq!(img.peek(BlockAddr(2)), Block::filled(3));
    }
}

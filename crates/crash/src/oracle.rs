//! Recovery oracles and the per-image check.
//!
//! For each enumerated crash image the checker mounts the image (letting
//! journal replay run), walks the whole tree, cleanly unmounts, and
//! reconstructs the post-recovery medium from the image plus the recovery
//! mount's own write stream. Four oracles then apply:
//!
//! * **FsckClean** — recovery itself succeeds (mount, walk, unmount) and
//!   the file system's offline checker finds nothing afterwards.
//! * **Durability** — the latest checkpoint whose flush mark the image
//!   contains must be visible: every file synced there and not modified
//!   since must exist with exactly its synced content. The golden fixture
//!   is checkpoint zero and must always survive.
//! * **Atomicity** — a file created exactly once is all-or-nothing: if it
//!   is visible at all, its content is the full written version. Paths
//!   that were never created must not appear.
//! * **Idempotence** — mounting the recovered medium a second time
//!   changes nothing user-visible.
//!
//! Every violation carries the [`CrashImageSpec`] witness, so it replays
//! from `(seed, image index)` alone.

use std::collections::BTreeMap;
use std::fmt;

use iron_blockdev::{CrashRecorder, MemDisk, WriteLog, WriteLogSnapshot};
use iron_fingerprint::FsUnderTest;
use iron_vfs::{FileType, FsEnv, SpecificFs, Vfs};

use crate::image::{apply_all, materialize, CrashImageSpec};
use crate::workload::{ShadowModel, CRASH_ROOT};

/// A node observed while walking a mounted tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TreeNode {
    /// A directory.
    Dir,
    /// A regular file and its full content.
    File(Vec<u8>),
    /// A symlink and its target.
    Symlink(String),
}

/// Full recursive listing of a mounted file system, path → node.
pub type FsTree = BTreeMap<String, TreeNode>;

/// Most nodes a walk will visit before declaring the tree corrupt. A
/// crash image can decay into a directory cycle; the walker must return
/// an error for the oracle to report, not spin.
const WALK_NODE_BOUND: usize = 4096;

/// Largest file size the walker will read. Anything bigger than the whole
/// test disk is a corrupt inode, not a file.
const WALK_SIZE_BOUND: u64 = 64 * 1024 * 1024;

/// Recursively walk a mounted file system from the root, reading every
/// file in full. Any error is fatal to the walk — a recovered file system
/// must be fully traversable. Corruption that mounts anyway (directory
/// cycles, implausible inode sizes) is bounded into an error rather than
/// a hang.
pub fn walk_tree(v: &mut Vfs<Box<dyn SpecificFs>>) -> Result<FsTree, String> {
    let mut out = FsTree::new();
    let mut stack = vec![String::from("/")];
    let mut visited = 0usize;
    while let Some(dir) = stack.pop() {
        let entries = v
            .readdir(&dir)
            .map_err(|e| format!("readdir {dir}: {e:?}"))?;
        for ent in entries {
            if ent.name == "." || ent.name == ".." {
                continue;
            }
            visited += 1;
            if visited > WALK_NODE_BOUND {
                return Err(format!(
                    "tree walk exceeded {WALK_NODE_BOUND} nodes at {dir}/{} — directory cycle?",
                    ent.name
                ));
            }
            let path = if dir == "/" {
                format!("/{}", ent.name)
            } else {
                format!("{}/{}", dir, ent.name)
            };
            match ent.ftype {
                FileType::Directory => {
                    out.insert(path.clone(), TreeNode::Dir);
                    stack.push(path);
                }
                FileType::Regular => {
                    let size = v
                        .stat(&path)
                        .map_err(|e| format!("stat {path}: {e:?}"))?
                        .size;
                    if size > WALK_SIZE_BOUND {
                        return Err(format!("{path}: implausible size {size}"));
                    }
                    let data = v
                        .read_file(&path)
                        .map_err(|e| format!("read {path}: {e:?}"))?;
                    out.insert(path, TreeNode::File(data));
                }
                FileType::Symlink => {
                    let target = v
                        .readlink(&path)
                        .map_err(|e| format!("readlink {path}: {e:?}"))?;
                    out.insert(path, TreeNode::Symlink(target));
                }
            }
        }
    }
    Ok(out)
}

/// Which oracle a violation tripped.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum OracleKind {
    /// Recovery failed or the offline checker found damage afterwards.
    FsckClean,
    /// Synced state went missing or changed.
    Durability,
    /// A create tore, or a never-created path appeared.
    Atomicity,
    /// A second recovery changed the tree.
    Idempotence,
}

impl OracleKind {
    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            OracleKind::FsckClean => "fsck-clean",
            OracleKind::Durability => "durability",
            OracleKind::Atomicity => "atomicity",
            OracleKind::Idempotence => "idempotence",
        }
    }
}

/// One oracle violation, with its replayable crash-image witness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// File system under test.
    pub fs: String,
    /// Workload name. Owned: generated workloads have computed names.
    pub workload: String,
    /// The crash image that produced it — cut epoch and exact write
    /// subset.
    pub image: CrashImageSpec,
    /// The oracle that fired.
    pub oracle: OracleKind,
    /// Human-readable specifics.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}/{}] image {} (cut epoch {}, subset {:?}) {}: {}",
            self.fs,
            self.workload,
            self.image.index,
            self.image.cut_epoch,
            self.image.subset,
            self.oracle.label(),
            self.detail
        )
    }
}

fn describe_node(n: Option<&TreeNode>) -> String {
    match n {
        None => "missing".to_string(),
        Some(TreeNode::Dir) => "a directory".to_string(),
        Some(TreeNode::File(d)) => format!("a {}-byte file", d.len()),
        Some(TreeNode::Symlink(t)) => format!("a symlink to {t}"),
    }
}

/// Run recovery and all four oracles against one crash image.
///
/// Fully deterministic: no RNG, no clocks — campaigns may fan images over
/// any number of worker threads and re-sort by image index to get
/// bit-identical reports.
pub fn check_image(
    fs: &dyn FsUnderTest,
    workload_name: &str,
    base: &MemDisk,
    log: &WriteLogSnapshot,
    shadow: &ShadowModel,
    golden_tree: &FsTree,
    spec: &CrashImageSpec,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let viol = |oracle: OracleKind, detail: String| Violation {
        fs: fs.name().to_string(),
        workload: workload_name.to_string(),
        image: spec.clone(),
        oracle,
        detail,
    };

    // Recovery: mount the image (journal replay runs here), walk, unmount.
    let disk = materialize(base, log, spec);
    let rlog = WriteLog::new();
    let tree = match fs.mount_crash(CrashRecorder::with_log(disk, rlog.clone()), FsEnv::new()) {
        Err(e) => {
            out.push(viol(
                OracleKind::FsckClean,
                format!("recovery mount failed: {e:?}"),
            ));
            return out;
        }
        Ok(mounted) => {
            let mut v = Vfs::new(mounted);
            let walked = walk_tree(&mut v);
            let unmounted = v.umount();
            match walked {
                Err(e) => {
                    out.push(viol(
                        OracleKind::FsckClean,
                        format!("post-recovery tree walk failed: {e}"),
                    ));
                    return out;
                }
                Ok(t) => {
                    if let Err(e) = unmounted {
                        out.push(viol(
                            OracleKind::FsckClean,
                            format!("clean unmount after recovery failed: {e:?}"),
                        ));
                        return out;
                    }
                    t
                }
            }
        }
    };

    // The recovered, cleanly-unmounted medium: image + recovery's writes.
    let post = apply_all(materialize(base, log, spec), &rlog.snapshot());

    // (a) Offline check finds nothing after recovery.
    if let Some(issues) = fs.fsck_issues(&post) {
        if !issues.is_empty() {
            out.push(viol(
                OracleKind::FsckClean,
                format!("fsck after recovery: {}", issues.join("; ")),
            ));
        }
    }

    // (b) Durability. Baseline: the golden fixture (it is the base of
    // every image) — any path the workload never touched must be intact.
    for (path, node) in golden_tree {
        if shadow.last_modified.contains_key(path) {
            continue;
        }
        if tree.get(path) != Some(node) {
            out.push(viol(
                OracleKind::Durability,
                format!(
                    "golden fixture path {path} expected {}, found {}",
                    describe_node(Some(node)),
                    describe_node(tree.get(path))
                ),
            ));
        }
    }
    // The latest checkpoint whose flush mark this image fully contains.
    let applicable = shadow.checkpoints.iter().rfind(|c| {
        c.flush_count > 0
            && c.flush_count <= log.flush_marks.len()
            && log.flush_marks[c.flush_count - 1] <= spec.cut_epoch
    });
    if let Some(cp) = applicable {
        let mark = log.flush_marks[cp.flush_count - 1];
        for (path, content) in &cp.files {
            if shadow
                .last_modified
                .get(path)
                .is_some_and(|&m| m > cp.op_index)
            {
                continue;
            }
            let ok = matches!(tree.get(path), Some(TreeNode::File(d)) if d == content);
            if !ok {
                let found = match tree.get(path) {
                    Some(TreeNode::File(d)) if d.len() == content.len() => {
                        let off = d
                            .iter()
                            .zip(content.iter())
                            .position(|(a, b)| a != b)
                            .unwrap_or(0);
                        format!(
                            "a {}-byte file with wrong content (first diff at byte {off})",
                            d.len()
                        )
                    }
                    other => describe_node(other),
                };
                out.push(viol(
                    OracleKind::Durability,
                    format!(
                        "{path}: synced at op {} (flush mark {mark} \u{2264} cut {}), expected a \
                         {}-byte file, found {found}",
                        cp.op_index,
                        spec.cut_epoch,
                        content.len(),
                    ),
                ));
            }
        }
        for path in &cp.dirs {
            if shadow
                .last_modified
                .get(path)
                .is_some_and(|&m| m > cp.op_index)
            {
                continue;
            }
            if tree.get(path) != Some(&TreeNode::Dir) {
                out.push(viol(
                    OracleKind::Durability,
                    format!(
                        "{path}: directory synced at op {} missing after recovery",
                        cp.op_index
                    ),
                ));
            }
        }
    }

    // (c) Atomicity, scoped to the workload's namespace.
    for (path, node) in &tree {
        if path != CRASH_ROOT && !path.starts_with("/crash/") {
            continue;
        }
        match node {
            TreeNode::Dir => {
                if !shadow.ever_dirs.contains(path) {
                    out.push(viol(
                        OracleKind::Atomicity,
                        format!("{path}: phantom directory (never created by the workload)"),
                    ));
                }
            }
            TreeNode::File(data) => match shadow.versions.get(path) {
                None => out.push(viol(
                    OracleKind::Atomicity,
                    format!("{path}: phantom file (never created by the workload)"),
                )),
                Some(versions) => {
                    // `write_file` on a fresh path is create-then-write —
                    // two journaled operations. A commit landing between
                    // them (routine under group commit, where transactions
                    // close on size, not op boundaries) legitimately
                    // exposes the just-created empty file; only *content*
                    // tears are violations.
                    let created_empty = data.is_empty() && !versions[0].is_empty();
                    if shadow.create_once.contains(path) && data != &versions[0] && !created_empty {
                        let expected = &versions[0];
                        let detail = if data.len() != expected.len() {
                            format!(
                                "{path}: torn create — visible with {} bytes, the only version \
                                 ever written has {}",
                                data.len(),
                                expected.len()
                            )
                        } else {
                            let off = data
                                .iter()
                                .zip(expected.iter())
                                .position(|(a, b)| a != b)
                                .unwrap_or(0);
                            format!(
                                "{path}: torn create — {} bytes visible but content diverges \
                                 from the only version ever written at byte {off}",
                                data.len()
                            )
                        };
                        out.push(viol(OracleKind::Atomicity, detail));
                    }
                }
            },
            TreeNode::Symlink(_) => {}
        }
    }

    // (d) Idempotence: a second mount of the recovered medium changes
    // nothing user-visible.
    let rlog2 = WriteLog::new();
    match fs.mount_crash(
        CrashRecorder::with_log(post.snapshot(), rlog2),
        FsEnv::new(),
    ) {
        Err(e) => out.push(viol(
            OracleKind::Idempotence,
            format!("second recovery mount failed: {e:?}"),
        )),
        Ok(mounted) => {
            let mut v2 = Vfs::new(mounted);
            match walk_tree(&mut v2) {
                Err(e) => out.push(viol(
                    OracleKind::Idempotence,
                    format!("second recovery walk failed: {e}"),
                )),
                Ok(tree2) => {
                    if tree2 != tree {
                        let diff: Vec<&String> = tree
                            .keys()
                            .chain(tree2.keys())
                            .filter(|p| tree.get(*p) != tree2.get(*p))
                            .take(4)
                            .collect();
                        out.push(viol(
                            OracleKind::Idempotence,
                            format!("second recovery changed the tree at {diff:?}"),
                        ));
                    }
                }
            }
            let _ = v2.umount();
        }
    }

    out
}

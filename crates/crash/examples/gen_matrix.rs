//! Run the generated (ACE-style) crash campaign and print the per-FS
//! matrix. Exploration / debugging aid; the test suite encodes the
//! expected outcome.
//!
//! ```text
//! gen_matrix [seq2|seq3] [fs-filter] [--verbose]
//! ```

use std::time::Instant;

use iron_crash::{generate_workloads, run_generated_campaign, CrashCampaignOptions, GenOptions};
use iron_fingerprint::{Ext3Adapter, FsUnderTest, JfsAdapter, NtfsAdapter, ReiserAdapter};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = if args.iter().any(|a| a == "seq3") {
        GenOptions::seq3()
    } else {
        GenOptions::seq2()
    };
    let verbose = args.iter().any(|a| a == "--verbose");
    let filter = args
        .iter()
        .find(|a| *a != "seq2" && *a != "seq3" && *a != "--verbose")
        .cloned();

    let workloads = generate_workloads(&opts);
    println!("generated {} workloads", workloads.len());

    let adapters: Vec<Box<dyn FsUnderTest>> = vec![
        Box::new(Ext3Adapter::stock()),
        Box::new(Ext3Adapter::ixt3()),
        Box::new(Ext3Adapter::stock().pipelined()),
        Box::new(Ext3Adapter::ixt3().pipelined()),
        Box::new(ReiserAdapter),
        Box::new(JfsAdapter),
        Box::new(NtfsAdapter),
    ];
    let copts = CrashCampaignOptions::default();
    for a in &adapters {
        if let Some(f) = &filter {
            if !a.name().contains(f.as_str()) {
                continue;
            }
        }
        let t0 = Instant::now();
        let r = run_generated_campaign(a.as_ref(), &workloads, &copts);
        let prefix = r
            .violations
            .iter()
            .filter(|v| v.image.subset.is_empty())
            .count();
        println!(
            "{:16} workloads={:5} images={:6} dirty={:5} violations={:6} pure-prefix={:4} by_oracle={:?} ({:.1}s)",
            r.fs,
            r.workloads_run,
            r.images_checked,
            r.dirty_workloads,
            r.violations.len(),
            prefix,
            r.by_oracle(),
            t0.elapsed().as_secs_f64()
        );
        if prefix > 0 {
            for v in r
                .violations
                .iter()
                .filter(|v| v.image.subset.is_empty())
                .take(6)
            {
                println!("    PREFIX {v}");
            }
        }
        if verbose {
            for v in &r.violations {
                println!("    {v}");
            }
        } else {
            // One sample violation per (workload-suffix, oracle) class.
            let mut seen = std::collections::BTreeSet::new();
            for v in &r.violations {
                let class = (
                    v.workload.rsplit('-').next().unwrap_or("").to_string(),
                    v.oracle,
                );
                if seen.insert(class) {
                    println!("    e.g. {v}");
                }
            }
        }
    }
}

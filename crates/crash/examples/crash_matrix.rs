//! Run the full crash matrix and print every violation. Exploration /
//! debugging aid; the test suite encodes the expected outcome.

use iron_crash::{run_crash_campaign, standard_workloads, CrashCampaignOptions};
use iron_fingerprint::{Ext3Adapter, FsUnderTest, JfsAdapter, ReiserAdapter};

fn main() {
    let adapters: Vec<Box<dyn FsUnderTest>> = vec![
        Box::new(Ext3Adapter::stock()),
        Box::new(Ext3Adapter::ixt3()),
        Box::new(ReiserAdapter),
        Box::new(JfsAdapter),
    ];
    let opts = CrashCampaignOptions::default();
    for a in &adapters {
        for w in &standard_workloads() {
            let r = run_crash_campaign(a.as_ref(), w, &opts);
            println!(
                "{:8} {:16} epochs={:3} writes={:4} flushes={} images={:3} violations={}",
                r.fs,
                r.workload,
                r.epochs,
                r.writes_recorded,
                r.flushes,
                r.images_checked,
                r.violations.len()
            );
            for v in &r.violations {
                println!("    {v}");
            }
        }
    }
}

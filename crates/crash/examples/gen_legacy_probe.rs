//! Sensitivity probe: does the generated family catch the known legacy
//! bug knobs? (Exploration aid; `tests/generated.rs` pins the outcome.)

use iron_crash::{generate_workloads, run_generated_campaign, CrashCampaignOptions, GenOptions};
use iron_fingerprint::{Ext3Adapter, FsUnderTest};

fn main() {
    let seq3 = std::env::args().any(|a| a == "seq3");
    let wl = generate_workloads(&if seq3 {
        GenOptions::seq3()
    } else {
        GenOptions::seq2()
    });
    let opts = CrashCampaignOptions::default();
    let knobs: Vec<(&str, Box<dyn FsUnderTest>)> = vec![
        (
            "legacy_journal_bugs",
            Box::new(Ext3Adapter::stock().with_legacy_journal_bugs()),
        ),
        (
            "legacy_group_commit",
            Box::new(
                Ext3Adapter::stock()
                    .pipelined()
                    .with_legacy_group_commit_bug(),
            ),
        ),
    ];
    for (label, fs) in &knobs {
        let r = run_generated_campaign(fs.as_ref(), &wl, &opts);
        let prefix_hits = r
            .violations
            .iter()
            .filter(|v| v.image.subset.is_empty())
            .count();
        println!(
            "{label}: violations={} pure-prefix={} dirty={}",
            r.violations.len(),
            prefix_hits,
            r.dirty_workloads
        );
        for v in r
            .violations
            .iter()
            .filter(|v| v.image.subset.is_empty())
            .take(4)
        {
            println!("    {v}");
        }
    }
}

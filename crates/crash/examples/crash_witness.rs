//! Replay and explain one violation witness from the crash matrix:
//!
//! ```text
//! crash_witness <ext3|ixt3|reiser|jfs> <workload-index> <image-index>
//! ```
//!
//! Prints the recorded flush marks, every write with a `+` mark when the
//! chosen image includes it, the recovery mount's kernel log, the
//! recovered tree with per-file content verdicts against the shadow
//! model, and the post-recovery fsck issues — everything needed to
//! diagnose a `[fs/workload] image N (cut epoch K, subset [...])` line
//! from `crash_matrix` or a failing oracle test.

use iron_blockdev::{CrashRecorder, WriteLog};
use iron_crash::{
    apply_all, enumerate_images, materialize, run_workload, standard_workloads, walk_tree,
    EnumOptions, TreeNode,
};
use iron_fingerprint::{Ext3Adapter, FsUnderTest, JfsAdapter, ReiserAdapter};
use iron_vfs::{FsEnv, Vfs};

fn main() {
    let mut args = std::env::args().skip(1);
    let fsname = args.next().unwrap();
    let wli: usize = args.next().unwrap().parse().unwrap();
    let idx: usize = args.next().unwrap().parse().unwrap();
    let fs: Box<dyn FsUnderTest> = match fsname.as_str() {
        "ext3" => Box::new(Ext3Adapter::stock()),
        "ixt3" => Box::new(Ext3Adapter::ixt3()),
        "reiser" => Box::new(ReiserAdapter),
        "jfs" => Box::new(JfsAdapter),
        other => panic!("unknown fs {other}"),
    };
    let fs = fs.as_ref();
    let workloads = standard_workloads();
    let w = &workloads[wli];
    let base = fs.golden(false);
    let log = WriteLog::new();
    let shadow = {
        let mounted = fs
            .mount_crash(
                CrashRecorder::with_log(base.snapshot(), log.clone()),
                FsEnv::new(),
            )
            .unwrap();
        let mut v = Vfs::new(mounted);
        run_workload(&mut v, w, &log).unwrap()
    };
    let snap = log.snapshot();
    eprintln!("flush marks: {:?}", snap.flush_marks);
    let images = enumerate_images(&snap, &EnumOptions::default());
    let spec = &images[idx];
    eprintln!("spec: cut={} subset={:?}", spec.cut_epoch, spec.subset);
    for r in &snap.records {
        let inc = r.epoch < spec.cut_epoch
            || (r.epoch == spec.cut_epoch && spec.subset.binary_search(&r.seq).is_ok());
        eprintln!(
            "  {} epoch {} seq {:3} addr {:4} tag {:?}",
            if inc { "+" } else { " " },
            r.epoch,
            r.seq,
            r.addr.0,
            r.tag
        );
    }
    let disk = materialize(&base, &snap, spec);
    let rlog = WriteLog::new();
    let env = FsEnv::new();
    eprintln!("mounting...");
    let mounted = fs.mount_crash(CrashRecorder::with_log(disk, rlog.clone()), env.clone());
    for e in env.klog.entries() {
        eprintln!("  klog: {e:?}");
    }
    let mounted = match mounted {
        Err(e) => {
            eprintln!("mount failed: {e:?}");
            return;
        }
        Ok(m) => m,
    };
    let mut v = Vfs::new(mounted);
    let tree = walk_tree(&mut v);
    match &tree {
        Err(e) => eprintln!("walk error: {e}"),
        Ok(t) => {
            for (p, n) in t {
                match n {
                    TreeNode::File(d) => {
                        let vs = shadow.versions.get(p);
                        let tag = match vs {
                            Some(vs) if vs.iter().any(|v| v == d) => "matches a version",
                            Some(vs) => {
                                let exp = &vs[vs.len() - 1];
                                let diff = d
                                    .iter()
                                    .zip(exp.iter())
                                    .position(|(a, b)| a != b)
                                    .map(|o| format!("first diff at byte {o}"))
                                    .unwrap_or_else(|| "no common-prefix diff".into());
                                eprintln!("  MISMATCH {p}: {diff}");
                                "MISMATCH"
                            }
                            None => "not a workload file",
                        };
                        eprintln!("  {p}: {} bytes ({tag})", d.len());
                    }
                    _ => eprintln!("  {p}: {n:?}"),
                }
            }
        }
    }
    let u = v.umount();
    eprintln!("unmount: {u:?}");
    for e in env.klog.entries() {
        eprintln!("  klog: {e:?}");
    }
    let post = apply_all(materialize(&base, &snap, spec), &rlog.snapshot());
    if let Some(issues) = fs.fsck_issues(&post) {
        eprintln!("fsck issues: {issues:?}");
    }
}

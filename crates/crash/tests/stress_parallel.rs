//! Stress lane (`cargo test -- --ignored`, CI's scheduled/opt-in job):
//! the crash-enumeration campaign's parallel==sequential property at
//! elevated thread counts, across every workload and two file systems.

use iron_crash::{
    batch_workloads, run_crash_campaign, standard_workloads, CrashCampaignOptions, EnumOptions,
};
use iron_fingerprint::{Ext3Adapter, FsUnderTest, JfsAdapter};

fn stress_threads() -> usize {
    std::env::var("IRON_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16)
}

fn assert_width_invariant(fs: &dyn FsUnderTest) {
    let threads = stress_threads();
    for w in standard_workloads().iter().chain(&batch_workloads()) {
        let sequential = run_crash_campaign(
            fs,
            w,
            &CrashCampaignOptions {
                enumeration: EnumOptions::default(),
                threads: 1,
            },
        );
        let parallel = run_crash_campaign(
            fs,
            w,
            &CrashCampaignOptions {
                enumeration: EnumOptions::default(),
                threads,
            },
        );
        assert_eq!(
            sequential, parallel,
            "{}: crash report diverged at t={threads}",
            w.name
        );
        assert!(sequential.images_checked > 0, "{}: no images", w.name);
    }
}

#[test]
#[ignore = "stress lane; run with --ignored (IRON_TEST_THREADS)"]
fn ext3_crash_reports_are_identical_at_elevated_threads() {
    assert_width_invariant(&Ext3Adapter::stock());
}

#[test]
#[ignore = "stress lane; run with --ignored (IRON_TEST_THREADS)"]
fn jfs_crash_reports_are_identical_at_elevated_threads() {
    assert_width_invariant(&JfsAdapter);
}

#[test]
#[ignore = "stress lane; run with --ignored (IRON_TEST_THREADS)"]
fn pipelined_ixt3_crash_reports_are_identical_at_elevated_threads() {
    assert_width_invariant(&Ext3Adapter::ixt3().pipelined());
}

//! The generated (ACE-style) crash campaign, in the default test tier.
//!
//! Three layers of guarantee:
//!
//! 1. **The generator is sound**: every generated sequence replays
//!    without error on `RamFs` and lands exactly on the shadow model's
//!    final tree (the legality pruner and the shadow model agree with a
//!    real VFS), and generation is a pure function — bit-identical
//!    across runs and across threads.
//! 2. **The seq-2 family recovers per the matrix**: ixt3 (default and
//!    pipelined) passes every oracle on every generated crash image;
//!    the commodity models exhibit *only* their known hazard classes.
//! 3. **Reports are deterministic**: the campaign report is
//!    bit-identical at 1/2/4/8 worker threads.
//!
//! The full seq-3 family runs in the `IRON_STRESS=1` lane
//! (`--ignored`).

use std::collections::BTreeMap;

use iron_blockdev::WriteLog;
use iron_crash::{
    generate_workloads, run_generated_campaign, run_workload, walk_tree, CrashCampaignOptions,
    CrashOp, CrashWorkload, GenOptions, GeneratedCampaignReport, OracleKind, TreeNode,
};
use iron_fingerprint::{Ext3Adapter, FsUnderTest, JfsAdapter, NtfsAdapter, ReiserAdapter};
use iron_vfs::ramfs::RamFs;
use iron_vfs::{SpecificFs, Vfs};

// ======================================================================
// Generator soundness
// ======================================================================

#[test]
fn generation_is_pure_and_bounded() {
    let seq2 = generate_workloads(&GenOptions::seq2());
    let seq3 = generate_workloads(&GenOptions::seq3());

    // Bit-identical across runs...
    assert_eq!(seq2, generate_workloads(&GenOptions::seq2()));
    assert_eq!(seq3, generate_workloads(&GenOptions::seq3()));
    // ...and across threads (generation is a pure function; nothing in it
    // may depend on scheduling).
    let handles: Vec<_> = (0..4)
        .map(|_| std::thread::spawn(|| generate_workloads(&GenOptions::seq3())))
        .collect();
    for h in handles {
        assert_eq!(h.join().expect("generator thread"), seq3);
    }

    // The family size is pinned exactly: it may only change with the
    // vocabulary, the namespace, or the pruning rules — all of which are
    // semantic changes this test forces to be deliberate.
    assert_eq!(seq2.len(), 39, "seq-2 family size");
    assert_eq!(seq3.len(), 369, "seq-2+3 family size");

    // Names are unique and are complete replay recipes.
    let names: std::collections::BTreeSet<&str> = seq3.iter().map(|w| w.name.as_ref()).collect();
    assert_eq!(names.len(), seq3.len(), "workload names collide");

    // The seq-2 family is a strict subset of the seq-3 family.
    for w in &seq2 {
        assert!(seq3.contains(w), "{} missing from the seq-3 family", w.name);
    }
}

/// Replay every generated sequence (the full seq-3 family) on `RamFs`
/// and require the observed final tree to equal the shadow model's. This
/// pins three things at once: every emitted sequence is legal (no op
/// errors), the legality simulator used for pruning agrees with a real
/// VFS, and the shadow model's final-tree bookkeeping (including dir
/// renames moving children and truncate resizing content) is exact.
#[test]
fn every_generated_sequence_replays_exactly_on_ramfs() {
    let log = WriteLog::new();
    for w in generate_workloads(&GenOptions::seq3()) {
        let mut v: Vfs<Box<dyn SpecificFs>> = Vfs::new(Box::new(RamFs::new()));
        let shadow = run_workload(&mut v, &w, &log)
            .unwrap_or_else(|e| panic!("{}: illegal op escaped the pruner: {e:?}", w.name));

        let mut expected: BTreeMap<String, TreeNode> = BTreeMap::new();
        for d in &shadow.final_dirs {
            expected.insert(d.clone(), TreeNode::Dir);
        }
        for (f, content) in &shadow.final_files {
            expected.insert(f.clone(), TreeNode::File(content.clone()));
        }

        let observed: BTreeMap<String, TreeNode> = walk_tree(&mut v)
            .unwrap_or_else(|e| panic!("{}: walk failed: {e}", w.name))
            .into_iter()
            .filter(|(p, _)| p == "/crash" || p.starts_with("/crash/"))
            .collect();

        assert_eq!(
            observed, expected,
            "{}: RamFs replay diverges from the shadow model",
            w.name
        );
    }
}

/// The `create_once` soundness fix: a path removed with `rmdir` and
/// recreated as a written-once *file* reuses a namespace entry and must
/// NOT qualify for the strict create-atomicity oracle — recovery may
/// legitimately resurface the old directory.
#[test]
fn rmdir_then_recreate_disqualifies_create_once() {
    let w = CrashWorkload::new(
        "rmdir-reuse",
        vec![
            CrashOp::mkdir("/crash"),
            CrashOp::mkdir("/crash/x"),
            CrashOp::rmdir("/crash/x"),
            CrashOp::write("/crash/x", 100, 0x5A),
            CrashOp::Sync,
        ],
    );
    let mut v: Vfs<Box<dyn SpecificFs>> = Vfs::new(Box::new(RamFs::new()));
    let shadow = run_workload(&mut v, &w, &WriteLog::new()).expect("script runs");
    assert!(
        shadow.ever_dirs.contains("/crash/x"),
        "the path was once a directory"
    );
    assert!(
        shadow.versions.get("/crash/x").map(Vec::len) == Some(1),
        "the file content was written exactly once"
    );
    assert!(
        !shadow.create_once.contains("/crash/x"),
        "a namespace-reused path must not be create-once"
    );
}

// ======================================================================
// The seq-2 campaign matrix
// ======================================================================

fn seq2_campaign(fs: &dyn FsUnderTest) -> GeneratedCampaignReport {
    run_generated_campaign(
        fs,
        &generate_workloads(&GenOptions::seq2()),
        &CrashCampaignOptions::default(),
    )
}

fn dump(r: &GeneratedCampaignReport) -> String {
    r.violations
        .iter()
        .map(|v| format!("  {v}\n"))
        .collect::<String>()
}

fn assert_classes(r: &GeneratedCampaignReport, allowed: &[OracleKind]) {
    for v in &r.violations {
        assert!(
            allowed.contains(&v.oracle),
            "{}: unexpected oracle class: {v}",
            r.fs
        );
    }
    // Pure epoch-prefix images (every barrier honored, no in-epoch
    // tearing) must recover cleanly on every model — anything else is a
    // plain bug, not a documented hazard (EXPERIMENTS.md).
    for v in &r.violations {
        assert!(
            !v.image.subset.is_empty(),
            "{}: pure-prefix image violated an oracle: {v}",
            r.fs
        );
    }
}

#[test]
fn ixt3_recovers_every_generated_crash_image() {
    for fs in [Ext3Adapter::ixt3(), Ext3Adapter::ixt3().pipelined()] {
        let r = seq2_campaign(&fs);
        assert!(r.images_checked > 500, "{}: too few images", r.fs);
        assert!(
            r.is_clean(),
            "{} must recover every generated crash image; got:\n{}",
            r.fs,
            dump(&r)
        );
    }
}

#[test]
fn stock_ext3_generated_family_shows_only_the_known_hazards() {
    let r = seq2_campaign(&Ext3Adapter::stock());
    assert_classes(&r, &[OracleKind::FsckClean, OracleKind::Atomicity]);
    assert!(
        !r.violations.is_empty(),
        "the generated family must still expose stock ext3's checkpoint hazard"
    );
    // The pipelined profile batches the whole two-op script into one
    // open transaction, so every crash image is either pre-commit
    // (empty, atomic) or post-checkpoint: group commit *is*
    // crash-atomicity for short bursts. Pinned clean — this is also one
    // half of the legacy-group-commit discriminator below.
    let rp = seq2_campaign(&Ext3Adapter::stock().pipelined());
    assert!(
        rp.is_clean(),
        "pipelined stock ext3 must recover every generated seq-2 image; got:\n{}",
        dump(&rp)
    );
}

#[test]
fn reiser_generated_family_shows_only_the_checkpoint_hazard() {
    let r = seq2_campaign(&ReiserAdapter);
    assert_classes(&r, &[OracleKind::FsckClean]);
    assert!(
        !r.violations.is_empty(),
        "the generated family must still expose ReiserFS's checkpoint hazard"
    );
}

#[test]
fn jfs_generated_family_shows_torn_creates_and_fsck_dirt() {
    let r = seq2_campaign(&JfsAdapter);
    assert_classes(&r, &[OracleKind::FsckClean, OracleKind::Atomicity]);
    assert!(
        r.violations
            .iter()
            .any(|v| v.detail.contains("torn create")),
        "JFS (no commit marker) must show torn creates; got:\n{}",
        dump(&r)
    );
}

#[test]
fn ntfs_generated_family_fails_only_for_want_of_recovery() {
    // The NTFS model has no journal recovery (the paper's NTFS analysis
    // is explicitly partial), so crash images surface as unmountable
    // volumes or torn creates — never durability or idempotence faults.
    let r = seq2_campaign(&NtfsAdapter);
    assert_classes(&r, &[OracleKind::FsckClean, OracleKind::Atomicity]);
    assert!(
        !r.violations.is_empty(),
        "a model with no recovery cannot pass a crash campaign"
    );
}

// ======================================================================
// Sensitivity: the generated family rediscovers seeded legacy bugs
// ======================================================================

/// The PR-8 group-commit bug (journal data deferred past its commit
/// block's barrier) — the hand-written batch family caught it; the
/// generated seq-2 family catches it too, sharply: the fixed pipelined
/// profile is clean on every generated image, the legacy knob is not.
#[test]
fn generated_family_catches_the_legacy_group_commit_bug() {
    let buggy = seq2_campaign(
        &Ext3Adapter::stock()
            .pipelined()
            .with_legacy_group_commit_bug(),
    );
    assert!(
        !buggy.is_clean(),
        "the generated family must expose the legacy group-commit bug"
    );
    // `stock_ext3_generated_family_shows_only_the_known_hazards` pins the
    // fixed pipelined profile clean; together the pair is the
    // discriminator.
}

/// The minimized witness the seq-3 family produced for the PR-1
/// revoke/forget bugs: `mkdir d0; rmdir d0; write f0` with a trailing
/// sync — the freed directory block is reallocated as file data and, with
/// the legacy knob on, clobbered by stale journal replay even on a
/// fully-durable pure-prefix image. The hand-written `free_reuse`
/// workload needed 12 ops to say the same thing; the generator found the
/// 3-op program. With the knob off, every pure-prefix image of the same
/// program recovers cleanly.
#[test]
fn minimized_witness_rmdir_reuse_replays_the_revoke_hazard() {
    let w = iron_crash::find_generated(&GenOptions::seq3(), "g3#00.12.02-trail")
        .expect("the witness workload must stay in the generated family");
    let opts = CrashCampaignOptions::default();

    let buggy = run_generated_campaign(
        &Ext3Adapter::stock().with_legacy_journal_bugs(),
        std::slice::from_ref(&w),
        &opts,
    );
    assert!(
        buggy.violations.iter().any(|v| v.image.subset.is_empty()),
        "legacy revoke/forget bugs must corrupt a pure-prefix image of the \
         minimal free-reuse program; got:\n{}",
        dump(&buggy)
    );

    let fixed = run_generated_campaign(&Ext3Adapter::stock(), std::slice::from_ref(&w), &opts);
    assert!(
        fixed.violations.iter().all(|v| !v.image.subset.is_empty()),
        "fixed ext3 must recover every pure-prefix image of the witness; got:\n{}",
        dump(&fixed)
    );
}

#[test]
fn generated_campaign_report_is_bit_identical_at_any_width() {
    let wl = generate_workloads(&GenOptions::seq2());
    let fs = Ext3Adapter::stock();
    let reports: Vec<GeneratedCampaignReport> = [1usize, 2, 4, 8]
        .iter()
        .map(|&threads| {
            run_generated_campaign(
                &fs,
                &wl,
                &CrashCampaignOptions {
                    threads,
                    ..CrashCampaignOptions::default()
                },
            )
        })
        .collect();
    for r in &reports[1..] {
        assert_eq!(
            *r, reports[0],
            "campaign report must not depend on worker count"
        );
    }
}

// ======================================================================
// The full seq-3 family — stress lane (IRON_STRESS=1 runs --ignored)
// ======================================================================

fn seq3_campaign(fs: &dyn FsUnderTest) -> GeneratedCampaignReport {
    run_generated_campaign(
        fs,
        &generate_workloads(&GenOptions::seq3()),
        &CrashCampaignOptions::default(),
    )
}

#[test]
#[ignore = "full seq-3 campaign; run via IRON_STRESS=1 ./ci.sh"]
fn seq3_ixt3_recovers_every_crash_image() {
    for fs in [Ext3Adapter::ixt3(), Ext3Adapter::ixt3().pipelined()] {
        let r = seq3_campaign(&fs);
        assert!(
            r.is_clean(),
            "{} must recover every seq-3 crash image; got:\n{}",
            r.fs,
            dump(&r)
        );
    }
}

#[test]
#[ignore = "full seq-3 campaign; run via IRON_STRESS=1 ./ci.sh"]
fn seq3_stock_ext3_shows_only_the_known_hazards() {
    for fs in [Ext3Adapter::stock(), Ext3Adapter::stock().pipelined()] {
        let r = seq3_campaign(&fs);
        assert_classes(&r, &[OracleKind::FsckClean, OracleKind::Atomicity]);
    }
}

#[test]
#[ignore = "full seq-3 campaign; run via IRON_STRESS=1 ./ci.sh"]
fn seq3_reiser_shows_only_the_checkpoint_hazard() {
    assert_classes(&seq3_campaign(&ReiserAdapter), &[OracleKind::FsckClean]);
}

#[test]
#[ignore = "full seq-3 campaign; run via IRON_STRESS=1 ./ci.sh"]
fn seq3_jfs_shows_only_the_known_hazards() {
    assert_classes(
        &seq3_campaign(&JfsAdapter),
        &[OracleKind::FsckClean, OracleKind::Atomicity],
    );
}

#[test]
#[ignore = "full seq-3 campaign; run via IRON_STRESS=1 ./ci.sh"]
fn seq3_ntfs_fails_only_for_want_of_recovery() {
    assert_classes(
        &seq3_campaign(&NtfsAdapter),
        &[OracleKind::FsckClean, OracleKind::Atomicity],
    );
}

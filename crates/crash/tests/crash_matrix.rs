//! The crash-state oracle matrix, in the default test tier.
//!
//! Every cell here is a full campaign: record a workload over a golden
//! image, enumerate the bounded crash-image set, recover each image and
//! run all four durability oracles. The expectations encode the matrix
//! `EXPERIMENTS.md` documents:
//!
//! * ixt3 passes every oracle on every workload;
//! * stock ext3 and ReiserFS exhibit the journal-superblock-clean /
//!   partial-checkpoint hazard (fsck-clean violations, occasionally
//!   atomicity phantoms from replayed-then-torn checkpoints);
//! * JFS (metadata-only journaling, no ordered data, no commit marker)
//!   exhibits torn creates and partial log-record application.
//!
//! If a violation class *disappears* these tests fail too: the harness
//! proving the hazards exist is the regression guard for the harness
//! itself.

use iron_blockdev::{CrashRecorder, WriteLog};
use iron_crash::{
    check_image, enumerate_images, run_crash_campaign, run_workload, standard_workloads, walk_tree,
    CrashCampaignOptions, CrashReport, EnumOptions, OracleKind,
};
use iron_fingerprint::{Ext3Adapter, FsUnderTest, JfsAdapter, ReiserAdapter};
use iron_vfs::{FsEnv, Vfs};

fn campaign(fs: &dyn FsUnderTest, wl_index: usize, threads: usize) -> CrashReport {
    run_crash_campaign(
        fs,
        &standard_workloads()[wl_index],
        &CrashCampaignOptions {
            enumeration: EnumOptions::default(),
            threads,
        },
    )
}

fn dump(r: &CrashReport) -> String {
    r.violations
        .iter()
        .map(|v| format!("  {v}\n"))
        .collect::<String>()
}

#[test]
fn ixt3_passes_all_oracles_on_every_workload() {
    let fs = Ext3Adapter::ixt3();
    for (i, w) in standard_workloads().iter().enumerate() {
        let r = campaign(&fs, i, 0);
        assert!(r.images_checked > 0, "{}: no images enumerated", w.name);
        assert!(
            r.is_clean(),
            "ixt3/{} must recover every crash image cleanly; got:\n{}",
            w.name,
            dump(&r)
        );
    }
}

#[test]
fn stock_ext3_shows_the_checkpoint_hazard_and_nothing_else() {
    let fs = Ext3Adapter::stock();
    let mut total = 0;
    for (i, w) in standard_workloads().iter().enumerate() {
        let r = campaign(&fs, i, 0);
        total += r.violations.len();
        for v in &r.violations {
            assert!(
                matches!(v.oracle, OracleKind::FsckClean | OracleKind::Atomicity),
                "ext3/{}: unexpected oracle class: {v}",
                w.name
            );
        }
    }
    // The hazard is real: checkpoint home writes and the js-clean marker
    // share an epoch, so some sampled in-epoch subsets leave the journal
    // claiming "nothing to replay" over a half-applied checkpoint.
    assert!(
        total > 0,
        "the enumerator must detect stock ext3's checkpoint hazard"
    );
}

#[test]
fn reiser_shows_only_the_checkpoint_hazard() {
    let fs = ReiserAdapter;
    let mut total = 0;
    for (i, w) in standard_workloads().iter().enumerate() {
        let r = campaign(&fs, i, 0);
        total += r.violations.len();
        for v in &r.violations {
            assert!(
                matches!(v.oracle, OracleKind::FsckClean),
                "ReiserFS/{}: unexpected oracle class: {v}",
                w.name
            );
        }
    }
    assert!(
        total > 0,
        "the enumerator must detect ReiserFS's checkpoint hazard"
    );
}

#[test]
fn jfs_shows_torn_creates_and_partial_log_application() {
    let fs = JfsAdapter;
    let mut torn = 0;
    let mut total = 0;
    for (i, w) in standard_workloads().iter().enumerate() {
        let r = campaign(&fs, i, 0);
        total += r.violations.len();
        for v in &r.violations {
            assert!(
                matches!(v.oracle, OracleKind::FsckClean | OracleKind::Atomicity),
                "JFS/{}: unexpected oracle class: {v}",
                w.name
            );
            if v.detail.contains("torn create") {
                torn += 1;
            }
        }
    }
    assert!(total > 0, "JFS crash windows must be detected");
    assert!(
        torn > 0,
        "JFS (no ordered data, no commit marker) must show torn creates"
    );
}

#[test]
fn reports_are_bit_identical_at_any_thread_count() {
    // reuse_dir on stock ext3 has violations — the strongest signal that
    // merge order, not just counts, is deterministic.
    let fs = Ext3Adapter::stock();
    let baseline = campaign(&fs, 2, 1);
    assert!(!baseline.is_clean(), "baseline should carry violations");
    for threads in [2usize, 4, 8] {
        let r = campaign(&fs, 2, threads);
        assert_eq!(
            r, baseline,
            "threads={threads} report must be bit-identical to sequential"
        );
    }
}

#[test]
fn same_seed_reproduces_the_same_report() {
    let fs = Ext3Adapter::stock();
    let a = campaign(&fs, 0, 0);
    let b = campaign(&fs, 0, 0);
    assert_eq!(a, b, "same (fs, workload, seed) must reproduce exactly");
}

/// A violation names `(cut epoch, write subset, oracle)`; this test
/// replays one from scratch — fresh golden image, fresh recording, fresh
/// enumeration — and demands the identical violations fall out.
#[test]
fn violation_witnesses_replay_from_scratch() {
    let fs = Ext3Adapter::stock();
    let workloads = standard_workloads();
    let w = &workloads[2]; // reuse_dir
    let report = campaign(&fs, 2, 0);
    let witness = report
        .violations
        .first()
        .expect("stock ext3 reuse_dir carries violations")
        .clone();

    // Independent re-recording.
    let base = fs.golden(false);
    let golden_tree = {
        let mounted = fs
            .mount_crash(CrashRecorder::new(base.snapshot()), FsEnv::new())
            .unwrap();
        walk_tree(&mut Vfs::new(mounted)).unwrap()
    };
    let log = WriteLog::new();
    let shadow = {
        let mounted = fs
            .mount_crash(
                CrashRecorder::with_log(base.snapshot(), log.clone()),
                FsEnv::new(),
            )
            .unwrap();
        run_workload(&mut Vfs::new(mounted), w, &log).unwrap()
    };
    let snap = log.snapshot();
    let images = enumerate_images(&snap, &EnumOptions::default());
    let spec = &images[witness.image.index];
    assert_eq!(
        *spec, witness.image,
        "enumeration must regenerate the witness image spec verbatim"
    );

    let replayed = check_image(&fs, &w.name, &base, &snap, &shadow, &golden_tree, spec);
    let expected: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.image.index == witness.image.index)
        .cloned()
        .collect();
    assert_eq!(replayed, expected, "witness must replay identically");
}

/// Satellite: the enumerator regression-proves it would have caught the
/// two seed journaling bugs fixed in PR 1 (`legacy_journal_bugs`): with
/// the knob on, freed-and-reused blocks are clobbered on replay; with it
/// off the same configuration is clean.
#[test]
fn enumerator_catches_the_pr1_legacy_journal_bugs() {
    // free_reuse frees a directory block and reallocates it as file data
    // within one transaction — exactly the journal_forget hazard. With
    // the fix, every pure epoch-prefix image (no in-epoch tearing, the
    // drive honored every barrier) recovers perfectly; with the seed bugs
    // back in, the stale directory image lands on the reused data block.
    let stock = campaign(&Ext3Adapter::stock(), 3, 0);
    assert!(
        stock.violations.iter().all(|v| !v.image.subset.is_empty()),
        "fixed ext3 must be clean on all prefix images of free_reuse:\n{}",
        dump(&stock)
    );
    let legacy = campaign(&Ext3Adapter::stock().with_legacy_journal_bugs(), 3, 0);
    assert!(
        legacy.violations.iter().any(|v| v.image.subset.is_empty()),
        "the enumerator must flag the legacy revoke/forget bugs on the \
         block-reuse workload even without in-epoch tearing; got:\n{}",
        dump(&legacy)
    );
}

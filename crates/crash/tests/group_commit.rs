//! Crash-state enumeration over the batched (group-commit) journal path.
//!
//! The pipelined commit profile closes several running transactions into
//! one batch and commits them under a single descriptor chain, commit
//! block, and barrier pair. These campaigns prove that restructuring
//! changed the *timing* of the commit path, not its crash semantics:
//!
//! * ixt3 with the pipelined profile stays clean on all four oracles,
//!   over both the standard workloads and the batched-commit family;
//! * the enumerator still catches a deliberately broken batch — the
//!   `legacy_group_commit_bug` knob defers the batch's journal data
//!   until after its commit block, inside the same barrier epoch, so
//!   some in-epoch subsets show a validated commit over missing data;
//! * reports stay bit-identical at any worker-thread count.

use iron_blockdev::{CrashRecorder, WriteLog};
use iron_crash::{
    batch_workloads, run_crash_campaign, run_workload, standard_workloads, CrashCampaignOptions,
    CrashReport, EnumOptions, OracleKind,
};
use iron_ext3::{Ext3Fs, Ext3Options, IronConfig};
use iron_fingerprint::{Ext3Adapter, FsUnderTest};
use iron_vfs::{FsEnv, SpecificFs, Vfs};

fn campaign(fs: &dyn FsUnderTest, wl: &iron_crash::CrashWorkload) -> CrashReport {
    campaign_at(fs, wl, 0)
}

fn campaign_at(
    fs: &dyn FsUnderTest,
    wl: &iron_crash::CrashWorkload,
    threads: usize,
) -> CrashReport {
    run_crash_campaign(
        fs,
        wl,
        &CrashCampaignOptions {
            enumeration: EnumOptions::default(),
            threads,
        },
    )
}

fn dump(r: &CrashReport) -> String {
    r.violations
        .iter()
        .map(|v| format!("  {v}\n"))
        .collect::<String>()
}

/// ixt3 mounted with the pipelined profile (group commit + lagged
/// checkpointing) must recover every crash image cleanly — on the
/// standard suite *and* the batched-commit family.
#[test]
fn pipelined_ixt3_passes_all_oracles_on_every_workload() {
    let fs = Ext3Adapter::ixt3().pipelined();
    assert_eq!(fs.name(), "ixt3-pipelined");
    for w in standard_workloads().iter().chain(&batch_workloads()) {
        let r = campaign(&fs, w);
        assert!(r.images_checked > 0, "{}: no images enumerated", w.name);
        assert!(
            r.is_clean(),
            "ixt3-pipelined/{} must recover every crash image cleanly; got:\n{}",
            w.name,
            dump(&r)
        );
    }
}

/// The batched workloads really do batch. A merged batch is logged as
/// one unit — one descriptor chain, one commit block, one barrier pair —
/// so the observable is the *commit count*: two mounts run the same ops
/// with the same commit threshold, differing only in `group_commit`, and
/// the batched mount must close strictly fewer commit blocks (and issue
/// strictly fewer barriers) than the one-transaction-per-commit mount.
#[test]
fn pipelined_profile_actually_merges_transactions() {
    let base = Ext3Adapter::ixt3().pipelined().golden(false);
    let commits_and_barriers = |group_commit: usize| {
        let opts = Ext3Options {
            commit_threshold: 6,
            group_commit,
            checkpoint_lag: 48,
            ..Ext3Options::with_iron(IronConfig::full())
        };
        let log = WriteLog::new();
        let fs = Ext3Fs::mount(
            CrashRecorder::with_log(base.snapshot(), log.clone()),
            FsEnv::new(),
            opts,
        )
        .expect("mount");
        let mounted: Box<dyn SpecificFs> = Box::new(fs);
        run_workload(&mut Vfs::new(mounted), &batch_workloads()[0], &log).expect("workload");
        let snap = log.snapshot();
        let commits = snap
            .records
            .iter()
            .filter(|r| r.tag.0 == "j-commit")
            .count();
        (commits, snap.epoch_count())
    };
    let (unbatched, epochs_unbatched) = commits_and_barriers(1);
    let (batched, epochs_batched) = commits_and_barriers(4);
    assert!(batched > 0, "batched mount must commit");
    assert!(
        batched < unbatched,
        "group commit must merge transactions: {batched} commit blocks \
         batched vs {unbatched} unbatched"
    );
    assert!(
        epochs_batched < epochs_unbatched,
        "merging must also save barrier epochs: {epochs_batched} batched \
         vs {epochs_unbatched} unbatched"
    );
}

/// Stock ext3 on the pipelined profile shows the same violation classes
/// it always has (the checkpoint hazard) and nothing new: batching the
/// commit path introduces no additional oracle class.
#[test]
fn pipelined_stock_ext3_introduces_no_new_violation_class() {
    let fs = Ext3Adapter::stock().pipelined();
    assert_eq!(fs.name(), "ext3-pipelined");
    for w in standard_workloads().iter().chain(&batch_workloads()) {
        let r = campaign(&fs, w);
        for v in &r.violations {
            assert!(
                matches!(v.oracle, OracleKind::FsckClean | OracleKind::Atomicity),
                "ext3-pipelined/{}: unexpected oracle class: {v}",
                w.name
            );
        }
    }
}

/// Satellite knob: a deliberately broken batch — journal data written
/// *after* the batch's commit block within one barrier epoch — must be
/// caught. The reference configuration (stock ext3 plus `fix_bugs`, no
/// transactional checksum, so commit still uses the classic two-barrier
/// protocol) is clean on the batch workloads; flipping only the
/// group-commit bug makes in-epoch subsets validate a commit whose data
/// never landed, and the oracles flag it.
#[test]
fn enumerator_catches_a_deliberately_broken_batch() {
    let fixed = Ext3Adapter {
        iron: IronConfig {
            fix_bugs: true,
            ..IronConfig::off()
        },
        ..Ext3Adapter::stock()
    }
    .pipelined();
    let broken = Ext3Adapter {
        iron: IronConfig {
            fix_bugs: true,
            ..IronConfig::off()
        },
        ..Ext3Adapter::stock()
    }
    .with_legacy_group_commit_bug();
    assert_eq!(broken.name(), "ixt3-groupbug");

    let mut caught = 0;
    for w in &batch_workloads() {
        let ok = campaign(&fixed, w);
        assert!(
            ok.is_clean(),
            "fixed pipelined config must be clean on {}; got:\n{}",
            w.name,
            dump(&ok)
        );
        let bad = campaign(&broken, w);
        // The bug only tears *inside* the commit epoch, so every
        // violation must come from a sampled in-epoch subset — pure
        // epoch-prefix images (the drive honored every barrier) still
        // recover, exactly as a barrier-ordering bug should behave.
        assert!(
            bad.violations.iter().all(|v| !v.image.subset.is_empty()),
            "{}: group-commit bug must only show under in-epoch tearing:\n{}",
            w.name,
            dump(&bad)
        );
        caught += bad.violations.len();
    }
    assert!(
        caught > 0,
        "the enumerator must flag the commit-before-data batch bug on at \
         least one batched workload"
    );
}

/// Bit-identity of the batched campaigns at any worker width, using the
/// bugged configuration (it carries violations, so merge *order* is
/// tested, not just counts).
#[test]
fn batched_reports_are_bit_identical_at_any_thread_count() {
    let broken = Ext3Adapter {
        iron: IronConfig {
            fix_bugs: true,
            ..IronConfig::off()
        },
        ..Ext3Adapter::stock()
    }
    .with_legacy_group_commit_bug();
    let batch = batch_workloads();
    let baseline = campaign_at(&broken, &batch[0], 1);
    for threads in [2usize, 4, 8] {
        let r = campaign_at(&broken, &batch[0], threads);
        assert_eq!(
            r, baseline,
            "threads={threads} batched report must match sequential"
        );
    }
}

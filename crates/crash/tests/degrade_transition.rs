//! Crash-safety of the graceful read-only degradation transition.
//!
//! A sticky metadata write failure exhausts the policy's retry budget and
//! the chain degrades the mount to read-only (journal abort). This test
//! records the whole run — healthy prelude, the degradation itself, the
//! post-degradation read-only tail — and proves that **every** bounded
//! crash image cut across that history recovers to an fsck-clean,
//! walkable file system.

use iron_blockdev::{CrashRecorder, MemDisk, RawAccess, WriteLog};
use iron_core::recover::{Backoff, FailurePolicyTable, PolicyHandle, RecoveryAction};
use iron_core::{BlockAddr, BlockTag, Errno, FaultKind, IoKind};
use iron_crash::{apply_all, enumerate_images, materialize, walk_tree, EnumOptions};
use iron_ext3::{Ext3Fs, Ext3Options, Ext3Params, IronConfig};
use iron_faultinject::{FaultSpec, FaultTarget, FaultyDisk};
use iron_vfs::{FsEnv, MountState, SpecificFs, Vfs};

/// Metadata writes: one re-issue, then degrade to read-only.
fn degrade_policy() -> PolicyHandle {
    PolicyHandle::new(
        FailurePolicyTable::with_default(vec![RecoveryAction::Propagate]).rule(
            None,
            Some(IoKind::Write),
            None,
            vec![
                RecoveryAction::Retry {
                    budget: 1,
                    backoff: Backoff::none(),
                },
                RecoveryAction::DegradeReadOnly,
            ],
        ),
    )
}

fn opts() -> Ext3Options {
    Ext3Options {
        iron: IronConfig::full(),
        policy: degrade_policy(),
        ..Ext3Options::default()
    }
}

#[test]
fn every_crash_image_across_the_degradation_transition_recovers_clean() {
    // Golden base: mkfs only; everything else happens on the record.
    let mut base = MemDisk::for_tests(4096);
    let params = Ext3Params {
        mirror_metadata: true,
        ..Ext3Params::small()
    };
    Ext3Fs::<MemDisk>::mkfs(&mut base, params).unwrap();

    let log = WriteLog::new();
    let faulty = FaultyDisk::new(CrashRecorder::with_log(base.snapshot(), log.clone()));
    let ctl = faulty.controller();
    let env = FsEnv::new();
    let fs = Ext3Fs::mount(faulty, env.clone(), opts()).unwrap();
    let mut v = Vfs::new(fs);

    // Healthy prelude: durable files on both sides of a sync.
    v.write_file("/a", b"alpha").unwrap();
    v.write_file("/b", b"beta").unwrap();
    v.sync().unwrap();
    v.write_file("/c", b"gamma").unwrap();

    // Sticky metadata write failure: the retry budget exhausts during
    // checkpoint and the chain degrades the mount to read-only. The
    // fault layer sits ABOVE the recorder, so failed writes never reach
    // the recorded medium — exactly what a real disk would have seen.
    ctl.inject(FaultSpec::sticky(
        FaultKind::WriteError,
        FaultTarget::Tag(BlockTag("inode")),
    ));
    let _ = v.sync();
    assert_eq!(env.state(), MountState::ReadOnly, "degradation happened");
    // Post-degradation: reads served, writes refused.
    assert_eq!(v.read_file("/a").unwrap(), b"alpha");
    assert_eq!(
        v.write_file("/d", b"x").unwrap_err().errno(),
        Some(Errno::EROFS)
    );
    drop(v); // crash: no unmount

    // Enumerate every bounded crash image across the whole recording —
    // including the cuts that straddle the degradation transition.
    let snap = log.snapshot();
    let images = enumerate_images(&snap, &EnumOptions::default());
    assert!(images.len() > 4, "expected a non-trivial image set");
    for spec in &images {
        let img = materialize(&base, &snap, spec);

        // Recovery: a clean mount replays the journal; record its writes.
        let rlog = WriteLog::new();
        {
            let fs = Ext3Fs::mount(
                CrashRecorder::with_log(img.snapshot(), rlog.clone()),
                FsEnv::new(),
                opts(),
            )
            .expect("recovery mount");
            let boxed: Box<dyn SpecificFs> = Box::new(fs);
            walk_tree(&mut Vfs::new(boxed)).expect("post-recovery tree walk");
        }

        // Offline check of the post-recovery medium.
        let post = apply_all(img, &rlog.snapshot());
        let sb = iron_ext3::Superblock::decode(&post.peek(BlockAddr(0))).expect("valid superblock");
        let layout = iron_ext3::DiskLayout::compute(sb.params());
        let report = iron_ext3::fsck::check(&post, &layout);
        assert!(
            report.issues.is_empty(),
            "image {} (cut {}, subset {:?}) not fsck-clean: {:?}",
            spec.index,
            spec.cut_epoch,
            spec.subset,
            report.issues
        );
    }
}

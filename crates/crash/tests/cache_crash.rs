//! Crash semantics of the write-back buffer cache (satellite of the
//! crash-enumeration PR): a write-back cache may absorb writes and
//! barriers at will, but `flush` must destage everything before telling
//! the device to flush — so a crash at any flush boundary shows *exactly*
//! the logical state the caller had built up, no more and no less.
//!
//! The test drives a PRNG op mix (writes, barriers, flushes) through
//! `BufferCache` in write-back mode over a `CrashRecorder`, snapshots the
//! logical model at every flush, then materializes the epoch-prefix crash
//! image at each recorded flush mark and demands bit-exact equality over
//! the whole disk.

use std::collections::BTreeMap;

use iron_blockdev::{BlockDevice, BufferCache, CrashRecorder, MemDisk, RawAccess, WriteLog};
use iron_core::{Block, BlockAddr};
use iron_crash::{materialize, CrashImageSpec};
use iron_testkit::Rng;

const BLOCKS: u64 = 64;

#[test]
fn write_back_cache_preserves_every_flush_boundary() {
    let base = MemDisk::for_tests(BLOCKS);
    let log = WriteLog::new();
    let mut dev = BufferCache::write_back(CrashRecorder::with_log(base.snapshot(), log.clone()));

    // The logical state the caller believes in, and one frozen copy of it
    // per flush.
    let mut model: BTreeMap<u64, Block> = BTreeMap::new();
    let mut flushed_states: Vec<BTreeMap<u64, Block>> = Vec::new();

    let mut rng = Rng::from_seed(0xCACE_C4A5);
    for step in 0..400u64 {
        if rng.chance(1, 12) {
            dev.barrier().expect("barrier");
        } else if rng.chance(1, 18) {
            dev.flush().expect("flush");
            flushed_states.push(model.clone());
        } else {
            let addr = rng.below(BLOCKS);
            let b = Block::filled((step % 251) as u8 + 1);
            dev.write(BlockAddr(addr), &b).expect("write");
            model.insert(addr, b);
        }
    }
    dev.flush().expect("final flush");
    flushed_states.push(model.clone());

    let stats = dev.stats();
    assert!(
        stats.writes_absorbed > 0 && stats.barriers_absorbed > 0,
        "the cache must actually run in write-back mode for this test to \
         mean anything: {stats:?}"
    );

    let snap = log.snapshot();
    assert_eq!(
        snap.flush_marks.len(),
        flushed_states.len(),
        "every cache flush must reach the device as a flush"
    );

    for (i, expected) in flushed_states.iter().enumerate() {
        let cut = snap.flush_marks[i];
        let img = materialize(&base, &snap, &CrashImageSpec::prefix(cut));
        for addr in 0..BLOCKS {
            let want = expected.get(&addr).cloned().unwrap_or_else(Block::zeroed);
            assert_eq!(
                img.peek(BlockAddr(addr)),
                want,
                "flush {i} (cut epoch {cut}): block {addr} must hold exactly \
                 the pre-flush logical state"
            );
        }
    }
}

/// Barriers seal epochs: an epoch-prefix crash image can never contain a
/// later epoch's write without every earlier epoch in full. The recorder
/// guarantees the epoch numbering; this checks the write-back cache's
/// destage preserves it (destage emits an inner barrier between absorbed
/// epochs rather than flattening them into one).
#[test]
fn destage_keeps_absorbed_epochs_ordered() {
    let base = MemDisk::for_tests(8);
    let log = WriteLog::new();
    let mut dev = BufferCache::write_back(CrashRecorder::with_log(base.snapshot(), log.clone()));

    // Three absorbed epochs touching the same block, then one flush.
    for (epoch, val) in [1u8, 2, 3].iter().enumerate() {
        dev.write(BlockAddr(2), &Block::filled(*val))
            .expect("write");
        dev.write(BlockAddr(epoch as u64 + 4), &Block::filled(*val))
            .expect("write");
        dev.barrier().expect("barrier");
    }
    dev.flush().expect("flush");

    let snap = log.snapshot();
    assert!(
        snap.epoch_count() >= 3,
        "three barriered generations must arrive as distinct epochs, got {}",
        snap.epoch_count()
    );
    // Write-back supersession means block 2's intermediate values never
    // reach the wire — but the generation markers must still destage as
    // *ordered* epochs: at any epoch-prefix cut the visible markers form
    // a prefix of [1, 2, 3], and block 2 (final value only, riding the
    // last generation's epoch) appears only once every marker has.
    for cut in 0..=snap.epoch_count() {
        let img = materialize(&base, &snap, &CrashImageSpec::prefix(cut));
        let markers: Vec<u8> = (0..3).map(|e| img.peek(BlockAddr(e + 4))[0]).collect();
        let visible = markers.iter().take_while(|&&m| m != 0).count();
        assert!(
            markers.iter().skip(visible).all(|&m| m == 0),
            "cut {cut}: markers {markers:?} must form a generation prefix — \
             destage flattened the absorbed epoch order"
        );
        assert_eq!(
            markers[..visible].to_vec(),
            (1..=visible as u8).collect::<Vec<_>>(),
            "cut {cut}: visible markers carry their generation values"
        );
        let b2 = img.peek(BlockAddr(2))[0];
        assert!(
            b2 == 0 || (b2 == 3 && visible == 3),
            "cut {cut}: block 2 holds {b2} with {visible} generations visible \
             — a superseded write leaked out of epoch order"
        );
    }
}

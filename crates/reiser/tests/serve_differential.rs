//! Serving-layer differential on ReiserFS: tail packing and balanced-tree
//! rebalancing make its block layout especially sensitive to operation
//! order, so the bit-identical-image oracle is a strong check that
//! commit-order replay reproduces a concurrent run exactly.

use iron_blockdev::MemDisk;
use iron_reiser::{ReiserFs, ReiserOptions, ReiserParams};
use iron_serve::{assert_serial_equivalence, generate, memdisk_image, prepare, WorkloadSpec};
use iron_vfs::{FsEnv, Vfs};

fn mount_prepared(spec: &WorkloadSpec) -> Vfs<ReiserFs<MemDisk>> {
    let mut md = MemDisk::for_tests(4096);
    ReiserFs::<MemDisk>::mkfs(&mut md, ReiserParams::small()).unwrap();
    let fs = ReiserFs::mount(md, FsEnv::new(), ReiserOptions::default()).unwrap();
    let mut v = Vfs::new(fs);
    prepare(&mut v, spec);
    v
}

#[test]
fn reiser_serve_matches_serial_replay_bit_identically() {
    let spec = WorkloadSpec::default();
    let sessions = generate(&spec);
    assert_serial_equivalence(
        || mount_prepared(&spec),
        |v| Some(memdisk_image(&v.into_fs().into_device())),
        &sessions,
        &[1, 2, 4, 8],
    );
}

//! Functional and failure-policy tests for the ReiserFS model.

use iron_blockdev::{MemDisk, RawAccess};
use iron_core::model::CorruptionStyle;
use iron_core::{Block, BlockAddr, BlockTag, Errno, FaultKind};
use iron_faultinject::{FaultController, FaultSpec, FaultTarget, FaultyDisk};
use iron_reiser::{ReiserFs, ReiserOptions, ReiserParams};
use iron_vfs::{FsEnv, MountState, Vfs};

type Fs = ReiserFs<FaultyDisk<MemDisk>>;

fn mount() -> (Vfs<Fs>, FaultController, FsEnv) {
    let mut md = MemDisk::for_tests(4096);
    ReiserFs::<MemDisk>::mkfs(&mut md, ReiserParams::small()).unwrap();
    let faulty = FaultyDisk::new(md);
    let ctl = faulty.controller();
    let env = FsEnv::new();
    let fs = ReiserFs::mount(faulty, env.clone(), ReiserOptions::default()).unwrap();
    (Vfs::new(fs), ctl, env)
}

fn remount(mut v: Vfs<Fs>) -> (Vfs<Fs>, FsEnv) {
    v.umount().unwrap();
    let dev = v.into_fs().into_device();
    let env = FsEnv::new();
    let fs = ReiserFs::mount(dev, env.clone(), ReiserOptions::default()).unwrap();
    (Vfs::new(fs), env)
}

// ----------------------------------------------------------------------
// Functionality.
// ----------------------------------------------------------------------

#[test]
fn small_files_live_as_tails() {
    let (mut v, _ctl, _env) = mount();
    v.write_file("/tail", b"small enough to be a tail").unwrap();
    assert_eq!(v.read_file("/tail").unwrap(), b"small enough to be a tail");
    // A tail-sized file should allocate no data blocks.
    let st0 = v.statfs().unwrap();
    v.write_file("/tail2", &vec![7u8; 900]).unwrap();
    v.sync().unwrap();
    let st1 = v.statfs().unwrap();
    assert_eq!(st0.blocks_free, st1.blocks_free, "tail uses no data blocks");
}

#[test]
fn tail_conversion_on_growth() {
    let (mut v, _ctl, _env) = mount();
    v.write_file("/grow", &vec![1u8; 800]).unwrap(); // tail
    let fd = v.open("/grow", iron_vfs::OpenFlags::rdwr()).unwrap();
    v.pwrite(fd, 800, &vec![2u8; 8000]).unwrap(); // forces conversion
    v.close(fd).unwrap();
    let data = v.read_file("/grow").unwrap();
    assert_eq!(data.len(), 8800);
    assert!(data[..800].iter().all(|&b| b == 1));
    assert!(data[800..].iter().all(|&b| b == 2));
}

#[test]
fn large_files_and_tree_splits() {
    let (mut v, _ctl, _env) = mount();
    // Enough files to split leaves, and a large file spanning indirect
    // chunks (> 256 blocks ⇒ > 1 MiB).
    for i in 0..120 {
        v.write_file(&format!("/f{i:03}"), format!("contents {i}").as_bytes())
            .unwrap();
    }
    let big: Vec<u8> = (0..2_000_000u32).map(|i| (i % 239) as u8).collect();
    v.write_file("/big", &big).unwrap();
    assert_eq!(v.read_file("/big").unwrap(), big);
    for i in [0, 57, 119] {
        assert_eq!(
            v.read_file(&format!("/f{i:03}")).unwrap(),
            format!("contents {i}").as_bytes()
        );
    }
    // The tree must have grown beyond a single leaf.
    assert!(v.fs().superblock().tree_height >= 2);
}

#[test]
fn directories_nest_and_traverse() {
    let (mut v, _ctl, _env) = mount();
    v.mkdir("/a", 0o755).unwrap();
    v.mkdir("/a/b", 0o755).unwrap();
    v.write_file("/a/b/f", b"deep").unwrap();
    v.chdir("/a/b").unwrap();
    assert_eq!(v.read_file("../b/f").unwrap(), b"deep");
    assert_eq!(v.readdir("/a").unwrap().len(), 3); // . .. b
    v.chdir("/").unwrap();
    v.unlink("/a/b/f").unwrap();
    v.rmdir("/a/b").unwrap();
    v.rmdir("/a").unwrap();
}

#[test]
fn rename_link_symlink() {
    let (mut v, _ctl, _env) = mount();
    v.write_file("/one", b"1").unwrap();
    v.link("/one", "/two").unwrap();
    assert_eq!(v.stat("/two").unwrap().nlink, 2);
    v.rename("/one", "/moved").unwrap();
    assert_eq!(v.read_file("/moved").unwrap(), b"1");
    v.symlink("/moved", "/ln").unwrap();
    assert_eq!(v.read_file("/ln").unwrap(), b"1");
    assert_eq!(v.lstat("/ln").unwrap().ftype, iron_vfs::FileType::Symlink);
}

#[test]
fn persistence_across_remount() {
    let (mut v, _ctl, _env) = mount();
    v.mkdir("/keep", 0o755).unwrap();
    v.write_file("/keep/data", &vec![0xCD; 50_000]).unwrap();
    v.write_file("/keep/tail", b"tiny").unwrap();
    let (mut v, _env) = remount(v);
    assert_eq!(v.read_file("/keep/data").unwrap(), vec![0xCD; 50_000]);
    assert_eq!(v.read_file("/keep/tail").unwrap(), b"tiny");
}

#[test]
fn unlink_frees_blocks() {
    let (mut v, _ctl, _env) = mount();
    let st0 = v.statfs().unwrap().blocks_free;
    v.write_file("/big", &vec![1u8; 400_000]).unwrap();
    v.sync().unwrap();
    assert!(v.statfs().unwrap().blocks_free < st0);
    v.unlink("/big").unwrap();
    v.sync().unwrap();
    // Data blocks come back (tree nodes may stay allocated; this model
    // never merges tree nodes).
    assert!(v.statfs().unwrap().blocks_free >= st0 - 4);
}

#[test]
fn crash_recovery_replays_journal() {
    let mut md = MemDisk::for_tests(4096);
    ReiserFs::<MemDisk>::mkfs(&mut md, ReiserParams::small()).unwrap();
    let faulty = FaultyDisk::new(md);
    let opts = ReiserOptions {
        crash_mode: true,
        ..Default::default()
    };
    let fs = ReiserFs::mount(faulty, FsEnv::new(), opts).unwrap();
    let mut v = Vfs::new(fs);
    v.write_file("/survives", b"journaled").unwrap();
    v.sync().unwrap();
    let dev = v.into_fs().into_device(); // crash
    let env = FsEnv::new();
    let fs = ReiserFs::mount(dev, env.clone(), ReiserOptions::default()).unwrap();
    assert!(env.klog.contains("replaying journal"));
    let mut v = Vfs::new(fs);
    assert_eq!(v.read_file("/survives").unwrap(), b"journaled");
}

// ----------------------------------------------------------------------
// Failure policy (§5.2).
// ----------------------------------------------------------------------

#[test]
fn metadata_write_failure_panics() {
    let (mut v, ctl, env) = mount();
    ctl.inject(FaultSpec::sticky(
        FaultKind::WriteError,
        FaultTarget::Tag(BlockTag("leaf")),
    ));
    v.write_file("/f", b"x").unwrap();
    let err = v.sync().unwrap_err();
    assert!(err.is_panic(), "ReiserFS panics on metadata write failure");
    assert_eq!(env.state(), MountState::Crashed);
    assert!(env.klog.contains("journal-837") || env.klog.contains("journal-601"));
}

#[test]
fn journal_write_failure_panics() {
    let (mut v, ctl, env) = mount();
    ctl.inject(FaultSpec::sticky(
        FaultKind::WriteError,
        FaultTarget::Tag(BlockTag("j-data")),
    ));
    v.write_file("/f", b"x").unwrap();
    let err = v.sync().unwrap_err();
    assert!(err.is_panic());
    assert_eq!(env.state(), MountState::Crashed);
    assert!(env.klog.contains("journal-601: buffer write failed"));
}

#[test]
fn ordered_data_write_failure_ignored_paper_bug() {
    let (mut v, ctl, env) = mount();
    ctl.inject(FaultSpec::sticky(
        FaultKind::WriteError,
        FaultTarget::Tag(BlockTag("data")),
    ));
    // Needs a block-sized file so the body goes through the data path.
    v.write_file("/f", &vec![5u8; 8000]).unwrap();
    // PAPER-BUG: RZero where RStop was expected — commit succeeds.
    v.sync().unwrap();
    assert_eq!(env.state(), MountState::ReadWrite, "no panic (the bug)");
}

#[test]
fn data_read_failure_propagates_with_one_retry() {
    let (mut v, ctl, env) = mount();
    v.write_file("/f", &vec![6u8; 8000]).unwrap();
    v.sync().unwrap();
    let (mut v, env2) = remount(v);
    drop(env);
    ctl.inject(FaultSpec::sticky(
        FaultKind::ReadError,
        FaultTarget::Tag(BlockTag("data")),
    ));
    let err = v.read_file("/f").unwrap_err();
    assert_eq!(err.errno(), Some(Errno::EIO), "RPropagate");
    assert_eq!(env2.state(), MountState::ReadWrite, "no stop for reads");
}

#[test]
fn transient_data_read_recovered_by_retry() {
    let (mut v, ctl, _env) = mount();
    v.write_file("/f", &vec![6u8; 8000]).unwrap();
    v.sync().unwrap();
    let (mut v, _env2) = remount(v);
    ctl.inject(FaultSpec::transient(
        FaultKind::ReadError,
        FaultTarget::Tag(BlockTag("data")),
        1,
    ));
    assert_eq!(v.read_file("/f").unwrap(), vec![6u8; 8000]);
}

#[test]
fn corrupt_internal_node_panics_paper_bug() {
    let (mut v, _ctl, _env) = mount();
    // Grow the tree so internal nodes exist.
    for i in 0..150 {
        v.write_file(&format!("/file-{i:04}"), &vec![i as u8; 300])
            .unwrap();
    }
    v.sync().unwrap();
    assert!(v.fs().superblock().tree_height >= 2);
    let root = v.fs().superblock().root_block;
    v.umount().unwrap();
    let mut dev = v.into_fs().into_device();
    // Corrupt the root node header on the medium.
    let mut b = dev.peek(BlockAddr(root));
    b.put_u16(0, 77); // absurd level
    dev.poke(BlockAddr(root), &b);
    let env = FsEnv::new();
    let fs = ReiserFs::mount(dev, env.clone(), ReiserOptions::default()).unwrap();
    let mut v = Vfs::new(fs);
    // PAPER-BUG: the failed sanity check panics instead of erroring.
    let err = v.stat("/file-0000").unwrap_err();
    assert!(err.is_panic(), "got {err:?}");
    assert_eq!(env.state(), MountState::Crashed);
    assert!(env.klog.contains("vs-6000"));
}

#[test]
fn corrupt_leaf_propagates_sanity_error() {
    let (mut v, ctl, _env) = mount();
    // Grow the tree so leaves are distinct from the root.
    for i in 0..150 {
        v.write_file(&format!("/file-{i:04}"), &vec![i as u8; 300])
            .unwrap();
    }
    v.write_file("/f", b"x").unwrap();
    v.sync().unwrap();
    let (mut v, env) = remount(v);
    ctl.inject(FaultSpec::sticky(
        FaultKind::Corruption(CorruptionStyle::RandomNoise),
        FaultTarget::Tag(BlockTag("stat item")),
    ));
    let err = v.stat("/f").unwrap_err();
    assert_eq!(err.errno(), Some(Errno::EUCLEAN), "DSanity → RPropagate");
    assert!(env.klog.contains("vs-5151"));
    assert_ne!(env.state(), MountState::Crashed, "leaves don't panic");
}

#[test]
fn corrupt_journal_data_destroys_filesystem_paper_bug() {
    // Crash with a committed transaction whose journal data we corrupt so
    // that the descriptor's first home address is block 0 (the super).
    let mut md = MemDisk::for_tests(4096);
    ReiserFs::<MemDisk>::mkfs(&mut md, ReiserParams::small()).unwrap();
    let faulty = FaultyDisk::new(md);
    let opts = ReiserOptions {
        crash_mode: true,
        ..Default::default()
    };
    let fs = ReiserFs::mount(faulty, FsEnv::new(), opts).unwrap();
    let layout = *fs.layout();
    let mut v = Vfs::new(fs);
    v.write_file("/f", b"x").unwrap();
    v.sync().unwrap();
    let mut dev = v.into_fs().into_device();
    // The superblock is part of the transaction (free-count updates), so a
    // corrupted journal-data copy of it will be replayed right over block
    // 0. Find the journal-data block whose home is block 0 and fill it
    // with garbage.
    let desc =
        iron_reiser::journal::JournalDesc::decode(&dev.peek(BlockAddr(layout.journal_start)))
            .expect("descriptor present");
    let super_pos = desc
        .addrs
        .iter()
        .position(|a| *a == 0)
        .expect("super journaled");
    let jdata_addr = layout.journal_start + 1 + super_pos as u64;
    dev.poke(BlockAddr(jdata_addr), &Block::filled(0x5C));
    // Remount: replay blindly writes garbage over the superblock, then the
    // post-replay superblock re-read finds the file system unusable.
    let env = FsEnv::new();
    let err = match ReiserFs::mount(dev, env.clone(), ReiserOptions::default()) {
        Err(e) => e,
        Ok(_) => panic!("mount should have failed"),
    };
    assert_eq!(err.errno(), Some(Errno::EUCLEAN));
    assert!(env.klog.contains("unusable"));
}

#[test]
fn indirect_read_failure_during_truncate_leaks_space_paper_bug() {
    let (mut v, ctl, _env) = mount();
    // Grow the tree, then a multi-chunk file (> 1 MiB ⇒ several indirect
    // items spread over distinct leaves).
    for i in 0..150 {
        v.write_file(&format!("/file-{i:04}"), &vec![i as u8; 300])
            .unwrap();
    }
    v.write_file("/big", &vec![9u8; 4_000_000]).unwrap();
    v.sync().unwrap();
    let before = v.statfs().unwrap().blocks_free;
    let freed_healthy = 4_000_000u64 / 4096 + 1;
    let (mut v, env) = remount(v);
    // Fail reads of leaves accessed for indirect items.
    ctl.inject(FaultSpec::sticky(
        FaultKind::ReadError,
        FaultTarget::Tag(BlockTag("indirect")),
    ));
    // PAPER-BUG: truncate "succeeds", the error is ignored, and the data
    // blocks covered by unreadable indirect items are never freed.
    v.truncate("/big", 0).unwrap();
    v.sync().unwrap();
    ctl.clear();
    let after = v.statfs().unwrap().blocks_free;
    let freed = after.saturating_sub(before);
    assert!(
        freed + 64 < freed_healthy,
        "expected a leak: freed {freed} of {freed_healthy} blocks"
    );
    assert_eq!(env.state(), MountState::ReadWrite);
}

#[test]
fn corrupted_superblock_fails_mount() {
    let mut md = MemDisk::for_tests(4096);
    ReiserFs::<MemDisk>::mkfs(&mut md, ReiserParams::small()).unwrap();
    md.poke(BlockAddr(0), &Block::filled(0x11));
    let env = FsEnv::new();
    let err = match ReiserFs::mount(FaultyDisk::new(md), env.clone(), ReiserOptions::default()) {
        Err(e) => e,
        Ok(_) => panic!("mount should fail"),
    };
    assert_eq!(err.errno(), Some(Errno::EUCLEAN));
    assert!(env.klog.contains("can not find reiserfs"));
}

// ----------------------------------------------------------------------
// The full Figure 1 stack: ReiserFS over the write-back buffer cache.
// ----------------------------------------------------------------------

#[test]
fn cached_stack_round_trip() {
    use iron_blockdev::{CachePolicy, StackBuilder};

    let mut dev = StackBuilder::memdisk(4096)
        .with_cache(CachePolicy::write_back(64))
        .build();
    ReiserFs::<MemDisk>::mkfs(dev.inner_mut(), ReiserParams::small()).unwrap();
    let fs = ReiserFs::mount(dev, FsEnv::new(), ReiserOptions::default()).unwrap();
    let mut v = Vfs::new(fs);
    for i in 0..12u8 {
        v.write_file(&format!("/f{i}"), &vec![i; 3000]).unwrap();
    }
    v.sync().unwrap();
    v.umount().unwrap();

    let cache = v.into_fs().into_device();
    assert_eq!(cache.dirty_blocks(), 0, "unmount drains the cache");
    let md = cache.into_inner();
    let fs = ReiserFs::mount(md, FsEnv::new(), ReiserOptions::default()).unwrap();
    let mut v = Vfs::new(fs);
    for i in 0..12u8 {
        assert_eq!(v.read_file(&format!("/f{i}")).unwrap(), vec![i; 3000]);
    }
}

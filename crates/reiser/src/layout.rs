//! ReiserFS disk layout and block types.

use iron_core::{Block, BlockAddr, BlockTag};

/// ReiserFS v3's real superblock magic string.
pub const REISER_MAGIC: &[u8; 10] = b"ReIsEr2Fs\0";

/// ReiserFS block types (Table 4 / Figure 2 rows).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ReiserBlockType {
    /// Leaf node read for a stat item.
    StatItem,
    /// Leaf node read for a directory item.
    DirItem,
    /// Data bitmap block.
    DataBitmap,
    /// Leaf node read for an indirect item.
    Indirect,
    /// Leaf node read for a direct item (tail).
    Direct,
    /// User data block.
    Data,
    /// Superblock.
    Super,
    /// Journal header.
    JournalHeader,
    /// Journal descriptor block.
    JournalDesc,
    /// Journal commit block.
    JournalCommit,
    /// Journaled copy of a block.
    JournalData,
    /// The tree root node.
    Root,
    /// An internal (non-root, non-leaf) tree node.
    Internal,
    /// A leaf written back (no specific item context).
    LeafNode,
}

impl ReiserBlockType {
    /// Figure 2's row order for ReiserFS.
    pub const FIGURE2_ROWS: [ReiserBlockType; 13] = [
        ReiserBlockType::StatItem,
        ReiserBlockType::DirItem,
        ReiserBlockType::DataBitmap,
        ReiserBlockType::Indirect,
        ReiserBlockType::Data,
        ReiserBlockType::Super,
        ReiserBlockType::JournalHeader,
        ReiserBlockType::JournalDesc,
        ReiserBlockType::JournalCommit,
        ReiserBlockType::JournalData,
        ReiserBlockType::Root,
        ReiserBlockType::Internal,
        ReiserBlockType::LeafNode,
    ];

    /// The I/O tag (Figure 2's row labels).
    pub fn tag(self) -> BlockTag {
        BlockTag(match self {
            ReiserBlockType::StatItem => "stat item",
            ReiserBlockType::DirItem => "dir item",
            ReiserBlockType::DataBitmap => "bitmap",
            ReiserBlockType::Indirect => "indirect",
            ReiserBlockType::Direct => "direct",
            ReiserBlockType::Data => "data",
            ReiserBlockType::Super => "super",
            ReiserBlockType::JournalHeader => "j-header",
            ReiserBlockType::JournalDesc => "j-desc",
            ReiserBlockType::JournalCommit => "j-commit",
            ReiserBlockType::JournalData => "j-data",
            ReiserBlockType::Root => "root",
            ReiserBlockType::Internal => "internal",
            ReiserBlockType::LeafNode => "leaf",
        })
    }
}

/// Formatting parameters.
#[derive(Clone, Copy, Debug)]
pub struct ReiserParams {
    /// Total device blocks.
    pub total_blocks: u64,
    /// Journal log-area blocks.
    pub journal_blocks: u64,
}

impl ReiserParams {
    /// A small test file system (16 MiB).
    pub fn small() -> Self {
        ReiserParams {
            total_blocks: 4096,
            journal_blocks: 256,
        }
    }
}

/// Computed layout.
///
/// ```text
/// 0            superblock
/// 1            journal header
/// 2..2+J       journal log area
/// then         bitmap blocks (1 per 32768 device blocks)
/// rest         tree nodes + data blocks
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ReiserLayout {
    /// Formatting parameters.
    pub params: ReiserParams,
    /// Journal header block.
    pub journal_header: u64,
    /// First journal log block.
    pub journal_start: u64,
    /// Journal log length.
    pub journal_len: u64,
    /// First bitmap block.
    pub bitmap_start: u64,
    /// Number of bitmap blocks.
    pub bitmap_len: u64,
    /// First allocatable block.
    pub alloc_start: u64,
}

impl ReiserLayout {
    /// Compute the layout.
    pub fn compute(params: ReiserParams) -> Self {
        let journal_header = 1;
        let journal_start = 2;
        let journal_len = params.journal_blocks;
        let bitmap_start = journal_start + journal_len;
        let bitmap_len = params
            .total_blocks
            .div_ceil(iron_core::BLOCK_SIZE as u64 * 8);
        let alloc_start = bitmap_start + bitmap_len;
        ReiserLayout {
            params,
            journal_header,
            journal_start,
            journal_len,
            bitmap_start,
            bitmap_len,
            alloc_start,
        }
    }

    /// The bitmap block and bit index covering device block `b`.
    pub fn bitmap_location(&self, b: u64) -> (BlockAddr, u64) {
        let bits_per_block = iron_core::BLOCK_SIZE as u64 * 8;
        (
            BlockAddr(self.bitmap_start + b / bits_per_block),
            b % bits_per_block,
        )
    }
}

/// The ReiserFS superblock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReiserSuper {
    /// Total device blocks.
    pub total_blocks: u64,
    /// Free blocks.
    pub free_blocks: u64,
    /// Tree root block (0 = empty tree — never in practice).
    pub root_block: u64,
    /// Height of the tree (1 = root is a leaf).
    pub tree_height: u32,
    /// Journal log length.
    pub journal_blocks: u64,
    /// Next object id to hand out.
    pub next_oid: u64,
    /// Unclean-shutdown flag.
    pub dirty: bool,
}

impl ReiserSuper {
    /// Serialize.
    pub fn encode(&self) -> Block {
        let mut b = Block::zeroed();
        b.put_bytes(0, REISER_MAGIC);
        b.put_u64(16, self.total_blocks);
        b.put_u64(24, self.free_blocks);
        b.put_u64(32, self.root_block);
        b.put_u32(40, self.tree_height);
        b.put_u64(48, self.journal_blocks);
        b.put_u64(56, self.next_oid);
        b.put_u32(64, u32::from(self.dirty));
        b
    }

    /// Decode with the magic-string sanity check ReiserFS performs.
    pub fn decode(b: &Block) -> Option<ReiserSuper> {
        if b.get_bytes(0, 10) != REISER_MAGIC {
            return None;
        }
        Some(ReiserSuper {
            total_blocks: b.get_u64(16),
            free_blocks: b.get_u64(24),
            root_block: b.get_u64(32),
            tree_height: b.get_u32(40),
            journal_blocks: b.get_u64(48),
            next_oid: b.get_u64(56),
            dirty: b.get_u32(64) != 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_regions_ordered() {
        let l = ReiserLayout::compute(ReiserParams::small());
        assert_eq!(l.journal_header, 1);
        assert_eq!(l.journal_start, 2);
        assert_eq!(l.bitmap_start, 258);
        assert_eq!(l.bitmap_len, 1); // 4096 blocks fit one bitmap block
        assert_eq!(l.alloc_start, 259);
    }

    #[test]
    fn bitmap_location_maps_bits() {
        let l = ReiserLayout::compute(ReiserParams::small());
        let (blk, bit) = l.bitmap_location(0);
        assert_eq!(blk.0, l.bitmap_start);
        assert_eq!(bit, 0);
        let (blk2, bit2) = l.bitmap_location(4095);
        assert_eq!(blk2.0, l.bitmap_start);
        assert_eq!(bit2, 4095);
    }

    #[test]
    fn super_round_trip_and_magic() {
        let s = ReiserSuper {
            total_blocks: 4096,
            free_blocks: 1000,
            root_block: 300,
            tree_height: 2,
            journal_blocks: 256,
            next_oid: 42,
            dirty: true,
        };
        assert_eq!(ReiserSuper::decode(&s.encode()), Some(s));
        assert_eq!(ReiserSuper::decode(&Block::zeroed()), None);
    }
}

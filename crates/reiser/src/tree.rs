//! Balanced-tree node formats and in-node operations.
//!
//! Every ReiserFS object lives in one tree, addressed by a key
//! `(object id, item kind, offset)`:
//!
//! * **stat items** — per-object attributes (like inodes);
//! * **directory items** — one per directory entry in this model, keyed by
//!   a name hash (real ReiserFS packs several per item; the policy-relevant
//!   structure — lookups keyed by hash through the tree — is the same);
//! * **direct items** — small-file bodies and tails, stored in the leaf;
//! * **indirect items** — arrays of data-block pointers for large files,
//!   keyed by file block offset.
//!
//! Every node begins with a block header `{level, item count, free space}`
//! that ReiserFS sanity-checks on each read (§5.2) — [`Node::decode`]
//! returns `None` exactly when those checks fail.

use iron_core::{Block, BLOCK_SIZE};

/// Node header size.
pub const HDR: usize = 8;
/// Per-item on-disk overhead (24-byte key + 2-byte length).
pub const ITEM_OVERHEAD: usize = 26;
/// Maximum payload bytes a leaf can hold.
pub const LEAF_CAPACITY: usize = BLOCK_SIZE - HDR;
/// Maximum children of an internal node (kept small so splits happen in
/// tests; real ReiserFS packs far more).
pub const INTERNAL_MAX: usize = 64;
/// Maximum tree height accepted by sanity checks.
pub const MAX_HEIGHT: u16 = 8;
/// Data-block pointers per indirect item chunk.
pub const PTRS_PER_INDIRECT: usize = 256;
/// Largest file body stored as a direct item (tail) in the leaf.
pub const TAIL_MAX: usize = 1024;

/// Item kinds, in key order (stat < dir < direct < indirect).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[repr(u8)]
pub enum ItemKind {
    /// Attributes.
    Stat = 1,
    /// Directory entry.
    Dir = 2,
    /// Inline file body (tail).
    Direct = 3,
    /// Block-pointer array.
    Indirect = 4,
}

impl ItemKind {
    /// Decode a kind byte.
    pub fn from_u8(v: u8) -> Option<ItemKind> {
        Some(match v {
            1 => ItemKind::Stat,
            2 => ItemKind::Dir,
            3 => ItemKind::Direct,
            4 => ItemKind::Indirect,
            _ => return None,
        })
    }
}

/// A tree key.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Key {
    /// Object id (file/directory identity).
    pub oid: u64,
    /// Item kind.
    pub kind: ItemKind,
    /// Offset (file block index, name hash, …).
    pub offset: u64,
}

impl Key {
    /// Construct a key.
    pub fn new(oid: u64, kind: ItemKind, offset: u64) -> Self {
        Key { oid, kind, offset }
    }

    /// The smallest key for `(oid, kind)`.
    pub fn min_of(oid: u64, kind: ItemKind) -> Self {
        Key::new(oid, kind, 0)
    }

    /// The largest key for `(oid, kind)`.
    pub fn max_of(oid: u64, kind: ItemKind) -> Self {
        Key::new(oid, kind, u64::MAX)
    }
}

/// A leaf item: key + payload bytes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Item {
    /// The key.
    pub key: Key,
    /// The payload.
    pub payload: Vec<u8>,
}

impl Item {
    /// Bytes this item occupies in a leaf.
    pub fn on_disk_size(&self) -> usize {
        ITEM_OVERHEAD + self.payload.len()
    }
}

/// A decoded tree node.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Node {
    /// A leaf (level 1): sorted items.
    Leaf(Vec<Item>),
    /// An internal node (level ≥ 2): `children.len() == keys.len() + 1`,
    /// subtree `i` holds keys < `keys[i]`.
    Internal {
        /// This node's level (2 = just above the leaves).
        level: u16,
        /// Separator keys.
        keys: Vec<Key>,
        /// Child block addresses.
        children: Vec<u64>,
    },
}

fn encode_key(b: &mut Block, off: usize, k: &Key) {
    b.put_u64(off, k.oid);
    b[off + 8] = k.kind as u8;
    b.put_u64(off + 16, k.offset);
}

fn decode_key(b: &Block, off: usize) -> Option<Key> {
    Some(Key {
        oid: b.get_u64(off),
        kind: ItemKind::from_u8(b[off + 8])?,
        offset: b.get_u64(off + 16),
    })
}

impl Node {
    /// This node's level.
    pub fn level(&self) -> u16 {
        match self {
            Node::Leaf(_) => 1,
            Node::Internal { level, .. } => *level,
        }
    }

    /// Bytes used by a leaf's items.
    pub fn leaf_used(items: &[Item]) -> usize {
        items.iter().map(Item::on_disk_size).sum()
    }

    /// Serialize, writing a correct header (level, nitems, free space).
    pub fn encode(&self) -> Block {
        let mut b = Block::zeroed();
        match self {
            Node::Leaf(items) => {
                b.put_u16(0, 1);
                b.put_u16(2, items.len() as u16);
                let used = Self::leaf_used(items);
                b.put_u16(4, (LEAF_CAPACITY - used) as u16);
                let mut off = HDR;
                for item in items {
                    encode_key(&mut b, off, &item.key);
                    b.put_u16(off + 24, item.payload.len() as u16);
                    b.put_bytes(off + 26, &item.payload);
                    off += item.on_disk_size();
                }
            }
            Node::Internal {
                level,
                keys,
                children,
            } => {
                debug_assert_eq!(children.len(), keys.len() + 1);
                b.put_u16(0, *level);
                b.put_u16(2, keys.len() as u16);
                let used = keys.len() * 24 + children.len() * 8;
                b.put_u16(4, (LEAF_CAPACITY - used) as u16);
                let mut off = HDR;
                for k in keys {
                    encode_key(&mut b, off, k);
                    off += 24;
                }
                for c in children {
                    b.put_u64(off, *c);
                    off += 8;
                }
            }
        }
        b
    }

    /// Decode with ReiserFS's block-header sanity checks: level within
    /// bounds (and equal to `expected_level` when the caller knows it from
    /// the descent), item count and free space consistent with the block's
    /// actual contents. Returns `None` on any failed check — the caller
    /// decides whether that means `panic` or `RPropagate` (§5.2 does both,
    /// in different places).
    pub fn decode(b: &Block, expected_level: Option<u16>) -> Option<Node> {
        let level = b.get_u16(0);
        if level == 0 || level > MAX_HEIGHT {
            return None;
        }
        if let Some(exp) = expected_level {
            if level != exp {
                return None;
            }
        }
        let nitems = b.get_u16(2) as usize;
        let declared_free = b.get_u16(4) as usize;
        if level == 1 {
            if nitems > LEAF_CAPACITY / ITEM_OVERHEAD {
                return None;
            }
            let mut items = Vec::with_capacity(nitems);
            let mut off = HDR;
            for _ in 0..nitems {
                if off + ITEM_OVERHEAD > BLOCK_SIZE {
                    return None;
                }
                let key = decode_key(b, off)?;
                let len = b.get_u16(off + 24) as usize;
                if off + ITEM_OVERHEAD + len > BLOCK_SIZE {
                    return None;
                }
                items.push(Item {
                    key,
                    payload: b.get_bytes(off + 26, len).to_vec(),
                });
                off += ITEM_OVERHEAD + len;
            }
            let used = Self::leaf_used(&items);
            if declared_free != LEAF_CAPACITY - used {
                return None; // free-space field inconsistent: corrupt header
            }
            // Keys must be strictly sorted.
            if items.windows(2).any(|w| w[0].key >= w[1].key) {
                return None;
            }
            Some(Node::Leaf(items))
        } else {
            if nitems == 0 || nitems > INTERNAL_MAX {
                return None;
            }
            let used = nitems * 24 + (nitems + 1) * 8;
            if HDR + used > BLOCK_SIZE || declared_free != LEAF_CAPACITY - used {
                return None;
            }
            let mut keys = Vec::with_capacity(nitems);
            let mut off = HDR;
            for _ in 0..nitems {
                keys.push(decode_key(b, off)?);
                off += 24;
            }
            let mut children = Vec::with_capacity(nitems + 1);
            for _ in 0..=nitems {
                children.push(b.get_u64(off));
                off += 8;
            }
            if keys.windows(2).any(|w| w[0] >= w[1]) {
                return None;
            }
            Some(Node::Internal {
                level,
                keys,
                children,
            })
        }
    }

    /// Child index to descend into for `key`.
    pub fn child_index(keys: &[Key], key: &Key) -> usize {
        keys.iter().take_while(|k| key >= k).count()
    }
}

/// Encode an indirect-item payload (block pointers).
pub fn encode_ptrs(ptrs: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(ptrs.len() * 4);
    for p in ptrs {
        out.extend_from_slice(&p.to_le_bytes());
    }
    out
}

/// Decode an indirect-item payload.
pub fn decode_ptrs(payload: &[u8]) -> Vec<u32> {
    payload
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(oid: u64, kind: ItemKind, off: u64, len: usize) -> Item {
        Item {
            key: Key::new(oid, kind, off),
            payload: vec![0xAB; len],
        }
    }

    #[test]
    fn leaf_round_trip() {
        let items = vec![
            item(1, ItemKind::Stat, 0, 40),
            item(1, ItemKind::Dir, 77, 20),
            item(2, ItemKind::Stat, 0, 40),
            item(2, ItemKind::Direct, 0, 500),
        ];
        let n = Node::Leaf(items.clone());
        let decoded = Node::decode(&n.encode(), Some(1)).unwrap();
        assert_eq!(decoded, n);
    }

    #[test]
    fn internal_round_trip() {
        let n = Node::Internal {
            level: 2,
            keys: vec![
                Key::new(5, ItemKind::Stat, 0),
                Key::new(9, ItemKind::Dir, 1234),
            ],
            children: vec![100, 200, 300],
        };
        assert_eq!(Node::decode(&n.encode(), Some(2)).unwrap(), n);
    }

    #[test]
    fn sanity_rejects_wrong_level() {
        let n = Node::Leaf(vec![item(1, ItemKind::Stat, 0, 10)]);
        let b = n.encode();
        assert!(Node::decode(&b, Some(2)).is_none());
        assert!(Node::decode(&b, Some(1)).is_some());
        assert!(Node::decode(&b, None).is_some());
    }

    #[test]
    fn sanity_rejects_corrupt_header_fields() {
        let n = Node::Leaf(vec![item(1, ItemKind::Stat, 0, 10)]);
        let mut b = n.encode();
        b.put_u16(4, 9999); // free-space field corrupted
        assert!(Node::decode(&b, None).is_none());

        let mut b2 = n.encode();
        b2.put_u16(0, 99); // absurd level
        assert!(Node::decode(&b2, None).is_none());

        let mut b3 = n.encode();
        b3.put_u16(2, 400); // absurd item count
        assert!(Node::decode(&b3, None).is_none());
    }

    #[test]
    fn sanity_rejects_random_noise_and_zeroes() {
        assert!(Node::decode(&Block::zeroed(), None).is_none());
        assert!(Node::decode(&Block::filled(0xC3), None).is_none());
    }

    #[test]
    fn sanity_rejects_unsorted_keys() {
        // Hand-craft a leaf with out-of-order keys.
        let items = vec![item(5, ItemKind::Stat, 0, 4), item(3, ItemKind::Stat, 0, 4)];
        let mut b = Block::zeroed();
        b.put_u16(0, 1);
        b.put_u16(2, 2);
        let used: usize = items.iter().map(Item::on_disk_size).sum();
        b.put_u16(4, (LEAF_CAPACITY - used) as u16);
        let mut off = HDR;
        for it in &items {
            b.put_u64(off, it.key.oid);
            b[off + 8] = it.key.kind as u8;
            b.put_u64(off + 16, it.key.offset);
            b.put_u16(off + 24, it.payload.len() as u16);
            b.put_bytes(off + 26, &it.payload);
            off += it.on_disk_size();
        }
        assert!(Node::decode(&b, None).is_none());
    }

    #[test]
    fn key_ordering_is_oid_kind_offset() {
        let a = Key::new(1, ItemKind::Indirect, 999);
        let b = Key::new(2, ItemKind::Stat, 0);
        assert!(a < b);
        let c = Key::new(1, ItemKind::Stat, 5);
        let d = Key::new(1, ItemKind::Dir, 0);
        assert!(c < d, "stat sorts before dir for the same oid");
    }

    #[test]
    fn child_index_picks_subtree() {
        let keys = vec![
            Key::new(10, ItemKind::Stat, 0),
            Key::new(20, ItemKind::Stat, 0),
        ];
        assert_eq!(Node::child_index(&keys, &Key::new(5, ItemKind::Stat, 0)), 0);
        assert_eq!(
            Node::child_index(&keys, &Key::new(10, ItemKind::Stat, 0)),
            1
        );
        assert_eq!(Node::child_index(&keys, &Key::new(15, ItemKind::Dir, 3)), 1);
        assert_eq!(
            Node::child_index(&keys, &Key::new(25, ItemKind::Stat, 0)),
            2
        );
    }

    #[test]
    fn ptr_payload_round_trip() {
        let ptrs = vec![1u32, 500, 4095, 0];
        assert_eq!(decode_ptrs(&encode_ptrs(&ptrs)), ptrs);
    }
}

//! # iron-reiser
//!
//! A behavioral model of ReiserFS v3 (§5.2 of the paper). "Virtually all
//! metadata and data are placed in a balanced tree, similar to a database
//! index": stat items, directory items, direct items (small files and
//! tails), and indirect items (block lists for large files) live in the
//! leaves of a B+-tree whose internal nodes are sanity-checked block
//! headers.
//!
//! ## The measured failure policy (§5.2)
//!
//! * **"First, do no harm"**: virtually any *write* failure panics the
//!   (simulated) kernel — `RStop` at the coarsest granularity — to keep the
//!   on-disk tree uncorrupted.
//! * Error codes are checked on both reads and writes (`DErrorCode`
//!   everywhere).
//! * Heavy sanity checking (`DSanity`): every tree block's header (level,
//!   item count, free space) is validated on read; the superblock and
//!   journal blocks carry checked magic numbers. Bitmaps and data blocks
//!   have no type information and are never checked.
//! * Read failures propagate (`RPropagate`), with a single retry
//!   (`RRetry`) for data and indirect reads.
//!
//! ## Reproduced `PAPER-BUG`s
//!
//! * An *ordered data block* write failure is ignored: the transaction is
//!   journaled and committed anyway (`RZero` where `RStop` was intended),
//!   leaving metadata pointing at bad data.
//! * An indirect-item read failure during `truncate`/`unlink` is detected
//!   but ignored: the bitmap and superblock are updated as if the blocks
//!   were freed, leaking space.
//! * Failed sanity checks on internal tree nodes call `panic` instead of
//!   returning an error.
//! * Journal *data* blocks are replayed with no sanity or type checking; a
//!   corrupted journal block can be replayed over any home location (even
//!   the superblock), making the file system unusable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fs;
pub mod journal;
pub mod layout;
pub mod tree;

pub use fs::{ReiserFs, ReiserOptions};
pub use layout::{ReiserBlockType, ReiserLayout, ReiserParams};

//! The ReiserFS model: tree operations over a block device, the journal,
//! and the §5.2 failure policy (bugs included).

use std::collections::HashMap;

use iron_blockdev::{BlockDevice, RawAccess};
use iron_core::{Block, BlockAddr, Errno, BLOCK_SIZE};
use iron_vfs::{
    DirEntry, FileType, FsEnv, InodeAttr, MountState, SpecificFs, StatFs, VfsError, VfsResult,
};

use crate::journal::{JournalCommit, JournalDesc, JournalHeader, Txn, DESC_CAPACITY};
use crate::layout::{ReiserBlockType, ReiserLayout, ReiserParams, ReiserSuper};
use crate::tree::{
    decode_ptrs, encode_ptrs, Item, ItemKind, Key, Node, INTERNAL_MAX, LEAF_CAPACITY,
    PTRS_PER_INDIRECT, TAIL_MAX,
};

/// The root directory's object id.
pub const ROOT_OID: u64 = 2;

/// Mount options.
#[derive(Clone, Debug)]
pub struct ReiserOptions {
    /// Commit once the transaction reaches this many blocks.
    pub commit_threshold: usize,
    /// Stop commits after the commit block (simulated crash window).
    pub crash_mode: bool,
}

impl Default for ReiserOptions {
    fn default() -> Self {
        ReiserOptions {
            commit_threshold: 64,
            crash_mode: false,
        }
    }
}

/// FNV-1a 64-bit, ReiserFS-style name hashing for directory keys.
fn name_hash(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    // Avoid the reserved offsets 0 and u64::MAX.
    h.clamp(1, u64::MAX - 1)
}

/// Stat-item payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct StatData {
    ftype: FileType,
    mode: u32,
    nlink: u32,
    uid: u32,
    gid: u32,
    size: u64,
    mtime: u64,
    /// Parent oid (ReiserFS directories have no "." / ".." items; we keep
    /// the parent here for `..` resolution).
    parent: u64,
}

impl StatData {
    fn new(ftype: FileType, mode: u32, parent: u64) -> Self {
        StatData {
            ftype,
            mode,
            nlink: if ftype == FileType::Directory { 2 } else { 1 },
            uid: 0,
            gid: 0,
            size: 0,
            mtime: 0,
            parent,
        }
    }

    fn encode(&self) -> Vec<u8> {
        let mut out = vec![0u8; 48];
        out[0] = match self.ftype {
            FileType::Regular => 1,
            FileType::Directory => 2,
            FileType::Symlink => 3,
        };
        out[4..8].copy_from_slice(&self.mode.to_le_bytes());
        out[8..12].copy_from_slice(&self.nlink.to_le_bytes());
        out[12..16].copy_from_slice(&self.uid.to_le_bytes());
        out[16..20].copy_from_slice(&self.gid.to_le_bytes());
        out[20..28].copy_from_slice(&self.size.to_le_bytes());
        out[28..36].copy_from_slice(&self.mtime.to_le_bytes());
        out[36..44].copy_from_slice(&self.parent.to_le_bytes());
        out
    }

    fn decode(p: &[u8]) -> Option<StatData> {
        if p.len() < 44 {
            return None;
        }
        let ftype = match p[0] {
            1 => FileType::Regular,
            2 => FileType::Directory,
            3 => FileType::Symlink,
            _ => return None,
        };
        let g = |r: std::ops::Range<usize>| -> u64 {
            let mut buf = [0u8; 8];
            buf[..r.len()].copy_from_slice(&p[r]);
            u64::from_le_bytes(buf)
        };
        Some(StatData {
            ftype,
            mode: g(4..8) as u32,
            nlink: g(8..12) as u32,
            uid: g(12..16) as u32,
            gid: g(16..20) as u32,
            size: g(20..28),
            mtime: g(28..36),
            parent: g(36..44),
        })
    }
}

fn encode_dirent(child: u64, ftype: FileType, name: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(10 + name.len());
    out.extend_from_slice(&child.to_le_bytes());
    out.push(match ftype {
        FileType::Regular => 1,
        FileType::Directory => 2,
        FileType::Symlink => 3,
    });
    out.push(name.len() as u8);
    out.extend_from_slice(name.as_bytes());
    out
}

fn decode_dirent(p: &[u8]) -> Option<(u64, FileType, String)> {
    if p.len() < 10 {
        return None;
    }
    let child = u64::from_le_bytes(p[..8].try_into().ok()?);
    let ftype = match p[8] {
        1 => FileType::Regular,
        2 => FileType::Directory,
        3 => FileType::Symlink,
        _ => return None,
    };
    let n = p[9] as usize;
    if 10 + n > p.len() {
        return None;
    }
    Some((
        child,
        ftype,
        String::from_utf8_lossy(&p[10..10 + n]).into_owned(),
    ))
}

/// The ReiserFS model over a block device.
pub struct ReiserFs<D: BlockDevice + RawAccess> {
    dev: D,
    env: FsEnv,
    opts: ReiserOptions,
    layout: ReiserLayout,
    sb: ReiserSuper,
    txn: Txn,
    cache: HashMap<u64, Block>,
    jseq: u64,
    log_head: u64,
    journal_dirty_on_disk: bool,
}

impl<D: BlockDevice + RawAccess> ReiserFs<D> {
    // ==================================================================
    // mkfs / mount
    // ==================================================================

    /// Format a device.
    pub fn mkfs(dev: &mut D, params: ReiserParams) -> VfsResult<()> {
        let layout = ReiserLayout::compute(params);
        let root_block = layout.alloc_start;

        // Root directory: a one-leaf tree holding the root stat item.
        let root_stat = Item {
            key: Key::new(ROOT_OID, ItemKind::Stat, 0),
            payload: StatData::new(FileType::Directory, 0o755, ROOT_OID).encode(),
        };
        let root = Node::Leaf(vec![root_stat]);

        // Bitmaps: reserve everything up to and including the root node.
        let mut bitmaps: Vec<Block> = (0..layout.bitmap_len).map(|_| Block::zeroed()).collect();
        let mut reserve = |b: u64| {
            let bits = BLOCK_SIZE as u64 * 8;
            let blk = (b / bits) as usize;
            let bit = b % bits;
            bitmaps[blk][(bit / 8) as usize] |= 1 << (bit % 8);
        };
        for b in 0..=root_block {
            reserve(b);
        }

        let free_blocks = params.total_blocks - root_block - 1;
        let sb = ReiserSuper {
            total_blocks: params.total_blocks,
            free_blocks,
            root_block,
            tree_height: 1,
            journal_blocks: params.journal_blocks,
            next_oid: ROOT_OID + 1,
            dirty: false,
        };

        let jh = JournalHeader {
            sequence: 1,
            dirty: false,
        };

        let eio = VfsError::from;
        dev.write_tagged(BlockAddr(0), &sb.encode(), ReiserBlockType::Super.tag())
            .map_err(eio)?;
        dev.write_tagged(
            BlockAddr(layout.journal_header),
            &jh.encode(),
            ReiserBlockType::JournalHeader.tag(),
        )
        .map_err(eio)?;
        for (i, bm) in bitmaps.iter().enumerate() {
            dev.write_tagged(
                BlockAddr(layout.bitmap_start + i as u64),
                bm,
                ReiserBlockType::DataBitmap.tag(),
            )
            .map_err(eio)?;
        }
        dev.write_tagged(
            BlockAddr(root_block),
            &root.encode(),
            ReiserBlockType::LeafNode.tag(),
        )
        .map_err(eio)?;
        dev.barrier().map_err(eio)?;
        Ok(())
    }

    /// Mount, replaying the journal if dirty.
    pub fn mount(mut dev: D, env: FsEnv, opts: ReiserOptions) -> VfsResult<Self> {
        let sb_block = dev
            .read_tagged(BlockAddr(0), ReiserBlockType::Super.tag())
            .map_err(|e| {
                env.klog
                    .error("reiserfs", "unable to read superblock; mount failed");
                VfsError::from(e)
            })?;
        let sb = match ReiserSuper::decode(&sb_block) {
            Some(sb) => sb,
            None => {
                env.klog.error(
                    "reiserfs",
                    "sh-2021: reiserfs_fill_super: can not find reiserfs on device",
                );
                return Err(Errno::EUCLEAN.into());
            }
        };
        let layout = ReiserLayout::compute(ReiserParams {
            total_blocks: sb.total_blocks,
            journal_blocks: sb.journal_blocks,
        });

        let mut fs = ReiserFs {
            dev,
            env,
            opts,
            layout,
            sb,
            txn: Txn::new(),
            cache: HashMap::new(),
            jseq: 1,
            log_head: layout.journal_start,
            journal_dirty_on_disk: false,
        };

        let jh_block = fs
            .dev
            .read_tagged(
                BlockAddr(layout.journal_header),
                ReiserBlockType::JournalHeader.tag(),
            )
            .map_err(|e| {
                fs.env
                    .klog
                    .error("reiserfs", "journal header unreadable; mount failed");
                VfsError::from(e)
            })?;
        let jh = match JournalHeader::decode(&jh_block) {
            Some(jh) => jh,
            None => {
                fs.env.klog.error(
                    "reiserfs",
                    "journal-460: journal header magic invalid; mount failed",
                );
                return Err(Errno::EUCLEAN.into());
            }
        };
        fs.jseq = jh.sequence;
        if jh.dirty || fs.sb.dirty {
            fs.replay_journal()?;
        }
        fs.sb.dirty = true;
        fs.write_super_direct()?;
        Ok(fs)
    }

    /// Format + mount.
    pub fn format_and_mount(
        mut dev: D,
        env: FsEnv,
        params: ReiserParams,
        opts: ReiserOptions,
    ) -> VfsResult<Self> {
        Self::mkfs(&mut dev, params)?;
        Self::mount(dev, env, opts)
    }

    /// Consume, returning the device.
    pub fn into_device(self) -> D {
        self.dev
    }

    /// Borrow the device.
    pub fn device(&self) -> &D {
        &self.dev
    }

    /// The layout.
    pub fn layout(&self) -> &ReiserLayout {
        &self.layout
    }

    /// The superblock snapshot (tests).
    pub fn superblock(&self) -> ReiserSuper {
        self.sb
    }

    fn write_super_direct(&mut self) -> VfsResult<()> {
        let enc = self.sb.encode();
        self.cache.insert(0, enc.clone());
        if self
            .dev
            .write_tagged(BlockAddr(0), &enc, ReiserBlockType::Super.tag())
            .is_err()
        {
            // Write failure ⇒ panic (the ReiserFS way).
            return Err(self
                .env
                .panic("reiserfs", "journal-2100: superblock write failed"));
        }
        Ok(())
    }

    // ==================================================================
    // Journal.
    // ==================================================================

    fn stage(&mut self, addr: u64, block: Block, ty: ReiserBlockType) {
        self.cache.insert(addr, block.clone());
        self.txn.put(addr, block, ty);
    }

    fn maybe_commit(&mut self) -> VfsResult<()> {
        if self.txn.len() >= self.opts.commit_threshold {
            self.commit()
        } else {
            Ok(())
        }
    }

    /// Commit the running transaction. Any journal or checkpoint write
    /// failure panics the machine — "first, do no harm" (§5.2).
    pub fn commit(&mut self) -> VfsResult<()> {
        if self.txn.is_empty() {
            return Ok(());
        }
        let seq = self.jseq;
        let blocks = self.txn.blocks();
        let needed = blocks.len() as u64 + blocks.len().div_ceil(DESC_CAPACITY) as u64 + 1;
        if self.log_head + needed > self.layout.journal_start + self.layout.journal_len {
            self.log_head = self.layout.journal_start;
        }

        // Mark journal dirty: the recorded sequence is the first
        // unflushed transaction, so replay can stop at stale log tails.
        if !self.journal_dirty_on_disk {
            let jh = JournalHeader {
                sequence: seq,
                dirty: true,
            };
            if self
                .dev
                .write_tagged(
                    BlockAddr(self.layout.journal_header),
                    &jh.encode(),
                    ReiserBlockType::JournalHeader.tag(),
                )
                .is_err()
            {
                return Err(self
                    .env
                    .panic("reiserfs", "journal-601: journal header write failed"));
            }
            self.journal_dirty_on_disk = true;
        }

        for chunk in blocks.chunks(DESC_CAPACITY) {
            let desc = JournalDesc {
                sequence: seq,
                addrs: chunk.iter().map(|(a, _, _)| *a).collect(),
            };
            if self
                .dev
                .write_tagged(
                    BlockAddr(self.log_head),
                    &desc.encode(),
                    ReiserBlockType::JournalDesc.tag(),
                )
                .is_err()
            {
                return Err(self
                    .env
                    .panic("reiserfs", "journal-601: descriptor write failed"));
            }
            self.log_head += 1;
            for (_, b, _) in chunk {
                if self
                    .dev
                    .write_tagged(
                        BlockAddr(self.log_head),
                        b,
                        ReiserBlockType::JournalData.tag(),
                    )
                    .is_err()
                {
                    return Err(self
                        .env
                        .panic("reiserfs", "journal-601: buffer write failed"));
                }
                self.log_head += 1;
            }
        }
        let _ = self.dev.barrier();
        let commit = JournalCommit {
            sequence: seq,
            count: blocks.len() as u32,
        };
        if self
            .dev
            .write_tagged(
                BlockAddr(self.log_head),
                &commit.encode(),
                ReiserBlockType::JournalCommit.tag(),
            )
            .is_err()
        {
            return Err(self
                .env
                .panic("reiserfs", "journal-601: commit write failed"));
        }
        self.log_head += 1;
        let _ = self.dev.barrier();
        self.jseq = seq + 1;

        if self.opts.crash_mode {
            self.txn.clear();
            return Ok(());
        }

        // Checkpoint.
        for (addr, b, ty) in &blocks {
            if self
                .dev
                .write_tagged(BlockAddr(*addr), b, ty.tag())
                .is_err()
            {
                return Err(self.env.panic(
                    "reiserfs",
                    format!("journal-837: checkpoint write of block {addr} failed"),
                ));
            }
        }
        let jh_clean = JournalHeader {
            sequence: self.jseq,
            dirty: false,
        };
        if self
            .dev
            .write_tagged(
                BlockAddr(self.layout.journal_header),
                &jh_clean.encode(),
                ReiserBlockType::JournalHeader.tag(),
            )
            .is_err()
        {
            return Err(self
                .env
                .panic("reiserfs", "journal-601: journal header write failed"));
        }
        self.journal_dirty_on_disk = false;
        self.log_head = self.layout.journal_start;
        self.txn.clear();
        Ok(())
    }

    /// Replay the journal at mount.
    ///
    /// Descriptor and commit magic numbers are checked (`DSanity`), but
    /// journal *data* is replayed blindly — PAPER-BUG: "there is no sanity
    /// or type checking to detect corrupt journal data; therefore,
    /// replaying a corrupted journal block can make the file system
    /// unusable (e.g., the block is written as the super block)."
    fn replay_journal(&mut self) -> VfsResult<()> {
        self.env
            .klog
            .info("reiserfs", "replaying journal after unclean shutdown");
        let start = self.layout.journal_start;
        let end = start + self.layout.journal_len;
        let mut pos = start;
        let mut replayed = 0;
        'scan: while pos < end {
            let block = match self
                .dev
                .read_tagged(BlockAddr(pos), ReiserBlockType::JournalDesc.tag())
            {
                Ok(b) => b,
                Err(_) => {
                    self.env.klog.error(
                        "reiserfs",
                        format!("journal-{pos}: read failed during replay; mount aborted"),
                    );
                    return Err(Errno::EIO.into());
                }
            };
            let Some(desc) = JournalDesc::decode(&block) else {
                break 'scan; // end of valid log
            };
            if desc.sequence < self.jseq {
                break 'scan; // stale tail from a checkpointed transaction
            }
            let mut datas = Vec::new();
            for i in 0..desc.addrs.len() as u64 {
                let daddr = pos + 1 + i;
                if daddr >= end {
                    break 'scan;
                }
                match self
                    .dev
                    .read_tagged(BlockAddr(daddr), ReiserBlockType::JournalData.tag())
                {
                    Ok(b) => datas.push(b),
                    Err(_) => {
                        self.env.klog.error(
                            "reiserfs",
                            format!("journal-{daddr}: read failed during replay; mount aborted"),
                        );
                        return Err(Errno::EIO.into());
                    }
                }
            }
            let cpos = pos + 1 + desc.addrs.len() as u64;
            if cpos >= end {
                break 'scan;
            }
            let cblock = self
                .dev
                .read_tagged(BlockAddr(cpos), ReiserBlockType::JournalCommit.tag())
                .map_err(|e| {
                    self.env.klog.error(
                        "reiserfs",
                        format!("journal-{cpos}: commit read failed; mount aborted"),
                    );
                    VfsError::from(e)
                })?;
            let Some(commit) = JournalCommit::decode(&cblock) else {
                self.env
                    .klog
                    .info("reiserfs", "uncommitted transaction at log end; ignored");
                break 'scan;
            };
            if commit.sequence != desc.sequence {
                break 'scan;
            }
            // PAPER-BUG: journal data applied with no checks whatsoever.
            for (addr, data) in desc.addrs.iter().zip(&datas) {
                let _ =
                    self.dev
                        .write_tagged(BlockAddr(*addr), data, ReiserBlockType::LeafNode.tag());
            }
            replayed += 1;
            pos = cpos + 1;
        }
        // Re-read the superblock: replay may have rewritten it.
        if let Ok(b) = self
            .dev
            .read_tagged(BlockAddr(0), ReiserBlockType::Super.tag())
        {
            match ReiserSuper::decode(&b) {
                Some(sb) => self.sb = sb,
                None => {
                    // The paper's scenario made real: garbage was replayed
                    // over the superblock and the file system is unusable.
                    self.env.klog.error(
                        "reiserfs",
                        "superblock invalid after journal replay; file system unusable",
                    );
                    return Err(Errno::EUCLEAN.into());
                }
            }
        }
        let jh = JournalHeader {
            sequence: self.jseq + replayed,
            dirty: false,
        };
        self.jseq = jh.sequence;
        let _ = self.dev.write_tagged(
            BlockAddr(self.layout.journal_header),
            &jh.encode(),
            ReiserBlockType::JournalHeader.tag(),
        );
        self.env.klog.info(
            "reiserfs",
            format!("journal replay complete; {replayed} transaction(s)"),
        );
        Ok(())
    }

    // ==================================================================
    // Block read/write with policy.
    // ==================================================================

    /// Read a tree node with ReiserFS's policy: error codes checked
    /// (`DErrorCode`), block-header sanity checks on success (`DSanity`).
    /// A failed sanity check on the root or an internal node panics
    /// (PAPER-BUG: "ReiserFS sometimes calls panic on failing a sanity
    /// check, instead of simply returning an error code"); on a leaf it
    /// propagates `EUCLEAN`.
    fn read_node(
        &mut self,
        addr: u64,
        expected_level: Option<u16>,
        tag: ReiserBlockType,
    ) -> VfsResult<Node> {
        let block = if let Some(b) = self.txn.get(addr) {
            b.clone()
        } else if let Some(b) = self.cache.get(&addr) {
            b.clone()
        } else {
            match self.dev.read_tagged(BlockAddr(addr), tag.tag()) {
                Ok(b) => {
                    self.cache.insert(addr, b.clone());
                    b
                }
                Err(_) => {
                    self.env.klog.error(
                        "reiserfs",
                        format!("vs-5150: read of tree block {addr} failed"),
                    );
                    // Retry once for indirect/direct/data-path reads.
                    if matches!(tag, ReiserBlockType::Indirect | ReiserBlockType::Direct) {
                        match self.dev.read_tagged(BlockAddr(addr), tag.tag()) {
                            Ok(b) => {
                                self.cache.insert(addr, b.clone());
                                b
                            }
                            Err(_) => return Err(Errno::EIO.into()),
                        }
                    } else {
                        return Err(Errno::EIO.into());
                    }
                }
            }
        };
        match Node::decode(&block, expected_level) {
            Some(node) => Ok(node),
            None => {
                if matches!(tag, ReiserBlockType::Root | ReiserBlockType::Internal) {
                    // PAPER-BUG: panic instead of returning an error.
                    Err(self.env.panic(
                        "reiserfs",
                        format!("vs-6000: corrupted internal tree block {addr}"),
                    ))
                } else {
                    self.env.klog.error(
                        "reiserfs",
                        format!("vs-5151: tree block {addr} failed sanity check"),
                    );
                    Err(Errno::EUCLEAN.into())
                }
            }
        }
    }

    fn write_node(&mut self, addr: u64, node: &Node, tag: ReiserBlockType) {
        self.stage(addr, node.encode(), tag);
    }

    /// Read a user data block (tag `data`): error code checked, one retry,
    /// then propagate. No sanity checking is possible — data blocks carry
    /// no type information.
    fn read_data(&mut self, addr: u64) -> VfsResult<Block> {
        if let Some(b) = self.cache.get(&addr) {
            return Ok(b.clone());
        }
        match self
            .dev
            .read_tagged(BlockAddr(addr), ReiserBlockType::Data.tag())
        {
            Ok(b) => {
                self.cache.insert(addr, b.clone());
                Ok(b)
            }
            Err(_) => {
                self.env
                    .klog
                    .error("reiserfs", format!("read of data block {addr} failed"));
                match self
                    .dev
                    .read_tagged(BlockAddr(addr), ReiserBlockType::Data.tag())
                {
                    Ok(b) => {
                        self.cache.insert(addr, b.clone());
                        Ok(b)
                    }
                    Err(_) => Err(Errno::EIO.into()),
                }
            }
        }
    }

    /// Write a user data block in place.
    ///
    /// PAPER-BUG: "when an ordered data block write fails, ReiserFS
    /// journals and commits the transaction without handling the error" —
    /// the one write failure that does *not* panic.
    fn write_data(&mut self, addr: u64, block: &Block) -> VfsResult<()> {
        let r = self
            .dev
            .write_tagged(BlockAddr(addr), block, ReiserBlockType::Data.tag());
        self.cache.insert(addr, block.clone());
        if r.is_err() {
            // Silently ignored (RZero): metadata will point at stale data.
        }
        Ok(())
    }

    // ==================================================================
    // Allocation.
    // ==================================================================

    fn bitmap_op(&mut self, addr: u64, set: bool) -> VfsResult<()> {
        let (bm_addr, bit) = self.layout.bitmap_location(addr);
        let mut bm = if let Some(b) = self.txn.get(bm_addr.0) {
            b.clone()
        } else if let Some(b) = self.cache.get(&bm_addr.0) {
            b.clone()
        } else {
            match self
                .dev
                .read_tagged(bm_addr, ReiserBlockType::DataBitmap.tag())
            {
                Ok(b) => b,
                Err(_) => {
                    self.env
                        .klog
                        .error("reiserfs", format!("bitmap block {bm_addr} unreadable"));
                    return Err(Errno::EIO.into());
                }
            }
        };
        let byte = (bit / 8) as usize;
        let mask = 1u8 << (bit % 8);
        if set {
            bm[byte] |= mask;
        } else {
            bm[byte] &= !mask;
        }
        self.stage(bm_addr.0, bm, ReiserBlockType::DataBitmap);
        Ok(())
    }

    fn alloc_block(&mut self) -> VfsResult<u64> {
        // Scan bitmap blocks for a free bit (no sanity checking of bitmap
        // contents, per the paper).
        for i in 0..self.layout.bitmap_len {
            let bm_addr = self.layout.bitmap_start + i;
            let bm = if let Some(b) = self.txn.get(bm_addr) {
                b.clone()
            } else if let Some(b) = self.cache.get(&bm_addr) {
                b.clone()
            } else {
                match self
                    .dev
                    .read_tagged(BlockAddr(bm_addr), ReiserBlockType::DataBitmap.tag())
                {
                    Ok(b) => {
                        self.cache.insert(bm_addr, b.clone());
                        b
                    }
                    Err(_) => return Err(Errno::EIO.into()),
                }
            };
            let bits_per_block = BLOCK_SIZE as u64 * 8;
            let limit = bits_per_block.min(self.sb.total_blocks - i * bits_per_block);
            for bit in 0..limit {
                let byte = (bit / 8) as usize;
                if bm[byte] & (1 << (bit % 8)) == 0 {
                    let addr = i * bits_per_block + bit;
                    self.bitmap_op(addr, true)?;
                    self.sb.free_blocks = self.sb.free_blocks.saturating_sub(1);
                    self.stage(0, self.sb.encode(), ReiserBlockType::Super);
                    return Ok(addr);
                }
            }
        }
        Err(Errno::ENOSPC.into())
    }

    fn free_block(&mut self, addr: u64) -> VfsResult<()> {
        self.bitmap_op(addr, false)?;
        self.sb.free_blocks += 1;
        self.stage(0, self.sb.encode(), ReiserBlockType::Super);
        self.cache.remove(&addr);
        Ok(())
    }

    // ==================================================================
    // Tree operations.
    // ==================================================================

    fn tag_for(&self, addr: u64, level: u16, purpose: ReiserBlockType) -> ReiserBlockType {
        if addr == self.sb.root_block {
            ReiserBlockType::Root
        } else if level > 1 {
            ReiserBlockType::Internal
        } else {
            purpose
        }
    }

    /// Root-to-leaf path for `key`.
    fn search_path(&mut self, key: Key, purpose: ReiserBlockType) -> VfsResult<Vec<(u64, Node)>> {
        let mut addr = self.sb.root_block;
        let mut level = self.sb.tree_height as u16;
        let mut path = Vec::new();
        loop {
            let tag = self.tag_for(addr, level, purpose);
            let node = self.read_node(addr, Some(level), tag)?;
            let next = match &node {
                Node::Leaf(_) => None,
                Node::Internal { keys, children, .. } => {
                    Some(children[Node::child_index(keys, &key)])
                }
            };
            path.push((addr, node));
            match next {
                Some(n) => {
                    addr = n;
                    level -= 1;
                }
                None => return Ok(path),
            }
        }
    }

    /// Fetch the item with exactly `key`.
    fn tree_get(&mut self, key: Key, purpose: ReiserBlockType) -> VfsResult<Option<Item>> {
        let path = self.search_path(key, purpose)?;
        let (_, Node::Leaf(items)) = path.last().expect("nonempty path") else {
            return Ok(None);
        };
        Ok(items.iter().find(|i| i.key == key).cloned())
    }

    /// Insert (or replace) an item, splitting nodes as needed.
    fn tree_put(&mut self, item: Item, purpose: ReiserBlockType) -> VfsResult<()> {
        let mut path = self.search_path(item.key, purpose)?;
        let (leaf_addr, leaf) = path.pop().expect("nonempty path");
        let Node::Leaf(mut items) = leaf else {
            unreachable!("search ends at a leaf");
        };
        match items.binary_search_by(|i| i.key.cmp(&item.key)) {
            Ok(i) => items[i] = item,
            Err(i) => items.insert(i, item),
        }
        if Node::leaf_used(&items) <= LEAF_CAPACITY {
            self.write_node(leaf_addr, &Node::Leaf(items), ReiserBlockType::LeafNode);
            return Ok(());
        }
        // Split the leaf at the half-occupancy point.
        let mut split_at = 1;
        let mut acc = 0;
        for (i, it) in items.iter().enumerate() {
            acc += it.on_disk_size();
            if acc > LEAF_CAPACITY / 2 {
                split_at = (i + 1).min(items.len() - 1).max(1);
                break;
            }
        }
        let right_items = items.split_off(split_at);
        let sep = right_items[0].key;
        let right_addr = self.alloc_block()?;
        self.write_node(leaf_addr, &Node::Leaf(items), ReiserBlockType::LeafNode);
        self.write_node(
            right_addr,
            &Node::Leaf(right_items),
            ReiserBlockType::LeafNode,
        );
        self.insert_into_parents(path, leaf_addr, sep, right_addr)
    }

    /// Propagate a split upward.
    fn insert_into_parents(
        &mut self,
        mut path: Vec<(u64, Node)>,
        mut left_addr: u64,
        mut sep: Key,
        mut right_addr: u64,
    ) -> VfsResult<()> {
        loop {
            match path.pop() {
                None => {
                    // Root split: grow the tree.
                    let new_root = self.alloc_block()?;
                    let level = self.sb.tree_height as u16 + 1;
                    let node = Node::Internal {
                        level,
                        keys: vec![sep],
                        children: vec![left_addr, right_addr],
                    };
                    self.write_node(new_root, &node, ReiserBlockType::Internal);
                    self.sb.root_block = new_root;
                    self.sb.tree_height += 1;
                    self.stage(0, self.sb.encode(), ReiserBlockType::Super);
                    return Ok(());
                }
                Some((
                    addr,
                    Node::Internal {
                        level,
                        mut keys,
                        mut children,
                    },
                )) => {
                    let idx = children
                        .iter()
                        .position(|c| *c == left_addr)
                        .expect("split child is in its parent");
                    keys.insert(idx, sep);
                    children.insert(idx + 1, right_addr);
                    if children.len() <= INTERNAL_MAX {
                        let tag = self.tag_for(addr, level, ReiserBlockType::Internal);
                        self.write_node(
                            addr,
                            &Node::Internal {
                                level,
                                keys,
                                children,
                            },
                            tag,
                        );
                        return Ok(());
                    }
                    // Split this internal node too.
                    let mid = keys.len() / 2;
                    let sep2 = keys[mid];
                    let right_keys = keys.split_off(mid + 1);
                    keys.pop(); // sep2 moves up
                    let right_children = children.split_off(mid + 1);
                    let new_right = self.alloc_block()?;
                    self.write_node(
                        addr,
                        &Node::Internal {
                            level,
                            keys,
                            children,
                        },
                        ReiserBlockType::Internal,
                    );
                    self.write_node(
                        new_right,
                        &Node::Internal {
                            level,
                            keys: right_keys,
                            children: right_children,
                        },
                        ReiserBlockType::Internal,
                    );
                    left_addr = addr;
                    sep = sep2;
                    right_addr = new_right;
                }
                Some((_, Node::Leaf(_))) => unreachable!("parents are internal"),
            }
        }
    }

    /// Delete the item with `key` (no-op if absent). Empty leaves stay in
    /// the tree for later reuse (this model never merges nodes; real
    /// ReiserFS rebalances — DESIGN.md records the simplification).
    fn tree_delete(&mut self, key: Key, purpose: ReiserBlockType) -> VfsResult<bool> {
        let mut path = self.search_path(key, purpose)?;
        let (leaf_addr, leaf) = path.pop().expect("nonempty path");
        let Node::Leaf(mut items) = leaf else {
            unreachable!();
        };
        let before = items.len();
        items.retain(|i| i.key != key);
        if items.len() == before {
            return Ok(false);
        }
        self.write_node(leaf_addr, &Node::Leaf(items), ReiserBlockType::LeafNode);
        Ok(true)
    }

    /// All items with keys in `[lo, hi]`, left to right.
    fn tree_range(&mut self, lo: Key, hi: Key, purpose: ReiserBlockType) -> VfsResult<Vec<Item>> {
        let root = self.sb.root_block;
        let height = self.sb.tree_height as u16;
        let mut out = Vec::new();
        self.range_walk(root, height, lo, hi, purpose, &mut out)?;
        Ok(out)
    }

    fn range_walk(
        &mut self,
        addr: u64,
        level: u16,
        lo: Key,
        hi: Key,
        purpose: ReiserBlockType,
        out: &mut Vec<Item>,
    ) -> VfsResult<()> {
        let tag = self.tag_for(addr, level, purpose);
        match self.read_node(addr, Some(level), tag)? {
            Node::Leaf(items) => {
                out.extend(items.into_iter().filter(|i| i.key >= lo && i.key <= hi));
                Ok(())
            }
            Node::Internal { keys, children, .. } => {
                // Child i covers keys in [keys[i-1], keys[i]).
                for (i, child) in children.iter().enumerate() {
                    let child_lo = if i == 0 { None } else { Some(keys[i - 1]) };
                    let child_hi = keys.get(i);
                    let skip =
                        child_lo.is_some_and(|l| hi < l) || child_hi.is_some_and(|h| lo >= *h);
                    if !skip {
                        self.range_walk(*child, level - 1, lo, hi, purpose, out)?;
                    }
                }
                Ok(())
            }
        }
    }

    // ==================================================================
    // Object helpers.
    // ==================================================================

    fn stat_of(&mut self, oid: u64) -> VfsResult<StatData> {
        let item = self
            .tree_get(Key::new(oid, ItemKind::Stat, 0), ReiserBlockType::StatItem)?
            .ok_or(Errno::ENOENT)?;
        StatData::decode(&item.payload).ok_or_else(|| {
            self.env.klog.error(
                "reiserfs",
                format!("vs-13050: corrupt stat data for object {oid}"),
            );
            VfsError::Errno(Errno::EUCLEAN)
        })
    }

    fn put_stat(&mut self, oid: u64, sd: &StatData) -> VfsResult<()> {
        self.tree_put(
            Item {
                key: Key::new(oid, ItemKind::Stat, 0),
                payload: sd.encode(),
            },
            ReiserBlockType::StatItem,
        )
    }

    /// Find a directory entry, probing past hash collisions.
    fn dirent_find(&mut self, dir: u64, name: &str) -> VfsResult<Option<(u64, u64, FileType)>> {
        let mut h = name_hash(name);
        loop {
            let Some(item) =
                self.tree_get(Key::new(dir, ItemKind::Dir, h), ReiserBlockType::DirItem)?
            else {
                return Ok(None);
            };
            if let Some((child, ftype, ename)) = decode_dirent(&item.payload) {
                if ename == name {
                    return Ok(Some((h, child, ftype)));
                }
            }
            h += 1; // collision probe
        }
    }

    fn dirent_add(&mut self, dir: u64, name: &str, child: u64, ftype: FileType) -> VfsResult<()> {
        let mut h = name_hash(name);
        while self
            .tree_get(Key::new(dir, ItemKind::Dir, h), ReiserBlockType::DirItem)?
            .is_some()
        {
            h += 1;
        }
        self.tree_put(
            Item {
                key: Key::new(dir, ItemKind::Dir, h),
                payload: encode_dirent(child, ftype, name),
            },
            ReiserBlockType::DirItem,
        )
    }

    fn alloc_oid(&mut self) -> u64 {
        let oid = self.sb.next_oid;
        self.sb.next_oid += 1;
        self.stage(0, self.sb.encode(), ReiserBlockType::Super);
        oid
    }

    /// Indirect-item chunk for file block `idx`.
    fn body_ptrs(&mut self, oid: u64, chunk: u64) -> VfsResult<Vec<u32>> {
        Ok(self
            .tree_get(
                Key::new(oid, ItemKind::Indirect, chunk),
                ReiserBlockType::Indirect,
            )?
            .map(|i| decode_ptrs(&i.payload))
            .unwrap_or_default())
    }

    fn put_body_ptrs(&mut self, oid: u64, chunk: u64, ptrs: &[u32]) -> VfsResult<()> {
        self.tree_put(
            Item {
                key: Key::new(oid, ItemKind::Indirect, chunk),
                payload: encode_ptrs(ptrs),
            },
            ReiserBlockType::Indirect,
        )
    }

    fn tail_of(&mut self, oid: u64) -> VfsResult<Option<Vec<u8>>> {
        Ok(self
            .tree_get(Key::new(oid, ItemKind::Direct, 0), ReiserBlockType::Direct)?
            .map(|i| i.payload))
    }

    /// Free a file's body (tail + indirect chunks + data blocks).
    ///
    /// PAPER-BUG: a read failure on an indirect item during this path is
    /// detected but *ignored* — the object is deleted anyway and the data
    /// blocks are never freed, leaking space.
    fn free_body(&mut self, oid: u64, size: u64) -> VfsResult<()> {
        let _ = self.tree_delete(Key::new(oid, ItemKind::Direct, 0), ReiserBlockType::Direct)?;
        let chunks = size
            .div_ceil(BLOCK_SIZE as u64)
            .div_ceil(PTRS_PER_INDIRECT as u64);
        for chunk in 0..chunks.max(1) {
            match self.body_ptrs(oid, chunk) {
                Ok(ptrs) => {
                    for p in ptrs {
                        if p != 0 {
                            self.free_block(p as u64)?;
                        }
                    }
                    let _ = self.tree_delete(
                        Key::new(oid, ItemKind::Indirect, chunk),
                        ReiserBlockType::Indirect,
                    )?;
                }
                Err(VfsError::Errno(Errno::EIO)) => {
                    // PAPER-BUG: detected (logged by read_node) but ignored:
                    // those blocks are now leaked.
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
}

impl<D: BlockDevice + RawAccess> SpecificFs for ReiserFs<D> {
    fn env(&self) -> &FsEnv {
        &self.env
    }

    fn root_ino(&self) -> u64 {
        ROOT_OID
    }

    fn lookup(&mut self, dir: u64, name: &str) -> VfsResult<u64> {
        self.env.check_alive()?;
        let sd = self.stat_of(dir)?;
        if sd.ftype != FileType::Directory {
            return Err(Errno::ENOTDIR.into());
        }
        if name == "." {
            return Ok(dir);
        }
        if name == ".." {
            return Ok(sd.parent);
        }
        match self.dirent_find(dir, name)? {
            Some((_, child, _)) => Ok(child),
            None => Err(Errno::ENOENT.into()),
        }
    }

    fn getattr(&mut self, oid: u64) -> VfsResult<InodeAttr> {
        self.env.check_alive()?;
        let sd = self.stat_of(oid)?;
        Ok(InodeAttr {
            ino: oid,
            ftype: sd.ftype,
            size: sd.size,
            nlink: sd.nlink,
            mode: sd.mode,
            uid: sd.uid,
            gid: sd.gid,
            mtime: sd.mtime,
        })
    }

    fn chmod(&mut self, oid: u64, mode: u32) -> VfsResult<()> {
        self.env.check_writable()?;
        let mut sd = self.stat_of(oid)?;
        sd.mode = mode & 0o7777;
        self.put_stat(oid, &sd)?;
        self.maybe_commit()
    }

    fn chown(&mut self, oid: u64, uid: u32, gid: u32) -> VfsResult<()> {
        self.env.check_writable()?;
        let mut sd = self.stat_of(oid)?;
        sd.uid = uid;
        sd.gid = gid;
        self.put_stat(oid, &sd)?;
        self.maybe_commit()
    }

    fn utimes(&mut self, oid: u64, mtime: u64) -> VfsResult<()> {
        self.env.check_writable()?;
        let mut sd = self.stat_of(oid)?;
        sd.mtime = mtime;
        self.put_stat(oid, &sd)?;
        self.maybe_commit()
    }

    fn create(&mut self, dir: u64, name: &str, mode: u32) -> VfsResult<u64> {
        self.env.check_writable()?;
        let dsd = self.stat_of(dir)?;
        if dsd.ftype != FileType::Directory {
            return Err(Errno::ENOTDIR.into());
        }
        if self.dirent_find(dir, name)?.is_some() {
            return Err(Errno::EEXIST.into());
        }
        let oid = self.alloc_oid();
        self.put_stat(oid, &StatData::new(FileType::Regular, mode, dir))?;
        self.dirent_add(dir, name, oid, FileType::Regular)?;
        self.maybe_commit()?;
        Ok(oid)
    }

    fn mkdir(&mut self, dir: u64, name: &str, mode: u32) -> VfsResult<u64> {
        self.env.check_writable()?;
        if self.dirent_find(dir, name)?.is_some() {
            return Err(Errno::EEXIST.into());
        }
        let oid = self.alloc_oid();
        self.put_stat(oid, &StatData::new(FileType::Directory, mode, dir))?;
        self.dirent_add(dir, name, oid, FileType::Directory)?;
        let mut dsd = self.stat_of(dir)?;
        dsd.nlink += 1;
        self.put_stat(dir, &dsd)?;
        self.maybe_commit()?;
        Ok(oid)
    }

    fn unlink(&mut self, dir: u64, name: &str) -> VfsResult<()> {
        self.env.check_writable()?;
        let Some((h, child, _)) = self.dirent_find(dir, name)? else {
            return Err(Errno::ENOENT.into());
        };
        let mut sd = self.stat_of(child)?;
        if sd.ftype == FileType::Directory {
            return Err(Errno::EISDIR.into());
        }
        self.tree_delete(Key::new(dir, ItemKind::Dir, h), ReiserBlockType::DirItem)?;
        sd.nlink = sd.nlink.saturating_sub(1);
        if sd.nlink == 0 {
            self.free_body(child, sd.size)?;
            self.tree_delete(
                Key::new(child, ItemKind::Stat, 0),
                ReiserBlockType::StatItem,
            )?;
        } else {
            self.put_stat(child, &sd)?;
        }
        self.maybe_commit()
    }

    fn rmdir(&mut self, dir: u64, name: &str) -> VfsResult<()> {
        self.env.check_writable()?;
        let Some((h, child, _)) = self.dirent_find(dir, name)? else {
            return Err(Errno::ENOENT.into());
        };
        let sd = self.stat_of(child)?;
        if sd.ftype != FileType::Directory {
            return Err(Errno::ENOTDIR.into());
        }
        let entries = self.tree_range(
            Key::min_of(child, ItemKind::Dir),
            Key::max_of(child, ItemKind::Dir),
            ReiserBlockType::DirItem,
        )?;
        if !entries.is_empty() {
            return Err(Errno::ENOTEMPTY.into());
        }
        self.tree_delete(Key::new(dir, ItemKind::Dir, h), ReiserBlockType::DirItem)?;
        self.tree_delete(
            Key::new(child, ItemKind::Stat, 0),
            ReiserBlockType::StatItem,
        )?;
        let mut dsd = self.stat_of(dir)?;
        dsd.nlink = dsd.nlink.saturating_sub(1);
        self.put_stat(dir, &dsd)?;
        self.maybe_commit()
    }

    fn link(&mut self, oid: u64, dir: u64, name: &str) -> VfsResult<()> {
        self.env.check_writable()?;
        if self.dirent_find(dir, name)?.is_some() {
            return Err(Errno::EEXIST.into());
        }
        let mut sd = self.stat_of(oid)?;
        if sd.ftype == FileType::Directory {
            return Err(Errno::EISDIR.into());
        }
        sd.nlink += 1;
        self.put_stat(oid, &sd)?;
        self.dirent_add(dir, name, oid, sd.ftype)?;
        self.maybe_commit()
    }

    fn symlink(&mut self, dir: u64, name: &str, target: &str) -> VfsResult<u64> {
        self.env.check_writable()?;
        if self.dirent_find(dir, name)?.is_some() {
            return Err(Errno::EEXIST.into());
        }
        if target.len() > TAIL_MAX {
            return Err(Errno::ENAMETOOLONG.into());
        }
        let oid = self.alloc_oid();
        let mut sd = StatData::new(FileType::Symlink, 0o777, dir);
        sd.size = target.len() as u64;
        self.put_stat(oid, &sd)?;
        self.tree_put(
            Item {
                key: Key::new(oid, ItemKind::Direct, 0),
                payload: target.as_bytes().to_vec(),
            },
            ReiserBlockType::Direct,
        )?;
        self.dirent_add(dir, name, oid, FileType::Symlink)?;
        self.maybe_commit()?;
        Ok(oid)
    }

    fn readlink(&mut self, oid: u64) -> VfsResult<String> {
        self.env.check_alive()?;
        let sd = self.stat_of(oid)?;
        if sd.ftype != FileType::Symlink {
            return Err(Errno::EINVAL.into());
        }
        let tail = self.tail_of(oid)?.unwrap_or_default();
        Ok(String::from_utf8_lossy(&tail).into_owned())
    }

    fn rename(
        &mut self,
        src_dir: u64,
        src_name: &str,
        dst_dir: u64,
        dst_name: &str,
    ) -> VfsResult<()> {
        self.env.check_writable()?;
        let Some((sh, child, ftype)) = self.dirent_find(src_dir, src_name)? else {
            return Err(Errno::ENOENT.into());
        };
        if let Some((_, existing, eftype)) = self.dirent_find(dst_dir, dst_name)? {
            if existing == child {
                return Ok(());
            }
            if eftype == FileType::Directory {
                return Err(Errno::EISDIR.into());
            }
            self.unlink(dst_dir, dst_name)?;
        }
        self.tree_delete(
            Key::new(src_dir, ItemKind::Dir, sh),
            ReiserBlockType::DirItem,
        )?;
        self.dirent_add(dst_dir, dst_name, child, ftype)?;
        if ftype == FileType::Directory && src_dir != dst_dir {
            let mut sd = self.stat_of(child)?;
            sd.parent = dst_dir;
            self.put_stat(child, &sd)?;
            let mut s = self.stat_of(src_dir)?;
            s.nlink = s.nlink.saturating_sub(1);
            self.put_stat(src_dir, &s)?;
            let mut d = self.stat_of(dst_dir)?;
            d.nlink += 1;
            self.put_stat(dst_dir, &d)?;
        }
        self.maybe_commit()
    }

    fn read(&mut self, oid: u64, off: u64, len: usize) -> VfsResult<Vec<u8>> {
        self.env.check_alive()?;
        let sd = self.stat_of(oid)?;
        if sd.ftype == FileType::Directory {
            return Err(Errno::EISDIR.into());
        }
        if off >= sd.size {
            return Ok(Vec::new());
        }
        let end = (off + len as u64).min(sd.size);
        // Tail-stored file?
        if let Some(tail) = self.tail_of(oid)? {
            let lo = off as usize;
            let hi = (end as usize).min(tail.len());
            return Ok(if lo < hi {
                tail[lo..hi].to_vec()
            } else {
                Vec::new()
            });
        }
        let bs = BLOCK_SIZE as u64;
        let mut out = Vec::with_capacity((end - off) as usize);
        let mut pos = off;
        while pos < end {
            let idx = pos / bs;
            let within = (pos % bs) as usize;
            let take = ((end - pos) as usize).min(BLOCK_SIZE - within);
            let chunk = idx / PTRS_PER_INDIRECT as u64;
            let ptrs = self.body_ptrs(oid, chunk)?;
            let slot = (idx % PTRS_PER_INDIRECT as u64) as usize;
            let ptr = ptrs.get(slot).copied().unwrap_or(0);
            if ptr == 0 {
                out.extend(std::iter::repeat_n(0u8, take));
            } else {
                let b = self.read_data(ptr as u64)?;
                out.extend_from_slice(b.get_bytes(within, take));
            }
            pos += take as u64;
        }
        Ok(out)
    }

    fn write(&mut self, oid: u64, off: u64, data: &[u8]) -> VfsResult<usize> {
        self.env.check_writable()?;
        let mut sd = self.stat_of(oid)?;
        if sd.ftype == FileType::Directory {
            return Err(Errno::EISDIR.into());
        }
        let end = off + data.len() as u64;

        // Small files live as tails (direct items) in the leaf.
        let existing_tail = self.tail_of(oid)?;
        if end <= TAIL_MAX as u64 && (existing_tail.is_some() || sd.size == 0) {
            let mut tail = existing_tail.unwrap_or_default();
            if tail.len() < end as usize {
                tail.resize(end as usize, 0);
            }
            tail[off as usize..end as usize].copy_from_slice(data);
            self.tree_put(
                Item {
                    key: Key::new(oid, ItemKind::Direct, 0),
                    payload: tail,
                },
                ReiserBlockType::Direct,
            )?;
            sd.size = sd.size.max(end);
            self.put_stat(oid, &sd)?;
            self.maybe_commit()?;
            return Ok(data.len());
        }

        // Tail conversion: move an existing tail into a data block.
        if let Some(tail) = existing_tail {
            let baddr = self.alloc_block()?;
            self.write_data(baddr, &Block::from_bytes(&tail))?;
            self.put_body_ptrs(oid, 0, &[baddr as u32])?;
            self.tree_delete(Key::new(oid, ItemKind::Direct, 0), ReiserBlockType::Direct)?;
        }

        let bs = BLOCK_SIZE as u64;
        let mut pos = off;
        let mut src = 0usize;
        while pos < end {
            let idx = pos / bs;
            let within = (pos % bs) as usize;
            let take = ((end - pos) as usize).min(BLOCK_SIZE - within);
            let chunk = idx / PTRS_PER_INDIRECT as u64;
            let slot = (idx % PTRS_PER_INDIRECT as u64) as usize;
            let mut ptrs = self.body_ptrs(oid, chunk)?;
            if ptrs.len() <= slot {
                ptrs.resize(slot + 1, 0);
            }
            let whole = within == 0 && take == BLOCK_SIZE;
            let mut block = if ptrs[slot] == 0 || whole {
                Block::zeroed()
            } else {
                self.read_data(ptrs[slot] as u64)?
            };
            if ptrs[slot] == 0 {
                ptrs[slot] = self.alloc_block()? as u32;
                self.put_body_ptrs(oid, chunk, &ptrs)?;
            }
            block.put_bytes(within, &data[src..src + take]);
            self.write_data(ptrs[slot] as u64, &block)?;
            pos += take as u64;
            src += take;
        }
        sd.size = sd.size.max(end);
        self.put_stat(oid, &sd)?;
        self.maybe_commit()?;
        Ok(data.len())
    }

    fn truncate(&mut self, oid: u64, size: u64) -> VfsResult<()> {
        self.env.check_writable()?;
        let mut sd = self.stat_of(oid)?;
        if sd.ftype == FileType::Directory {
            return Err(Errno::EISDIR.into());
        }
        if size >= sd.size {
            // Extension: tail-stored files get their tail padded; block
            // files read zeros from holes.
            if let Some(mut tail) = self.tail_of(oid)? {
                if size <= TAIL_MAX as u64 {
                    tail.resize(size as usize, 0);
                    self.tree_put(
                        Item {
                            key: Key::new(oid, ItemKind::Direct, 0),
                            payload: tail,
                        },
                        ReiserBlockType::Direct,
                    )?;
                } else {
                    let baddr = self.alloc_block()?;
                    self.write_data(baddr, &Block::from_bytes(&tail))?;
                    self.put_body_ptrs(oid, 0, &[baddr as u32])?;
                    self.tree_delete(Key::new(oid, ItemKind::Direct, 0), ReiserBlockType::Direct)?;
                }
            }
            sd.size = size;
            self.put_stat(oid, &sd)?;
            return self.maybe_commit();
        }
        // Shrink.
        if let Some(mut tail) = self.tail_of(oid)? {
            tail.truncate(size as usize);
            self.tree_put(
                Item {
                    key: Key::new(oid, ItemKind::Direct, 0),
                    payload: tail,
                },
                ReiserBlockType::Direct,
            )?;
        } else {
            let bs = BLOCK_SIZE as u64;
            let keep = size.div_ceil(bs);
            let old = sd.size.div_ceil(bs);
            let mut chunk = keep / PTRS_PER_INDIRECT as u64;
            let last_chunk = old.div_ceil(PTRS_PER_INDIRECT as u64);
            while chunk <= last_chunk {
                // PAPER-BUG: indirect read failures here are ignored and
                // the blocks leak (space accounting proceeds regardless).
                match self.body_ptrs(oid, chunk) {
                    Ok(mut ptrs) => {
                        let chunk_base = chunk * PTRS_PER_INDIRECT as u64;
                        for (i, p) in ptrs.iter_mut().enumerate() {
                            if chunk_base + i as u64 >= keep && *p != 0 {
                                self.free_block(*p as u64)?;
                                *p = 0;
                            }
                        }
                        if ptrs.iter().all(|p| *p == 0) {
                            let _ = self.tree_delete(
                                Key::new(oid, ItemKind::Indirect, chunk),
                                ReiserBlockType::Indirect,
                            )?;
                        } else {
                            self.put_body_ptrs(oid, chunk, &ptrs)?;
                        }
                    }
                    Err(VfsError::Errno(Errno::EIO)) => {}
                    Err(e) => return Err(e),
                }
                chunk += 1;
            }
            // Zero the tail of a partial final block.
            if !size.is_multiple_of(bs) {
                let idx = size / bs;
                let ptrs = self.body_ptrs(oid, idx / PTRS_PER_INDIRECT as u64)?;
                if let Some(&p) = ptrs.get((idx % PTRS_PER_INDIRECT as u64) as usize) {
                    if p != 0 {
                        let mut b = self.read_data(p as u64)?;
                        for byte in &mut b[(size % bs) as usize..] {
                            *byte = 0;
                        }
                        self.write_data(p as u64, &b)?;
                    }
                }
            }
        }
        sd.size = size;
        self.put_stat(oid, &sd)?;
        self.maybe_commit()
    }

    fn readdir(&mut self, dir: u64) -> VfsResult<Vec<DirEntry>> {
        self.env.check_alive()?;
        let sd = self.stat_of(dir)?;
        if sd.ftype != FileType::Directory {
            return Err(Errno::ENOTDIR.into());
        }
        let mut out = vec![
            DirEntry {
                name: ".".into(),
                ino: dir,
                ftype: FileType::Directory,
            },
            DirEntry {
                name: "..".into(),
                ino: sd.parent,
                ftype: FileType::Directory,
            },
        ];
        for item in self.tree_range(
            Key::min_of(dir, ItemKind::Dir),
            Key::max_of(dir, ItemKind::Dir),
            ReiserBlockType::DirItem,
        )? {
            if let Some((child, ftype, name)) = decode_dirent(&item.payload) {
                out.push(DirEntry {
                    name,
                    ino: child,
                    ftype,
                });
            }
        }
        Ok(out)
    }

    fn fsync(&mut self, _oid: u64) -> VfsResult<()> {
        self.env.check_alive()?;
        self.commit()?;
        self.dev.flush().map_err(VfsError::from)
    }

    fn sync(&mut self) -> VfsResult<()> {
        self.env.check_alive()?;
        self.commit()?;
        self.dev.flush().map_err(VfsError::from)
    }

    fn statfs(&mut self) -> VfsResult<StatFs> {
        self.env.check_alive()?;
        Ok(StatFs {
            block_size: BLOCK_SIZE as u32,
            blocks: self.sb.total_blocks - self.layout.alloc_start,
            blocks_free: self.sb.free_blocks,
            inodes: u64::MAX / 2,
            inodes_free: u64::MAX / 2 - self.sb.next_oid,
        })
    }

    fn unmount(&mut self) -> VfsResult<()> {
        self.env.check_alive()?;
        self.commit()?;
        self.sb.dirty = false;
        self.write_super_direct()?;
        let _ = self.dev.flush();
        self.env.set_state(MountState::Unmounted);
        Ok(())
    }
}

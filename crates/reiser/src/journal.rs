//! The ReiserFS journal: header, descriptor, commit blocks, and the
//! running transaction.
//!
//! ReiserFS journals whole metadata blocks, like ext3. Descriptor and
//! commit blocks carry magic numbers that *are* checked during replay
//! (§5.2: "the journal descriptor and commit blocks also have additional
//! information" that is validated). Journal **data** blocks carry no type
//! information and are replayed blindly — the paper's headline ReiserFS
//! vulnerability.

use std::collections::HashMap;

use iron_core::{Block, BLOCK_SIZE};

use crate::layout::ReiserBlockType;

/// Magic in journal descriptor/commit blocks (the real one, "ReIsErLB").
pub const JOURNAL_MAGIC: &[u8; 8] = b"ReIsErLB";

/// The journal header block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JournalHeader {
    /// Next transaction id.
    pub sequence: u64,
    /// True if the log holds committed-but-unflushed transactions.
    pub dirty: bool,
}

impl JournalHeader {
    /// Serialize.
    pub fn encode(&self) -> Block {
        let mut b = Block::zeroed();
        b.put_bytes(0, JOURNAL_MAGIC);
        b.put_u64(8, self.sequence);
        b.put_u32(16, u32::from(self.dirty));
        b
    }

    /// Decode with the magic check.
    pub fn decode(b: &Block) -> Option<JournalHeader> {
        if b.get_bytes(0, 8) != JOURNAL_MAGIC {
            return None;
        }
        Some(JournalHeader {
            sequence: b.get_u64(8),
            dirty: b.get_u32(16) != 0,
        })
    }
}

/// Maximum home addresses per descriptor.
pub const DESC_CAPACITY: usize = (BLOCK_SIZE - 32) / 8;

/// A journal descriptor: home addresses of the copies that follow.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalDesc {
    /// Transaction id.
    pub sequence: u64,
    /// Home addresses.
    pub addrs: Vec<u64>,
}

impl JournalDesc {
    /// Serialize.
    ///
    /// # Panics
    /// Panics if over [`DESC_CAPACITY`].
    pub fn encode(&self) -> Block {
        assert!(self.addrs.len() <= DESC_CAPACITY);
        let mut b = Block::zeroed();
        b.put_bytes(0, JOURNAL_MAGIC);
        b.put_u32(8, 1); // kind: descriptor
        b.put_u64(16, self.sequence);
        b.put_u32(24, self.addrs.len() as u32);
        let mut off = 32;
        for a in &self.addrs {
            b.put_u64(off, *a);
            off += 8;
        }
        b
    }

    /// Decode with magic/kind/count checks.
    pub fn decode(b: &Block) -> Option<JournalDesc> {
        if b.get_bytes(0, 8) != JOURNAL_MAGIC || b.get_u32(8) != 1 {
            return None;
        }
        let count = b.get_u32(24) as usize;
        if count > DESC_CAPACITY {
            return None;
        }
        let mut addrs = Vec::with_capacity(count);
        let mut off = 32;
        for _ in 0..count {
            addrs.push(b.get_u64(off));
            off += 8;
        }
        Some(JournalDesc {
            sequence: b.get_u64(16),
            addrs,
        })
    }
}

/// A journal commit block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JournalCommit {
    /// Transaction id.
    pub sequence: u64,
    /// Number of blocks in the transaction.
    pub count: u32,
}

impl JournalCommit {
    /// Serialize.
    pub fn encode(&self) -> Block {
        let mut b = Block::zeroed();
        b.put_bytes(0, JOURNAL_MAGIC);
        b.put_u32(8, 2); // kind: commit
        b.put_u64(16, self.sequence);
        b.put_u32(24, self.count);
        b
    }

    /// Decode with magic/kind checks.
    pub fn decode(b: &Block) -> Option<JournalCommit> {
        if b.get_bytes(0, 8) != JOURNAL_MAGIC || b.get_u32(8) != 2 {
            return None;
        }
        Some(JournalCommit {
            sequence: b.get_u64(16),
            count: b.get_u32(24),
        })
    }
}

/// The running transaction: dirty metadata blocks in first-dirty order.
#[derive(Debug, Default)]
pub struct Txn {
    order: Vec<u64>,
    map: HashMap<u64, (Block, ReiserBlockType)>,
}

impl Txn {
    /// Empty transaction.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stage a block.
    pub fn put(&mut self, addr: u64, block: Block, ty: ReiserBlockType) {
        if !self.map.contains_key(&addr) {
            self.order.push(addr);
        }
        self.map.insert(addr, (block, ty));
    }

    /// Staged copy, if any.
    pub fn get(&self, addr: u64) -> Option<&Block> {
        self.map.get(&addr).map(|(b, _)| b)
    }

    /// Drop a staged block (freed before commit).
    pub fn forget(&mut self, addr: u64) {
        if self.map.remove(&addr).is_some() {
            self.order.retain(|a| *a != addr);
        }
    }

    /// Blocks in first-dirty order.
    pub fn blocks(&self) -> Vec<(u64, Block, ReiserBlockType)> {
        self.order
            .iter()
            .map(|a| {
                let (b, t) = &self.map[a];
                (*a, b.clone(), *t)
            })
            .collect()
    }

    /// Dirty count.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Nothing staged?
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Reset.
    pub fn clear(&mut self) {
        self.order.clear();
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trip() {
        let h = JournalHeader {
            sequence: 9,
            dirty: true,
        };
        assert_eq!(JournalHeader::decode(&h.encode()), Some(h));
        assert_eq!(JournalHeader::decode(&Block::zeroed()), None);
    }

    #[test]
    fn desc_and_commit_round_trip_and_cross_reject() {
        let d = JournalDesc {
            sequence: 4,
            addrs: vec![10, 20, 30],
        };
        let c = JournalCommit {
            sequence: 4,
            count: 3,
        };
        assert_eq!(JournalDesc::decode(&d.encode()), Some(d.clone()));
        assert_eq!(JournalCommit::decode(&c.encode()), Some(c));
        assert_eq!(JournalDesc::decode(&c.encode()), None);
        assert_eq!(JournalCommit::decode(&d.encode()), None);
    }

    #[test]
    fn txn_staging() {
        let mut t = Txn::new();
        t.put(5, Block::filled(1), ReiserBlockType::LeafNode);
        t.put(6, Block::filled(2), ReiserBlockType::DataBitmap);
        t.put(5, Block::filled(3), ReiserBlockType::LeafNode);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(5), Some(&Block::filled(3)));
        t.forget(5);
        assert_eq!(t.len(), 1);
        t.clear();
        assert!(t.is_empty());
    }
}

//! # iron-cluster — replicated multi-disk volumes
//!
//! The paper's Figure-2 study stops at a single disk: a sticky latent
//! error or silent corruption that defeats one file system's internal
//! redundancy (ixt3's Mr/Dp) is fatal. This crate adds the storage-system
//! tier above it:
//!
//! * [`ReplicatedDisk`] — one logical volume mirrored across N replica
//!   stacks behind [`iron_blockdev::StackBuilder`] (each replica keeps
//!   its own fault-injection, cache, and trace layers). Writes fan out in
//!   replica order; barriers and flushes are forwarded to every replica,
//!   so per-replica ordering and durability semantics match a single
//!   disk exactly.
//! * [`ReadPolicy`] — primary (failover), round-robin (load spreading),
//!   or quorum: read every replica and arbitrate by content majority.
//!   Quorum detects single-replica silent corruption (`DRedundancy`)
//!   that no single-disk file system policy can see, masks it, and
//!   queues the divergent copy for repair.
//! * [`RepairReport`]-producing repair engine — heal a divergent or
//!   corrupted replica from its quorum peers, with the ixt3 scrub
//!   discipline (rewrite, then verify by re-read through the device
//!   path; sticky faults count unrecoverable). Queued divergences render
//!   as [`iron_fsck::FsckIssue::ReplicaDivergence`] and plan as
//!   `RecoveryLevel::RRedundancy` via
//!   [`ReplicatedDisk::peer_repair_plan`].
//!
//! The fingerprint campaign gains a replica-fault topology axis on top of
//! this device (`iron_fingerprint::cluster`), turning the policy × block
//! type matrix into a 3D study of policy × block type × replica-fault
//! topology. The `cluster_smoke` bench reports per-replica-count
//! throughput and repair rate into `BENCH_cluster.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod repair;
pub mod replicated;

pub use repair::RepairReport;
pub use replicated::{
    mirror_with, ClusterStackExt, ClusterStats, ClusterStatsSnapshot, DivergenceKind, ReadPolicy,
    ReplicatedDisk,
};

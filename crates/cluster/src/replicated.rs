//! [`ReplicatedDisk`]: one logical volume mirrored across N replicas.
//!
//! Each replica is an arbitrary device stack (typically a [`MemDisk`]
//! with its own fault-injection, cache, and trace layers), so faults can
//! be injected per replica while the file system above sees a single
//! block device. Writes fan out to every replica in index order; barriers
//! and flushes are forwarded to each replica so per-replica ordering and
//! durability semantics are preserved exactly as on a single disk. Reads
//! follow a configurable [`ReadPolicy`]; the quorum policy arbitrates by
//! content majority and records every disagreement for the repair engine
//! (`repair` module) to heal from the peers.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use iron_blockdev::{BlockDevice, DiskError, DiskResult, MemDisk, RawAccess, StackBuilder};
use iron_core::{Block, BlockAddr, BlockTag, IoKind, SimClock};

/// How reads are routed across the replicas.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum ReadPolicy {
    /// Always read replica 0; fail over to the next replica on error.
    #[default]
    Primary,
    /// Rotate the starting replica per read (load spreading); fail over
    /// to the next replica on error.
    RoundRobin,
    /// Read **every** replica and return the content majority. Detects
    /// silent single-replica corruption (`DRedundancy`) that no failover
    /// policy can see; disagreeing replicas are recorded for repair.
    Quorum,
}

/// How a replica was observed to disagree with the volume.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum DivergenceKind {
    /// Returned different content than the quorum majority.
    Mismatch,
    /// The replica's read failed with an explicit error.
    Unreadable,
    /// The replica missed a fan-out write (its write failed); its medium
    /// is stale at this address.
    StaleWrite,
}

/// Counters for one replicated volume (a point-in-time copy; obtained
/// from [`ClusterStats::snapshot`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ClusterStatsSnapshot {
    /// Logical reads served by the volume.
    pub reads: u64,
    /// Logical writes fanned out.
    pub writes: u64,
    /// Quorum reads that found a content majority.
    pub quorum_reads: u64,
    /// Divergence detection events (one per disagreeing replica per
    /// arbitration; repeated detections of the same block count again).
    pub divergences: u64,
    /// Read attempts that failed over to another replica
    /// (primary/round-robin policies).
    pub failovers: u64,
    /// Writes acknowledged with a minority of replicas failed (the
    /// failed replicas are queued for repair).
    pub degraded_writes: u64,
    /// Quorum reads with no content majority — detected divergence the
    /// volume could not arbitrate (surfaced as an I/O error).
    pub unarbitrated_reads: u64,
    /// Reads whose replica exceeded the I/O deadline; the initiator gave
    /// up on the slow replica and served the request from a peer.
    pub hedged_reads: u64,
    /// Reads that skipped a replica already marked slow (suspect), so a
    /// hung spindle is not consulted — and cannot stall — again.
    pub slow_replica_skips: u64,
}

#[derive(Debug, Default)]
struct ClusterState {
    stats: ClusterStatsSnapshot,
    /// Blocks queued for repair: `(addr, replica) → (kind, tag)`. The
    /// `BTreeMap` keeps findings canonically ordered, like an
    /// [`iron_fsck::FsckReport`].
    pending: BTreeMap<(u64, usize), (DivergenceKind, BlockTag)>,
}

/// Shared observability handle for a [`ReplicatedDisk`].
///
/// Cloning shares state (the same pattern as `FaultPlan` / `IoTrace`), so
/// a harness can keep a handle even after the device itself has been
/// consumed by a failed mount.
#[derive(Clone, Debug, Default)]
pub struct ClusterStats {
    state: Arc<Mutex<ClusterState>>,
}

impl ClusterStats {
    /// Current counter values.
    pub fn snapshot(&self) -> ClusterStatsSnapshot {
        self.state.lock().unwrap().stats
    }

    /// Number of `(addr, replica)` pairs currently queued for repair.
    pub fn pending_repairs(&self) -> usize {
        self.state.lock().unwrap().pending.len()
    }
}

/// One logical volume mirrored across N replica devices.
pub struct ReplicatedDisk<D> {
    replicas: Vec<D>,
    policy: ReadPolicy,
    rr_next: usize,
    shared: ClusterStats,
    /// Per-read I/O deadline against the sim clock; `None` disables
    /// hedging entirely (no timing, no suspects — the pre-deadline
    /// behavior, bit for bit).
    deadline: Option<(SimClock, u64)>,
    /// Replicas that exceeded the deadline; skipped on later reads until
    /// [`Self::clear_suspects`].
    suspect: Vec<bool>,
}

impl<D: BlockDevice> ReplicatedDisk<D> {
    /// Mirror a volume over the given replica stacks.
    ///
    /// Panics if `replicas` is empty or the replicas disagree on size —
    /// a mirrored volume must be uniform.
    pub fn new(replicas: Vec<D>, policy: ReadPolicy) -> Self {
        assert!(!replicas.is_empty(), "a volume needs at least one replica");
        let blocks = replicas[0].num_blocks();
        assert!(
            replicas.iter().all(|r| r.num_blocks() == blocks),
            "all replicas of a mirrored volume must be the same size"
        );
        let n = replicas.len();
        ReplicatedDisk {
            replicas,
            policy,
            rr_next: 0,
            shared: ClusterStats::default(),
            deadline: None,
            suspect: vec![false; n],
        }
    }

    /// Arm a per-read I/O deadline: a replica read that charges more than
    /// `deadline_ns` of sim time is treated as hung — the initiator hedges
    /// to the next peer and marks the slow replica suspect, so it is not
    /// consulted again until [`Self::clear_suspects`].
    pub fn with_read_deadline(mut self, clock: SimClock, deadline_ns: u64) -> Self {
        self.deadline = Some((clock, deadline_ns));
        self
    }

    /// Indices of replicas currently marked slow.
    pub fn suspects(&self) -> Vec<usize> {
        self.suspect
            .iter()
            .enumerate()
            .filter(|(_, &s)| s)
            .map(|(i, _)| i)
            .collect()
    }

    /// Forgive all slow-replica suspicions (e.g. after an admin replaced
    /// the spindle).
    pub fn clear_suspects(&mut self) {
        self.suspect.iter_mut().for_each(|s| *s = false);
    }

    /// Number of replicas.
    pub fn num_replicas(&self) -> usize {
        self.replicas.len()
    }

    /// The active read policy.
    pub fn policy(&self) -> ReadPolicy {
        self.policy
    }

    /// Switch the read policy (e.g. quorum for a scrub pass, primary for
    /// a throughput run).
    pub fn set_policy(&mut self, policy: ReadPolicy) {
        self.policy = policy;
    }

    /// A shared observability handle (counters + repair queue length).
    pub fn stats(&self) -> ClusterStats {
        self.shared.clone()
    }

    /// Borrow replica `i` (harness access to per-replica stacks).
    pub fn replica(&self, i: usize) -> &D {
        &self.replicas[i]
    }

    /// Mutably borrow replica `i`.
    pub fn replica_mut(&mut self, i: usize) -> &mut D {
        &mut self.replicas[i]
    }

    /// All replicas.
    pub fn replicas(&self) -> &[D] {
        &self.replicas
    }

    /// Dissolve the volume into its replica stacks.
    pub fn into_replicas(self) -> Vec<D> {
        self.replicas
    }

    /// Record a divergence detection and queue the block for repair.
    pub(crate) fn note_divergence(
        &self,
        addr: BlockAddr,
        replica: usize,
        kind: DivergenceKind,
        tag: BlockTag,
    ) {
        let mut st = self.shared.state.lock().unwrap();
        st.stats.divergences += 1;
        st.pending.entry((addr.0, replica)).or_insert((kind, tag));
    }

    /// Drain the repair queue (used by the repair engine).
    pub(crate) fn take_pending(&self) -> BTreeMap<(u64, usize), (DivergenceKind, BlockTag)> {
        std::mem::take(&mut self.shared.state.lock().unwrap().pending)
    }

    /// Copy of the repair queue (for findings/reporting).
    pub(crate) fn pending(&self) -> BTreeMap<(u64, usize), (DivergenceKind, BlockTag)> {
        self.shared.state.lock().unwrap().pending.clone()
    }

    fn bump(&self, f: impl FnOnce(&mut ClusterStatsSnapshot)) {
        f(&mut self.shared.state.lock().unwrap().stats)
    }

    /// Read replica `i`, reporting whether the request exceeded the I/O
    /// deadline. Without a configured deadline nothing is timed.
    fn timed_read(
        &mut self,
        i: usize,
        addr: BlockAddr,
        tag: BlockTag,
    ) -> (DiskResult<Block>, bool) {
        match self.deadline.clone() {
            Some((clock, limit)) => {
                let t0 = clock.now_ns();
                let res = self.replicas[i].read_tagged(addr, tag);
                (res, clock.elapsed_since(t0) > limit)
            }
            None => (self.replicas[i].read_tagged(addr, tag), false),
        }
    }

    /// True when every replica is marked slow — then skipping is pointless
    /// and the volume falls back to consulting all of them.
    fn all_suspect(&self) -> bool {
        self.suspect.iter().all(|&s| s)
    }

    /// Read every replica and pick the content-majority winner.
    ///
    /// Returns the per-replica results and the index of a replica holding
    /// the winning content (`None` when no strict majority exists).
    /// Replicas marked slow are skipped (their slot reads as a
    /// [`DiskError::Timeout`]); a replica that exceeds the deadline here
    /// is marked for future skipping but its result still participates —
    /// the data already arrived. Beyond suspect bookkeeping it records
    /// nothing — callers decide what a disagreement means.
    pub(crate) fn read_all(
        &mut self,
        addr: BlockAddr,
        tag: BlockTag,
    ) -> (Vec<DiskResult<Block>>, Option<usize>) {
        let n = self.replicas.len();
        let all_suspect = self.all_suspect();
        let mut results: Vec<DiskResult<Block>> = Vec::with_capacity(n);
        for i in 0..n {
            if self.suspect[i] && !all_suspect {
                self.bump(|s| s.slow_replica_skips += 1);
                results.push(Err(DiskError::Timeout {
                    addr,
                    kind: IoKind::Read,
                }));
                continue;
            }
            let (res, exceeded) = self.timed_read(i, addr, tag);
            if exceeded {
                self.suspect[i] = true;
                self.bump(|s| s.hedged_reads += 1);
            }
            results.push(res);
        }
        // Group successful reads by content; first-seen group wins ties,
        // so arbitration is deterministic in replica order.
        let mut groups: Vec<(usize, usize)> = Vec::new(); // (first idx, count)
        for (i, res) in results.iter().enumerate() {
            if let Ok(b) = res {
                match groups
                    .iter_mut()
                    .find(|(fi, _)| matches!(&results[*fi], Ok(w) if w == b))
                {
                    Some((_, count)) => *count += 1,
                    None => groups.push((i, 1)),
                }
            }
        }
        let winner = groups
            .iter()
            .max_by_key(|(_, count)| *count)
            .filter(|(_, count)| 2 * count > n)
            .map(|(fi, _)| *fi);
        (results, winner)
    }

    fn quorum_read(&mut self, addr: BlockAddr, tag: BlockTag) -> DiskResult<Block> {
        let (results, winner) = self.read_all(addr, tag);
        match winner {
            Some(wi) => {
                self.bump(|s| s.quorum_reads += 1);
                let good = match &results[wi] {
                    Ok(b) => b.clone(),
                    Err(_) => unreachable!("winner is a successful read"),
                };
                for (i, res) in results.iter().enumerate() {
                    match res {
                        Ok(b) if *b == good => {}
                        Ok(_) => self.note_divergence(addr, i, DivergenceKind::Mismatch, tag),
                        // Slowness is a timing condition, not bad data: a
                        // skipped replica's medium is presumed intact, so
                        // it is not queued for repair.
                        Err(DiskError::Timeout { .. }) => {}
                        Err(_) => self.note_divergence(addr, i, DivergenceKind::Unreadable, tag),
                    }
                }
                Ok(good)
            }
            None => {
                // All replicas errored: propagate the first error. A
                // split with no majority (e.g. 1-vs-1 on a 2-replica
                // volume) is *detected* divergence the volume cannot
                // arbitrate — surface it as an explicit read error
                // rather than guessing (RPropagate, not RGuess).
                if results.iter().all(|r| r.is_err()) {
                    let e = results.iter().find_map(|r| r.as_ref().err().copied());
                    return Err(e.expect("at least one replica"));
                }
                self.bump(|s| s.unarbitrated_reads += 1);
                for (i, res) in results.iter().enumerate() {
                    let kind = match res {
                        Ok(_) => DivergenceKind::Mismatch,
                        Err(DiskError::Timeout { .. }) => continue,
                        Err(_) => DivergenceKind::Unreadable,
                    };
                    self.note_divergence(addr, i, kind, tag);
                }
                Err(DiskError::Io {
                    addr,
                    kind: IoKind::Read,
                })
            }
        }
    }

    fn failover_read(&mut self, addr: BlockAddr, tag: BlockTag, start: usize) -> DiskResult<Block> {
        let n = self.replicas.len();
        let all_suspect = self.all_suspect();
        let mut last: Option<DiskResult<Block>> = None;
        for k in 0..n {
            let i = (start + k) % n;
            if self.suspect[i] && !all_suspect {
                self.bump(|s| s.slow_replica_skips += 1);
                continue;
            }
            let (res, exceeded) = self.timed_read(i, addr, tag);
            if exceeded {
                // The initiator gave up waiting and hedges to the next
                // peer; the slow replica is marked and skipped from now
                // on. Its (late) result is kept only as a last resort.
                self.suspect[i] = true;
                self.bump(|s| s.hedged_reads += 1);
                last = Some(res);
                continue;
            }
            match res {
                Ok(b) => return Ok(b),
                Err(e) => {
                    self.note_divergence(addr, i, DivergenceKind::Unreadable, tag);
                    self.bump(|s| s.failovers += 1);
                    last = Some(Err(e));
                }
            }
        }
        // Every consulted replica was slow or failed: serve the last
        // result — a hedged-but-correct block beats inventing an error.
        last.expect("at least one replica consulted")
    }
}

impl ReplicatedDisk<MemDisk> {
    /// Mirror a golden image across `n` fresh [`MemDisk`] replicas (each a
    /// [`MemDisk::snapshot`]: same bytes, independent clock/trace/stats).
    pub fn from_golden(golden: &MemDisk, n: usize, policy: ReadPolicy) -> Self {
        ReplicatedDisk::new((0..n).map(|_| golden.snapshot()).collect(), policy)
    }
}

/// Mirror a golden image across `n` replicas, each wrapped in its own
/// per-replica stack (fault layer, trace, …) by `wrap(replica_disk, i)`.
pub fn mirror_with<D: BlockDevice>(
    golden: &MemDisk,
    n: usize,
    policy: ReadPolicy,
    mut wrap: impl FnMut(MemDisk, usize) -> D,
) -> ReplicatedDisk<D> {
    ReplicatedDisk::new((0..n).map(|i| wrap(golden.snapshot(), i)).collect(), policy)
}

impl<D: BlockDevice> BlockDevice for ReplicatedDisk<D> {
    fn num_blocks(&self) -> u64 {
        self.replicas[0].num_blocks()
    }

    fn read_tagged(&mut self, addr: BlockAddr, tag: BlockTag) -> DiskResult<Block> {
        self.bump(|s| s.reads += 1);
        match self.policy {
            ReadPolicy::Primary => self.failover_read(addr, tag, 0),
            ReadPolicy::RoundRobin => {
                let start = self.rr_next;
                self.rr_next = (self.rr_next + 1) % self.replicas.len();
                self.failover_read(addr, tag, start)
            }
            ReadPolicy::Quorum => self.quorum_read(addr, tag),
        }
    }

    fn write_tagged(&mut self, addr: BlockAddr, block: &Block, tag: BlockTag) -> DiskResult<()> {
        self.bump(|s| s.writes += 1);
        let n = self.replicas.len();
        let mut ok = 0usize;
        let mut failed: Vec<usize> = Vec::new();
        let mut first_err = None;
        for (i, r) in self.replicas.iter_mut().enumerate() {
            match r.write_tagged(addr, block, tag) {
                Ok(()) => ok += 1,
                Err(e) => {
                    failed.push(i);
                    first_err.get_or_insert(e);
                }
            }
        }
        if ok == n {
            Ok(())
        } else if 2 * ok > n {
            // Majority reached the medium: acknowledge, queue the stale
            // replicas for repair. The volume runs degraded, not failed.
            self.bump(|s| s.degraded_writes += 1);
            for i in failed {
                self.note_divergence(addr, i, DivergenceKind::StaleWrite, tag);
            }
            Ok(())
        } else {
            Err(first_err.expect("a minority ack implies at least one error"))
        }
    }

    fn barrier(&mut self) -> DiskResult<()> {
        // Every replica orders its own write stream; the fan-out already
        // issued the writes to each in the same order.
        let mut first_err = None;
        for r in &mut self.replicas {
            if let Err(e) = r.barrier() {
                first_err.get_or_insert(e);
            }
        }
        first_err.map_or(Ok(()), Err)
    }

    fn flush(&mut self) -> DiskResult<()> {
        // Durability must reach *every* replica medium as a flush — a
        // replica whose flush failed cannot be trusted after a crash.
        let mut first_err = None;
        for r in &mut self.replicas {
            if let Err(e) = r.flush() {
                first_err.get_or_insert(e);
            }
        }
        first_err.map_or(Ok(()), Err)
    }

    fn readahead(&mut self, start: BlockAddr, len: u64) {
        // Any replica may serve the scan's reads (policy-dependent), so
        // every spindle gets the hint.
        for r in &mut self.replicas {
            r.readahead(start, len);
        }
    }
}

impl<D: RawAccess> RawAccess for ReplicatedDisk<D> {
    fn peek(&self, addr: BlockAddr) -> Block {
        self.replicas[0].peek(addr)
    }

    fn poke(&mut self, addr: BlockAddr, block: &Block) {
        for r in &mut self.replicas {
            r.poke(addr, block);
        }
    }
}

/// Extension trait slotting replication into [`StackBuilder`] pipelines:
/// `StackBuilder::memdisk(n).replicated(3, ReadPolicy::Quorum)` mirrors
/// the current (MemDisk) stack bottom across fresh replicas.
pub trait ClusterStackExt {
    /// Replace the built [`MemDisk`] with `n` mirrored snapshots of it.
    fn replicated(self, n: usize, policy: ReadPolicy) -> StackBuilder<ReplicatedDisk<MemDisk>>;
}

impl ClusterStackExt for StackBuilder<MemDisk> {
    fn replicated(self, n: usize, policy: ReadPolicy) -> StackBuilder<ReplicatedDisk<MemDisk>> {
        let golden = self.build();
        StackBuilder::new(ReplicatedDisk::from_golden(&golden, n, policy))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn volume(n: usize, policy: ReadPolicy) -> ReplicatedDisk<MemDisk> {
        ReplicatedDisk::from_golden(&MemDisk::for_tests(64), n, policy)
    }

    #[test]
    fn writes_fan_out_to_every_replica() {
        let mut v = volume(3, ReadPolicy::Primary);
        v.write(BlockAddr(5), &Block::filled(0xAB)).unwrap();
        for i in 0..3 {
            assert_eq!(v.replica(i).peek(BlockAddr(5)), Block::filled(0xAB));
        }
        assert_eq!(v.stats().snapshot().writes, 1);
    }

    #[test]
    fn barrier_and_flush_reach_every_replica_medium() {
        let mut v = volume(3, ReadPolicy::Primary);
        v.write(BlockAddr(1), &Block::filled(1)).unwrap();
        v.barrier().unwrap();
        v.write(BlockAddr(2), &Block::filled(2)).unwrap();
        v.flush().unwrap();
        for i in 0..3 {
            let st = v.replica(i).stats();
            assert_eq!(st.barriers, 1, "replica {i} must see the barrier");
            assert_eq!(st.flushes, 1, "replica {i} must see the flush as a flush");
        }
    }

    #[test]
    fn round_robin_spreads_reads() {
        let mut v = volume(3, ReadPolicy::RoundRobin);
        for _ in 0..6 {
            v.read(BlockAddr(0)).unwrap();
        }
        for i in 0..3 {
            assert_eq!(v.replica(i).stats().reads, 2, "replica {i} share");
        }
    }

    #[test]
    fn primary_reads_only_replica_zero_when_healthy() {
        let mut v = volume(3, ReadPolicy::Primary);
        for _ in 0..4 {
            v.read(BlockAddr(0)).unwrap();
        }
        assert_eq!(v.replica(0).stats().reads, 4);
        assert_eq!(v.replica(1).stats().reads, 0);
        assert_eq!(v.replica(2).stats().reads, 0);
    }

    #[test]
    fn quorum_masks_single_replica_corruption_and_records_it() {
        let mut v = volume(3, ReadPolicy::Quorum);
        v.write(BlockAddr(7), &Block::filled(0x11)).unwrap();
        v.replica_mut(0).poke(BlockAddr(7), &Block::filled(0xBD));
        let got = v.read(BlockAddr(7)).unwrap();
        assert_eq!(got, Block::filled(0x11), "majority content wins");
        let s = v.stats().snapshot();
        assert_eq!(s.quorum_reads, 1);
        assert!(s.divergences >= 1);
        assert_eq!(v.stats().pending_repairs(), 1);
    }

    #[test]
    fn single_replica_quorum_cannot_detect_corruption() {
        let mut v = volume(1, ReadPolicy::Quorum);
        v.write(BlockAddr(3), &Block::filled(0x22)).unwrap();
        v.replica_mut(0).poke(BlockAddr(3), &Block::filled(0xBD));
        // The lone copy *is* the majority: corruption passes through
        // silently — exactly why a 1-replica volume stays unrecoverable.
        assert_eq!(v.read(BlockAddr(3)).unwrap(), Block::filled(0xBD));
        assert_eq!(v.stats().snapshot().divergences, 0);
    }

    #[test]
    fn two_replica_split_is_detected_but_unarbitratable() {
        let mut v = volume(2, ReadPolicy::Quorum);
        v.write(BlockAddr(9), &Block::filled(1)).unwrap();
        v.replica_mut(1).poke(BlockAddr(9), &Block::filled(2));
        let err = v.read(BlockAddr(9)).unwrap_err();
        assert_eq!(
            err,
            DiskError::Io {
                addr: BlockAddr(9),
                kind: IoKind::Read
            }
        );
        let s = v.stats().snapshot();
        assert_eq!(s.unarbitrated_reads, 1);
        assert_eq!(v.stats().pending_repairs(), 2, "both copies are suspect");
    }

    #[test]
    fn replicated_stack_builds_behind_stack_builder() {
        use iron_blockdev::CachePolicy;
        let mut dev = StackBuilder::memdisk(32)
            .replicated(3, ReadPolicy::Quorum)
            .with_cache(CachePolicy::write_back(8))
            .build();
        dev.write(BlockAddr(4), &Block::filled(9)).unwrap();
        dev.flush().unwrap();
        let v = dev.into_inner();
        for i in 0..3 {
            assert_eq!(v.replica(i).peek(BlockAddr(4)), Block::filled(9));
        }
    }

    #[test]
    #[should_panic(expected = "same size")]
    fn mismatched_replica_sizes_are_rejected() {
        ReplicatedDisk::new(
            vec![MemDisk::for_tests(16), MemDisk::for_tests(32)],
            ReadPolicy::Primary,
        );
    }
}

//! Peer-driven repair: heal a divergent or corrupted replica from the
//! quorum majority.
//!
//! The engine mirrors the ixt3 scrub discipline (`iron_ixt3::scrub`):
//! every candidate block is re-read *through the device path* — so
//! per-replica fault layers stay engaged — the majority copy is written
//! to each disagreeing replica, and the repair only counts as healed
//! after a verifying re-read returns the majority content. A replica
//! whose medium sticks at the wrong bytes (or whose read path keeps
//! failing) counts as unrecoverable, never as repaired.
//!
//! Detection vocabulary is `iron-fsck`'s: every queued divergence renders
//! as an [`FsckIssue::ReplicaDivergence`] and [`ReplicatedDisk::peer_repair_plan`]
//! produces a standard [`RepairPlan`] whose actions carry
//! `RecoveryLevel::RRedundancy` — peer-sourced repair as a first-class
//! `RepairPlan` source, alongside the single-image planners.

use iron_blockdev::{BlockDevice, RawAccess};
use iron_core::{BlockAddr, BlockTag};
use iron_fsck::{FsckIssue, RepairPlan};

use crate::replicated::ReplicatedDisk;

/// Outcome of a repair pass.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RepairReport {
    /// Addresses examined.
    pub scanned: u64,
    /// Addresses where at least one replica disagreed with the majority.
    pub divergent: u64,
    /// Replica copies rewritten from peers and verified by re-read.
    pub healed: u64,
    /// Replica copies that could not be healed: no majority to source
    /// from, the repair write failed, or the verifying re-read still
    /// disagreed (sticky fault).
    pub unrecoverable: u64,
}

impl RepairReport {
    /// True if every divergence found was healed.
    pub fn all_healed(&self) -> bool {
        self.unrecoverable == 0
    }

    fn absorb(&mut self, other: RepairReport) {
        self.scanned += other.scanned;
        self.divergent += other.divergent;
        self.healed += other.healed;
        self.unrecoverable += other.unrecoverable;
    }
}

impl<D: BlockDevice + RawAccess> ReplicatedDisk<D> {
    /// Arbitrate one address and heal every disagreeing replica from the
    /// majority. Reads and writes go through each replica's device path
    /// (fault layers engaged); healing is verified by re-read.
    pub fn repair_block(&mut self, addr: BlockAddr, tag: BlockTag) -> RepairReport {
        let mut report = RepairReport {
            scanned: 1,
            ..RepairReport::default()
        };
        let (results, winner) = self.read_all(addr, tag);
        let Some(wi) = winner else {
            // No majority to source a good copy from: every suspect copy
            // at this address is unrecoverable at the cluster tier.
            report.divergent += 1;
            report.unrecoverable += 1;
            return report;
        };
        let good = match &results[wi] {
            Ok(b) => b.clone(),
            Err(_) => unreachable!("winner is a successful read"),
        };
        let mut diverged_here = false;
        for (i, res) in results.iter().enumerate() {
            if matches!(res, Ok(b) if *b == good) {
                continue;
            }
            diverged_here = true;
            if self.replica_mut(i).write_tagged(addr, &good, tag).is_err() {
                report.unrecoverable += 1;
                continue;
            }
            // Verify through the device path, as ixt3's scrub does: a
            // sticky per-replica fault keeps the copy untrustworthy no
            // matter what the medium now holds.
            match self.replica_mut(i).read_tagged(addr, tag) {
                Ok(b) if b == good => report.healed += 1,
                _ => report.unrecoverable += 1,
            }
        }
        if diverged_here {
            report.divergent += 1;
        }
        report
    }

    /// Heal everything the read/write paths have queued (quorum
    /// mismatches, unreadable copies, stale degraded writes). Drains the
    /// queue; addresses are re-arbitrated at repair time, so entries made
    /// stale by later writes simply verify clean.
    pub fn repair_pending(&mut self) -> RepairReport {
        let pending = self.take_pending();
        let mut addrs: Vec<(u64, BlockTag)> = Vec::new();
        for (&(addr, _replica), &(_kind, tag)) in &pending {
            if addrs.last().map(|&(a, _)| a) != Some(addr) {
                addrs.push((addr, tag));
            }
        }
        let mut report = RepairReport::default();
        for (addr, tag) in addrs {
            report.absorb(self.repair_block(BlockAddr(addr), tag));
        }
        report
    }

    /// Full-volume scrub: arbitrate and heal every block. Catches
    /// divergence no foreground read has touched (the cluster-tier
    /// analogue of ixt3's disk scrubbing).
    pub fn scrub_repair(&mut self) -> RepairReport {
        let mut report = RepairReport::default();
        for addr in 0..self.num_blocks() {
            report.absorb(self.repair_block(BlockAddr(addr), BlockTag("c-scrub")));
        }
        // Everything the scrub found was handled in place.
        self.take_pending();
        report
    }

    /// The queued divergences in `iron-fsck`'s issue vocabulary,
    /// canonically ordered.
    pub fn findings(&self) -> Vec<FsckIssue> {
        self.pending()
            .keys()
            .map(|&(addr, replica)| FsckIssue::ReplicaDivergence { addr, replica })
            .collect()
    }

    /// A standard [`RepairPlan`] for the queued divergences: every action
    /// is `RecoveryLevel::RRedundancy` (rewrite from quorum peers),
    /// executed by [`Self::repair_pending`] rather than a single-image
    /// `RepairFix`.
    pub fn peer_repair_plan(&self) -> RepairPlan {
        RepairPlan::new(&self.findings())
    }

    /// True if every replica's raw medium is bit-identical (the
    /// post-repair convergence oracle).
    pub fn replicas_identical(&self) -> bool {
        let n = self.num_replicas();
        for addr in 0..self.num_blocks() {
            let first = self.replica(0).peek(BlockAddr(addr));
            for i in 1..n {
                if self.replica(i).peek(BlockAddr(addr)) != first {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replicated::ReadPolicy;
    use iron_blockdev::MemDisk;
    use iron_core::taxonomy::RecoveryLevel;
    use iron_core::{Block, FaultKind};
    use iron_faultinject::{FaultPlan, FaultSpec, FaultTarget, FaultyDisk};

    fn volume(n: usize) -> ReplicatedDisk<MemDisk> {
        let mut golden = MemDisk::for_tests(32);
        for a in 0..32 {
            golden.poke(BlockAddr(a), &Block::filled(a as u8));
        }
        ReplicatedDisk::from_golden(&golden, n, ReadPolicy::Quorum)
    }

    #[test]
    fn scrub_heals_poked_corruption_from_peers() {
        let mut v = volume(3);
        v.replica_mut(1).poke(BlockAddr(4), &Block::filled(0xBD));
        v.replica_mut(1).poke(BlockAddr(9), &Block::filled(0xBD));
        assert!(!v.replicas_identical());
        let r = v.scrub_repair();
        assert_eq!(r.scanned, 32);
        assert_eq!(r.divergent, 2);
        assert_eq!(r.healed, 2);
        assert_eq!(r.unrecoverable, 0);
        assert!(v.replicas_identical());
        // Idempotent: a second scrub finds nothing.
        let r2 = v.scrub_repair();
        assert_eq!(r2.divergent, 0);
    }

    #[test]
    fn quorum_detection_feeds_repair_pending() {
        let mut v = volume(3);
        v.replica_mut(0).poke(BlockAddr(6), &Block::filled(0xEE));
        // Foreground read detects and masks; repair heals what it queued.
        assert_eq!(v.read(BlockAddr(6)).unwrap(), Block::filled(6));
        assert_eq!(v.stats().pending_repairs(), 1);
        let r = v.repair_pending();
        assert_eq!((r.divergent, r.healed), (1, 1));
        assert_eq!(v.stats().pending_repairs(), 0);
        assert!(v.replicas_identical());
    }

    #[test]
    fn degraded_write_leaves_stale_replica_that_repair_heals() {
        let golden = MemDisk::for_tests(32);
        let plans: Vec<FaultPlan> = (0..3).map(|_| FaultPlan::new()).collect();
        let mut v = crate::replicated::mirror_with(&golden, 3, ReadPolicy::Quorum, |md, i| {
            FaultyDisk::with_plan(md, plans[i].clone())
        });
        // Replica 2's next write fails: the volume acknowledges (majority
        // reached the medium) and queues the stale copy.
        let ctl = plans[2].controller();
        let id = ctl.inject(FaultSpec::transient(
            FaultKind::WriteError,
            FaultTarget::Addr(BlockAddr(5)),
            1,
        ));
        v.write(BlockAddr(5), &Block::filled(0x55)).unwrap();
        assert!(ctl.fired(id));
        let s = v.stats().snapshot();
        assert_eq!(s.degraded_writes, 1);
        assert_eq!(v.stats().pending_repairs(), 1);
        assert_eq!(v.replica(2).inner().peek(BlockAddr(5)), Block::zeroed());

        let r = v.repair_pending();
        assert_eq!((r.divergent, r.healed, r.unrecoverable), (1, 1, 0));
        assert_eq!(v.replica(2).inner().peek(BlockAddr(5)), Block::filled(0x55));
    }

    #[test]
    fn sticky_replica_fault_is_unrecoverable_not_healed() {
        let golden = MemDisk::for_tests(32);
        let plans: Vec<FaultPlan> = (0..3).map(|_| FaultPlan::new()).collect();
        let mut v = crate::replicated::mirror_with(&golden, 3, ReadPolicy::Quorum, |md, i| {
            FaultyDisk::with_plan(md, plans[i].clone())
        });
        // Replica 1 sticky-corrupts every read of block 3: repair can
        // rewrite the medium, but the verifying re-read keeps lying, so
        // the copy must count unrecoverable (the scrub discipline).
        plans[1].controller().inject(FaultSpec::sticky(
            FaultKind::Corruption(iron_core::model::CorruptionStyle::Zeroed),
            FaultTarget::Addr(BlockAddr(3)),
        ));
        v.write(BlockAddr(3), &Block::filled(0x33)).unwrap();
        let r = v.repair_block(BlockAddr(3), BlockTag::UNTYPED);
        assert_eq!(r.healed, 0);
        assert_eq!(r.unrecoverable, 1);
    }

    #[test]
    fn findings_render_in_fsck_vocabulary_with_rredundancy_plan() {
        let mut v = volume(3);
        v.replica_mut(2).poke(BlockAddr(8), &Block::filled(0xAA));
        v.read(BlockAddr(8)).unwrap();
        let findings = v.findings();
        assert_eq!(
            findings,
            vec![FsckIssue::ReplicaDivergence {
                addr: 8,
                replica: 2
            }]
        );
        let plan = v.peer_repair_plan();
        assert_eq!(plan.actions.len(), 1);
        assert_eq!(plan.actions[0].recovery, RecoveryLevel::RRedundancy);
        assert!(
            plan.actions[0].fix.is_none(),
            "executed at the cluster tier"
        );
    }

    #[test]
    fn no_majority_is_unrecoverable() {
        let mut v = volume(2);
        v.replica_mut(1).poke(BlockAddr(2), &Block::filled(0x99));
        let r = v.repair_block(BlockAddr(2), BlockTag::UNTYPED);
        assert_eq!(r.healed, 0);
        assert_eq!(r.unrecoverable, 1);
        assert!(!v.replicas_identical());
    }
}

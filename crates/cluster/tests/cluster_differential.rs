//! Differential tier: a fault-free `ReplicatedDisk(n)` must be
//! *bit-identical* to a bare `MemDisk` for every FS model's standard
//! round-trip (mount → workload → unmount → image compare), at n = 1, 2,
//! 3, under every read policy, and with the write-back cache stacked
//! above the replicated volume. Replication must be invisible to a
//! healthy stack — same bytes on every replica, zero divergences.

use iron_blockdev::{BlockDevice, BufferCache, CachePolicy, MemDisk, RawAccess, StackBuilder};
use iron_cluster::{ReadPolicy, ReplicatedDisk};
use iron_core::BlockAddr;
use iron_vfs::{FsEnv, SpecificFs, Vfs, VfsError};

const DISK_BLOCKS: u64 = 4096;

const POLICIES: [ReadPolicy; 3] = [
    ReadPolicy::Primary,
    ReadPolicy::RoundRobin,
    ReadPolicy::Quorum,
];

/// The standard round-trip workload, identical for every run.
fn workload<F: SpecificFs>(v: &mut Vfs<F>) -> Result<(), VfsError> {
    v.mkdir("/dir1", 0o755)?;
    v.mkdir("/dir1/sub", 0o755)?;
    v.write_file("/dir1/small", b"replicated volumes are invisible")?;
    let big: Vec<u8> = (0..40_000u32).map(|i| (i % 251) as u8).collect();
    v.write_file("/big", &big)?;
    v.sync()?;
    v.write_file("/dir1/sub/nested", &big[..5_000])?;
    // Overwrite in place, then read everything back.
    v.write_file("/dir1/small", b"overwritten contents")?;
    assert_eq!(v.read_file("/dir1/small")?, b"overwritten contents");
    assert_eq!(v.read_file("/big")?, big);
    v.unlink("/dir1/sub/nested")?;
    v.sync()?;
    Ok(())
}

/// Raw medium bytes of any device (same oracle as `memdisk_image`, but
/// generic over the device type).
fn image<D: RawAccess + BlockDevice>(d: &D) -> Vec<u8> {
    let mut out = Vec::new();
    for a in 0..d.num_blocks() {
        out.extend_from_slice(&*d.peek(BlockAddr(a)));
    }
    out
}

/// One FS model plugged into the differential driver: how to format a
/// golden image and how to run the round-trip over an arbitrary device,
/// handing the device back afterwards.
trait Model {
    fn name(&self) -> &'static str;
    fn golden(&self) -> MemDisk;
    fn round_trip<D: BlockDevice + RawAccess>(&self, dev: D) -> D;
}

fn check_model<M: Model>(m: &M) {
    let golden = m.golden();
    let bare = m.round_trip(golden.snapshot());
    let bare_img = image(&bare);

    for n in [1usize, 2, 3] {
        for policy in POLICIES {
            let rep = m.round_trip(ReplicatedDisk::from_golden(&golden, n, policy));
            let s = rep.stats().snapshot();
            assert_eq!(
                s.divergences,
                0,
                "{} n={n} {policy:?}: healthy volume must never diverge",
                m.name()
            );
            for i in 0..n {
                assert_eq!(
                    image(rep.replica(i)),
                    bare_img,
                    "{} n={n} {policy:?}: replica {i} differs from bare MemDisk",
                    m.name()
                );
            }
        }

        // Write-back cache stacked above the replicated volume.
        let dev: BufferCache<ReplicatedDisk<MemDisk>> =
            StackBuilder::new(ReplicatedDisk::from_golden(&golden, n, ReadPolicy::Quorum))
                .with_cache(CachePolicy::write_back(64))
                .build();
        let cache = m.round_trip(dev);
        assert_eq!(
            cache.dirty_blocks(),
            0,
            "{} n={n}: unmount must drain the cache",
            m.name()
        );
        let rep = cache.into_inner();
        for i in 0..n {
            assert_eq!(
                image(rep.replica(i)),
                bare_img,
                "{} n={n} cached: replica {i} differs from bare MemDisk",
                m.name()
            );
        }
    }
}

// ======================================================================
// The five FS models
// ======================================================================

struct Ext3Model;
impl Model for Ext3Model {
    fn name(&self) -> &'static str {
        "ext3"
    }
    fn golden(&self) -> MemDisk {
        let mut md = MemDisk::for_tests(DISK_BLOCKS);
        iron_ext3::Ext3Fs::<MemDisk>::mkfs(&mut md, iron_ext3::Ext3Params::small()).unwrap();
        md
    }
    fn round_trip<D: BlockDevice + RawAccess>(&self, dev: D) -> D {
        let fs =
            iron_ext3::Ext3Fs::mount(dev, FsEnv::new(), iron_ext3::Ext3Options::default()).unwrap();
        let mut v = Vfs::new(fs);
        workload(&mut v).unwrap();
        v.umount().unwrap();
        v.into_fs().into_device()
    }
}

struct Ixt3Model;
impl Model for Ixt3Model {
    fn name(&self) -> &'static str {
        "ixt3"
    }
    fn golden(&self) -> MemDisk {
        let mut md = MemDisk::for_tests(DISK_BLOCKS);
        iron_ixt3::mkfs(
            &mut md,
            iron_ext3::Ext3Params::small(),
            iron_ext3::IronConfig::full(),
        )
        .unwrap();
        md
    }
    fn round_trip<D: BlockDevice + RawAccess>(&self, dev: D) -> D {
        let fs = iron_ixt3::mount_full(dev, FsEnv::new()).unwrap();
        let mut v = Vfs::new(fs);
        workload(&mut v).unwrap();
        v.umount().unwrap();
        v.into_fs().into_device()
    }
}

struct ReiserModel;
impl Model for ReiserModel {
    fn name(&self) -> &'static str {
        "ReiserFS"
    }
    fn golden(&self) -> MemDisk {
        let mut md = MemDisk::for_tests(DISK_BLOCKS);
        iron_reiser::ReiserFs::<MemDisk>::mkfs(&mut md, iron_reiser::ReiserParams::small())
            .unwrap();
        md
    }
    fn round_trip<D: BlockDevice + RawAccess>(&self, dev: D) -> D {
        let fs =
            iron_reiser::ReiserFs::mount(dev, FsEnv::new(), iron_reiser::ReiserOptions::default())
                .unwrap();
        let mut v = Vfs::new(fs);
        workload(&mut v).unwrap();
        v.umount().unwrap();
        v.into_fs().into_device()
    }
}

struct JfsModel;
impl Model for JfsModel {
    fn name(&self) -> &'static str {
        "JFS"
    }
    fn golden(&self) -> MemDisk {
        let mut md = MemDisk::for_tests(DISK_BLOCKS);
        iron_jfs::JfsFs::<MemDisk>::mkfs(&mut md, iron_jfs::JfsParams::small()).unwrap();
        md
    }
    fn round_trip<D: BlockDevice + RawAccess>(&self, dev: D) -> D {
        let fs =
            iron_jfs::JfsFs::mount(dev, FsEnv::new(), iron_jfs::JfsOptions::default()).unwrap();
        let mut v = Vfs::new(fs);
        workload(&mut v).unwrap();
        v.umount().unwrap();
        v.into_fs().into_device()
    }
}

struct NtfsModel;
impl Model for NtfsModel {
    fn name(&self) -> &'static str {
        "NTFS"
    }
    fn golden(&self) -> MemDisk {
        let mut md = MemDisk::for_tests(DISK_BLOCKS);
        iron_ntfs::NtfsFs::<MemDisk>::mkfs(&mut md, iron_ntfs::NtfsParams::small()).unwrap();
        md
    }
    fn round_trip<D: BlockDevice + RawAccess>(&self, dev: D) -> D {
        let fs =
            iron_ntfs::NtfsFs::mount(dev, FsEnv::new(), iron_ntfs::NtfsOptions::default()).unwrap();
        let mut v = Vfs::new(fs);
        workload(&mut v).unwrap();
        v.umount().unwrap();
        v.into_fs().into_device()
    }
}

#[test]
fn ext3_replicated_equals_bare() {
    check_model(&Ext3Model);
}

#[test]
fn ixt3_replicated_equals_bare() {
    check_model(&Ixt3Model);
}

#[test]
fn reiser_replicated_equals_bare() {
    check_model(&ReiserModel);
}

#[test]
fn jfs_replicated_equals_bare() {
    check_model(&JfsModel);
}

#[test]
fn ntfs_replicated_equals_bare() {
    check_model(&NtfsModel);
}

//! The PR's end-to-end acceptance scenario: a sticky corruption injected
//! on **exactly one replica** of a 3-replica ixt3 volume — aimed to
//! defeat ixt3's own internal redundancy by hitting both an inode-table
//! block and its Mr mirror — is detected by quorum read arbitration,
//! masked from the file system, and healed from peers, leaving all three
//! replica images bit-identical and fsck-clean. The *same* damage on a
//! 1-replica volume remains unrecoverable: the paper's single-disk
//! fail-partial world has no peer to arbitrate against.

use iron_blockdev::{BlockDevice, MemDisk, RawAccess};
use iron_cluster::{ReadPolicy, ReplicatedDisk};
use iron_core::taxonomy::RecoveryLevel;
use iron_core::{Block, BlockAddr};
use iron_ext3::{DiskLayout, Ext3Params, IronConfig, Superblock};
use iron_vfs::{FsEnv, Vfs};

const MARKER: &[u8] = b"quorum arbitration must return exactly these bytes";

/// Build a clean full-ixt3 golden image with a marker file, returning the
/// image, the marker's inode number, and the offline layout.
fn golden_ixt3() -> (MemDisk, u64, DiskLayout) {
    let mut md = MemDisk::for_tests(4096);
    iron_ixt3::mkfs(&mut md, Ext3Params::small(), IronConfig::full()).unwrap();
    let fs = iron_ixt3::mount_full(md, FsEnv::new()).unwrap();
    let mut v = Vfs::new(fs);
    v.mkdir("/d", 0o755).unwrap();
    v.write_file("/d/marker", MARKER).unwrap();
    let filler: Vec<u8> = (0..20_000u32).map(|i| (i % 241) as u8).collect();
    v.write_file("/d/filler", &filler).unwrap();
    let ino = v.stat("/d/marker").unwrap().ino;
    v.umount().unwrap();
    let golden = v.into_fs().into_device();
    let sb = Superblock::decode(&golden.peek(BlockAddr(0))).unwrap();
    let layout = DiskLayout::compute(sb.params());
    (golden, ino, layout)
}

/// Corrupt the marker's inode-table block *and* its Mr mirror on one
/// replica's raw medium — silent corruption that defeats ixt3's own
/// metadata replication on that copy.
fn corrupt_beyond_internal_redundancy(
    disk: &mut MemDisk,
    ino: u64,
    layout: &DiskLayout,
) -> [BlockAddr; 2] {
    let (inode_blk, _) = layout.inode_location(ino);
    let mirror_blk = layout.replica_of(inode_blk.0);
    disk.poke(inode_blk, &Block::filled(0xBD));
    disk.poke(mirror_blk, &Block::filled(0xBD));
    [inode_blk, mirror_blk]
}

#[test]
fn single_replica_corruption_is_detected_and_healed_on_three_replica_volume() {
    let (golden, ino, layout) = golden_ixt3();
    let mut vol = ReplicatedDisk::from_golden(&golden, 3, ReadPolicy::Quorum);
    let hit = corrupt_beyond_internal_redundancy(vol.replica_mut(0), ino, &layout);
    assert!(!vol.replicas_identical());

    // Mount and read through the damage: quorum arbitration masks the
    // corrupt copy, so ixt3 sees clean metadata and serves the file.
    let fs = iron_ixt3::mount_full(vol, FsEnv::new()).unwrap();
    let mut v = Vfs::new(fs);
    assert_eq!(
        v.read_file("/d/marker").unwrap(),
        MARKER,
        "quorum must mask single-replica corruption from the reader"
    );
    v.umount().unwrap();
    let mut vol = v.into_fs().into_device();

    // Detection happened at the cluster tier, in fsck vocabulary.
    let s = vol.stats().snapshot();
    assert!(
        s.divergences >= 1,
        "arbitration must have flagged replica 0"
    );
    assert!(vol.stats().pending_repairs() >= 1);
    let plan = vol.peer_repair_plan();
    assert!(!plan.actions.is_empty());
    assert!(plan
        .actions
        .iter()
        .all(|a| a.recovery == RecoveryLevel::RRedundancy));

    // Heal what foreground reads queued, then scrub for anything the
    // workload never touched (the filler file's path may not have read
    // both damaged blocks).
    let fg = vol.repair_pending();
    assert!(fg.healed >= 1, "queued divergences must heal from peers");
    assert_eq!(fg.unrecoverable, 0);
    let bg = vol.scrub_repair();
    assert!(bg.all_healed());

    // Converged: bit-identical replicas, each one the golden bytes at the
    // damaged addresses, each one fsck-clean on its own.
    assert!(vol.replicas_identical());
    for addr in hit {
        for i in 0..3 {
            assert_eq!(vol.replica(i).peek(addr), golden.peek(addr));
        }
    }
    for i in 0..3 {
        let report = iron_ext3::fsck::check(vol.replica(i), &layout);
        assert!(
            report.is_clean(),
            "replica {i} must be fsck-clean after peer repair: {:?}",
            report.issues
        );
    }
}

#[test]
fn same_corruption_on_single_replica_volume_is_unrecoverable() {
    let (golden, ino, layout) = golden_ixt3();
    let mut vol = ReplicatedDisk::from_golden(&golden, 1, ReadPolicy::Quorum);
    let hit = corrupt_beyond_internal_redundancy(vol.replica_mut(0), ino, &layout);

    // Offline, the lone image is already damaged beyond ixt3's internal
    // redundancy: both the inode block and its Mr mirror are gone.
    assert!(!iron_ext3::fsck::check(vol.replica(0), &layout).is_clean());

    // A quorum of one is no quorum: the cluster tier cannot even *see*
    // the corruption, let alone source a good copy.
    assert_eq!(vol.read(hit[0]).unwrap(), Block::filled(0xBD));
    assert_eq!(vol.stats().snapshot().divergences, 0);
    let r = vol.scrub_repair();
    assert_eq!(r.healed, 0, "nothing can heal without a peer majority");

    // The file system itself cannot recover either: its scrub finds the
    // damage unrecoverable (mirror is corrupt too), and the marker file
    // cannot be served correctly.
    // (Mount refusing outright would be an equally valid "unrecoverable".)
    if let Ok(fs) = iron_ixt3::mount_full(vol, FsEnv::new()) {
        let mut v = Vfs::new(fs);
        let got = v.read_file("/d/marker");
        assert!(
            got.is_err() || got.unwrap() != MARKER,
            "a 1-replica volume must not silently serve the marker"
        );
        let mut fs = v.into_fs();
        let sr = iron_ixt3::scrub::scrub(&mut fs);
        assert!(
            sr.unrecoverable >= 1,
            "ixt3 scrub must report the double-corruption unrecoverable: {sr:?}"
        );
        // The medium still does not hold the golden bytes.
        let vol = fs.into_device();
        assert_ne!(vol.replica(0).peek(hit[0]), golden.peek(hit[0]));
    }
}

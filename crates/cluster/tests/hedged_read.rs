//! Slow-replica failover: a replica read that exceeds the volume's I/O
//! deadline is hedged to a peer, the slow replica is marked suspect, and
//! later reads skip it — so a hung spindle no longer stalls the volume.

use iron_blockdev::{BlockDevice, MemDisk, RawAccess};
use iron_cluster::{mirror_with, ReadPolicy};
use iron_core::{Block, BlockAddr, FaultKind, SimClock};
use iron_faultinject::{FaultController, FaultSpec, FaultTarget, FaultyDisk, HANG_STALL_NS};

const DEADLINE_NS: u64 = 1_000_000; // 1 ms of sim time

/// A 3-way mirrored volume whose replicas share one sim clock, with a
/// per-replica fault controller.
fn volume(
    policy: ReadPolicy,
) -> (
    iron_cluster::ReplicatedDisk<FaultyDisk<MemDisk>>,
    Vec<FaultController>,
    SimClock,
) {
    let mut golden = MemDisk::for_tests(64);
    golden.poke(BlockAddr(0), &Block::filled(0x5A));
    let clock = SimClock::new();
    let mut ctls = Vec::new();
    let v = mirror_with(&golden, 3, policy, |d, _i| {
        let f = FaultyDisk::new(d).with_clock(clock.clone());
        ctls.push(f.controller());
        f
    })
    .with_read_deadline(clock.clone(), DEADLINE_NS);
    (v, ctls, clock)
}

#[test]
fn hung_primary_is_hedged_to_a_peer_and_then_skipped() {
    let (mut v, ctls, clock) = volume(ReadPolicy::Primary);
    ctls[0].inject(FaultSpec::sticky(
        FaultKind::Hang,
        FaultTarget::Addr(BlockAddr(0)),
    ));

    // First read: replica 0 hangs past the deadline; the volume hedges
    // to replica 1 and still serves the right bytes.
    let t0 = clock.now_ns();
    assert_eq!(v.read(BlockAddr(0)).unwrap(), Block::filled(0x5A));
    assert!(clock.now_ns() - t0 >= HANG_STALL_NS, "the hang was real");
    let s = v.stats().snapshot();
    assert_eq!(s.hedged_reads, 1);
    assert_eq!(s.failovers, 0, "slowness is not an error failover");
    assert_eq!(v.suspects(), vec![0]);

    // Second read: the suspect is skipped outright — no stall at all.
    let t1 = clock.now_ns();
    assert_eq!(v.read(BlockAddr(0)).unwrap(), Block::filled(0x5A));
    assert!(
        clock.now_ns() - t1 < DEADLINE_NS,
        "a hung replica no longer stalls reads"
    );
    let s = v.stats().snapshot();
    assert_eq!(s.hedged_reads, 1, "no second hedge needed");
    assert!(s.slow_replica_skips >= 1);
    // Slowness is a timing condition, not bad data: nothing queued for
    // repair.
    assert_eq!(v.stats().pending_repairs(), 0);
}

#[test]
fn hung_replica_no_longer_stalls_quorum_reads() {
    let (mut v, ctls, clock) = volume(ReadPolicy::Quorum);
    ctls[0].inject(FaultSpec::sticky(
        FaultKind::Hang,
        FaultTarget::Addr(BlockAddr(0)),
    ));

    // First quorum read pays the stall once (the hang is only detectable
    // by exceeding the deadline) and marks the replica suspect.
    assert_eq!(v.read(BlockAddr(0)).unwrap(), Block::filled(0x5A));
    assert_eq!(v.suspects(), vec![0]);

    // From now on quorum is arbitrated among the healthy peers only.
    let t1 = clock.now_ns();
    assert_eq!(v.read(BlockAddr(0)).unwrap(), Block::filled(0x5A));
    assert!(
        clock.now_ns() - t1 < DEADLINE_NS,
        "quorum reads proceed without consulting the hung replica"
    );
    let s = v.stats().snapshot();
    assert_eq!(s.quorum_reads, 2, "both reads found a majority");
    assert!(s.slow_replica_skips >= 1);
    assert_eq!(
        v.stats().pending_repairs(),
        0,
        "a slow replica is not divergent"
    );
}

#[test]
fn slow_fault_below_the_deadline_is_not_hedged() {
    let (mut v, ctls, _clock) = volume(ReadPolicy::Primary);
    // A mild slowdown: service time multiplied, but still within the
    // deadline — the volume must not give up on a merely busy replica.
    ctls[0].inject(FaultSpec::sticky(
        FaultKind::Slow { multiplier: 2 },
        FaultTarget::Addr(BlockAddr(0)),
    ));
    assert_eq!(v.read(BlockAddr(0)).unwrap(), Block::filled(0x5A));
    let s = v.stats().snapshot();
    assert_eq!(s.hedged_reads, 0);
    assert!(v.suspects().is_empty());
}

#[test]
fn clearing_suspects_restores_the_primary() {
    let (mut v, ctls, _clock) = volume(ReadPolicy::Primary);
    ctls[0].inject(FaultSpec::sticky(
        FaultKind::Hang,
        FaultTarget::Addr(BlockAddr(0)),
    ));
    v.read(BlockAddr(0)).unwrap();
    assert_eq!(v.suspects(), vec![0]);
    ctls[0].clear();
    v.clear_suspects();
    v.read(BlockAddr(0)).unwrap();
    // Healthy again: replica 0 served the read with no hedge.
    assert_eq!(v.stats().snapshot().hedged_reads, 1);
    assert!(v.suspects().is_empty());
}

//! Crash-enumeration spot-check over a replicated volume (satellite of
//! the cluster PR): stacking [`CrashRecorder`] above [`ReplicatedDisk`]
//! must (a) deliver every barrier and flush to every replica medium — the
//! write fan-out preserves ordering/durability semantics per replica —
//! and (b) still satisfy the crash harness's recovery oracle: every
//! enumerated crash image of an ixt3 workload over a 3-replica volume
//! mounts, replays, and fscks clean.

use iron_blockdev::{BlockDevice, CrashRecorder, MemDisk, RawAccess, WriteLog};
use iron_cluster::{ReadPolicy, ReplicatedDisk};
use iron_core::{Block, BlockAddr};
use iron_crash::{enumerate_images, materialize, EnumOptions};
use iron_ext3::{DiskLayout, Ext3Params, IronConfig, Superblock};
use iron_vfs::{FsEnv, Vfs};

#[test]
fn barriers_and_flushes_reach_every_replica_medium() {
    let golden = MemDisk::for_tests(16);
    let log = WriteLog::new();
    let mut dev = CrashRecorder::with_log(
        ReplicatedDisk::from_golden(&golden, 3, ReadPolicy::Primary),
        log.clone(),
    );

    dev.write(BlockAddr(1), &Block::filled(0x11)).unwrap();
    dev.barrier().unwrap();
    dev.write(BlockAddr(2), &Block::filled(0x22)).unwrap();
    dev.flush().unwrap();
    dev.write(BlockAddr(3), &Block::filled(0x33)).unwrap();
    dev.flush().unwrap();

    let snap = log.snapshot();
    assert_eq!(snap.flush_marks.len(), 2, "recorder saw both flushes");

    let vol = dev.into_inner();
    for i in 0..3 {
        let s = vol.replica(i).stats();
        assert_eq!(s.writes, 3, "replica {i}: every write fanned out");
        assert_eq!(s.barriers, 1, "replica {i}: barrier forwarded");
        assert_eq!(
            s.flushes as usize,
            snap.flush_marks.len(),
            "replica {i}: every recorded flush mark reached this medium"
        );
        assert_eq!(vol.replica(i).peek(BlockAddr(3)), Block::filled(0x33));
    }
    assert!(vol.replicas_identical());
}

/// Bounded crash-state spot-check: an ixt3 workload recorded above a
/// 3-replica quorum volume. All replicas see the identical write stream,
/// so the recorded log *is* each replica's crash behaviour; every
/// enumerated image (epoch prefixes plus sampled in-epoch subsets) must
/// mount with journal replay and come out fsck-clean — same oracle the
/// single-disk campaign holds ixt3 to.
#[test]
fn enumerated_crash_images_of_cluster_workload_recover_cleanly() {
    let mut golden = MemDisk::for_tests(4096);
    iron_ixt3::mkfs(&mut golden, Ext3Params::small(), IronConfig::full()).unwrap();
    let layout = {
        let sb = Superblock::decode(&golden.peek(BlockAddr(0))).unwrap();
        DiskLayout::compute(sb.params())
    };

    let log = WriteLog::new();
    let recorder = CrashRecorder::with_log(
        ReplicatedDisk::from_golden(&golden, 3, ReadPolicy::Quorum),
        log.clone(),
    );
    let fs = iron_ixt3::mount_full(recorder, FsEnv::new()).unwrap();
    let mut v = Vfs::new(fs);
    v.mkdir("/a", 0o755).unwrap();
    v.write_file("/a/one", b"first durable file").unwrap();
    v.sync().unwrap();
    v.write_file("/a/two", &[0x5A; 9000]).unwrap();
    v.unlink("/a/one").unwrap();
    v.sync().unwrap();
    v.write_file("/b", b"tail write, never synced").unwrap();
    v.umount().unwrap();

    // The fan-out is transparent under the recorder: all three replicas
    // converged on the recorded stream.
    let vol = v.into_fs().into_device().into_inner();
    assert!(vol.replicas_identical());
    assert_eq!(vol.stats().snapshot().divergences, 0);

    let snap = log.snapshot();
    assert!(snap.epoch_count() > 0, "workload must have sealed epochs");
    let images = enumerate_images(&snap, &EnumOptions::default());
    assert!(!images.is_empty());
    for spec in &images {
        let img = materialize(&golden, &snap, spec);
        // Recovery: mount (journal replay) + clean unmount.
        let fs = iron_ixt3::mount_full(img, FsEnv::new())
            .unwrap_or_else(|e| panic!("{spec:?}: crash image must mount: {e:?}"));
        let mut v = Vfs::new(fs);
        v.umount().unwrap();
        let img = v.into_fs().into_device();
        let report = iron_ext3::fsck::check(&img, &layout);
        assert!(
            report.is_clean(),
            "{spec:?}: recovered image must be fsck-clean: {:?}",
            report.issues
        );
    }
}

//! Serving-layer differential over a replicated volume: a concurrent
//! serve run against ext3 on a 3-replica quorum volume must equal its
//! serial replay in commit order — identical responses, identical
//! namespace, and a bit-identical raw medium on *every* replica — plus a
//! stress-lane variant at elevated thread counts (`IRON_STRESS=1` job:
//! `cargo test -- --ignored`, tuned by `IRON_TEST_THREADS` /
//! `IRON_STRESS_ITERS`).

use iron_blockdev::MemDisk;
use iron_cluster::{ReadPolicy, ReplicatedDisk};
use iron_ext3::{Ext3Fs, Ext3Options, Ext3Params};
use iron_serve::{assert_serial_equivalence, generate, memdisk_image, prepare, WorkloadSpec};
use iron_vfs::{FsEnv, Vfs};

const WIDTHS: [usize; 4] = [1, 2, 4, 8];

fn mkfs_disk() -> MemDisk {
    let mut md = MemDisk::for_tests(4096);
    Ext3Fs::<MemDisk>::mkfs(&mut md, Ext3Params::small()).unwrap();
    md
}

fn mount_prepared(spec: &WorkloadSpec, n: usize) -> Vfs<Ext3Fs<ReplicatedDisk<MemDisk>>> {
    let vol = ReplicatedDisk::from_golden(&mkfs_disk(), n, ReadPolicy::Quorum);
    let fs = Ext3Fs::mount(vol, FsEnv::new(), Ext3Options::default()).unwrap();
    let mut v = Vfs::new(fs);
    prepare(&mut v, spec);
    v
}

/// The oracle: all replicas converged and healthy, and replica 0's image
/// is the run's fingerprint (so concurrent runs must match serial runs
/// bit for bit on the medium, exactly as on a bare disk).
fn cluster_image(v: Vfs<Ext3Fs<ReplicatedDisk<MemDisk>>>) -> Option<Vec<u8>> {
    let vol = v.into_fs().into_device();
    let s = vol.stats().snapshot();
    assert_eq!(s.divergences, 0, "healthy serve run must never diverge");
    assert_eq!(s.degraded_writes, 0);
    assert!(
        vol.replicas_identical(),
        "replicas must converge at unmount"
    );
    Some(memdisk_image(vol.replica(0)))
}

#[test]
fn ext3_on_three_replica_volume_matches_serial_replay() {
    let spec = WorkloadSpec {
        sessions: 6,
        requests_per_session: 24,
        ..Default::default()
    };
    let sessions = generate(&spec);
    assert_serial_equivalence(
        || mount_prepared(&spec, 3),
        cluster_image,
        &sessions,
        &WIDTHS,
    );
}

#[test]
#[ignore = "stress lane; run with --ignored (IRON_TEST_THREADS, IRON_STRESS_ITERS)"]
fn ext3_cluster_serve_stress_differential() {
    let threads: usize = std::env::var("IRON_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    let iters: usize = std::env::var("IRON_STRESS_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    for round in 0..iters {
        let spec = WorkloadSpec {
            sessions: 2 * threads,
            requests_per_session: 64,
            seed: 0xC1_05E7 ^ (round as u64) << 32,
            ..Default::default()
        };
        let sessions = generate(&spec);
        assert_serial_equivalence(
            || mount_prepared(&spec, 3),
            cluster_image,
            &sessions,
            &[1, threads],
        );
    }
}

//! Tests of the offline checker's `RRepair` arm (§3.3: "a block that is
//! not pointed to, but is marked as allocated in a bitmap, could be
//! freed") — repairable damage is fixed mechanically; data-loss repairs
//! are reported but refused.

use iron_blockdev::{MemDisk, RawAccess};
use iron_core::BlockAddr;
use iron_ext3::fsck::{check, repair, FsckIssue};
use iron_ext3::inode::DiskInode;
use iron_ext3::{alloc, Ext3Fs, Ext3Options, Ext3Params};
use iron_vfs::{FsEnv, Vfs};

fn image() -> (MemDisk, iron_ext3::DiskLayout) {
    let dev = MemDisk::for_tests(4096);
    let fs = Ext3Fs::format_and_mount(
        dev,
        FsEnv::new(),
        Ext3Params::small(),
        Ext3Options::default(),
    )
    .unwrap();
    let mut v = Vfs::new(fs);
    v.mkdir("/d", 0o755).unwrap();
    for i in 0..8 {
        v.write_file(&format!("/d/f{i}"), &vec![i as u8; 9_000])
            .unwrap();
    }
    v.link("/d/f0", "/hard").unwrap();
    v.umount().unwrap();
    let fs = v.into_fs();
    let layout = *fs.layout();
    (fs.into_device(), layout)
}

#[test]
fn repair_frees_leaked_blocks() {
    let (mut dev, layout) = image();
    // Leak: mark three unused data blocks as allocated.
    let bm_addr = layout.data_bitmap(0);
    let mut bm = dev.peek(bm_addr);
    let base = layout.group_base(0);
    let mut leaked = Vec::new();
    for bit in (0..layout.params.blocks_per_group - 1).rev() {
        if !alloc::bit_test(&bm, bit) {
            alloc::bit_set(&mut bm, bit);
            leaked.push(base + bit);
            if leaked.len() == 3 {
                break;
            }
        }
    }
    dev.poke(bm_addr, &bm);

    let before = check(&dev, &layout);
    assert_eq!(
        before
            .issues
            .iter()
            .filter(|i| matches!(i, FsckIssue::BlockLeaked { .. }))
            .count(),
        3
    );
    let fixes = repair(&mut dev, &layout);
    assert_eq!(fixes, 3);
    assert!(check(&dev, &layout).is_clean(), "image clean after repair");
}

#[test]
fn repair_fixes_wrong_link_counts() {
    let (mut dev, layout) = image();
    // Find /d/f0's inode (it has nlink 2 via /hard) and corrupt the count.
    let mut target = None;
    for ino in 3..40u64 {
        let (blk, off) = layout.inode_location(ino);
        let di = DiskInode::decode_from(&dev.peek(blk), off);
        if !di.is_free() && di.links_count == 2 {
            target = Some((ino, blk, off));
            break;
        }
    }
    let (_, blk, off) = target.expect("hard-linked inode found");
    let mut b = dev.peek(blk);
    let mut di = DiskInode::decode_from(&b, off);
    di.links_count = 9;
    di.encode_into(&mut b, off);
    dev.poke(blk, &b);

    let before = check(&dev, &layout);
    assert!(before.issues.iter().any(|i| matches!(
        i,
        FsckIssue::WrongLinkCount {
            stored: 9,
            actual: 2,
            ..
        }
    )));
    let fixes = repair(&mut dev, &layout);
    assert!(fixes >= 1);
    assert!(check(&dev, &layout).is_clean());
}

#[test]
fn repair_fixes_inode_bitmap_mismatch() {
    let (mut dev, layout) = image();
    // Mark an unused inode slot as allocated in the imap.
    let ibm_addr = layout.inode_bitmap(0);
    let mut ibm = dev.peek(ibm_addr);
    let bit = 100; // far past the ~12 used inodes
    alloc::bit_set(&mut ibm, bit);
    dev.poke(ibm_addr, &ibm);

    let before = check(&dev, &layout);
    assert!(before
        .issues
        .iter()
        .any(|i| matches!(i, FsckIssue::InodeBitmapMismatch { ino } if *ino == bit + 1)));
    assert!(repair(&mut dev, &layout) >= 1);
    assert!(check(&dev, &layout).is_clean());
}

#[test]
fn repair_refuses_data_loss_cases() {
    let (mut dev, layout) = image();
    // A dangling directory entry (points at a free inode): repair must
    // report it but not invent a fix.
    let root_dir_block = layout.data_start(0);
    let b = dev.peek(BlockAddr(root_dir_block));
    let mut entries = iron_ext3::dir::parse_block(&b);
    entries.push(iron_ext3::dir::RawDirEntry::new(
        400, // a free inode slot
        iron_vfs::FileType::Regular,
        "ghost",
    ));
    dev.poke(
        BlockAddr(root_dir_block),
        &iron_ext3::dir::pack_block(&entries).unwrap(),
    );

    let before = check(&dev, &layout);
    assert!(before
        .issues
        .iter()
        .any(|i| matches!(i, FsckIssue::DanglingEntry { .. })));
    let _ = repair(&mut dev, &layout);
    let after = check(&dev, &layout);
    assert!(
        after
            .issues
            .iter()
            .any(|i| matches!(i, FsckIssue::DanglingEntry { .. })),
        "dangling entries are reported, never auto-dropped"
    );
}

#[test]
fn repaired_image_remounts_and_serves_files() {
    let (mut dev, layout) = image();
    // Leak a block, repair, remount, verify content.
    let bm_addr = layout.data_bitmap(1);
    let mut bm = dev.peek(bm_addr);
    alloc::bit_set(&mut bm, layout.params.blocks_per_group - 2);
    dev.poke(bm_addr, &bm);
    repair(&mut dev, &layout);
    let fs = Ext3Fs::mount(dev, FsEnv::new(), Ext3Options::default()).unwrap();
    let mut v = Vfs::new(fs);
    assert_eq!(v.read_file("/d/f3").unwrap(), vec![3u8; 9_000]);
    assert_eq!(v.read_file("/hard").unwrap(), vec![0u8; 9_000]);
}

//! Superblock/geometry sanity checks (`DSanity`, §3.1): stored geometry
//! vs. the trusted layout, and the journal region vs. its neighbors.
//! Each corruption is exercised through both the sequential oracle and
//! the parallel `iron-fsck` engine, and the repairable ones are driven
//! through the engine's transactional `RRepair` path.

use iron_blockdev::{MemDisk, RawAccess};
use iron_core::BlockAddr;
use iron_ext3::fsck::{check, superblock_sanity, Ext3Image, FsckIssue};
use iron_ext3::{Ext3Fs, Ext3Options, Ext3Params, Superblock};
use iron_fsck::FsckEngine;
use iron_vfs::{FsEnv, Vfs};

fn image() -> (MemDisk, iron_ext3::DiskLayout) {
    let dev = MemDisk::for_tests(4096);
    let fs = Ext3Fs::format_and_mount(
        dev,
        FsEnv::new(),
        Ext3Params::small(),
        Ext3Options::default(),
    )
    .unwrap();
    let mut v = Vfs::new(fs);
    v.mkdir("/d", 0o755).unwrap();
    for i in 0..4 {
        v.write_file(&format!("/d/f{i}"), &vec![i as u8; 5_000])
            .unwrap();
    }
    v.umount().unwrap();
    let fs = v.into_fs();
    let layout = *fs.layout();
    (fs.into_device(), layout)
}

fn rewrite_sb(dev: &mut MemDisk, edit: impl FnOnce(&mut Superblock)) {
    let mut sb = Superblock::decode(&dev.peek(BlockAddr(0))).unwrap();
    edit(&mut sb);
    dev.poke(BlockAddr(0), &sb.encode());
}

#[test]
fn clean_image_passes_sanity() {
    let (dev, layout) = image();
    let sb = Superblock::decode(&dev.peek(BlockAddr(0))).unwrap();
    assert!(superblock_sanity(&sb, &layout).is_empty());
    assert!(check(&dev, &layout).is_clean());
}

#[test]
fn total_blocks_mismatch_is_flagged_and_repaired() {
    let (mut dev, layout) = image();
    let expected = layout.params.total_blocks;
    rewrite_sb(&mut dev, |sb| sb.total_blocks = expected * 2); // claims more than the device holds
    let report = check(&dev, &layout);
    assert!(report.issues.contains(&FsckIssue::GeometryMismatch {
        field: "total_blocks",
        stored: expected * 2,
        expected,
    }));

    // The engine plans an RRepair (rewrite the field) and the second
    // check comes back clean.
    let mut img = Ext3Image::new(dev, layout);
    let engine = FsckEngine::with_threads(2);
    let (before, summary, after) = engine.check_and_repair(&mut img).unwrap();
    assert!(!before.is_clean());
    assert!(summary.applied >= 1);
    assert!(after.is_clean(), "geometry repaired: {:?}", after.issues);
}

#[test]
fn blocks_per_group_mismatch_is_flagged() {
    let (mut dev, layout) = image();
    let expected = layout.params.blocks_per_group;
    rewrite_sb(&mut dev, |sb| sb.blocks_per_group = expected + 7);
    let report = check(&dev, &layout);
    assert!(report.issues.contains(&FsckIssue::GeometryMismatch {
        field: "blocks_per_group",
        stored: expected + 7,
        expected,
    }));
}

#[test]
fn journal_overgrowth_overlaps_neighbors() {
    let (mut dev, layout) = image();
    // Journal claiming to extend past its region would overlap the
    // checksum table and the block groups behind it.
    let inflated = layout.journal_len + 100;
    rewrite_sb(&mut dev, |sb| sb.journal_blocks = inflated);
    let report = check(&dev, &layout);
    assert!(report.issues.contains(&FsckIssue::JournalOverlap {
        stored: inflated,
        max: layout.journal_len,
    }));

    // Repair truncates the stored length back to the trusted maximum.
    let mut img = Ext3Image::new(dev, layout);
    let (_, summary, after) = FsckEngine::with_threads(4)
        .check_and_repair(&mut img)
        .unwrap();
    assert!(summary.applied >= 1);
    assert!(after.is_clean(), "{:?}", after.issues);
    let sb = Superblock::decode(&img.device().peek(BlockAddr(0))).unwrap();
    assert_eq!(sb.journal_blocks, layout.journal_len);
}

#[test]
fn journal_shrinkage_is_a_plain_mismatch() {
    let (mut dev, layout) = image();
    let shrunk = layout.journal_len - 1;
    rewrite_sb(&mut dev, |sb| sb.journal_blocks = shrunk);
    let report = check(&dev, &layout);
    assert!(report.issues.contains(&FsckIssue::GeometryMismatch {
        field: "journal_blocks",
        stored: shrunk,
        expected: layout.journal_len,
    }));
    assert!(!report
        .issues
        .iter()
        .any(|i| matches!(i, FsckIssue::JournalOverlap { .. })));
}

#[test]
fn undecodable_superblock_is_fatal() {
    let (mut dev, layout) = image();
    dev.poke(BlockAddr(0), &iron_core::Block::zeroed()); // magic gone
    let report = check(&dev, &layout);
    assert_eq!(report.issues, vec![FsckIssue::BadSuperblock]);

    // The engine stops after the superblock pass (fatal) and the planner
    // maps BadSuperblock to RStop — nothing is auto-repaired.
    let img = Ext3Image::new(dev, layout);
    let engine = FsckEngine::with_threads(4);
    let parallel = engine.check(&img);
    assert_eq!(parallel.issues, vec![FsckIssue::BadSuperblock]);
    assert_eq!(
        parallel.stats.passes.len(),
        1,
        "stopped after superblock pass"
    );
}

#[test]
fn sanity_issues_agree_across_oracle_and_engine() {
    let (mut dev, layout) = image();
    rewrite_sb(&mut dev, |sb| {
        sb.total_blocks += 5;
        sb.inodes_per_group += 1;
        sb.journal_blocks = layout.journal_len + 9;
    });
    let oracle = check(&dev, &layout);
    let img = Ext3Image::new(dev, layout);
    for threads in [1, 2, 4] {
        let report = FsckEngine::with_threads(threads).check(&img);
        assert!(
            report.same_issues(&oracle.issues),
            "threads={threads}: {:?} vs {:?}",
            report.issues,
            oracle.issues
        );
    }
}
